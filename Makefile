GO ?= go

.PHONY: all check build vet test race bench bench-compare bench-tables experiments fmt fmt-check

all: check

# Default verify entry point: formatting, vet, build, then the full suite
# under the race detector. The runtime pool, serving layer, server handlers
# and AlignAll fan-out are concurrency-bearing, so a non-race test run is not
# a complete check.
check: fmt-check vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 gate: what CI runs on every change.
test: build vet
	$(GO) test ./...

# Race-enabled suite — the concurrency contract (shared read-only Pipeline,
# the internal/runtime clone pool, AlignAll fan-out, the parallel RWR worker
# pool, server handlers) is only trusted if this passes. Includes the pool
# stress tests in internal/graph and internal/runtime.
# The tuning sweeps in internal/experiment run ~6x slower under the race
# detector; on small machines they overrun go test's default 10m per-binary
# timeout, so the race target sets its own.
race:
	$(GO) test -race -timeout 30m ./...

# Hot-path benchmark harness: runs the workload in cmd/briq-bench (CSR vs
# frozen reference, equivalence-gated) and writes BENCH_pipeline.json.
bench:
	$(GO) run ./cmd/briq-bench -out BENCH_pipeline.json

# Side-by-side go-test micro-benchmarks of the resolution hot path, with
# allocation counts — for inspecting individual kernels rather than the
# aggregate report.
bench-compare:
	$(GO) test -bench 'RWR|Resolve' -benchmem -run ^$$ ./internal/graph

# Paper-table benchmarks (Tables I–IX, ablations) from the repo root.
bench-tables:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

experiments:
	$(GO) run ./cmd/briq-experiments -table all

fmt:
	gofmt -l -w .

# Formatting gate: fails listing the offending files if anything is not
# gofmt-clean. `gofmt -l` exits 0 even when files need formatting, so the
# gate greps its output instead of trusting the exit code.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
