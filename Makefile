GO ?= go

.PHONY: all check build vet test race bench bench-compare bench-tables bench-serve loadgen-smoke experiments fmt fmt-check fuzz-smoke cover-check

all: check

# Default verify entry point: formatting, vet, build, the full suite under
# the race detector, a short fuzz pass over the committed corpora, the
# coverage gate on the classification-engine packages, and a ~2s end-to-end
# load-harness smoke (real binaries: corpusgen → briq-server → briq-loadgen).
# The runtime pool, serving layer, server handlers and AlignAll fan-out are
# concurrency-bearing, so a non-race test run is not a complete check.
check: fmt-check vet build race fuzz-smoke cover-check loadgen-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 gate: what CI runs on every change.
test: build vet
	$(GO) test ./...

# Race-enabled suite — the concurrency contract (shared read-only Pipeline,
# the internal/runtime clone pool, AlignAll fan-out, the parallel RWR worker
# pool, server handlers) is only trusted if this passes. Includes the pool
# stress tests in internal/graph and internal/runtime.
# The tuning sweeps in internal/experiment run ~6x slower under the race
# detector; on small machines they overrun go test's default 10m per-binary
# timeout, so the race target sets its own.
race:
	$(GO) test -race -timeout 30m ./...

# Hot-path benchmark harness: runs the workload in cmd/briq-bench (CSR vs
# frozen reference, equivalence-gated) and writes BENCH_pipeline.json.
bench:
	$(GO) run ./cmd/briq-bench -out BENCH_pipeline.json

# Side-by-side go-test micro-benchmarks of the resolution hot path, with
# allocation counts — for inspecting individual kernels rather than the
# aggregate report.
bench-compare:
	$(GO) test -bench 'RWR|Resolve' -benchmem -run ^$$ ./internal/graph

# Paper-table benchmarks (Tables I–IX, ablations) from the repo root.
bench-tables:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

experiments:
	$(GO) run ./cmd/briq-experiments -table all

# End-to-end smoke of the load harness with the real binaries: generate a
# tiny corpus, start an (untrained, fast-boot) briq-server with the cache
# and admission gate on, drive it open-loop for ~2 seconds, and fail if no
# request succeeds. This is the cheap guard that the corpus → server →
# loadgen contract (manifest format, envelope codes, /metrics scrape) still
# holds end to end; the serving baseline itself comes from bench-serve.
loadgen-smoke:
	@set -e; tmp=$$(mktemp -d); spid=""; \
	trap 'test -n "$$spid" && kill $$spid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/corpusgen ./cmd/briq-server ./cmd/briq-loadgen; \
	$$tmp/corpusgen -out $$tmp/corpus -pages 8 -seed 42 >/dev/null; \
	$$tmp/briq-server -addr 127.0.0.1:18573 -cache-bytes 8388608 -max-inflight 8 -quiet & spid=$$!; \
	$$tmp/briq-loadgen -target http://127.0.0.1:18573 -corpus $$tmp/corpus \
		-qps 100 -duration 2s -seed 7 -wait 15s; \
	kill $$spid; spid=""

# Serving baseline: a size-targeted corpus, a trained briq-server with the
# production serving configuration, and an open-loop run that writes the
# committed BENCH_serve.json (schema-tested in internal/loadgen). The
# ROADMAP's scaling items (gateway sharding, streaming ingest) regress
# against this file; regenerate it on the same class of machine you compare
# against. Tune the offered rate with BENCH_SERVE_QPS / BENCH_SERVE_DURATION.
BENCH_SERVE_QPS ?= 40
BENCH_SERVE_DURATION ?= 20s
bench-serve:
	@set -e; tmp=$$(mktemp -d); spid=""; \
	trap 'test -n "$$spid" && kill $$spid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/corpusgen ./cmd/briq-server ./cmd/briq-loadgen; \
	$$tmp/corpusgen -out $$tmp/corpus -tot-size 4MB -seed 42; \
	$$tmp/briq-server -addr 127.0.0.1:18574 -trained -cache-bytes 67108864 -max-inflight 32 -quiet & spid=$$!; \
	$$tmp/briq-loadgen -target http://127.0.0.1:18574 -corpus $$tmp/corpus \
		-qps $(BENCH_SERVE_QPS) -duration $(BENCH_SERVE_DURATION) -warmup 3s -seed 1 \
		-wait 60s -out BENCH_serve.json; \
	kill $$spid; spid=""

# Short fuzz pass over every committed fuzz target and its seed corpus. Each
# target gets a few seconds of mutation on top of replaying the corpus — long
# enough to catch regressions in the parsing/serialization invariants the
# corpora pin (never panic, reject malformed input, round-trip bit-identical),
# short enough for every `make check`. `go test -fuzz` accepts one target per
# invocation, hence one line per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime 5s ./internal/forest
	$(GO) test -run '^$$' -fuzz '^FuzzParseCell$$' -fuzztime 5s ./internal/quantity
	$(GO) test -run '^$$' -fuzz '^FuzzExtractText$$' -fuzztime 5s ./internal/quantity

# Coverage gate for the classification engine: the flat-forest inference path
# and the feature extractor are equivalence-critical (the frozen engine's
# bit-identity contract lives in their tests), so their statement coverage
# must not decay below 85%.
COVER_PKGS = ./internal/forest ./internal/feature
COVER_MIN = 85
cover-check:
	@fail=0; for pkg in $(COVER_PKGS); do \
		pct="$$($(GO) test -cover $$pkg | awk '/coverage:/ {for (i=1;i<=NF;i++) if ($$i=="coverage:") {sub(/%/,"",$$(i+1)); print $$(i+1)}}')"; \
		if [ -z "$$pct" ]; then echo "cover-check: no coverage for $$pkg"; fail=1; \
		elif awk -v p="$$pct" -v m="$(COVER_MIN)" 'BEGIN{exit (p>=m)?1:0}'; then \
			echo "cover-check: $$pkg at $$pct% (< $(COVER_MIN)%)"; fail=1; \
		else echo "cover-check: $$pkg at $$pct% (>= $(COVER_MIN)%)"; fi; \
	done; exit $$fail

fmt:
	gofmt -l -w .

# Formatting gate: fails listing the offending files if anything is not
# gofmt-clean. `gofmt -l` exits 0 even when files need formatting, so the
# gate greps its output instead of trusting the exit code.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
