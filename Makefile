GO ?= go

.PHONY: all check build vet test race bench bench-compare bench-tables experiments fmt fmt-check fuzz-smoke cover-check

all: check

# Default verify entry point: formatting, vet, build, the full suite under
# the race detector, a short fuzz pass over the committed corpora, and the
# coverage gate on the classification-engine packages. The runtime pool,
# serving layer, server handlers and AlignAll fan-out are concurrency-bearing,
# so a non-race test run is not a complete check.
check: fmt-check vet build race fuzz-smoke cover-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 gate: what CI runs on every change.
test: build vet
	$(GO) test ./...

# Race-enabled suite — the concurrency contract (shared read-only Pipeline,
# the internal/runtime clone pool, AlignAll fan-out, the parallel RWR worker
# pool, server handlers) is only trusted if this passes. Includes the pool
# stress tests in internal/graph and internal/runtime.
# The tuning sweeps in internal/experiment run ~6x slower under the race
# detector; on small machines they overrun go test's default 10m per-binary
# timeout, so the race target sets its own.
race:
	$(GO) test -race -timeout 30m ./...

# Hot-path benchmark harness: runs the workload in cmd/briq-bench (CSR vs
# frozen reference, equivalence-gated) and writes BENCH_pipeline.json.
bench:
	$(GO) run ./cmd/briq-bench -out BENCH_pipeline.json

# Side-by-side go-test micro-benchmarks of the resolution hot path, with
# allocation counts — for inspecting individual kernels rather than the
# aggregate report.
bench-compare:
	$(GO) test -bench 'RWR|Resolve' -benchmem -run ^$$ ./internal/graph

# Paper-table benchmarks (Tables I–IX, ablations) from the repo root.
bench-tables:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

experiments:
	$(GO) run ./cmd/briq-experiments -table all

# Short fuzz pass over every committed fuzz target and its seed corpus. Each
# target gets a few seconds of mutation on top of replaying the corpus — long
# enough to catch regressions in the parsing/serialization invariants the
# corpora pin (never panic, reject malformed input, round-trip bit-identical),
# short enough for every `make check`. `go test -fuzz` accepts one target per
# invocation, hence one line per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime 5s ./internal/forest
	$(GO) test -run '^$$' -fuzz '^FuzzParseCell$$' -fuzztime 5s ./internal/quantity
	$(GO) test -run '^$$' -fuzz '^FuzzExtractText$$' -fuzztime 5s ./internal/quantity

# Coverage gate for the classification engine: the flat-forest inference path
# and the feature extractor are equivalence-critical (the frozen engine's
# bit-identity contract lives in their tests), so their statement coverage
# must not decay below 85%.
COVER_PKGS = ./internal/forest ./internal/feature
COVER_MIN = 85
cover-check:
	@fail=0; for pkg in $(COVER_PKGS); do \
		pct="$$($(GO) test -cover $$pkg | awk '/coverage:/ {for (i=1;i<=NF;i++) if ($$i=="coverage:") {sub(/%/,"",$$(i+1)); print $$(i+1)}}')"; \
		if [ -z "$$pct" ]; then echo "cover-check: no coverage for $$pkg"; fail=1; \
		elif awk -v p="$$pct" -v m="$(COVER_MIN)" 'BEGIN{exit (p>=m)?1:0}'; then \
			echo "cover-check: $$pkg at $$pct% (< $(COVER_MIN)%)"; fail=1; \
		else echo "cover-check: $$pkg at $$pct% (>= $(COVER_MIN)%)"; fi; \
	done; exit $$fail

fmt:
	gofmt -l -w .

# Formatting gate: fails listing the offending files if anything is not
# gofmt-clean. `gofmt -l` exits 0 even when files need formatting, so the
# gate greps its output instead of trusting the exit code.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
