GO ?= go

.PHONY: all check build vet test race bench bench-compare bench-tables bench-serve bench-gateway loadgen-smoke gateway-smoke store-smoke ingest-smoke experiments fmt fmt-check fuzz-smoke cover-check

all: check

# Default verify entry point: formatting, vet, build, the full suite under
# the race detector, a short fuzz pass over the committed corpora, the
# coverage gate on the classification-engine packages, and four end-to-end
# smokes with the real binaries: the single-server load harness
# (loadgen-smoke), the sharded fleet behind briq-gateway including a
# replica kill (gateway-smoke), the persistent aligned-corpus store across
# a server restart (store-smoke), and streaming re-crawl ingestion with
# fingerprint reuse (ingest-smoke). The runtime pool, serving layer,
# server handlers and AlignAll fan-out are concurrency-bearing, so a
# non-race test run is not a complete check.
check: fmt-check vet build race fuzz-smoke cover-check loadgen-smoke gateway-smoke store-smoke ingest-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 gate: what CI runs on every change.
test: build vet
	$(GO) test ./...

# Race-enabled suite — the concurrency contract (shared read-only Pipeline,
# the internal/runtime clone pool, AlignAll fan-out, the parallel RWR worker
# pool, server handlers) is only trusted if this passes. Includes the pool
# stress tests in internal/graph and internal/runtime.
# The tuning sweeps in internal/experiment run ~6x slower under the race
# detector; on small machines they overrun go test's default 10m per-binary
# timeout, so the race target sets its own.
race:
	$(GO) test -race -timeout 30m ./...

# Hot-path benchmark harness: runs the workload in cmd/briq-bench (CSR vs
# frozen reference, equivalence-gated) and writes BENCH_pipeline.json.
bench:
	$(GO) run ./cmd/briq-bench -out BENCH_pipeline.json

# Side-by-side go-test micro-benchmarks of the resolution hot path, with
# allocation counts — for inspecting individual kernels rather than the
# aggregate report.
bench-compare:
	$(GO) test -bench 'RWR|Resolve' -benchmem -run ^$$ ./internal/graph

# Paper-table benchmarks (Tables I–IX, ablations) from the repo root.
bench-tables:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

experiments:
	$(GO) run ./cmd/briq-experiments -table all

# End-to-end smoke of the load harness with the real binaries: generate a
# tiny corpus, start an (untrained, fast-boot) briq-server with the cache
# and admission gate on, drive it open-loop for ~2 seconds, and fail if no
# request succeeds. This is the cheap guard that the corpus → server →
# loadgen contract (manifest format, envelope codes, /metrics scrape) still
# holds end to end; the serving baseline itself comes from bench-serve.
loadgen-smoke:
	@set -e; tmp=$$(mktemp -d); spid=""; \
	trap 'test -n "$$spid" && kill $$spid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/corpusgen ./cmd/briq-server ./cmd/briq-loadgen; \
	$$tmp/corpusgen -out $$tmp/corpus -pages 8 -seed 42 >/dev/null; \
	$$tmp/briq-server -addr 127.0.0.1:18573 -cache-bytes 8388608 -max-inflight 8 -quiet & spid=$$!; \
	$$tmp/briq-loadgen -target http://127.0.0.1:18573 -corpus $$tmp/corpus \
		-qps 100 -duration 2s -seed 7 -wait 15s; \
	kill $$spid; spid=""

# End-to-end smoke of the sharded fleet with the real binaries: train one
# model bundle, boot two briq-server replicas from it, front them with
# briq-gateway, and drive two bursts through the gateway. The first burst
# asserts the sharded caches are actually being hit (-min-hit-rate) with
# zero errors; then one replica is killed and the second burst asserts the
# gateway's retry + eject path hides the corpse (error rate ≤ 5%, hit rate
# intact). This is the cheap guard that the fleet contract — bundle boot,
# /v1 surface, consistent-hash routing, health ejection, aggregated
# /metrics scrape — holds end to end; the scaling numbers come from
# bench-gateway.
gateway-smoke:
	@set -e; tmp=$$(mktemp -d); pids=""; \
	trap 'kill $$pids 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/corpusgen ./cmd/briq-train ./cmd/briq-server ./cmd/briq-gateway ./cmd/briq-loadgen; \
	$$tmp/corpusgen -out $$tmp/corpus -pages 8 -seed 42 >/dev/null; \
	$$tmp/briq-train -out $$tmp/briq.model -pages 60 -seed 42 >/dev/null; \
	$$tmp/briq-server -addr 127.0.0.1:18575 -model $$tmp/briq.model -cache-bytes 8388608 -max-inflight 8 -quiet & pids="$$!"; \
	$$tmp/briq-server -addr 127.0.0.1:18576 -model $$tmp/briq.model -cache-bytes 8388608 -max-inflight 8 -quiet & r2=$$!; pids="$$pids $$r2"; \
	$$tmp/briq-gateway -addr 127.0.0.1:18577 -replicas http://127.0.0.1:18575,http://127.0.0.1:18576 -probe-interval 100ms & pids="$$pids $$!"; \
	$$tmp/briq-loadgen -target http://127.0.0.1:18577 -corpus $$tmp/corpus \
		-qps 100 -duration 2s -seed 7 -wait 30s -min-hit-rate 0.3 -max-error-rate 0; \
	echo "gateway-smoke: killing replica 2, driving the survivor"; \
	kill $$r2; \
	$$tmp/briq-loadgen -target http://127.0.0.1:18577 -corpus $$tmp/corpus \
		-qps 100 -duration 2s -seed 8 -wait 10s -min-hit-rate 0.3 -max-error-rate 0.05

# End-to-end smoke of the persistent aligned-corpus store with the real
# binaries: boot a trained briq-server on a fresh -store directory, align a
# small corpus through it, capture GET /v1/search output with briq-search,
# then kill the server, boot a second one on the same directory and assert
# (a) the restart actually replayed documents, (b) the same query answers
# byte-identically against the warm index, and (c) briq-search -store reads
# the directory offline to the same bytes. This is the cheap guard that the
# store contract — append-only log, fingerprint-bound replay, incremental
# index equivalence, /v1/search surface — holds end to end; the in-process
# equivalence proofs live in internal/store and cmd/briq-server tests.
store-smoke:
	@set -e; tmp=$$(mktemp -d); spid=""; \
	trap 'test -n "$$spid" && kill $$spid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/corpusgen ./cmd/briq-train ./cmd/briq-server ./cmd/briq-loadgen ./cmd/briq-search; \
	$$tmp/corpusgen -out $$tmp/corpus -pages 8 -seed 42 >/dev/null; \
	$$tmp/briq-train -out $$tmp/briq.model -pages 60 -seed 42 >/dev/null; \
	$$tmp/briq-server -addr 127.0.0.1:18578 -model $$tmp/briq.model -store $$tmp/store \
		-cache-bytes 8388608 -max-inflight 8 -quiet 2>$$tmp/server1.log & spid=$$!; \
	$$tmp/briq-loadgen -target http://127.0.0.1:18578 -corpus $$tmp/corpus \
		-qps 100 -duration 2s -seed 7 -wait 15s >/dev/null; \
	$$tmp/briq-search -addr http://127.0.0.1:18578 "revenue above 0" > $$tmp/before.txt; \
	kill $$spid; wait $$spid 2>/dev/null || true; spid=""; \
	$$tmp/briq-server -addr 127.0.0.1:18578 -model $$tmp/briq.model -store $$tmp/store \
		-cache-bytes 8388608 -max-inflight 8 -quiet 2>$$tmp/server2.log & spid=$$!; \
	for i in $$(seq 1 75); do \
		$$tmp/briq-search -addr http://127.0.0.1:18578 "revenue above 0" \
			> $$tmp/after.txt 2>/dev/null && break; sleep 0.2; done; \
	grep -q '\[pg' $$tmp/before.txt \
		|| { echo "store-smoke: first query found nothing"; cat $$tmp/before.txt; exit 1; }; \
	grep -E 'replayed [1-9][0-9]* documents' $$tmp/server2.log >/dev/null \
		|| { echo "store-smoke: warm restart replayed nothing"; cat $$tmp/server2.log; exit 1; }; \
	cmp $$tmp/before.txt $$tmp/after.txt \
		|| { echo "store-smoke: search results diverged across restart"; exit 1; }; \
	$$tmp/briq-search -store $$tmp/store "revenue above 0" | tail -n +2 > $$tmp/offline.txt; \
	cmp $$tmp/before.txt $$tmp/offline.txt \
		|| { echo "store-smoke: offline -store results diverge from server"; exit 1; }; \
	kill $$spid; spid=""; \
	echo "store-smoke: warm restart byte-identical, offline store matches"

# End-to-end smoke of streaming ingestion with the real binaries: generate
# a small corpus, stream it into an untrained briq-server through
# `briq ingest`, append one sentence to the first paragraph of every page
# (a re-crawl where most documents are byte-identical), re-ingest, and
# assert (a) the re-crawl reused at least one document's stored alignments
# while realigning the changed ones, and (b) GET /v1/search answers
# byte-identically to a second server that ingested only the final mutated
# corpus from scratch — the incremental-vs-from-scratch equivalence gate
# over the wire, with the real CLI. The in-process proofs live in
# internal/store, internal/ingest and cmd/briq-server tests.
ingest-smoke:
	@set -e; tmp=$$(mktemp -d); apid=""; bpid=""; \
	trap 'test -n "$$apid" && kill $$apid 2>/dev/null; test -n "$$bpid" && kill $$bpid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/corpusgen ./cmd/briq-server ./cmd/briq ./cmd/briq-search; \
	$$tmp/corpusgen -out $$tmp/corpus -pages 6 -seed 42 >/dev/null; \
	$$tmp/briq-server -addr 127.0.0.1:18584 -store $$tmp/storeA -quiet 2>$$tmp/serverA.log & apid=$$!; \
	for i in $$(seq 1 75); do \
		$$tmp/briq-search -addr http://127.0.0.1:18584 "revenue above 0" >/dev/null 2>&1 && break; sleep 0.2; done; \
	$$tmp/briq ingest -addr 127.0.0.1:18584 $$tmp/corpus > $$tmp/cold.txt; \
	grep -Eq 'ingested 6 pages: 0 documents reused, [1-9][0-9]* realigned, 0 retracted, 0 page errors' $$tmp/cold.txt \
		|| { echo "ingest-smoke: unexpected cold ingest summary"; cat $$tmp/cold.txt; exit 1; }; \
	for f in $$tmp/corpus/*.html; do \
		sed -i '0,/<\/p>/s// A revised figure was confirmed on re-crawl.<\/p>/' $$f; done; \
	$$tmp/briq ingest -addr 127.0.0.1:18584 $$tmp/corpus > $$tmp/recrawl.txt; \
	grep -Eq 'ingested 6 pages: [1-9][0-9]* documents reused, [1-9][0-9]* realigned, [0-9]+ retracted, 0 page errors' $$tmp/recrawl.txt \
		|| { echo "ingest-smoke: re-crawl reused nothing"; cat $$tmp/recrawl.txt; exit 1; }; \
	$$tmp/briq-search -addr http://127.0.0.1:18584 "revenue above 0" > $$tmp/incr.txt; \
	grep -q '\[pg' $$tmp/incr.txt \
		|| { echo "ingest-smoke: incremental server found nothing"; cat $$tmp/incr.txt; exit 1; }; \
	$$tmp/briq-server -addr 127.0.0.1:18585 -store $$tmp/storeB -quiet 2>$$tmp/serverB.log & bpid=$$!; \
	for i in $$(seq 1 75); do \
		$$tmp/briq-search -addr http://127.0.0.1:18585 "revenue above 0" >/dev/null 2>&1 && break; sleep 0.2; done; \
	$$tmp/briq ingest -addr 127.0.0.1:18585 $$tmp/corpus >/dev/null; \
	$$tmp/briq-search -addr http://127.0.0.1:18585 "revenue above 0" > $$tmp/scratch.txt; \
	cmp $$tmp/incr.txt $$tmp/scratch.txt \
		|| { echo "ingest-smoke: incremental search diverges from from-scratch ingest"; exit 1; }; \
	kill $$apid; apid=""; kill $$bpid; bpid=""; \
	echo "ingest-smoke: re-crawl reuse nonzero, incremental search byte-identical to from-scratch"

# Serving baseline: a size-targeted corpus, a trained briq-server with the
# production serving configuration, and an open-loop run that writes the
# committed BENCH_serve.json (schema-tested in internal/loadgen). The
# ROADMAP's scaling items (gateway sharding, streaming ingest) regress
# against this file; regenerate it on the same class of machine you compare
# against. Tune the offered rate with BENCH_SERVE_QPS / BENCH_SERVE_DURATION.
BENCH_SERVE_QPS ?= 40
BENCH_SERVE_DURATION ?= 20s
bench-serve:
	@set -e; tmp=$$(mktemp -d); spid=""; \
	trap 'test -n "$$spid" && kill $$spid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/corpusgen ./cmd/briq-server ./cmd/briq-loadgen; \
	$$tmp/corpusgen -out $$tmp/corpus -tot-size 4MB -seed 42; \
	$$tmp/briq-server -addr 127.0.0.1:18574 -trained -cache-bytes 67108864 -max-inflight 32 -quiet & spid=$$!; \
	$$tmp/briq-loadgen -target http://127.0.0.1:18574 -corpus $$tmp/corpus \
		-qps $(BENCH_SERVE_QPS) -duration $(BENCH_SERVE_DURATION) -warmup 3s -seed 1 \
		-wait 60s -out BENCH_serve.json; \
	kill $$spid; spid=""

# Gateway scaling section of BENCH_serve.json: the same offered load driven
# through briq-gateway against one replica, then against two replicas
# sharding the same model bundle, then against two replicas with one killed
# mid-run (the chaos slot). Run bench-serve first — the scaling runs merge
# into the existing report (-scaling <slot>) without disturbing the
# single-server sections.
#
# The workload is built to expose cache-capacity scaling on a 1-CPU box,
# where replicas cannot add compute: heavyweight pages (-paras/-refs) whose
# alignment costs ~100ms a miss, bulk block-batches (-batch-blocks: every
# batch is one of a fixed set of non-overlapping 8-page blocks, so batch
# bodies recur and the gateway's consistent hash pins each block — and its
# documents' cache entries — to exactly one replica), a near-uniform block
# popularity curve (-zipf 1.05), and a per-replica cache sized to roughly
# half the corpus working set. A batch occupies one admission slot and
# computes every cold page it carries, so one replica churns its LRU,
# holds its slots for ~1s per cold block, and sheds whole batches — while
# two replicas hold the full working set between their shards, turn slots
# over in milliseconds, and serve the same offered load nearly flat-out.
# The mix is batch-only: single-page requests route by page body while the
# page's block routes by batch body, so mixing them caches hot pages on
# both replicas and hands the capacity win back. The comparison runs also
# disable the gateway's retry budget (-retry-budget -1): retrying a
# capacity shed onto the ring successor computes the block on the wrong
# replica and pollutes its shard — and with retries off, client-observed
# 429s equal the fleet's shed_overloaded delta exactly, which is the
# cross-check the chaos slot's report is read against. The chaos run keeps
# the default budget, because retry-to-successor is precisely the
# mechanism that absorbs a replica kill. The headline number is
# scaling.docs_speedup — delivered documents per second, which charges a
# shed batch for every page it carried.
BENCH_GATEWAY_QPS ?= 10
BENCH_GATEWAY_DURATION ?= 30s
BENCH_GATEWAY_WARMUP ?= 40s
BENCH_GATEWAY_CACHE_BYTES ?= 1048576
BENCH_GATEWAY_CORPUS_SIZE ?= 2MB
BENCH_GATEWAY_MIX ?= batch=1
bench-gateway:
	@set -e; tmp=$$(mktemp -d); pids=""; \
	trap 'kill $$pids 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/corpusgen ./cmd/briq-train ./cmd/briq-server ./cmd/briq-gateway ./cmd/briq-loadgen; \
	$$tmp/corpusgen -out $$tmp/corpus -tot-size $(BENCH_GATEWAY_CORPUS_SIZE) -seed 42 -paras 12 -refs 6; \
	$$tmp/briq-train -out $$tmp/briq.model -seed 42; \
	echo "== bench-gateway 1/3: gateway + 1 replica =="; \
	$$tmp/briq-server -addr 127.0.0.1:18580 -model $$tmp/briq.model -cache-bytes $(BENCH_GATEWAY_CACHE_BYTES) -max-inflight 4 -quiet & pids="$$!"; \
	$$tmp/briq-gateway -addr 127.0.0.1:18583 -replicas http://127.0.0.1:18580 -retry-budget -1 & pids="$$pids $$!"; \
	$$tmp/briq-loadgen -target http://127.0.0.1:18583 -corpus $$tmp/corpus \
		-qps $(BENCH_GATEWAY_QPS) -duration $(BENCH_GATEWAY_DURATION) -warmup $(BENCH_GATEWAY_WARMUP) \
		-zipf 1.05 -mix $(BENCH_GATEWAY_MIX) -batch-blocks -seed 1 -wait 60s \
		-out BENCH_serve.json -scaling replicas_1; \
	kill $$pids; pids=""; sleep 1; \
	echo "== bench-gateway 2/3: gateway + 2 replicas =="; \
	$$tmp/briq-server -addr 127.0.0.1:18580 -model $$tmp/briq.model -cache-bytes $(BENCH_GATEWAY_CACHE_BYTES) -max-inflight 4 -quiet & pids="$$!"; \
	$$tmp/briq-server -addr 127.0.0.1:18581 -model $$tmp/briq.model -cache-bytes $(BENCH_GATEWAY_CACHE_BYTES) -max-inflight 4 -quiet & pids="$$pids $$!"; \
	$$tmp/briq-gateway -addr 127.0.0.1:18583 -replicas http://127.0.0.1:18580,http://127.0.0.1:18581 -retry-budget -1 & pids="$$pids $$!"; \
	$$tmp/briq-loadgen -target http://127.0.0.1:18583 -corpus $$tmp/corpus \
		-qps $(BENCH_GATEWAY_QPS) -duration $(BENCH_GATEWAY_DURATION) -warmup $(BENCH_GATEWAY_WARMUP) \
		-zipf 1.05 -mix $(BENCH_GATEWAY_MIX) -batch-blocks -seed 1 -wait 60s \
		-out BENCH_serve.json -scaling replicas_2; \
	kill $$pids; pids=""; sleep 1; \
	echo "== bench-gateway 3/3: chaos, replica killed mid-run =="; \
	$$tmp/briq-server -addr 127.0.0.1:18580 -model $$tmp/briq.model -cache-bytes $(BENCH_GATEWAY_CACHE_BYTES) -max-inflight 4 -quiet & pids="$$!"; \
	$$tmp/briq-server -addr 127.0.0.1:18581 -model $$tmp/briq.model -cache-bytes $(BENCH_GATEWAY_CACHE_BYTES) -max-inflight 4 -quiet & r2=$$!; pids="$$pids $$r2"; \
	$$tmp/briq-gateway -addr 127.0.0.1:18583 -replicas http://127.0.0.1:18580,http://127.0.0.1:18581 & pids="$$pids $$!"; \
	( sleep 55; echo "bench-gateway: killing replica 2 mid-run"; kill $$r2 ) & pids="$$pids $$!"; \
	$$tmp/briq-loadgen -target http://127.0.0.1:18583 -corpus $$tmp/corpus \
		-qps $(BENCH_GATEWAY_QPS) -duration $(BENCH_GATEWAY_DURATION) -warmup $(BENCH_GATEWAY_WARMUP) \
		-zipf 1.05 -mix $(BENCH_GATEWAY_MIX) -batch-blocks -seed 1 -wait 60s \
		-out BENCH_serve.json -scaling chaos

# Short fuzz pass over every committed fuzz target and its seed corpus. Each
# target gets a few seconds of mutation on top of replaying the corpus — long
# enough to catch regressions in the parsing/serialization invariants the
# corpora pin (never panic, reject malformed input, round-trip bit-identical),
# short enough for every `make check`. `go test -fuzz` accepts one target per
# invocation, hence one line per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime 5s ./internal/forest
	$(GO) test -run '^$$' -fuzz '^FuzzParseCell$$' -fuzztime 5s ./internal/quantity
	$(GO) test -run '^$$' -fuzz '^FuzzExtractText$$' -fuzztime 5s ./internal/quantity

# Coverage gate for the classification engine: the flat-forest inference path
# and the feature extractor are equivalence-critical (the frozen engine's
# bit-identity contract lives in their tests), so their statement coverage
# must not decay below 85%.
COVER_PKGS = ./internal/forest ./internal/feature
COVER_MIN = 85
cover-check:
	@fail=0; for pkg in $(COVER_PKGS); do \
		pct="$$($(GO) test -cover $$pkg | awk '/coverage:/ {for (i=1;i<=NF;i++) if ($$i=="coverage:") {sub(/%/,"",$$(i+1)); print $$(i+1)}}')"; \
		if [ -z "$$pct" ]; then echo "cover-check: no coverage for $$pkg"; fail=1; \
		elif awk -v p="$$pct" -v m="$(COVER_MIN)" 'BEGIN{exit (p>=m)?1:0}'; then \
			echo "cover-check: $$pkg at $$pct% (< $(COVER_MIN)%)"; fail=1; \
		else echo "cover-check: $$pkg at $$pct% (>= $(COVER_MIN)%)"; fi; \
	done; exit $$fail

fmt:
	gofmt -l -w .

# Formatting gate: fails listing the offending files if anything is not
# gofmt-clean. `gofmt -l` exits 0 even when files need formatting, so the
# gate greps its output instead of trusting the exit code.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
