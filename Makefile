GO ?= go

.PHONY: all build vet test race bench experiments fmt

all: test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 gate: what CI runs on every change.
test: build vet
	$(GO) test ./...

# Race-enabled suite — the concurrency contract (shared read-only Pipeline,
# AlignAll fan-out, server handlers) is only trusted if this passes.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

experiments:
	$(GO) run ./cmd/briq-experiments -table all

fmt:
	gofmt -l -w .
