GO ?= go

.PHONY: all build vet test race bench bench-compare bench-tables experiments fmt

all: test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 gate: what CI runs on every change.
test: build vet
	$(GO) test ./...

# Race-enabled suite — the concurrency contract (shared read-only Pipeline,
# AlignAll fan-out, the parallel RWR worker pool, server handlers) is only
# trusted if this passes. Includes the pool stress tests in internal/graph.
race:
	$(GO) test -race ./...

# Hot-path benchmark harness: runs the workload in cmd/briq-bench (CSR vs
# frozen reference, equivalence-gated) and writes BENCH_pipeline.json.
bench:
	$(GO) run ./cmd/briq-bench -out BENCH_pipeline.json

# Side-by-side go-test micro-benchmarks of the resolution hot path, with
# allocation counts — for inspecting individual kernels rather than the
# aggregate report.
bench-compare:
	$(GO) test -bench 'RWR|Resolve' -benchmem -run ^$$ ./internal/graph

# Paper-table benchmarks (Tables I–IX, ablations) from the repo root.
bench-tables:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

experiments:
	$(GO) run ./cmd/briq-experiments -table all

fmt:
	gofmt -l -w .
