// Command briq-gateway fronts a fleet of briq-server replicas with a
// consistent-hash router, so the fleet's content-addressed result caches act
// as one sharded cache.
//
//	briq-gateway -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//	             [-addr :8080] [-vnodes 128] [-probe-interval 500ms]
//	             [-fail-threshold 2] [-revive-threshold 2]
//	             [-retry-budget 0.1] [-upstream-timeout 90s]
//	             [-shutdown-timeout 15s]
//
// The gateway exposes the same versioned surface as briq-server — POST
// /v1/align, /v1/align/batch, /v1/summarize, GET /v1/search, /v1/facts,
// /v1/metrics, /v1/healthz, with the bare legacy paths as deprecated
// aliases — so clients, dashboards and the load harness point at it
// unchanged.
//
// Each request is routed by the hash of its content identity — endpoint +
// body for the POST alignment endpoints, endpoint + canonicalized query
// string for the GET read endpoints — so byte-identical requests always land
// on the same replica, keeping that replica's LRU shard (and aligned-corpus
// store) hot on its slice of the key space. Replicas are health-probed and
// ejected/readmitted with hysteresis; 429/504 answers and transport
// failures get one in-budget retry on the ring successor, and out-of-budget
// sheds are surfaced to the client verbatim. GET /v1/metrics merges the
// replicas' snapshots (counters summed, histograms merged) under the
// single-server schema plus a "gateway" section.
//
// Boot the fleet from one briq-train bundle (briq-server -model) so every
// replica shares a model fingerprint; /v1/metrics reports
// model.consistent=false when they diverge.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"briq/internal/gateway"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("briq-gateway: ")

	addr := flag.String("addr", ":8080", "listen address")
	replicas := flag.String("replicas", "", "comma-separated briq-server base URLs (required)")
	vnodes := flag.Int("vnodes", gateway.DefaultVNodes, "virtual nodes per replica on the hash ring")
	probeInterval := flag.Duration("probe-interval", gateway.DefaultProbeInterval, "health-probe period")
	failThreshold := flag.Int("fail-threshold", gateway.DefaultFailThreshold, "consecutive probe failures before ejecting a replica")
	reviveThreshold := flag.Int("revive-threshold", gateway.DefaultReviveThreshold, "consecutive probe successes before readmitting a replica")
	retryBudget := flag.Float64("retry-budget", gateway.DefaultRetryBudgetRatio, "retry tokens accrued per proxied request (negative disables retries)")
	upstreamTimeout := flag.Duration("upstream-timeout", gateway.DefaultUpstreamTimeout, "per-attempt upstream round-trip bound")
	shutdownTimeout := flag.Duration("shutdown-timeout", 15*time.Second, "drain window on SIGINT/SIGTERM")
	flag.Parse()

	if *replicas == "" {
		log.Fatal("-replicas is required")
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	gw, err := gateway.New(gateway.Config{
		Replicas:         urls,
		VNodes:           *vnodes,
		ProbeInterval:    *probeInterval,
		FailThreshold:    *failThreshold,
		ReviveThreshold:  *reviveThreshold,
		RetryBudgetRatio: *retryBudget,
		UpstreamTimeout:  *upstreamTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Stop()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Routes(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * *upstreamTimeout,
		IdleTimeout:       120 * time.Second,
	}

	log.Printf("listening on %s, sharding %d replicas (vnodes=%d, probe=%v, retry-budget=%.2f)",
		*addr, len(urls), *vnodes, *probeInterval, *retryBudget)
	if err := serve(httpSrv, *shutdownTimeout); err != nil {
		log.Fatal(err)
	}
	log.Printf("shutdown complete")
}

// serve runs the server until it fails or a termination signal arrives, then
// drains gracefully for up to the given window before forcing connections
// closed.
func serve(srv *http.Server, drain time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		return fmt.Errorf("listen: %w", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("signal received, draining for up to %v", drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			srv.Close()
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
