package main

import (
	"os"
	"path/filepath"
	"testing"

	"briq/internal/quantity"
)

func TestLoadGold(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gold.json")
	src := `[
		{"DocID":"pg0-d0","TextIndex":0,"TableKey":"pg0-t0:cell(1,2)","Agg":0},
		{"DocID":"pg0-d0","TextIndex":2,"TableKey":"pg0-t0:sum(col 1)","Agg":1},
		{"DocID":"pg1-d0","TextIndex":0,"TableKey":"pg1-t0:cell(0,0)","Agg":0}
	]`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	gold, err := loadGold(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(gold["pg0-d0"]) != 2 || len(gold["pg1-d0"]) != 1 {
		t.Fatalf("grouping wrong: %+v", gold)
	}
	if gold["pg0-d0"][1].Agg != quantity.Sum {
		t.Errorf("agg = %v, want sum", gold["pg0-d0"][1].Agg)
	}
}

func TestLoadGoldErrors(t *testing.T) {
	if _, err := loadGold(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("want error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "gold.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadGold(bad); err == nil {
		t.Error("want error for malformed JSON")
	}
}
