// Command briq-eval aligns the pages of a corpusgen-produced directory and
// scores the result against its gold.json — precision, recall and F1
// overall and by mention type.
//
// Usage:
//
//	corpusgen -out DIR -pages 100
//	briq-eval [-trained] [-seed N] DIR
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"briq"
	"briq/internal/corpus"
	"briq/internal/document"
	"briq/internal/htmlx"
	"briq/internal/mlmetrics"
	"briq/internal/quantity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("briq-eval: ")

	trained := flag.Bool("trained", false, "train models on a synthetic corpus first")
	seed := flag.Int64("seed", 42, "training seed (with -trained)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: briq-eval [-trained] DIR")
	}
	dir := flag.Arg(0)

	gold, err := loadGold(filepath.Join(dir, "gold.json"))
	if err != nil {
		log.Fatal(err)
	}

	var pipelineOpts []briq.Option
	if *trained {
		pipelineOpts = append(pipelineOpts, briq.WithTrainedSeed(*seed))
	}
	pipeline := briq.New(pipelineOpts...)

	pages, err := filepath.Glob(filepath.Join(dir, "*.html"))
	if err != nil {
		log.Fatal(err)
	}
	sort.Strings(pages)
	if len(pages) == 0 {
		log.Fatalf("no .html pages in %s", dir)
	}

	var overall mlmetrics.Counts
	perType := map[string]*mlmetrics.Counts{}
	touch := func(name string) *mlmetrics.Counts {
		if perType[name] == nil {
			perType[name] = &mlmetrics.Counts{}
		}
		return perType[name]
	}

	seg := document.NewSegmenter()
	for _, path := range pages {
		src, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		pageID := strings.TrimSuffix(filepath.Base(path), ".html")
		page := htmlx.ParseString(string(src))
		docs, err := seg.SegmentPage(pageID, page)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		for _, doc := range docs {
			goldByMention := map[int]corpus.Gold{}
			for _, g := range gold[doc.ID] {
				goldByMention[g.TextIndex] = g
			}
			predicted := map[int]briq.Alignment{}
			for _, a := range pipeline.Align(doc) {
				predicted[a.TextIndex] = a
			}
			for xi, a := range predicted {
				g, hasGold := goldByMention[xi]
				if hasGold && g.TableKey == a.TableKey {
					overall.TP++
					touch(g.Agg.String()).TP++
				} else {
					overall.FP++
					touch(a.AggName).FP++
				}
			}
			for xi, g := range goldByMention {
				if a, ok := predicted[xi]; !ok || a.TableKey != g.TableKey {
					overall.FN++
					touch(g.Agg.String()).FN++
				}
			}
		}
	}

	prf := overall.PRF()
	fmt.Printf("pages: %d  gold pairs: %d\n", len(pages), overall.TP+overall.FN)
	fmt.Printf("overall: P=%.3f R=%.3f F1=%.3f (TP=%d FP=%d FN=%d)\n",
		prf.Precision, prf.Recall, prf.F1, overall.TP, overall.FP, overall.FN)
	names := make([]string, 0, len(perType))
	for name := range perType {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := perType[name].PRF()
		fmt.Printf("  %-12s P=%.3f R=%.3f F1=%.3f\n", name, p.Precision, p.Recall, p.F1)
	}
}

// loadGold reads the corpusgen gold file and groups alignments by document.
func loadGold(path string) (map[string][]corpus.Gold, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw []struct {
		DocID     string
		TextIndex int
		TableKey  string
		Agg       quantity.Agg
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string][]corpus.Gold)
	for _, g := range raw {
		out[g.DocID] = append(out[g.DocID], corpus.Gold{
			DocID: g.DocID, TextIndex: g.TextIndex, TableKey: g.TableKey, Agg: g.Agg,
		})
	}
	return out, nil
}
