// Command briq aligns the quantity mentions of an HTML page against its
// tables and prints the alignments.
//
// Usage:
//
//	briq [-format text|json] [-trained] [-seed N] page.html
//	cat page.html | briq
//
// With -trained, a mention-pair classifier and tagger are first trained on a
// deterministic synthetic corpus (a few seconds); without it the heuristic
// pipeline is used.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"briq"
	"briq/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("briq: ")

	if len(os.Args) > 1 && os.Args[1] == "ingest" {
		runIngest(os.Args[2:])
		return
	}

	format := flag.String("format", "text", "output format: text or json")
	trained := flag.Bool("trained", false, "train models on a synthetic corpus before aligning")
	seed := flag.Int64("seed", 42, "training corpus seed (with -trained)")
	model := flag.String("model", "", "load models from a briq-train file instead of training")
	flag.Parse()

	var src []byte
	var err error
	pageID := "stdin"
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		pageID = flag.Arg(0)
		src, err = os.ReadFile(flag.Arg(0))
	default:
		log.Fatal("usage: briq [-format text|json] [-trained] [page.html]")
	}
	if err != nil {
		log.Fatal(err)
	}

	pipeline := briq.New()
	switch {
	case *model != "":
		f, err := os.Open(*model)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := experiment.LoadModels(f)
		f.Close()
		if err != nil {
			log.Fatalf("load model: %v", err)
		}
		pipeline = experiment.NewBriQ(tr).P
	case *trained:
		pipeline = briq.New(briq.WithTrainedSeed(*seed))
	}

	alignments, err := briq.AlignHTMLContext(context.Background(), pipeline, pageID, string(src))
	if briq.IsUnalignable(err) {
		// Nothing to align is a legitimate outcome for the CLI, not a crash.
		alignments, err = nil, nil
	}
	if err != nil {
		log.Fatal(err)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(alignments); err != nil {
			log.Fatal(err)
		}
	case "text":
		if len(alignments) == 0 {
			fmt.Println("no alignments")
			return
		}
		for _, a := range alignments {
			fmt.Printf("%-24q → %-28s %s = %g (score %.3f)\n",
				a.TextSurface, a.TableKey, a.AggName, a.Value, a.Score)
		}
	default:
		log.Fatalf("unknown format %q", *format)
	}
}
