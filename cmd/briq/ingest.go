package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"briq/client"
)

// runIngest is the `briq ingest` subcommand: stream pages into a briq-server
// (or briq-gateway) POST /v1/ingest and report per-page reuse as results
// arrive.
//
//	briq ingest -addr 127.0.0.1:8080 corpus/        # every *.html in the dir, page_id = relative path
//	cat pages.ndjson | briq ingest -addr :8080      # pre-built {"page_id","html"} lines from stdin
func runIngest(args []string) {
	fs := flag.NewFlagSet("briq ingest", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "briq-server or briq-gateway address")
	quiet := fs.Bool("quiet", false, "only print the final summary line")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: briq ingest [-addr host:port] [-quiet] [dir]")
		fmt.Fprintln(os.Stderr, "  with a directory: ingest every .html/.htm file, page_id = relative path")
		fmt.Fprintln(os.Stderr, "  without: read NDJSON {\"page_id\",\"html\"} lines from stdin")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() > 1 {
		fs.Usage()
		os.Exit(2)
	}

	var next func() (*client.IngestPage, error)
	if fs.NArg() == 1 {
		next = dirPages(fs.Arg(0))
	} else {
		next = stdinPages()
	}

	// Ingest streams outlive the default 30s request timeout by design.
	c, err := client.New(*addr, client.WithHTTPClient(&http.Client{}))
	if err != nil {
		log.Fatal(err)
	}

	var pages, errors, reused, realigned, retracted int
	it := c.Ingest(context.Background(), next)
	for it.Next() {
		r := it.Result()
		pages++
		if r.Error != "" {
			errors++
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", r.PageID, r.Error, r.Code)
			continue
		}
		reused += r.Reused
		realigned += r.Realigned
		retracted += r.Retracted
		if !*quiet {
			fmt.Printf("%s: %d reused, %d realigned, %d retracted\n",
				r.PageID, r.Reused, r.Realigned, r.Retracted)
		}
		if r.PersistErrors > 0 {
			fmt.Fprintf(os.Stderr, "%s: %d persist errors — the server kept the state in memory but the corpus log is incomplete\n",
				r.PageID, r.PersistErrors)
		}
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d pages: %d documents reused, %d realigned, %d retracted, %d page errors\n",
		pages, reused, realigned, retracted, errors)
	if errors > 0 {
		os.Exit(1)
	}
}

// dirPages walks a directory tree once, yielding every .html/.htm file with
// its slash-separated relative path as the page ID — stable across re-crawls
// of the same tree, which is what makes re-ingestion hit the reuse path.
func dirPages(dir string) func() (*client.IngestPage, error) {
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		switch strings.ToLower(filepath.Ext(path)) {
		case ".html", ".htm":
			files = append(files, path)
		}
		return nil
	})
	sort.Strings(files)
	i := 0
	return func() (*client.IngestPage, error) {
		if err != nil {
			return nil, err
		}
		if i >= len(files) {
			return nil, nil
		}
		path := files[i]
		i++
		src, readErr := os.ReadFile(path)
		if readErr != nil {
			return nil, readErr
		}
		rel, relErr := filepath.Rel(dir, path)
		if relErr != nil {
			rel = path
		}
		return &client.IngestPage{PageID: filepath.ToSlash(rel), HTML: string(src)}, nil
	}
}

// stdinPages reads pre-built NDJSON page lines from stdin.
func stdinPages() func() (*client.IngestPage, error) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	return func() (*client.IngestPage, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var pg client.IngestPage
			if err := json.Unmarshal([]byte(line), &pg); err != nil {
				return nil, fmt.Errorf("stdin: %w", err)
			}
			return &pg, nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, nil
	}
}
