// Command briq-train trains the BriQ models (mention-pair classifier and
// text-mention tagger) on a synthetic corpus and writes them to a model
// file that cmd/briq and cmd/briq-server can load without retraining.
//
// Usage:
//
//	briq-train -out briq.model [-pages N] [-seed N] [-tune]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"briq/internal/corpus"
	"briq/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("briq-train: ")

	out := flag.String("out", "", "output model file (required)")
	pages := flag.Int("pages", 495, "training corpus pages")
	seed := flag.Int64("seed", 42, "corpus and training seed")
	tune := flag.Bool("tune", false, "grid-search graph/filter parameters on the validation split (slow)")
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}

	start := time.Now()
	cfg := corpus.TableSConfig(*seed)
	cfg.Pages = *pages
	c := corpus.Generate(cfg)
	split := experiment.SplitCorpus(c, *seed)
	fmt.Printf("corpus: %d pages, %d documents, %d gold alignments (%v)\n",
		len(c.Pages), len(c.Docs), len(c.Gold), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	trained, err := experiment.Train(c, split.Train, experiment.DefaultTrainOptions(*seed))
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("trained on %d samples (%v)\n", len(trained.Data.Samples), time.Since(start).Round(time.Millisecond))

	eval := experiment.Evaluate(experiment.NewBriQ(trained), c, split.Test)
	fmt.Printf("test quality: P=%.3f R=%.3f F1=%.3f\n",
		eval.Overall.Precision, eval.Overall.Recall, eval.Overall.F1)

	if *tune {
		start = time.Now()
		graphTune := experiment.TuneGraph(c, trained, split.Val)
		filterTune := experiment.TuneFilter(c, trained, split.Val)
		fmt.Printf("tuned: graph %v (F1 %.3f), filter %v (F1 %.3f) in %v\n",
			graphTune.Params, graphTune.F1, filterTune.Params, filterTune.F1,
			time.Since(start).Round(time.Millisecond))
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiment.SaveModels(f, trained); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d KB)\n", *out, info.Size()/1024)
}
