// Command corpusgen generates a synthetic web-table corpus (the substrate
// standing in for the Dresden Web Table Corpus) and writes it to disk: one
// HTML file per page plus a gold.json with the ground-truth alignments.
//
// Usage:
//
//	corpusgen -out DIR [-pages N] [-seed N] [-profile tableS|tableL]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"briq/internal/corpus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corpusgen: ")

	out := flag.String("out", "", "output directory (required)")
	pages := flag.Int("pages", 100, "number of pages")
	seed := flag.Int64("seed", 42, "generator seed")
	profile := flag.String("profile", "tableS", "corpus profile: tableS or tableL")
	flag.Parse()

	if *out == "" {
		log.Fatal("-out is required")
	}

	var cfg corpus.Config
	switch *profile {
	case "tableS":
		cfg = corpus.TableSConfig(*seed)
		cfg.Pages = *pages
	case "tableL":
		cfg = corpus.TableLConfig(*seed, *pages)
	default:
		log.Fatalf("unknown profile %q", *profile)
	}

	c := corpus.Generate(cfg)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	for _, pg := range c.Pages {
		path := filepath.Join(*out, pg.ID+".html")
		if err := os.WriteFile(path, []byte(pg.HTML()), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	goldPath := filepath.Join(*out, "gold.json")
	f, err := os.Create(goldPath)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c.Gold); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wrote %d pages (%d documents, %d gold alignments) to %s\n",
		len(c.Pages), len(c.Docs), len(c.Gold), *out)
}
