// Command corpusgen generates a synthetic web-table corpus (the substrate
// standing in for the Dresden Web Table Corpus) and streams it to disk: one
// HTML file per page, an NDJSON manifest (one line per page: id, domain,
// payload size, document and gold counts), and a gold.json with the
// ground-truth alignments.
//
// Usage:
//
//	corpusgen -out DIR [-pages N] [-seed N] [-profile tableS|tableL]
//	corpusgen -out DIR -tot-size 256MB [-seed N] [-profile tableS|tableL]
//
// With -tot-size, pages stream until the cumulative bytes written reach the
// target (within one page, so ±5% for targets beyond ~100 KB) instead of
// stopping at a page count — the corpus-to-rally workflow of load testing:
// generate a corpus of approximately the size you want to serve, then drive
// briq-server over it with cmd/briq-loadgen. Output is streaming in both
// modes: nothing is buffered beyond the current page, so -tot-size 10GB
// needs no more memory than -pages 10. Same seed + same target ⇒
// byte-identical output.
package main

import (
	"flag"
	"fmt"
	"log"

	"briq/internal/corpus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corpusgen: ")

	out := flag.String("out", "", "output directory (required)")
	pages := flag.Int("pages", 100, "number of pages (ignored with -tot-size)")
	seed := flag.Int64("seed", 42, "generator seed")
	profile := flag.String("profile", "tableS", "corpus profile: tableS or tableL")
	totSize := flag.String("tot-size", "", "approximate total corpus size (e.g. 256KB, 100MB, 1GB); overrides -pages")
	paras := flag.Int("paras", 0, "paragraphs per page (0 = profile default); higher = heavier pages")
	refs := flag.Int("refs", 0, "table references per paragraph (0 = profile default)")
	flag.Parse()

	if *out == "" {
		log.Fatal("-out is required")
	}

	var sizeTarget int64
	if *totSize != "" {
		var err error
		sizeTarget, err = corpus.ParseSize(*totSize)
		if err != nil {
			log.Fatal(err)
		}
	}

	var cfg corpus.Config
	switch *profile {
	case "tableS":
		cfg = corpus.TableSConfig(*seed)
		cfg.Pages = *pages
	case "tableL":
		cfg = corpus.TableLConfig(*seed, *pages)
	default:
		log.Fatalf("unknown profile %q", *profile)
	}
	// Page-weight overrides: the serving benches use these to make a corpus
	// of heavyweight pages whose alignment cost dominates cache hits.
	if *paras > 0 {
		cfg.ParasPerPage = *paras
	}
	if *refs > 0 {
		cfg.RefsPerPara = *refs
	}

	stats, err := corpus.WriteDir(*out, cfg, sizeTarget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s to %s\n", stats, *out)
}
