// Command briq-loadgen drives a live briq-server with open-loop load and
// reports what a user at the configured arrival rate would experience.
//
// Usage:
//
//	briq-loadgen -target http://127.0.0.1:8080 -corpus DIR
//	             [-qps 50] [-duration 10s] [-warmup 0s] [-seed 1]
//	             [-zipf 1.2] [-mix align=0.7,batch=0.15,summarize=0.15]
//	             [-batch-pages 8] [-timeout 30s] [-wait 0s]
//	             [-out BENCH_serve.json]
//
// -corpus points at a corpusgen-produced directory (see corpusgen -tot-size);
// pages are posted with Zipf-distributed popularity, rank 0 = the first
// manifest entry. Arrivals follow a seeded Poisson schedule at -qps computed
// before the first request is sent: the generator never slows down because
// the server did, and each latency is measured from the request's scheduled
// arrival time, so queueing delay the server caused is charged to the
// server (no coordinated omission — see internal/loadgen's package docs).
//
// -warmup sends unmeasured traffic first (cache fill); -wait polls /healthz
// until the server is up, for scripted runs that start the server and the
// generator together. The process exits nonzero if the run completes with
// zero successful responses, so smoke scripts fail loudly.
//
// The report — p50/p95/p99 latency per endpoint, achieved vs offered QPS,
// 429/504 shed rates, and the server's cache hit rate over the measured
// window (scraped from /metrics) — prints as a summary and, with -out, is
// written as the committed BENCH_serve.json (schema-tested in
// internal/loadgen).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"briq/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("briq-loadgen: ")

	target := flag.String("target", "http://127.0.0.1:8080", "briq-server base URL")
	corpusDir := flag.String("corpus", "", "corpusgen output directory (required)")
	qps := flag.Float64("qps", 50, "offered arrival rate, requests/second")
	duration := flag.Duration("duration", 10*time.Second, "measured run length")
	warmup := flag.Duration("warmup", 0, "unmeasured lead-in at the same rate (cache fill)")
	seed := flag.Int64("seed", 1, "schedule seed (same seed = same schedule)")
	zipfS := flag.Float64("zipf", 1.2, "Zipf popularity exponent (> 1; higher = hotter head)")
	mixFlag := flag.String("mix", "", "endpoint weights, e.g. align=0.7,batch=0.15,summarize=0.15")
	batchPages := flag.Int("batch-pages", 8, "pages per /align/batch request")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	wait := flag.Duration("wait", 0, "poll /healthz this long for the server to come up")
	out := flag.String("out", "", "write the JSON report here (e.g. BENCH_serve.json)")
	flag.Parse()

	if *corpusDir == "" {
		log.Fatal("-corpus is required")
	}
	mix := loadgen.Mix{}
	if *mixFlag != "" {
		var err error
		mix, err = loadgen.ParseMix(*mixFlag)
		if err != nil {
			log.Fatal(err)
		}
	}

	pages, err := loadgen.LoadCorpusDir(*corpusDir)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %d pages from %s", len(pages), *corpusDir)

	if *wait > 0 {
		if err := waitHealthy(*target, *wait); err != nil {
			log.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := loadgen.Config{
		BaseURL:    *target,
		QPS:        *qps,
		Duration:   *duration,
		Warmup:     *warmup,
		Seed:       *seed,
		ZipfS:      *zipfS,
		Mix:        mix,
		BatchPages: *batchPages,
		Timeout:    *timeout,
	}
	log.Printf("driving %s at %.1f qps for %v (warmup %v, seed %d)", *target, *qps, *duration, *warmup, *seed)
	report, err := loadgen.Run(ctx, cfg, pages)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report)
	if *out != "" {
		if err := report.WriteFile(*out); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	if report.Requests.OK == 0 {
		log.Fatal("no successful responses — is the server trained and reachable?")
	}
}

// waitHealthy polls GET /healthz until it answers 200 or the window closes.
func waitHealthy(target string, window time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(window)
	for {
		resp, err := client.Get(target + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %v: %v", target, window, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
