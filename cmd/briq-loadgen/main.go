// Command briq-loadgen drives a live briq-server with open-loop load and
// reports what a user at the configured arrival rate would experience.
//
// Usage:
//
//	briq-loadgen -target http://127.0.0.1:8080 -corpus DIR
//	             [-qps 50] [-duration 10s] [-warmup 0s] [-seed 1]
//	             [-zipf 1.2] [-mix align=0.7,batch=0.15,summarize=0.15]
//	             [-batch-pages 8] [-batch-blocks] [-timeout 30s] [-wait 0s]
//	             [-out BENCH_serve.json] [-scaling replicas_1|replicas_2|chaos]
//	             [-min-hit-rate 0.5] [-max-error-rate 0.01]
//
// -corpus points at a corpusgen-produced directory (see corpusgen -tot-size);
// pages are posted with Zipf-distributed popularity, rank 0 = the first
// manifest entry. Arrivals follow a seeded Poisson schedule at -qps computed
// before the first request is sent: the generator never slows down because
// the server did, and each latency is measured from the request's scheduled
// arrival time, so queueing delay the server caused is charged to the
// server (no coordinated omission — see internal/loadgen's package docs).
//
// -warmup sends unmeasured traffic first (cache fill); -wait polls /healthz
// until the server is up, for scripted runs that start the server and the
// generator together. The process exits nonzero if the run completes with
// zero successful responses, so smoke scripts fail loudly.
//
// The report — p50/p95/p99 latency per endpoint, achieved vs offered QPS,
// 429/504 shed rates, and the server's cache hit rate over the measured
// window (scraped from /metrics) — prints as a summary and, with -out, is
// written as the committed BENCH_serve.json (schema-tested in
// internal/loadgen). With -scaling, the run is instead merged into -out's
// scaling section under the given slot — how make bench-gateway records its
// 1-vs-2-replica comparison without disturbing the single-server sections.
// -min-hit-rate and -max-error-rate turn the run into an assertion for smoke
// scripts: the process exits nonzero when the measured run misses either
// bound.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"briq/client"
	"briq/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("briq-loadgen: ")

	target := flag.String("target", "http://127.0.0.1:8080", "briq-server base URL")
	corpusDir := flag.String("corpus", "", "corpusgen output directory (required)")
	qps := flag.Float64("qps", 50, "offered arrival rate, requests/second")
	duration := flag.Duration("duration", 10*time.Second, "measured run length")
	warmup := flag.Duration("warmup", 0, "unmeasured lead-in at the same rate (cache fill)")
	seed := flag.Int64("seed", 1, "schedule seed (same seed = same schedule)")
	zipfS := flag.Float64("zipf", 1.2, "Zipf popularity exponent (> 1; higher = hotter head)")
	mixFlag := flag.String("mix", "", "endpoint weights, e.g. align=0.7,batch=0.15,summarize=0.15")
	batchPages := flag.Int("batch-pages", 8, "pages per /align/batch request")
	batchBlocks := flag.Bool("batch-blocks", false,
		"draw batches from fixed non-overlapping page blocks (recurring bodies, shardable by a consistent-hash gateway) instead of fresh Zipf combinations")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	wait := flag.Duration("wait", 0, "poll /healthz this long for the server to come up")
	out := flag.String("out", "", "write the JSON report here (e.g. BENCH_serve.json)")
	scaling := flag.String("scaling", "",
		fmt.Sprintf("merge this run into -out's scaling section under the given slot %v instead of overwriting the report", loadgen.ScalingSlots()))
	minHitRate := flag.Float64("min-hit-rate", 0, "exit nonzero if the measured cache hit rate falls below this")
	maxErrorRate := flag.Float64("max-error-rate", -1, "exit nonzero if the error rate (non-HTTP + unexpected statuses) exceeds this (-1 disables)")
	flag.Parse()

	if *corpusDir == "" {
		log.Fatal("-corpus is required")
	}
	mix := loadgen.Mix{}
	if *mixFlag != "" {
		var err error
		mix, err = loadgen.ParseMix(*mixFlag)
		if err != nil {
			log.Fatal(err)
		}
	}

	pages, err := loadgen.LoadCorpusDir(*corpusDir)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %d pages from %s", len(pages), *corpusDir)

	if *wait > 0 {
		c, err := client.New(*target)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.WaitHealthy(context.Background(), *wait); err != nil {
			log.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := loadgen.Config{
		BaseURL:     *target,
		QPS:         *qps,
		Duration:    *duration,
		Warmup:      *warmup,
		Seed:        *seed,
		ZipfS:       *zipfS,
		Mix:         mix,
		BatchPages:  *batchPages,
		BatchBlocks: *batchBlocks,
		Timeout:     *timeout,
	}
	log.Printf("driving %s at %.1f qps for %v (warmup %v, seed %d)", *target, *qps, *duration, *warmup, *seed)
	report, err := loadgen.Run(ctx, cfg, pages)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report)
	switch {
	case *out != "" && *scaling != "":
		if err := loadgen.MergeScalingInto(*out, *scaling, report, report.AsScalingRun()); err != nil {
			log.Fatal(err)
		}
		log.Printf("merged scaling slot %q into %s", *scaling, *out)
	case *out != "":
		if err := report.WriteFile(*out); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	case *scaling != "":
		log.Fatal("-scaling requires -out")
	}
	if report.Requests.OK == 0 {
		log.Fatal("no successful responses — is the server trained and reachable?")
	}
	if *minHitRate > 0 && report.Serving.CacheHitRate < *minHitRate {
		log.Fatalf("cache hit rate %.3f below -min-hit-rate %.3f", report.Serving.CacheHitRate, *minHitRate)
	}
	if *maxErrorRate >= 0 && report.Rates.Error > *maxErrorRate {
		log.Fatalf("error rate %.3f above -max-error-rate %.3f", report.Rates.Error, *maxErrorRate)
	}
}
