package main

import (
	"time"

	"briq/internal/api"
	"briq/internal/core"
	"briq/internal/obs"
)

// metrics aggregates everything GET /metrics exposes. Counter names are fixed
// at construction and the pipeline stages are pre-registered, so the snapshot
// schema is identical on a cold server and under load — dashboards key on
// field names, and the golden schema test locks them in.
type metrics struct {
	start    time.Time
	requests *obs.CounterSet // per-endpoint request counts
	errors   *obs.CounterSet // responses by failure class
	batch    *obs.CounterSet // /align/batch fan-out volume
	ingest   *obs.CounterSet // /ingest streaming volume and reuse split
	stages   *obs.Recorder   // pipeline stage latencies (shared with core.Pipeline)
	handlers *obs.Recorder   // whole-request latency per endpoint
}

func newMetrics() *metrics {
	routes := api.RouteNames()
	return &metrics{
		start:    time.Now(),
		requests: obs.NewCounterSet(append(routes, "total")...),
		errors:   obs.NewCounterSet("http_4xx", "http_5xx", "panics"),
		batch:    obs.NewCounterSet("pages", "documents", "alignments"),
		ingest:   obs.NewCounterSet("pages", "documents", "reused", "realigned", "retracted", "page_errors"),
		stages:   obs.NewRecorder(core.StageNames()...),
		handlers: obs.NewRecorder(routes...),
	}
}

// snapshot is the GET /metrics response body. Changing its shape breaks the
// golden schema test on purpose: update testdata/metrics_schema.golden in the
// same commit as the dashboards that read it.
func (m *metrics) snapshot() map[string]any {
	return map[string]any{
		"uptime_seconds": time.Since(m.start).Seconds(),
		"requests":       m.requests.Snapshot(),
		"errors":         m.errors.Snapshot(),
		"batch":          m.batch.Snapshot(),
		"ingest":         m.ingest.Snapshot(),
		"stages":         m.stages.Snapshot(),
		"handlers":       m.handlers.Snapshot(),
	}
}
