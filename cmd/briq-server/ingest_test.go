package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"

	"briq"
	"briq/client"
	"briq/internal/corpus"
	"briq/internal/ingest"
)

func decodeIngestLines(t *testing.T, body string) []ingest.Result {
	t.Helper()
	var out []ingest.Result
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" {
			continue
		}
		var r ingest.Result
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("undecodable response line %q: %v", line, err)
		}
		out = append(out, r)
	}
	return out
}

// TestIngestValidationLines drives the per-line failure modes: each bad line
// answers an error line in-stream without aborting the pages after it.
func TestIngestValidationLines(t *testing.T) {
	srv := newTestServer()
	okLine, _ := json.Marshal(ingestLine{PageID: "ok", HTML: testPage})
	body := strings.Join([]string{
		`this is not json`,
		`{"html":"<p>anonymous</p>"}`,
		`{"page_id":"empty","html":""}`,
		``, // blank lines are skipped, not errors
		string(okLine),
	}, "\n")

	rec := do(t, srv, http.MethodPost, "/v1/ingest", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	results := decodeIngestLines(t, rec.Body.String())
	if len(results) != 4 {
		t.Fatalf("got %d response lines, want 4: %+v", len(results), results)
	}
	for i, want := range []struct{ pageID, code string }{
		{"line1", codeBadRequest},
		{"line2", codeBadRequest},
		{"empty", codeBadRequest},
	} {
		if results[i].PageID != want.pageID || results[i].Code != want.code || results[i].Error == "" {
			t.Errorf("line %d = %+v, want page %q code %q", i+1, results[i], want.pageID, want.code)
		}
	}
	ok := results[3]
	if ok.Error != "" || ok.PageID != "ok" || ok.Realigned == 0 || len(ok.Documents) == 0 {
		t.Fatalf("valid page after bad lines = %+v", ok)
	}
	if got := srv.metrics.ingest.Get("pages"); got != 4 {
		t.Errorf("ingest pages counter = %d, want 4", got)
	}
	if got := srv.metrics.ingest.Get("page_errors"); got != 3 {
		t.Errorf("ingest page_errors counter = %d, want 3", got)
	}
	if got := srv.metrics.ingest.Get("realigned"); got != int64(ok.Realigned) {
		t.Errorf("ingest realigned counter = %d, want %d", got, ok.Realigned)
	}
}

func TestIngestWrongMethod(t *testing.T) {
	srv := newTestServer()
	rec := do(t, srv, http.MethodGet, "/v1/ingest", "")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
	var env envelope
	if err := json.NewDecoder(rec.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != codeMethodNotAllowed {
		t.Errorf("error = %+v", env.Error)
	}
}

// ingestPages streams pages through the typed client and fails the test on
// any transport or per-page error.
func ingestPages(t *testing.T, c *client.Client, pages []*corpus.Page) []client.IngestResult {
	t.Helper()
	i := 0
	it := c.Ingest(context.Background(), func() (*client.IngestPage, error) {
		if i >= len(pages) {
			return nil, nil
		}
		pg := pages[i]
		i++
		return &client.IngestPage{PageID: pg.ID, HTML: pg.HTML()}, nil
	})
	var out []client.IngestResult
	for it.Next() {
		r := it.Result()
		if r.Error != "" {
			t.Fatalf("page %s: %s (%s)", r.PageID, r.Error, r.Code)
		}
		out = append(out, r)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestIngestStreamEquivalence is the tentpole acceptance gate over the wire:
// stream a corpus through POST /v1/ingest, mutate one paragraph per page,
// stream it again — then /v1/search and /v1/facts must answer byte-identically
// to a server that aligned only the final corpus from scratch.
func TestIngestStreamEquivalence(t *testing.T) {
	cfg := corpus.TableSConfig(61)
	cfg.Pages = 4
	pages := corpus.Generate(cfg).Pages

	boot := func() (*server, *httptest.Server, *client.Client) {
		srv := newServer(briq.New(), serverOptions{workers: 2})
		ts := httptest.NewServer(srv.routes())
		t.Cleanup(ts.Close)
		c, err := client.New(ts.URL, client.WithHTTPClient(&http.Client{}))
		if err != nil {
			t.Fatal(err)
		}
		return srv, ts, c
	}

	srvA, tsA, cA := boot()
	v1 := ingestPages(t, cA, pages)
	if len(v1) != len(pages) {
		t.Fatalf("v1 ingest answered %d pages, want %d", len(v1), len(pages))
	}
	for _, r := range v1 {
		if r.Reused != 0 || r.Realigned == 0 {
			t.Fatalf("cold page %s over the wire: %+v", r.PageID, r)
		}
	}

	for _, pg := range pages {
		pg.Paras[0] += " Meanwhile, 8 further observations were recorded."
	}
	v2 := ingestPages(t, cA, pages)
	var reused, realigned int
	for _, r := range v2 {
		reused += r.Reused
		realigned += r.Realigned
	}
	if reused == 0 || realigned == 0 {
		t.Fatalf("mutated re-ingest reused %d / realigned %d, want both > 0", reused, realigned)
	}

	srvB, tsB, cB := boot()
	ingestPages(t, cB, pages)

	get := func(ts *httptest.Server, path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, b)
		}
		return string(b)
	}
	for _, q := range []string{
		"/v1/search?op=above&value=0&limit=500",
		"/v1/search?op=below&value=1000&limit=500",
		"/v1/search?op=above&value=0&keywords=total&limit=500",
	} {
		if a, b := get(tsA, q), get(tsB, q); a != b {
			t.Errorf("GET %s diverges between incremental and from-scratch servers", q)
		}
	}
	entsA, entsB := srvA.store.Entities(), srvB.store.Entities()
	if !reflect.DeepEqual(entsA, entsB) {
		t.Fatalf("entity sets diverge: %d vs %d", len(entsA), len(entsB))
	}
	for _, e := range entsA {
		q := "/v1/facts?entity=" + url.QueryEscape(e) + "&limit=500"
		if a, b := get(tsA, q), get(tsB, q); a != b {
			t.Errorf("facts for %q diverge between incremental and from-scratch servers", e)
		}
	}
}
