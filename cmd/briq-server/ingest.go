package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"unicode/utf8"

	"briq/internal/ingest"
)

// ingestLine is one NDJSON request line of POST /v1/ingest.
type ingestLine struct {
	PageID string `json:"page_id"`
	HTML   string `json:"html"`
}

// handleIngest streams pages into the aligned-corpus store: the request body
// is NDJSON, one {"page_id","html"} per line, and the response is NDJSON
// back, one ingest.Result per page in request order. Unlike /align/batch the
// total body is unbounded — only a single line is held in memory, and each
// page is fully processed (segment → fingerprint check → re-align misses →
// upsert) before the next line is read, so memory stays bounded by one
// page's documents regardless of corpus size.
//
// Per-page failures (bad JSON, unalignable HTML, deadline) are reported on
// that page's response line and do not abort the stream; the envelope error
// shape is only used before the stream starts (wrong method).
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, codeMethodNotAllowed, `POST NDJSON lines {"page_id": ..., "html": ...}`)
		return
	}

	// HTTP/1 servers stop reading the request body once the response starts;
	// this handler interleaves both by design, so opt into full duplex
	// (a no-op error on transports that are always duplex).
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	emit := func(res ingest.Result) {
		s.metrics.ingest.Inc("pages")
		if res.Error != "" {
			s.metrics.ingest.Inc("page_errors")
		} else {
			s.metrics.ingest.Add("documents", int64(len(res.Documents)))
			s.metrics.ingest.Add("reused", int64(res.Reused))
			s.metrics.ingest.Add("realigned", int64(res.Realigned))
			s.metrics.ingest.Add("retracted", int64(res.Retracted))
		}
		enc.Encode(res)
		rc.Flush()
	}

	sc := bufio.NewScanner(r.Body)
	// One page per line; a line is capped at the single-page body limit, the
	// stream itself is unbounded.
	sc.Buffer(make([]byte, 0, 64<<10), maxBody)
	lineNo := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		lineNo++
		var pg ingestLine
		if err := json.Unmarshal(line, &pg); err != nil {
			emit(ingest.Result{
				PageID: fmt.Sprintf("line%d", lineNo),
				Error:  fmt.Sprintf("decode line %d: %v", lineNo, err),
				Code:   codeBadRequest,
			})
			continue
		}
		res := ingest.Result{PageID: pg.PageID}
		switch {
		case pg.PageID == "":
			res.PageID = fmt.Sprintf("line%d", lineNo)
			res.Error, res.Code = fmt.Sprintf("line %d: missing page_id", lineNo), codeBadRequest
		case pg.HTML == "":
			res.Error, res.Code = "empty html", codeBadRequest
		case !utf8.ValidString(pg.HTML):
			res.Error, res.Code = "html is not valid UTF-8", codeBadRequest
		case r.Context().Err() != nil:
			res.Error, res.Code = "request deadline exceeded", codeDeadline
		default:
			res = s.ingestor.Page(r.Context(), pg.PageID, pg.HTML)
		}
		emit(res)
		if r.Context().Err() != nil {
			return
		}
	}
	if err := sc.Err(); err != nil {
		// Oversized line or a broken client stream: report it as a final
		// response line (the stream may already be flowing, headers are out).
		emit(ingest.Result{
			PageID: fmt.Sprintf("line%d", lineNo+1),
			Error:  fmt.Sprintf("read stream: %v", err),
			Code:   codePayloadTooLarge,
		})
	}
}
