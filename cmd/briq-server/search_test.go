package main

import (
	"encoding/json"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"briq"
	"briq/internal/facts"
	"briq/internal/quantsearch"
	"briq/internal/store"
)

// searchResult decodes the /search envelope for assertions.
type searchPage struct {
	Result struct {
		Items      []quantsearch.Result `json:"items"`
		NextCursor string               `json:"next_cursor"`
	} `json:"result"`
	Error *apiError `json:"error"`
}

// TestSearchAfterAlign drives the full write path: aligning a page feeds the
// store, and /v1/search immediately finds its table cells — no batch rebuild
// in between.
func TestSearchAfterAlign(t *testing.T) {
	srv := newTestServer()
	if rec := do(t, srv, http.MethodPost, "/align", testPage); rec.Code != 200 {
		t.Fatalf("align status = %d", rec.Code)
	}

	rec := do(t, srv, http.MethodGet, "/v1/search?q=side+effects+above+30", "")
	if rec.Code != 200 {
		t.Fatalf("search status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp searchPage
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Items) == 0 {
		t.Fatalf("no results for aligned page: %s", rec.Body.String())
	}
	for _, it := range resp.Result.Items {
		if it.Value <= 30 {
			t.Errorf("result value %v violates above-30 query", it.Value)
		}
	}

	// The structured form of the same query returns the same items.
	q := url.Values{"op": {"above"}, "value": {"30"}, "keywords": {"side,effects"}}
	rec2 := do(t, srv, http.MethodGet, "/v1/search?"+q.Encode(), "")
	if rec2.Code != 200 {
		t.Fatalf("structured search status = %d: %s", rec2.Code, rec2.Body.String())
	}
	var resp2 searchPage
	if err := json.NewDecoder(rec2.Body).Decode(&resp2); err != nil {
		t.Fatal(err)
	}
	if len(resp2.Result.Items) != len(resp.Result.Items) {
		t.Errorf("structured form returns %d items, q form %d", len(resp2.Result.Items), len(resp.Result.Items))
	}
}

// TestFactsAfterAlign checks /v1/facts surfaces the aligned quantities for a
// row entity of the test page, highest confidence first.
func TestFactsAfterAlign(t *testing.T) {
	srv := newTestServer()
	if rec := do(t, srv, http.MethodPost, "/align", testPage); rec.Code != 200 {
		t.Fatalf("align status = %d", rec.Code)
	}
	entities := srv.store.Entities()
	if len(entities) == 0 {
		t.Fatal("no entities in facts view after align")
	}
	rec := do(t, srv, http.MethodGet, "/v1/facts?entity="+url.QueryEscape(entities[0]), "")
	if rec.Code != 200 {
		t.Fatalf("facts status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Result struct {
			Items      []facts.Fact `json:"items"`
			NextCursor string       `json:"next_cursor"`
		} `json:"result"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Items) == 0 {
		t.Fatalf("no facts for entity %q: %s", entities[0], rec.Body.String())
	}
	for i := 1; i < len(resp.Result.Items); i++ {
		if resp.Result.Items[i].Confidence > resp.Result.Items[i-1].Confidence {
			t.Errorf("facts not confidence-descending at %d", i)
		}
	}
}

// TestSearchFactsValidation drives every list-endpoint failure mode: wrong
// verbs answer 405, uninterpretable parameters answer 422 bad_query.
func TestSearchFactsValidation(t *testing.T) {
	srv := newTestServer()
	tests := []struct {
		name       string
		method     string
		path       string
		wantStatus int
		wantCode   string
	}{
		{"search wrong method", http.MethodPost, "/v1/search", 405, codeMethodNotAllowed},
		{"search no query", http.MethodGet, "/v1/search", 422, codeBadQuery},
		{"search q and structured", http.MethodGet, "/v1/search?q=above+5&value=5", 422, codeBadQuery},
		{"search q without value", http.MethodGet, "/v1/search?q=just+words", 422, codeBadQuery},
		{"search bad op", http.MethodGet, "/v1/search?op=around&value=5", 422, codeBadQuery},
		{"search bad value", http.MethodGet, "/v1/search?value=abc", 422, codeBadQuery},
		{"search op without value", http.MethodGet, "/v1/search?op=above", 422, codeBadQuery},
		{"search between without value2", http.MethodGet, "/v1/search?op=between&value=5", 422, codeBadQuery},
		{"search value2 without between", http.MethodGet, "/v1/search?op=above&value=5&value2=10", 422, codeBadQuery},
		{"search unknown unit", http.MethodGet, "/v1/search?value=5&unit=wombats", 422, codeBadQuery},
		{"search bad cursor", http.MethodGet, "/v1/search?value=5&cursor=xyz", 422, codeBadQuery},
		{"search negative cursor", http.MethodGet, "/v1/search?value=5&cursor=-3", 422, codeBadQuery},
		{"search bad limit", http.MethodGet, "/v1/search?value=5&limit=0", 422, codeBadQuery},
		{"facts wrong method", http.MethodPost, "/v1/facts", 405, codeMethodNotAllowed},
		{"facts missing entity", http.MethodGet, "/v1/facts", 422, codeBadQuery},
		{"facts bad cursor", http.MethodGet, "/v1/facts?entity=rash&cursor=nope", 422, codeBadQuery},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rec := do(t, srv, tt.method, tt.path, "")
			if rec.Code != tt.wantStatus {
				t.Fatalf("status = %d, want %d (body: %.200s)", rec.Code, tt.wantStatus, rec.Body.String())
			}
			var env envelope
			if err := json.NewDecoder(rec.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
			if env.Error == nil || env.Error.Code != tt.wantCode {
				t.Errorf("error = %+v, want code %q", env.Error, tt.wantCode)
			}
		})
	}
}

// TestSearchPagination follows cursors across pages and checks the
// concatenation equals one unpaginated result list.
func TestSearchPagination(t *testing.T) {
	srv := newTestServer()
	if rec := do(t, srv, http.MethodPost, "/align", testPage); rec.Code != 200 {
		t.Fatalf("align status = %d", rec.Code)
	}

	full := do(t, srv, http.MethodGet, "/v1/search?value=0&op=above&limit=100", "")
	var all searchPage
	if err := json.NewDecoder(full.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if len(all.Result.Items) < 3 {
		t.Fatalf("need a few results to paginate, got %d", len(all.Result.Items))
	}

	var paged []quantsearch.Result
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > len(all.Result.Items) {
			t.Fatal("cursor chain did not terminate")
		}
		u := "/v1/search?value=0&op=above&limit=2"
		if cursor != "" {
			u += "&cursor=" + cursor
		}
		var p searchPage
		if err := json.NewDecoder(do(t, srv, http.MethodGet, u, "").Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
		if len(p.Result.Items) > 2 {
			t.Fatalf("page has %d items, limit was 2", len(p.Result.Items))
		}
		paged = append(paged, p.Result.Items...)
		if cursor = p.Result.NextCursor; cursor == "" {
			break
		}
	}
	if len(paged) != len(all.Result.Items) {
		t.Fatalf("paginated walk yields %d items, full list %d", len(paged), len(all.Result.Items))
	}
	for i := range paged {
		if paged[i] != all.Result.Items[i] {
			t.Errorf("item %d differs between paged and full walks", i)
		}
	}
}

// TestListEnvelopeSchemaGolden locks the JSON schema of the /search and
// /facts paginated envelopes — field names and types, not values. Regenerate
// deliberately with:
//
//	go test ./cmd/briq-server -run TestListEnvelopeSchemaGolden -update
func TestListEnvelopeSchemaGolden(t *testing.T) {
	srv := newTestServer()
	if rec := do(t, srv, http.MethodPost, "/align", testPage); rec.Code != 200 {
		t.Fatalf("align status = %d", rec.Code)
	}
	entities := srv.store.Entities()
	if len(entities) == 0 {
		t.Fatal("no entities after align")
	}

	var lines []string
	renderSchema := func(label, body string) {
		var v any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		schemaLines(label, v, &lines)
	}

	ok := do(t, srv, http.MethodGet, "/v1/search?q=side+effects+above+30&limit=2", "")
	if ok.Code != 200 {
		t.Fatalf("search status = %d", ok.Code)
	}
	renderSchema("search_ok", ok.Body.String())

	bad := do(t, srv, http.MethodGet, "/v1/search?value=abc", "")
	if bad.Code != 422 {
		t.Fatalf("bad search status = %d", bad.Code)
	}
	renderSchema("search_error", bad.Body.String())

	fok := do(t, srv, http.MethodGet, "/v1/facts?entity="+url.QueryEscape(entities[0]), "")
	if fok.Code != 200 {
		t.Fatalf("facts status = %d", fok.Code)
	}
	renderSchema("facts_ok", fok.Body.String())

	got := strings.Join(lines, "\n") + "\n"
	golden := filepath.Join("testdata", "list_envelope_schema.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("list envelope schema drifted from golden.\nIf intentional, regenerate with -update.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWarmRestart is the acceptance check for the persistent store: a second
// server booted over the same -store directory answers /v1/search
// byte-identically, and its very first re-POST of an already-aligned page is
// a cache hit.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	searchURL := "/v1/search?q=side+effects+above+30"
	boot := func() (*server, *store.Store) {
		p := briq.New(briq.WithCache(8 << 20))
		st, err := store.Open(store.Options{Dir: dir, Fingerprint: p.Fingerprint(), Gate: p.Gate})
		if err != nil {
			t.Fatal(err)
		}
		return newServer(p, serverOptions{workers: 1, store: st}), st
	}

	srv1, st1 := boot()
	if rec := do(t, srv1, http.MethodPost, "/align", testPage); rec.Code != 200 {
		t.Fatalf("align status = %d", rec.Code)
	}
	want := do(t, srv1, http.MethodGet, searchURL, "").Body.String()
	if !strings.Contains(want, `"doc_id"`) {
		t.Fatalf("first server found nothing: %s", want)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, st2 := boot()
	defer st2.Close()

	// Search state is byte-identical before any request warms anything.
	if got := do(t, srv2, http.MethodGet, searchURL, "").Body.String(); got != want {
		t.Errorf("restarted search differs:\nfirst:\n%s\nsecond:\n%s", want, got)
	}
	c := st2.Counters()
	if c["warm_documents"] == 0 {
		t.Errorf("no documents replayed: %v", c)
	}

	// The very first re-POST of the page is served from the warm cache.
	rec := do(t, srv2, http.MethodPost, "/align", testPage)
	if rec.Code != 200 {
		t.Fatalf("re-align status = %d", rec.Code)
	}
	if hits := srv2.pipeline.Gate.Counters()["hits"]; hits == 0 {
		t.Error("first request after restart missed the warm cache")
	}

	// The duplicate alignment did not double-store the document.
	if c := st2.Counters(); c["documents"] != st1.Counters()["documents"] {
		t.Errorf("restart + re-align changed document count: %d vs %d",
			c["documents"], st1.Counters()["documents"])
	}
}
