package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// schemaLines renders the shape of a decoded JSON value — field paths and
// types, never values — one line per node, sorted keys. Arrays describe their
// first element.
func schemaLines(prefix string, v any, out *[]string) {
	switch t := v.(type) {
	case map[string]any:
		*out = append(*out, prefix+": object")
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			schemaLines(prefix+"."+k, t[k], out)
		}
	case []any:
		*out = append(*out, prefix+": array")
		if len(t) > 0 {
			schemaLines(prefix+"[]", t[0], out)
		}
	case float64:
		*out = append(*out, prefix+": number")
	case string:
		*out = append(*out, prefix+": string")
	case bool:
		*out = append(*out, prefix+": boolean")
	case nil:
		*out = append(*out, prefix+": null")
	default:
		*out = append(*out, fmt.Sprintf("%s: UNEXPECTED %T", prefix, v))
	}
}

func metricsSchema(t *testing.T, srv *server) string {
	t.Helper()
	rec := do(t, srv, "GET", "/metrics", "")
	if rec.Code != 200 {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	var m map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	var lines []string
	schemaLines("metrics", m, &lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestMetricsSchemaGolden locks the /metrics JSON schema — field names and
// types, not values — so dashboards don't silently break across PRs. The
// schema must be identical on a cold server and after traffic (counters are
// pre-registered, not created on first use). Regenerate deliberately with:
//
//	go test ./cmd/briq-server -run TestMetricsSchemaGolden -update
func TestMetricsSchemaGolden(t *testing.T) {
	srv := newTestServer()
	cold := metricsSchema(t, srv)

	body, _ := json.Marshal(batchRequest{Pages: []batchPage{{ID: "a", HTML: testPage}}})
	if rec := do(t, srv, "POST", "/align/batch", string(body)); rec.Code != 200 {
		t.Fatalf("batch status = %d", rec.Code)
	}
	do(t, srv, "POST", "/align", testPage)
	do(t, srv, "GET", "/align", "") // a 4xx, so error counters are exercised too
	warm := metricsSchema(t, srv)

	if cold != warm {
		t.Errorf("schema changed between cold server and after traffic:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}

	golden := filepath.Join("testdata", "metrics_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(warm), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if warm != string(want) {
		t.Errorf("/metrics schema drifted from golden.\nIf intentional, update dashboards and regenerate with -update.\ngot:\n%s\nwant:\n%s", warm, want)
	}
}
