package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"briq"
	"briq/client"
	"briq/internal/core"
)

const testPage = `<html><body>
<p>A total of 123 patients reported side effects, with 69 female patients.</p>
<table>
<caption>side effects reported by patients</caption>
<tr><th>side effects</th><th>male</th><th>female</th><th>total</th></tr>
<tr><td>Rash</td><td>15</td><td>20</td><td>35</td></tr>
<tr><td>Depression</td><td>13</td><td>25</td><td>38</td></tr>
<tr><td>Hypertension</td><td>19</td><td>15</td><td>34</td></tr>
<tr><td>Nausea</td><td>5</td><td>6</td><td>11</td></tr>
<tr><td>Eye Disorders</td><td>2</td><td>3</td><td>5</td></tr>
</table>
</body></html>`

func newTestServer() *server {
	return newServer(briq.New(), serverOptions{workers: 2})
}

// do routes a request through the full middleware stack, exactly as the
// listener would.
func do(t *testing.T, srv *server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	srv.routes().ServeHTTP(rec, req)
	return rec
}

func TestHandleAlign(t *testing.T) {
	srv := newTestServer()
	rec := do(t, srv, http.MethodPost, "/align", testPage)

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Result struct {
			Alignments []briq.Alignment `json:"alignments"`
		} `json:"result"`
		Error *apiError `json:"error"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error != nil {
		t.Fatalf("success response carries error: %+v", resp.Error)
	}
	if len(resp.Result.Alignments) == 0 {
		t.Fatal("no alignments in response")
	}
	foundSum := false
	for _, a := range resp.Result.Alignments {
		if a.AggName == "sum" && a.Value == 123 {
			foundSum = true
		}
	}
	if !foundSum {
		t.Errorf("column sum 123 not in response: %+v", resp.Result.Alignments)
	}
}

// TestErrorPaths drives every endpoint's failure modes through the middleware
// and checks both the status code and the error counters.
func TestErrorPaths(t *testing.T) {
	bigBody := strings.Repeat("a", maxBody+1)
	manyPages := `{"pages": [`
	for i := 0; i <= maxBatchPages; i++ {
		if i > 0 {
			manyPages += ","
		}
		manyPages += fmt.Sprintf(`{"id": "p%d", "html": "<p>x %d</p>"}`, i, i)
	}
	manyPages += `]}`

	tests := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
	}{
		{"align wrong method", http.MethodGet, "/align", "", http.StatusMethodNotAllowed},
		{"align empty body", http.MethodPost, "/align", "", http.StatusBadRequest},
		{"align body over maxBody", http.MethodPost, "/align", bigBody, http.StatusBadRequest},
		{"align malformed (non-UTF-8) HTML", http.MethodPost, "/align", "<p>\xff\xfe broken</p>", http.StatusBadRequest},
		{"summarize wrong method", http.MethodGet, "/summarize", "", http.StatusMethodNotAllowed},
		{"summarize empty body", http.MethodPost, "/summarize", "", http.StatusBadRequest},
		{"batch wrong method", http.MethodGet, "/align/batch", "", http.StatusMethodNotAllowed},
		{"batch malformed JSON", http.MethodPost, "/align/batch", `{"pages": [`, http.StatusBadRequest},
		{"batch no pages", http.MethodPost, "/align/batch", `{"pages": []}`, http.StatusBadRequest},
		{"batch empty html", http.MethodPost, "/align/batch", `{"pages": [{"id": "a", "html": ""}]}`, http.StatusBadRequest},
		{"batch duplicate ids", http.MethodPost, "/align/batch", `{"pages": [{"id": "a", "html": "<p>1</p>"}, {"id": "a", "html": "<p>2</p>"}]}`, http.StatusBadRequest},
		{"batch non-UTF-8 html", http.MethodPost, "/align/batch", `{"pages": [{"id": "a", "html": "�"}]}`, http.StatusOK}, // JSON cannot carry invalid UTF-8; replacement chars are fine
		{"batch too many pages", http.MethodPost, "/align/batch", manyPages, http.StatusRequestEntityTooLarge},
		{"metrics wrong method", http.MethodPost, "/metrics", "", http.StatusMethodNotAllowed},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			srv := newTestServer()
			rec := do(t, srv, tt.method, tt.path, tt.body)
			if rec.Code != tt.wantStatus {
				t.Fatalf("status = %d, want %d (body: %.200s)", rec.Code, tt.wantStatus, rec.Body.String())
			}
			if tt.wantStatus >= 400 && tt.wantStatus < 500 {
				if got := srv.metrics.errors.Get("http_4xx"); got != 1 {
					t.Errorf("http_4xx counter = %d, want 1", got)
				}
			}
		})
	}
}

func TestHandleAlignBatch(t *testing.T) {
	srv := newTestServer()
	body, _ := json.Marshal(batchRequest{Pages: []batchPage{
		{ID: "first", HTML: testPage},
		{HTML: testPage}, // unnamed → page1
		{ID: "plain", HTML: "<p>no tables here, just 42 words</p>"},
	}})
	rec := do(t, srv, http.MethodPost, "/align/batch", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}

	var env struct {
		Result struct {
			Pages      []batchPageResult `json:"pages"`
			Documents  int               `json:"documents"`
			Alignments int               `json:"alignments"`
		} `json:"result"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp := env.Result
	if len(resp.Pages) != 3 {
		t.Fatalf("pages in response = %d, want 3", len(resp.Pages))
	}
	if resp.Pages[0].ID != "first" || resp.Pages[1].ID != "page1" || resp.Pages[2].ID != "plain" {
		t.Errorf("page ids = %q, %q, %q", resp.Pages[0].ID, resp.Pages[1].ID, resp.Pages[2].ID)
	}
	for i := 0; i < 2; i++ {
		if len(resp.Pages[i].Alignments) == 0 {
			t.Errorf("page %d: no alignments", i)
		}
		for _, a := range resp.Pages[i].Alignments {
			if !strings.HasPrefix(a.DocID, resp.Pages[i].ID) {
				t.Errorf("page %d: alignment doc %q not from this page", i, a.DocID)
			}
		}
	}
	// A page without tables aligns nothing but still reports as empty, not null.
	if resp.Pages[2].Alignments == nil || len(resp.Pages[2].Alignments) != 0 {
		t.Errorf("tableless page alignments = %v, want []", resp.Pages[2].Alignments)
	}
	if resp.Alignments == 0 || resp.Documents == 0 {
		t.Errorf("totals = %d docs / %d alignments, want > 0", resp.Documents, resp.Alignments)
	}
}

// TestMetricsChangeAfterBatch is the acceptance check: stage latency and
// request counters visible in GET /metrics must move after a 3-page batch.
func TestMetricsChangeAfterBatch(t *testing.T) {
	srv := newTestServer()
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := func() map[string]any {
		m, err := c.Metrics(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]any, len(m.Raw))
		for section, raw := range m.Raw {
			var v any
			if err := json.Unmarshal(raw, &v); err != nil {
				t.Fatal(err)
			}
			out[section] = v
		}
		return out
	}

	before := snapshot()
	if n := before["requests"].(map[string]any)["align_batch"].(float64); n != 0 {
		t.Fatalf("cold server align_batch count = %v", n)
	}

	if _, err := c.AlignBatch(context.Background(), []client.Page{
		{ID: "a", HTML: testPage}, {ID: "b", HTML: testPage}, {ID: "c", HTML: testPage},
	}); err != nil {
		t.Fatalf("batch failed: %v", err)
	}

	after := snapshot()
	if n := after["requests"].(map[string]any)["align_batch"].(float64); n != 1 {
		t.Errorf("align_batch count = %v, want 1", n)
	}
	if n := after["batch"].(map[string]any)["pages"].(float64); n != 3 {
		t.Errorf("batch pages counter = %v, want 3", n)
	}
	stages := after["stages"].(map[string]any)
	for _, stage := range []string{core.StageSegment, core.StageClassify, core.StageFilter, core.StageResolve} {
		s := stages[stage].(map[string]any)
		if count := s["count"].(float64); count == 0 {
			t.Errorf("stage %q count still 0 after batch", stage)
		}
		if sum := s["sum_ms"].(float64); sum <= 0 {
			t.Errorf("stage %q sum_ms = %v, want > 0", stage, sum)
		}
	}
}

// TestInstrumentRecoversPanics locks in the recovery middleware: a panicking
// handler yields a 500, bumps the panic counter, and leaves the server alive.
func TestInstrumentRecoversPanics(t *testing.T) {
	srv := newTestServer()
	h := srv.instrument("align", func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/align", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if got := srv.metrics.errors.Get("panics"); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
	if got := srv.metrics.errors.Get("http_5xx"); got != 1 {
		t.Errorf("http_5xx counter = %d, want 1", got)
	}
}

// TestRequestDeadline verifies the per-request context deadline answers 504
// deadline at the next cooperative checkpoint instead of burning CPU.
func TestRequestDeadline(t *testing.T) {
	srv := newServer(briq.New(), serverOptions{workers: 1, requestTimeout: time.Nanosecond})
	body, _ := json.Marshal(batchRequest{Pages: []batchPage{{ID: "a", HTML: testPage}}})
	rec := do(t, srv, http.MethodPost, "/align/batch", string(body))
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504", rec.Code)
	}
	var env envelope
	if err := json.NewDecoder(rec.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != codeDeadline {
		t.Errorf("error = %+v, want code %q", env.Error, codeDeadline)
	}
}

func TestHandleSummarize(t *testing.T) {
	srv := newTestServer()
	rec := do(t, srv, http.MethodPost, "/summarize", testPage)

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Result struct {
			Summaries []struct {
				DocID     string   `json:"doc_id"`
				Sentences []string `json:"sentences"`
			} `json:"summaries"`
		} `json:"result"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Summaries) == 0 || len(resp.Result.Summaries[0].Sentences) == 0 {
		t.Fatalf("empty summary: %s", rec.Body.String())
	}
}

// TestWriteJSONEncodeFailure is the writeJSON regression test: when encoding
// fails before anything is written, the client gets a clean 500, not a
// half-committed 200.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]any{"bad": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "encode response") {
		t.Errorf("body = %q, want encode failure message", body)
	}
}

func TestWriteJSONSetsStatusBeforeBody(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusCreated, map[string]any{"ok": true})
	if rec.Code != http.StatusCreated {
		t.Errorf("status = %d, want 201", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var v map[string]bool
	if err := json.NewDecoder(rec.Body).Decode(&v); err != nil || !v["ok"] {
		t.Errorf("body did not round-trip: %v %v", v, err)
	}
}

// TestServeGracefulShutdown exercises the real signal path: serve must return
// cleanly (not crash, not hang) after SIGTERM.
func TestServeGracefulShutdown(t *testing.T) {
	srv := newTestServer()
	httpSrv := &http.Server{Addr: "127.0.0.1:0", Handler: srv.routes()}
	done := make(chan error, 1)
	go func() { done <- serve(httpSrv, 5*time.Second) }()
	// Let serve register its signal handler before the signal fires; an
	// unhandled SIGTERM would kill the whole test binary.
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down after SIGTERM")
	}
}
