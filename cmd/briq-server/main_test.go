package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"briq"
)

const testPage = `<html><body>
<p>A total of 123 patients reported side effects, with 69 female patients.</p>
<table>
<caption>side effects reported by patients</caption>
<tr><th>side effects</th><th>male</th><th>female</th><th>total</th></tr>
<tr><td>Rash</td><td>15</td><td>20</td><td>35</td></tr>
<tr><td>Depression</td><td>13</td><td>25</td><td>38</td></tr>
<tr><td>Hypertension</td><td>19</td><td>15</td><td>34</td></tr>
<tr><td>Nausea</td><td>5</td><td>6</td><td>11</td></tr>
<tr><td>Eye Disorders</td><td>2</td><td>3</td><td>5</td></tr>
</table>
</body></html>`

func newTestServer() *server { return &server{pipeline: briq.New()} }

func TestHandleAlign(t *testing.T) {
	srv := newTestServer()
	req := httptest.NewRequest(http.MethodPost, "/align", strings.NewReader(testPage))
	rec := httptest.NewRecorder()
	srv.handleAlign(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Alignments []briq.Alignment `json:"alignments"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Alignments) == 0 {
		t.Fatal("no alignments in response")
	}
	foundSum := false
	for _, a := range resp.Alignments {
		if a.AggName == "sum" && a.Value == 123 {
			foundSum = true
		}
	}
	if !foundSum {
		t.Errorf("column sum 123 not in response: %+v", resp.Alignments)
	}
}

func TestHandleAlignRejectsGet(t *testing.T) {
	srv := newTestServer()
	rec := httptest.NewRecorder()
	srv.handleAlign(rec, httptest.NewRequest(http.MethodGet, "/align", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("status = %d, want 405", rec.Code)
	}
}

func TestHandleAlignRejectsEmptyBody(t *testing.T) {
	srv := newTestServer()
	rec := httptest.NewRecorder()
	srv.handleAlign(rec, httptest.NewRequest(http.MethodPost, "/align", strings.NewReader("")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", rec.Code)
	}
}

func TestHandleSummarize(t *testing.T) {
	srv := newTestServer()
	req := httptest.NewRequest(http.MethodPost, "/summarize", strings.NewReader(testPage))
	rec := httptest.NewRecorder()
	srv.handleSummarize(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Summaries []struct {
			DocID     string   `json:"doc_id"`
			Sentences []string `json:"sentences"`
		} `json:"summaries"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Summaries) == 0 || len(resp.Summaries[0].Sentences) == 0 {
		t.Fatalf("empty summary: %s", rec.Body.String())
	}
}
