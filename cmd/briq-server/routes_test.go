package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"briq/internal/api"
)

// TestRouteSurface walks the shared route table: every endpoint must answer
// on its /v1 path, and on the legacy alias with the deprecation header — and
// only there. This is the briq-server half of the "gateway is a drop-in for
// the server" contract; briq-gateway has the mirror-image test.
func TestRouteSurface(t *testing.T) {
	srv := newTestServer()
	handler := srv.routes()

	for _, route := range api.Surface() {
		for _, tc := range []struct {
			path       string
			deprecated bool
		}{
			{api.Versioned(route.Path), false},
			{route.Path, true},
		} {
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, tc.path, nil))
			if rec.Code == http.StatusNotFound {
				t.Errorf("%s: not mounted", tc.path)
				continue
			}
			dep := rec.Header().Get(api.DeprecationHeader)
			if tc.deprecated && dep != "use "+api.Versioned(route.Path) {
				t.Errorf("%s: deprecation header = %q, want pointer to %s", tc.path, dep, api.Versioned(route.Path))
			}
			if !tc.deprecated && dep != "" {
				t.Errorf("%s: versioned path carries deprecation header %q", tc.path, dep)
			}
		}
	}
}

// TestLegacyAliasSameBody: the alias must serve the identical handler, not a
// redirect — byte-identical body, same status.
func TestLegacyAliasSameBody(t *testing.T) {
	srv := newTestServer()
	handler := srv.routes()
	page := `<html><body><table><tr><th>City</th><th>Pop</th></tr><tr><td>A</td><td>100</td></tr></table><p>The population is 100 people.</p></body></html>`

	post := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader(page)))
		return rec
	}
	v1 := post("/v1/align")
	legacy := post("/align")
	if v1.Code != legacy.Code {
		t.Fatalf("status mismatch: /v1/align=%d /align=%d", v1.Code, legacy.Code)
	}
	if v1.Body.String() != legacy.Body.String() {
		t.Errorf("alias body differs from versioned body:\n%s\nvs\n%s", legacy.Body.String(), v1.Body.String())
	}
}
