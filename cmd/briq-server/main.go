// Command briq-server exposes quantity alignment as an HTTP service.
//
//	briq-server [-addr :8080] [-trained] [-seed N]
//
// Endpoints:
//
//	POST /align        HTML page body → JSON alignments
//	POST /summarize    HTML page body → JSON table-aware summary
//	GET  /healthz      liveness probe
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"briq"
	"briq/internal/document"
	"briq/internal/htmlx"
	"briq/internal/summarize"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("briq-server: ")

	addr := flag.String("addr", ":8080", "listen address")
	trained := flag.Bool("trained", false, "train models on a synthetic corpus at startup")
	seed := flag.Int64("seed", 42, "training seed (with -trained)")
	flag.Parse()

	pipeline := briq.New()
	if *trained {
		start := time.Now()
		var err error
		pipeline, err = briq.NewTrained(*seed)
		if err != nil {
			log.Fatalf("training: %v", err)
		}
		log.Printf("trained models in %v", time.Since(start).Round(time.Millisecond))
	}

	srv := &server{pipeline: pipeline}
	mux := http.NewServeMux()
	mux.HandleFunc("/align", srv.handleAlign)
	mux.HandleFunc("/summarize", srv.handleSummarize)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	log.Printf("listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

type server struct {
	pipeline *briq.Pipeline
}

// maxBody caps request bodies at 8 MiB — generous for web pages.
const maxBody = 8 << 20

func (s *server) readPage(w http.ResponseWriter, r *http.Request) (string, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an HTML page body", http.StatusMethodNotAllowed)
		return "", false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
		return "", false
	}
	if len(body) == 0 {
		http.Error(w, "empty body", http.StatusBadRequest)
		return "", false
	}
	return string(body), true
}

func (s *server) handleAlign(w http.ResponseWriter, r *http.Request) {
	src, ok := s.readPage(w, r)
	if !ok {
		return
	}
	alignments, err := briq.AlignHTML(s.pipeline, "request", src)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, map[string]any{"alignments": alignments})
}

func (s *server) handleSummarize(w http.ResponseWriter, r *http.Request) {
	src, ok := s.readPage(w, r)
	if !ok {
		return
	}
	page := htmlx.ParseString(src)
	seg := s.pipeline.Segmenter
	if seg == nil {
		seg = document.NewSegmenter()
	}
	docs, err := seg.SegmentPage("request", page)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	summarizer := summarize.New(s.pipeline)
	type docSummary struct {
		DocID     string   `json:"doc_id"`
		Sentences []string `json:"sentences"`
	}
	var out []docSummary
	for _, doc := range docs {
		sum := summarizer.Summarize(doc)
		ds := docSummary{DocID: doc.ID}
		for _, sent := range sum.Sentences {
			ds.Sentences = append(ds.Sentences, sent.Text)
		}
		out = append(out, ds)
	}
	writeJSON(w, map[string]any{"summaries": out})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}
