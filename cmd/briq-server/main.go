// Command briq-server exposes quantity alignment as a production HTTP
// service.
//
//	briq-server [-addr :8080] [-trained] [-seed N] [-model file] [-workers N]
//	            [-resolver rwr|ilp|greedy] [-ilp-budget 200ms]
//	            [-cache-bytes N] [-max-inflight N] [-store dir]
//	            [-request-timeout 30s] [-shutdown-timeout 15s] [-pprof] [-quiet]
//
// Endpoints (served under /v1; the bare legacy paths remain as deprecated
// aliases that answer identically but carry an X-Briq-Deprecated-Path header):
//
//	POST /v1/align         HTML page body → JSON alignments
//	POST /v1/align/batch   JSON {"pages": [{"id", "html"}]} → per-page alignments,
//	                       fanned out over the pipeline worker pool
//	POST /v1/summarize     HTML page body → JSON table-aware summary
//	GET  /v1/search        quantity query (q=… natural language, or structured
//	                       op/value/value2/unit/keywords) over every alignment
//	                       this server has produced, paginated via cursor/limit
//	GET  /v1/facts         entity=… → that entity's aligned quantities,
//	                       confidence descending, paginated via cursor/limit
//	GET  /v1/metrics       JSON snapshot: request/error counters, per-stage and
//	                       per-endpoint latency histograms, batch volume, the
//	                       serving layer (cache hits/misses/evictions, sheds),
//	                       the aligned-corpus store, and the model fingerprint
//	GET  /v1/healthz       liveness probe
//	GET  /debug/pprof/     runtime profiles (only with -pprof)
//
// -store DIR persists every successful alignment to an append-only log in DIR
// and replays it on boot: the serve cache starts warm, and /v1/search and
// /v1/facts answer over the whole stored corpus, not just this process's
// lifetime. The directory is bound to the model fingerprint — pointing a
// differently-trained server at it refuses to start. Without -store, the
// search index and facts view still work but cover only the current process.
//
// With -model, the server boots from a briq-train bundle instead of training;
// a replica fleet booted from one bundle shares a model fingerprint, which is
// what lets briq-gateway shard the content-addressed cache across it.
//
// The alignment endpoints answer with a uniform JSON envelope
// {"result": …, "error": null} / {"result": null, "error": {"code", "message"}}
// with a stable error-code table (422 no_tables/no_mentions, 429 overloaded
// with Retry-After, 504 deadline, …).
//
// -cache-bytes bounds a content-addressed result cache: re-POSTing a page (or
// a batch document) already aligned under the same models is served from
// memory, byte-identical to a fresh run, and identical concurrent requests
// coalesce into one pipeline run. -max-inflight bounds concurrently admitted
// alignment computations; excess load beyond a small wait queue is shed with
// 429 instead of piling up.
//
// The server runs with read/write/idle timeouts and a per-request context
// deadline. On SIGINT or SIGTERM it stops accepting connections, drains
// in-flight requests for up to -shutdown-timeout, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"briq"
	"briq/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("briq-server: ")

	addr := flag.String("addr", ":8080", "listen address")
	trained := flag.Bool("trained", false, "train models on a synthetic corpus at startup")
	seed := flag.Int64("seed", 42, "training seed (with -trained)")
	model := flag.String("model", "", "load models from a briq-train file instead of training (replica fleet boot)")
	workers := flag.Int("workers", 0, "batch alignment workers (0 = all cores)")
	resolver := flag.String("resolver", "rwr",
		fmt.Sprintf("global-resolution strategy %v", briq.ResolverNames()))
	ilpBudget := flag.Duration("ilp-budget", 0,
		"per-document solve budget for -resolver ilp (0 = built-in default; exhaustion falls back to rwr)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "content-addressed result cache budget in bytes (0 disables)")
	storeDir := flag.String("store", "", "persist aligned documents to this directory and replay them on boot")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently admitted alignment computations (0 = unbounded)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 15*time.Second, "drain window on SIGINT/SIGTERM")
	enablePprof := flag.Bool("pprof", false, "serve /debug/pprof/ profiles")
	quiet := flag.Bool("quiet", false, "disable per-request access logging")
	flag.Parse()

	// An unknown resolver is a deployment mistake, not something to limp past
	// with a silent fallback: refuse to start.
	if !briq.KnownResolver(*resolver) {
		log.Fatalf("unknown -resolver %q (known: %v)", *resolver, briq.ResolverNames())
	}

	var pipelineOpts []briq.Option
	if *workers > 0 {
		pipelineOpts = append(pipelineOpts, briq.WithWorkers(*workers))
	}
	var resolverOpts []briq.ResolverOption
	if *ilpBudget > 0 {
		resolverOpts = append(resolverOpts, briq.WithILPBudget(*ilpBudget))
	}
	pipelineOpts = append(pipelineOpts, briq.WithResolver(*resolver, resolverOpts...))
	if *cacheBytes > 0 {
		pipelineOpts = append(pipelineOpts, briq.WithCache(*cacheBytes))
	}
	if *maxInFlight > 0 {
		pipelineOpts = append(pipelineOpts, briq.WithMaxInFlight(*maxInFlight))
	}
	start := time.Now()
	var pipeline *briq.Pipeline
	switch {
	case *model != "":
		// Fleet boot: every replica loads the same briq-train bundle, so the
		// fleet shares one model fingerprint and a gateway can shard the
		// content-addressed cache across it.
		if *trained {
			log.Fatal("-model and -trained are mutually exclusive")
		}
		var err error
		pipeline, err = briq.NewFromModelFile(*model, pipelineOpts...)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded models from %s in %v", *model, time.Since(start).Round(time.Millisecond))
	case *trained:
		pipeline = briq.New(append(pipelineOpts, briq.WithTrainedSeed(*seed))...)
		log.Printf("trained models in %v", time.Since(start).Round(time.Millisecond))
	default:
		pipeline = briq.New(pipelineOpts...)
	}

	opts := serverOptions{
		workers:        *workers,
		requestTimeout: *requestTimeout,
		enablePprof:    *enablePprof,
	}
	if !*quiet {
		opts.logger = log.Default()
	}
	if *storeDir != "" {
		st, err := store.Open(store.Options{
			Dir:         *storeDir,
			Fingerprint: pipeline.Fingerprint(),
			Gate:        pipeline.Gate,
			Logf:        log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		c := st.Counters()
		log.Printf("store %s: replayed %d documents, %d cache records (%d bytes, %d lines skipped)",
			*storeDir, c["warm_documents"], c["warm_cache_records"], c["log_bytes"], c["replay_skipped"])
		opts.store = st
	}
	srv := newServer(pipeline, opts)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      90 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	log.Printf("listening on %s (workers=%d, resolver=%s, request-timeout=%v, cache-bytes=%d, max-inflight=%d, store=%q, pprof=%v)",
		*addr, *workers, *resolver, *requestTimeout, *cacheBytes, *maxInFlight, *storeDir, *enablePprof)
	if err := serve(httpSrv, *shutdownTimeout); err != nil {
		log.Fatal(err)
	}
	log.Printf("shutdown complete")
}

// serve runs the server until it fails or a termination signal arrives, then
// drains gracefully for up to the given window before forcing connections
// closed.
func serve(srv *http.Server, drain time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		return fmt.Errorf("listen: %w", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("signal received, draining for up to %v", drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			srv.Close()
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
