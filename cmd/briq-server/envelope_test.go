package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"briq"
	gate "briq/internal/serve"
)

// TestErrorCodeTable locks the stable error-code → HTTP status contract:
// clients branch on error.code, proxies on the status, and neither may move
// independently of the other.
func TestErrorCodeTable(t *testing.T) {
	want := map[string]int{
		codeBadRequest:       400,
		codeMethodNotAllowed: 405,
		codePayloadTooLarge:  413,
		codeNoTables:         422,
		codeNoMentions:       422,
		codeUnprocessable:    422,
		codeBadQuery:         422,
		codeOverloaded:       429,
		codeInternal:         500,
		codeUnavailable:      503,
		codeDeadline:         504,
	}
	if len(errorStatus) != len(want) {
		t.Fatalf("errorStatus has %d codes, want %d — extend this test with the new code", len(errorStatus), len(want))
	}
	for code, status := range want {
		got, ok := errorStatus[code]
		if !ok {
			t.Errorf("code %q missing from errorStatus", code)
			continue
		}
		if got != status {
			t.Errorf("code %q → %d, want %d", code, got, status)
		}
	}
}

// TestWriteErrorEnvelope checks the wire shape of an error response and that
// an unknown code degrades to 500 internal rather than panicking or leaking
// an unregistered code.
func TestWriteErrorEnvelope(t *testing.T) {
	rec := do(t, newTestServer(), http.MethodGet, "/align", "")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
	body := rec.Body.String()
	var env envelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatal(err)
	}
	if env.Result != nil {
		t.Errorf("error response result = %v, want null", env.Result)
	}
	if env.Error == nil || env.Error.Code != codeMethodNotAllowed || env.Error.Message == "" {
		t.Errorf("error = %+v, want code %q with a message", env.Error, codeMethodNotAllowed)
	}
	// The raw body must carry both envelope keys, even when one is null.
	for _, key := range []string{`"result"`, `"error"`, `"code"`, `"message"`} {
		if !strings.Contains(body, key) {
			t.Errorf("envelope body missing %s: %s", key, body)
		}
	}
}

func TestWriteErrorUnknownCode(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, "no_such_code", "boom")
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("unknown code status = %d, want 500", rec.Code)
	}
	var env envelope
	if err := json.NewDecoder(rec.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != codeInternal {
		t.Errorf("unknown code mapped to %+v, want %q", env.Error, codeInternal)
	}
}

// TestEnvelopeSchemaGolden locks the envelope JSON schema for the success and
// error shapes of /align — field names and types, not values. Regenerate
// deliberately with:
//
//	go test ./cmd/briq-server -run TestEnvelopeSchemaGolden -update
func TestEnvelopeSchemaGolden(t *testing.T) {
	srv := newTestServer()

	var lines []string
	renderSchema := func(label, body string) {
		var v any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		schemaLines(label, v, &lines)
	}

	ok := do(t, srv, http.MethodPost, "/align", testPage)
	if ok.Code != 200 {
		t.Fatalf("align status = %d", ok.Code)
	}
	renderSchema("align_ok", ok.Body.String())

	noTables := do(t, srv, http.MethodPost, "/align", "<p>just 42 words, no table</p>")
	if noTables.Code != 422 {
		t.Fatalf("no-tables status = %d", noTables.Code)
	}
	renderSchema("align_error", noTables.Body.String())

	got := strings.Join(lines, "\n") + "\n"
	golden := filepath.Join("testdata", "envelope_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("envelope schema drifted from golden.\nIf intentional, regenerate with -update.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestOverloadSheds429 is the acceptance check for admission control: with
// every in-flight slot taken and no queue, /align answers 429 overloaded with
// a Retry-After hint — deterministically, because the test itself holds the
// only slot. Releasing the slot restores 200 service.
func TestOverloadSheds429(t *testing.T) {
	p := briq.New()
	p.Gate = gate.NewEngine(gate.Config{
		Fingerprint: p.Fingerprint(),
		CacheBytes:  1 << 20,
		MaxInFlight: 1,
		MaxQueue:    0, // shed immediately when saturated: no queue to hide in
	})
	srv := newServer(p, serverOptions{workers: 1})

	release, err := p.Gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	rec := do(t, srv, http.MethodPost, "/align", testPage)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429 (body: %.300s)", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	var env envelope
	if err := json.NewDecoder(rec.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != codeOverloaded {
		t.Errorf("error = %+v, want code %q", env.Error, codeOverloaded)
	}
	if c := p.Gate.Counters(); c["shed_overloaded"] != 1 {
		t.Errorf("shed_overloaded = %d, want 1", c["shed_overloaded"])
	}

	release()
	if rec := do(t, srv, http.MethodPost, "/align", testPage); rec.Code != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200 (body: %.300s)", rec.Code, rec.Body.String())
	}

	// The batch path occupies a slot the same way: saturate again and check
	// the corpus endpoint sheds too.
	release2, err := p.Gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	body, _ := json.Marshal(batchRequest{Pages: []batchPage{{ID: "a", HTML: testPage}}})
	if rec := do(t, srv, http.MethodPost, "/align/batch", string(body)); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated batch status = %d, want 429", rec.Code)
	}
}

// TestServerCacheHitByteIdentical re-POSTs the same page to a cached server:
// the second response must be byte-for-byte the first, and the serving
// counters must show the hit.
func TestServerCacheHitByteIdentical(t *testing.T) {
	srv := newServer(briq.New(briq.WithCache(8<<20)), serverOptions{workers: 1})

	first := do(t, srv, http.MethodPost, "/align", testPage)
	if first.Code != 200 {
		t.Fatalf("first status = %d", first.Code)
	}
	second := do(t, srv, http.MethodPost, "/align", testPage)
	if second.Code != 200 {
		t.Fatalf("second status = %d", second.Code)
	}
	if first.Body.String() != second.Body.String() {
		t.Errorf("cache hit response differs from fresh response:\nfirst:\n%s\nsecond:\n%s",
			first.Body.String(), second.Body.String())
	}

	c := srv.pipeline.Gate.Counters()
	if c["hits"] != 1 || c["stores"] != 1 {
		t.Errorf("serving counters = hits:%d stores:%d, want 1 and 1", c["hits"], c["stores"])
	}

	// /metrics surfaces the same counters under the serving section.
	rec := do(t, srv, http.MethodGet, "/metrics", "")
	var m map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	serving, ok := m["serving"].(map[string]any)
	if !ok {
		t.Fatalf("/metrics has no serving section: %v", m)
	}
	if serving["hits"].(float64) != 1 {
		t.Errorf("/metrics serving.hits = %v, want 1", serving["hits"])
	}
}
