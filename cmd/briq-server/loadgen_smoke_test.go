package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"briq"
	"briq/internal/corpus"
	"briq/internal/loadgen"
)

// loadgenPages renders a tiny deterministic corpus into the page form the
// harness posts — the same pages corpusgen would write to disk.
func loadgenPages(t *testing.T, n int) []loadgen.Page {
	t.Helper()
	cfg := corpus.TableSConfig(42)
	cfg.Pages = n
	c := corpus.Generate(cfg)
	pages := make([]loadgen.Page, 0, len(c.Pages))
	for _, pg := range c.Pages {
		pages = append(pages, loadgen.Page{ID: pg.ID, HTML: pg.HTML()})
	}
	return pages
}

// TestLoadgenSmokeHitRate drives a real briq-server (full middleware stack,
// result cache enabled) through the open-loop harness: zipf-skewed repeats
// of a tiny corpus must produce cache hits, and the scraped hit rate must
// land in the report.
func TestLoadgenSmokeHitRate(t *testing.T) {
	srv := newServer(briq.New(briq.WithCache(8<<20)), serverOptions{workers: 2})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  ts.URL,
		QPS:      120,
		Duration: time.Second,
		Seed:     11,
		Mix:      loadgen.Mix{Align: 1},
	}, loadgenPages(t, 6))
	if err != nil {
		t.Fatal(err)
	}

	if rep.Requests.OK == 0 {
		t.Fatalf("no successful aligns: %+v", rep.Requests)
	}
	if !rep.Serving.ScrapeOK {
		t.Fatal("metrics scrape failed against the real server")
	}
	if rep.Serving.Hits == 0 || rep.Serving.CacheHitRate <= 0 {
		t.Errorf("zipf repeats produced no cache hits: %+v", rep.Serving)
	}
	if rep.LatencyMs.Overall.Count != rep.Requests.Sent {
		t.Errorf("latency count %d != sent %d", rep.LatencyMs.Overall.Count, rep.Requests.Sent)
	}
}

// TestLoadgenSmokeShedAccounting forces overload — admission bounded to one
// in-flight computation, slow batch requests arriving faster than they
// drain — and cross-checks the client's 429/504 counts against the server's
// own shed counters: every shed the server records must come back as a
// counted 429 (or 504) in the report, and the rates must derive from those
// counts.
func TestLoadgenSmokeShedAccounting(t *testing.T) {
	srv := newServer(briq.New(briq.WithMaxInFlight(1)), serverOptions{workers: 1})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:    ts.URL,
		QPS:        60,
		Duration:   1500 * time.Millisecond,
		Seed:       13,
		Mix:        loadgen.Mix{Batch: 1},
		BatchPages: 6,
	}, loadgenPages(t, 6))
	if err != nil {
		t.Fatal(err)
	}

	if rep.Requests.Shed429 == 0 {
		t.Fatalf("forced overload shed nothing: %+v", rep.Requests)
	}
	if !rep.Serving.ScrapeOK {
		t.Fatal("metrics scrape failed against the real server")
	}
	if rep.Serving.ShedOverloaded != rep.Requests.Shed429 {
		t.Errorf("server shed_overloaded = %d, client 429s = %d — accounting mismatch",
			rep.Serving.ShedOverloaded, rep.Requests.Shed429)
	}
	if rep.Serving.ShedDeadline != rep.Requests.Deadline504 {
		t.Errorf("server shed_deadline = %d, client 504s = %d — accounting mismatch",
			rep.Serving.ShedDeadline, rep.Requests.Deadline504)
	}
	wantRate := float64(rep.Requests.Shed429) / float64(rep.Requests.Sent)
	if rep.Rates.Shed429 != wantRate {
		t.Errorf("shed rate = %v, want %v", rep.Rates.Shed429, wantRate)
	}
}
