package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"

	"briq"
	"briq/internal/api"
	"briq/internal/core"
	"briq/internal/document"
	"briq/internal/facts"
	"briq/internal/htmlx"
	"briq/internal/ingest"
	"briq/internal/qkb"
	"briq/internal/quantsearch"
	"briq/internal/store"
	"briq/internal/summarize"
)

// maxBody caps request bodies at 8 MiB — generous for web pages.
const maxBody = 8 << 20

// maxBatchPages caps one /align/batch request; larger workloads should shard
// across requests so a single call cannot monopolize the worker pool.
const maxBatchPages = 256

// The error-code table, the envelope shape, and the route list all live in
// internal/api now — shared verbatim with briq-gateway and package client.
// These aliases keep the server's handlers and tests reading in local terms.
const (
	codeBadRequest       = api.CodeBadRequest
	codeMethodNotAllowed = api.CodeMethodNotAllowed
	codePayloadTooLarge  = api.CodePayloadTooLarge
	codeNoTables         = api.CodeNoTables
	codeNoMentions       = api.CodeNoMentions
	codeUnprocessable    = api.CodeUnprocessable
	codeBadQuery         = api.CodeBadQuery
	codeOverloaded       = api.CodeOverloaded
	codeInternal         = api.CodeInternal
	codeUnavailable      = api.CodeUnavailable
	codeDeadline         = api.CodeDeadline
)

var errorStatus = api.StatusByCode

type (
	envelope = api.Envelope
	apiError = api.Error
)

// serverOptions configure the HTTP layer around the pipeline.
type serverOptions struct {
	workers        int           // AlignAll fan-out width (≤0 = GOMAXPROCS)
	requestTimeout time.Duration // per-request context deadline (0 = none)
	enablePprof    bool
	logger         *log.Logger  // nil silences request logging
	store          *store.Store // nil builds a memory-only store
}

type server struct {
	pipeline *briq.Pipeline
	metrics  *metrics
	store    *store.Store
	ingestor *ingest.Ingestor
	opts     serverOptions
}

// newServer wires a pipeline into the HTTP layer. The pipeline's Recorder is
// pointed at the server's metrics, its Workers at the configured fan-out,
// and its Sink at the aligned-corpus store (a memory-only one when main
// didn't open a persistent directory — /v1/search and /v1/facts work either
// way) before any request runs; after that the pipeline is shared read-only
// across handler goroutines.
func newServer(pipeline *briq.Pipeline, opts serverOptions) *server {
	if opts.logger == nil {
		opts.logger = log.New(io.Discard, "", 0)
	}
	m := newMetrics()
	pipeline.Recorder = m.stages
	if opts.workers > 0 {
		pipeline.Workers = opts.workers
	}
	st := opts.store
	if st == nil {
		var err error
		st, err = store.Open(store.Options{
			Fingerprint: pipeline.Fingerprint(),
			Gate:        pipeline.Gate,
			Logf:        opts.logger.Printf,
		})
		if err != nil {
			// Memory-only Open cannot fail today; guard the invariant anyway.
			panic("open memory store: " + err.Error())
		}
	}
	pipeline.Sink = st
	for _, warn := range pipeline.ConfigWarnings {
		opts.logger.Printf("config: %s", warn)
	}
	ing := ingest.New(pipeline, st, ingest.Options{Workers: opts.workers})
	return &server{pipeline: pipeline, metrics: m, store: st, ingestor: ing, opts: opts}
}

// routes builds the full handler tree from the shared route table: every
// endpoint wrapped in the logging/recovery/metrics middleware, served under
// /v1 with the legacy unversioned path kept as a deprecated alias.
func (s *server) routes() http.Handler {
	handlers := map[string]http.HandlerFunc{
		"align":       s.handleAlign,
		"align_batch": s.handleAlignBatch,
		"ingest":      s.handleIngest,
		"summarize":   s.handleSummarize,
		"search":      s.handleSearch,
		"facts":       s.handleFacts,
		"metrics":     s.handleMetrics,
		"healthz":     s.handleHealthz,
	}
	mux := http.NewServeMux()
	for _, r := range api.Surface() {
		h, ok := handlers[r.Name]
		if !ok {
			panic("no handler for route " + r.Name)
		}
		api.Mount(mux, r, s.instrument(r.Name, h))
	}
	if s.opts.enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusWriter captures the response status for logging and error counting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer to http.ResponseController — the
// streaming ingest handler needs Flush and EnableFullDuplex through the
// middleware wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with the production middleware: request
// counting, per-request context deadline, panic recovery (500 + counter, the
// process survives), status-class error counters, endpoint latency, and an
// access log line.
func (s *server) instrument(name string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.requests.Inc(name)
		s.metrics.requests.Inc("total")

		ctx := r.Context()
		if s.opts.requestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opts.requestTimeout)
			defer cancel()
		}

		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				s.metrics.errors.Inc("panics")
				if sw.status == 0 {
					writeError(sw, codeInternal, "internal server error")
				}
				s.opts.logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			}
			switch {
			case sw.status >= 500:
				s.metrics.errors.Inc("http_5xx")
			case sw.status >= 400:
				s.metrics.errors.Inc("http_4xx")
			}
			s.metrics.handlers.Observe(name, time.Since(start))
			s.opts.logger.Printf("%s %s %d %v", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
		}()

		h(sw, r.WithContext(ctx))
	})
}

// readPage reads and validates a raw-HTML request body. It reports the
// failure itself and returns ok=false when the request is unusable.
func (s *server) readPage(w http.ResponseWriter, r *http.Request) (string, bool) {
	if r.Method != http.MethodPost {
		writeError(w, codeMethodNotAllowed, "POST an HTML page body")
		return "", false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		writeError(w, codeBadRequest, fmt.Sprintf("read body: %v", err))
		return "", false
	}
	if len(body) == 0 {
		writeError(w, codeBadRequest, "empty body")
		return "", false
	}
	if !utf8.Valid(body) {
		writeError(w, codeBadRequest, "body is not valid UTF-8 text")
		return "", false
	}
	return string(body), true
}

func (s *server) handleAlign(w http.ResponseWriter, r *http.Request) {
	src, ok := s.readPage(w, r)
	if !ok {
		return
	}
	if deadlineExceeded(w, r.Context()) {
		return
	}
	alignments, err := briq.AlignHTMLContext(r.Context(), s.pipeline, "request", src)
	if err != nil {
		if !deadlineExceeded(w, r.Context()) {
			writeAlignError(w, err)
		}
		return
	}
	writeResult(w, map[string]any{"alignments": alignments})
}

// batchRequest is the POST /align/batch body.
type batchRequest struct {
	Pages []batchPage `json:"pages"`
}

type batchPage struct {
	ID   string `json:"id"` // optional; defaults to page<index>
	HTML string `json:"html"`
}

type batchPageResult struct {
	ID         string           `json:"id"`
	Documents  int              `json:"documents"`
	Alignments []briq.Alignment `json:"alignments"`
}

// handleAlignBatch aligns many pages in one request: each page is segmented,
// then all documents go through the facade's corpus path — fanning out over a
// pool of pipeline clones, consulting the serving layer's per-document result
// cache when one is configured, and occupying one admission slot for the
// whole corpus. The request context cancels the run mid-corpus, and stage
// observations merge into the server metrics when the run ends.
func (s *server) handleAlignBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, codeMethodNotAllowed, `POST JSON {"pages": [{"id": ..., "html": ...}]}`)
		return
	}
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, codeBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if len(req.Pages) == 0 {
		writeError(w, codeBadRequest, "no pages in request")
		return
	}
	if len(req.Pages) > maxBatchPages {
		writeError(w, codePayloadTooLarge, fmt.Sprintf("too many pages: %d > %d", len(req.Pages), maxBatchPages))
		return
	}

	seg := s.pipeline.Segmenter
	if seg == nil {
		seg = document.NewSegmenter()
	}

	results := make([]batchPageResult, len(req.Pages))
	var docs []*document.Document
	docPage := make(map[string]int) // document ID → page index
	seenID := make(map[string]int)
	for i, pg := range req.Pages {
		if deadlineExceeded(w, r.Context()) {
			return
		}
		id := pg.ID
		if id == "" {
			id = fmt.Sprintf("page%d", i)
		}
		if prev, dup := seenID[id]; dup {
			writeError(w, codeBadRequest, fmt.Sprintf("duplicate page id %q (pages %d and %d)", id, prev, i))
			return
		}
		seenID[id] = i
		results[i] = batchPageResult{ID: id, Alignments: []briq.Alignment{}}
		if pg.HTML == "" {
			writeError(w, codeBadRequest, fmt.Sprintf("page %q: empty html", id))
			return
		}
		if !utf8.ValidString(pg.HTML) {
			writeError(w, codeBadRequest, fmt.Sprintf("page %q: html is not valid UTF-8", id))
			return
		}

		segStart := time.Now()
		pdocs, err := seg.SegmentPage(id, htmlx.ParseString(pg.HTML))
		s.metrics.stages.Observe(core.StageSegment, time.Since(segStart))
		if err != nil {
			writeError(w, codeUnprocessable, fmt.Sprintf("page %q: %v", id, err))
			return
		}
		results[i].Documents = len(pdocs)
		for _, doc := range pdocs {
			docPage[doc.ID] = i
		}
		docs = append(docs, pdocs...)
	}
	if deadlineExceeded(w, r.Context()) {
		return
	}

	aligned, err := briq.AlignCorpus(r.Context(), s.pipeline, docs)
	if err != nil {
		if !deadlineExceeded(w, r.Context()) {
			writeAlignError(w, err)
		}
		return
	}
	for _, a := range aligned {
		i, ok := docPage[a.DocID]
		if !ok {
			continue
		}
		results[i].Alignments = append(results[i].Alignments, a)
	}

	s.metrics.batch.Add("pages", int64(len(req.Pages)))
	s.metrics.batch.Add("documents", int64(len(docs)))
	s.metrics.batch.Add("alignments", int64(len(aligned)))
	writeResult(w, map[string]any{
		"pages":      results,
		"documents":  len(docs),
		"alignments": len(aligned),
	})
}

func (s *server) handleSummarize(w http.ResponseWriter, r *http.Request) {
	src, ok := s.readPage(w, r)
	if !ok {
		return
	}
	page := htmlx.ParseString(src)
	seg := s.pipeline.Segmenter
	if seg == nil {
		seg = document.NewSegmenter()
	}
	docs, err := seg.SegmentPage("request", page)
	if err != nil {
		writeError(w, codeUnprocessable, err.Error())
		return
	}
	summarizer := summarize.New(s.pipeline)
	type docSummary struct {
		DocID     string   `json:"doc_id"`
		Sentences []string `json:"sentences"`
	}
	var out []docSummary
	for _, doc := range docs {
		sum := summarizer.Summarize(doc)
		ds := docSummary{DocID: doc.ID}
		for _, sent := range sum.Sentences {
			ds.Sentences = append(ds.Sentences, sent.Text)
		}
		out = append(out, ds)
	}
	writeResult(w, map[string]any{"summaries": out})
}

// parseSearchQuery interprets the /search query string: either one `q`
// natural-language parameter, or the structured op/value/value2/unit/keywords
// form — never both. Every interpretation failure wraps
// quantsearch.ErrBadQuery so the handler maps it to 422 bad_query.
func parseSearchQuery(vals url.Values) (quantsearch.Query, error) {
	nl := strings.TrimSpace(vals.Get("q"))
	structured := vals.Get("op") != "" || vals.Get("value") != "" ||
		vals.Get("value2") != "" || vals.Get("unit") != "" || vals.Get("keywords") != ""
	switch {
	case nl != "" && structured:
		return quantsearch.Query{}, fmt.Errorf("%w: pass either q or structured parameters, not both", quantsearch.ErrBadQuery)
	case nl != "":
		return quantsearch.ParseQuery(nl)
	case !structured:
		return quantsearch.Query{}, fmt.Errorf("%w: missing query (q or value)", quantsearch.ErrBadQuery)
	}

	var q quantsearch.Query
	var err error
	if q.Op, err = quantsearch.ParseComparison(vals.Get("op")); err != nil {
		return quantsearch.Query{}, err
	}
	if vals.Get("value") == "" {
		return quantsearch.Query{}, quantsearch.ErrNoValue
	}
	if q.Value, err = strconv.ParseFloat(vals.Get("value"), 64); err != nil {
		return quantsearch.Query{}, fmt.Errorf("%w: bad value %q", quantsearch.ErrBadQuery, vals.Get("value"))
	}
	if v2 := vals.Get("value2"); v2 != "" {
		if q.Op != quantsearch.Between {
			return quantsearch.Query{}, fmt.Errorf("%w: value2 only applies to op=between", quantsearch.ErrBadQuery)
		}
		if q.Value2, err = strconv.ParseFloat(v2, 64); err != nil {
			return quantsearch.Query{}, fmt.Errorf("%w: bad value2 %q", quantsearch.ErrBadQuery, v2)
		}
		if q.Value2 < q.Value {
			q.Value, q.Value2 = q.Value2, q.Value
		}
	} else if q.Op == quantsearch.Between {
		return quantsearch.Query{}, fmt.Errorf("%w: op=between needs value2", quantsearch.ErrBadQuery)
	}
	if raw := vals.Get("unit"); raw != "" {
		u, _ := qkb.Default().NormalizeUnitSpelling(raw)
		if u == "" {
			return quantsearch.Query{}, fmt.Errorf("%w: unknown unit %q", quantsearch.ErrBadQuery, raw)
		}
		q.Unit = u
	}
	for _, kw := range strings.FieldsFunc(vals.Get("keywords"), func(r rune) bool { return r == ',' || r == ' ' }) {
		q.Keywords = append(q.Keywords, strings.ToLower(kw))
	}
	return q, nil
}

// parsePage reads the shared cursor/limit pagination parameters. The cursor is
// the opaque decimal offset minted by api.Page; anything else is a bad query.
func parsePage(vals url.Values) (offset, limit int, err error) {
	if c := vals.Get("cursor"); c != "" {
		offset, err = strconv.Atoi(c)
		if err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("%w: bad cursor %q", quantsearch.ErrBadQuery, c)
		}
	}
	if l := vals.Get("limit"); l != "" {
		limit, err = strconv.Atoi(l)
		if err != nil || limit < 1 {
			return 0, 0, fmt.Errorf("%w: bad limit %q (want a positive integer)", quantsearch.ErrBadQuery, l)
		}
	}
	return offset, limit, nil
}

// handleSearch answers GET /v1/search: a quantity query (value range + unit +
// context keywords) against the store's incremental index, deterministically
// ranked, in the shared paginated envelope.
func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, codeMethodNotAllowed, "GET with query parameters")
		return
	}
	vals := r.URL.Query()
	q, err := parseSearchQuery(vals)
	if err != nil {
		writeError(w, codeBadQuery, err.Error())
		return
	}
	offset, limit, err := parsePage(vals)
	if err != nil {
		writeError(w, codeBadQuery, err.Error())
		return
	}
	items, next := api.Page(s.store.Search(q), offset, limit)
	writeResult(w, api.Paginated{Items: items, NextCursor: next})
}

// handleFacts answers GET /v1/facts: the aligned quantities known for one
// entity (canonicalized the same way the facts view keys them), confidence
// descending, in the shared paginated envelope.
func (s *server) handleFacts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, codeMethodNotAllowed, "GET with an entity parameter")
		return
	}
	vals := r.URL.Query()
	entity := facts.CanonicalEntity(vals.Get("entity"))
	if entity == "" {
		writeError(w, codeBadQuery, "missing entity parameter")
		return
	}
	offset, limit, err := parsePage(vals)
	if err != nil {
		writeError(w, codeBadQuery, err.Error())
		return
	}
	items, next := api.Page(s.store.FactsFor(entity), offset, limit)
	writeResult(w, api.Paginated{Items: items, NextCursor: next})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, codeMethodNotAllowed, "GET only")
		return
	}
	snap := s.metrics.snapshot()
	snap["serving"] = s.pipeline.Gate.Counters() // nil-safe: full zeroed schema without a gate
	snap["store"] = s.store.Counters()           // nil-safe: full zeroed schema without a store
	snap["model"] = map[string]string{"fingerprint": s.pipeline.Fingerprint()}
	writeJSON(w, http.StatusOK, snap)
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintln(w, "ok")
}

// writeResult answers 200 with the success half of the envelope.
func writeResult(w http.ResponseWriter, v any) { api.WriteResult(w, v) }

// writeError answers with the error half of the envelope; the HTTP status
// comes from the error-code table. An overloaded response carries a
// Retry-After hint, the contract clients' backoff loops key on.
func writeError(w http.ResponseWriter, code, message string) { api.WriteError(w, code, message) }

// writeAlignError maps the facade's typed error taxonomy onto the stable
// error-code table: errors.Is against each sentinel, with a generic 422 for
// anything untyped (the page parsed but could not be aligned).
func writeAlignError(w http.ResponseWriter, err error) {
	writeError(w, alignErrorCode(err), err.Error())
}

func alignErrorCode(err error) string {
	switch {
	case errors.Is(err, briq.ErrNoTables):
		return codeNoTables
	case errors.Is(err, briq.ErrNoMentions):
		return codeNoMentions
	case errors.Is(err, briq.ErrOverloaded):
		return codeOverloaded
	case errors.Is(err, briq.ErrDeadlineBudget),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return codeDeadline
	default:
		return codeUnprocessable
	}
}

// deadlineExceeded reports (and answers 504 deadline) an expired request
// context — the cooperative checkpoints between pipeline phases, since
// alignment itself is CPU-bound and cannot be interrupted mid-document.
func deadlineExceeded(w http.ResponseWriter, ctx context.Context) bool {
	if ctx.Err() == nil {
		return false
	}
	writeError(w, codeDeadline, "request deadline exceeded")
	return true
}

// writeJSON encodes v to a buffer first, so an encoding failure can still
// produce a clean 500 — once WriteHeader has fired the status is committed
// and a half-written body is all the client would get.
func writeJSON(w http.ResponseWriter, status int, v any) { api.WriteJSON(w, status, v) }
