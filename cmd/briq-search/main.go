// Command briq-search answers quantity queries over an aligned corpus (§XI),
// from any of three sources:
//
//	briq-search -addr http://127.0.0.1:8080 "income above 5 million USD"
//	briq-search -store data/corpus "income above 5 million USD"
//	briq-search -dir corpus/ "income above 5 million USD"
//
// -addr queries a live briq-server (or briq-gateway) through GET /v1/search,
// following result cursors. -store opens a briq-server -store directory
// offline and queries the replayed quantity index directly. -dir segments a
// directory of .html pages and indexes them in memory, through the same
// store code path the server uses — so all three modes rank and render
// results identically for the same corpus.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"briq/client"
	"briq/internal/document"
	"briq/internal/htmlx"
	"briq/internal/quantsearch"
	"briq/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("briq-search: ")

	addr := flag.String("addr", "", "briq-server base URL to query via GET /v1/search")
	storeDir := flag.String("store", "", "briq-server -store directory to query offline")
	dir := flag.String("dir", "", "directory of .html pages to index in memory")
	limit := flag.Int("limit", 10, "maximum results to print")
	flag.Parse()

	modes := 0
	for _, m := range []string{*addr, *storeDir, *dir} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 || flag.NArg() == 0 {
		log.Fatal(`usage: briq-search (-addr URL | -store DIR | -dir DIR) "income above 5 million USD"`)
	}

	queryText := strings.Join(flag.Args(), " ")
	q, err := quantsearch.ParseQuery(queryText)
	if err != nil {
		log.Fatalf("parse query: %v", err)
	}

	var results []quantsearch.Result
	switch {
	case *addr != "":
		results, err = searchServer(*addr, queryText, *limit)
		if err != nil {
			log.Fatal(err)
		}
	case *storeDir != "":
		st, err := store.Open(store.Options{Dir: *storeDir, Logf: log.Printf})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		c := st.Counters()
		fmt.Printf("indexed %d table quantities from %d documents\n", c["index_entries"], c["documents"])
		results = st.Search(q)
	case *dir != "":
		st, pages, err := indexDir(*dir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("indexed %d table quantities from %d pages\n", st.Counters()["index_entries"], pages)
		results = st.Search(q)
	}

	fmt.Printf("query: op=%s value=%g unit=%q keywords=%v\n", q.Op, q.Value, q.Unit, q.Keywords)
	if len(results) == 0 {
		fmt.Println("no results")
		return
	}
	if len(results) > *limit {
		results = results[:*limit]
	}
	for _, r := range results {
		fmt.Printf("  %-24s %-20s = %-14g [%s r%d c%d]\n",
			r.Entity, r.Header, r.Value, r.TableID, r.Row, r.Col)
	}
}

// indexDir segments every .html page under dir and feeds the documents
// through a memory-only store — the same AddDocument path the server's
// persistent store uses, minus the alignments (this mode indexes without a
// trained model, exactly like the old in-process indexer).
func indexDir(dir string) (*store.Store, int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.html"))
	if err != nil {
		return nil, 0, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, 0, fmt.Errorf("no .html pages in %s", dir)
	}

	st, err := store.Open(store.Options{Logf: log.Printf})
	if err != nil {
		return nil, 0, err
	}
	seg := document.NewSegmenter()
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		pageID := strings.TrimSuffix(filepath.Base(path), ".html")
		docs, err := seg.SegmentPage(pageID, htmlx.ParseString(string(src)))
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %v", path, err)
		}
		for _, doc := range docs {
			st.AddDocument(doc, nil)
		}
	}
	return st, len(paths), nil
}

// searchServer sends the natural-language query to a live server — the
// server parses it with the same quantsearch parser — and follows cursors
// until limit results are in hand.
func searchServer(addr, queryText string, limit int) ([]quantsearch.Result, error) {
	c, err := client.New(addr)
	if err != nil {
		return nil, err
	}
	var results []quantsearch.Result
	it := c.SearchAll(context.Background(), client.SearchQuery{Q: queryText})
	for len(results) < limit && it.Next() {
		r := it.Item()
		results = append(results, quantsearch.Result{
			Entry: quantsearch.Entry{
				DocID: r.DocID, TableID: r.TableID, Row: r.Row, Col: r.Col,
				Entity: r.Entity, Header: r.Header, Value: r.Value,
				Unit: r.Unit, Caption: r.Caption,
			},
			Matched: r.Matched,
		})
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
