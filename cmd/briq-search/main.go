// Command briq-search indexes the tables of a directory of HTML pages and
// answers quantity queries over them (§XI).
//
// Usage:
//
//	briq-search -dir corpus/ "income above 5 million USD"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"briq/internal/document"
	"briq/internal/htmlx"
	"briq/internal/quantsearch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("briq-search: ")

	dir := flag.String("dir", "", "directory of .html pages to index (required)")
	limit := flag.Int("limit", 10, "maximum results to print")
	flag.Parse()
	if *dir == "" || flag.NArg() == 0 {
		log.Fatal(`usage: briq-search -dir DIR "income above 5 million USD"`)
	}

	paths, err := filepath.Glob(filepath.Join(*dir, "*.html"))
	if err != nil {
		log.Fatal(err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		log.Fatalf("no .html pages in %s", *dir)
	}

	seg := document.NewSegmenter()
	var docs []*document.Document
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		pageID := strings.TrimSuffix(filepath.Base(path), ".html")
		ds, err := seg.SegmentPage(pageID, htmlx.ParseString(string(src)))
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		docs = append(docs, ds...)
	}
	ix := quantsearch.BuildIndex(docs)
	fmt.Printf("indexed %d table quantities from %d pages\n", ix.Size(), len(paths))

	queryText := strings.Join(flag.Args(), " ")
	q, err := quantsearch.ParseQuery(queryText)
	if err != nil {
		log.Fatalf("parse query: %v", err)
	}
	fmt.Printf("query: op=%s value=%g unit=%q keywords=%v\n", q.Op, q.Value, q.Unit, q.Keywords)

	results := ix.Search(q)
	if len(results) == 0 {
		fmt.Println("no results")
		return
	}
	if len(results) > *limit {
		results = results[:*limit]
	}
	for _, r := range results {
		fmt.Printf("  %-24s %-20s = %-14g [%s r%d c%d]\n",
			r.Entity, r.Header, r.Value, r.TableID, r.Row, r.Col)
	}
}
