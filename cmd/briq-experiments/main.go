// Command briq-experiments regenerates the paper's evaluation tables on the
// synthetic corpus.
//
// Usage:
//
//	briq-experiments [-table all|1|2|3|4|5|6|7|8|9|resolvers] [-pages N] [-seed N] [-workers N]
//
// Tables I–VII run on a tableS-style annotated corpus (default 495 pages,
// as in the paper); Tables VIII–IX run on a tableL-style corpus whose size
// is controlled by -lpages. The "resolvers" table compares the pluggable
// global-resolution strategies (rwr, ilp, greedy) behind identical
// classify/filter stages: accuracy on the test split and docs/sec.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"briq/internal/corpus"
	"briq/internal/experiment"
	"briq/internal/table"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("briq-experiments: ")

	which := flag.String("table", "all", "table to regenerate: all, 1..9, or resolvers (comma separated)")
	pages := flag.Int("pages", 495, "tableS corpus pages (Tables I-VII)")
	lpages := flag.Int("lpages", 600, "tableL corpus pages (Tables VIII-IX)")
	seed := flag.Int64("seed", 42, "corpus and training seed")
	workers := flag.Int("workers", 0, "alignment workers for Table VIII (0 = all cores)")
	flag.Parse()

	want := map[string]bool{}
	for _, t := range strings.Split(*which, ",") {
		want[strings.TrimSpace(t)] = true
	}
	wanted := func(t string) bool { return want["all"] || want[t] }

	var (
		c       *corpus.Corpus
		split   experiment.Split
		trained *experiment.Trained
	)
	needModels := wanted("1") || wanted("2") || wanted("3") || wanted("4") ||
		wanted("5") || wanted("6") || wanted("7") || wanted("resolvers")
	if needModels {
		start := time.Now()
		cfg := corpus.TableSConfig(*seed)
		cfg.Pages = *pages
		c = corpus.Generate(cfg)
		split = experiment.SplitCorpus(c, *seed)
		fmt.Printf("tableS corpus: %d pages, %d documents, %d gold alignments (generated in %v)\n",
			len(c.Pages), len(c.Docs), len(c.Gold), time.Since(start).Round(time.Millisecond))

		start = time.Now()
		var err error
		trained, err = experiment.Train(c, split.Train, experiment.DefaultTrainOptions(*seed))
		if err != nil {
			log.Fatalf("training: %v", err)
		}
		fmt.Printf("trained classifier (%d samples) and tagger in %v\n\n",
			len(trained.Data.Samples), time.Since(start).Round(time.Millisecond))
	}

	systems := func() []experiment.System {
		return []experiment.System{
			experiment.NewRFOnly(trained),
			experiment.NewRWROnly(trained.Opts.FeatureConfig, trained.Opts.Mask),
			experiment.NewBriQ(trained),
		}
	}

	if wanted("1") {
		fmt.Println(experiment.RunTableI(trained.Data))
	}
	if wanted("2") {
		rep, _ := experiment.RunTableII(c, systems(), split.Test)
		fmt.Println(rep)
	}
	if wanted("3") {
		rep, _ := experiment.RunByType("Table III", experiment.NewRFOnly(trained), c, split.Test)
		fmt.Println(rep)
	}
	if wanted("4") {
		rep, _ := experiment.RunByType("Table IV",
			experiment.NewRWROnly(trained.Opts.FeatureConfig, trained.Opts.Mask), c, split.Test)
		fmt.Println(rep)
	}
	if wanted("5") {
		rep, _ := experiment.RunByType("Table V", experiment.NewBriQ(trained), c, split.Test)
		fmt.Println(rep)
	}
	if wanted("6") {
		rep, _ := experiment.RunTableVI(c, trained, split.Test)
		fmt.Println(rep)
	}
	if wanted("7") {
		rep, _, err := experiment.RunTableVII(c, split, experiment.DefaultTrainOptions(*seed))
		if err != nil {
			log.Fatalf("table VII: %v", err)
		}
		fmt.Println(rep)
	}

	if wanted("resolvers") {
		rep, _ := experiment.RunTableResolvers(c, trained, split.Test, 0)
		fmt.Println(rep)
	}

	if wanted("8") || wanted("9") {
		start := time.Now()
		lc := corpus.Generate(corpus.TableLConfig(*seed+1, *lpages))
		fmt.Printf("tableL corpus: %d pages, %d documents (generated in %v)\n\n",
			len(lc.Pages), len(lc.Docs), time.Since(start).Round(time.Millisecond))
		if wanted("8") {
			pipeline, err := trainedOrHeuristic(trained, *seed)
			if err != nil {
				log.Fatal(err)
			}
			rep, _ := experiment.RunTableVIII(lc, pipeline.P, *workers)
			fmt.Println(rep)
			stages, _ := experiment.RunStageBreakdown(lc, pipeline.P, *workers)
			fmt.Println(stages)
		}
		if wanted("9") {
			rep, _ := experiment.RunTableIX(lc, table.DefaultVirtualOptions())
			fmt.Println(rep)
		}
	}
}

// trainedOrHeuristic wraps the trained BriQ system, or trains a small one
// when Tables I-VII were skipped.
func trainedOrHeuristic(tr *experiment.Trained, seed int64) (*experiment.BriQ, error) {
	if tr != nil {
		return experiment.NewBriQ(tr), nil
	}
	cfg := corpus.TableSConfig(seed)
	cfg.Pages = 120
	c := corpus.Generate(cfg)
	split := experiment.SplitCorpus(c, seed)
	trained, err := experiment.Train(c, split.Train, experiment.DefaultTrainOptions(seed))
	if err != nil {
		return nil, err
	}
	return experiment.NewBriQ(trained), nil
}
