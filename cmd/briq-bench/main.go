// Command briq-bench is the reproducible benchmark harness for the alignment
// hot path. It generates a deterministic corpus workload, checks that the CSR
// fast path and the frozen reference implementation agree byte-for-byte on
// that workload, then measures both sides with testing.Benchmark and writes a
// machine-readable report (BENCH_pipeline.json by default):
//
//   - rwr_document — all random walks of one document: CSR RWRAll (lane
//     kernels, pooled) vs a per-mention ReferenceRWR sweep. This is the
//     headline number; the CSR path must be ≥2x faster with fewer allocs/op.
//   - resolve — full iterative resolution (graph build + walks + rewiring),
//     CSR Resolve vs ReferenceResolve.
//   - pipeline — end-to-end Align over the workload, with per-stage latency
//     histograms (classify/filter/resolve-strategy/align) from internal/obs.
//   - runtime — corpus throughput (docs/sec) of the internal/runtime worker
//     pool at 1, 2, 4 and 8 workers against the serial AlignAll baseline,
//     gated on the pool output being byte-identical to the serial output.
//     Speedups are bounded by GOMAXPROCS: on a single-core machine every
//     worker count measures the same core plus scheduling overhead, and the
//     report records that honestly rather than extrapolating.
//   - serving — the content-addressed result cache's hit path: corpus
//     throughput of a cache-warm briq.AlignCorpus against the cold
//     (uncached) path, gated on the warm output being byte-identical to the
//     cold output. This is the serving layer's headline number: a hit skips
//     the entire pipeline, so the speedup is typically orders of magnitude.
//   - resolvers — the pluggable global-resolution strategies (rwr, ilp,
//     greedy) behind identical classify/filter stages: gold-standard
//     accuracy on the synthetic corpus and docs/sec per strategy, gated on
//     the explicit rwr strategy being byte-identical to the default
//     pipeline.
//   - classify — the frozen flat-array forest engine and pre-classifier
//     gate against the per-pair pointer-tree reference path: trained
//     ScorePairs cost per document, and cold end-to-end alignment
//     throughput, gated on scores being bit-identical and alignments
//     byte-identical across the workload.
//   - ingest — the streaming ingestion engine behind POST /v1/ingest: cold
//     corpus ingestion (every document aligned) against re-ingestion of the
//     identical corpus (every document reused via its sub-document
//     fingerprint), plus the document reuse rate of a realistic re-crawl
//     that appends one sentence per page, gated on the incremental store
//     answering the search/facts battery identically to a from-scratch
//     ingest of the final corpus.
//
// Usage:
//
//	go run ./cmd/briq-bench [-seed 42] [-pages 10] [-rounds 3] [-workers 0] [-out BENCH_pipeline.json]
//
// Each benchmark runs -rounds times and the report keeps the fastest round
// (minimum ns/op), which suppresses scheduler noise on small machines.
// Allocation counts are exact and stable across rounds.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"briq"
	"briq/internal/core"
	"briq/internal/corpus"
	"briq/internal/document"
	"briq/internal/experiment"
	"briq/internal/filter"
	"briq/internal/graph"
	"briq/internal/ingest"
	"briq/internal/obs"
	"briq/internal/quantity"
	"briq/internal/quantsearch"
	"briq/internal/resolve"
	brt "briq/internal/runtime"
	"briq/internal/store"
)

// resolveInput is one document's resolution-stage input: the exact
// (document, kept candidates) pair the graph stage sees in production, after
// real classifier scoring and adaptive filtering.
type resolveInput struct {
	doc   *document.Document
	cands []filter.Candidate
}

// side is one measured implementation of a benchmark.
type side struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// comparison pairs the CSR fast path with the frozen reference and the
// derived ratios. Speedup is reference ns/op over CSR ns/op (higher is
// better); AllocsRatio is CSR allocs/op over reference allocs/op (lower is
// better).
type comparison struct {
	CSR         side    `json:"csr"`
	Reference   side    `json:"reference"`
	Speedup     float64 `json:"speedup"`
	AllocsRatio float64 `json:"allocs_ratio"`
}

type workload struct {
	Seed          int64 `json:"seed"`
	Pages         int   `json:"pages"`
	Documents     int   `json:"documents"`
	TextMentions  int   `json:"text_mentions"`
	TableMentions int   `json:"table_mentions"`
	Candidates    int   `json:"candidates"` // kept by the filter stage
	RWRWorkers    int   `json:"rwr_workers"`
}

type equivalence struct {
	DocumentsChecked int  `json:"documents_checked"`
	Identical        bool `json:"identical"`
}

type report struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Rounds      int    `json:"rounds"`

	Workload workload `json:"workload"`

	// Equivalence records the pre-benchmark gate: every workload document's
	// CSR Resolve output was compared against ReferenceResolve; the harness
	// refuses to emit numbers for a fast path that changes results.
	Equivalence equivalence `json:"equivalence"`

	// Benchmarks holds the CSR-vs-reference comparisons, keyed by benchmark
	// name ("rwr_document", "resolve").
	Benchmarks map[string]comparison `json:"benchmarks"`

	// PipelineAlign is the end-to-end Align cost per document (single
	// implementation — Align always uses the CSR path).
	PipelineAlign side `json:"pipeline_align"`

	// Stages holds the per-stage latency histograms recorded while running
	// the pipeline benchmark, keyed by core stage name (see core.StageNames).
	Stages map[string]obs.HistogramSnapshot `json:"stages"`

	// Runtime is the corpus-throughput scaling of the internal/runtime worker
	// pool over the same workload, gated on pool output == serial output.
	Runtime runtimeReport `json:"runtime"`

	// Serving compares the result cache's hit path against the cold pipeline
	// over the same corpus, gated on warm output == cold output.
	Serving servingReport `json:"serving"`

	// Resolvers compares the pluggable global-resolution strategies behind
	// identical classify/filter stages: gold-standard accuracy on the
	// synthetic corpus and corpus alignment throughput per strategy, gated on
	// the explicit rwr strategy being byte-identical to the default pipeline.
	Resolvers resolverSection `json:"resolvers"`

	// Classify compares the frozen flat-array classify engine (batched
	// scoring + pre-classifier gate) against the per-pair pointer-tree
	// reference path, gated on bit-identical scores and byte-identical
	// alignments across the workload.
	Classify classifySection `json:"classify"`

	// Ingest compares cold corpus ingestion against fingerprint-reuse
	// re-ingestion of the identical corpus, gated on the incremental path
	// matching a from-scratch ingest of the final corpus.
	Ingest ingestSection `json:"ingest"`
}

// ingestSection is the streaming-ingestion block of the report. The cold
// side ingests the corpus into a fresh engine (every document goes through
// classify/filter/resolve); the re-ingest side streams the identical corpus
// into a warm engine, so every document is reused off its sub-document
// fingerprint and alignment is skipped entirely. MutatedReuseRate is the
// fraction of documents reused on a realistic re-crawl that appends one
// sentence to one paragraph per page. EquivalentToScratch records the gate:
// the incrementally maintained store must answer the search/facts battery
// identically to an engine that ingested only the final corpus.
type ingestSection struct {
	Pages               int     `json:"pages"`
	Documents           int     `json:"documents"`
	ColdNsPerCorpus     float64 `json:"cold_ns_per_corpus"`
	ColdDocsPerSec      float64 `json:"cold_docs_per_sec"`
	ReingestNsPerCorpus float64 `json:"reingest_ns_per_corpus"`
	ReingestDocsPerSec  float64 `json:"reingest_docs_per_sec"`
	Speedup             float64 `json:"speedup"`
	MutatedReuseRate    float64 `json:"mutated_reuse_rate"`
	EquivalentToScratch bool    `json:"equivalent_to_scratch"`
}

// classifySection is the classification-engine block of the report. The two
// gates run before any number: ScoresBitIdentical asserts the batched frozen
// engine reproduces the reference classifier's probability for every
// mention×candidate pair bit for bit (with a forest trained on the workload
// corpus), and DecisionsIdentical asserts the gated align path's output is
// byte-identical to the ungated reference path's.
type classifySection struct {
	DocumentsChecked   int  `json:"documents_checked"`
	PairsChecked       int  `json:"pairs_checked"`
	PairsGated         int  `json:"pairs_gated"` // pairs the unit-compatibility gate skips
	ScoresBitIdentical bool `json:"scores_bit_identical"`
	DecisionsIdentical bool `json:"decisions_identical"`

	// TrainedScorePairs: the classify stage alone with a trained forest, per
	// document — frozen batch engine (csr side) vs pointer-tree walk per pair
	// (reference side).
	TrainedScorePairs comparison `json:"trained_score_pairs"`

	// Cold end-to-end alignment throughput of the default pipeline: the
	// engine path (batch + gate) against the in-run reference classify path
	// over the same corpus. EngineColdDocsPerSec is the number ROADMAP item 1
	// targets at ≥5x the previously committed cold baseline (~37–39 docs/sec
	// on the reference hardware); note the in-run reference also benefits
	// from the per-mention feature hoists, so ColdSpeedup understates the
	// gain over that committed baseline.
	EngineColdNsPerCorpus    float64 `json:"engine_cold_ns_per_corpus"`
	EngineColdDocsPerSec     float64 `json:"engine_cold_docs_per_sec"`
	ReferenceColdNsPerCorpus float64 `json:"reference_cold_ns_per_corpus"`
	ReferenceColdDocsPerSec  float64 `json:"reference_cold_docs_per_sec"`
	ColdSpeedup              float64 `json:"cold_speedup"`
}

// resolverSection is the strategy-comparison block of the report.
type resolverSection struct {
	// DefaultEquivalent records the gate: a pipeline with the rwr strategy
	// selected explicitly must produce byte-identical output to the default
	// pipeline before any per-strategy number is reported.
	DefaultEquivalent bool                            `json:"default_equivalent"`
	Strategies        []experiment.ResolverComparison `json:"strategies"`
}

// servingReport is the cache-hit-path section: the cold side aligns the
// corpus through an uncached pipeline; the hit side re-aligns it through a
// pipeline whose cache was warmed by one prior run, so every document is
// served from memory. EquivalentToCold records the byte-identity gate.
type servingReport struct {
	ColdNsPerCorpus  float64 `json:"cold_ns_per_corpus"`
	ColdDocsPerSec   float64 `json:"cold_docs_per_sec"`
	HitNsPerCorpus   float64 `json:"hit_ns_per_corpus"`
	HitDocsPerSec    float64 `json:"hit_docs_per_sec"`
	Speedup          float64 `json:"speedup"`
	EquivalentToCold bool    `json:"equivalent_to_cold"`
	CacheEntries     int64   `json:"cache_entries"`
	CacheBytes       int64   `json:"cache_bytes"`
}

// runtimeScaling is one worker-count measurement of the corpus runtime pool.
type runtimeScaling struct {
	Workers         int     `json:"workers"`
	NsPerCorpus     float64 `json:"ns_per_corpus"`
	DocsPerSec      float64 `json:"docs_per_sec"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// runtimeReport compares the concurrent corpus engine against the serial
// AlignAll baseline. EquivalentToSerial records the determinism gate: the
// pool's AlignCorpus output must be byte-identical to serial AlignAll before
// any throughput number is reported.
type runtimeReport struct {
	SerialNsPerCorpus  float64          `json:"serial_ns_per_corpus"`
	SerialDocsPerSec   float64          `json:"serial_docs_per_sec"`
	EquivalentToSerial bool             `json:"equivalent_to_serial"`
	Scaling            []runtimeScaling `json:"scaling"`
	// Note flags hardware limits that cap the observable speedup, e.g. a
	// single-core machine where all worker counts share one core.
	Note string `json:"note,omitempty"`
}

func main() {
	seed := flag.Int64("seed", 42, "corpus generator seed")
	pages := flag.Int("pages", 10, "corpus pages to generate")
	rounds := flag.Int("rounds", 3, "benchmark rounds; the fastest is reported")
	workers := flag.Int("workers", 0, "RWR worker-pool size (0 = graph.DefaultConfig)")
	out := flag.String("out", "BENCH_pipeline.json", "report output path")
	flag.Parse()

	if err := run(*seed, *pages, *rounds, *workers, *out); err != nil {
		fmt.Fprintln(os.Stderr, "briq-bench:", err)
		os.Exit(1)
	}
}

func run(seed int64, pages, rounds, workers int, out string) error {
	if rounds < 1 {
		rounds = 1
	}

	// Workload: run the real first two pipeline stages over a generated
	// corpus so the resolution benchmarks see production-shaped inputs.
	c := corpus.Generate(corpus.TableLConfig(seed, pages))
	p := core.NewPipeline()
	if workers > 0 {
		p.GraphConfig.RWRWorkers = workers
	}
	cfg := p.GraphConfig

	var rep report
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Rounds = rounds
	rep.Workload = workload{Seed: seed, Pages: pages, RWRWorkers: cfg.RWRWorkers}
	rep.Benchmarks = make(map[string]comparison)

	var inputs []resolveInput
	for _, doc := range c.Docs {
		cands := p.ScorePairs(doc)
		filtered := filter.Apply(p.FilterConfig, doc, p.Tagger, cands)
		rep.Workload.TextMentions += len(doc.TextMentions)
		rep.Workload.TableMentions += len(doc.TableMentions)
		if len(filtered.Kept) == 0 {
			continue
		}
		inputs = append(inputs, resolveInput{doc, filtered.Kept})
		rep.Workload.Candidates += len(filtered.Kept)
	}
	rep.Workload.Documents = len(inputs)
	if len(inputs) == 0 {
		return fmt.Errorf("seed %d produced no documents with candidates", seed)
	}
	fmt.Printf("workload: seed=%d pages=%d documents=%d candidates=%d workers=%d\n",
		seed, pages, len(inputs), rep.Workload.Candidates, cfg.RWRWorkers)

	// Equivalence gate: the fast path must reproduce the reference exactly
	// on every workload document before any number is reported.
	for _, in := range inputs {
		fast := graph.Build(cfg, in.doc, in.cands).Resolve()
		ref := graph.Build(cfg, in.doc, in.cands).ReferenceResolve()
		if len(fast) != len(ref) {
			return fmt.Errorf("doc %s: CSR produced %d alignments, reference %d", in.doc.ID, len(fast), len(ref))
		}
		for i := range fast {
			if fast[i] != ref[i] {
				return fmt.Errorf("doc %s alignment %d: CSR %+v, reference %+v", in.doc.ID, i, fast[i], ref[i])
			}
		}
	}
	rep.Equivalence = equivalence{DocumentsChecked: len(inputs), Identical: true}
	fmt.Printf("equivalence: CSR Resolve identical to reference on %d documents\n", len(inputs))

	// Document-level RWR: every walk of a document, on prebuilt graphs. The
	// CSR side batches all walks through the lane kernels (RWRAll); the
	// reference sweeps mentions one at a time, rebuilding transition rows per
	// walk — exactly what the pre-CSR Resolve did.
	gsFast := make([]*graph.Graph, len(inputs))
	gsRef := make([]*graph.Graph, len(inputs))
	for i, in := range inputs {
		gsFast[i] = graph.Build(cfg, in.doc, in.cands)
		gsRef[i] = graph.Build(cfg, in.doc, in.cands)
	}
	rep.Benchmarks["rwr_document"] = compare(rounds,
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gsFast[i%len(gsFast)].RWRAll()
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := gsRef[i%len(gsRef)]
				in := inputs[i%len(gsRef)]
				for x := 0; x < len(in.doc.TextMentions); x++ {
					g.ReferenceRWR(x)
				}
			}
		})
	printComparison("rwr_document", rep.Benchmarks["rwr_document"])

	// Full resolution: graph build + iterative walks + rewiring, per document.
	rep.Benchmarks["resolve"] = compare(rounds,
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in := inputs[i%len(inputs)]
				graph.Build(cfg, in.doc, in.cands).Resolve()
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in := inputs[i%len(inputs)]
				graph.Build(cfg, in.doc, in.cands).ReferenceResolve()
			}
		})
	printComparison("resolve", rep.Benchmarks["resolve"])

	// End-to-end pipeline with per-stage latency recording. The recorder is
	// attached for the measured runs only, so stage histograms describe
	// exactly the benchmarked work.
	rec := obs.NewRecorder(core.StageNames()...)
	p.Recorder = rec
	docs := make([]*document.Document, len(inputs))
	for i, in := range inputs {
		docs[i] = in.doc
	}
	rep.PipelineAlign = best(rounds, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Align(docs[i%len(docs)])
		}
	})
	rep.Stages = rec.Snapshot()
	fmt.Printf("pipeline_align: %.0f ns/op  %d allocs/op\n",
		rep.PipelineAlign.NsPerOp, rep.PipelineAlign.AllocsPerOp)

	// Corpus throughput on the concurrent runtime pool. Recording is
	// detached so both sides measure pure alignment work.
	p.Recorder = nil
	rt, err := measureRuntime(rounds, p, docs)
	if err != nil {
		return err
	}
	rep.Runtime = rt

	sv, err := measureServing(rounds, docs)
	if err != nil {
		return err
	}
	rep.Serving = sv

	rs, err := measureResolvers(rounds, p, c, docs)
	if err != nil {
		return err
	}
	rep.Resolvers = rs

	cl, err := measureClassify(rounds, p, c, docs)
	if err != nil {
		return err
	}
	rep.Classify = cl

	ig, err := measureIngest(rounds, seed, pages)
	if err != nil {
		return err
	}
	rep.Ingest = ig

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// measureRuntime benchmarks corpus throughput: the serial AlignAll baseline,
// then the internal/runtime pool at 1, 2, 4 and 8 workers. The pools reuse
// warm clones across benchmark iterations — the steady-state shape of the
// server's batch path and the experiment harness.
func measureRuntime(rounds int, p *core.Pipeline, docs []*document.Document) (runtimeReport, error) {
	var out runtimeReport

	// Determinism gate first: pooled output must match serial byte for byte.
	serialJSON, err := json.Marshal(p.AlignAll(docs, 1))
	if err != nil {
		return out, err
	}
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		got, err := brt.NewPool(p, brt.Options{Workers: workers}).AlignCorpus(ctx, docs)
		if err != nil {
			return out, fmt.Errorf("runtime gate (workers=%d): %w", workers, err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			return out, err
		}
		if !bytes.Equal(gotJSON, serialJSON) {
			return out, fmt.Errorf("runtime gate (workers=%d): pool output differs from serial AlignAll", workers)
		}
	}
	out.EquivalentToSerial = true
	fmt.Printf("runtime gate: pool output identical to serial AlignAll on %d documents\n", len(docs))

	serial := best(rounds, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.AlignAll(docs, 1)
		}
	})
	out.SerialNsPerCorpus = serial.NsPerOp
	out.SerialDocsPerSec = docsPerSec(len(docs), serial.NsPerOp)

	for _, workers := range []int{1, 2, 4, 8} {
		pool := brt.NewPool(p, brt.Options{Workers: workers})
		s := best(rounds, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pool.AlignCorpus(ctx, docs); err != nil {
					b.Fatal(err)
				}
			}
		})
		row := runtimeScaling{
			Workers:     workers,
			NsPerCorpus: s.NsPerOp,
			DocsPerSec:  docsPerSec(len(docs), s.NsPerOp),
		}
		if s.NsPerOp > 0 {
			row.SpeedupVsSerial = out.SerialNsPerCorpus / s.NsPerOp
		}
		out.Scaling = append(out.Scaling, row)
		fmt.Printf("runtime: workers=%d  %.0f docs/sec  %.2fx vs serial\n",
			workers, row.DocsPerSec, row.SpeedupVsSerial)
	}

	if procs := runtime.GOMAXPROCS(0); procs < 2 {
		out.Note = fmt.Sprintf("GOMAXPROCS=%d: all worker counts share one core; "+
			"speedup vs serial measures scheduling overhead, not parallelism", procs)
		fmt.Println("runtime note:", out.Note)
	}
	return out, nil
}

// measureServing benchmarks the serving layer's cache-hit path: cold corpus
// alignment through an uncached facade pipeline against warm re-alignment
// through a pipeline whose per-document result cache holds the whole corpus.
func measureServing(rounds int, docs []*document.Document) (servingReport, error) {
	var out servingReport
	ctx := context.Background()
	coldP := briq.New()
	warmP := briq.New(briq.WithCache(256 << 20))

	// Byte-identity gate: the cold path, the run that warms the cache, and a
	// fully warm run must all agree before any number is reported.
	coldOut, err := briq.AlignCorpus(ctx, coldP, docs)
	if err != nil {
		return out, err
	}
	coldJSON, err := json.Marshal(coldOut)
	if err != nil {
		return out, err
	}
	for pass, label := range []string{"warming", "warm"} {
		got, err := briq.AlignCorpus(ctx, warmP, docs)
		if err != nil {
			return out, fmt.Errorf("serving gate (%s pass): %w", label, err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			return out, err
		}
		if !bytes.Equal(gotJSON, coldJSON) {
			return out, fmt.Errorf("serving gate (%s pass %d): cached output differs from cold pipeline", label, pass)
		}
	}
	out.EquivalentToCold = true
	fmt.Printf("serving gate: cache-hit output identical to cold pipeline on %d documents\n", len(docs))

	cold := best(rounds, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := briq.AlignCorpus(ctx, coldP, docs); err != nil {
				b.Fatal(err)
			}
		}
	})
	hit := best(rounds, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := briq.AlignCorpus(ctx, warmP, docs); err != nil {
				b.Fatal(err)
			}
		}
	})
	out.ColdNsPerCorpus = cold.NsPerOp
	out.ColdDocsPerSec = docsPerSec(len(docs), cold.NsPerOp)
	out.HitNsPerCorpus = hit.NsPerOp
	out.HitDocsPerSec = docsPerSec(len(docs), hit.NsPerOp)
	if hit.NsPerOp > 0 {
		out.Speedup = cold.NsPerOp / hit.NsPerOp
	}
	counters := warmP.Gate.Counters()
	out.CacheEntries = counters["entries"]
	out.CacheBytes = counters["bytes"]
	fmt.Printf("serving: cold %.0f docs/sec | hit %.0f docs/sec | speedup %.1fx (%d entries, %d bytes cached)\n",
		out.ColdDocsPerSec, out.HitDocsPerSec, out.Speedup, out.CacheEntries, out.CacheBytes)
	return out, nil
}

// measureResolvers compares the pluggable resolution strategies over the
// bench workload behind the same classify/filter stages: gold-standard
// accuracy (precision/recall/F1 against the synthetic corpus's ground truth)
// and serial corpus throughput per strategy. Before any number is reported,
// the rwr strategy selected explicitly through the resolver interface must be
// byte-identical to the default pipeline — the refactor's equivalence gate at
// the bench layer.
func measureResolvers(rounds int, base *core.Pipeline, c *corpus.Corpus, docs []*document.Document) (resolverSection, error) {
	var out resolverSection

	defaultJSON, err := json.Marshal(base.AlignAll(docs, 1))
	if err != nil {
		return out, err
	}
	explicit := *base
	explicit.Resolver = resolve.NewRWR(base.GraphConfig)
	explicitJSON, err := json.Marshal(explicit.AlignAll(docs, 1))
	if err != nil {
		return out, err
	}
	if !bytes.Equal(explicitJSON, defaultJSON) {
		return out, fmt.Errorf("resolver gate: explicit rwr strategy differs from default pipeline")
	}
	out.DefaultEquivalent = true
	fmt.Printf("resolver gate: explicit rwr identical to default pipeline on %d documents\n", len(docs))

	strategies := []resolve.Resolver{
		nil, // pipeline default: rwr
		resolve.NewILP(base.GraphConfig, 0),
		resolve.NewGreedy(resolve.DefaultGreedyMinScore),
	}
	for _, r := range strategies {
		p := *base
		p.Resolver = r
		eval := experiment.Evaluate(&experiment.BriQ{P: &p}, c, docs)
		s := best(rounds, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.AlignAll(docs, 1)
			}
		})
		row := experiment.ResolverComparison{
			Resolver:   p.ResolverName(),
			Precision:  eval.Overall.Precision,
			Recall:     eval.Overall.Recall,
			F1:         eval.Overall.F1,
			DocsPerSec: docsPerSec(len(docs), s.NsPerOp),
		}
		out.Strategies = append(out.Strategies, row)
		fmt.Printf("resolver %-6s  P=%.2f R=%.2f F1=%.2f  %.0f docs/sec\n",
			row.Resolver, row.Precision, row.Recall, row.F1, row.DocsPerSec)
	}
	return out, nil
}

// measureClassify benchmarks the classify rewrite. Gates first: with a
// forest trained on the workload corpus, the frozen batch engine's ScorePairs
// scores must be bit-identical to the pointer-tree reference on every pair of
// every document, and the gated align path's output byte-identical to the
// ungated reference path's. Then two measurements: the trained classify stage
// per document (batch engine vs per-pair reference), and cold end-to-end
// alignment throughput of the default pipeline under both classify paths.
func measureClassify(rounds int, base *core.Pipeline, c *corpus.Corpus, docs []*document.Document) (classifySection, error) {
	var out classifySection

	// A classifier trained on the bench corpus, so the frozen engine walks
	// production-shaped trees rather than toy ones.
	split := experiment.SplitCorpus(c, 7)
	trained, err := experiment.Train(c, split.Train, experiment.DefaultTrainOptions(3))
	if err != nil {
		return out, fmt.Errorf("classify: training on the workload corpus: %w", err)
	}
	tp := experiment.NewBriQ(trained).P
	tref := *tp
	tref.ReferenceClassify = true
	tref.NoClassifyGate = true

	// Gate 1: bit-identical scores on the full ungated pair space.
	for _, doc := range docs {
		got := tp.ScorePairs(doc)
		want := tref.ScorePairs(doc)
		if len(got) != len(want) {
			return out, fmt.Errorf("classify gate: doc %s: %d pairs batched, %d reference", doc.ID, len(got), len(want))
		}
		for i := range got {
			if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
				return out, fmt.Errorf("classify gate: doc %s pair (%d,%d): batched score %v != reference %v",
					doc.ID, got[i].Text, got[i].Table, got[i].Score, want[i].Score)
			}
		}
		out.PairsChecked += len(got)
	}
	out.ScoresBitIdentical = true

	// Gate 2: byte-identical alignments from the gated engine path and the
	// ungated reference path; count the pairs the gate skips along the way.
	for _, doc := range docs {
		gotJSON, err := json.Marshal(tp.Align(doc))
		if err != nil {
			return out, err
		}
		wantJSON, err := json.Marshal(tref.Align(doc))
		if err != nil {
			return out, err
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			return out, fmt.Errorf("classify gate: doc %s: gated engine alignments differ from reference", doc.ID)
		}
		for xi := range doc.TextMentions {
			x := &doc.TextMentions[xi]
			for _, tm := range doc.TableMentions {
				if x.Unit != "" && tm.Unit != "" && !quantity.UnitsCompatible(x.Unit, tm.Unit) {
					out.PairsGated++
				}
			}
		}
	}
	out.DecisionsIdentical = true
	out.DocumentsChecked = len(docs)
	fmt.Printf("classify gate: %d pairs bit-identical, alignments identical on %d documents (%d pairs gated)\n",
		out.PairsChecked, out.DocumentsChecked, out.PairsGated)

	// Trained classify stage alone, per document.
	out.TrainedScorePairs = compare(rounds,
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tp.ScorePairs(docs[i%len(docs)])
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tref.ScorePairs(docs[i%len(docs)])
			}
		})
	printComparison("classify_trained_score_pairs", out.TrainedScorePairs)

	// Cold end-to-end alignment under both classify paths.
	ref := *base
	ref.ReferenceClassify = true
	ref.NoClassifyGate = true
	engine := best(rounds, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base.AlignAll(docs, 1)
		}
	})
	reference := best(rounds, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ref.AlignAll(docs, 1)
		}
	})
	out.EngineColdNsPerCorpus = engine.NsPerOp
	out.EngineColdDocsPerSec = docsPerSec(len(docs), engine.NsPerOp)
	out.ReferenceColdNsPerCorpus = reference.NsPerOp
	out.ReferenceColdDocsPerSec = docsPerSec(len(docs), reference.NsPerOp)
	if engine.NsPerOp > 0 {
		out.ColdSpeedup = reference.NsPerOp / engine.NsPerOp
	}
	fmt.Printf("classify: engine cold %.0f docs/sec | reference cold %.0f docs/sec | %.2fx\n",
		out.EngineColdDocsPerSec, out.ReferenceColdDocsPerSec, out.ColdSpeedup)
	return out, nil
}

// measureIngest benchmarks the streaming ingestion engine. Gate first: a
// corpus is ingested cold, every page is re-crawled with one extra sentence,
// and the incrementally maintained store must answer the search/facts
// battery identically to an engine that ingested only the final corpus from
// scratch. Then two measurements over the final corpus: cold ingestion into
// a fresh engine per iteration, and re-ingestion of the byte-identical
// corpus into a warm engine, where every document short-circuits on its
// stored fingerprint.
func measureIngest(rounds int, seed int64, pageCount int) (ingestSection, error) {
	var out ingestSection
	ctx := context.Background()
	pgs := corpus.Generate(corpus.TableLConfig(seed, pageCount)).Pages
	out.Pages = len(pgs)

	newEngine := func() (*ingest.Ingestor, *store.Store, error) {
		st, err := store.Open(store.Options{Fingerprint: "briq-bench-ingest"})
		if err != nil {
			return nil, nil, err
		}
		return ingest.New(core.NewPipeline(), st, ingest.Options{}), st, nil
	}
	ingestCorpus := func(ing *ingest.Ingestor) (reused, realigned int, err error) {
		for _, pg := range pgs {
			res := ing.Page(ctx, pg.ID, pg.HTML())
			if res.Error != "" {
				return 0, 0, fmt.Errorf("ingest %s: %s", pg.ID, res.Error)
			}
			reused += res.Reused
			realigned += res.Realigned
		}
		return reused, realigned, nil
	}
	// snapshot serializes the store's observable serving state — the search
	// battery plus every entity's facts — for the equivalence gate.
	snapshot := func(st *store.Store) ([]byte, error) {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, q := range []quantsearch.Query{
			{Op: quantsearch.Above, Value: 0},
			{Op: quantsearch.Below, Value: 1000},
			{Op: quantsearch.Between, Value: 5, Value2: 500},
			{Keywords: []string{"total"}, Op: quantsearch.Above, Value: 0},
		} {
			if err := enc.Encode(st.Search(q)); err != nil {
				return nil, err
			}
		}
		ents := st.Entities()
		if err := enc.Encode(ents); err != nil {
			return nil, err
		}
		for _, e := range ents {
			if err := enc.Encode(st.FactsFor(e)); err != nil {
				return nil, err
			}
		}
		return buf.Bytes(), nil
	}

	// Equivalence gate: cold ingest, re-crawl with one sentence appended per
	// page, then compare against a from-scratch ingest of the final corpus.
	warm, warmStore, err := newEngine()
	if err != nil {
		return out, err
	}
	if _, _, err := ingestCorpus(warm); err != nil {
		return out, fmt.Errorf("ingest gate (cold pass): %w", err)
	}
	for _, pg := range pgs {
		pg.Paras[0] += " A follow-up note was appended on re-crawl."
	}
	reused, realigned, err := ingestCorpus(warm)
	if err != nil {
		return out, fmt.Errorf("ingest gate (mutated pass): %w", err)
	}
	if reused == 0 || realigned == 0 {
		return out, fmt.Errorf("ingest gate: mutated re-crawl reused %d / realigned %d, want both > 0", reused, realigned)
	}
	out.MutatedReuseRate = float64(reused) / float64(reused+realigned)
	scratch, scratchStore, err := newEngine()
	if err != nil {
		return out, err
	}
	if _, docs, err := ingestCorpus(scratch); err != nil {
		return out, fmt.Errorf("ingest gate (scratch pass): %w", err)
	} else {
		out.Documents = docs
	}
	got, err := snapshot(warmStore)
	if err != nil {
		return out, err
	}
	want, err := snapshot(scratchStore)
	if err != nil {
		return out, err
	}
	if !bytes.Equal(got, want) {
		return out, fmt.Errorf("ingest gate: incremental store differs from from-scratch ingest of the final corpus")
	}
	out.EquivalentToScratch = true
	fmt.Printf("ingest gate: incremental state identical to from-scratch on %d pages (%.0f%% reused on re-crawl)\n",
		out.Pages, 100*out.MutatedReuseRate)

	cold := best(rounds, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ing, _, err := newEngine()
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, _, err := ingestCorpus(ing); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Re-ingest measures the warm engine over the byte-identical corpus:
	// segmentation and fingerprinting run, alignment and log writes do not.
	reingest := best(rounds, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ingestCorpus(scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
	out.ColdNsPerCorpus = cold.NsPerOp
	out.ColdDocsPerSec = docsPerSec(out.Documents, cold.NsPerOp)
	out.ReingestNsPerCorpus = reingest.NsPerOp
	out.ReingestDocsPerSec = docsPerSec(out.Documents, reingest.NsPerOp)
	if reingest.NsPerOp > 0 {
		out.Speedup = cold.NsPerOp / reingest.NsPerOp
	}
	fmt.Printf("ingest: cold %.0f docs/sec | re-ingest %.0f docs/sec | speedup %.1fx\n",
		out.ColdDocsPerSec, out.ReingestDocsPerSec, out.Speedup)
	return out, nil
}

// docsPerSec converts a per-corpus latency into document throughput.
func docsPerSec(docs int, nsPerCorpus float64) float64 {
	if nsPerCorpus <= 0 {
		return 0
	}
	return float64(docs) / (nsPerCorpus / 1e9)
}

// compare benchmarks the CSR and reference sides of one comparison and
// derives the ratios.
func compare(rounds int, csr, ref func(b *testing.B)) comparison {
	c := comparison{CSR: best(rounds, csr), Reference: best(rounds, ref)}
	if c.CSR.NsPerOp > 0 {
		c.Speedup = c.Reference.NsPerOp / c.CSR.NsPerOp
	}
	if c.Reference.AllocsPerOp > 0 {
		c.AllocsRatio = float64(c.CSR.AllocsPerOp) / float64(c.Reference.AllocsPerOp)
	}
	return c
}

// best runs fn through testing.Benchmark `rounds` times and keeps the round
// with the lowest ns/op — the least scheduler-disturbed measurement.
func best(rounds int, fn func(b *testing.B)) side {
	var out side
	for r := 0; r < rounds; r++ {
		res := testing.Benchmark(fn)
		s := side{
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
		}
		if r == 0 || s.NsPerOp < out.NsPerOp {
			out = s
		}
	}
	return out
}

func printComparison(name string, c comparison) {
	fmt.Printf("%s: csr %.0f ns/op %d allocs/op | reference %.0f ns/op %d allocs/op | speedup %.2fx\n",
		name, c.CSR.NsPerOp, c.CSR.AllocsPerOp, c.Reference.NsPerOp, c.Reference.AllocsPerOp, c.Speedup)
}
