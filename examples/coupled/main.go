// Coupled: the Fig. 3 example — "11%" and "13.3%" have exact matches in
// BOTH tables, so local resolution cannot pick the right one. Joint
// inference over the candidate graph (the unambiguous "5%" and "60 bps"
// anchor table 1) resolves all four mentions to the first table.
//
//	go run ./examples/coupled
package main

import (
	"fmt"
	"log"

	"briq/internal/core"
	"briq/internal/document"
	"briq/internal/table"
)

func main() {
	t1, err := table.New("t1", "Table 1: Transportation Systems ($ Millions)", [][]string{
		{"metric", "2Q 2012", "2Q 2013", "% Change"},
		{"Sales", "900", "947", "5%"},
		{"Segment Profit", "114", "126", "11%"},
		{"Segment Margin", "12.7%", "13.3%", "60 bps"},
	})
	if err != nil {
		log.Fatal(err)
	}
	t2, err := table.New("t2", "Table 2: Automation & Control ($ Millions)", [][]string{
		{"metric", "2Q 2012", "2Q 2013", "% Change"},
		{"Sales", "3,962", "4,065", "3%"},
		{"Segment Profit", "525", "585", "11%"},
		{"Segment Margin", "13.3%", "14.4%", "110 bps"},
	})
	if err != nil {
		log.Fatal(err)
	}

	text := "Sales were up 5% on both a reported and organic basis, compared with " +
		"the second quarter of 2012. Segment profit was up 11% and segment margins " +
		"increased 60 bps to 13.3% primarily driven by strong productivity and volume leverage."

	docs := document.NewSegmenter().Segment("coupled", []string{text}, []*table.Table{t1, t2})
	if len(docs) != 1 {
		log.Fatalf("expected 1 document, got %d", len(docs))
	}
	doc := docs[0]
	fmt.Printf("document relates to %d tables (the ambiguity of Fig. 3)\n", len(doc.Tables))

	pipeline := core.NewPipeline()
	fmt.Println("joint resolution (all mentions should land in t1):")
	for _, a := range pipeline.Align(doc) {
		fmt.Printf("  %-8q → %s\n", a.TextSurface, a.TableKey)
	}
}
