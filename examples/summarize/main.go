// Summarize: the paper's motivating application (§I) — alignment-aware text
// summarization. Knowing that one sentence references a column sum while
// others restate individual cells of the same column, the summarizer keeps
// the former and drops the latter.
//
//	go run ./examples/summarize
package main

import (
	"fmt"
	"log"

	"briq/internal/core"
	"briq/internal/document"
	"briq/internal/summarize"
	"briq/internal/table"
)

func main() {
	tbl, err := table.New("t0", "side effects reported by patients", [][]string{
		{"side effects", "male", "female", "total"},
		{"Rash", "15", "20", "35"},
		{"Depression", "13", "25", "38"},
		{"Hypertension", "19", "15", "34"},
		{"Nausea", "5", "6", "11"},
		{"Eye Disorders", "2", "3", "5"},
	})
	if err != nil {
		log.Fatal(err)
	}
	text := "A total of 123 patients reported side effects across the trial. " +
		"Rash was reported by 35 patients over the same period. " +
		"Depression was reported by 38 patients in the study. " +
		"Hypertension affected 34 patients according to the clinicians. " +
		"Enrollment procedures followed the usual protocol."

	docs := document.NewSegmenter().Segment("report", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		log.Fatal("segmentation failed")
	}

	s := summarize.New(core.NewPipeline())
	s.Config.MaxSentences = 2
	summary := s.Summarize(docs[0])

	fmt.Println("input:", text)
	fmt.Println()
	// The aggregate sentence covers the whole total column, so the cell
	// restatements are redundant and the summary stops early — exactly the
	// "include the former, but not the latter" behavior of §I.
	fmt.Println("summary (up to 2 sentences, aggregate-first):")
	for _, sent := range summary.Sentences {
		marker := " "
		if sent.CoversAggregate {
			marker = "*" // references a virtual cell
		}
		fmt.Printf("  %s %s\n", marker, sent.Text)
	}
	fmt.Printf("\ntable cells covered: %v\n", summary.CellCoverage)
}
