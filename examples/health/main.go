// Health: the Fig. 1a example of the paper — "total of 123 patients" is an
// aggregate (the sum of the total column) that appears in no explicit cell;
// BriQ aligns it to the generated virtual cell.
//
//	go run ./examples/health
package main

import (
	"fmt"
	"log"

	"briq/internal/core"
	"briq/internal/document"
	"briq/internal/table"
)

func main() {
	tbl, err := table.New("t0", "side effects reported by patients", [][]string{
		{"side effects", "male", "female", "total"},
		{"Rash", "15", "20", "35"},
		{"Depression", "13", "25", "38"},
		{"Hypertension", "19", "15", "34"},
		{"Nausea", "5", "6", "11"},
		{"Eye Disorders", "2", "3", "5"},
	})
	if err != nil {
		log.Fatal(err)
	}

	text := "A total of 123 patients who undergo the drug trials reported side " +
		"effects, of which there were 69 female patients and 54 male patients. " +
		"The most common side affect is depression, reported by 38 patients; " +
		"and the least common side affect is eye disorder, reported by 5 patients."

	docs := document.NewSegmenter().Segment("health", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		log.Fatalf("expected 1 document, got %d", len(docs))
	}

	pipeline := core.NewPipeline()
	fmt.Println("Fig. 1a (health): text mentions and their alignments")
	for _, a := range pipeline.Align(docs[0]) {
		fmt.Printf("  %-8q → %-18s %s = %g\n", a.TextSurface, a.TableKey, a.AggName, a.Value)
	}
}
