// Quickstart: align the quantities of a small HTML page against its table
// using the default (untrained) pipeline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"briq"
)

const page = `<!DOCTYPE html>
<html><head><title>Drug Trial Report</title></head><body>
<p>A total of 123 patients who undergo the drug trials reported side effects,
of which there were 69 female patients and 54 male patients. The most common
side affect is depression, reported by 38 patients.</p>
<table>
<caption>side effects reported by patients in the drug trial</caption>
<tr><th>side effects</th><th>male</th><th>female</th><th>total</th></tr>
<tr><td>Rash</td><td>15</td><td>20</td><td>35</td></tr>
<tr><td>Depression</td><td>13</td><td>25</td><td>38</td></tr>
<tr><td>Hypertension</td><td>19</td><td>15</td><td>34</td></tr>
<tr><td>Nausea</td><td>5</td><td>6</td><td>11</td></tr>
<tr><td>Eye Disorders</td><td>2</td><td>3</td><td>5</td></tr>
</table>
</body></html>`

func main() {
	pipeline := briq.New()
	alignments, err := briq.AlignHTMLContext(context.Background(), pipeline, "quickstart", page)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BriQ quantity alignments (text mention → table mention):")
	for _, a := range alignments {
		fmt.Printf("  %-14q → %-22s %s = %g (score %.3f)\n",
			a.TextSurface, a.TableKey, a.AggName, a.Value, a.Score)
	}
	if len(alignments) == 0 {
		fmt.Println("  (none)")
	}
}
