// Finance: the Fig. 1c example — the calculated quantity "increased by 1.5%"
// refers to no explicit cell; it is the change ratio between the income
// cells of 2013 and 2012 (ratio(890, 876) ≈ 1.57%), materialized by BriQ as
// a virtual cell.
//
//	go run ./examples/finance
package main

import (
	"fmt"
	"log"

	"briq/internal/core"
	"briq/internal/document"
	"briq/internal/table"
)

func main() {
	tbl, err := table.New("t0", "Income gains: total revenue, gross income, income taxes and income", [][]string{
		{"gains", "2013", "2012", "2011"},
		{"Total Revenue", "3,263", "3,193", "2,911"},
		{"Gross income", "1,069", "1,053", "877"},
		{"Income taxes", "179", "177", "160"},
		{"Income", "890", "876", "849"},
	})
	if err != nil {
		log.Fatal(err)
	}

	text := "Net income reached 890 this year. Compared to the income of the " +
		"previous year, it increased by 1.5%."

	docs := document.NewSegmenter().Segment("finance", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		log.Fatalf("expected 1 document, got %d", len(docs))
	}

	pipeline := core.NewPipeline()
	fmt.Println("Fig. 1c (finance): calculated quantities (change ratios)")
	for _, a := range pipeline.Align(docs[0]) {
		fmt.Printf("  %-8q → %-20s %s = %.4g\n", a.TextSurface, a.TableKey, a.AggName, a.Value)
	}
}
