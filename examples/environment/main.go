// Environment: the Fig. 1b example — the approximate mention "37K EUR"
// refers to the cell containing 36900 (German MSRP of the A3) in a rotated
// table whose specs are row headers.
//
//	go run ./examples/environment
package main

import (
	"fmt"
	"log"

	"briq/internal/core"
	"briq/internal/document"
	"briq/internal/table"
)

func main() {
	tbl, err := table.New("t0", "car ratings, price and environmental footprint", [][]string{
		{"spec", "Focus E", "A3", "VW Golf"},
		{"German MSRP", "34900", "36900", "33800"},
		{"American MSRP", "29120", "38900", "29915"},
		{"Emission (g/km)", "0", "105", "122"},
		{"Fuel Economy", "105", "70.6", "61.4"},
		{"Final rating", "1.33", "2.67", "2.67"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's full Fig. 1b text. "37K EUR" is an approximate mention of
	// the 36900 cell; "2K EUR" is a calculated difference (36900 − 34900)
	// present in no cell. Some mentions here are genuinely hard — the
	// paper's Fig. 6 discusses the same-value collisions this text contains.
	text := "The final ratings are dominated by the PHEV from Audi (2.67) and ICE " +
		"from Volkswagen (2.67). Audi A3 e-tron is the least affordable option with " +
		"37K EUR in Germany and 39K USD in the US. The Ford Focus Electric, lowest " +
		"rating (1.33), is a 2K EUR (2.3K USD) cheaper alternative with 0 CO2 " +
		"emission and 105 MPGe fuel consumption."

	docs := document.NewSegmenter().Segment("environment", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		log.Fatalf("expected 1 document, got %d", len(docs))
	}

	pipeline := core.NewPipeline()
	fmt.Println("Fig. 1b (environment): approximate mentions against a rotated table")
	for _, a := range pipeline.Align(docs[0]) {
		fmt.Printf("  %-10q → %-18s %s = %g\n", a.TextSurface, a.TableKey, a.AggName, a.Value)
	}
}
