// Search: the paper's concluding vision (§XI) — quantity queries over web
// tables, e.g. "Internet companies with annual income above 5 Mio. USD" and
// "electric cars with energy consumption below 100 MPGe".
//
//	go run ./examples/search
package main

import (
	"fmt"
	"log"

	"briq/internal/document"
	"briq/internal/quantsearch"
	"briq/internal/table"
)

func main() {
	income, err := table.New("t-income", "annual income of internet companies ($ millions)", [][]string{
		{"company", "income", "revenue"},
		{"Acme Web", "7", "20"},
		{"Widget Net", "3", "9"},
		{"Search Co", "12", "40"},
	})
	if err != nil {
		log.Fatal(err)
	}
	cars, err := table.New("t-cars", "electric cars energy consumption and range", [][]string{
		{"model", "consumption MPGe", "range km"},
		{"Volt", "95", "420"},
		{"Bolt", "115", "380"},
		{"Leaf", "105", "360"},
	})
	if err != nil {
		log.Fatal(err)
	}

	ix := quantsearch.BuildIndex([]*document.Document{
		{ID: "d0", Tables: []*table.Table{income}},
		{ID: "d1", Tables: []*table.Table{cars}},
	})
	fmt.Printf("indexed %d table quantities\n\n", ix.Size())

	for _, queryText := range []string{
		"income above 5 million USD",
		"energy consumption below 100 MPGe",
		"range between 350 and 400 km",
	} {
		q, err := quantsearch.ParseQuery(queryText)
		if err != nil {
			log.Fatalf("parse %q: %v", queryText, err)
		}
		fmt.Printf("query: %q  (op=%s value=%g unit=%q keywords=%v)\n",
			queryText, q.Op, q.Value, q.Unit, q.Keywords)
		for _, r := range ix.Search(q) {
			fmt.Printf("  %-12s %-18s = %-12g [%s row %d, col %d]\n",
				r.Entity, r.Header, r.Value, r.TableID, r.Row, r.Col)
		}
		fmt.Println()
	}
}
