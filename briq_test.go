package briq_test

import (
	"strings"
	"testing"

	"briq"
)

const quickstartPage = `<html><head><title>Drug Trial</title></head><body>
<p>A total of 123 patients reported side effects, of which there were 69
female patients and 54 male patients.</p>
<table>
<caption>side effects reported by patients</caption>
<tr><th>side effects</th><th>male</th><th>female</th><th>total</th></tr>
<tr><td>Rash</td><td>15</td><td>20</td><td>35</td></tr>
<tr><td>Depression</td><td>13</td><td>25</td><td>38</td></tr>
<tr><td>Hypertension</td><td>19</td><td>15</td><td>34</td></tr>
<tr><td>Nausea</td><td>5</td><td>6</td><td>11</td></tr>
<tr><td>Eye Disorders</td><td>2</td><td>3</td><td>5</td></tr>
</table>
</body></html>`

func TestAlignHTMLFacade(t *testing.T) {
	alignments, err := briq.AlignHTML(briq.New(), "p0", quickstartPage)
	if err != nil {
		t.Fatal(err)
	}
	if len(alignments) == 0 {
		t.Fatal("no alignments")
	}
	foundSum := false
	for _, a := range alignments {
		if strings.Contains(a.TextSurface, "123") && a.AggName == "sum" && a.Value == 123 {
			foundSum = true
		}
	}
	if !foundSum {
		t.Errorf("'total of 123' not aligned to the column sum: %+v", alignments)
	}
}

func TestNewTrainedFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("training takes a few seconds")
	}
	p, err := briq.NewTrained(7)
	if err != nil {
		t.Fatal(err)
	}
	alignments, err := briq.AlignHTML(p, "p0", quickstartPage)
	if err != nil {
		t.Fatal(err)
	}
	if len(alignments) == 0 {
		t.Fatal("trained pipeline produced no alignments")
	}
}
