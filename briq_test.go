package briq_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"briq"
	"briq/internal/corpus"
)

const quickstartPage = `<html><head><title>Drug Trial</title></head><body>
<p>A total of 123 patients reported side effects, of which there were 69
female patients and 54 male patients.</p>
<table>
<caption>side effects reported by patients</caption>
<tr><th>side effects</th><th>male</th><th>female</th><th>total</th></tr>
<tr><td>Rash</td><td>15</td><td>20</td><td>35</td></tr>
<tr><td>Depression</td><td>13</td><td>25</td><td>38</td></tr>
<tr><td>Hypertension</td><td>19</td><td>15</td><td>34</td></tr>
<tr><td>Nausea</td><td>5</td><td>6</td><td>11</td></tr>
<tr><td>Eye Disorders</td><td>2</td><td>3</td><td>5</td></tr>
</table>
</body></html>`

func TestAlignHTMLFacade(t *testing.T) {
	alignments, err := briq.AlignHTMLContext(context.Background(), briq.New(), "p0", quickstartPage)
	if err != nil {
		t.Fatal(err)
	}
	if len(alignments) == 0 {
		t.Fatal("no alignments")
	}
	foundSum := false
	for _, a := range alignments {
		if strings.Contains(a.TextSurface, "123") && a.AggName == "sum" && a.Value == 123 {
			foundSum = true
		}
	}
	if !foundSum {
		t.Errorf("'total of 123' not aligned to the column sum: %+v", alignments)
	}
}

// TestOptionsConfigure pins the functional-options surface: workers and
// recorder land on the pipeline, and a recorder attached via WithRecorder
// observes every stage of an aligned page.
func TestOptionsConfigure(t *testing.T) {
	rec := briq.NewRecorder()
	p := briq.New(briq.WithWorkers(8), briq.WithRecorder(rec))
	if p.Workers != 8 {
		t.Errorf("Workers = %d, want 8", p.Workers)
	}
	if p.Recorder != rec {
		t.Error("WithRecorder did not attach the recorder")
	}

	if _, err := briq.AlignHTMLContext(context.Background(), p, "p0", quickstartPage); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if len(snap) == 0 {
		t.Fatal("recorder snapshot empty after aligning a page")
	}
	for stage, h := range snap {
		if strings.HasPrefix(stage, "resolve/") && stage != "resolve/"+p.ResolverName() {
			// Every strategy's stage is pre-registered for schema stability,
			// but only the selected strategy observes.
			if h.Count != 0 {
				t.Errorf("unselected resolver stage %s recorded %d observations", stage, h.Count)
			}
			continue
		}
		if h.Count == 0 {
			t.Errorf("stage %s recorded no observations", stage)
		}
	}
}

// TestErrorTaxonomy asserts the typed sentinels through the public facade
// with errors.Is — the page-shape errors wrap ErrNoTables / ErrNoMentions.
func TestErrorTaxonomy(t *testing.T) {
	p := briq.New()
	ctx := context.Background()

	_, err := briq.AlignHTMLContext(ctx, p, "p0", `<html><body><p>Only 42 words here.</p></body></html>`)
	if !errors.Is(err, briq.ErrNoTables) {
		t.Errorf("tableless page: err = %v, want ErrNoTables", err)
	}
	if !briq.IsUnalignable(err) {
		t.Errorf("ErrNoTables should be IsUnalignable, got %v", err)
	}

	_, err = briq.AlignHTMLContext(ctx, p, "p1", `<html><body>
<p>A paragraph about methodology with no figures at all.</p>
<table><tr><th>a</th><th>b</th></tr><tr><td>1</td><td>2</td></tr></table>
</body></html>`)
	if !errors.Is(err, briq.ErrNoMentions) {
		t.Errorf("mentionless page: err = %v, want ErrNoMentions", err)
	}
	if !briq.IsUnalignable(err) {
		t.Errorf("ErrNoMentions should be IsUnalignable, got %v", err)
	}

	if err := p.EnsureTrained(); !errors.Is(err, briq.ErrUntrained) {
		t.Errorf("heuristic pipeline: err = %v, want ErrUntrained", err)
	}
	if briq.IsUnalignable(briq.ErrUntrained) {
		t.Error("ErrUntrained must not be IsUnalignable")
	}
}

// TestAlignHTMLContextCancelled: a dead context surfaces through the facade.
func TestAlignHTMLContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := briq.AlignHTMLContext(ctx, briq.New(), "p0", quickstartPage); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAlignCorpusFacade: the concurrent corpus path is byte-identical to the
// serial AlignAll result, and the attached recorder sees the merged
// pool-side observations.
func TestAlignCorpusFacade(t *testing.T) {
	c := corpus.Generate(corpus.TableLConfig(42, 4))
	rec := briq.NewRecorder()
	p := briq.New(briq.WithWorkers(4), briq.WithRecorder(rec))

	serial := p.AlignAll(c.Docs, 1)
	got, err := briq.AlignCorpus(context.Background(), p, c.Docs)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(serial)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("AlignCorpus output diverged from serial AlignAll")
	}

	snap := rec.Snapshot()
	// The serial AlignAll above also recorded into rec, so expect 2×docs.
	if want := int64(2 * len(c.Docs)); snap["align"].Count != want {
		t.Errorf("align stage count = %d, want %d", snap["align"].Count, want)
	}
}

func TestAlignCorpusCancelled(t *testing.T) {
	c := corpus.Generate(corpus.TableLConfig(7, 2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := briq.AlignCorpus(ctx, briq.New(), c.Docs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNewTrainedFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("training takes a few seconds")
	}
	p := briq.New(briq.WithTrainedSeed(7))
	if err := p.EnsureTrained(); err != nil {
		t.Fatalf("WithTrainedSeed pipeline reports %v", err)
	}
	alignments, err := briq.AlignHTMLContext(context.Background(), p, "p0", quickstartPage)
	if err != nil {
		t.Fatal(err)
	}
	if len(alignments) == 0 {
		t.Fatal("trained pipeline produced no alignments")
	}
}

// TestDeprecatedShimsDelegate pins the two compatibility shims to their
// replacements: AlignHTML must return exactly what AlignHTMLContext returns
// (with unalignable pages mapped to an empty success), and NewTrained must
// build the same models as New(WithTrainedSeed) — asserted through the model
// fingerprint, which only matches when every trained parameter does.
func TestDeprecatedShimsDelegate(t *testing.T) {
	p := briq.New()
	want, wantErr := briq.AlignHTMLContext(context.Background(), p, "p0", quickstartPage)
	if wantErr != nil {
		t.Fatal(wantErr)
	}
	got, err := briq.AlignHTML(p, "p0", quickstartPage)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("AlignHTML output diverged from AlignHTMLContext")
	}

	// The resolver refactor must not perturb the shim path either: the shim on
	// an explicitly rwr-selected pipeline is byte-identical to the default.
	rwrGot, err := briq.AlignHTML(briq.New(briq.WithResolver("rwr")), "p0", quickstartPage)
	if err != nil {
		t.Fatal(err)
	}
	rwrJSON, _ := json.Marshal(rwrGot)
	if !bytes.Equal(rwrJSON, wantJSON) {
		t.Error("AlignHTML with explicit rwr resolver diverged from the default pipeline")
	}

	// The shim's one behavioral difference: unalignable pages are an empty
	// success, for pre-taxonomy callers that never handled typed errors.
	als, err := briq.AlignHTML(p, "p2", `<html><body><p>Only 42 words here.</p></body></html>`)
	if err != nil || als != nil {
		t.Errorf("AlignHTML on tableless page = (%v, %v), want (nil, nil)", als, err)
	}

	if testing.Short() {
		t.Skip("training twice takes several seconds")
	}
	old, err := briq.NewTrained(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.EnsureTrained(); err != nil {
		t.Fatalf("NewTrained pipeline reports %v", err)
	}
	if old.Fingerprint() != briq.New(briq.WithTrainedSeed(7)).Fingerprint() {
		t.Error("NewTrained models differ from New(WithTrainedSeed) models")
	}
}
