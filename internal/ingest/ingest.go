// Package ingest is the streaming corpus-maintenance engine behind
// POST /v1/ingest: pages arrive one at a time (NDJSON lines on the wire),
// each is segmented into documents, every document's content identity is
// checked against the persistent store, and only documents whose identity is
// new — a changed paragraph or table, or a genuinely new document — go
// through classify/filter/resolve. The page is then upserted: stale
// documents of a previous crawl are retracted, unchanged ones reused
// byte-for-byte.
//
// Re-alignment runs on one shared runtime.Pool, which both bounds memory
// (one page's miss set in flight at a time) and keeps worker clones warm
// across pages. Upserts of the same page are serialized on a per-page lock
// so the store's reuse check and the upsert are atomic with respect to each
// other; distinct pages proceed concurrently.
package ingest

import (
	"context"
	"errors"
	"hash/fnv"
	"sync"

	"briq/internal/api"
	"briq/internal/core"
	"briq/internal/document"
	"briq/internal/htmlx"
	"briq/internal/runtime"
	"briq/internal/serve"
	"briq/internal/store"
)

// DocStatus reports how one document of an ingested page was handled.
type DocStatus struct {
	DocID  string `json:"doc_id"`
	Status string `json:"status"` // "reused" | "realigned"
}

// Result is one page's ingestion outcome — one NDJSON response line on the
// wire. Either Error is set (the page was not upserted; the previous crawl,
// if any, stays live) or the counts describe the upsert.
type Result struct {
	PageID        string      `json:"page_id"`
	Documents     []DocStatus `json:"documents,omitempty"`
	Reused        int         `json:"reused"`
	Realigned     int         `json:"realigned"`
	Retracted     int         `json:"retracted"`
	Alignments    int         `json:"alignments"`
	PersistErrors int64       `json:"persist_errors,omitempty"`
	Error         string      `json:"error,omitempty"`
	Code          string      `json:"code,omitempty"` // api error code for Error
}

// Options configure an Ingestor.
type Options struct {
	// Workers is the re-alignment pool width; ≤ 0 falls back to the
	// pipeline's Workers, then GOMAXPROCS.
	Workers int
}

// pageShards is the size of the per-page lock table. Collisions only
// over-serialize two unrelated pages; correctness needs same-page exclusion.
const pageShards = 64

// Ingestor ingests pages into a store, reusing stored alignments for
// unchanged documents. Safe for concurrent use.
type Ingestor struct {
	store *store.Store
	seg   *document.Segmenter
	pool  *runtime.Pool
	locks [pageShards]sync.Mutex
}

// New builds an Ingestor over the pipeline's models and the given store.
func New(proto *core.Pipeline, st *store.Store, opts Options) *Ingestor {
	seg := proto.Segmenter
	if seg == nil {
		seg = document.NewSegmenter()
	}
	return &Ingestor{
		store: st,
		seg:   seg,
		pool:  runtime.NewPool(proto, runtime.Options{Workers: opts.Workers}),
	}
}

func (ing *Ingestor) pageLock(pageID string) *sync.Mutex {
	h := fnv.New32a()
	h.Write([]byte(pageID))
	return &ing.locks[h.Sum32()%pageShards]
}

// Page ingests one page: segment, fingerprint-check every document, re-align
// only the misses, upsert. An error Result (Error != "") means the store was
// not touched for this page. The context cancels mid-alignment.
func (ing *Ingestor) Page(ctx context.Context, pageID, html string) Result {
	res := Result{PageID: pageID}

	mu := ing.pageLock(pageID)
	mu.Lock()
	defer mu.Unlock()

	docs, err := ing.seg.SegmentPage(pageID, htmlx.ParseString(html))
	if err != nil {
		res.Error, res.Code = err.Error(), api.CodeUnprocessable
		return res
	}

	// Fingerprint check: a stored live identity means the whole
	// classify/filter/resolve chain is skipped for that document.
	als := make([][]core.Alignment, len(docs))
	var missDocs []*document.Document
	var missIdx []int
	for i, d := range docs {
		if stored, ok := ing.store.Alignments(ing.store.DocumentKey(d)); ok {
			als[i] = nil // reused; UpsertPage keeps the live record
			res.Alignments += len(stored)
			continue
		}
		missDocs = append(missDocs, d)
		missIdx = append(missIdx, i)
	}

	if len(missDocs) > 0 {
		fresh, err := ing.pool.AlignPerDoc(ctx, missDocs)
		if err != nil {
			res.Error, res.Code = err.Error(), alignCode(err)
			return res
		}
		for j, i := range missIdx {
			if fresh[j] == nil {
				fresh[j] = []core.Alignment{}
			}
			als[i] = fresh[j]
			res.Alignments += len(fresh[j])
		}
	}

	up := ing.store.UpsertPage(pageID, docs, als)
	res.Retracted = up.Retracted
	res.PersistErrors = up.PersistErrors
	res.Documents = make([]DocStatus, len(docs))
	for i, d := range docs {
		st := "realigned"
		if up.Reused[i] {
			st = "reused"
			res.Reused++
		} else {
			res.Realigned++
		}
		res.Documents[i] = DocStatus{DocID: d.ID, Status: st}
	}
	return res
}

func alignCode(err error) string {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return api.CodeDeadline
	case errors.Is(err, serve.ErrOverloaded):
		return api.CodeOverloaded
	default:
		return api.CodeUnprocessable
	}
}
