package ingest

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"briq/internal/core"
	"briq/internal/corpus"
	"briq/internal/quantsearch"
	"briq/internal/store"
)

const testFP = "fp-ingest-test"

func testPages(t *testing.T, seed int64, pages int) []*corpus.Page {
	t.Helper()
	cfg := corpus.TableSConfig(seed)
	cfg.Pages = pages
	return corpus.Generate(cfg).Pages
}

func newEngine(t *testing.T) (*Ingestor, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Options{Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	return New(core.NewPipeline(), st, Options{Workers: 2}), st
}

func battery() []quantsearch.Query {
	return []quantsearch.Query{
		{Op: quantsearch.Above, Value: 0},
		{Op: quantsearch.Below, Value: 1000},
		{Op: quantsearch.Between, Value: 5, Value2: 500},
		{Op: quantsearch.Above, Value: 10, Unit: "USD"},
		{Keywords: []string{"total"}, Op: quantsearch.Above, Value: 0},
	}
}

func ingestAll(t *testing.T, ing *Ingestor, pages []*corpus.Page) []Result {
	t.Helper()
	out := make([]Result, 0, len(pages))
	for _, pg := range pages {
		res := ing.Page(context.Background(), pg.ID, pg.HTML())
		if res.Error != "" {
			t.Fatalf("ingest %s: %s (%s)", pg.ID, res.Error, res.Code)
		}
		out = append(out, res)
	}
	return out
}

func assertStoresEqual(t *testing.T, got, want *store.Store, label string) {
	t.Helper()
	for i, q := range battery() {
		if !reflect.DeepEqual(got.Search(q), want.Search(q)) {
			t.Fatalf("%s: query %d diverges from from-scratch alignment", label, i)
		}
	}
	g, w := got.Entities(), want.Entities()
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: entities diverge", label)
	}
	for _, e := range w {
		if !reflect.DeepEqual(got.FactsFor(e), want.FactsFor(e)) {
			t.Fatalf("%s: facts for %q diverge", label, e)
		}
	}
}

// TestIngestColdThenIdentical: a cold ingest realigns every document, and a
// byte-identical re-crawl reuses every one without touching alignment.
func TestIngestColdThenIdentical(t *testing.T) {
	pages := testPages(t, 41, 4)
	ing, st := newEngine(t)

	cold := ingestAll(t, ing, pages)
	for _, r := range cold {
		if r.Reused != 0 || r.Realigned == 0 || r.Retracted != 0 {
			t.Fatalf("cold page %s: %+v", r.PageID, r)
		}
		for _, d := range r.Documents {
			if d.Status != "realigned" {
				t.Fatalf("cold page %s doc %s status %q", r.PageID, d.DocID, d.Status)
			}
		}
	}

	again := ingestAll(t, ing, pages)
	for i, r := range again {
		if r.Realigned != 0 || r.Retracted != 0 || r.Reused != cold[i].Realigned {
			t.Fatalf("re-crawl page %s: %+v (cold realigned %d)", r.PageID, r, cold[i].Realigned)
		}
		if r.Alignments != cold[i].Alignments {
			t.Fatalf("re-crawl page %s reports %d alignments, cold run %d",
				r.PageID, r.Alignments, cold[i].Alignments)
		}
		for _, d := range r.Documents {
			if d.Status != "reused" {
				t.Fatalf("re-crawl page %s doc %s status %q", r.PageID, d.DocID, d.Status)
			}
		}
	}
	if c := st.Counters(); c["retracted_documents"] != 0 {
		t.Errorf("identical re-crawl retracted documents: %v", c)
	}
}

// TestIngestMutationEquivalence is the tentpole acceptance gate end to end at
// the engine layer: ingest a corpus, mutate one paragraph per page, re-ingest
// — unchanged documents must reuse their stored alignments, and the resulting
// search and facts state must be identical to aligning the final (mutated)
// corpus from scratch.
func TestIngestMutationEquivalence(t *testing.T) {
	pages := testPages(t, 47, 5)
	ing, st := newEngine(t)
	ingestAll(t, ing, pages)

	for _, pg := range pages {
		pg.Paras[0] += " Notably, 3 follow-up reports were filed."
	}
	results := ingestAll(t, ing, pages)
	var reused, realigned, retracted int
	for _, r := range results {
		reused += r.Reused
		realigned += r.Realigned
		retracted += r.Retracted
	}
	if reused == 0 {
		t.Fatal("mutated re-crawl reused nothing — the fingerprint reuse path is dead")
	}
	if realigned == 0 || retracted == 0 {
		t.Fatalf("mutated re-crawl realigned %d / retracted %d, want both > 0", realigned, retracted)
	}

	scratch, st2 := newEngine(t)
	ingestAll(t, scratch, pages)
	assertStoresEqual(t, st, st2, "incremental re-alignment")
}

// TestIngestConcurrentPages races distinct pages through one Ingestor (run
// with -race) and checks the quiesced state against a from-scratch ingest.
func TestIngestConcurrentPages(t *testing.T) {
	pages := testPages(t, 53, 6)
	ing, st := newEngine(t)

	var wg sync.WaitGroup
	for _, pg := range pages {
		pg := pg
		wg.Add(1)
		go func() {
			defer wg.Done()
			if res := ing.Page(context.Background(), pg.ID, pg.HTML()); res.Error != "" {
				t.Errorf("ingest %s: %s", pg.ID, res.Error)
			}
		}()
	}
	wg.Wait()

	scratch, st2 := newEngine(t)
	ingestAll(t, scratch, pages)
	assertStoresEqual(t, st, st2, "concurrent ingest")
}

// TestIngestCanceledContext: a dead context fails the page without touching
// the store.
func TestIngestCanceledContext(t *testing.T) {
	pages := testPages(t, 59, 1)
	ing, st := newEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := ing.Page(ctx, pages[0].ID, pages[0].HTML())
	if res.Error == "" {
		t.Fatal("canceled ingest reported success")
	}
	if c := st.Counters(); c["live_documents"] != 0 || c["upserted_pages"] != 0 {
		t.Errorf("canceled ingest touched the store: %v", c)
	}
}
