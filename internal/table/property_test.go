package table

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"briq/internal/quantity"
)

// randomGrid builds a random numeric grid with a header row/column, the
// generator for the property tests below.
func randomGrid(rng *rand.Rand) [][]string {
	rows := 2 + rng.Intn(6)
	cols := 2 + rng.Intn(5)
	grid := make([][]string, 0, rows+1)
	header := make([]string, cols+1)
	header[0] = "name"
	for c := 1; c <= cols; c++ {
		header[c] = fmt.Sprintf("col%c", 'A'+c-1)
	}
	grid = append(grid, header)
	for r := 0; r < rows; r++ {
		row := make([]string, cols+1)
		row[0] = fmt.Sprintf("row %d", r)
		for c := 1; c <= cols; c++ {
			switch rng.Intn(6) {
			case 0:
				row[c] = "" // empty cell
			case 1:
				row[c] = "n/a"
			case 2:
				row[c] = fmt.Sprintf("%.1f%%", rng.Float64()*100)
			default:
				row[c] = fmt.Sprintf("%d", rng.Intn(5000)+1)
			}
		}
		grid = append(grid, row)
	}
	return grid
}

// TestPropertyMentionsInvariants: for random tables, generated mentions
// always satisfy the structural invariants: indices sequential, cell refs in
// bounds, virtual values consistent with their aggregation recomputed from
// the input cells, and the virtual count within the configured budget.
func TestPropertyMentionsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	opts := DefaultVirtualOptions()
	opts.MaxPerTable = 300

	for trial := 0; trial < 60; trial++ {
		tbl, err := New(fmt.Sprintf("t%d", trial), "random table", randomGrid(rng))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mentions := tbl.Mentions(opts)
		virtual := 0
		for i, m := range mentions {
			if m.Index != i {
				t.Fatalf("trial %d: mention %d has Index %d", trial, i, m.Index)
			}
			if len(m.Cells) == 0 {
				t.Fatalf("trial %d: mention %d has no cells", trial, i)
			}
			vals := make([]float64, len(m.Cells))
			for j, ref := range m.Cells {
				if ref.Row < 0 || ref.Row >= tbl.Rows() || ref.Col < 0 || ref.Col >= tbl.Cols() {
					t.Fatalf("trial %d: cell ref out of bounds: %+v", trial, ref)
				}
				q := tbl.Cell(ref.Row, ref.Col).Quantity
				if q == nil {
					t.Fatalf("trial %d: mention %d references non-numeric cell", trial, i)
				}
				vals[j] = q.Value
			}
			if m.IsVirtual() {
				virtual++
				recomputed, ok := m.Agg.Apply(vals)
				if !ok {
					t.Fatalf("trial %d: %v inapplicable to its own inputs", trial, m.Agg)
				}
				want := recomputed
				switch m.Agg {
				case quantity.Percent:
					// stored as computed (already ×100 by Apply)
				case quantity.Ratio:
					want = recomputed * 100 // stored as percentage
				}
				if diff := m.Value - want; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("trial %d: %s value %v, recomputed %v", trial, m.Key(), m.Value, want)
				}
			}
		}
		if virtual > opts.MaxPerTable {
			t.Fatalf("trial %d: %d virtual mentions exceed budget %d", trial, virtual, opts.MaxPerTable)
		}
	}
}

// TestPropertyKeysUnique: mention keys are unique within a table for random
// inputs.
func TestPropertyKeysUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opts := DefaultVirtualOptions()
	for trial := 0; trial < 40; trial++ {
		tbl, err := New("t", "random", randomGrid(rng))
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, m := range tbl.Mentions(opts) {
			k := m.Key()
			if seen[k] {
				t.Fatalf("trial %d: duplicate key %s", trial, k)
			}
			seen[k] = true
		}
	}
}

// TestPropertyStatsMatchMentions: ComputeStats agrees with a direct count
// over Mentions for arbitrary budgets.
func TestPropertyStatsMatchMentions(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	check := func(budget uint8) bool {
		opts := DefaultVirtualOptions()
		opts.MaxPerTable = int(budget%100) + 1
		tbl, err := New("t", "random", randomGrid(rng))
		if err != nil {
			return false
		}
		stats := tbl.ComputeStats(opts)
		single, virtual := 0, 0
		for _, m := range tbl.Mentions(opts) {
			if m.IsVirtual() {
				virtual++
			} else {
				single++
			}
		}
		return stats.SingleCells == single && stats.VirtualCells == virtual &&
			stats.Rows == tbl.Rows() && stats.Cols == tbl.Cols()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
