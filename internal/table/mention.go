package table

import (
	"fmt"
	"strings"

	"briq/internal/quantity"
)

// Orientation says whether an aggregate spans a row or a column.
type Orientation int

// Orientations of composite mentions. OrientNone is used for single cells.
const (
	OrientNone Orientation = iota
	OrientRow
	OrientCol
)

// String returns "row", "col" or "".
func (o Orientation) String() string {
	switch o {
	case OrientRow:
		return "row"
	case OrientCol:
		return "col"
	}
	return ""
}

// CellRef addresses a cell in a table's data grid.
type CellRef struct{ Row, Col int }

// Mention is a table quantity mention: either an explicit single-cell
// mention or a composite (virtual-cell) mention computed as an aggregation
// of two or more cells (§II-A).
type Mention struct {
	Table  *Table
	Agg    quantity.Agg // SingleCell for explicit cells
	Cells  []CellRef    // the input cells, in aggregation order
	Value  float64      // the (computed) quantity value
	Unit   string       // canonical unit, "" if unknown
	Orient Orientation  // row/column orientation for composites
	Index  int          // position in the table's mention list
}

// IsVirtual reports whether the mention is a composite (virtual cell).
func (m *Mention) IsVirtual() bool { return m.Agg != quantity.SingleCell }

// Key returns a stable identifier, e.g. "t0:cell(1,2)" or "t0:sum(col 3)".
func (m *Mention) Key() string {
	if !m.IsVirtual() {
		return fmt.Sprintf("%s:cell(%d,%d)", m.Table.ID, m.Cells[0].Row, m.Cells[0].Col)
	}
	if len(m.Cells) == 2 {
		return fmt.Sprintf("%s:%s(%d,%d|%d,%d)", m.Table.ID, m.Agg,
			m.Cells[0].Row, m.Cells[0].Col, m.Cells[1].Row, m.Cells[1].Col)
	}
	fix := m.Cells[0].Col
	if m.Orient == OrientRow {
		fix = m.Cells[0].Row
	}
	return fmt.Sprintf("%s:%s(%s %d)", m.Table.ID, m.Agg, m.Orient, fix)
}

// Surface returns a textual rendering of the mention value for string
// similarity features: the raw cell text for single cells, a formatted
// number for virtual cells.
func (m *Mention) Surface() string {
	if !m.IsVirtual() {
		return m.Table.Cell(m.Cells[0].Row, m.Cells[0].Col).Text
	}
	return quantity.FormatNormalized(m.Value, virtualPrecision(m.Value))
}

// virtualPrecision picks a display precision for computed values: two
// decimals for small magnitudes, none for large.
func virtualPrecision(v float64) int {
	if v < 0 {
		v = -v
	}
	if v != 0 && v < 1000 && v != float64(int64(v)) {
		return 2
	}
	return 0
}

// Precision returns the decimal precision of the mention's surface form.
func (m *Mention) Precision() int {
	if !m.IsVirtual() {
		if q := m.Table.Cell(m.Cells[0].Row, m.Cells[0].Col).Quantity; q != nil {
			return q.Precision
		}
		return 0
	}
	return virtualPrecision(m.Value)
}

// Scale returns the order of magnitude of the mention value.
func (m *Mention) Scale() int { return quantity.OrderOfMagnitude(m.Value) }

// Context returns the textual context of the mention: the union of the rows
// and columns its input cells lie in.
func (m *Mention) Context() string {
	var sb strings.Builder
	seenRow := map[int]bool{}
	seenCol := map[int]bool{}
	for _, ref := range m.Cells {
		if !seenRow[ref.Row] {
			seenRow[ref.Row] = true
			sb.WriteString(m.Table.RowContext(ref.Row))
			sb.WriteByte(' ')
		}
		if !seenCol[ref.Col] {
			seenCol[ref.Col] = true
			sb.WriteString(m.Table.ColContext(ref.Col))
			sb.WriteByte(' ')
		}
	}
	return sb.String()
}

// VirtualOptions controls virtual-cell generation. The zero value is not
// useful; call DefaultVirtualOptions.
type VirtualOptions struct {
	// Aggs enables generation per aggregation function. SingleCell is
	// implied and always generated.
	Aggs map[quantity.Agg]bool
	// MaxPerTable caps the number of virtual cells generated for one table,
	// keeping the quadratic pair space tractable (§II-A).
	MaxPerTable int
	// MaxPairsPerLine caps the ordered pairs considered per row/column for
	// diff/percent/ratio.
	MaxPairsPerLine int
	// PairSums additionally generates two-cell sums within a line — the
	// §II-A case "the total income of the last two years, which is the sum
	// of two cells rather than a row total". The paper supports these but
	// found the sophisticated cases too rare to affect quality; they are
	// off by default for the same run-time reason.
	PairSums bool
}

// DefaultVirtualOptions enables the four aggregations used in the paper's
// experiments (sum, difference, percentage, change ratio — those appearing
// in ≥5% of tables) plus sensible caps.
func DefaultVirtualOptions() VirtualOptions {
	return VirtualOptions{
		Aggs: map[quantity.Agg]bool{
			quantity.Sum:     true,
			quantity.Diff:    true,
			quantity.Percent: true,
			quantity.Ratio:   true,
		},
		MaxPerTable:     2000,
		MaxPairsPerLine: 200,
	}
}

// ExtendedVirtualOptions additionally enables average, min and max — the
// framework-supported aggregations the paper leaves to future work.
func ExtendedVirtualOptions() VirtualOptions {
	o := DefaultVirtualOptions()
	o.Aggs[quantity.Avg] = true
	o.Aggs[quantity.Min] = true
	o.Aggs[quantity.Max] = true
	return o
}

// Mentions generates all table quantity mentions: one single-cell mention
// per numeric cell, and virtual-cell mentions per VirtualOptions:
//
//   - sum/avg/min/max over every entire row and entire column with ≥2
//     numeric cells (O(r+c) candidates);
//   - diff/percent/ratio over ordered pairs of numeric cells in the same
//     row or same column (O(C(r,2)+C(c,2)) candidates).
//
// Degenerate composites are pruned: zero differences, percentages outside
// (0.01, 10000), ratios with |value| > 1000%, and aggregates whose inputs
// mix incompatible units.
func (t *Table) Mentions(opts VirtualOptions) []*Mention {
	var out []*Mention
	add := func(m *Mention) {
		m.Index = len(out)
		out = append(out, m)
	}

	// Single cells.
	for _, cell := range t.NumericCells() {
		add(&Mention{
			Table: t,
			Agg:   quantity.SingleCell,
			Cells: []CellRef{{cell.Row, cell.Col}},
			Value: cell.Quantity.Value,
			Unit:  cell.Quantity.Unit,
		})
	}

	budget := opts.MaxPerTable
	if budget <= 0 {
		budget = 1 << 30
	}

	lineCells := func(orient Orientation, idx int) []*Cell {
		var cells []*Cell
		if orient == OrientRow {
			for c := 0; c < t.Cols(); c++ {
				if cell := t.Cell(idx, c); cell.Numeric() {
					cells = append(cells, cell)
				}
			}
		} else {
			for r := 0; r < t.Rows(); r++ {
				if cell := t.Cell(r, idx); cell.Numeric() {
					cells = append(cells, cell)
				}
			}
		}
		return cells
	}

	lines := make([]struct {
		orient Orientation
		cells  []*Cell
	}, 0, t.Rows()+t.Cols())
	for r := 0; r < t.Rows(); r++ {
		lines = append(lines, struct {
			orient Orientation
			cells  []*Cell
		}{OrientRow, lineCells(OrientRow, r)})
	}
	for c := 0; c < t.Cols(); c++ {
		lines = append(lines, struct {
			orient Orientation
			cells  []*Cell
		}{OrientCol, lineCells(OrientCol, c)})
	}

	virtualCount := 0
	addVirtual := func(m *Mention) bool {
		if virtualCount >= budget {
			return false
		}
		virtualCount++
		add(m)
		return true
	}

	// Whole-line aggregates.
	for _, agg := range []quantity.Agg{quantity.Sum, quantity.Avg, quantity.Min, quantity.Max} {
		if !opts.Aggs[agg] {
			continue
		}
		for _, line := range lines {
			if len(line.cells) < 2 {
				continue
			}
			unit, unitOK := commonUnit(line.cells)
			if !unitOK {
				continue
			}
			vals := make([]float64, len(line.cells))
			refs := make([]CellRef, len(line.cells))
			for i, cell := range line.cells {
				vals[i] = cell.Quantity.Value
				refs[i] = CellRef{cell.Row, cell.Col}
			}
			v, ok := agg.Apply(vals)
			if !ok {
				continue
			}
			if !addVirtual(&Mention{Table: t, Agg: agg, Cells: refs, Value: v, Unit: unit, Orient: line.orient}) {
				return out
			}
		}
	}

	// Same-line ordered pairs for diff/percent/ratio.
	pairAggs := make([]quantity.Agg, 0, 3)
	for _, agg := range []quantity.Agg{quantity.Diff, quantity.Percent, quantity.Ratio} {
		if opts.Aggs[agg] {
			pairAggs = append(pairAggs, agg)
		}
	}
	if len(pairAggs) == 0 {
		return out
	}
	maxPairs := opts.MaxPairsPerLine
	if maxPairs <= 0 {
		maxPairs = 1 << 30
	}
	for _, line := range lines {
		pairs := 0
		for i := 0; i < len(line.cells) && pairs < maxPairs; i++ {
			for j := 0; j < len(line.cells) && pairs < maxPairs; j++ {
				if i == j {
					continue
				}
				a, b := line.cells[i], line.cells[j]
				if !quantity.UnitsCompatible(a.Quantity.Unit, b.Quantity.Unit) {
					continue
				}
				av, bv := a.Quantity.Value, b.Quantity.Value
				// A zero operand degenerates every pair aggregate into a
				// copy of the other cell (diff(a,0)=a, ratio(a,0)=100%);
				// such virtual cells only shadow single-cell mentions.
				if av == 0 || bv == 0 {
					continue
				}
				pairs++
				refs := []CellRef{{a.Row, a.Col}, {b.Row, b.Col}}
				// Lines with exactly two numeric cells already get a
				// whole-line sum over the same pair; skip the duplicate.
				if opts.PairSums && i < j && len(line.cells) > 2 {
					if v, ok := quantity.Sum.Apply([]float64{av, bv}); ok {
						if unit, unitOK := commonUnit([]*Cell{a, b}); unitOK {
							if !addVirtual(&Mention{Table: t, Agg: quantity.Sum, Cells: refs, Value: v, Unit: unit, Orient: line.orient}) {
								return out
							}
						}
					}
				}
				for _, agg := range pairAggs {
					v, ok := agg.Apply([]float64{av, bv})
					if !ok {
						continue
					}
					m := &Mention{Table: t, Agg: agg, Cells: refs, Value: v, Orient: line.orient}
					switch agg {
					case quantity.Diff:
						// Text mentions of differences are magnitudes ("fell
						// $16.3 million", "2K EUR cheaper"), so each unordered
						// pair contributes exactly one positive diff mention.
						if v <= 0 {
							continue
						}
						m.Unit = pairUnit(a, b)
					case quantity.Percent:
						if v <= 0.01 || v >= 10000 {
							continue
						}
						m.Value = v
						m.Unit = "%"
					case quantity.Ratio:
						// Express the change ratio as a percentage so it is
						// directly comparable with "%"-unit text mentions
						// ("increased by 1.5%" ↔ ratio(890,876)).
						pctV := v * 100
						if pctV <= -1000 || pctV >= 1000 || pctV == 0 {
							continue
						}
						m.Value = pctV
						m.Unit = "%"
					}
					if !addVirtual(m) {
						return out
					}
				}
			}
		}
	}
	return out
}

// commonUnit returns the unit shared by all cells. Cells without a unit are
// compatible with anything. Reports ok=false when two distinct explicit
// units appear.
func commonUnit(cells []*Cell) (string, bool) {
	unit := ""
	for _, c := range cells {
		u := c.Quantity.Unit
		if u == "" {
			continue
		}
		if unit == "" {
			unit = u
			continue
		}
		if !quantity.UnitsCompatible(unit, u) {
			return "", false
		}
	}
	return unit, true
}

// pairUnit returns the unit for a two-cell aggregate.
func pairUnit(a, b *Cell) string {
	if a.Quantity.Unit != "" {
		return a.Quantity.Unit
	}
	return b.Quantity.Unit
}

// Stats summarizes a table for the corpus statistics of Table IX.
type Stats struct {
	Rows, Cols   int
	SingleCells  int // numeric cells
	VirtualCells int // composite mentions under the given options
}

// ComputeStats returns the table's statistics under the given virtual-cell
// options.
func (t *Table) ComputeStats(opts VirtualOptions) Stats {
	s := Stats{Rows: t.Rows(), Cols: t.Cols()}
	for _, m := range t.Mentions(opts) {
		if m.IsVirtual() {
			s.VirtualCells++
		} else {
			s.SingleCells++
		}
	}
	return s
}
