// Package table implements the web-table model used throughout BriQ: a
// schema-free grid of cells with optional header row, header column, caption
// and footers; per-cell quantity extraction; and the generation of virtual
// cells — composite quantity mentions computed as aggregations of one or
// more table cells (§II-A of the paper).
package table

import (
	"fmt"
	"strings"

	"briq/internal/nlp"
	"briq/internal/quantity"
)

// Cell is a single table cell.
type Cell struct {
	Row, Col int               // position in the data grid (headers excluded)
	Text     string            // raw cell text
	Quantity *quantity.Mention // parsed quantity, nil for non-numeric cells
}

// Numeric reports whether the cell holds a quantity.
func (c *Cell) Numeric() bool { return c.Quantity != nil }

// Table is a schema-free web table. The data grid excludes the detected
// header row and header column; those are exposed separately so context
// features can use them.
type Table struct {
	ID         string   // identifier within the page (e.g. "t0")
	Caption    string   // table caption, may be empty
	ColHeaders []string // one per data column, may be empty strings
	RowHeaders []string // one per data row, may be empty strings
	Footers    []string // footer lines, if any
	cells      [][]Cell // row-major data grid
}

// New builds a Table from a raw grid of strings. It detects a header row
// (first row mostly non-numeric while the body is numeric) and a header
// column (same heuristic on the first column), parses cell quantities, and
// propagates units found in headers, footers and the caption into unitless
// numeric cells (§III).
func New(id, caption string, grid [][]string) (*Table, error) {
	if len(grid) == 0 || len(grid[0]) == 0 {
		return nil, fmt.Errorf("table %s: empty grid", id)
	}
	width := len(grid[0])
	for i, row := range grid {
		if len(row) != width {
			return nil, fmt.Errorf("table %s: row %d has %d cells, want %d", id, i, len(row), width)
		}
	}

	t := &Table{ID: id, Caption: caption}

	hasHeaderRow := detectHeaderRow(grid)
	hasHeaderCol := detectHeaderCol(grid, hasHeaderRow)

	dataStartRow, dataStartCol := 0, 0
	if hasHeaderRow {
		dataStartRow = 1
	}
	if hasHeaderCol {
		dataStartCol = 1
	}
	if dataStartRow >= len(grid) || dataStartCol >= width {
		return nil, fmt.Errorf("table %s: no data cells after header detection", id)
	}

	if hasHeaderRow {
		for c := dataStartCol; c < width; c++ {
			t.ColHeaders = append(t.ColHeaders, strings.TrimSpace(grid[0][c]))
		}
	} else {
		t.ColHeaders = make([]string, width-dataStartCol)
	}
	if hasHeaderCol {
		for r := dataStartRow; r < len(grid); r++ {
			t.RowHeaders = append(t.RowHeaders, strings.TrimSpace(grid[r][0]))
		}
	} else {
		t.RowHeaders = make([]string, len(grid)-dataStartRow)
	}

	for r := dataStartRow; r < len(grid); r++ {
		row := make([]Cell, 0, width-dataStartCol)
		for c := dataStartCol; c < width; c++ {
			cell := Cell{Row: r - dataStartRow, Col: c - dataStartCol, Text: strings.TrimSpace(grid[r][c])}
			if m, ok := quantity.ParseCell(cell.Text); ok {
				cell.Quantity = &m
			}
			row = append(row, cell)
		}
		t.cells = append(t.cells, row)
	}

	t.propagateUnits()
	return t, nil
}

// detectHeaderRow reports whether the first row looks like a header: fewer
// numeric cells than the remaining rows' average.
func detectHeaderRow(grid [][]string) bool {
	if len(grid) < 2 {
		return false
	}
	first := numericFraction(grid[0])
	var rest float64
	for _, row := range grid[1:] {
		rest += numericFraction(row)
	}
	rest /= float64(len(grid) - 1)
	return first < 0.5 && rest > first
}

func detectHeaderCol(grid [][]string, skipFirstRow bool) bool {
	start := 0
	if skipFirstRow {
		start = 1
	}
	if len(grid)-start < 1 || len(grid[0]) < 2 {
		return false
	}
	var firstCol, restCols, nRest float64
	for _, row := range grid[start:] {
		if isDataNumeric(row[0]) {
			firstCol++
		}
		for _, cell := range row[1:] {
			if isDataNumeric(cell) {
				restCols++
			}
			nRest++
		}
	}
	nRows := float64(len(grid) - start)
	if nRest == 0 {
		return false
	}
	return firstCol/nRows < 0.5 && restCols/nRest > firstCol/nRows
}

func numericFraction(row []string) float64 {
	if len(row) == 0 {
		return 0
	}
	n := 0
	for _, s := range row {
		if isDataNumeric(s) {
			n++
		}
	}
	return float64(n) / float64(len(row))
}

// isDataNumeric reports whether a cell counts as a data quantity for header
// detection. Year-bearing cells ("2013", "2Q 2012", "YTD 2005", "October
// 2011") are headers in the overwhelming majority of web tables (Fig. 1c,
// Fig. 3, Fig. 5 of the paper all have year header rows), so they are
// treated as non-numeric here — this affects only header detection, not
// quantity extraction from data cells.
func isDataNumeric(s string) bool {
	if _, ok := quantity.ParseCell(s); !ok {
		return false
	}
	return !containsYearToken(s)
}

// containsYearToken reports whether s contains a standalone 4-digit run in
// [1900, 2100].
func containsYearToken(s string) bool {
	for i := 0; i < len(s); {
		if s[i] < '0' || s[i] > '9' {
			i++
			continue
		}
		j := i
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j-i == 4 {
			v := int(s[i]-'0')*1000 + int(s[i+1]-'0')*100 + int(s[i+2]-'0')*10 + int(s[i+3]-'0')
			if v >= 1900 && v <= 2100 {
				// Reject decimals like "1999.5": must not be adjacent to '.'
				if (i == 0 || s[i-1] != '.') && (j >= len(s) || s[j] != '.') {
					return true
				}
			}
		}
		i = j
	}
	return false
}

// propagateUnits copies units found in column headers, row headers, footers
// or the caption into numeric cells that lack one. A unit mentioned in a
// column header ("($ Millions)", "Emission (g/km)") applies to the whole
// column; similarly for row headers. The caption applies table-wide. Scale
// words in headers ("in Mio", "($ Millions)") multiply the cell values.
func (t *Table) propagateUnits() {
	type hint struct {
		unit  string
		scale float64
	}
	parseHint := func(s string) hint {
		h := hint{scale: 1}
		// Compound units with slashes ("g/km") are split by the tokenizer;
		// match them on the raw string first.
		lowerAll := strings.ToLower(s)
		for _, compound := range []string{"g/km", "kwh"} {
			if strings.Contains(lowerAll, compound) {
				if u, ok := quantity.CanonicalUnit(compound); ok {
					h.unit = u
				}
				break
			}
		}
		for _, tok := range nlp.Tokenize(s) {
			lower := strings.ToLower(tok.Text)
			if u, ok := quantity.CanonicalUnit(lower); ok && h.unit == "" {
				h.unit = u
			}
			if f, ok := quantity.ScaleWord(lower); ok && h.scale == 1 {
				h.scale = f
			}
		}
		return h
	}

	global := parseHint(t.Caption + " " + strings.Join(t.Footers, " "))

	colHints := make([]hint, len(t.ColHeaders))
	for i, hdr := range t.ColHeaders {
		colHints[i] = parseHint(hdr)
	}
	rowHints := make([]hint, len(t.RowHeaders))
	for i, hdr := range t.RowHeaders {
		rowHints[i] = parseHint(hdr)
	}

	for r := range t.cells {
		for c := range t.cells[r] {
			q := t.cells[r][c].Quantity
			if q == nil {
				continue
			}
			// Unit priority: cell itself > column header > row header > caption.
			if q.Unit == "" {
				switch {
				case c < len(colHints) && colHints[c].unit != "":
					q.Unit = colHints[c].unit
				case r < len(rowHints) && rowHints[r].unit != "":
					q.Unit = rowHints[r].unit
				case global.unit != "":
					q.Unit = global.unit
				}
			}
			// Scale from headers applies only when the cell itself did not
			// already carry a scale word, and never to percentages.
			if q.Value == q.RawValue && q.Unit != "%" && q.Unit != "bps" {
				scale := 1.0
				switch {
				case c < len(colHints) && colHints[c].scale != 1:
					scale = colHints[c].scale
				case r < len(rowHints) && rowHints[r].scale != 1:
					scale = rowHints[r].scale
				case global.scale != 1:
					scale = global.scale
				}
				if scale != 1 {
					q.Value *= scale
					q.Scale = quantity.OrderOfMagnitude(q.Value)
				}
			}
		}
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.cells) }

// Cols returns the number of data columns.
func (t *Table) Cols() int {
	if len(t.cells) == 0 {
		return 0
	}
	return len(t.cells[0])
}

// Cell returns the cell at (row, col) of the data grid.
func (t *Table) Cell(row, col int) *Cell { return &t.cells[row][col] }

// NumericCells returns pointers to all numeric cells in row-major order.
func (t *Table) NumericCells() []*Cell {
	var out []*Cell
	for r := range t.cells {
		for c := range t.cells[r] {
			if t.cells[r][c].Numeric() {
				out = append(out, &t.cells[r][c])
			}
		}
	}
	return out
}

// RowContext returns the textual context of a row: its header plus all cell
// texts, used by the feature extractor for local context (§IV-B: "for the
// table mention it is the full row and the full column content").
func (t *Table) RowContext(row int) string {
	var sb strings.Builder
	if row < len(t.RowHeaders) {
		sb.WriteString(t.RowHeaders[row])
	}
	for _, cell := range t.cells[row] {
		sb.WriteByte(' ')
		sb.WriteString(cell.Text)
	}
	return sb.String()
}

// ColContext returns the textual context of a column: its header plus all
// cell texts.
func (t *Table) ColContext(col int) string {
	var sb strings.Builder
	if col < len(t.ColHeaders) {
		sb.WriteString(t.ColHeaders[col])
	}
	for r := range t.cells {
		sb.WriteByte(' ')
		sb.WriteString(t.cells[r][col].Text)
	}
	return sb.String()
}

// Content returns the entire textual content of the table including caption,
// headers, cells and footers — the global context of table mentions and the
// token source for document segmentation.
func (t *Table) Content() string {
	var sb strings.Builder
	sb.WriteString(t.Caption)
	for _, h := range t.ColHeaders {
		sb.WriteByte(' ')
		sb.WriteString(h)
	}
	for r := range t.cells {
		sb.WriteByte('\n')
		if r < len(t.RowHeaders) {
			sb.WriteString(t.RowHeaders[r])
		}
		for _, cell := range t.cells[r] {
			sb.WriteByte(' ')
			sb.WriteString(cell.Text)
		}
	}
	for _, f := range t.Footers {
		sb.WriteByte('\n')
		sb.WriteString(f)
	}
	return sb.String()
}

// Tokens returns the lowercase content words of the whole table.
func (t *Table) Tokens() []string { return nlp.Words(t.Content()) }
