package table

import (
	"math"
	"strings"
	"testing"

	"briq/internal/quantity"
)

// fig1aGrid is the health table of Fig. 1a.
func fig1aGrid() [][]string {
	return [][]string{
		{"side effects", "male", "female", "total"},
		{"Rash", "15", "20", "35"},
		{"Depression", "13", "25", "38"},
		{"Hypertension", "19", "15", "34"},
		{"Nausea", "5", "6", "11"},
		{"Eye Disorders", "2", "3", "5"},
	}
}

// fig1cGrid is the finance table of Fig. 1c.
func fig1cGrid() [][]string {
	return [][]string{
		{"Income gains (in Mio)", "2013", "2012", "2011"},
		{"Total Revenue", "3,263", "3,193", "2,911"},
		{"Gross income", "1,069", "1,053", "877"},
		{"Income taxes", "179", "177", "160"},
		{"Income", "890", "876", "849"},
	}
}

func mustNew(t *testing.T, id, caption string, grid [][]string) *Table {
	t.Helper()
	tbl, err := New(id, caption, grid)
	if err != nil {
		t.Fatalf("New(%s): %v", id, err)
	}
	return tbl
}

func TestNewDetectsHeaders(t *testing.T) {
	tbl := mustNew(t, "t0", "", fig1aGrid())
	if got, want := tbl.Rows(), 5; got != want {
		t.Errorf("Rows = %d, want %d", got, want)
	}
	if got, want := tbl.Cols(), 3; got != want {
		t.Errorf("Cols = %d, want %d", got, want)
	}
	if tbl.ColHeaders[0] != "male" || tbl.ColHeaders[2] != "total" {
		t.Errorf("ColHeaders = %v", tbl.ColHeaders)
	}
	if tbl.RowHeaders[1] != "Depression" {
		t.Errorf("RowHeaders = %v", tbl.RowHeaders)
	}
	if v := tbl.Cell(1, 1).Quantity.Value; v != 25 {
		t.Errorf("cell(1,1) = %v, want 25 (Depression female)", v)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("t", "", nil); err == nil {
		t.Error("want error for empty grid")
	}
	if _, err := New("t", "", [][]string{{}}); err == nil {
		t.Error("want error for empty row")
	}
	if _, err := New("t", "", [][]string{{"a", "b"}, {"1"}}); err == nil {
		t.Error("want error for ragged grid")
	}
}

func TestNoHeaderTable(t *testing.T) {
	tbl := mustNew(t, "t", "", [][]string{
		{"1", "2"},
		{"3", "4"},
	})
	if tbl.Rows() != 2 || tbl.Cols() != 2 {
		t.Errorf("dims = %dx%d, want 2x2", tbl.Rows(), tbl.Cols())
	}
	if tbl.Cell(0, 0).Quantity.Value != 1 {
		t.Error("cell (0,0) should be 1")
	}
}

func TestUnitPropagationFromRowHeader(t *testing.T) {
	// Fig. 1b rotated table: units in row headers.
	tbl := mustNew(t, "t", "", [][]string{
		{"spec", "Focus E", "A3", "VW Golf"},
		{"German MSRP", "34900", "36900", "33800"},
		{"Emission (g/km)", "0", "105", "122"},
		{"Final rating", "1.33", "2.67", "2.67"},
	})
	if u := tbl.Cell(1, 1).Quantity.Unit; u != "g/km" {
		t.Errorf("emission unit = %q, want g/km", u)
	}
}

func TestUnitAndScaleFromCaption(t *testing.T) {
	// Fig. 3: caption "($ Millions)" gives unit USD and scale 1e6.
	tbl := mustNew(t, "t", "Table 1: Transportation Systems ($ Millions)", [][]string{
		{"metric", "2Q 2012", "2Q 2013"},
		{"Sales", "900", "947"},
		{"Segment Profit", "114", "126"},
	})
	q := tbl.Cell(0, 0).Quantity
	if q.Unit != "USD" {
		t.Errorf("unit = %q, want USD", q.Unit)
	}
	if q.Value != 900e6 {
		t.Errorf("value = %v, want 9e8", q.Value)
	}
}

func TestScaleNotAppliedToPercent(t *testing.T) {
	tbl := mustNew(t, "t", "figures in millions", [][]string{
		{"metric", "value", "% Change"},
		{"Sales", "900", "5%"},
	})
	if v := tbl.Cell(0, 1).Quantity.Value; v != 5 {
		t.Errorf("percent cell scaled: %v, want 5", v)
	}
	if v := tbl.Cell(0, 0).Quantity.Value; v != 900e6 {
		t.Errorf("plain cell not scaled: %v, want 9e8", v)
	}
}

func TestFig1cScaleInMio(t *testing.T) {
	tbl := mustNew(t, "t", "", fig1cGrid())
	// Caption column header contains "(in Mio)" — in this grid it is the
	// corner header; corner text is part of neither column nor row headers,
	// so values stay unscaled. Revenue 2013:
	if v := tbl.Cell(0, 0).Quantity.Value; v != 3263 {
		t.Errorf("revenue 2013 = %v, want 3263", v)
	}
}

func TestRowColContext(t *testing.T) {
	tbl := mustNew(t, "t", "", fig1aGrid())
	rc := tbl.RowContext(1)
	if !strings.Contains(rc, "Depression") || !strings.Contains(rc, "38") {
		t.Errorf("RowContext(1) = %q", rc)
	}
	cc := tbl.ColContext(2)
	if !strings.Contains(cc, "total") || !strings.Contains(cc, "35") {
		t.Errorf("ColContext(2) = %q", cc)
	}
}

func TestContentAndTokens(t *testing.T) {
	tbl := mustNew(t, "t", "Drug trial side effects", fig1aGrid())
	content := tbl.Content()
	for _, want := range []string{"Drug trial", "Depression", "male", "38"} {
		if !strings.Contains(content, want) {
			t.Errorf("Content() missing %q", want)
		}
	}
	toks := tbl.Tokens()
	if len(toks) == 0 {
		t.Fatal("no tokens")
	}
}

func TestNumericCells(t *testing.T) {
	tbl := mustNew(t, "t", "", fig1aGrid())
	if got, want := len(tbl.NumericCells()), 15; got != want {
		t.Errorf("NumericCells = %d, want %d", got, want)
	}
}

func TestMentionsSingleCells(t *testing.T) {
	tbl := mustNew(t, "t", "", fig1aGrid())
	ms := tbl.Mentions(VirtualOptions{})
	if len(ms) != 15 {
		t.Fatalf("want 15 single-cell mentions with no virtual aggs, got %d", len(ms))
	}
	for i, m := range ms {
		if m.IsVirtual() {
			t.Errorf("mention %d should not be virtual", i)
		}
		if m.Index != i {
			t.Errorf("mention %d has Index %d", i, m.Index)
		}
	}
}

func TestMentionsColumnSum(t *testing.T) {
	tbl := mustNew(t, "t", "", fig1aGrid())
	ms := tbl.Mentions(DefaultVirtualOptions())

	// Fig. 1a: "total of 123 patients" = sum of the total column
	// 35+38+34+11+5 = 123.
	var found *Mention
	for _, m := range ms {
		if m.Agg == quantity.Sum && m.Orient == OrientCol && m.Value == 123 {
			found = m
			break
		}
	}
	if found == nil {
		t.Fatal("column sum 123 not generated")
	}
	if len(found.Cells) != 5 {
		t.Errorf("sum inputs = %d cells, want 5", len(found.Cells))
	}
	// Column sums for male (54) and female (69) must exist too.
	wantSums := map[float64]bool{54: false, 69: false}
	for _, m := range ms {
		if m.Agg == quantity.Sum && m.Orient == OrientCol {
			if _, ok := wantSums[m.Value]; ok {
				wantSums[m.Value] = true
			}
		}
	}
	for v, ok := range wantSums {
		if !ok {
			t.Errorf("column sum %v not generated", v)
		}
	}
}

func TestMentionsRatio(t *testing.T) {
	tbl := mustNew(t, "t", "", fig1cGrid())
	ms := tbl.Mentions(DefaultVirtualOptions())
	// Fig. 1c: ratio('890','876') ≈ 1.57% expressed as percent.
	want := (890.0 - 876.0) / 890.0 * 100
	found := false
	for _, m := range ms {
		if m.Agg == quantity.Ratio && math.Abs(m.Value-want) < 1e-9 {
			found = true
			if m.Unit != "%" {
				t.Errorf("ratio unit = %q, want %%", m.Unit)
			}
			if m.Orient != OrientRow {
				t.Errorf("ratio orient = %v, want row", m.Orient)
			}
		}
	}
	if !found {
		t.Errorf("ratio(890,876) not generated")
	}
}

func TestMentionsDiffPositiveOnly(t *testing.T) {
	tbl := mustNew(t, "t", "", fig1aGrid())
	for _, m := range tbl.Mentions(DefaultVirtualOptions()) {
		if m.Agg == quantity.Diff && m.Value <= 0 {
			t.Errorf("non-positive diff generated: %v", m.Value)
		}
	}
}

func TestMentionsBudget(t *testing.T) {
	tbl := mustNew(t, "t", "", fig1aGrid())
	opts := DefaultVirtualOptions()
	opts.MaxPerTable = 10
	virtual := 0
	for _, m := range tbl.Mentions(opts) {
		if m.IsVirtual() {
			virtual++
		}
	}
	if virtual > 10 {
		t.Errorf("virtual count %d exceeds budget 10", virtual)
	}
}

func TestMentionsUnitGuard(t *testing.T) {
	// Mixed units in one row: no row aggregates across USD and EUR.
	tbl := mustNew(t, "t", "", [][]string{
		{"item", "us", "eu"},
		{"price", "$100", "€90"},
		{"tax", "$10", "€9"},
	})
	for _, m := range tbl.Mentions(DefaultVirtualOptions()) {
		if !m.IsVirtual() || m.Orient != OrientRow {
			continue
		}
		if m.Agg == quantity.Sum {
			t.Errorf("row sum across incompatible units: %v", m.Key())
		}
	}
}

func TestMentionKeyStable(t *testing.T) {
	tbl := mustNew(t, "t7", "", fig1aGrid())
	ms := tbl.Mentions(DefaultVirtualOptions())
	seen := map[string]bool{}
	for _, m := range ms {
		k := m.Key()
		if seen[k] {
			t.Errorf("duplicate key %q", k)
		}
		seen[k] = true
		if !strings.HasPrefix(k, "t7:") {
			t.Errorf("key %q missing table prefix", k)
		}
	}
}

func TestMentionSurfaceAndPrecision(t *testing.T) {
	tbl := mustNew(t, "t", "", fig1cGrid())
	ms := tbl.Mentions(DefaultVirtualOptions())
	for _, m := range ms {
		if !m.IsVirtual() && m.Cells[0].Row == 0 && m.Cells[0].Col == 0 {
			if m.Surface() != "3,263" {
				t.Errorf("single-cell surface = %q, want raw text", m.Surface())
			}
		}
		if m.Agg == quantity.Ratio && m.Precision() != 2 {
			t.Errorf("ratio precision = %d, want 2", m.Precision())
		}
	}
}

func TestMentionContext(t *testing.T) {
	tbl := mustNew(t, "t", "", fig1aGrid())
	var sum *Mention
	for _, m := range tbl.Mentions(DefaultVirtualOptions()) {
		if m.Agg == quantity.Sum && m.Value == 123 {
			sum = m
			break
		}
	}
	if sum == nil {
		t.Fatal("no sum mention")
	}
	ctx := sum.Context()
	if !strings.Contains(ctx, "total") {
		t.Errorf("sum context misses column header: %q", ctx)
	}
}

func TestComputeStats(t *testing.T) {
	tbl := mustNew(t, "t", "", fig1aGrid())
	s := tbl.ComputeStats(DefaultVirtualOptions())
	if s.Rows != 5 || s.Cols != 3 {
		t.Errorf("stats dims = %dx%d", s.Rows, s.Cols)
	}
	if s.SingleCells != 15 {
		t.Errorf("single cells = %d, want 15", s.SingleCells)
	}
	if s.VirtualCells == 0 {
		t.Error("no virtual cells")
	}
}

func TestExtendedVirtualOptions(t *testing.T) {
	tbl := mustNew(t, "t", "", fig1aGrid())
	ms := tbl.Mentions(ExtendedVirtualOptions())
	var hasMin, hasMax, hasAvg bool
	for _, m := range ms {
		switch m.Agg {
		case quantity.Min:
			hasMin = true
		case quantity.Max:
			hasMax = true
		case quantity.Avg:
			hasAvg = true
		}
	}
	if !hasMin || !hasMax || !hasAvg {
		t.Errorf("extended aggs missing: min=%v max=%v avg=%v", hasMin, hasMax, hasAvg)
	}
}

func TestOrientationString(t *testing.T) {
	if OrientRow.String() != "row" || OrientCol.String() != "col" || OrientNone.String() != "" {
		t.Error("unexpected orientation names")
	}
}

func TestPairSums(t *testing.T) {
	// §II-A: "the total income of the last two years" — sum of the 2013 and
	// 2012 income cells, not the whole row.
	tbl := mustNew(t, "t", "", fig1cGrid())
	opts := DefaultVirtualOptions()
	opts.PairSums = true
	ms := tbl.Mentions(opts)
	want := 890.0 + 876.0
	found := false
	for _, m := range ms {
		if m.Agg == quantity.Sum && len(m.Cells) == 2 && m.Value == want {
			found = true
		}
	}
	if !found {
		t.Errorf("pair sum %v not generated with PairSums on", want)
	}

	// Keys stay unique with pair sums enabled.
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m.Key()] {
			t.Fatalf("duplicate key %s", m.Key())
		}
		seen[m.Key()] = true
	}

	// And off by default.
	for _, m := range tbl.Mentions(DefaultVirtualOptions()) {
		if m.Agg == quantity.Sum && len(m.Cells) == 2 {
			t.Fatalf("pair sum generated without the option: %s", m.Key())
		}
	}
}

func TestPairSumsAlignEndToEnd(t *testing.T) {
	tbl := mustNew(t, "t", "income gains by year", fig1cGrid())
	opts := DefaultVirtualOptions()
	opts.PairSums = true
	var target *Mention
	for _, m := range tbl.Mentions(opts) {
		if m.Agg == quantity.Sum && len(m.Cells) == 2 && m.Value == 890+876 {
			target = m
		}
	}
	if target == nil {
		t.Fatal("target pair sum missing")
	}
	if target.Orient != OrientRow {
		t.Errorf("pair sum orientation = %v, want row", target.Orient)
	}
}
