// Package runtime is the corpus-scale concurrent alignment engine: it fans
// documents out over a pool of per-worker pipeline clones with bounded
// channels for backpressure, cooperative context cancellation at pipeline
// phase boundaries, and per-worker observability merged into a pool-level
// snapshot.
//
// # Why a pool of clones
//
// core.Pipeline is safe for concurrent Align calls, but sharing one instance
// across goroutines forfeits two things: reusable scratch (the per-document
// candidate slice must be freshly allocated when anyone might race on it)
// and contention-free latency recording (all workers would hammer one set of
// histograms). A clone (core.Pipeline.Clone) shares every model read-only
// and owns exactly those two pieces of mutable state; the pool gives each
// worker goroutine one clone for its lifetime, so buffers stay warm across
// the documents a worker processes and recording never crosses cores.
//
// # Dataflow
//
//	docs ──feeder──▶ [in, cap=QueueDepth] ──▶ worker₀ (clone₀, rec₀) ─┐
//	                                      ──▶ worker₁ (clone₁, rec₁) ─┼─▶ [out, cap=QueueDepth] ──▶ Stream / AlignCorpus
//	                                      ──▶ workerₙ (cloneₙ, recₙ) ─┘
//
// Both channels are bounded: a slow consumer parks the workers, full input
// parks the feeder. Cancellation is observed at every arrow above plus
// between the classify/filter/resolve phases inside a document
// (core.AlignContext), so a cancelled corpus run stops within one pipeline
// phase per worker.
//
// # Consuming results
//
// Stream yields results in completion order, each tagged with its submission
// index — the shape for pipelines that post-process per document.
// AlignCorpus is the ordered-batch collector: it restores submission order
// and applies core.SortAlignments, making the parallel output byte-for-byte
// identical to a serial AlignAll run (asserted in the determinism test and
// gated in cmd/briq-bench before throughput numbers are reported).
package runtime
