package runtime

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"briq/internal/core"
	"briq/internal/corpus"
	"briq/internal/document"
	"briq/internal/obs"
)

func benchDocs(tb testing.TB, seed int64, pages int) []*document.Document {
	tb.Helper()
	c := corpus.Generate(corpus.TableLConfig(seed, pages))
	if len(c.Docs) == 0 {
		tb.Fatalf("seed %d produced no documents", seed)
	}
	return c.Docs
}

func mustJSON(tb testing.TB, v any) []byte {
	tb.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// TestAlignCorpusDeterministic is the ordered-batch determinism gate: pooled
// output must equal the serial AlignAll output byte for byte, across worker
// counts and repeated runs over the same warm clones.
func TestAlignCorpusDeterministic(t *testing.T) {
	docs := benchDocs(t, 42, 4)
	proto := core.NewPipeline()
	serial := mustJSON(t, proto.AlignAll(docs, 1))

	for _, workers := range []int{1, 2, 4, 7} {
		pool := NewPool(proto, Options{Workers: workers})
		for round := 0; round < 2; round++ {
			got, err := pool.AlignCorpus(context.Background(), docs)
			if err != nil {
				t.Fatalf("workers=%d round=%d: %v", workers, round, err)
			}
			if !bytes.Equal(mustJSON(t, got), serial) {
				t.Fatalf("workers=%d round=%d: pooled output != serial output", workers, round)
			}
		}
	}
}

// TestPoolStress hammers one pool from many consumer goroutines with small
// queue depths under the race detector: clones must stay single-owner, runs
// must serialize, and every run must still be complete and correct.
func TestPoolStress(t *testing.T) {
	docs := benchDocs(t, 7, 3)
	proto := core.NewPipeline()
	want := mustJSON(t, proto.AlignAll(docs, 1))

	pool := NewPool(proto, Options{Workers: 4, QueueDepth: 1})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := pool.AlignCorpus(context.Background(), docs)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(mustJSON(t, out), want) {
				errs <- errors.New("concurrent run diverged from serial output")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestStreamEmitsEveryDocumentOnce checks the streaming iterator: every
// submission index appears exactly once and carries the right document ID.
func TestStreamEmitsEveryDocumentOnce(t *testing.T) {
	docs := benchDocs(t, 13, 3)
	pool := NewPool(core.NewPipeline(), Options{Workers: 3, QueueDepth: 2})

	seen := make(map[int]string)
	s := pool.Stream(context.Background(), docs)
	for r, ok := s.Next(); ok; r, ok = s.Next() {
		if r.Err != nil {
			t.Fatalf("doc %s: %v", r.DocID, r.Err)
		}
		if prev, dup := seen[r.Index]; dup {
			t.Fatalf("index %d emitted twice (%s, %s)", r.Index, prev, r.DocID)
		}
		seen[r.Index] = r.DocID
	}
	if err := s.Err(); err != nil {
		t.Fatalf("stream err = %v", err)
	}
	if len(seen) != len(docs) {
		t.Fatalf("emitted %d documents, want %d", len(seen), len(docs))
	}
	for i, doc := range docs {
		if seen[i] != doc.ID {
			t.Errorf("index %d = %q, want %q", i, seen[i], doc.ID)
		}
	}
}

// TestCancellationMidCorpus cancels a large run after the first result. The
// stream must terminate promptly, report the cancellation, and drop most of
// the corpus on the floor instead of finishing it.
func TestCancellationMidCorpus(t *testing.T) {
	// Many copies of a real corpus: big enough that finishing it all before
	// the cancel lands is impossible within the bounded channels.
	base := benchDocs(t, 42, 4)
	var docs []*document.Document
	for len(docs) < 300 {
		docs = append(docs, base...)
	}

	pool := NewPool(core.NewPipeline(), Options{Workers: 2, QueueDepth: 1})
	ctx, cancel := context.WithCancel(context.Background())
	s := pool.Stream(ctx, docs)

	emitted := 0
	for r, ok := s.Next(); ok; r, ok = s.Next() {
		if r.Err != nil {
			t.Fatalf("doc %s: %v", r.DocID, r.Err)
		}
		emitted++
		if emitted == 1 {
			cancel()
		}
	}
	if err := s.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("stream err = %v, want context.Canceled", err)
	}
	// Workers can finish what was in flight plus what the bounded channels
	// held, nothing more.
	if maxEmitted := 1 + pool.Workers() + 2*2 + 2; emitted > maxEmitted {
		t.Errorf("emitted %d documents after cancel, want ≤ %d", emitted, maxEmitted)
	}
	cancel()
}

// TestCancelledBeforeRun: a dead context aligns nothing and AlignCorpus
// reports it.
func TestCancelledBeforeRun(t *testing.T) {
	docs := benchDocs(t, 42, 2)
	pool := NewPool(core.NewPipeline(), Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := pool.AlignCorpus(ctx, docs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Errorf("cancelled corpus returned alignments: %d", len(out))
	}
}

// TestAlignCorpusDeadline: context deadlines behave like cancellation.
func TestAlignCorpusDeadline(t *testing.T) {
	docs := benchDocs(t, 42, 2)
	pool := NewPool(core.NewPipeline(), Options{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, err := pool.AlignCorpus(ctx, docs); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestPoolSnapshotCountsDocuments: the merged pool-level snapshot must
// account for every aligned document across all per-worker recorders.
func TestPoolSnapshotCountsDocuments(t *testing.T) {
	docs := benchDocs(t, 21, 3)
	pool := NewPool(core.NewPipeline(), Options{Workers: 3})
	if _, err := pool.AlignCorpus(context.Background(), docs); err != nil {
		t.Fatal(err)
	}

	snap := pool.Snapshot()
	if got := snap[core.StageAlign].Count; got != int64(len(docs)) {
		t.Errorf("pool %s count = %d, want %d", core.StageAlign, got, len(docs))
	}
	for _, stage := range []string{core.StageClassify, core.StageFilter, core.StageResolve} {
		if snap[stage].Count != int64(len(docs)) {
			t.Errorf("pool %s count = %d, want %d", stage, snap[stage].Count, len(docs))
		}
	}

	// MergeInto carries the same totals to an external recorder.
	dst := obs.NewRecorder()
	pool.MergeInto(dst)
	if got := dst.Snapshot()[core.StageAlign].Count; got != int64(len(docs)) {
		t.Errorf("merged %s count = %d, want %d", core.StageAlign, got, len(docs))
	}
}

// TestWorkerDefaults: worker resolution falls back Pipeline.Workers then
// GOMAXPROCS, and queue depth defaults to 2× workers.
func TestWorkerDefaults(t *testing.T) {
	proto := core.NewPipeline()
	proto.Workers = 3
	if got := NewPool(proto, Options{}).Workers(); got != 3 {
		t.Errorf("workers = %d, want pipeline default 3", got)
	}
	if got := NewPool(proto, Options{Workers: 5}).Workers(); got != 5 {
		t.Errorf("workers = %d, want explicit 5", got)
	}
	proto.Workers = 0
	if got := NewPool(proto, Options{}).Workers(); got < 1 {
		t.Errorf("workers = %d, want ≥ 1 from GOMAXPROCS", got)
	}
}
