package runtime

import (
	"context"
	"fmt"
	gort "runtime"
	"sync"

	"briq/internal/core"
	"briq/internal/document"
	"briq/internal/obs"
)

// Options configure a Pool.
type Options struct {
	// Workers is the number of worker goroutines (and pipeline clones).
	// ≤ 0 falls back to the prototype pipeline's Workers field, then to
	// GOMAXPROCS.
	Workers int

	// QueueDepth bounds the input and output channels. A full input channel
	// blocks the feeder (backpressure toward the document source); a full
	// output channel parks workers until the consumer catches up, so a slow
	// consumer cannot make the pool buffer an entire corpus of results.
	// ≤ 0 means 2× workers.
	QueueDepth int
}

// Pool is a corpus-scale alignment engine: a fixed set of worker goroutines,
// each owning a private clone of one prototype pipeline, fed from a bounded
// channel. Per-worker clones keep the scratch buffers of the hot path warm
// without any cross-worker synchronization, and per-worker obs recorders
// collect stage latencies contention-free; Snapshot merges them into one
// pool-level view.
//
// A Pool is cheap to construct (clones share all models read-only) and
// reusable, but runs one corpus at a time: Stream and AlignCorpus serialize
// on an internal lock.
type Pool struct {
	workers int
	depth   int
	clones  []*core.Pipeline
	recs    []*obs.Recorder

	runMu sync.Mutex // held for the duration of one Stream run
}

// NewPool builds a pool of worker clones of proto. The prototype itself is
// never used to align and stays safe for concurrent use elsewhere; its
// Recorder is not shared with the workers (use Snapshot or MergeInto to
// retrieve pool-side observations).
func NewPool(proto *core.Pipeline, opts Options) *Pool {
	workers := opts.Workers
	if workers <= 0 {
		workers = proto.Workers
	}
	if workers <= 0 {
		workers = gort.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 2 * workers
	}
	p := &Pool{
		workers: workers,
		depth:   depth,
		clones:  make([]*core.Pipeline, workers),
		recs:    make([]*obs.Recorder, workers),
	}
	for i := range p.clones {
		rec := obs.NewRecorder(core.StageNames()...)
		clone := proto.Clone()
		clone.Recorder = rec
		p.clones[i] = clone
		p.recs[i] = rec
	}
	return p
}

// Workers returns the pool's fan-out width.
func (p *Pool) Workers() int { return p.workers }

// Snapshot merges the per-worker recorders into one pool-level stage
// snapshot. It can be called at any time, including mid-run; it reflects
// every document the pool has finished so far.
func (p *Pool) Snapshot() map[string]obs.HistogramSnapshot {
	merged := obs.NewRecorder()
	for _, rec := range p.recs {
		merged.Merge(rec)
	}
	return merged.Snapshot()
}

// MergeInto folds the pool's per-worker recorders into dst — the bridge to a
// process-wide recorder such as the server's /metrics registry. Because the
// worker recorders are cumulative, call this exactly once per pool (the
// server builds one pool per batch request and merges when it is done).
func (p *Pool) MergeInto(dst *obs.Recorder) {
	for _, rec := range p.recs {
		dst.Merge(rec)
	}
}

// Result is one document's outcome, emitted by Stream in completion order.
// Index is the document's position in the submitted corpus, so consumers can
// restore submission order without waiting for stragglers.
type Result struct {
	Index      int
	DocID      string
	Alignments []core.Alignment
	Err        error
}

// Stream is an iterator over a running corpus alignment. Results arrive in
// completion order as workers finish; the channel behind it is bounded, so an
// unread Stream exerts backpressure on the workers rather than accumulating
// results. The consumer must either drain the stream or cancel its context —
// abandoning both leaks the run's goroutines until process exit.
type Stream struct {
	out  <-chan Result
	err  error // set by the closer before out is closed
	done bool
}

// Next returns the next completed document. ok is false when the run is over
// — all documents done, or the context cancelled; Err distinguishes.
func (s *Stream) Next() (r Result, ok bool) {
	r, ok = <-s.out
	if !ok {
		s.done = true
	}
	return r, ok
}

// Err reports why the stream ended: nil after a full run, the context's error
// after cancellation. Only valid once Next has returned ok=false.
func (s *Stream) Err() error {
	if !s.done {
		return nil
	}
	return s.err
}

// Stream fans docs out over the worker pool and returns an iterator over the
// results. The context is observed at every blocking point — feeding,
// aligning (between pipeline phases, see core.AlignContext) and emitting —
// so cancellation stops the corpus within one pipeline phase per worker;
// documents in flight at cancellation are dropped, not emitted.
func (p *Pool) Stream(ctx context.Context, docs []*document.Document) *Stream {
	type task struct {
		idx int
		doc *document.Document
	}
	in := make(chan task, p.depth)
	out := make(chan Result, p.depth)
	s := &Stream{out: out}

	p.runMu.Lock()

	// Feeder: bounded-channel submission with cancellation.
	go func() {
		defer close(in)
		for i, doc := range docs {
			select {
			case in <- task{i, doc}:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: one goroutine per clone; the clone's scratch and recorder are
	// single-owner for the whole run.
	var wg sync.WaitGroup
	for _, clone := range p.clones {
		wg.Add(1)
		go func(clone *core.Pipeline) {
			defer wg.Done()
			for {
				var t task
				var ok bool
				select {
				case <-ctx.Done():
					return
				case t, ok = <-in:
					if !ok {
						return
					}
				}
				als, err := clone.AlignContext(ctx, t.doc)
				if err != nil {
					if ctx.Err() != nil {
						// Cancellation: the context is dead, so the result
						// has no reader.
						return
					}
					// A resolver-stage failure on a live context (possible
					// since resolution became pluggable) is a per-document
					// result the consumer must see, not a silent drop.
					select {
					case out <- Result{Index: t.idx, DocID: t.doc.ID, Err: err}:
						continue
					case <-ctx.Done():
						return
					}
				}
				select {
				case out <- Result{Index: t.idx, DocID: t.doc.ID, Alignments: als}:
				case <-ctx.Done():
					return
				}
			}
		}(clone)
	}

	// Closer: release the pool and end the stream once every worker exits.
	go func() {
		wg.Wait()
		s.err = ctx.Err() // happens-before consumers via close(out)
		p.runMu.Unlock()
		close(out)
	}()
	return s
}

// AlignPerDoc aligns the corpus and returns each document's alignments at
// that document's submitted index — the grouping the serving layer's
// per-document result cache stores. Per-document slices keep Align's
// text-mention order. On cancellation it returns ctx.Err with partial work
// discarded.
func (p *Pool) AlignPerDoc(ctx context.Context, docs []*document.Document) ([][]core.Alignment, error) {
	perDoc := make([][]core.Alignment, len(docs))
	s := p.Stream(ctx, docs)
	for r, ok := s.Next(); ok; r, ok = s.Next() {
		if r.Err != nil {
			return nil, fmt.Errorf("align %s: %w", r.DocID, r.Err)
		}
		perDoc[r.Index] = r.Alignments
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return perDoc, nil
}

// AlignCorpus aligns the whole corpus and returns all alignments in the
// deterministic order core.Pipeline.AlignAll promises (document ID, then
// text mention): the parallel result is byte-for-byte identical to a serial
// run regardless of worker count. On cancellation it returns ctx.Err with
// partial work discarded.
func (p *Pool) AlignCorpus(ctx context.Context, docs []*document.Document) ([]core.Alignment, error) {
	perDoc, err := p.AlignPerDoc(ctx, docs)
	if err != nil {
		return nil, err
	}
	var out []core.Alignment
	for _, als := range perDoc {
		out = append(out, als...)
	}
	core.SortAlignments(out)
	return out, nil
}
