package filter

import (
	"testing"

	"briq/internal/document"
	"briq/internal/quantity"
	"briq/internal/table"
)

func buildDoc(t *testing.T, text string) *document.Document {
	t.Helper()
	tbl, err := table.New("t0", "drug trial side effects", [][]string{
		{"side effects", "male", "female", "total"},
		{"Rash", "15", "20", "35"},
		{"Depression", "13", "25", "38"},
		{"Hypertension", "19", "15", "34"},
		{"Nausea", "5", "6", "11"},
		{"Eye Disorders", "2", "3", "5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := document.NewSegmenter().Segment("p", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatal("segmentation failed")
	}
	return docs[0]
}

// allCandidates builds one candidate per (text, table) pair with the given
// uniform score.
func allCandidates(doc *document.Document, score float64) []Candidate {
	var out []Candidate
	for xi := range doc.TextMentions {
		for ti := range doc.TableMentions {
			out = append(out, Candidate{Text: xi, Table: ti, Score: score})
		}
	}
	return out
}

type fixedTagger map[int]quantity.Agg

func (f fixedTagger) Tag(_ *document.Document, xi int) quantity.Agg {
	if agg, ok := f[xi]; ok {
		return agg
	}
	return quantity.SingleCell
}

func TestTaggerPruningKeepsMatchingAggregates(t *testing.T) {
	doc := buildDoc(t, "A total of 123 patients reported side effects.")
	cands := allCandidates(doc, 0.9)
	res := Apply(DefaultConfig(), doc, fixedTagger{0: quantity.Sum}, cands)

	keptVirtual := map[quantity.Agg]int{}
	keptSingle := 0
	for _, c := range res.Kept {
		tm := doc.TableMentions[c.Table]
		if tm.IsVirtual() {
			keptVirtual[tm.Agg]++
		} else {
			keptSingle++
		}
	}
	for agg := range keptVirtual {
		if agg != quantity.Sum {
			t.Errorf("virtual pair with agg %v survived a sum tag", agg)
		}
	}
	if res.Tags[0] != quantity.Sum {
		t.Errorf("recorded tag = %v", res.Tags[0])
	}
}

func TestSingleCellPairsNeverTaggerPruned(t *testing.T) {
	// Even with an aggregate tag, single-cell pairs survive step 1 — that is
	// the conservative pruning the paper stresses. The exact-match cell 123
	// does not exist; but 38 does.
	doc := buildDoc(t, "A total of 38 patients had the most common side effect.")
	cands := allCandidates(doc, 0.9)
	res := Apply(DefaultConfig(), doc, fixedTagger{0: quantity.Sum}, cands)
	hasSingle := false
	for _, c := range res.Kept {
		if !doc.TableMentions[c.Table].IsVirtual() {
			hasSingle = true
		}
	}
	if !hasSingle {
		t.Error("all single-cell pairs pruned despite aggregate tag")
	}
}

func TestValueDifferencePruning(t *testing.T) {
	doc := buildDoc(t, "Rash hit 35 patients in the trial.")
	cfg := DefaultConfig()
	// Low-score candidates with huge value difference must be dropped.
	var cands []Candidate
	for ti, tm := range doc.TableMentions {
		score := 0.1 // below MinScoreLooseValue
		_ = tm
		cands = append(cands, Candidate{Text: 0, Table: ti, Score: score})
	}
	res := Apply(cfg, doc, fixedTagger{}, cands)
	for _, c := range res.Kept {
		tm := doc.TableMentions[c.Table]
		rel := quantity.RelativeDifference(35, tm.Value)
		if rel > cfg.ValueDiffMax {
			t.Errorf("far value kept at low score: %v (rel %v)", tm.Value, rel)
		}
	}
	if res.Dropped == 0 {
		t.Error("nothing was dropped")
	}
}

func TestHighScoreSurvivesValuePruning(t *testing.T) {
	doc := buildDoc(t, "Rash hit 35 patients in the trial.")
	cfg := DefaultConfig()
	cfg.KSmall, cfg.KExact = 50, 50 // disable top-k effects
	cfg.EntropyThreshold = 0        // always use the large k
	cfg.KLarge = 50
	var cands []Candidate
	for ti := range doc.TableMentions {
		cands = append(cands, Candidate{Text: 0, Table: ti, Score: 0.95})
	}
	res := Apply(cfg, doc, fixedTagger{}, cands)
	// With scores above p, even far values survive step 2.
	farKept := false
	for _, c := range res.Kept {
		if quantity.RelativeDifference(35, doc.TableMentions[c.Table].Value) > cfg.ValueDiffMax {
			farKept = true
		}
	}
	if !farKept {
		t.Error("confident far-value pair was pruned")
	}
}

func TestTopKRespectsEntropy(t *testing.T) {
	doc := buildDoc(t, "Depression hit 38 patients in the trial.")
	cfg := DefaultConfig()
	cfg.KSmall = 1

	// Skewed scores: one dominant candidate → only KSmall kept.
	var skewed []Candidate
	for ti := range doc.TableMentions {
		score := 0.01
		if doc.TableMentions[ti].Value == 38 && !doc.TableMentions[ti].IsVirtual() {
			score = 0.99
		}
		skewed = append(skewed, Candidate{Text: 0, Table: ti, Score: score})
	}
	res := Apply(cfg, doc, fixedTagger{}, skewed)
	perMention := map[int]int{}
	for _, c := range res.Kept {
		perMention[c.Text]++
	}
	if perMention[0] > cfg.KExact {
		t.Errorf("kept %d candidates for skewed mention, want ≤ %d", perMention[0], cfg.KExact)
	}
}

func TestTopKUniformKeepsMore(t *testing.T) {
	doc := buildDoc(t, "Depression hit 38 patients in the trial.")
	cfg := DefaultConfig()
	uniform := allCandidates(doc, 0.8) // same score everywhere → max entropy
	res := Apply(cfg, doc, fixedTagger{}, uniform)
	perMention := map[int]int{}
	for _, c := range res.Kept {
		perMention[c.Text]++
	}
	if perMention[0] < cfg.KExact {
		t.Errorf("uniform distribution kept %d, want ≥ %d", perMention[0], cfg.KExact)
	}
	if perMention[0] > cfg.KLarge {
		t.Errorf("kept %d > KLarge %d", perMention[0], cfg.KLarge)
	}
}

func TestMentionTypeFromContext(t *testing.T) {
	doc := buildDoc(t, "About 35 patients reported a rash during the trial.")
	res := Apply(DefaultConfig(), doc, fixedTagger{}, allCandidates(doc, 0.9))
	if res.Types[0] != Approximate {
		t.Errorf("mention type = %v, want approximate (cue 'About')", res.Types[0])
	}
}

func TestMentionTypeBySurfaceVote(t *testing.T) {
	doc := buildDoc(t, "Depression was reported by 38 patients.")
	// Realistic classifier scores: the exact-match cell dominates.
	var cands []Candidate
	for ti, tm := range doc.TableMentions {
		score := 0.55
		if !tm.IsVirtual() && tm.Value == 38 {
			score = 0.95
		}
		cands = append(cands, Candidate{Text: 0, Table: ti, Score: score})
	}
	res := Apply(DefaultConfig(), doc, fixedTagger{}, cands)
	if res.Types[0] != Exact {
		t.Errorf("mention type = %v, want exact", res.Types[0])
	}
}

func TestUnitMismatchPruned(t *testing.T) {
	tbl, err := table.New("t0", "prices in euro", [][]string{
		{"item", "price"},
		{"alpha", "€35"},
		{"beta", "€70"},
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := document.NewSegmenter().Segment("p",
		[]string{"The item sold for $35 in the US."}, []*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatal("no doc")
	}
	doc := docs[0]
	res := Apply(DefaultConfig(), doc, fixedTagger{}, allCandidates(doc, 0.9))
	for _, c := range res.Kept {
		tm := doc.TableMentions[c.Table]
		if tm.Unit == "EUR" {
			t.Errorf("USD mention paired with EUR cell survived: %v", tm.Key())
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	doc := buildDoc(t, "A total of 123 patients and 69 female patients were counted.")
	cands := allCandidates(doc, 0.7)
	r1 := Apply(DefaultConfig(), doc, fixedTagger{}, cands)
	r2 := Apply(DefaultConfig(), doc, fixedTagger{}, cands)
	if len(r1.Kept) != len(r2.Kept) {
		t.Fatal("nondeterministic kept count")
	}
	for i := range r1.Kept {
		if r1.Kept[i] != r2.Kept[i] {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
}

func TestSelectivity(t *testing.T) {
	if Selectivity(5, 100) != 0.05 {
		t.Error("selectivity wrong")
	}
	if Selectivity(0, 0) != 0 {
		t.Error("empty selectivity should be 0")
	}
}

func TestDigits(t *testing.T) {
	if digits("$3,263.5 million") != "32635" {
		t.Errorf("digits = %q", digits("$3,263.5 million"))
	}
	if digits("no numbers") != "" {
		t.Error("digits should be empty")
	}
}

func TestMentionTypeString(t *testing.T) {
	if Exact.String() != "exact" || Approximate.String() != "approximate" || Truncated.String() != "truncated" {
		t.Error("unexpected names")
	}
}
