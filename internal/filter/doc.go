// Package filter implements BriQ's adaptive filtering stage (§V): reducing
// the mention-pair candidate space from thousands to the hundreds the global
// resolution step can afford, without discarding good candidates. It applies,
// in order:
//
//  1. tagger-based pruning — aggregate (virtual-cell) pairs survive only when
//     their aggregation matches the text-mention tagger's prediction, while
//     single-cell pairs are never pruned at this step;
//  2. value-difference and unit-mismatch pruning — pairs whose numeric values
//     differ by more than a threshold are dropped unless the classifier is
//     confident, and pairs with contradicting explicit units are dropped;
//  3. per-mention top-k selection adapted to mention type (exact vs
//     approximate/truncated surface forms) and to the entropy of the
//     classifier's score distribution.
//
// # Hot-path note
//
// Mention-type voting compares digit strings of table-mention surfaces, and
// the same table mention is a candidate of many text mentions in one
// document. Apply therefore memoizes digits(Surface()) per table-mention
// index for the duration of the call — virtual mentions rebuild their
// surface string on every Surface() call, so the memo removes the dominant
// repeated cost of the stage. The memo is call-local, so Apply stays safe to
// run concurrently on different documents.
package filter
