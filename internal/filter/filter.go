package filter

import (
	"sort"
	"strings"

	"briq/internal/document"
	"briq/internal/mlmetrics"
	"briq/internal/quantity"
	"briq/internal/tagger"
)

// Candidate is one scored mention pair: text mention xi ↔ table mention ti.
type Candidate struct {
	Text  int     // index into doc.TextMentions
	Table int     // index into doc.TableMentions
	Score float64 // classifier confidence σ (prior for global resolution)
}

// MentionType classifies how a text mention's surface relates to table
// surfaces (§V-B).
type MentionType int

// Mention types.
const (
	Exact MentionType = iota
	Approximate
	Truncated
)

// String returns the lowercase mention-type name.
func (t MentionType) String() string {
	switch t {
	case Exact:
		return "exact"
	case Approximate:
		return "approximate"
	default:
		return "truncated"
	}
}

// Config holds the filtering thresholds; v, p and the four k values are
// tuned on the validation split (§V-B).
type Config struct {
	// ValueDiffMax is v: pairs with relative value difference above it are
	// pruned when the classifier score is below MinScoreLooseValue (p).
	ValueDiffMax float64
	// MinScoreLooseValue is p.
	MinScoreLooseValue float64
	// KExact / KApprox are the top-k caps by mention type.
	KExact, KApprox int
	// EntropyThreshold splits skewed from near-uniform score distributions
	// (normalized entropy in [0,1]).
	EntropyThreshold float64
	// KSmall / KLarge are the entropy-dependent caps (ks, kl).
	KSmall, KLarge int
	// HighConfidence is the score above which a pair's table surface votes
	// on the mention type.
	HighConfidence float64
}

// DefaultConfig returns the pre-tuning defaults.
func DefaultConfig() Config {
	return Config{
		ValueDiffMax:       0.35,
		MinScoreLooseValue: 0.55,
		KExact:             4,
		KApprox:            8,
		EntropyThreshold:   0.55,
		KSmall:             2,
		KLarge:             12,
		HighConfidence:     0.5,
	}
}

// Result is the outcome of filtering one document.
type Result struct {
	Kept    []Candidate
	Types   map[int]MentionType  // mention type per text-mention index
	Tags    map[int]quantity.Agg // tagger prediction per text-mention index
	Dropped int                  // number of pruned candidates
}

// Apply filters the candidates of one document. The tagger tags each text
// mention; candidates must carry classifier scores.
func Apply(cfg Config, doc *document.Document, tag tagger.Tagger, candidates []Candidate) Result {
	res := Result{
		Types: make(map[int]MentionType),
		Tags:  make(map[int]quantity.Agg),
	}

	// Group candidates by text mention.
	byText := make(map[int][]Candidate)
	for _, c := range candidates {
		byText[c.Text] = append(byText[c.Text], c)
	}

	// Digit strings of table-mention surfaces, memoized per document: the
	// same table mention is a candidate of many text mentions, and virtual
	// mentions rebuild their surface string on every Surface() call.
	tableDigits := make(map[int]string)
	tableDigitsOf := func(ti int) string {
		if d, ok := tableDigits[ti]; ok {
			return d
		}
		d := digits(doc.TableMentions[ti].Surface())
		tableDigits[ti] = d
		return d
	}

	total := 0
	for xi, group := range byText {
		total += len(group)
		predicted := tag.Tag(doc, xi)
		res.Tags[xi] = predicted

		// Step 1: tagger-based pruning of aggregate pairs.
		step1 := group[:0]
		for _, c := range group {
			tm := doc.TableMentions[c.Table]
			if tm.IsVirtual() && tm.Agg != predicted {
				continue
			}
			step1 = append(step1, c)
		}

		// Step 2: value-difference and unit-mismatch pruning.
		x := &doc.TextMentions[xi]
		step2 := step1[:0]
		for _, c := range step1 {
			tm := doc.TableMentions[c.Table]
			relDiff := quantity.RelativeDifference(x.Value, tm.Value)
			if relDiff > cfg.ValueDiffMax && c.Score < cfg.MinScoreLooseValue {
				continue
			}
			if x.Unit != "" && tm.Unit != "" && !quantity.UnitsCompatible(x.Unit, tm.Unit) {
				continue
			}
			step2 = append(step2, c)
		}

		// Step 3: adaptive top-k.
		sort.Slice(step2, func(i, j int) bool {
			if step2[i].Score != step2[j].Score {
				return step2[i].Score > step2[j].Score
			}
			return step2[i].Table < step2[j].Table // deterministic tie-break
		})

		mt := mentionType(doc, xi, step2, cfg.HighConfidence, tableDigitsOf)
		res.Types[xi] = mt

		kType := cfg.KApprox
		if mt == Exact {
			kType = cfg.KExact
		}
		scores := make([]float64, len(step2))
		for i, c := range step2 {
			scores[i] = c.Score
		}
		k := kType
		if mlmetrics.NormalizedEntropy(scores) < cfg.EntropyThreshold {
			// Skewed distribution: few candidates suffice.
			if cfg.KSmall < k {
				k = cfg.KSmall
			}
		} else {
			// Near-uniform: keep more near-ties.
			if cfg.KLarge > k {
				k = cfg.KLarge
			}
		}
		if k > len(step2) {
			k = len(step2)
		}
		res.Kept = append(res.Kept, step2[:k]...)
	}
	res.Dropped = total - len(res.Kept)

	// Deterministic output order.
	sort.Slice(res.Kept, func(i, j int) bool {
		if res.Kept[i].Text != res.Kept[j].Text {
			return res.Kept[i].Text < res.Kept[j].Text
		}
		return res.Kept[i].Table < res.Kept[j].Table
	})
	return res
}

// mentionType determines whether a text mention is exact, approximate or
// truncated (§V-B): context modifiers decide first; otherwise the surfaces
// of high-confidence candidate table mentions vote. tableDigitsOf supplies
// the (memoized) digit string of a table mention's surface.
func mentionType(doc *document.Document, xi int, ranked []Candidate, highConf float64, tableDigitsOf func(int) string) MentionType {
	x := &doc.TextMentions[xi]
	switch x.Approx {
	case quantity.Approximate, quantity.UpperBound, quantity.LowerBound:
		return Approximate
	case quantity.ApproxExact:
		return Exact
	}

	// Vote among up to five high-confidence candidates. "High confidence" is
	// relative to the best candidate: a pair must reach both the absolute
	// threshold and 80% of the top score, so a single dominant match is not
	// outvoted by mediocre runners-up.
	votes := map[MentionType]int{}
	counted := 0
	xDigits := digits(x.Surface)
	minScore := highConf
	if len(ranked) > 0 && 0.8*ranked[0].Score > minScore {
		minScore = 0.8 * ranked[0].Score
	}
	for _, c := range ranked {
		if counted >= 5 {
			break
		}
		if c.Score < minScore {
			continue
		}
		counted++
		tDigits := tableDigitsOf(c.Table)
		switch {
		case xDigits == tDigits:
			votes[Exact]++
		case len(xDigits) < len(tDigits) && strings.HasPrefix(tDigits, xDigits):
			votes[Truncated]++
		default:
			votes[Approximate]++
		}
	}
	if counted == 0 {
		return Exact // no evidence: treat as exact, the common case
	}
	best, bestVotes := Exact, -1
	for _, mt := range []MentionType{Exact, Approximate, Truncated} {
		if votes[mt] > bestVotes {
			best, bestVotes = mt, votes[mt]
		}
	}
	return best
}

// digits extracts the digit characters of a surface form, ignoring
// formatting (commas, currency, spaces) but keeping order.
func digits(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

// Selectivity returns kept/total, the Table VI headline statistic, with 0
// for an empty input.
func Selectivity(kept, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(kept) / float64(total)
}
