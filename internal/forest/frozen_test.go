package forest

// Equivalence suite for the frozen flat-array engine: on randomized seeded
// forests and feature vectors (property-style, deterministic seeds), every
// Frozen prediction must be bit-identical to the pointer-tree walker it
// compiles — float64 == on every probability, not approximate equality. The
// pointer walker stays in the tree as the executable reference; this suite
// is the contract that lets the hot path use the flat engine.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// randomForest trains a forest of seed-dependent shape on seed-dependent
// samples, returning the forest and a batch of probe vectors (including
// out-of-distribution values, ±Inf and NaN — prediction must stay
// deterministic and identical on both engines even for garbage input).
func randomForest(t *testing.T, seed int64) (*Forest, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	classes := 2 + rng.Intn(3)
	nFeatures := 3 + rng.Intn(10)
	nSamples := 40 + rng.Intn(120)
	samples := make([]Sample, nSamples)
	for i := range samples {
		fs := make([]float64, nFeatures)
		for j := range fs {
			fs[j] = rng.NormFloat64() * float64(1+j%3)
		}
		label := 0
		if fs[0]+fs[1] > 0 {
			label = 1 + rng.Intn(classes-1)
		}
		samples[i] = Sample{Features: fs, Label: label}
	}
	f, err := Train(samples, classes, Config{
		Trees:    5 + rng.Intn(25),
		MaxDepth: 3 + rng.Intn(6),
		MinLeaf:  1 + rng.Intn(3),
		Seed:     seed,
	})
	if err != nil {
		t.Fatalf("seed %d: train: %v", seed, err)
	}

	probes := make([][]float64, 0, 40)
	for i := 0; i < 32; i++ {
		x := make([]float64, nFeatures)
		for j := range x {
			x[j] = rng.NormFloat64() * 10
		}
		probes = append(probes, x)
	}
	for _, v := range []float64{0, -1e300, 1e300, math.Inf(1), math.Inf(-1), math.NaN()} {
		x := make([]float64, nFeatures)
		for j := range x {
			x[j] = v
		}
		probes = append(probes, x)
	}
	return f, probes
}

// TestFrozenBitIdenticalToReference: PredictProba and PositiveProba through
// the frozen engine equal the pointer-tree walker exactly, across randomized
// forests and probe vectors.
func TestFrozenBitIdenticalToReference(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		f, probes := randomForest(t, seed)
		z := f.Frozen()
		if z.Classes() != f.Classes() || z.NumFeatures() != f.NumFeatures() || z.Trees() != len(f.trees) {
			t.Fatalf("seed %d: frozen shape (%d,%d,%d) != forest (%d,%d,%d)", seed,
				z.Classes(), z.NumFeatures(), z.Trees(), f.Classes(), f.NumFeatures(), len(f.trees))
		}
		var scratch []float64
		for pi, x := range probes {
			want := f.PredictProba(x)
			got := z.PredictProba(x, scratch)
			scratch = got // reuse across probes: stale contents must not leak
			for c := range want {
				if !bitEqual(got[c], want[c]) {
					t.Fatalf("seed %d probe %d class %d: frozen %v (bits %x), reference %v (bits %x)",
						seed, pi, c, got[c], math.Float64bits(got[c]), want[c], math.Float64bits(want[c]))
				}
			}
			if got, want := z.PositiveProba(x), f.PositiveProba(x); !bitEqual(got, want) {
				t.Fatalf("seed %d probe %d: frozen PositiveProba %v, reference %v", seed, pi, got, want)
			}
		}
	}
}

// TestFrozenBatchMatchesSingle: the batch entry points over a row-major
// matrix agree exactly with per-vector calls, with scratch reused across
// calls and rows.
func TestFrozenBatchMatchesSingle(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		f, probes := randomForest(t, seed)
		z := f.Frozen()
		nf := z.NumFeatures()
		xs := make([]float64, 0, len(probes)*nf)
		for _, x := range probes {
			xs = append(xs, x...)
		}

		var probaOut, posOut, votes []float64
		// Two passes through the same scratch: the second must not see the
		// first pass's values (the stale-scratch hazard of buffer reuse).
		for pass := 0; pass < 2; pass++ {
			probaOut = z.PredictProbaBatch(xs, len(probes), probaOut)
			posOut = z.PositiveProbaBatch(xs, len(probes), posOut, votes)
			for r, x := range probes {
				want := f.PredictProba(x)
				row := probaOut[r*z.Classes() : (r+1)*z.Classes()]
				for c := range want {
					if !bitEqual(row[c], want[c]) {
						t.Fatalf("seed %d pass %d row %d class %d: batch %v, reference %v",
							seed, pass, r, c, row[c], want[c])
					}
				}
				if want := f.PositiveProba(x); !bitEqual(posOut[r], want) {
					t.Fatalf("seed %d pass %d row %d: batch positive %v, reference %v",
						seed, pass, r, posOut[r], want)
				}
			}
		}
	}
}

// TestFrozenSurvivesSerializationRoundTrip: Frozen ↔ serialized ↔ reference —
// a forest saved, reloaded and frozen predicts bit-identically to the
// original pointer-tree forest.
func TestFrozenSurvivesSerializationRoundTrip(t *testing.T) {
	f, probes := randomForest(t, 99)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	z := loaded.Frozen()
	for pi, x := range probes {
		want := f.PredictProba(x)
		got := z.PredictProba(x, nil)
		for c := range want {
			if !bitEqual(got[c], want[c]) {
				t.Fatalf("probe %d class %d: reloaded frozen %v, original reference %v", pi, c, got[c], want[c])
			}
		}
	}
}

// TestFrozenIndependentOfSource: compiling shares nothing — retraining-style
// mutation of the source trees after Frozen() must not change the engine.
func TestFrozenIndependentOfSource(t *testing.T) {
	f, probes := randomForest(t, 7)
	z := f.Frozen()
	want := make([][]float64, len(probes))
	for i, x := range probes {
		want[i] = append([]float64(nil), z.PredictProba(x, nil)...)
	}
	for _, tr := range f.trees {
		for i := range tr.nodes {
			tr.nodes[i].threshold = math.Inf(-1)
			tr.nodes[i].class = 0
		}
	}
	for i, x := range probes {
		got := z.PredictProba(x, nil)
		for c := range want[i] {
			if !bitEqual(got[c], want[i][c]) {
				t.Fatalf("probe %d class %d changed after source mutation: %v != %v", i, c, got[c], want[i][c])
			}
		}
	}
}

// bitEqual compares float64s by bit pattern, so NaN == NaN and -0 != +0 —
// the strictest form of "exactly equal".
func bitEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
