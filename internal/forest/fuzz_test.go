package forest

// Fuzz harness for the model (de)serialization boundary. Load consumes
// model files shipped to replicas and handed over the persist API, so it
// must hold two properties under arbitrary bytes: malformed input errors —
// never panics, never hangs the prediction walk (the forward-children
// invariant) — and anything it accepts behaves like a real model: it
// round-trips through Save bit-identically and its Frozen compilation
// agrees with the pointer-tree reference. Seed corpus: a valid trained
// model plus structural mutations, committed under testdata/fuzz.

import (
	"bytes"
	"math"
	"testing"
)

func fuzzSeedModel(tb testing.TB) []byte {
	tb.Helper()
	samples := []Sample{
		{Features: []float64{0, 0, 1}, Label: 0},
		{Features: []float64{0, 1, 0}, Label: 1},
		{Features: []float64{1, 0, 0}, Label: 1},
		{Features: []float64{1, 1, 1}, Label: 0},
		{Features: []float64{0.5, 0.2, 0.9}, Label: 0},
		{Features: []float64{0.9, 0.8, 0.1}, Label: 1},
	}
	f, err := Train(samples, 2, Config{Trees: 3, MaxDepth: 3, MinLeaf: 1, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzLoad(f *testing.F) {
	valid := fuzzSeedModel(f)
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"classes":2,"n_features":1,"trees":[[]]}`))
	// A would-be cycle: node 0 splits to node 1, node 1 points back to 0.
	// Load must reject it (forward-children invariant) or predict would spin.
	f.Add([]byte(`{"version":1,"classes":2,"n_features":1,"trees":[[{"f":0,"t":0.5,"l":1,"r":1,"c":0},{"f":0,"t":0.5,"l":0,"r":0,"c":1}]]}`))
	// Implausible header dimensions.
	f.Add([]byte(`{"version":1,"classes":1000000000,"n_features":1,"trees":[[{"f":-1,"c":0}]]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return // malformed input must error, and did
		}

		// Accepted models must round-trip: Save then Load yields a forest
		// whose serialized form is byte-identical.
		var first bytes.Buffer
		if err := loaded.Save(&first); err != nil {
			t.Fatalf("accepted model does not save: %v", err)
		}
		again, err := Load(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("accepted model does not reload: %v", err)
		}
		var second bytes.Buffer
		if err := again.Save(&second); err != nil {
			t.Fatalf("reloaded model does not save: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("Save → Load → Save is not a fixed point")
		}

		// Frozen ↔ reference: the flat engine compiled from an accepted model
		// must predict bit-identically to the pointer walker. Keep the probe
		// budget bounded for high-dimensional headers.
		if loaded.NumFeatures() > 4096 || loaded.Classes() > 4096 {
			return
		}
		z := loaded.Frozen()
		for _, fill := range []float64{0, -1, 1, 0.5, 1e12, math.Inf(1), math.NaN()} {
			x := make([]float64, loaded.NumFeatures())
			for i := range x {
				x[i] = fill
			}
			want := loaded.PredictProba(x)
			got := z.PredictProba(x, nil)
			for c := range want {
				if math.Float64bits(got[c]) != math.Float64bits(want[c]) {
					t.Fatalf("probe fill %v class %d: frozen %v, reference %v", fill, c, got[c], want[c])
				}
			}
		}
	})
}
