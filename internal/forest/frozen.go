package forest

// Frozen flat-array inference engine. Training builds pointer-ish trees (one
// node slice per tree, 40-byte nodes); prediction over the mention×candidate
// pair space of a document walks every tree for every pair, so inference —
// not training — is the hot path. Frozen() compiles a trained Forest into a
// flat layout: all trees' nodes concatenated into one contiguous array of
// 24-byte packed nodes (split feature, threshold, absolute child offsets,
// leaf class), walked without per-tree indirection and with one cache line
// touched per node visit. The compilation is exact: a Frozen engine
// reproduces Forest.PredictProba bit for bit — same vote accumulation order,
// same division — and the equivalence suite in frozen_test.go holds the two
// implementations together.

// frozenNode is one compiled node, packed to 24 bytes so that a node visit
// touches a single cache line (the training-time node is 40 bytes across a
// pointer-ish tree). feat < 0 marks a leaf; left/right are absolute offsets
// into the shared node array, valid only on split nodes.
type frozenNode struct {
	thresh float64
	left   int32
	right  int32
	feat   int32
	class  int32 // majority class, read at leaves
}

// Frozen is an immutable flat-array compilation of a trained Forest. It is
// safe for concurrent use: prediction only reads the arrays, and all scratch
// is caller-provided or per-call.
type Frozen struct {
	classes   int
	nFeatures int
	nTrees    int
	roots     []int32 // absolute root node index per tree
	nodes     []frozenNode
}

// Frozen compiles the forest into its flat-array inference form. The result
// shares nothing with the Forest: mutating or retraining the source later
// does not affect a compiled engine.
//
// Compilation folds every subtree whose leaves all predict the same class
// into a single leaf. A tree's vote is the class of the leaf x lands in, so
// a subtree with a uniform leaf class votes that class for every x that
// reaches it — replacing it with one leaf changes no prediction, it only
// shortens the walk. Nodes are re-emitted in depth-first order per tree, so
// hot paths stay contiguous.
func (f *Forest) Frozen() *Frozen {
	total := 0
	for _, t := range f.trees {
		total += len(t.nodes)
	}
	z := &Frozen{
		classes:   f.classes,
		nFeatures: f.nFeatures,
		nTrees:    len(f.trees),
		roots:     make([]int32, len(f.trees)),
		nodes:     make([]frozenNode, 0, total),
	}
	for ti, t := range f.trees {
		// foldClass[i] is the uniform leaf class of node i's subtree, or -1
		// when its leaves disagree.
		foldClass := make([]int32, len(t.nodes))
		var fc func(i int) int32
		fc = func(i int) int32 {
			n := &t.nodes[i]
			if n.feature < 0 {
				foldClass[i] = int32(n.class)
				return foldClass[i]
			}
			l, r := fc(n.left), fc(n.right)
			if l >= 0 && l == r {
				foldClass[i] = l
			} else {
				foldClass[i] = -1
			}
			return foldClass[i]
		}
		fc(0)
		var emit func(i int) int32
		emit = func(i int) int32 {
			idx := int32(len(z.nodes))
			if c := foldClass[i]; c >= 0 {
				z.nodes = append(z.nodes, frozenNode{feat: -1, class: c})
				return idx
			}
			n := &t.nodes[i]
			z.nodes = append(z.nodes, frozenNode{
				thresh: n.threshold,
				feat:   int32(n.feature),
				class:  int32(n.class),
			})
			l := emit(n.left)
			r := emit(n.right)
			z.nodes[idx].left = l
			z.nodes[idx].right = r
			return idx
		}
		z.roots[ti] = emit(0)
	}
	return z
}

// Classes returns the number of classes the source forest was trained on.
func (z *Frozen) Classes() int { return z.classes }

// NumFeatures returns the expected feature-vector length.
func (z *Frozen) NumFeatures() int { return z.nFeatures }

// Trees returns the number of compiled trees.
func (z *Frozen) Trees() int { return z.nTrees }

// vote walks every tree for x and increments the winning class's slot in
// votes — the same accumulation order as Forest.PredictProba, which the
// bit-identity contract depends on.
func (z *Frozen) vote(x []float64, votes []float64) {
	nodes := z.nodes
	for _, root := range z.roots {
		i := root
		for {
			n := &nodes[i]
			if n.feat < 0 {
				votes[n.class]++
				break
			}
			if x[n.feat] <= n.thresh {
				i = n.left
			} else {
				i = n.right
			}
		}
	}
}

// PredictProba returns the per-class probability estimates for x, writing
// into out when it has sufficient capacity (allocating otherwise) and
// returning the slice used. The result is bit-identical to
// Forest.PredictProba on the source forest.
func (z *Frozen) PredictProba(x []float64, out []float64) []float64 {
	if cap(out) < z.classes {
		out = make([]float64, z.classes)
	} else {
		out = out[:z.classes]
		for i := range out {
			out[i] = 0
		}
	}
	z.vote(x, out)
	n := float64(z.nTrees)
	for i := range out {
		out[i] /= n
	}
	return out
}

// PositiveProba is shorthand for binary classifiers: the probability of
// class 1, bit-identical to Forest.PositiveProba.
func (z *Frozen) PositiveProba(x []float64) float64 {
	votes := make([]float64, z.classes)
	z.vote(x, votes)
	return votes[1%z.classes] / float64(z.nTrees)
}

// batchBlock is the number of rows walked together through each tree. The
// compiled forest (80 trees × depth 12 at the default config) is far larger
// than L1/L2, so a row-at-a-time batch re-streams every tree from memory for
// every row. Walking a block of rows through one tree before moving to the
// next keeps the tree's hot nodes cached across the block and gives the CPU
// independent root-to-leaf chains to overlap. Vote totals per row are
// unchanged — each row still collects exactly one vote per tree, and the
// integer-valued float increments commute exactly — so blocking preserves
// the bit-identity contract.
const batchBlock = 32

// voteBlock walks every tree for the b rows starting at xs row r0 and
// accumulates votes into vb, which holds b rows of z.classes counters.
func (z *Frozen) voteBlock(xs []float64, r0, b int, vb []float64) {
	nodes := z.nodes
	nf := z.nFeatures
	cls := z.classes
	for r := 0; r < b; r++ {
		x := xs[(r0+r)*nf : (r0+r+1)*nf]
		for _, root := range z.roots {
			i := root
			for {
				n := &nodes[i]
				if n.feat < 0 {
					vb[r*cls+int(n.class)]++
					break
				}
				if x[n.feat] <= n.thresh {
					i = n.left
				} else {
					i = n.right
				}
			}
		}
	}
}

// PredictProbaBatch evaluates n feature vectors laid out row-major in xs
// (len ≥ n*NumFeatures) and writes n rows of class probabilities row-major
// into out (len ≥ n*Classes), reusing out's backing array when capacity
// allows. Each row is bit-identical to Forest.PredictProba on that vector.
// It returns the out slice used.
func (z *Frozen) PredictProbaBatch(xs []float64, n int, out []float64) []float64 {
	need := n * z.classes
	if cap(out) < need {
		out = make([]float64, need)
	} else {
		out = out[:need]
	}
	// out doubles as the vote accumulator: zero it, walk blocks of rows
	// through each tree, then divide in place.
	for i := range out {
		out[i] = 0
	}
	div := float64(z.nTrees)
	for r0 := 0; r0 < n; r0 += batchBlock {
		b := n - r0
		if b > batchBlock {
			b = batchBlock
		}
		z.voteBlock(xs, r0, b, out[r0*z.classes:(r0+b)*z.classes])
	}
	for i := range out {
		out[i] /= div
	}
	return out
}

// BatchScratchLen returns the minimum length of the votes scratch buffer for
// PositiveProbaBatch, letting callers pre-size a reusable slice.
func (z *Frozen) BatchScratchLen() int { return batchBlock * z.classes }

// PositiveProbaBatch evaluates n feature vectors laid out row-major in xs
// (len ≥ n*NumFeatures) and writes the class-1 probability of each into out
// (len ≥ n), reusing out's backing array when capacity allows. votes is the
// single scratch buffer of the batch — one block of per-class counters
// (BatchScratchLen long) reused across all row blocks, allocated when too
// small. Each score is bit-identical to Forest.PositiveProba on that vector.
// It returns the out slice used.
func (z *Frozen) PositiveProbaBatch(xs []float64, n int, out, votes []float64) []float64 {
	if cap(out) < n {
		out = make([]float64, n)
	} else {
		out = out[:n]
	}
	need := batchBlock * z.classes
	if cap(votes) < need {
		votes = make([]float64, need)
	} else {
		votes = votes[:need]
	}
	div := float64(z.nTrees)
	if z.classes == 2 {
		// Binary fast path: the class-1 vote count is the only number the
		// caller needs, and leaf classes are 0 or 1, so one integer counter
		// per row replaces the per-class accumulator. float64(count)/trees is
		// bit-identical to the generic path's votes[1]/trees — both divide
		// the same integer-valued numerator.
		nodes := z.nodes
		nf := z.nFeatures
		for r := 0; r < n; r++ {
			x := xs[r*nf : (r+1)*nf]
			cnt := int32(0)
			for _, root := range z.roots {
				i := root
				for {
					nd := &nodes[i]
					if nd.feat < 0 {
						cnt += nd.class
						break
					}
					if x[nd.feat] <= nd.thresh {
						i = nd.left
					} else {
						i = nd.right
					}
				}
			}
			out[r] = float64(cnt) / div
		}
		return out
	}
	pos := 1 % z.classes
	for r0 := 0; r0 < n; r0 += batchBlock {
		b := n - r0
		if b > batchBlock {
			b = batchBlock
		}
		vb := votes[:b*z.classes]
		for i := range vb {
			vb[i] = 0
		}
		z.voteBlock(xs, r0, b, vb)
		for r := 0; r < b; r++ {
			out[r0+r] = vb[r*z.classes+pos] / div
		}
	}
	return out
}
