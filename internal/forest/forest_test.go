package forest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// xorSamples builds a noisy 2-D XOR dataset — not linearly separable, so a
// working tree ensemble is required to fit it.
func xorSamples(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]Sample, n)
	for i := range samples {
		x := rng.Float64()
		y := rng.Float64()
		label := 0
		if (x > 0.5) != (y > 0.5) {
			label = 1
		}
		samples[i] = Sample{Features: []float64{x, y}, Label: label}
	}
	return samples
}

func accuracy(f *Forest, samples []Sample) float64 {
	correct := 0
	for _, s := range samples {
		if f.Predict(s.Features) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

func TestTrainXOR(t *testing.T) {
	train := xorSamples(600, 1)
	test := xorSamples(300, 2)
	f, err := Train(train, 2, Config{Trees: 60, MaxDepth: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(f, test); acc < 0.9 {
		t.Errorf("XOR accuracy = %.3f, want ≥ 0.9", acc)
	}
}

func TestTrainMultiClass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var samples []Sample
	centers := [][]float64{{0, 0}, {3, 0}, {0, 3}, {3, 3}}
	for i := 0; i < 800; i++ {
		c := i % 4
		samples = append(samples, Sample{
			Features: []float64{centers[c][0] + rng.NormFloat64()*0.4, centers[c][1] + rng.NormFloat64()*0.4},
			Label:    c,
		})
	}
	f, err := Train(samples, 4, Config{Trees: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(f, samples); acc < 0.95 {
		t.Errorf("4-class accuracy = %.3f, want ≥ 0.95", acc)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 2, Config{}); err == nil {
		t.Error("want error for empty samples")
	}
	if _, err := Train([]Sample{{Features: []float64{1}, Label: 0}}, 1, Config{}); err == nil {
		t.Error("want error for single class")
	}
	if _, err := Train([]Sample{{Features: nil, Label: 0}}, 2, Config{}); err == nil {
		t.Error("want error for empty features")
	}
	if _, err := Train([]Sample{
		{Features: []float64{1, 2}, Label: 0},
		{Features: []float64{1}, Label: 1},
	}, 2, Config{}); err == nil {
		t.Error("want error for ragged features")
	}
	if _, err := Train([]Sample{{Features: []float64{1}, Label: 5}}, 2, Config{}); err == nil {
		t.Error("want error for out-of-range label")
	}
	if _, err := Train([]Sample{
		{Features: []float64{1}, Label: 0},
		{Features: []float64{2}, Label: 1},
	}, 2, Config{ClassWeights: []float64{1}}); err == nil {
		t.Error("want error for wrong class-weight count")
	}
}

func TestPredictProbaSumsToOne(t *testing.T) {
	f, err := Train(xorSamples(200, 4), 2, Config{Trees: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	check := func(a, b float64) bool {
		x := []float64{math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)}
		if math.IsNaN(x[0]) || math.IsNaN(x[1]) {
			return true
		}
		p := f.PredictProba(x)
		total := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			total += v
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicTraining(t *testing.T) {
	samples := xorSamples(300, 9)
	f1, err := Train(samples, 2, Config{Trees: 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Train(samples, 2, Config{Trees: 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	probe := xorSamples(50, 10)
	for _, s := range probe {
		p1 := f1.PositiveProba(s.Features)
		p2 := f2.PositiveProba(s.Features)
		if p1 != p2 {
			t.Fatalf("same seed, different predictions: %v vs %v", p1, p2)
		}
	}
}

func TestClassWeightsCounterImbalance(t *testing.T) {
	// 95:5 imbalance on an easy 1-D problem with overlap: without class
	// weights the minority class drowns; with inverse-frequency weights the
	// forest must recover most minority samples.
	rng := rand.New(rand.NewSource(13))
	var samples []Sample
	for i := 0; i < 950; i++ {
		samples = append(samples, Sample{Features: []float64{rng.NormFloat64()}, Label: 0})
	}
	for i := 0; i < 50; i++ {
		samples = append(samples, Sample{Features: []float64{2.0 + rng.NormFloat64()*0.7}, Label: 1})
	}
	weighted, err := Train(samples, 2, Config{Trees: 50, MaxDepth: 6, MinLeaf: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Train(samples, 2, Config{Trees: 50, MaxDepth: 6, MinLeaf: 5, Seed: 1,
		ClassWeights: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	recall := func(f *Forest) float64 {
		tp, fn := 0, 0
		for i := 0; i < 200; i++ {
			x := []float64{2.0 + rng.NormFloat64()*0.7}
			if f.Predict(x) == 1 {
				tp++
			} else {
				fn++
			}
		}
		return float64(tp) / float64(tp+fn)
	}
	rw, ru := recall(weighted), recall(uniform)
	if rw <= ru {
		t.Errorf("weighted recall %.3f should beat uniform %.3f on imbalanced data", rw, ru)
	}
	if rw < 0.7 {
		t.Errorf("weighted minority recall = %.3f, want ≥ 0.7", rw)
	}
}

func TestInverseFrequencyWeights(t *testing.T) {
	samples := []Sample{
		{Features: []float64{0}, Label: 0},
		{Features: []float64{0}, Label: 0},
		{Features: []float64{0}, Label: 0},
		{Features: []float64{0}, Label: 1},
	}
	w := InverseFrequencyWeights(samples, 3)
	if w[0] != 1 {
		t.Errorf("majority weight = %v, want 1", w[0])
	}
	if w[1] != 3 {
		t.Errorf("minority weight = %v, want 3", w[1])
	}
	if w[2] != 1 {
		t.Errorf("absent-class weight = %v, want 1", w[2])
	}
}

func TestAccessors(t *testing.T) {
	f, err := Train(xorSamples(100, 20), 2, Config{Trees: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Classes() != 2 || f.NumFeatures() != 2 {
		t.Errorf("Classes=%d NumFeatures=%d", f.Classes(), f.NumFeatures())
	}
}

func TestConstantFeaturesYieldLeafForest(t *testing.T) {
	// All features identical: no split is possible; the forest must still
	// train and predict the majority class.
	samples := []Sample{
		{Features: []float64{1, 1}, Label: 0},
		{Features: []float64{1, 1}, Label: 0},
		{Features: []float64{1, 1}, Label: 1},
	}
	f, err := Train(samples, 2, Config{Trees: 10, Seed: 1, ClassWeights: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{1, 1}); got != 0 {
		t.Errorf("Predict = %d, want majority class 0", got)
	}
}

func BenchmarkTrain(b *testing.B) {
	samples := xorSamples(1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(samples, 2, Config{Trees: 20, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictProba(b *testing.B) {
	f, err := Train(xorSamples(1000, 1), 2, Config{Trees: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.3, 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProba(x)
	}
}
