package forest

import (
	"encoding/json"
	"fmt"
	"io"
)

// serialized is the stable on-disk representation of a Forest.
type serialized struct {
	Version   int              `json:"version"`
	Classes   int              `json:"classes"`
	NFeatures int              `json:"n_features"`
	Trees     [][]serifiedNode `json:"trees"`
}

type serifiedNode struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t,omitempty"`
	Left      int     `json:"l,omitempty"`
	Right     int     `json:"r,omitempty"`
	Class     int     `json:"c"`
}

const serializeVersion = 1

// Save writes the forest as JSON. Models are small (tens of KB for the
// configurations used here) and loading them skips the training cost.
func (f *Forest) Save(w io.Writer) error {
	out := serialized{
		Version:   serializeVersion,
		Classes:   f.classes,
		NFeatures: f.nFeatures,
		Trees:     make([][]serifiedNode, len(f.trees)),
	}
	for ti, t := range f.trees {
		nodes := make([]serifiedNode, len(t.nodes))
		for ni, n := range t.nodes {
			nodes[ni] = serifiedNode{
				Feature: n.feature, Threshold: n.threshold,
				Left: n.left, Right: n.right, Class: n.class,
			}
		}
		out.Trees[ti] = nodes
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("forest: save: %w", err)
	}
	return nil
}

// Load reads a forest saved with Save and validates its structure.
func Load(r io.Reader) (*Forest, error) {
	var in serialized
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("forest: load: %w", err)
	}
	if in.Version != serializeVersion {
		return nil, fmt.Errorf("forest: load: unsupported version %d", in.Version)
	}
	if in.Classes < 2 || in.NFeatures < 1 || len(in.Trees) == 0 {
		return nil, fmt.Errorf("forest: load: malformed model (classes=%d features=%d trees=%d)",
			in.Classes, in.NFeatures, len(in.Trees))
	}
	// Plausibility caps: class and feature counts size prediction scratch
	// (vote slices, probe vectors), so an implausibly huge header is rejected
	// as malformed instead of driving giant allocations downstream.
	const maxDimension = 1 << 20
	if in.Classes > maxDimension || in.NFeatures > maxDimension {
		return nil, fmt.Errorf("forest: load: implausible model (classes=%d features=%d)",
			in.Classes, in.NFeatures)
	}
	f := &Forest{classes: in.Classes, nFeatures: in.NFeatures}
	for ti, nodes := range in.Trees {
		if len(nodes) == 0 {
			return nil, fmt.Errorf("forest: load: tree %d is empty", ti)
		}
		t := &tree{nodes: make([]node, len(nodes))}
		for ni, n := range nodes {
			if n.Feature >= in.NFeatures {
				return nil, fmt.Errorf("forest: load: tree %d node %d references feature %d of %d",
					ti, ni, n.Feature, in.NFeatures)
			}
			if n.Class < 0 || n.Class >= in.Classes {
				return nil, fmt.Errorf("forest: load: tree %d node %d class %d out of range", ti, ni, n.Class)
			}
			if n.Feature >= 0 {
				// Children must point strictly forward — the builder appends a
				// node before growing its subtrees, so every valid save obeys
				// this. It also guarantees the prediction walk terminates: a
				// backward edge could encode a cycle that would hang predict.
				if n.Left <= ni || n.Left >= len(nodes) || n.Right <= ni || n.Right >= len(nodes) {
					return nil, fmt.Errorf("forest: load: tree %d node %d has invalid children", ti, ni)
				}
			}
			t.nodes[ni] = node{
				feature: n.Feature, threshold: n.Threshold,
				left: n.Left, right: n.Right, class: n.Class,
			}
		}
		f.trees = append(f.trees, t)
	}
	return f, nil
}
