// Package forest implements the supervised classifier of BriQ's mention-pair
// classification stage (§IV): a Random Forest of CART decision trees with
// class-weighted Gini impurity to counter the heavy label imbalance of the
// training data (#pos ≪ #neg, §VII-B), and calibrated probabilities computed
// as the fraction of tree votes for the positive class — the prior fed into
// global resolution.
package forest

import (
	"math"
	"math/rand"
	"sort"
)

// Sample is one training example.
type Sample struct {
	Features []float64
	Label    int
}

// node is a decision-tree node. Leaves have feature == -1.
type node struct {
	feature   int     // split feature index, -1 for leaf
	threshold float64 // go left when x[feature] <= threshold
	left      int     // child indices into the tree's node slice
	right     int
	class     int // majority class at a leaf
}

// tree is a single CART decision tree stored as a flat node slice.
type tree struct {
	nodes []node
}

func (t *tree) predict(x []float64) int {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.class
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// treeBuilder grows one tree on a bootstrap sample.
type treeBuilder struct {
	samples      []Sample
	classWeights []float64
	classes      int
	maxDepth     int
	minLeaf      int
	mtry         int // features considered per split
	rng          *rand.Rand
	tree         *tree

	// scratch buffers reused across nodes
	featOrder []int
}

func (b *treeBuilder) build(indices []int) *tree {
	b.tree = &tree{}
	nFeatures := len(b.samples[0].Features)
	b.featOrder = make([]int, nFeatures)
	for i := range b.featOrder {
		b.featOrder[i] = i
	}
	b.grow(indices, 0)
	return b.tree
}

// grow recursively grows the subtree over the given sample indices and
// returns the index of its root node.
func (b *treeBuilder) grow(indices []int, depth int) int {
	counts := make([]float64, b.classes)
	for _, i := range indices {
		counts[b.samples[i].Label] += b.classWeights[b.samples[i].Label]
	}
	best := majorityClass(counts)

	idx := len(b.tree.nodes)
	b.tree.nodes = append(b.tree.nodes, node{feature: -1, class: best})

	if depth >= b.maxDepth || len(indices) < 2*b.minLeaf || isPure(counts) {
		return idx
	}

	feature, threshold, ok := b.bestSplit(indices, counts)
	if !ok {
		return idx
	}

	var left, right []int
	for _, i := range indices {
		if b.samples[i].Features[feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.minLeaf || len(right) < b.minLeaf {
		return idx
	}

	leftIdx := b.grow(left, depth+1)
	rightIdx := b.grow(right, depth+1)
	b.tree.nodes[idx] = node{feature: feature, threshold: threshold, left: leftIdx, right: rightIdx, class: best}
	return idx
}

// bestSplit searches a random subset of features for the threshold split
// with the lowest weighted Gini impurity.
func (b *treeBuilder) bestSplit(indices []int, totalCounts []float64) (feature int, threshold float64, ok bool) {
	// Shuffle feature order and take the first mtry.
	b.rng.Shuffle(len(b.featOrder), func(i, j int) {
		b.featOrder[i], b.featOrder[j] = b.featOrder[j], b.featOrder[i]
	})

	total := sum(totalCounts)
	parentGini := gini(totalCounts, total)
	bestGain := 1e-12
	feature = -1

	sorted := make([]int, len(indices))
	leftCounts := make([]float64, b.classes)

	for fi := 0; fi < b.mtry && fi < len(b.featOrder); fi++ {
		f := b.featOrder[fi]
		copy(sorted, indices)
		sort.Slice(sorted, func(i, j int) bool {
			return b.samples[sorted[i]].Features[f] < b.samples[sorted[j]].Features[f]
		})

		for i := range leftCounts {
			leftCounts[i] = 0
		}
		leftTotal := 0.0

		for k := 0; k < len(sorted)-1; k++ {
			s := &b.samples[sorted[k]]
			w := b.classWeights[s.Label]
			leftCounts[s.Label] += w
			leftTotal += w

			v, next := s.Features[f], b.samples[sorted[k+1]].Features[f]
			if v == next {
				continue // can only split between distinct values
			}
			rightTotal := total - leftTotal
			if leftTotal == 0 || rightTotal == 0 {
				continue
			}
			gl := giniLeft(leftCounts, leftTotal)
			gr := giniRight(totalCounts, leftCounts, rightTotal)
			gain := parentGini - (leftTotal*gl+rightTotal*gr)/total
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = (v + next) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

func gini(counts []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / total
		g -= p * p
	}
	return g
}

func giniLeft(left []float64, total float64) float64 { return gini(left, total) }

func giniRight(all, left []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for i := range all {
		p := (all[i] - left[i]) / total
		g -= p * p
	}
	return g
}

func majorityClass(counts []float64) int {
	best, bestW := 0, math.Inf(-1)
	for c, w := range counts {
		if w > bestW {
			best, bestW = c, w
		}
	}
	return best
}

func isPure(counts []float64) bool {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
