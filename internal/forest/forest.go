package forest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config holds Random Forest hyper-parameters. The zero value is completed
// by defaults in Train; the experiment harness grid-searches Trees, MaxDepth
// and MinLeaf on the validation split (§VII-C).
type Config struct {
	Trees            int       // number of trees (default 100)
	MaxDepth         int       // maximum tree depth (default 12)
	MinLeaf          int       // minimum samples per leaf (default 2)
	FeaturesPerSplit int       // features considered per split (default ⌈√n⌉)
	ClassWeights     []float64 // per-class weights; nil = inverse class frequency (§VII-B)
	Seed             int64     // RNG seed for bootstrap and feature sampling
}

func (c Config) withDefaults(nFeatures int) Config {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.FeaturesPerSplit <= 0 {
		c.FeaturesPerSplit = int(math.Ceil(math.Sqrt(float64(nFeatures))))
	}
	return c
}

// Forest is a trained Random Forest classifier.
type Forest struct {
	trees     []*tree
	classes   int
	nFeatures int
}

// Train fits a Random Forest on the samples. Labels must lie in [0,
// classes). When cfg.ClassWeights is nil, weights inversely proportional to
// class frequency are used, countering label imbalance as the paper does for
// its mention-pair training data.
func Train(samples []Sample, classes int, cfg Config) (*Forest, error) {
	if len(samples) == 0 {
		return nil, errors.New("forest: no training samples")
	}
	if classes < 2 {
		return nil, fmt.Errorf("forest: need ≥2 classes, got %d", classes)
	}
	nFeatures := len(samples[0].Features)
	if nFeatures == 0 {
		return nil, errors.New("forest: samples have no features")
	}
	for i, s := range samples {
		if len(s.Features) != nFeatures {
			return nil, fmt.Errorf("forest: sample %d has %d features, want %d", i, len(s.Features), nFeatures)
		}
		if s.Label < 0 || s.Label >= classes {
			return nil, fmt.Errorf("forest: sample %d label %d out of range [0,%d)", i, s.Label, classes)
		}
	}
	cfg = cfg.withDefaults(nFeatures)

	weights := cfg.ClassWeights
	if weights == nil {
		weights = InverseFrequencyWeights(samples, classes)
	} else if len(weights) != classes {
		return nil, fmt.Errorf("forest: %d class weights for %d classes", len(weights), classes)
	}

	f := &Forest{classes: classes, nFeatures: nFeatures}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for t := 0; t < cfg.Trees; t++ {
		// Independent bootstrap sample per tree.
		indices := make([]int, len(samples))
		for i := range indices {
			indices[i] = rng.Intn(len(samples))
		}
		b := &treeBuilder{
			samples:      samples,
			classWeights: weights,
			classes:      classes,
			maxDepth:     cfg.MaxDepth,
			minLeaf:      cfg.MinLeaf,
			mtry:         cfg.FeaturesPerSplit,
			rng:          rand.New(rand.NewSource(rng.Int63())),
		}
		f.trees = append(f.trees, b.build(indices))
	}
	return f, nil
}

// InverseFrequencyWeights returns per-class weights inversely proportional
// to the class frequencies in the samples, normalized so the most frequent
// class has weight 1.
func InverseFrequencyWeights(samples []Sample, classes int) []float64 {
	counts := make([]float64, classes)
	for _, s := range samples {
		counts[s.Label]++
	}
	maxCount := 0.0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	weights := make([]float64, classes)
	for i, c := range counts {
		if c == 0 {
			weights[i] = 1
		} else {
			weights[i] = maxCount / c
		}
	}
	return weights
}

// Classes returns the number of classes the forest was trained on.
func (f *Forest) Classes() int { return f.classes }

// NumFeatures returns the expected feature-vector length.
func (f *Forest) NumFeatures() int { return f.nFeatures }

// PredictProba returns the per-class probability estimates for x, computed
// as the fraction of tree votes per class. Random Forest vote fractions are
// well calibrated (Caruana & Niculescu-Mizil), which §IV-A relies on for
// the global-resolution prior.
func (f *Forest) PredictProba(x []float64) []float64 {
	votes := make([]float64, f.classes)
	for _, t := range f.trees {
		votes[t.predict(x)]++
	}
	n := float64(len(f.trees))
	for i := range votes {
		votes[i] /= n
	}
	return votes
}

// Predict returns the majority-vote class for x.
func (f *Forest) Predict(x []float64) int {
	proba := f.PredictProba(x)
	best, bestP := 0, -1.0
	for c, p := range proba {
		if p > bestP {
			best, bestP = c, p
		}
	}
	return best
}

// PositiveProba is shorthand for binary classifiers: the probability of
// class 1.
func (f *Forest) PositiveProba(x []float64) float64 {
	return f.PredictProba(x)[1%f.classes]
}
