package forest

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	f, err := Train(xorSamples(400, 3), 2, Config{Trees: 25, MaxDepth: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Classes() != f.Classes() || loaded.NumFeatures() != f.NumFeatures() {
		t.Errorf("metadata mismatch: %d/%d vs %d/%d",
			loaded.Classes(), loaded.NumFeatures(), f.Classes(), f.NumFeatures())
	}
	for _, s := range xorSamples(100, 4) {
		p1 := f.PredictProba(s.Features)
		p2 := loaded.PredictProba(s.Features)
		for c := range p1 {
			if p1[c] != p2[c] {
				t.Fatalf("prediction mismatch for %v: %v vs %v", s.Features, p1, p2)
			}
		}
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"garbage", "not json"},
		{"wrong version", `{"version":99,"classes":2,"n_features":1,"trees":[[{"f":-1,"c":0}]]}`},
		{"no trees", `{"version":1,"classes":2,"n_features":1,"trees":[]}`},
		{"one class", `{"version":1,"classes":1,"n_features":1,"trees":[[{"f":-1,"c":0}]]}`},
		{"empty tree", `{"version":1,"classes":2,"n_features":1,"trees":[[]]}`},
		{"bad feature", `{"version":1,"classes":2,"n_features":1,"trees":[[{"f":5,"t":0.5,"l":1,"r":2,"c":0},{"f":-1,"c":0},{"f":-1,"c":1}]]}`},
		{"bad class", `{"version":1,"classes":2,"n_features":1,"trees":[[{"f":-1,"c":7}]]}`},
		{"bad child", `{"version":1,"classes":2,"n_features":1,"trees":[[{"f":0,"t":0.5,"l":9,"r":9,"c":0}]]}`},
	}
	for _, tc := range cases {
		if _, err := Load(strings.NewReader(tc.json)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestLoadedForestRejectsNothingValid(t *testing.T) {
	// A valid minimal model loads and predicts.
	src := `{"version":1,"classes":2,"n_features":2,
		"trees":[[{"f":0,"t":0.5,"l":1,"r":2,"c":0},{"f":-1,"c":0},{"f":-1,"c":1}]]}`
	f, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict([]float64{0.2, 0}); got != 0 {
		t.Errorf("Predict(low) = %d, want 0", got)
	}
	if got := f.Predict([]float64{0.8, 0}); got != 1 {
		t.Errorf("Predict(high) = %d, want 1", got)
	}
}
