package feature

// Cache-equivalence coverage: the per-document memos (normalized surfaces,
// table-mention scale/precision, Jaro-Winkler string-pair memo) are pure
// caches — every cached value must equal the direct computation it replaced,
// for every pair of a realistic generated document.

import (
	"math"
	"testing"

	"briq/internal/corpus"
	"briq/internal/nlp"
	"briq/internal/quantity"
)

func TestCachedFeaturesMatchDirectComputation(t *testing.T) {
	c := corpus.Generate(corpus.TableLConfig(42, 6))
	pairs := 0
	for _, doc := range c.Docs {
		e := NewExtractor(DefaultConfig(), doc)
		for xi := range doc.TextMentions {
			x := &doc.TextMentions[xi]
			for ti := range doc.TableMentions {
				tm := doc.TableMentions[ti]
				vec := e.Vector(xi, ti)
				pairs++

				// f1 via the memo must equal the direct string computation.
				want := nlp.JaroWinkler(normalizeSurface(x.Surface), normalizeSurface(tm.Surface()))
				if vec[F1SurfaceSim] != want {
					t.Fatalf("doc %s pair (%d,%d): cached f1 %v, direct %v", doc.ID, xi, ti, vec[F1SurfaceSim], want)
				}

				// f9/f10 via the precomputed table-side values.
				if got, want := vec[F9ScaleDiff], absInt(x.Scale-tm.Scale()); got != want {
					t.Fatalf("doc %s pair (%d,%d): cached f9 %v, direct %v", doc.ID, xi, ti, got, want)
				}
				if got, want := vec[F10PrecisionDiff], absInt(x.Precision-tm.Precision()); got != want {
					t.Fatalf("doc %s pair (%d,%d): cached f10 %v, direct %v", doc.ID, xi, ti, got, want)
				}

				// f2 runs on interned sorted-id bags in the hot loop; the
				// direct computation rebuilds both sides as map-backed
				// WeightedBags straight from the document and goes through
				// OverlapCoefficient. Bit-identical, not approximately equal.
				textBag := e.localBag(x.TokenPos)
				tableBag := nlp.WeightedBag{}
				seenRow, seenCol := map[int]bool{}, map[int]bool{}
				for _, ref := range tm.Cells {
					if !seenRow[ref.Row] {
						seenRow[ref.Row] = true
						for w, weight := range nlp.NewWeightedBag(nlp.Words(tm.Table.RowContext(ref.Row))) {
							tableBag.Add(w, weight)
						}
					}
					if !seenCol[ref.Col] {
						seenCol[ref.Col] = true
						for w, weight := range nlp.NewWeightedBag(nlp.Words(tm.Table.ColContext(ref.Col))) {
							tableBag.Add(w, weight)
						}
					}
				}
				if got, want := vec[F2LocalOverlap], nlp.OverlapCoefficient(textBag, tableBag); got != want {
					t.Fatalf("doc %s pair (%d,%d): indexed f2 %v, direct %v", doc.ID, xi, ti, got, want)
				}

				// f4 runs on interned phrase multisets; the direct computation
				// is the reference PhraseOverlap on the raw phrase lists.
				if got, want := vec[F4LocalPhrases], nlp.PhraseOverlap(e.localNPs[xi], e.tableData[ti].localNPs); got != want {
					t.Fatalf("doc %s pair (%d,%d): indexed f4 %v, direct %v", doc.ID, xi, ti, got, want)
				}

				// f3/f5 hoisted per table, f11 per text mention, f12 per
				// (text mention, Agg) — each against its direct computation.
				if got, want := vec[F3GlobalOverlap], nlp.OverlapCoefficient(e.globalBag, e.tableData[ti].tableBag); got != want {
					t.Fatalf("doc %s pair (%d,%d): hoisted f3 %v, direct %v", doc.ID, xi, ti, got, want)
				}
				if got, want := vec[F5GlobalPhrases], nlp.PhraseOverlap(e.globalNPs, e.tableData[ti].tableNPs); got != want {
					t.Fatalf("doc %s pair (%d,%d): hoisted f5 %v, direct %v", doc.ID, xi, ti, got, want)
				}
				if got, want := vec[F11Approx], float64(x.Approx)/4; got != want {
					t.Fatalf("doc %s pair (%d,%d): hoisted f11 %v, direct %v", doc.ID, xi, ti, got, want)
				}
				if got, want := vec[F12AggMatch], aggMatch(e.mentionAgg[xi], tm.Agg); got != want {
					t.Fatalf("doc %s pair (%d,%d): hoisted f12 %v, direct %v", doc.ID, xi, ti, got, want)
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatal("corpus produced no mention pairs")
	}
}

// TestGateSkippedPairsDoNotPerturbCache covers the pre-classifier gate's
// access pattern: the align path computes vectors only for pairs that pass
// the unit-compatibility gate, so an extractor queried for a scattered subset
// of the pair space — through the reused VectorInto buffer of the hot loop —
// must return exactly what a fresh extractor computing every pair returns.
// Stale buffer contents from a previous pair must never leak into a later
// vector, and skipping pairs must not change what the memos cache.
func TestGateSkippedPairsDoNotPerturbCache(t *testing.T) {
	c := corpus.Generate(corpus.TableLConfig(13, 5))
	skipped, computed := 0, 0
	for _, doc := range c.Docs {
		full := NewExtractor(DefaultConfig(), doc)
		gated := NewExtractor(DefaultConfig(), doc)
		// One shared destination buffer, poisoned with NaN between uses so a
		// feature left over from the previous pair cannot go unnoticed.
		dst := make([]float64, NumFeatures)
		for xi := range doc.TextMentions {
			x := &doc.TextMentions[xi]
			for ti, tm := range doc.TableMentions {
				if x.Unit != "" && tm.Unit != "" && !quantity.UnitsCompatible(x.Unit, tm.Unit) {
					skipped++
					continue // the gate: this pair's features are never computed
				}
				computed++
				for i := range dst {
					dst[i] = math.NaN()
				}
				got := gated.VectorInto(xi, ti, dst)
				want := full.Vector(xi, ti)
				for f := range want {
					if got[f] != want[f] {
						t.Fatalf("doc %s pair (%d,%d) feature %s: gated extractor %v, full sweep %v",
							doc.ID, xi, ti, Names[f], got[f], want[f])
					}
				}
			}
		}
	}
	if skipped == 0 {
		t.Fatal("corpus gate skipped no pairs; subset-access coverage is vacuous")
	}
	if computed == 0 {
		t.Fatal("corpus gate computed no pairs")
	}
	t.Logf("gate pattern: %d computed, %d skipped", computed, skipped)
}

// TestVectorDeterministicAcrossExtractors: two extractors over the same
// document must produce identical vectors — the memos must not leak state
// between instances or depend on fill order.
func TestVectorDeterministicAcrossExtractors(t *testing.T) {
	c := corpus.Generate(corpus.TableLConfig(7, 4))
	for _, doc := range c.Docs {
		a := NewExtractor(DefaultConfig(), doc)
		b := NewExtractor(DefaultConfig(), doc)
		for xi := range doc.TextMentions {
			// Fill b's memo in reverse pair order to vary cache hit patterns.
			for ti := len(doc.TableMentions) - 1; ti >= 0; ti-- {
				bv := b.Vector(xi, ti)
				av := a.Vector(xi, ti)
				for f := range av {
					if av[f] != bv[f] {
						t.Fatalf("doc %s pair (%d,%d) feature %s: %v vs %v",
							doc.ID, xi, ti, Names[f], av[f], bv[f])
					}
				}
			}
		}
	}
}
