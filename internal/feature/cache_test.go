package feature

// Cache-equivalence coverage: the per-document memos (normalized surfaces,
// table-mention scale/precision, Jaro-Winkler string-pair memo) are pure
// caches — every cached value must equal the direct computation it replaced,
// for every pair of a realistic generated document.

import (
	"testing"

	"briq/internal/corpus"
	"briq/internal/nlp"
)

func TestCachedFeaturesMatchDirectComputation(t *testing.T) {
	c := corpus.Generate(corpus.TableLConfig(42, 6))
	pairs := 0
	for _, doc := range c.Docs {
		e := NewExtractor(DefaultConfig(), doc)
		for xi := range doc.TextMentions {
			x := &doc.TextMentions[xi]
			for ti := range doc.TableMentions {
				tm := doc.TableMentions[ti]
				vec := e.Vector(xi, ti)
				pairs++

				// f1 via the memo must equal the direct string computation.
				want := nlp.JaroWinkler(normalizeSurface(x.Surface), normalizeSurface(tm.Surface()))
				if vec[F1SurfaceSim] != want {
					t.Fatalf("doc %s pair (%d,%d): cached f1 %v, direct %v", doc.ID, xi, ti, vec[F1SurfaceSim], want)
				}

				// f9/f10 via the precomputed table-side values.
				if got, want := vec[F9ScaleDiff], absInt(x.Scale-tm.Scale()); got != want {
					t.Fatalf("doc %s pair (%d,%d): cached f9 %v, direct %v", doc.ID, xi, ti, got, want)
				}
				if got, want := vec[F10PrecisionDiff], absInt(x.Precision-tm.Precision()); got != want {
					t.Fatalf("doc %s pair (%d,%d): cached f10 %v, direct %v", doc.ID, xi, ti, got, want)
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatal("corpus produced no mention pairs")
	}
}

// TestVectorDeterministicAcrossExtractors: two extractors over the same
// document must produce identical vectors — the memos must not leak state
// between instances or depend on fill order.
func TestVectorDeterministicAcrossExtractors(t *testing.T) {
	c := corpus.Generate(corpus.TableLConfig(7, 4))
	for _, doc := range c.Docs {
		a := NewExtractor(DefaultConfig(), doc)
		b := NewExtractor(DefaultConfig(), doc)
		for xi := range doc.TextMentions {
			// Fill b's memo in reverse pair order to vary cache hit patterns.
			for ti := len(doc.TableMentions) - 1; ti >= 0; ti-- {
				bv := b.Vector(xi, ti)
				av := a.Vector(xi, ti)
				for f := range av {
					if av[f] != bv[f] {
						t.Fatalf("doc %s pair (%d,%d) feature %s: %v vs %v",
							doc.ID, xi, ti, Names[f], av[f], bv[f])
					}
				}
			}
		}
	}
}
