package feature

import (
	"strings"

	"briq/internal/document"
	"briq/internal/nlp"
	"briq/internal/quantity"
	"briq/internal/table"
)

// Feature indices into the vector produced by Vector. The names follow the
// paper's numbering.
const (
	F1SurfaceSim     = iota // Jaro-Winkler surface similarity
	F2LocalOverlap          // position-weighted local context word overlap
	F3GlobalOverlap         // global context word overlap
	F4LocalPhrases          // local noun-phrase overlap
	F5GlobalPhrases         // global noun-phrase overlap
	F6RelDiff               // relative difference of normalized values
	F7RawRelDiff            // relative difference of unnormalized values
	F8UnitMatch             // 4-valued unit match
	F9ScaleDiff             // difference in orders of magnitude
	F10PrecisionDiff        // difference in decimal precision
	F11Approx               // approximation indicator of the text mention
	F12AggMatch             // 4-valued aggregate-function match
	NumFeatures
)

// Names are human-readable feature names, index-aligned with the constants.
var Names = [NumFeatures]string{
	"f1_surface_sim", "f2_local_overlap", "f3_global_overlap",
	"f4_local_phrases", "f5_global_phrases", "f6_rel_diff",
	"f7_raw_rel_diff", "f8_unit_match", "f9_scale_diff",
	"f10_precision_diff", "f11_approx", "f12_agg_match",
}

// Four-valued match levels for f8 and f12 (§IV-B), encoded so that stronger
// agreement is larger.
const (
	StrongMismatch = 0.0
	WeakMismatch   = 1.0 / 3.0
	WeakMatch      = 2.0 / 3.0
	StrongMatch    = 1.0
)

// Config holds the tunable feature parameters (window size n, stepSize and
// stepWeight of the f2 position weighting, and the f12 cue window), tuned on
// the validation split in the experiments.
type Config struct {
	Window       int     // words before/after the text mention for f2 (default 8)
	StepSize     int     // distance step of the weight decay (default 2)
	StepWeight   float64 // weight lost per step (default 0.15)
	AggCueWindow int     // words around the mention scanned for aggregation cues in f12 (default 5)
}

// DefaultConfig returns the defaults used before tuning.
func DefaultConfig() Config {
	return Config{Window: 10, StepSize: 2, StepWeight: 0.12, AggCueWindow: 5}
}

// Group identifies a feature group for the ablation study (§VIII-B).
type Group int

// Feature groups of the ablation study.
const (
	GroupSurface  Group = iota // f1
	GroupContext               // f2, f3, f4, f5, f11, f12
	GroupQuantity              // f6, f7, f8, f9, f10
)

// GroupOf maps each feature index to its ablation group.
func GroupOf(feature int) Group {
	switch feature {
	case F1SurfaceSim:
		return GroupSurface
	case F6RelDiff, F7RawRelDiff, F8UnitMatch, F9ScaleDiff, F10PrecisionDiff:
		return GroupQuantity
	default:
		return GroupContext
	}
}

// Mask selects a feature subset; Mask[i] == true keeps feature i.
type Mask [NumFeatures]bool

// FullMask keeps every feature.
func FullMask() Mask {
	var m Mask
	for i := range m {
		m[i] = true
	}
	return m
}

// WithoutGroup returns a mask dropping every feature of the given group.
func WithoutGroup(g Group) Mask {
	m := FullMask()
	for i := 0; i < NumFeatures; i++ {
		if GroupOf(i) == g {
			m[i] = false
		}
	}
	return m
}

// Apply projects a full feature vector onto the mask's kept features.
func (m Mask) Apply(vec []float64) []float64 {
	out := make([]float64, 0, len(vec))
	for i, v := range vec {
		if m[i] {
			out = append(out, v)
		}
	}
	return out
}

// Goodness maps a feature value to a higher-is-better score in [0,1]. Most
// features are already goodness-oriented; the distance features (f6/f7
// relative differences, f9/f10 scale and precision differences) are
// inverted. Used by the uninformed uniform-weight scorer of the RWR-only
// baseline (§VII-D) and the classifier-free pipeline fallback.
func Goodness(feature int, v float64) float64 {
	switch feature {
	case F6RelDiff, F7RawRelDiff:
		return 1 - v
	case F9ScaleDiff, F10PrecisionDiff:
		return 1 / (1 + v)
	default:
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
}

// Count returns the number of kept features.
func (m Mask) Count() int {
	n := 0
	for _, keep := range m {
		if keep {
			n++
		}
	}
	return n
}

// Extractor computes feature vectors for all pairs of one document, caching
// per-mention context so that the cost is amortized over the (large) pair
// space.
type Extractor struct {
	cfg Config
	doc *document.Document

	textLower  []nlp.Token // tokens of the document text
	globalBag  nlp.WeightedBag
	globalNPs  []string
	localIdx   []nlp.IndexedBag // per text mention, f2 left side
	sentenceOf []string         // sentence text per text mention
	localNPs   [][]string       // noun phrases of the mention's sentence
	mentionAgg [][]quantity.Agg // aggregations cued near each text mention
	textNorm   []string         // normalizeSurface of each text mention
	approxOf   []float64        // f11 value per text mention
	aggMatchOf [][]float64      // f12 value per text mention, indexed by Agg

	tableData []tableMentionData // per table mention

	// intern maps context words to dense ids so the per-pair f2 overlap is a
	// merge scan over sorted int32 slices instead of map probing; see
	// nlp.IndexedBag for the bit-identity contract with WeightedBag. The
	// phrase interner plays the same role for the f4 noun-phrase overlap, and
	// the surface interner keys the f1 memo by dense id pair instead of
	// hashing both strings on every pair.
	intern         *nlp.Interner
	overlapScratch []float64
	phraseIn       *nlp.PhraseInterner
	localPhr       []nlp.IndexedPhrases // per text mention, f4 left side
	phraseMatched  []int32
	phraseTouched  []int32
	surfIn         *nlp.Interner
	textNormID     []int32 // surface id of textNorm, per text mention

	// simMemo caches Jaro-Winkler scores by normalized surface pair: virtual
	// cells and repeated values make identical pairs common across the
	// document's pair space, and the similarity is a pure function of the
	// two strings. Keys are packed interned-surface id pairs — equal strings
	// get equal ids, so hits are exactly the string-pair hits.
	simMemo map[int64]float64
}

type tableMentionData struct {
	surface     string
	normSurface string         // normalizeSurface(surface), computed once per mention
	normID      int32          // surface id of normSurface in the extractor's interner
	localIdx    nlp.IndexedBag // f2 right side: max-weight union of the mention's line bags
	localPhr    nlp.IndexedPhrases
	localNPs    []string
	tableBag    nlp.WeightedBag
	tableNPs    []string
	rawValue    float64
	scale       int // tm.Scale(), computed once per mention
	precision   int // tm.Precision(), computed once per mention

	// f3/f5 depend only on the mention's table, not on the text mention, so
	// they are hoisted out of the pair loop entirely.
	globalOverlap float64
	globalPhrases float64
}

// NewExtractor prepares an extractor for one document.
func NewExtractor(cfg Config, doc *document.Document) *Extractor {
	if cfg.Window <= 0 {
		cfg = DefaultConfig()
	}
	e := &Extractor{
		cfg:      cfg,
		doc:      doc,
		simMemo:  make(map[int64]float64),
		intern:   nlp.NewInterner(),
		phraseIn: nlp.NewPhraseInterner(),
		surfIn:   nlp.NewInterner(),
	}
	e.prepareText()
	e.prepareTables()
	return e
}

// surfaceSim is the memoized f1 kernel; aID/bID are the interned ids of a/b.
func (e *Extractor) surfaceSim(aID, bID int32, a, b string) float64 {
	k := int64(aID)<<32 | int64(uint32(bID))
	if v, ok := e.simMemo[k]; ok {
		return v
	}
	v := nlp.JaroWinkler(a, b)
	e.simMemo[k] = v
	return v
}

func (e *Extractor) prepareText() {
	e.textLower = nlp.Tokenize(e.doc.Text)
	e.globalBag = nlp.NewWeightedBag(wordsOf(e.textLower))
	e.globalNPs = nlp.NounPhrases(e.doc.Text)
	sentences := nlp.SplitSentences(e.doc.Text)

	e.localIdx = make([]nlp.IndexedBag, len(e.doc.TextMentions))
	e.localPhr = make([]nlp.IndexedPhrases, len(e.doc.TextMentions))
	e.textNormID = make([]int32, len(e.doc.TextMentions))
	e.sentenceOf = make([]string, len(e.doc.TextMentions))
	e.localNPs = make([][]string, len(e.doc.TextMentions))
	e.mentionAgg = make([][]quantity.Agg, len(e.doc.TextMentions))
	e.textNorm = make([]string, len(e.doc.TextMentions))
	e.approxOf = make([]float64, len(e.doc.TextMentions))
	e.aggMatchOf = make([][]float64, len(e.doc.TextMentions))

	for i, x := range e.doc.TextMentions {
		e.textNorm[i] = normalizeSurface(x.Surface)
		e.textNormID[i] = e.surfIn.ID(e.textNorm[i])
		e.localIdx[i] = nlp.IndexBag(e.localBag(x.TokenPos), e.intern)
		si := x.Sentence
		if si >= 0 && si < len(sentences) {
			e.sentenceOf[i] = sentences[si]
			e.localNPs[i] = nlp.NounPhrases(sentences[si])
		}
		e.localPhr[i] = e.phraseIn.IndexPhrases(e.localNPs[i])
		e.mentionAgg[i] = e.cuedAggs(x.TokenPos)
		e.approxOf[i] = float64(x.Approx) / 4
		// f12 only depends on the candidate through its Agg, so the whole
		// 4-valued table is computable per text mention.
		row := make([]float64, quantity.NumAggs)
		for a := range row {
			row[a] = aggMatch(e.mentionAgg[i], quantity.Agg(a))
		}
		e.aggMatchOf[i] = row
	}
}

// localBag builds the position-weighted bag of words around token position
// pos: weight(e) = 1 − (d/stepSize)·stepWeight, clamped at 0 (§IV-B, f2).
func (e *Extractor) localBag(pos int) nlp.WeightedBag {
	bag := nlp.WeightedBag{}
	for d := 1; d <= e.cfg.Window; d++ {
		w := 1 - float64(d)/float64(e.cfg.StepSize)*e.cfg.StepWeight
		if w <= 0 {
			break
		}
		for _, p := range []int{pos - d, pos + d} {
			if p < 0 || p >= len(e.textLower) {
				continue
			}
			tok := e.textLower[p]
			if k := tok.Kind(); k == nlp.KindWord || k == nlp.KindAlnum {
				lw := strings.ToLower(tok.Text)
				if !nlp.Stopword(lw) {
					bag.Add(lw, w)
				}
			}
		}
	}
	return bag
}

// cuedAggs collects the aggregations cued within AggCueWindow words of the
// token position.
func (e *Extractor) cuedAggs(pos int) []quantity.Agg {
	seen := map[quantity.Agg]bool{}
	var out []quantity.Agg
	for d := 1; d <= e.cfg.AggCueWindow; d++ {
		for _, p := range []int{pos - d, pos + d} {
			if p < 0 || p >= len(e.textLower) {
				continue
			}
			for _, agg := range quantity.CueAggs(strings.ToLower(e.textLower[p].Text)) {
				if !seen[agg] {
					seen[agg] = true
					out = append(out, agg)
				}
			}
		}
	}
	return out
}

func (e *Extractor) prepareTables() {
	// Cache per-table global context. The f3/f5 overlaps against the document
	// text are also per-table constants (prepareText has already built the
	// global bag and noun phrases), computed here once instead of per pair.
	type tcache struct {
		bag     nlp.WeightedBag
		nps     []string
		overlap float64
		phrases float64
	}
	tables := map[*table.Table]tcache{}
	for _, t := range e.doc.Tables {
		content := t.Content()
		bag := nlp.NewWeightedBag(nlp.Words(content))
		nps := nlp.NounPhrases(content)
		tables[t] = tcache{
			bag:     bag,
			nps:     nps,
			overlap: nlp.OverlapCoefficient(e.globalBag, bag),
			phrases: nlp.PhraseOverlap(e.globalNPs, nps),
		}
	}

	e.tableData = make([]tableMentionData, len(e.doc.TableMentions))
	// Cache row/col contexts per table to avoid recomputation across
	// mentions sharing lines.
	type lineKey struct {
		t   *table.Table
		row bool
		idx int
	}
	lineBags := map[lineKey]nlp.IndexedBag{}
	lineNPs := map[lineKey][]string{}
	lineCtx := func(t *table.Table, row bool, idx int) (nlp.IndexedBag, []string) {
		k := lineKey{t, row, idx}
		if bag, ok := lineBags[k]; ok {
			return bag, lineNPs[k]
		}
		var ctx string
		if row {
			ctx = t.RowContext(idx)
		} else {
			ctx = t.ColContext(idx)
		}
		bag := nlp.IndexBag(nlp.NewWeightedBag(nlp.Words(ctx)), e.intern)
		nps := nlp.NounPhrases(ctx)
		lineBags[k], lineNPs[k] = bag, nps
		return bag, nps
	}

	for i, tm := range e.doc.TableMentions {
		tc := tables[tm.Table]
		surface := tm.Surface()
		data := tableMentionData{
			surface:       surface,
			normSurface:   normalizeSurface(surface),
			tableBag:      tc.bag,
			tableNPs:      tc.nps,
			rawValue:      tm.Value,
			scale:         tm.Scale(),
			precision:     tm.Precision(),
			globalOverlap: tc.overlap,
			globalPhrases: tc.phrases,
		}
		if !tm.IsVirtual() {
			if q := tm.Table.Cell(tm.Cells[0].Row, tm.Cells[0].Col).Quantity; q != nil {
				data.rawValue = q.RawValue
			}
		}
		// Local context: max-weight union of the mention's rows and columns,
		// merged on the indexed form (bit-identical to merging WeightedBags
		// through Add — see nlp.MergeIndexed).
		var local nlp.IndexedBag
		var nps []string
		seenRow, seenCol := map[int]bool{}, map[int]bool{}
		for _, ref := range tm.Cells {
			if !seenRow[ref.Row] {
				seenRow[ref.Row] = true
				bag, ns := lineCtx(tm.Table, true, ref.Row)
				local = nlp.MergeIndexed(local, bag)
				nps = append(nps, ns...)
			}
			if !seenCol[ref.Col] {
				seenCol[ref.Col] = true
				bag, ns := lineCtx(tm.Table, false, ref.Col)
				local = nlp.MergeIndexed(local, bag)
				nps = append(nps, ns...)
			}
		}
		data.localIdx = local
		data.localNPs = nps
		data.localPhr = e.phraseIn.IndexPhrases(nps)
		data.normID = e.surfIn.ID(data.normSurface)
		e.tableData[i] = data
	}
}

func wordsOf(toks []nlp.Token) []string {
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		switch t.Kind() {
		case nlp.KindWord, nlp.KindNumber, nlp.KindAlnum:
			out = append(out, strings.ToLower(t.Text))
		}
	}
	return out
}

// Vector computes the full 12-feature vector for text mention xi and table
// mention ti (indices into the document's mention slices).
func (e *Extractor) Vector(xi, ti int) []float64 {
	return e.VectorInto(xi, ti, make([]float64, NumFeatures))
}

// VectorInto computes the same vector as Vector into dst, which must have
// length NumFeatures, and returns it. It performs no allocation, so the
// classify hot loop can reuse one batch matrix across all pairs.
func (e *Extractor) VectorInto(xi, ti int, dst []float64) []float64 {
	x := &e.doc.TextMentions[xi]
	tm := e.doc.TableMentions[ti]
	td := &e.tableData[ti]

	// f1: surface form similarity on the normalized strings (both sides
	// normalized once per mention, the similarity memoized per string pair).
	dst[F1SurfaceSim] = e.surfaceSim(e.textNormID[xi], td.normID, e.textNorm[xi], td.normSurface)

	// f2/f3: weighted word overlap local and global (f3 is a per-table
	// constant, hoisted into tableData). f2 runs on the interned sorted-id
	// bags with precomputed totals — bit-identical to OverlapCoefficient on
	// the underlying WeightedBags, pinned by cache_test.go.
	dst[F2LocalOverlap], e.overlapScratch = nlp.IndexedOverlap(e.localIdx[xi], td.localIdx, e.overlapScratch)
	dst[F3GlobalOverlap] = td.globalOverlap

	// f4/f5: noun-phrase overlap local and global (f5 hoisted like f3). f4
	// runs on the interned phrase multisets — exactly PhraseOverlap on the
	// underlying lists, pinned by cache_test.go.
	dst[F4LocalPhrases], e.phraseMatched, e.phraseTouched = nlp.PhraseOverlapIndexed(
		e.phraseIn, e.localPhr[xi], td.localPhr, e.phraseMatched, e.phraseTouched)
	dst[F5GlobalPhrases] = td.globalPhrases

	// f6/f7: relative numeric distance, normalized and raw.
	dst[F6RelDiff] = quantity.RelativeDifference(x.Value, tm.Value)
	dst[F7RawRelDiff] = quantity.RelativeDifference(x.RawValue, td.rawValue)

	// f8: unit match.
	dst[F8UnitMatch] = unitMatch(x.Unit, tm.Unit)

	// f9/f10: scale and precision differences (table side precomputed).
	dst[F9ScaleDiff] = absInt(x.Scale - td.scale)
	dst[F10PrecisionDiff] = absInt(x.Precision - td.precision)

	// f11: approximation indicator, ordinal (per text mention, precomputed).
	dst[F11Approx] = e.approxOf[xi]

	// f12: aggregate function match (per text mention × Agg, precomputed).
	dst[F12AggMatch] = e.aggMatchOf[xi][tm.Agg]

	return dst
}

// TextMentionAggs exposes the aggregations cued near text mention xi (reused
// by the adaptive filter's tagger features).
func (e *Extractor) TextMentionAggs(xi int) []quantity.Agg { return e.mentionAgg[xi] }

// normalizeSurface lowercases and strips grouping commas and spaces so that
// "3,263" and "3263" compare equal under Jaro-Winkler while decimal points
// and unit symbols still matter.
func normalizeSurface(s string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(s) {
		if r == ',' || r == ' ' {
			continue
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// unitMatch implements the 4-valued f8: strong match (both units specified
// and equal), weak match (both unspecified), weak mismatch (exactly one
// specified), strong mismatch (both specified, different).
func unitMatch(xUnit, tUnit string) float64 {
	switch {
	case xUnit != "" && tUnit != "":
		if quantity.UnitsCompatible(xUnit, tUnit) {
			return StrongMatch
		}
		return StrongMismatch
	case xUnit == "" && tUnit == "":
		return WeakMatch
	default:
		return WeakMismatch
	}
}

// aggMatch implements the 4-valued f12: comparing the aggregations cued in
// the text against the table mention's aggregation. With no cues at all, a
// single-cell pairing is a weak match and a virtual pairing a weak mismatch;
// with cues, membership decides strong match vs (strong/weak) mismatch.
func aggMatch(cued []quantity.Agg, agg quantity.Agg) float64 {
	if len(cued) == 0 {
		if agg == quantity.SingleCell {
			return WeakMatch
		}
		return WeakMismatch
	}
	for _, a := range cued {
		if a == agg {
			return StrongMatch
		}
	}
	if agg == quantity.SingleCell {
		return WeakMismatch
	}
	return StrongMismatch
}

func absInt(d int) float64 {
	if d < 0 {
		d = -d
	}
	return float64(d)
}
