package feature

import (
	"testing"

	"briq/internal/document"
	"briq/internal/quantity"
	"briq/internal/table"
)

// healthDoc builds the Fig. 1a document: the health paragraph plus its
// side-effects table.
func healthDoc(t *testing.T) *document.Document {
	t.Helper()
	tbl, err := table.New("t0", "side effects of drug trials", [][]string{
		{"side effects", "male", "female", "total"},
		{"Rash", "15", "20", "35"},
		{"Depression", "13", "25", "38"},
		{"Hypertension", "19", "15", "34"},
		{"Nausea", "5", "6", "11"},
		{"Eye Disorders", "2", "3", "5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := "A total of 123 patients who undergo the drug trials reported side effects, " +
		"of which there were 69 female patients and 54 male patients. " +
		"The most common side affect is depression, reported by 38 patients."
	docs := document.NewSegmenter().Segment("p", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatalf("segmentation produced %d docs", len(docs))
	}
	return docs[0]
}

func findText(t *testing.T, doc *document.Document, value float64) int {
	t.Helper()
	for i, m := range doc.TextMentions {
		if m.Value == value {
			return i
		}
	}
	t.Fatalf("text mention with value %v not found", value)
	return -1
}

func findTable(t *testing.T, doc *document.Document, agg quantity.Agg, value float64) int {
	t.Helper()
	for i, m := range doc.TableMentions {
		if m.Agg == agg && m.Value == value {
			return i
		}
	}
	t.Fatalf("table mention %v=%v not found", agg, value)
	return -1
}

func TestVectorShapeAndRanges(t *testing.T) {
	doc := healthDoc(t)
	e := NewExtractor(DefaultConfig(), doc)
	for xi := range doc.TextMentions {
		for ti := range doc.TableMentions {
			vec := e.Vector(xi, ti)
			if len(vec) != NumFeatures {
				t.Fatalf("vector length %d, want %d", len(vec), NumFeatures)
			}
			for f, v := range vec {
				if f == F9ScaleDiff || f == F10PrecisionDiff {
					if v < 0 {
						t.Errorf("feature %s negative: %v", Names[f], v)
					}
					continue
				}
				if v < 0 || v > 1 {
					t.Errorf("feature %s out of [0,1]: %v", Names[f], v)
				}
			}
		}
	}
}

func TestGoldPairScoresHigherThanRandomPair(t *testing.T) {
	doc := healthDoc(t)
	e := NewExtractor(DefaultConfig(), doc)

	xi := findText(t, doc, 123)
	gold := findTable(t, doc, quantity.Sum, 123)
	wrong := findTable(t, doc, quantity.SingleCell, 15)

	goldVec := e.Vector(xi, gold)
	wrongVec := e.Vector(xi, wrong)

	if goldVec[F6RelDiff] != 0 {
		t.Errorf("gold pair rel diff = %v, want 0", goldVec[F6RelDiff])
	}
	if wrongVec[F6RelDiff] == 0 {
		t.Error("wrong pair rel diff should be > 0")
	}
	// f12: "total of 123" cues sum → strong match with the sum virtual cell.
	if goldVec[F12AggMatch] != StrongMatch {
		t.Errorf("gold agg match = %v, want StrongMatch", goldVec[F12AggMatch])
	}
	if wrongVec[F12AggMatch] >= goldVec[F12AggMatch] {
		t.Errorf("wrong pair agg match %v should be below gold %v", wrongVec[F12AggMatch], goldVec[F12AggMatch])
	}
}

func TestSurfaceSimilarityNormalization(t *testing.T) {
	tbl, err := table.New("t0", "", [][]string{
		{"metric", "value"},
		{"Revenue", "3,263"},
		{"Taxes", "179"},
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := document.NewSegmenter().Segment("p",
		[]string{"Revenue came to 3263 while taxes were 179 overall."},
		[]*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatal("no doc")
	}
	e := NewExtractor(DefaultConfig(), docs[0])
	xi := findText(t, docs[0], 3263)
	ti := findTable(t, docs[0], quantity.SingleCell, 3263)
	if v := e.Vector(xi, ti)[F1SurfaceSim]; v != 1 {
		t.Errorf("surface sim of 3263 vs 3,263 = %v, want 1 (comma-insensitive)", v)
	}
}

func TestContextFeatureDiscriminates(t *testing.T) {
	doc := healthDoc(t)
	e := NewExtractor(DefaultConfig(), doc)

	// "38 patients ... depression" should overlap the Depression row context
	// more than the Rash row.
	xi := findText(t, doc, 38)
	depr := findTable(t, doc, quantity.SingleCell, 38) // Depression total
	rash := findTable(t, doc, quantity.SingleCell, 15) // Rash male

	deprV := e.Vector(xi, depr)
	rashV := e.Vector(xi, rash)
	if deprV[F2LocalOverlap] <= rashV[F2LocalOverlap] {
		t.Errorf("local overlap: depression %v should beat rash %v",
			deprV[F2LocalOverlap], rashV[F2LocalOverlap])
	}
}

func TestUnitMatchLevels(t *testing.T) {
	tests := []struct {
		x, t string
		want float64
	}{
		{"USD", "USD", StrongMatch},
		{"", "", WeakMatch},
		{"USD", "", WeakMismatch},
		{"", "EUR", WeakMismatch},
		{"USD", "EUR", StrongMismatch},
		{"%", "bps", StrongMatch}, // compatible units
	}
	for _, tc := range tests {
		if got := unitMatch(tc.x, tc.t); got != tc.want {
			t.Errorf("unitMatch(%q,%q) = %v, want %v", tc.x, tc.t, got, tc.want)
		}
	}
}

func TestAggMatchLevels(t *testing.T) {
	sum := []quantity.Agg{quantity.Sum}
	tests := []struct {
		cued []quantity.Agg
		agg  quantity.Agg
		want float64
	}{
		{sum, quantity.Sum, StrongMatch},
		{sum, quantity.Avg, StrongMismatch},
		{sum, quantity.SingleCell, WeakMismatch},
		{nil, quantity.SingleCell, WeakMatch},
		{nil, quantity.Sum, WeakMismatch},
	}
	for _, tc := range tests {
		if got := aggMatch(tc.cued, tc.agg); got != tc.want {
			t.Errorf("aggMatch(%v,%v) = %v, want %v", tc.cued, tc.agg, got, tc.want)
		}
	}
}

func TestMasks(t *testing.T) {
	full := FullMask()
	if full.Count() != NumFeatures {
		t.Errorf("full mask count = %d", full.Count())
	}
	noQuantity := WithoutGroup(GroupQuantity)
	if noQuantity.Count() != NumFeatures-5 {
		t.Errorf("w/o quantity count = %d, want %d", noQuantity.Count(), NumFeatures-5)
	}
	noSurface := WithoutGroup(GroupSurface)
	if noSurface.Count() != NumFeatures-1 {
		t.Errorf("w/o surface count = %d, want %d", noSurface.Count(), NumFeatures-1)
	}
	noContext := WithoutGroup(GroupContext)
	if noContext.Count() != NumFeatures-6 {
		t.Errorf("w/o context count = %d, want %d", noContext.Count(), NumFeatures-6)
	}

	vec := make([]float64, NumFeatures)
	for i := range vec {
		vec[i] = float64(i)
	}
	reduced := noSurface.Apply(vec)
	if len(reduced) != NumFeatures-1 {
		t.Fatalf("reduced length = %d", len(reduced))
	}
	if reduced[0] != float64(F2LocalOverlap) {
		t.Errorf("first kept feature = %v, want f2", reduced[0])
	}
}

func TestGroupOfCoversAllFeatures(t *testing.T) {
	counts := map[Group]int{}
	for f := 0; f < NumFeatures; f++ {
		counts[GroupOf(f)]++
	}
	if counts[GroupSurface] != 1 || counts[GroupContext] != 6 || counts[GroupQuantity] != 5 {
		t.Errorf("group sizes = %v, want 1/6/5", counts)
	}
}

func TestTextMentionAggsExposed(t *testing.T) {
	doc := healthDoc(t)
	e := NewExtractor(DefaultConfig(), doc)
	xi := findText(t, doc, 123)
	aggs := e.TextMentionAggs(xi)
	found := false
	for _, a := range aggs {
		if a == quantity.Sum {
			found = true
		}
	}
	if !found {
		t.Errorf("mention 'total of 123' should cue sum, got %v", aggs)
	}
}

func TestNormalizeSurface(t *testing.T) {
	if normalizeSurface("3,263") != "3263" {
		t.Error("commas not stripped")
	}
	if normalizeSurface("37K EUR") != "37keur" {
		t.Errorf("got %q", normalizeSurface("37K EUR"))
	}
}
