// Package feature computes the mention-pair features f1–f12 of §IV-B: one
// surface-form feature, five context features and six quantity features for
// each candidate (text mention, table mention) pair. Categorical features
// are encoded as ordinal levels so threshold splits in the Random Forest
// remain meaningful.
//
// # Per-document caches
//
// An Extractor scores every (text, table) pair of its document — |X|·|T|
// vectors — so per-mention work must not be redone per pair. NewExtractor
// precomputes, once per document:
//
//   - normalized surface strings for both sides (text mentions in textNorm,
//     table mentions in tableMentionData.normSurface) — virtual table
//     mentions otherwise rebuild their surface on every Surface() call;
//   - table-mention scale and precision, consumed by f9/f10;
//   - column statistics and virtual-cell aggregates behind the remaining
//     quantity features.
//
// Jaro–Winkler similarity (f1) is additionally memoized per string pair
// (simMemo): distinct mentions frequently share a normalized surface, and
// the similarity is a pure function of the two strings. All caches are
// equivalence-tested against the direct computation (cache_test.go) — an
// Extractor is a performance shape, never a semantic one.
//
// An Extractor is single-goroutine; pipelines share documents across workers
// by giving each worker its own Extractor.
package feature
