package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"testing"

	"briq/internal/api"
)

// ingestThrough streams NDJSON page lines through the gateway front door and
// returns the decoded response lines.
func ingestThrough(t *testing.T, frontURL, body string) []map[string]any {
	t.Helper()
	resp, err := http.Post(frontURL+api.Versioned("/ingest"), "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out []map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("undecodable response line %q: %v", line, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGatewayIngestRoutesByPage: every NDJSON line lands on exactly one
// replica — the ring owner of its page_id — the merged response answers every
// page exactly once, and a second identical stream routes every page to the
// same replica (the property that makes re-crawl reuse work behind the
// gateway).
func TestGatewayIngestRoutesByPage(t *testing.T) {
	r0 := newFakeReplica("fp-ingest")
	r1 := newFakeReplica("fp-ingest")
	defer r0.srv.Close()
	defer r1.srv.Close()
	_, front := newTestGateway(t, Config{}, r0, r1)

	const pages = 40
	var sb strings.Builder
	want := map[string]bool{}
	for i := 0; i < pages; i++ {
		id := fmt.Sprintf("page-%d", i)
		want[id] = true
		fmt.Fprintf(&sb, "{\"page_id\":%q,\"html\":\"<p>x %d</p>\"}\n", id, i)
	}

	results := ingestThrough(t, front.URL, sb.String())
	if len(results) != pages {
		t.Fatalf("got %d response lines, want %d", len(results), pages)
	}
	got := map[string]bool{}
	for _, r := range results {
		if errMsg, ok := r["error"]; ok {
			t.Fatalf("error line: %v", errMsg)
		}
		id, _ := r["page_id"].(string)
		if got[id] {
			t.Fatalf("page %q answered twice", id)
		}
		got[id] = true
	}
	for id := range want {
		if !got[id] {
			t.Errorf("page %q never answered", id)
		}
	}

	first0, first1 := r0.ingestedPages(), r1.ingestedPages()
	if len(first0)+len(first1) != pages {
		t.Fatalf("replicas saw %d + %d lines, want %d total", len(first0), len(first1), pages)
	}
	if len(first0) == 0 || len(first1) == 0 {
		t.Fatalf("degenerate routing: %d / %d split across 2 replicas", len(first0), len(first1))
	}

	// The same stream again: every page must land on the same replica.
	ingestThrough(t, front.URL, sb.String())
	second0, second1 := r0.ingestedPages(), r1.ingestedPages()
	sorted := func(s []string) []string { s = append([]string(nil), s...); sort.Strings(s); return s }
	if a, b := sorted(second0[:len(first0)]), sorted(second0[len(first0):]); !equalStrings(a, b) {
		t.Errorf("replica 0 saw a different page set on the second crawl")
	}
	if a, b := sorted(second1[:len(first1)]), sorted(second1[len(first1):]); !equalStrings(a, b) {
		t.Errorf("replica 1 saw a different page set on the second crawl")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGatewayIngestBadLines: undecodable lines and lines without a page_id
// are answered at the gateway without reaching any replica.
func TestGatewayIngestBadLines(t *testing.T) {
	r0 := newFakeReplica("fp-ingest")
	defer r0.srv.Close()
	_, front := newTestGateway(t, Config{}, r0)

	body := "not json at all\n{\"html\":\"<p>anon</p>\"}\n{\"page_id\":\"good\",\"html\":\"<p>ok</p>\"}\n"
	results := ingestThrough(t, front.URL, body)
	if len(results) != 3 {
		t.Fatalf("got %d response lines, want 3", len(results))
	}
	badCodes := 0
	for _, r := range results {
		if code, _ := r["code"].(string); code == api.CodeBadRequest {
			badCodes++
		}
	}
	if badCodes != 2 {
		t.Errorf("bad_request lines = %d, want 2", badCodes)
	}
	if pages := r0.ingestedPages(); len(pages) != 1 || pages[0] != "good" {
		t.Errorf("replica saw %v, want only the good page", pages)
	}
}

// TestGatewayIngestWrongMethod: non-POST answers the envelope error shape.
func TestGatewayIngestWrongMethod(t *testing.T) {
	r0 := newFakeReplica("fp-ingest")
	defer r0.srv.Close()
	_, front := newTestGateway(t, Config{}, r0)
	resp, err := http.Get(front.URL + api.Versioned("/ingest"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d, want 405", resp.StatusCode)
	}
}
