package gateway

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"briq/client"
	"briq/internal/api"
	"briq/internal/core"
	"briq/internal/obs"
	"briq/internal/serve"
	"briq/internal/store"
)

// metrics is the gateway's own instrumentation: per-route request counters
// and latencies, proxy-path events, and per-replica forwarding counters.
// Replica-side sections are not stored here — they are scraped and merged at
// snapshot time, so /metrics is always the live fleet view.
type metrics struct {
	requests   *obs.CounterSet
	errors     *obs.CounterSet
	gw         *obs.CounterSet
	handlers   *obs.Recorder
	perReplica []*replicaCounters
}

type replicaCounters struct {
	forwarded atomic.Int64 // responses received from this replica
	errors    atomic.Int64 // transport failures against this replica
	sheds     atomic.Int64 // 429/504 answers that were retried past it
}

func newMetrics(replicas int) *metrics {
	per := make([]*replicaCounters, replicas)
	for i := range per {
		per[i] = &replicaCounters{}
	}
	routes := api.RouteNames()
	return &metrics{
		requests: obs.NewCounterSet(append(routes, "total")...),
		errors:   obs.NewCounterSet("panics"),
		gw: obs.NewCounterSet("proxied", "retries", "retry_budget_exhausted",
			"no_healthy_replica", "upstream_transport_errors", "upstream_unavailable"),
		handlers:   obs.NewRecorder(routes...),
		perReplica: per,
	}
}

// scrapeTimeout bounds the whole replica metrics fan-out; a hung replica
// must not hang the fleet's dashboard.
const scrapeTimeout = 2 * time.Second

// handleMetrics answers the aggregated fleet snapshot. The top-level schema
// is briq-server's — requests, errors, batch, stages, handlers, serving,
// model, uptime_seconds — with counters summed and histograms merged across
// replica scrapes, so anything that reads a single server's /metrics (the
// load harness's serving cross-check above all) reads the gateway
// unchanged. A "gateway" section carries what only the gateway knows:
// routing, health, retry-budget and per-replica detail.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		api.WriteError(w, api.CodeMethodNotAllowed, "GET only")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), scrapeTimeout)
	defer cancel()

	scrapes := make([]*client.Metrics, len(g.clients))
	var wg sync.WaitGroup
	for i := range g.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if m, err := g.clients[i].Metrics(ctx); err == nil {
				scrapes[i] = m
			}
		}(i)
	}
	wg.Wait()

	snap := map[string]any{
		"uptime_seconds": time.Since(g.start).Seconds(),
		"requests":       g.metrics.requests.Snapshot(),
		"errors":         g.metrics.errors.Snapshot(),
		"handlers":       g.metrics.handlers.Snapshot(),
		"batch":          sumSections(scrapes, "batch", map[string]int64{"pages": 0, "documents": 0, "alignments": 0}),
		"stages":         mergeHistogramSections(scrapes, "stages"),
		"serving":        sumSections(scrapes, "serving", (*serve.Engine)(nil).Counters()),
		"store":          sumSections(scrapes, "store", (*store.Store)(nil).Counters()),
		"model":          g.modelSection(scrapes),
		"gateway":        g.gatewaySection(scrapes),
	}
	api.WriteJSON(w, http.StatusOK, snap)
}

// sumSections key-wise sums a flat map[string]number section across the
// replica scrapes that answered, on top of a zeroed seed carrying the
// section's stable schema — the aggregate keeps its full shape even while
// every scrape fails. A replica that failed its scrape contributes nothing,
// visible via gateway.replicas[].scrape_ok.
func sumSections(scrapes []*client.Metrics, section string, seed map[string]int64) map[string]int64 {
	out := seed
	if out == nil {
		out = map[string]int64{}
	}
	for _, m := range scrapes {
		if m == nil {
			continue
		}
		raw, ok := m.Raw[section]
		if !ok {
			continue
		}
		var part map[string]int64
		if err := json.Unmarshal(raw, &part); err != nil {
			continue
		}
		for k, v := range part {
			out[k] += v
		}
	}
	return out
}

// mergeHistogramSections merges a map[string]HistogramSnapshot section
// across replica scrapes via obs.MergeSnapshots — cross-process histogram
// aggregation with the same layout rules as in-process Recorder merging.
// The pipeline stages are pre-registered cold, so the section keeps its
// schema when every scrape fails.
func mergeHistogramSections(scrapes []*client.Metrics, section string) map[string]obs.HistogramSnapshot {
	out := obs.NewRecorder(core.StageNames()...).Snapshot()
	for _, m := range scrapes {
		if m == nil {
			continue
		}
		raw, ok := m.Raw[section]
		if !ok {
			continue
		}
		var part map[string]obs.HistogramSnapshot
		if err := json.Unmarshal(raw, &part); err != nil {
			continue
		}
		for k, snap := range part {
			merged, err := obs.MergeSnapshots(out[k], snap)
			if err != nil {
				// Mismatched layouts across replica versions: keep the
				// first layout seen rather than corrupting the merge.
				continue
			}
			out[k] = merged
		}
	}
	return out
}

// modelSection reports the fleet's model fingerprint: the consensus value
// when every scraped replica agrees (the invariant a bundle-booted fleet
// maintains), with a consistent=false flag the moment they diverge —
// divergence means cache shards are computing different answers for the
// same keys, which operators must see.
func (g *Gateway) modelSection(scrapes []*client.Metrics) map[string]any {
	fingerprint, consistent := "", true
	for _, m := range scrapes {
		if m == nil {
			continue
		}
		raw, ok := m.Raw["model"]
		if !ok {
			continue
		}
		var part struct {
			Fingerprint string `json:"fingerprint"`
		}
		if err := json.Unmarshal(raw, &part); err != nil {
			continue
		}
		switch fingerprint {
		case "":
			fingerprint = part.Fingerprint
		case part.Fingerprint:
		default:
			consistent = false
		}
	}
	return map[string]any{"fingerprint": fingerprint, "consistent": consistent}
}

// gatewaySection is the fleet view only the gateway has.
func (g *Gateway) gatewaySection(scrapes []*client.Metrics) map[string]any {
	replicas := make([]map[string]any, len(g.clients))
	for i, c := range g.clients {
		s := g.prober.states[i]
		replicas[i] = map[string]any{
			"url":       c.BaseURL(),
			"healthy":   s.healthy.Load(),
			"ejections": s.ejections.Load(),
			"forwarded": g.metrics.perReplica[i].forwarded.Load(),
			"errors":    g.metrics.perReplica[i].errors.Load(),
			"sheds":     g.metrics.perReplica[i].sheds.Load(),
			"scrape_ok": scrapes[i] != nil,
		}
	}
	g.budgetMu.Lock()
	budget := g.budget
	g.budgetMu.Unlock()
	return map[string]any{
		"ring": map[string]any{
			"replicas": len(g.clients),
			"vnodes":   g.ring.vnodes,
		},
		"proxy": g.metrics.gw.Snapshot(),
		"retry_budget": map[string]any{
			"ratio":  g.ratio,
			"tokens": budget,
		},
		"probes":   g.prober.probes.Load(),
		"replicas": replicas,
	}
}
