package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"briq/internal/api"
)

// proxyIngestHandler builds the sharded streaming proxy for POST /v1/ingest.
// Unlike the buffered proxy paths, the request is never read whole: each
// NDJSON line is routed to its owning replica by page identity — the hash of
// the route plus the line's page_id, NOT the body, so every re-crawl of a
// page lands on the replica whose store holds its previous documents and the
// fingerprint reuse check can actually hit. One upstream ingest stream per
// touched replica is opened lazily and fed line by line; the replicas'
// response lines are merged onto the client as they arrive. Lines are
// self-describing (each carries its page_id), so cross-replica ordering is
// unspecified and doesn't need to be.
//
// There are no per-line retries: an ingest line is a state mutation on its
// owner, and replaying it on a ring successor would split the page's history
// across two stores. A replica failure surfaces as error lines for the pages
// routed to it; the client re-ingests those pages when the replica returns.
func (g *Gateway) proxyIngestHandler(route api.Route) http.HandlerFunc {
	versioned := api.Versioned(route.Path)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			api.WriteError(w, api.CodeMethodNotAllowed, `POST NDJSON lines {"page_id": ..., "html": ...}`)
			return
		}
		g.metrics.gw.Inc("proxied")

		// The handler interleaves request reads with response writes; HTTP/1
		// needs the explicit opt-in.
		rc := http.NewResponseController(w)
		_ = rc.EnableFullDuplex()
		w.Header().Set("Content-Type", "application/x-ndjson")

		var wmu sync.Mutex // serializes merged response lines
		writeLine := func(line []byte) {
			wmu.Lock()
			defer wmu.Unlock()
			w.Write(line)
			w.Write([]byte("\n"))
			rc.Flush()
		}
		errorLine := func(pageID, code, msg string) {
			b, _ := json.Marshal(map[string]string{"page_id": pageID, "error": msg, "code": code})
			writeLine(b)
		}

		// One lazily-opened upstream stream per replica this request touches.
		type upstream struct {
			pw   *io.PipeWriter
			done chan struct{}
		}
		ups := map[int]*upstream{}
		openUpstream := func(idx int) *upstream {
			if u, ok := ups[idx]; ok {
				return u
			}
			pr, pw := io.Pipe()
			u := &upstream{pw: pw, done: make(chan struct{})}
			ups[idx] = u
			go func() {
				defer close(u.done)
				resp, err := g.clients[idx].DoReader(r.Context(), http.MethodPost, versioned, "application/x-ndjson", pr)
				if err != nil {
					g.metrics.gw.Inc("upstream_transport_errors")
					g.metrics.perReplica[idx].errors.Add(1)
					g.prober.ReportFailure(idx)
					// Unblock feeders; their writes fail instead of hanging.
					pr.CloseWithError(err)
					errorLine("", api.CodeUnavailable, fmt.Sprintf("replica stream failed: %v", err))
					return
				}
				defer resp.Body.Close()
				g.metrics.perReplica[idx].forwarded.Add(1)
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 0, 64<<10), maxBody)
				for sc.Scan() {
					if line := bytes.TrimSpace(sc.Bytes()); len(line) > 0 {
						writeLine(line)
					}
				}
				if err := sc.Err(); err != nil {
					g.metrics.gw.Inc("upstream_transport_errors")
					g.prober.ReportFailure(idx)
					errorLine("", api.CodeUnavailable, fmt.Sprintf("replica stream broke mid-response: %v", err))
				}
			}()
			return u
		}

		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 64<<10), maxBody)
		lineNo := 0
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			lineNo++
			var pg struct {
				PageID string `json:"page_id"`
			}
			if err := json.Unmarshal(line, &pg); err != nil || pg.PageID == "" {
				// The replica would reject it too; answer here and spare the
				// upstream round trip. Mirrors briq-server's per-line errors.
				id := pg.PageID
				if id == "" {
					id = fmt.Sprintf("line%d", lineNo)
				}
				errorLine(id, api.CodeBadRequest, fmt.Sprintf("line %d: missing or undecodable page_id", lineNo))
				continue
			}
			key := make([]byte, 0, len(route.Path)+1+len(pg.PageID))
			key = append(key, route.Path...)
			key = append(key, 0)
			key = append(key, pg.PageID...)
			owners := g.ring.Walk(KeyHash(key), 1, g.prober.Alive)
			if len(owners) == 0 {
				g.metrics.gw.Inc("no_healthy_replica")
				errorLine(pg.PageID, api.CodeUnavailable, "no healthy replica")
				continue
			}
			u := openUpstream(owners[0])
			if _, err := u.pw.Write(append(line, '\n')); err != nil {
				errorLine(pg.PageID, api.CodeUnavailable, fmt.Sprintf("replica stream closed: %v", err))
			}
		}
		if err := sc.Err(); err != nil {
			errorLine(fmt.Sprintf("line%d", lineNo+1), api.CodePayloadTooLarge, fmt.Sprintf("read stream: %v", err))
		}
		for _, u := range ups {
			u.pw.Close()
		}
		for _, u := range ups {
			<-u.done
		}
	}
}
