package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"briq/client"
	"briq/internal/api"
	"briq/internal/core"
	"briq/internal/obs"
	"briq/internal/serve"
	"briq/internal/store"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// --- ring ---

func ringKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = KeyHash([]byte(fmt.Sprintf("/align\x00page-%d", i)))
	}
	return keys
}

// TestRingDeterminism: the ring layout is a pure function of the replica set —
// rebuilding it, in any configuration order, routes every key identically.
// This is what lets any number of gateway processes (and restarts) front the
// same fleet without disagreeing on shard ownership.
func TestRingDeterminism(t *testing.T) {
	replicas := []string{"http://r0:1", "http://r1:1", "http://r2:1"}
	a, err := NewRing(replicas, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(replicas, 64)
	if err != nil {
		t.Fatal(err)
	}
	permuted, err := NewRing([]string{replicas[2], replicas[0], replicas[1]}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(1024) {
		oa, ob := a.Owner(k, nil), b.Owner(k, nil)
		if oa != ob {
			t.Fatalf("same config, different owner for %x: %d vs %d", k, oa, ob)
		}
		// Order-independence: the owner URL matches even though indices differ.
		if got, want := permuted.Replicas()[permuted.Owner(k, nil)], a.Replicas()[oa]; got != want {
			t.Fatalf("permuted config moved key %x: %s vs %s", k, got, want)
		}
	}
}

func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty replica list accepted")
	}
	if _, err := NewRing([]string{"http://a", "http://a"}, 0); err == nil {
		t.Error("duplicate replica accepted")
	}
}

// TestRingEjectKeyMovement: ejecting one replica moves exactly that replica's
// keys — every key owned by a surviving replica keeps its owner (so its cache
// shard stays hot), and every orphaned key lands on the dead owner's ring
// successor, the same sibling a retry would have walked to.
func TestRingEjectKeyMovement(t *testing.T) {
	ring, err := NewRing([]string{"http://r0:1", "http://r1:1", "http://r2:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(4096)
	const dead = 0
	alive := func(i int) bool { return i != dead }

	perReplica := make([]int, 3)
	moved := 0
	for _, k := range keys {
		before := ring.Owner(k, nil)
		perReplica[before]++
		after := ring.Owner(k, alive)
		if before != dead {
			if after != before {
				t.Fatalf("key %x owned by live replica %d moved to %d", k, before, after)
			}
			continue
		}
		moved++
		walk := ring.Walk(k, 2, nil)
		if len(walk) != 2 || walk[0] != dead {
			t.Fatalf("walk for dead-owned key = %v", walk)
		}
		if after != walk[1] {
			t.Fatalf("orphaned key %x went to %d, want ring successor %d", k, after, walk[1])
		}
	}
	if moved != perReplica[dead] {
		t.Fatalf("moved %d keys, dead replica owned %d", moved, perReplica[dead])
	}
	// Sanity on balance: with 64 vnodes no replica's arc should be degenerate.
	for i, n := range perReplica {
		if n < len(keys)/10 {
			t.Errorf("replica %d owns only %d/%d keys", i, n, len(keys))
		}
	}
}

func TestWalkDistinctAndBounded(t *testing.T) {
	ring, err := NewRing([]string{"http://r0:1", "http://r1:1"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(64) {
		walk := ring.Walk(k, 5, nil)
		if len(walk) != 2 || walk[0] == walk[1] {
			t.Fatalf("walk = %v, want 2 distinct replicas", walk)
		}
	}
	if got := ring.Walk(ringKeys(1)[0], 1, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("walk with all dead = %v, want empty", got)
	}
}

// --- fixture: fake replicas speaking the briq-server envelope protocol ---

type fakeReplica struct {
	srv         *httptest.Server
	fingerprint string
	healthy     atomic.Bool
	shed        atomic.Bool  // answer every alignment request with 429
	aligns      atomic.Int64 // alignment requests that reached this replica
	searches    atomic.Int64 // search/facts requests that reached this replica
	hits        atomic.Int64 // reported as serving.hits in /metrics

	queryMu   sync.Mutex
	lastQuery string // raw query string of the last search/facts request

	ingestMu sync.Mutex
	ingested []string // page_ids of ingest lines that reached this replica
}

// ingestedPages snapshots the page_ids this replica's /ingest saw, in order.
func (f *fakeReplica) ingestedPages() []string {
	f.ingestMu.Lock()
	defer f.ingestMu.Unlock()
	return append([]string(nil), f.ingested...)
}

func newFakeReplica(fingerprint string) *fakeReplica {
	f := &fakeReplica{fingerprint: fingerprint}
	f.healthy.Store(true)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch strings.TrimPrefix(r.URL.Path, api.Prefix) {
		case "/healthz":
			if !f.healthy.Load() {
				api.WriteError(w, api.CodeUnavailable, "draining")
				return
			}
			fmt.Fprintln(w, "ok")
		case "/metrics":
			serving := (*serve.Engine)(nil).Counters()
			serving["hits"] = f.hits.Load()
			api.WriteJSON(w, http.StatusOK, map[string]any{
				"uptime_seconds": 1.0,
				"requests":       map[string]int64{"align": f.aligns.Load(), "total": f.aligns.Load()},
				"errors":         map[string]int64{"panics": 0},
				"handlers":       obs.NewRecorder("align").Snapshot(),
				"batch":          map[string]int64{"pages": 0, "documents": 0, "alignments": 0},
				"stages":         obs.NewRecorder(core.StageNames()...).Snapshot(),
				"serving":        serving,
				"store":          (*store.Store)(nil).Counters(),
				"model":          map[string]string{"fingerprint": f.fingerprint},
			})
		case "/search", "/facts":
			f.searches.Add(1)
			f.queryMu.Lock()
			f.lastQuery = r.URL.RawQuery
			f.queryMu.Unlock()
			api.WriteResult(w, api.Paginated{
				Items:      []map[string]any{{"echo": r.URL.RawQuery}},
				NextCursor: "",
			})
		case "/ingest":
			// Minimal briq-server ingest contract: one NDJSON result line
			// per request line, streamed back as lines arrive.
			rc := http.NewResponseController(w)
			_ = rc.EnableFullDuplex()
			w.Header().Set("Content-Type", "application/x-ndjson")
			sc := bufio.NewScanner(r.Body)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if line == "" {
					continue
				}
				var pg struct {
					PageID string `json:"page_id"`
				}
				if err := json.Unmarshal([]byte(line), &pg); err != nil {
					continue
				}
				f.ingestMu.Lock()
				f.ingested = append(f.ingested, pg.PageID)
				f.ingestMu.Unlock()
				fmt.Fprintf(w, "{\"page_id\":%q,\"reused\":0,\"realigned\":1,\"retracted\":0}\n", pg.PageID)
				if fl, ok := w.(http.Flusher); ok {
					fl.Flush()
				}
			}
		case "/align", "/align/batch", "/summarize":
			f.aligns.Add(1)
			if f.shed.Load() {
				api.WriteError(w, api.CodeOverloaded, "shed by admission control")
				return
			}
			body, _ := io.ReadAll(r.Body)
			api.WriteResult(w, map[string]any{"echo": string(body)})
		default:
			http.NotFound(w, r)
		}
	}))
	return f
}

// newTestGateway boots a gateway over the given replicas with a fast probe
// loop, plus an httptest front door.
func newTestGateway(t *testing.T, cfg Config, replicas ...*fakeReplica) (*Gateway, *httptest.Server) {
	t.Helper()
	for _, f := range replicas {
		cfg.Replicas = append(cfg.Replicas, f.srv.URL)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 10 * time.Millisecond
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Stop)
	front := httptest.NewServer(g.Routes())
	t.Cleanup(front.Close)
	return g, front
}

// bodyOwnedBy searches for an /align body whose ring owner is the given
// replica index and whose retry successor exists — deterministic, so the
// routing tests don't depend on which URLs httptest happened to allocate.
func bodyOwnedBy(t *testing.T, g *Gateway, owner int) []byte {
	t.Helper()
	for i := 0; i < 4096; i++ {
		body := []byte(fmt.Sprintf("page body %d", i))
		key := append(append([]byte("/align"), 0), body...)
		walk := g.ring.Walk(KeyHash(key), 2, nil)
		if len(walk) == 2 && walk[0] == owner {
			return body
		}
	}
	t.Fatal("no body found for owner — ring degenerate?")
	return nil
}

func postAlign(t *testing.T, front *httptest.Server, body []byte) *http.Response {
	t.Helper()
	c, err := client.New(front.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(context.Background(), http.MethodPost, "/v1/align", "text/plain", body)
	if err != nil {
		t.Fatalf("proxy round trip: %v", err)
	}
	return resp
}

// --- routing affinity ---

// TestProxyAffinity: byte-identical requests always land on the same replica
// (that is the whole point — its LRU shard holds the result), and the key
// space spreads across the fleet.
func TestProxyAffinity(t *testing.T) {
	a, b := newFakeReplica("f1"), newFakeReplica("f1")
	defer a.srv.Close()
	defer b.srv.Close()
	g, front := newTestGateway(t, Config{}, a, b)

	repeated := bodyOwnedBy(t, g, 0)
	for i := 0; i < 8; i++ {
		resp := postAlign(t, front, repeated)
		client.Drain(resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("align status = %d", resp.StatusCode)
		}
	}
	if got := a.aligns.Load(); got != 8 {
		t.Errorf("owner replica served %d/8 repeats", got)
	}
	if got := b.aligns.Load(); got != 0 {
		t.Errorf("sibling replica served %d repeats, want 0", got)
	}

	// Distinct bodies must reach both replicas.
	for i := 0; i < 64; i++ {
		resp := postAlign(t, front, []byte(fmt.Sprintf("spread body %d", i)))
		client.Drain(resp)
	}
	if a.aligns.Load() == 8 || b.aligns.Load() == 0 {
		t.Errorf("spread did not reach both replicas: a=%d b=%d", a.aligns.Load(), b.aligns.Load())
	}
}

// --- GET read-endpoint proxying ---

// searchQueryOwnedBy finds a /search query whose routing identity hashes onto
// the given replica.
func searchQueryOwnedBy(t *testing.T, g *Gateway, owner int) url.Values {
	t.Helper()
	for i := 0; i < 4096; i++ {
		vals := url.Values{"op": {"above"}, "value": {fmt.Sprintf("%d", i)}}
		key := append(append([]byte("/search"), 0), RoutingIdentity(vals)...)
		walk := g.ring.Walk(KeyHash(key), 2, nil)
		if len(walk) == 2 && walk[0] == owner {
			return vals
		}
	}
	t.Fatal("no query found for owner — ring degenerate?")
	return nil
}

// TestGetProxyCanonicalQueryAffinity: every spelling of the same search query
// — parameters reordered, noncanonical encoding — lands on the same replica,
// and the replica receives the canonical form. That shared identity is what
// keeps a query hitting the replica whose store already answered it.
func TestGetProxyCanonicalQueryAffinity(t *testing.T) {
	a, b := newFakeReplica("f1"), newFakeReplica("f1")
	defer a.srv.Close()
	defer b.srv.Close()
	g, front := newTestGateway(t, Config{}, a, b)

	vals := searchQueryOwnedBy(t, g, 0)
	canonical := vals.Encode()
	spellings := []string{
		canonical,
		"value=" + vals.Get("value") + "&op=above",  // reordered
		"op=above&value=" + vals.Get("value") + "&", // trailing separator
	}
	for _, qs := range spellings {
		resp, err := http.Get(front.URL + "/v1/search?" + qs)
		if err != nil {
			t.Fatal(err)
		}
		client.Drain(resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search %q: status = %d", qs, resp.StatusCode)
		}
	}
	if got := a.searches.Load(); got != int64(len(spellings)) {
		t.Errorf("owner served %d/%d spellings", got, len(spellings))
	}
	if got := b.searches.Load(); got != 0 {
		t.Errorf("sibling served %d spellings, want 0", got)
	}
	a.queryMu.Lock()
	last := a.lastQuery
	a.queryMu.Unlock()
	if last != canonical {
		t.Errorf("replica saw query %q, want canonical %q", last, canonical)
	}
}

// TestGetProxyCursorAffinity: following a cursor keeps hitting the replica
// that minted it. Pagination parameters are excluded from the routing
// identity — a cursor is an offset into one replica's result list, so page 2
// landing on a different replica would silently duplicate or skip items —
// but they still reach the replica in the forwarded query.
func TestGetProxyCursorAffinity(t *testing.T) {
	a, b := newFakeReplica("f1"), newFakeReplica("f1")
	defer a.srv.Close()
	defer b.srv.Close()
	g, front := newTestGateway(t, Config{}, a, b)

	vals := searchQueryOwnedBy(t, g, 0)
	pages := []string{
		vals.Encode(),                // page 1: no cursor
		vals.Encode() + "&cursor=20", // page 2: cursor minted by page 1
		vals.Encode() + "&cursor=40&limit=7",
	}
	for _, qs := range pages {
		resp, err := http.Get(front.URL + "/v1/search?" + qs)
		if err != nil {
			t.Fatal(err)
		}
		client.Drain(resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search %q: status = %d", qs, resp.StatusCode)
		}
	}
	if got := a.searches.Load(); got != int64(len(pages)) {
		t.Errorf("cursor-minting replica served %d/%d pages", got, len(pages))
	}
	if got := b.searches.Load(); got != 0 {
		t.Errorf("sibling replica served %d pages, want 0", got)
	}
	// The pagination parameters must still be forwarded upstream.
	a.queryMu.Lock()
	last := a.lastQuery
	a.queryMu.Unlock()
	wantVals := url.Values{}
	for k, vv := range vals {
		wantVals[k] = vv
	}
	wantVals.Set("cursor", "40")
	wantVals.Set("limit", "7")
	if want := wantVals.Encode(); last != want {
		t.Errorf("replica saw query %q, want %q", last, want)
	}
}

// TestGetProxyRelaysEnvelope: a /facts response comes back through the proxy
// verbatim, and wrong verbs are rejected at the gateway without burning
// replica work.
func TestGetProxyRelaysEnvelope(t *testing.T) {
	a := newFakeReplica("f1")
	defer a.srv.Close()
	_, front := newTestGateway(t, Config{}, a)

	resp, err := http.Get(front.URL + "/v1/facts?entity=rash")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("facts status = %d", resp.StatusCode)
	}
	var env struct {
		Result struct {
			Items      []map[string]any `json:"items"`
			NextCursor string           `json:"next_cursor"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if len(env.Result.Items) != 1 || env.Result.Items[0]["echo"] != "entity=rash" {
		t.Errorf("relayed facts = %+v", env.Result)
	}

	post, err := http.Post(front.URL+"/v1/search", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	client.Drain(post)
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/search status = %d, want 405", post.StatusCode)
	}
	if got := a.searches.Load(); got != 1 {
		t.Errorf("replica saw %d read requests, want only the GET", got)
	}
}

// --- retry budget ---

// TestRetryOnShed: an in-budget 429 from the owner gets exactly one attempt
// on the ring successor, invisible to the client.
func TestRetryOnShed(t *testing.T) {
	a, b := newFakeReplica("f1"), newFakeReplica("f1")
	defer a.srv.Close()
	defer b.srv.Close()
	// Ratio 1: every proxied request banks a full retry token.
	g, front := newTestGateway(t, Config{RetryBudgetRatio: 1}, a, b)

	a.shed.Store(true)
	resp := postAlign(t, front, bodyOwnedBy(t, g, 0))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shed owner with budget: status = %d, want 200 via successor", resp.StatusCode)
	}
	if got := b.aligns.Load(); got != 1 {
		t.Errorf("successor served %d requests, want 1", got)
	}
	snap := g.metrics.gw.Snapshot()
	if snap["retries"] != 1 {
		t.Errorf("retries counter = %d, want 1", snap["retries"])
	}
	if got := g.metrics.perReplica[0].sheds.Load(); got != 1 {
		t.Errorf("owner sheds counter = %d, want 1", got)
	}
}

// TestRetryBudgetExhaustion: out of budget, the owner's 429 is relayed to the
// client verbatim — Retry-After and envelope intact, never laundered into a
// 503 — and the exhaustion is counted.
func TestRetryBudgetExhaustion(t *testing.T) {
	a, b := newFakeReplica("f1"), newFakeReplica("f1")
	defer a.srv.Close()
	defer b.srv.Close()
	// Negative ratio disables retries entirely: the budget never accrues.
	g, front := newTestGateway(t, Config{RetryBudgetRatio: -1}, a, b)

	a.shed.Store(true)
	resp := postAlign(t, front, bodyOwnedBy(t, g, 0))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed without budget: status = %d, want 429 relayed", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("relayed 429 lost its Retry-After header")
	}
	var env api.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != api.CodeOverloaded {
		t.Errorf("relayed envelope error = %+v, want code %q", env.Error, api.CodeOverloaded)
	}
	if got := b.aligns.Load(); got != 0 {
		t.Errorf("successor served %d requests, want 0 (no budget)", got)
	}
	snap := g.metrics.gw.Snapshot()
	if snap["retry_budget_exhausted"] != 1 {
		t.Errorf("retry_budget_exhausted = %d, want 1", snap["retry_budget_exhausted"])
	}
	if snap["retries"] != 0 {
		t.Errorf("retries = %d, want 0", snap["retries"])
	}
}

// --- health and chaos ---

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestProberEjectReadmit: hysteresis both ways — a replica whose /healthz
// starts failing is ejected after FailThreshold consecutive failures, and
// readmitted only after ReviveThreshold consecutive successes.
func TestProberEjectReadmit(t *testing.T) {
	a, b := newFakeReplica("f1"), newFakeReplica("f1")
	defer a.srv.Close()
	defer b.srv.Close()
	g, _ := newTestGateway(t, Config{}, a, b)

	waitFor(t, "initial probes", func() bool { return g.prober.probes.Load() >= 2 })
	if !g.prober.Alive(0) || !g.prober.Alive(1) {
		t.Fatal("healthy replicas not alive after probes")
	}

	a.healthy.Store(false)
	waitFor(t, "ejection", func() bool { return !g.prober.Alive(0) })
	if g.prober.states[0].ejections.Load() < 1 {
		t.Error("ejection not counted")
	}
	if !g.prober.Alive(1) {
		t.Error("healthy sibling ejected too")
	}

	a.healthy.Store(true)
	waitFor(t, "readmission", func() bool { return g.prober.Alive(0) })
}

// TestBootProbeHonesty: a replica that is down at construction starts
// ejected — the boot probe seeds verdicts before the gateway serves traffic,
// so it never routes into a connection refusal it could have known about.
func TestBootProbeHonesty(t *testing.T) {
	dead := newFakeReplica("f1")
	dead.srv.Close()
	live := newFakeReplica("f1")
	defer live.srv.Close()
	g, front := newTestGateway(t, Config{}, dead, live)

	if g.prober.Alive(0) {
		t.Error("dead replica alive after boot probe")
	}
	if !g.prober.Alive(1) {
		t.Error("live replica not alive after boot probe")
	}
	resp := postAlign(t, front, []byte("any body"))
	defer client.Drain(resp)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d routing around boot-dead replica", resp.StatusCode)
	}
}

// TestGatewayHealthz: the gateway reports healthy exactly while it can serve
// traffic — at least one replica alive.
func TestGatewayHealthz(t *testing.T) {
	a := newFakeReplica("f1")
	defer a.srv.Close()
	_, front := newTestGateway(t, Config{}, a)

	c, err := client.New(front.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz with healthy fleet: %v", err)
	}
	a.healthy.Store(false)
	waitFor(t, "fleet-down healthz", func() bool {
		return c.Healthz(context.Background()) != nil
	})
}

// TestChaosReplicaKill kills a replica's listener mid-burst. With retry
// budget available the in-flight transport error falls through to the ring
// successor, the prober ejects the corpse, and the survivor absorbs the whole
// key space — no client-visible failures at any point.
func TestChaosReplicaKill(t *testing.T) {
	a, b := newFakeReplica("f1"), newFakeReplica("f1")
	defer b.srv.Close()
	g, front := newTestGateway(t, Config{RetryBudgetRatio: 1}, a, b)

	send := func(i int) int {
		resp := postAlign(t, front, []byte(fmt.Sprintf("chaos body %d", i)))
		defer client.Drain(resp)
		return resp.StatusCode
	}

	// Warm phase: both replicas take traffic.
	for i := 0; i < 32; i++ {
		if status := send(i); status != http.StatusOK {
			t.Fatalf("warm request %d: status %d", i, status)
		}
	}
	if a.aligns.Load() == 0 || b.aligns.Load() == 0 {
		t.Fatalf("warm burst skipped a replica: a=%d b=%d", a.aligns.Load(), b.aligns.Load())
	}

	// Kill replica A's listener outright — connections now refuse.
	a.srv.Close()
	for i := 32; i < 96; i++ {
		if status := send(i); status != http.StatusOK {
			t.Fatalf("post-kill request %d: status %d (retry/eject should hide the corpse)", i, status)
		}
	}
	waitFor(t, "corpse ejection", func() bool { return !g.prober.Alive(0) })

	// After ejection the survivor owns everything; the dead replica's counter
	// must stop moving.
	dead := a.aligns.Load()
	for i := 96; i < 128; i++ {
		if status := send(i); status != http.StatusOK {
			t.Fatalf("post-eject request %d: status %d", i, status)
		}
	}
	if got := a.aligns.Load(); got != dead {
		t.Errorf("ejected replica still receiving traffic: %d → %d", dead, got)
	}
	snap := g.metrics.gw.Snapshot()
	if snap["upstream_transport_errors"] == 0 {
		t.Error("transport errors against the corpse not counted")
	}
	if snap["no_healthy_replica"] != 0 || snap["upstream_unavailable"] != 0 {
		t.Errorf("chaos leaked client-visible unavailability: %v", snap)
	}
}

// --- aggregated metrics ---

func gatewayMetricsDoc(t *testing.T, front *httptest.Server) map[string]any {
	t.Helper()
	resp, err := http.Get(front.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// schemaLines renders the shape of a decoded JSON value — field paths and
// types, never values — one line per node, sorted keys. Arrays describe their
// first element.
func schemaLines(prefix string, v any, out *[]string) {
	switch t := v.(type) {
	case map[string]any:
		*out = append(*out, prefix+": object")
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			schemaLines(prefix+"."+k, t[k], out)
		}
	case []any:
		*out = append(*out, prefix+": array")
		if len(t) > 0 {
			schemaLines(prefix+"[]", t[0], out)
		}
	case float64:
		*out = append(*out, prefix+": number")
	case string:
		*out = append(*out, prefix+": string")
	case bool:
		*out = append(*out, prefix+": boolean")
	case nil:
		*out = append(*out, prefix+": null")
	default:
		*out = append(*out, fmt.Sprintf("%s: UNEXPECTED %T", prefix, v))
	}
}

func metricsSchema(t *testing.T, front *httptest.Server) string {
	t.Helper()
	var lines []string
	schemaLines("metrics", gatewayMetricsDoc(t, front), &lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestMetricsAggregation: flat counter sections are key-wise sums of the
// replica scrapes, and the model section reports the consensus fingerprint.
func TestMetricsAggregation(t *testing.T) {
	a, b := newFakeReplica("f1"), newFakeReplica("f1")
	defer a.srv.Close()
	defer b.srv.Close()
	_, front := newTestGateway(t, Config{}, a, b)

	a.hits.Store(3)
	b.hits.Store(4)
	m := gatewayMetricsDoc(t, front)
	serving, ok := m["serving"].(map[string]any)
	if !ok {
		t.Fatalf("serving section missing: %v", m["serving"])
	}
	if got := serving["hits"].(float64); got != 7 {
		t.Errorf("aggregated hits = %v, want 7", got)
	}
	model := m["model"].(map[string]any)
	if model["fingerprint"] != "f1" || model["consistent"] != true {
		t.Errorf("model section = %v, want consensus f1", model)
	}
}

// TestMetricsFingerprintDivergence: replicas answering with different model
// fingerprints — shards computing different answers for the same keys — must
// be flagged.
func TestMetricsFingerprintDivergence(t *testing.T) {
	a, b := newFakeReplica("f1"), newFakeReplica("f2")
	defer a.srv.Close()
	defer b.srv.Close()
	_, front := newTestGateway(t, Config{}, a, b)

	model := gatewayMetricsDoc(t, front)["model"].(map[string]any)
	if model["consistent"] != false {
		t.Errorf("divergent fleet reported consistent: %v", model)
	}
}

// TestGatewayMetricsSchemaGolden locks the aggregated /metrics schema. Like
// briq-server's, it must be identical cold, after traffic, and — because
// every merged section is seeded with its zeroed schema — even when every
// replica scrape fails. Regenerate deliberately with:
//
//	go test ./internal/gateway -run TestGatewayMetricsSchemaGolden -update
func TestGatewayMetricsSchemaGolden(t *testing.T) {
	a, b := newFakeReplica("f1"), newFakeReplica("f1")
	g, front := newTestGateway(t, Config{RetryBudgetRatio: 1}, a, b)
	cold := metricsSchema(t, front)

	// Traffic: a success, a shed+retry, and a 405.
	resp := postAlign(t, front, bodyOwnedBy(t, g, 0))
	client.Drain(resp)
	a.shed.Store(true)
	resp = postAlign(t, front, bodyOwnedBy(t, g, 0))
	client.Drain(resp)
	a.shed.Store(false)
	if resp, err := http.Get(front.URL + "/v1/align"); err == nil {
		client.Drain(resp)
	}
	warm := metricsSchema(t, front)
	if cold != warm {
		t.Errorf("schema changed between cold gateway and after traffic:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}

	// Kill both replicas: every scrape fails, the schema must hold.
	a.srv.Close()
	b.srv.Close()
	dark := metricsSchema(t, front)
	if warm != dark {
		t.Errorf("schema changed when replica scrapes fail:\nwarm:\n%s\ndark:\n%s", warm, dark)
	}

	golden := filepath.Join("testdata", "metrics_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(warm), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if warm != string(want) {
		t.Errorf("aggregated /metrics schema drifted from golden.\nIf intentional, update dashboards and regenerate with -update.\ngot:\n%s\nwant:\n%s", warm, want)
	}
}

// TestRouteSurfaceMatchesServer: the gateway mounts the shared route table —
// versioned paths live, legacy aliases deprecated — so it is a drop-in front
// for anything that spoke to briq-server directly.
func TestRouteSurfaceMatchesServer(t *testing.T) {
	a := newFakeReplica("f1")
	defer a.srv.Close()
	_, front := newTestGateway(t, Config{}, a)

	for _, r := range api.Surface() {
		for _, tc := range []struct {
			path       string
			deprecated bool
		}{
			{api.Versioned(r.Path), false},
			{r.Path, true},
		} {
			resp, err := http.Get(front.URL + tc.path)
			if err != nil {
				t.Fatalf("GET %s: %v", tc.path, err)
			}
			client.Drain(resp)
			if resp.StatusCode == http.StatusNotFound {
				t.Errorf("route %s not mounted", tc.path)
			}
			if got := resp.Header.Get(api.DeprecationHeader) != ""; got != tc.deprecated {
				t.Errorf("%s: deprecation header present = %v, want %v", tc.path, got, tc.deprecated)
			}
		}
	}
}
