// Package gateway shards briq traffic across a pool of briq-server replicas
// booted from one model bundle.
//
// The router hashes each request's content identity — endpoint plus raw body
// for the POST alignment endpoints, endpoint plus the canonicalized
// query-identity parameters (pagination excluded, see RoutingIdentity) for
// the GET read endpoints (search, facts) — onto a consistent-hash ring
// (Ring), so byte-identical requests always land on the same replica and each
// replica's LRU shard (and aligned-corpus store) stays hot on its slice of
// the key space. The fleet's aggregate cache capacity therefore scales with
// the replica count, which is where the gateway's throughput-per-replica
// win comes from on cache-bound workloads.
//
// The same sharding makes fleet reads per-shard, not corpus-wide: POST
// traffic shards documents across replicas by content, each replica's store
// indexes only the documents it aligned, and a GET /v1/search or /v1/facts
// is answered by exactly one replica — there is no scatter-gather. A query
// therefore sees one replica's slice of the aligned corpus (consistently:
// the same query always sees the same slice, and every page of it). For
// corpus-wide search, run a single briq-server, or point alignment traffic
// for one corpus at one replica. docs/OPERATIONS.md spells out the
// operational consequences.
//
// Liveness is layered over the immutable ring by a health prober
// (periodic /healthz with eject/readmit hysteresis, plus in-band transport
// failures); a dead replica's arc drains to its ring successors and comes
// back on readmission without moving anyone else's keys. Overload answers
// (429/504) and transport failures are retried once toward the ring
// successor under a token retry budget — beyond the budget the replica's
// answer is surfaced to the client verbatim, Retry-After and all.
//
// GET /metrics answers the same top-level schema as a single briq-server —
// serving counters summed and latency histograms merged across replica
// scrapes — plus a "gateway" section; a load harness pointed at the gateway
// cross-checks its accounting exactly as it would against one server.
package gateway

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"runtime/debug"
	"sync"
	"time"
	"unicode/utf8"

	"briq/client"
	"briq/internal/api"
)

// maxBody caps proxied request bodies, mirroring briq-server's cap so the
// gateway sheds oversized requests without burning replica work.
const maxBody = 8 << 20

// Config assembles a Gateway.
type Config struct {
	// Replicas are the briq-server base URLs to shard across. Order does not
	// affect routing (the ring hashes URLs), but keep it stable anyway: the
	// metrics section reports replicas in this order.
	Replicas []string
	// VNodes is the per-replica virtual-node count; 0 means DefaultVNodes.
	VNodes int
	// ProbeInterval is the health-probe period; 0 means
	// DefaultProbeInterval.
	ProbeInterval time.Duration
	// FailThreshold / ReviveThreshold set the eject/readmit hysteresis;
	// 0 means the defaults.
	FailThreshold   int
	ReviveThreshold int
	// RetryBudgetRatio bounds retries to this fraction of proxied requests
	// (a token bucket refilled per request). 0 means DefaultRetryBudgetRatio;
	// negative disables retries.
	RetryBudgetRatio float64
	// UpstreamTimeout bounds one proxied upstream round trip; 0 means
	// DefaultUpstreamTimeout.
	UpstreamTimeout time.Duration
}

// DefaultRetryBudgetRatio allows one retry per ten proxied requests —
// enough to absorb a replica blip, too few to double the fleet's load when
// everything is shedding.
const DefaultRetryBudgetRatio = 0.1

// DefaultUpstreamTimeout bounds one upstream round trip.
const DefaultUpstreamTimeout = 90 * time.Second

// retryBudgetCap bounds how many retry tokens can bank up during quiet
// periods.
const retryBudgetCap = 64

// Gateway routes requests across the replica fleet. Construct with New,
// mount Routes, and Stop when done.
type Gateway struct {
	ring    *Ring
	clients []*client.Client
	prober  *prober
	metrics *metrics
	start   time.Time

	budgetMu sync.Mutex
	budget   float64
	ratio    float64
}

// New builds the gateway and starts its health prober.
func New(cfg Config) (*Gateway, error) {
	ring, err := NewRing(cfg.Replicas, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	timeout := cfg.UpstreamTimeout
	if timeout <= 0 {
		timeout = DefaultUpstreamTimeout
	}
	// One transport for the whole fleet: the gateway multiplexes many client
	// connections onto pooled upstream connections.
	transport := &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
		IdleConnTimeout:     90 * time.Second,
	}
	clients := make([]*client.Client, len(ring.Replicas()))
	for i, base := range ring.Replicas() {
		c, err := client.New(base, client.WithHTTPClient(&http.Client{
			Timeout:   timeout,
			Transport: transport,
		}))
		if err != nil {
			return nil, fmt.Errorf("gateway: replica %d: %w", i, err)
		}
		clients[i] = c
	}
	ratio := cfg.RetryBudgetRatio
	switch {
	case ratio == 0:
		ratio = DefaultRetryBudgetRatio
	case ratio < 0:
		ratio = 0
	}
	g := &Gateway{
		ring:    ring,
		clients: clients,
		prober:  newProber(clients, cfg.ProbeInterval, cfg.FailThreshold, cfg.ReviveThreshold),
		metrics: newMetrics(len(clients)),
		start:   time.Now(),
		ratio:   ratio,
	}
	g.prober.bootProbe()
	go g.prober.run()
	return g, nil
}

// Stop halts the health prober. In-flight proxied requests finish on their
// own.
func (g *Gateway) Stop() { g.prober.Stop() }

// Routes builds the gateway's handler tree from the same shared route table
// briq-server mounts — versioned paths plus deprecated legacy aliases — so
// the two binaries expose an identical surface.
func (g *Gateway) Routes() http.Handler {
	mux := http.NewServeMux()
	for _, r := range api.Surface() {
		var h http.HandlerFunc
		switch r.Name {
		case "metrics":
			h = g.handleMetrics
		case "healthz":
			h = g.handleHealthz
		case "search", "facts":
			h = g.proxyGetHandler(r)
		case "ingest":
			h = g.proxyIngestHandler(r)
		default: // align, align_batch, summarize: the proxy path
			h = g.proxyHandler(r)
		}
		api.Mount(mux, r, g.instrument(r.Name, h))
	}
	return mux
}

// instrument wraps a handler with request counting, latency observation and
// panic recovery, mirroring briq-server's middleware.
func (g *Gateway) instrument(name string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		g.metrics.requests.Inc(name)
		g.metrics.requests.Inc("total")
		defer func() {
			if v := recover(); v != nil {
				g.metrics.errors.Inc("panics")
				api.WriteError(w, api.CodeInternal, "internal gateway error")
				log.Printf("gateway: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			}
			g.metrics.handlers.Observe(name, time.Since(start))
		}()
		h(w, r)
	})
}

// allowRetry consumes one retry token, refilled at ratio tokens per proxied
// request — deterministic, load-proportional, and capped.
func (g *Gateway) allowRetry() bool {
	g.budgetMu.Lock()
	defer g.budgetMu.Unlock()
	if g.budget < 1 {
		return false
	}
	g.budget--
	return true
}

// accrueRetryBudget banks this request's share of the retry budget.
func (g *Gateway) accrueRetryBudget() {
	g.budgetMu.Lock()
	defer g.budgetMu.Unlock()
	g.budget += g.ratio
	if g.budget > retryBudgetCap {
		g.budget = retryBudgetCap
	}
}

// proxyHandler builds the sharded proxy path for one alignment endpoint.
func (g *Gateway) proxyHandler(route api.Route) http.HandlerFunc {
	versioned := api.Versioned(route.Path)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			api.WriteError(w, api.CodeMethodNotAllowed, "POST only")
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			api.WriteError(w, api.CodeBadRequest, fmt.Sprintf("read body: %v", err))
			return
		}
		if len(body) == 0 {
			api.WriteError(w, api.CodeBadRequest, "empty body")
			return
		}
		if !utf8.Valid(body) {
			api.WriteError(w, api.CodeBadRequest, "body is not valid UTF-8 text")
			return
		}
		// The routing identity is endpoint + body — the same bytes the
		// replica's serving layer hashes into its cache key — so identical
		// requests always land on the replica whose shard holds the result.
		key := make([]byte, 0, len(route.Path)+1+len(body))
		key = append(key, route.Path...)
		key = append(key, 0)
		key = append(key, body...)
		g.forward(w, r, http.MethodPost, versioned, r.Header.Get("Content-Type"), body, KeyHash(key))
	}
}

// proxyGetHandler builds the sharded proxy path for one read endpoint
// (search, facts). The routing identity is the route plus the canonicalized
// query-identity parameters — url.Values.Encode sorts parameters, so every
// spelling of the same query hashes identically and lands on the replica
// whose store answered it before. Pagination parameters (cursor, limit) are
// excluded from the identity: a cursor is an offset into one replica's
// result list, so every page of one query must land on the replica that
// minted it. The full canonical form — pagination included — is what gets
// forwarded upstream.
func (g *Gateway) proxyGetHandler(route api.Route) http.HandlerFunc {
	versioned := api.Versioned(route.Path)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			api.WriteError(w, api.CodeMethodNotAllowed, "GET only")
			return
		}
		vals := r.URL.Query()
		canonical := vals.Encode()
		identity := RoutingIdentity(vals)
		key := make([]byte, 0, len(route.Path)+1+len(identity))
		key = append(key, route.Path...)
		key = append(key, 0)
		key = append(key, identity...)
		upstream := versioned
		if canonical != "" {
			upstream += "?" + canonical
		}
		g.forward(w, r, http.MethodGet, upstream, "", nil, KeyHash(key))
	}
}

// RoutingIdentity canonicalizes a read endpoint's query parameters into the
// string the gateway hashes for replica routing: parameters sorted by
// url.Values.Encode, with the pagination parameters (cursor, limit) removed.
// Cursors are per-replica offsets, so routing on them would send page 2 of a
// query to a different replica than the one whose result list minted the
// cursor on page 1.
func RoutingIdentity(vals url.Values) string {
	if vals.Has("cursor") || vals.Has("limit") {
		clean := url.Values{}
		for k, vv := range vals {
			if k == "cursor" || k == "limit" {
				continue
			}
			clean[k] = vv
		}
		vals = clean
	}
	return vals.Encode()
}

// forward walks the hash's candidate replicas — the owner plus one ring
// successor — relaying the first upstream answer and spending the retry
// budget on transport failures and overload sheds along the way.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, method, upstreamPath, contentType string, body []byte, hash uint64) {
	g.accrueRetryBudget()
	g.metrics.gw.Inc("proxied")

	candidates := g.ring.Walk(hash, 2, g.prober.Alive)
	if len(candidates) == 0 {
		g.metrics.gw.Inc("no_healthy_replica")
		api.WriteError(w, api.CodeUnavailable, "no healthy replica")
		return
	}

	for i, idx := range candidates {
		resp, err := g.clients[idx].Do(r.Context(), method, upstreamPath, contentType, body)
		if err != nil {
			// No response arrived: count it against the replica's
			// health and, budget permitting, fall through to the ring
			// successor.
			g.metrics.gw.Inc("upstream_transport_errors")
			g.metrics.perReplica[idx].errors.Add(1)
			g.prober.ReportFailure(idx)
			if r.Context().Err() != nil {
				api.WriteError(w, api.CodeDeadline, "request cancelled while proxying")
				return
			}
			if i+1 < len(candidates) {
				if g.allowRetry() {
					g.metrics.gw.Inc("retries")
					continue
				}
				g.metrics.gw.Inc("retry_budget_exhausted")
			}
			break // → 503 below: there is no upstream answer to surface
		}
		g.metrics.perReplica[idx].forwarded.Add(1)
		if retryableStatus(resp.StatusCode) && i+1 < len(candidates) {
			// Overload shed by the owner: one in-budget attempt on the
			// ring successor, whose shard may have capacity. Out of
			// budget, the shed is surfaced verbatim below — never
			// laundered into a 503.
			if g.allowRetry() {
				client.Drain(resp)
				g.metrics.perReplica[idx].sheds.Add(1)
				g.metrics.gw.Inc("retries")
				continue
			}
			g.metrics.gw.Inc("retry_budget_exhausted")
		}
		relay(w, resp)
		return
	}
	// Every reachable candidate failed at the transport: nothing
	// arrived that could be surfaced, so answer unavailable and let the
	// client's backoff loop own what happens next.
	g.metrics.gw.Inc("upstream_unavailable")
	api.WriteError(w, api.CodeUnavailable, "no replica could serve the request")
}

// retryableStatus reports the overload answers worth one sibling attempt:
// admission-control sheds and deadline exhaustion. Everything else — 422s,
// 400s, 200s — is the request's real answer on any replica.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusGatewayTimeout
}

// relay copies an upstream response to the client verbatim — status, the
// envelope body, and the headers clients key on (Content-Type, Retry-After).
// The gateway must not re-encode bodies: byte-identical passthrough is what
// keeps cached and fresh, direct and proxied responses indistinguishable.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After", api.DeprecationHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// Headers are committed; nothing to do but stop copying.
		_ = err
	}
}

// handleHealthz answers 200 while at least one replica is healthy — the
// gateway is "up" exactly when it can serve traffic.
func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	for i := range g.clients {
		if g.prober.Alive(i) {
			fmt.Fprintln(w, "ok")
			return
		}
	}
	api.WriteError(w, api.CodeUnavailable, "no healthy replica")
}
