package gateway

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"briq/client"
)

// replicaState tracks one replica's liveness as the prober sees it.
// Transitions are hysteretic: FailThreshold consecutive probe failures eject
// a replica, ReviveThreshold consecutive successes readmit it — a single
// dropped probe must not reshuffle an arc of the key space.
type replicaState struct {
	healthy    atomic.Bool
	consecFail atomic.Int64
	consecOK   atomic.Int64
	ejections  atomic.Int64
}

// prober periodically probes every replica's /healthz and maintains the
// healthy flags the router reads. In-band signals feed it too: a transport
// error on a proxied request counts as a probe failure (ReportFailure), so a
// crashed replica is ejected at the next request rather than the next tick.
type prober struct {
	clients  []*client.Client
	states   []*replicaState
	interval time.Duration
	fail     int
	revive   int
	probes   atomic.Int64 // total probes issued, for the metrics section

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

const (
	// DefaultProbeInterval is how often each replica's /healthz is probed.
	DefaultProbeInterval = 500 * time.Millisecond
	// DefaultFailThreshold ejects a replica after this many consecutive
	// failed probes (or in-band transport failures).
	DefaultFailThreshold = 2
	// DefaultReviveThreshold readmits an ejected replica after this many
	// consecutive successful probes.
	DefaultReviveThreshold = 2
	// probeTimeout bounds one /healthz round trip.
	probeTimeout = time.Second
)

func newProber(clients []*client.Client, interval time.Duration, fail, revive int) *prober {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	if fail <= 0 {
		fail = DefaultFailThreshold
	}
	if revive <= 0 {
		revive = DefaultReviveThreshold
	}
	states := make([]*replicaState, len(clients))
	for i := range states {
		// Verdicts start pessimistic; bootProbe seeds them before the gateway
		// serves traffic.
		states[i] = &replicaState{}
	}
	return &prober{
		clients:  clients,
		states:   states,
		interval: interval,
		fail:     fail,
		revive:   revive,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// bootProbe seeds every replica's verdict synchronously, before the gateway
// serves traffic: healthy exactly when the boot probe succeeds, no
// hysteresis — there is no history to damp yet. This keeps the gateway's own
// /healthz honest from its first request: a fleet booting together reports
// unavailable until a replica actually answers, rather than optimistically
// routing into connection refusals.
func (p *prober) bootProbe() {
	var wg sync.WaitGroup
	for i := range p.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.probes.Add(1)
			ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
			defer cancel()
			p.states[i].healthy.Store(p.clients[i].Healthz(ctx) == nil)
		}(i)
	}
	wg.Wait()
}

// run probes until Stop; call in a goroutine.
func (p *prober) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.probeAll()
		}
	}
}

// probeAll probes every replica once, concurrently — a hung replica must not
// delay the others' verdicts.
func (p *prober) probeAll() {
	var wg sync.WaitGroup
	for i := range p.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.probes.Add(1)
			ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
			defer cancel()
			if err := p.clients[i].Healthz(ctx); err != nil {
				p.ReportFailure(i)
			} else {
				p.reportSuccess(i)
			}
		}(i)
	}
	wg.Wait()
}

func (p *prober) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// Alive reports replica i's current verdict; this is the predicate the ring
// routes through.
func (p *prober) Alive(i int) bool { return p.states[i].healthy.Load() }

// ReportFailure records a failed probe or an in-band transport failure
// against replica i, ejecting it once the failure threshold is met.
func (p *prober) ReportFailure(i int) {
	s := p.states[i]
	s.consecOK.Store(0)
	if s.consecFail.Add(1) >= int64(p.fail) && s.healthy.CompareAndSwap(true, false) {
		s.ejections.Add(1)
	}
}

// reportSuccess records a successful probe, readmitting an ejected replica
// once the revive threshold is met. Only probes readmit: a replica that
// happens to answer one proxied request is not yet trusted with its arc.
func (p *prober) reportSuccess(i int) {
	s := p.states[i]
	s.consecFail.Store(0)
	if !s.healthy.Load() {
		if s.consecOK.Add(1) >= int64(p.revive) {
			s.healthy.Store(true)
		}
		return
	}
	s.consecOK.Add(1)
}
