package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over a fixed replica set. Each replica owns
// DefaultVNodes points on the ring (derived from its URL, so the layout is a
// pure function of the configuration — every gateway process fronting the
// same fleet routes identically, and a restart changes nothing). A request
// key is routed to the first point clockwise from its hash.
//
// Consistent hashing is what makes a replica fleet a *sharded cache* rather
// than N copies of the same cache: each replica's LRU holds only its slice
// of the key space, so the fleet's aggregate cache capacity scales with N,
// and ejecting a replica moves only that replica's arc to its successors
// instead of reshuffling every key.
//
// The ring itself is immutable after New; liveness is layered on top by the
// caller passing an alive() predicate to Owner/Walk, so health flaps never
// rebuild the ring (and keys owned by healthy replicas never move when an
// unrelated replica is ejected).
type Ring struct {
	replicas []string
	points   []ringPoint // sorted by hash
	vnodes   int
}

type ringPoint struct {
	hash    uint64
	replica int
}

// DefaultVNodes is the per-replica virtual-node count: enough points that
// arcs even out (the largest replica share stays within a few percent of
// 1/N) while keeping the ring binary-search small.
const DefaultVNodes = 128

// NewRing builds the ring for an ordered replica list. The replica list is
// part of the fleet configuration: same list (in any order) plus same vnode
// count ⇒ same routing.
func NewRing(replicas []string, vnodes int) (*Ring, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("gateway: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(replicas))
	r := &Ring{
		replicas: append([]string(nil), replicas...),
		points:   make([]ringPoint, 0, len(replicas)*vnodes),
		vnodes:   vnodes,
	}
	for i, rep := range replicas {
		if seen[rep] {
			return nil, fmt.Errorf("gateway: duplicate replica %q", rep)
		}
		seen[rep] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    pointHash(rep, v),
				replica: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A 64-bit collision between two replicas' points is astronomically
		// unlikely but must still order deterministically.
		return r.points[a].replica < r.points[b].replica
	})
	return r, nil
}

// pointHash derives a ring position for one virtual node from the replica
// URL — stable across processes and restarts.
func pointHash(replica string, vnode int) uint64 {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d", replica, vnode)
	return binary.BigEndian.Uint64(h.Sum(nil))
}

// KeyHash positions a request key on the ring: SHA-256 of the routing
// identity (endpoint + body), truncated to the ring's 64-bit space.
func KeyHash(key []byte) uint64 {
	sum := sha256.Sum256(key)
	return binary.BigEndian.Uint64(sum[:])
}

// Replicas returns the configured replica list in ring order (configuration
// order, not hash order).
func (r *Ring) Replicas() []string { return r.replicas }

// Owner returns the index of the replica owning hash among those for which
// alive returns true, or -1 when none is alive. A nil alive means all
// replicas count.
func (r *Ring) Owner(hash uint64, alive func(int) bool) int {
	owners := r.Walk(hash, 1, alive)
	if len(owners) == 0 {
		return -1
	}
	return owners[0]
}

// Walk returns up to n distinct alive replicas in ring order starting at the
// owner of hash: the owner first, then the successors a retry should fall
// through to. Successor order is a property of the ring, so every gateway
// retries toward the same sibling and the sibling's cache shard warms
// deterministically under a replica outage.
func (r *Ring) Walk(hash uint64, n int, alive func(int) bool) []int {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	var out []int
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.replica] {
			continue
		}
		seen[p.replica] = true
		if alive == nil || alive(p.replica) {
			out = append(out, p.replica)
		}
	}
	return out
}
