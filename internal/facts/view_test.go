package facts

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func randomFacts(rng *rand.Rand, n int) []Fact {
	entities := []string{"acme", "widget net", "search co", "bed bath"}
	measures := []string{"income", "revenue", "q3 2012"}
	units := []string{"", "USD"}
	out := make([]Fact, n)
	for i := range out {
		out[i] = Fact{
			Entity:     entities[rng.Intn(len(entities))],
			Measure:    measures[rng.Intn(len(measures))],
			Value:      float64(rng.Intn(5)) * 10,
			Unit:       units[rng.Intn(len(units))],
			Agg:        "single-cell",
			DocID:      "d0",
			Confidence: float64(rng.Intn(10)) / 10,
		}
	}
	return out
}

// TestViewEqualsDedupe: merging batches incrementally must equal Dedupe over
// the concatenation, for every prefix of batches.
func TestViewEqualsDedupe(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := NewView()
	var all []Fact
	for batch := 0; batch < 20; batch++ {
		fs := randomFacts(rng, 1+rng.Intn(8))
		v.Add(fs)
		all = append(all, fs...)

		want := Dedupe(all)
		got := v.All()
		if len(got) != len(want) {
			t.Fatalf("batch %d: view has %d facts, Dedupe %d", batch, len(got), len(want))
		}
		// Compare as sets keyed by identity; ordering ties beyond
		// (confidence, entity, measure) are unspecified in both.
		key := func(f Fact) Fact { return f }
		sortFacts := func(fs []Fact) {
			sort.Slice(fs, func(i, j int) bool {
				a, b := fs[i], fs[j]
				if a.Entity != b.Entity {
					return a.Entity < b.Entity
				}
				if a.Measure != b.Measure {
					return a.Measure < b.Measure
				}
				if a.Unit != b.Unit {
					return a.Unit < b.Unit
				}
				return a.Value < b.Value
			})
		}
		gs, ws := append([]Fact(nil), got...), append([]Fact(nil), want...)
		sortFacts(gs)
		sortFacts(ws)
		for i := range gs {
			if key(gs[i]) != key(ws[i]) {
				t.Fatalf("batch %d, fact %d: view %+v != dedupe %+v", batch, i, gs[i], ws[i])
			}
		}
	}
	if v.Offered() != len(all) {
		t.Errorf("Offered() = %d, want %d", v.Offered(), len(all))
	}
}

func TestViewEntityOrdering(t *testing.T) {
	v := NewView()
	v.Add([]Fact{
		{Entity: "acme", Measure: "revenue", Value: 20, Confidence: 0.5},
		{Entity: "acme", Measure: "income", Value: 7, Confidence: 0.9},
		{Entity: "acme", Measure: "income", Value: 7, Confidence: 0.4}, // loses
		{Entity: "other", Measure: "income", Value: 3, Confidence: 0.8},
	})
	got := v.Entity("acme")
	if len(got) != 2 {
		t.Fatalf("Entity(acme) = %d facts, want 2", len(got))
	}
	if got[0].Measure != "income" || got[0].Confidence != 0.9 {
		t.Errorf("top fact = %+v, want income@0.9", got[0])
	}
	if got[1].Measure != "revenue" {
		t.Errorf("second fact = %+v, want revenue", got[1])
	}
	if ents := v.Entities(); !reflect.DeepEqual(ents, []string{"acme", "other"}) {
		t.Errorf("Entities() = %v", ents)
	}
	if v.Size() != 3 {
		t.Errorf("Size() = %d, want 3", v.Size())
	}
	if got := v.Entity("missing"); len(got) != 0 {
		t.Errorf("Entity(missing) = %v, want empty", got)
	}
}

func TestViewTieKeepsFirst(t *testing.T) {
	v := NewView()
	first := Fact{Entity: "acme", Measure: "income", Value: 7, Confidence: 0.5, DocID: "d-first"}
	second := first
	second.DocID = "d-second"
	v.Add([]Fact{first})
	v.Add([]Fact{second})
	got := v.Entity("acme")
	if len(got) != 1 || got[0].DocID != "d-first" {
		t.Errorf("tie should keep the first fact, got %+v", got)
	}
}

func TestViewFromExtract(t *testing.T) {
	doc, als := alignedDoc(t)
	fs := Extract(doc, als)
	v := NewView()
	v.Add(fs)
	if v.Size() != len(fs) {
		t.Fatalf("view size %d != %d extracted (Extract already dedupes)", v.Size(), len(fs))
	}
	if got := v.Entity("bed bath"); len(got) == 0 {
		t.Error("no facts for 'bed bath'")
	}
}
