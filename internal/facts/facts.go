// Package facts turns quantity alignments into knowledge-base facts — the
// augmentation use case of §I: "quantity alignment links the text to data
// from the tables, and vice versa. Hence, it can be combined with entity
// linking techniques to augment knowledge bases."
//
// A fact is (entity, measure, value, unit) with provenance: the entity comes
// from the row header (lightly canonicalized), the measure from the column
// header and caption, and the value from the aligned cell. Text-confirmed
// facts — cells that the surrounding prose actually discusses — carry the
// alignment's confidence; they are exactly the cells a knowledge base wants
// first.
package facts

import (
	"sort"
	"strings"

	"briq/internal/core"
	"briq/internal/document"
	"briq/internal/quantity"
)

// Fact is one extracted quantity fact.
type Fact struct {
	Entity  string  `json:"entity"`  // canonicalized row header
	Measure string  `json:"measure"` // column header (+ caption hint)
	Value   float64 `json:"value"`
	Unit    string  `json:"unit,omitempty"`
	Agg     string  `json:"agg"` // single-cell or the aggregation that produced it

	// Provenance.
	DocID       string  `json:"doc_id"`
	TableKey    string  `json:"table_key"`
	TextSurface string  `json:"text_surface"` // the confirming text mention
	Confidence  float64 `json:"confidence"`   // the alignment's overall score
}

// Extract derives facts from a document's alignments. Single-cell alignments
// yield one fact each; aggregate alignments yield one fact per input cell
// region is out of scope — they instead yield a fact for the aggregate
// itself with the shared row/column header as entity/measure.
func Extract(doc *document.Document, alignments []core.Alignment) []Fact {
	var out []Fact
	for _, a := range alignments {
		tm := doc.TableMentions[a.TableIndex]
		tbl := tm.Table

		fact := Fact{
			Value:       tm.Value,
			Unit:        tm.Unit,
			Agg:         tm.Agg.String(),
			DocID:       doc.ID,
			TableKey:    a.TableKey,
			TextSurface: a.TextSurface,
			Confidence:  a.Score,
		}

		if tm.Agg == quantity.SingleCell {
			ref := tm.Cells[0]
			fact.Entity = CanonicalEntity(header(tbl.RowHeaders, ref.Row))
			fact.Measure = measureName(header(tbl.ColHeaders, ref.Col), tbl.Caption)
		} else {
			// Aggregates: the constant line's header names the scope.
			rows := map[int]bool{}
			cols := map[int]bool{}
			for _, ref := range tm.Cells {
				rows[ref.Row] = true
				cols[ref.Col] = true
			}
			switch {
			case len(rows) == 1:
				fact.Entity = CanonicalEntity(header(tbl.RowHeaders, tm.Cells[0].Row))
				fact.Measure = measureName(tm.Agg.String(), tbl.Caption)
			case len(cols) == 1:
				fact.Entity = CanonicalEntity(tbl.Caption)
				fact.Measure = measureName(tm.Agg.String()+" of "+header(tbl.ColHeaders, tm.Cells[0].Col), "")
			default:
				continue // no single naming line: skip
			}
		}
		if fact.Entity == "" || fact.Measure == "" {
			continue
		}
		out = append(out, fact)
	}
	return Dedupe(out)
}

func header(headers []string, idx int) string {
	if idx < len(headers) {
		return strings.TrimSpace(headers[idx])
	}
	return ""
}

func measureName(column, caption string) string {
	column = strings.TrimSpace(strings.ToLower(column))
	if column != "" {
		return column
	}
	return strings.TrimSpace(strings.ToLower(caption))
}

// entitySuffixes are organization/qualifier suffixes stripped during
// canonicalization, the light-weight stand-in for entity linking against a
// knowledge base.
var entitySuffixes = []string{
	"inc", "inc.", "corp", "corp.", "ltd", "ltd.", "llc", "plc",
	"group", "co", "co.", "company", "party", "district", "region",
}

// CanonicalEntity normalizes an entity surface form: lowercase, collapsed
// whitespace, organization suffixes stripped.
func CanonicalEntity(s string) string {
	words := strings.Fields(strings.ToLower(s))
	for len(words) > 0 {
		last := words[len(words)-1]
		stripped := false
		for _, suf := range entitySuffixes {
			if last == suf {
				words = words[:len(words)-1]
				stripped = true
				break
			}
		}
		if !stripped {
			break
		}
	}
	return strings.Join(words, " ")
}

// Dedupe keeps the highest-confidence fact per (entity, measure, value,
// unit) and returns facts sorted by confidence descending (ties by entity).
func Dedupe(facts []Fact) []Fact {
	type key struct {
		entity, measure, unit string
		value                 float64
	}
	best := map[key]Fact{}
	for _, f := range facts {
		k := key{f.Entity, f.Measure, f.Unit, f.Value}
		if cur, ok := best[k]; !ok || f.Confidence > cur.Confidence {
			best[k] = f
		}
	}
	out := make([]Fact, 0, len(best))
	for _, f := range best {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Entity != out[j].Entity {
			return out[i].Entity < out[j].Entity
		}
		return out[i].Measure < out[j].Measure
	})
	return out
}

// View is an incrementally-maintained per-entity index of facts. Adding
// facts one batch at a time yields the same state as Dedupe over the
// concatenation of all batches in order: the first fact wins a confidence
// tie, a strictly higher confidence replaces.
type View struct {
	best  map[viewKey]Fact
	count int // facts offered via Add, before dedup
}

type viewKey struct {
	entity, measure, unit string
	value                 float64
}

// NewView returns an empty per-entity facts view.
func NewView() *View {
	return &View{best: make(map[viewKey]Fact)}
}

// Add merges a batch of facts into the view and returns how many distinct
// (entity, measure, value, unit) keys it created or improved.
func (v *View) Add(facts []Fact) int {
	changed := 0
	for _, f := range facts {
		v.count++
		k := viewKey{f.Entity, f.Measure, f.Unit, f.Value}
		if cur, ok := v.best[k]; !ok || f.Confidence > cur.Confidence {
			v.best[k] = f
			changed++
		}
	}
	return changed
}

// Entity returns the facts known for a canonical entity name, sorted by
// confidence descending (ties by measure, then unit, then value) — a
// deterministic per-entity slice of the Dedupe ordering.
func (v *View) Entity(name string) []Fact {
	var out []Fact
	for k, f := range v.best {
		if k.entity == name {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Measure != out[j].Measure {
			return out[i].Measure < out[j].Measure
		}
		if out[i].Unit != out[j].Unit {
			return out[i].Unit < out[j].Unit
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Entities returns the sorted list of entity names with at least one fact.
func (v *View) Entities() []string {
	seen := map[string]bool{}
	for k := range v.best {
		seen[k.entity] = true
	}
	out := make([]string, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of deduplicated facts held by the view.
func (v *View) Size() int { return len(v.best) }

// Offered returns the number of facts fed to Add before deduplication.
func (v *View) Offered() int { return v.count }

// All returns every deduplicated fact in the Dedupe ordering.
func (v *View) All() []Fact {
	out := make([]Fact, 0, len(v.best))
	for _, f := range v.best {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Entity != out[j].Entity {
			return out[i].Entity < out[j].Entity
		}
		return out[i].Measure < out[j].Measure
	})
	return out
}

// ExtractAll runs the pipeline over many documents and pools the facts.
func ExtractAll(p *core.Pipeline, docs []*document.Document) []Fact {
	var all []Fact
	for _, doc := range docs {
		all = append(all, Extract(doc, p.Align(doc))...)
	}
	return Dedupe(all)
}
