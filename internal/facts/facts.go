// Package facts turns quantity alignments into knowledge-base facts — the
// augmentation use case of §I: "quantity alignment links the text to data
// from the tables, and vice versa. Hence, it can be combined with entity
// linking techniques to augment knowledge bases."
//
// A fact is (entity, measure, value, unit) with provenance: the entity comes
// from the row header (lightly canonicalized), the measure from the column
// header and caption, and the value from the aligned cell. Text-confirmed
// facts — cells that the surrounding prose actually discusses — carry the
// alignment's confidence; they are exactly the cells a knowledge base wants
// first.
package facts

import (
	"sort"
	"strings"

	"briq/internal/core"
	"briq/internal/document"
	"briq/internal/quantity"
)

// Fact is one extracted quantity fact.
type Fact struct {
	Entity  string  `json:"entity"`  // canonicalized row header
	Measure string  `json:"measure"` // column header (+ caption hint)
	Value   float64 `json:"value"`
	Unit    string  `json:"unit,omitempty"`
	Agg     string  `json:"agg"` // single-cell or the aggregation that produced it

	// Provenance.
	DocID       string  `json:"doc_id"`
	TableKey    string  `json:"table_key"`
	TextSurface string  `json:"text_surface"` // the confirming text mention
	Confidence  float64 `json:"confidence"`   // the alignment's overall score
}

// Extract derives facts from a document's alignments. Single-cell alignments
// yield one fact each; aggregate alignments yield one fact per input cell
// region is out of scope — they instead yield a fact for the aggregate
// itself with the shared row/column header as entity/measure.
func Extract(doc *document.Document, alignments []core.Alignment) []Fact {
	var out []Fact
	for _, a := range alignments {
		tm := doc.TableMentions[a.TableIndex]
		tbl := tm.Table

		fact := Fact{
			Value:       tm.Value,
			Unit:        tm.Unit,
			Agg:         tm.Agg.String(),
			DocID:       doc.ID,
			TableKey:    a.TableKey,
			TextSurface: a.TextSurface,
			Confidence:  a.Score,
		}

		if tm.Agg == quantity.SingleCell {
			ref := tm.Cells[0]
			fact.Entity = CanonicalEntity(header(tbl.RowHeaders, ref.Row))
			fact.Measure = measureName(header(tbl.ColHeaders, ref.Col), tbl.Caption)
		} else {
			// Aggregates: the constant line's header names the scope.
			rows := map[int]bool{}
			cols := map[int]bool{}
			for _, ref := range tm.Cells {
				rows[ref.Row] = true
				cols[ref.Col] = true
			}
			switch {
			case len(rows) == 1:
				fact.Entity = CanonicalEntity(header(tbl.RowHeaders, tm.Cells[0].Row))
				fact.Measure = measureName(tm.Agg.String(), tbl.Caption)
			case len(cols) == 1:
				fact.Entity = CanonicalEntity(tbl.Caption)
				fact.Measure = measureName(tm.Agg.String()+" of "+header(tbl.ColHeaders, tm.Cells[0].Col), "")
			default:
				continue // no single naming line: skip
			}
		}
		if fact.Entity == "" || fact.Measure == "" {
			continue
		}
		out = append(out, fact)
	}
	return Dedupe(out)
}

func header(headers []string, idx int) string {
	if idx < len(headers) {
		return strings.TrimSpace(headers[idx])
	}
	return ""
}

func measureName(column, caption string) string {
	column = strings.TrimSpace(strings.ToLower(column))
	if column != "" {
		return column
	}
	return strings.TrimSpace(strings.ToLower(caption))
}

// entitySuffixes are organization/qualifier suffixes stripped during
// canonicalization, the light-weight stand-in for entity linking against a
// knowledge base.
var entitySuffixes = []string{
	"inc", "inc.", "corp", "corp.", "ltd", "ltd.", "llc", "plc",
	"group", "co", "co.", "company", "party", "district", "region",
}

// CanonicalEntity normalizes an entity surface form: lowercase, collapsed
// whitespace, organization suffixes stripped.
func CanonicalEntity(s string) string {
	words := strings.Fields(strings.ToLower(s))
	for len(words) > 0 {
		last := words[len(words)-1]
		stripped := false
		for _, suf := range entitySuffixes {
			if last == suf {
				words = words[:len(words)-1]
				stripped = true
				break
			}
		}
		if !stripped {
			break
		}
	}
	return strings.Join(words, " ")
}

// better reports whether a should win the (entity, measure, value, unit)
// slot over b: confidence descending, then provenance fields ascending. It
// is a total order over every non-key Fact field, so the winner never
// depends on the order facts were offered or retracted — the property that
// makes incremental re-ingestion byte-identical to a from-scratch build.
// Two facts that tie on every field are the same struct.
func better(a, b Fact) bool {
	if a.Confidence != b.Confidence {
		return a.Confidence > b.Confidence
	}
	if a.DocID != b.DocID {
		return a.DocID < b.DocID
	}
	if a.TableKey != b.TableKey {
		return a.TableKey < b.TableKey
	}
	if a.TextSurface != b.TextSurface {
		return a.TextSurface < b.TextSurface
	}
	return a.Agg < b.Agg
}

// Dedupe keeps the best fact per (entity, measure, value, unit) — highest
// confidence, provenance as the tie-break (see better) — and returns facts
// sorted by confidence descending (ties by entity).
func Dedupe(facts []Fact) []Fact {
	best := map[viewKey]Fact{}
	for _, f := range facts {
		k := viewKey{f.Entity, f.Measure, f.Unit, f.Value}
		if cur, ok := best[k]; !ok || better(f, cur) {
			best[k] = f
		}
	}
	out := make([]Fact, 0, len(best))
	for _, f := range best {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Entity != out[j].Entity {
			return out[i].Entity < out[j].Entity
		}
		return out[i].Measure < out[j].Measure
	})
	return out
}

// View is an incrementally-maintained per-entity index of facts. It holds
// the full multiset of offered facts per (entity, measure, value, unit) key
// and computes the winner on read via better, so the view state after any
// Add/Remove sequence equals Dedupe over the surviving facts — retracting a
// page's stale facts during re-ingestion restores exactly the state a
// from-scratch build of the final corpus would reach.
type View struct {
	all   map[viewKey][]Fact
	count int // facts held: offered via Add, minus removed
}

type viewKey struct {
	entity, measure, unit string
	value                 float64
}

// NewView returns an empty per-entity facts view.
func NewView() *View {
	return &View{all: make(map[viewKey][]Fact)}
}

// bestOf returns the winning fact of one key's multiset; facts must be
// non-empty.
func bestOf(facts []Fact) Fact {
	best := facts[0]
	for _, f := range facts[1:] {
		if better(f, best) {
			best = f
		}
	}
	return best
}

// Add merges a batch of facts into the view and returns how many distinct
// (entity, measure, value, unit) keys it created or improved.
func (v *View) Add(facts []Fact) int {
	changed := 0
	for _, f := range facts {
		v.count++
		k := viewKey{f.Entity, f.Measure, f.Unit, f.Value}
		cur, ok := v.all[k]
		if !ok || better(f, bestOf(cur)) {
			changed++
		}
		v.all[k] = append(cur, f)
	}
	return changed
}

// Remove retracts previously added facts. Each fact is matched exactly
// (Fact is a comparable struct) and one matching copy is dropped from its
// key's multiset; keys left empty disappear. It returns how many facts were
// actually removed — fewer than len(facts) only if a fact was never added,
// which callers treat as a consistency bug.
func (v *View) Remove(facts []Fact) int {
	removed := 0
	for _, f := range facts {
		k := viewKey{f.Entity, f.Measure, f.Unit, f.Value}
		list := v.all[k]
		for i := range list {
			if list[i] == f {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				removed++
				v.count--
				break
			}
		}
		if len(list) == 0 {
			delete(v.all, k)
		} else {
			v.all[k] = list
		}
	}
	return removed
}

// Entity returns the facts known for a canonical entity name, sorted by
// confidence descending (ties by measure, then unit, then value) — a
// deterministic per-entity slice of the Dedupe ordering.
func (v *View) Entity(name string) []Fact {
	var out []Fact
	for k, list := range v.all {
		if k.entity == name {
			out = append(out, bestOf(list))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Measure != out[j].Measure {
			return out[i].Measure < out[j].Measure
		}
		if out[i].Unit != out[j].Unit {
			return out[i].Unit < out[j].Unit
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Entities returns the sorted list of entity names with at least one fact.
func (v *View) Entities() []string {
	seen := map[string]bool{}
	for k := range v.all {
		seen[k.entity] = true
	}
	out := make([]string, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of deduplicated facts held by the view.
func (v *View) Size() int { return len(v.all) }

// Offered returns the number of facts fed to Add and not since removed.
func (v *View) Offered() int { return v.count }

// All returns every deduplicated fact in the Dedupe ordering.
func (v *View) All() []Fact {
	out := make([]Fact, 0, len(v.all))
	for _, list := range v.all {
		out = append(out, bestOf(list))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Entity != out[j].Entity {
			return out[i].Entity < out[j].Entity
		}
		return out[i].Measure < out[j].Measure
	})
	return out
}

// ExtractAll runs the pipeline over many documents and pools the facts.
func ExtractAll(p *core.Pipeline, docs []*document.Document) []Fact {
	var all []Fact
	for _, doc := range docs {
		all = append(all, Extract(doc, p.Align(doc))...)
	}
	return Dedupe(all)
}
