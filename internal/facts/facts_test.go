package facts

import (
	"testing"

	"briq/internal/core"
	"briq/internal/document"
	"briq/internal/table"
)

func alignedDoc(t *testing.T) (*document.Document, []core.Alignment) {
	t.Helper()
	tbl, err := table.New("t0", "quarterly earnings of retailers ($ millions)", [][]string{
		{"Company Name", "Q3 2012", "Q3 2013"},
		{"Bed Bath Inc", "232.8", "237.2"},
		{"Container Store Group", "6.86", "9.49"},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := "Bed Bath Inc earned 232.8 million in the Q3 2012 quarter. " +
		"A total of 239.66 million was recorded for Q3 2012 overall."
	docs := document.NewSegmenter().Segment("p", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatal("segmentation failed")
	}
	doc := docs[0]
	return doc, core.NewPipeline().Align(doc)
}

func TestExtractSingleCellFact(t *testing.T) {
	doc, als := alignedDoc(t)
	facts := Extract(doc, als)
	if len(facts) == 0 {
		t.Fatal("no facts")
	}
	var earnings *Fact
	for i := range facts {
		if facts[i].Value == 232.8e6 && facts[i].Agg == "single-cell" {
			earnings = &facts[i]
		}
	}
	if earnings == nil {
		t.Fatalf("single-cell earnings fact missing: %+v", facts)
	}
	if earnings.Entity != "bed bath" {
		t.Errorf("entity = %q, want canonicalized 'bed bath'", earnings.Entity)
	}
	if earnings.Measure != "q3 2012" {
		t.Errorf("measure = %q, want column header", earnings.Measure)
	}
	if earnings.Confidence <= 0 {
		t.Error("fact without confidence")
	}
	if earnings.TextSurface == "" || earnings.DocID == "" || earnings.TableKey == "" {
		t.Errorf("provenance incomplete: %+v", earnings)
	}
}

func TestExtractAggregateFact(t *testing.T) {
	doc, als := alignedDoc(t)
	facts := Extract(doc, als)
	for _, f := range facts {
		if f.Agg == "sum" {
			if f.Measure == "" || f.Entity == "" {
				t.Errorf("aggregate fact unnamed: %+v", f)
			}
			return
		}
	}
	t.Skip("no aggregate alignment in this run")
}

func TestCanonicalEntity(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Bed Bath Inc", "bed bath"},
		{"Container Store Group", "container store"},
		{"Labor Party", "labor"},
		{"Northern District", "northern"},
		{"  Acme   Web  ", "acme web"},
		{"Group", ""},
		{"", ""},
	}
	for _, tc := range tests {
		if got := CanonicalEntity(tc.in); got != tc.want {
			t.Errorf("CanonicalEntity(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestDedupeKeepsHighestConfidence(t *testing.T) {
	facts := []Fact{
		{Entity: "acme", Measure: "income", Value: 7, Confidence: 0.5},
		{Entity: "acme", Measure: "income", Value: 7, Confidence: 0.9},
		{Entity: "acme", Measure: "income", Value: 8, Confidence: 0.4},
	}
	out := Dedupe(facts)
	if len(out) != 2 {
		t.Fatalf("want 2 facts after dedupe, got %d", len(out))
	}
	if out[0].Confidence != 0.9 {
		t.Errorf("highest-confidence duplicate not kept: %+v", out[0])
	}
	if out[0].Confidence < out[1].Confidence {
		t.Error("facts not sorted by confidence")
	}
}

func TestExtractAll(t *testing.T) {
	doc, _ := alignedDoc(t)
	facts := ExtractAll(core.NewPipeline(), []*document.Document{doc, doc})
	// The same document twice must not duplicate facts.
	seen := map[string]bool{}
	for _, f := range facts {
		k := f.Entity + "|" + f.Measure + "|" + f.TableKey
		if seen[k] {
			t.Errorf("duplicate fact after ExtractAll: %+v", f)
		}
		seen[k] = true
	}
}
