package core

import (
	"crypto/sha256"
	"fmt"
	"io"

	"briq/internal/document"
)

// AlignmentSink receives freshly computed per-document alignments from the
// facade paths — the write-through seam the persistent store implements.
// AddDocument is called once per (document, model) identity computed; cache
// hits are not re-offered, and implementations must dedup replays (the store
// keys on the same content address as the serve cache). Implementations must
// be safe for concurrent use and must not fail the alignment: persistence
// problems are theirs to count and log.
type AlignmentSink interface {
	AddDocument(doc *document.Document, alignments []Alignment)
}

// HashDocumentText writes the paragraph part of a document's content — the
// prose and the quantity mentions extracted from it. Together with
// HashDocumentTables it decomposes per-document identity into the two units
// of change a re-crawled page exhibits: an edited paragraph moves only the
// text digest, an edited table only the table digest.
func HashDocumentText(w io.Writer, d *document.Document) {
	fmt.Fprintf(w, "text|%s|", d.Text)
	for _, m := range d.TextMentions {
		fmt.Fprintf(w, "xm|%+v|", m)
	}
}

// HashDocumentTables writes the table part of a document's content: grids,
// headers, captions, footers, and the table-side mention list (single cells
// and virtual aggregate cells).
func HashDocumentTables(w io.Writer, d *document.Document) {
	for _, t := range d.Tables {
		fmt.Fprintf(w, "table|%s|%s|%q|%q|%q|%d×%d|",
			t.ID, t.Caption, t.ColHeaders, t.RowHeaders, t.Footers, t.Rows(), t.Cols())
		for r := 0; r < t.Rows(); r++ {
			for c := 0; c < t.Cols(); c++ {
				fmt.Fprintf(w, "%s\x00", t.Cell(r, c).Text)
			}
		}
	}
	for _, m := range d.TableMentions {
		fmt.Fprintf(w, "tm|%s|%g|%s|%v|%d|", m.Key(), m.Value, m.Unit, m.Orient, m.Index)
	}
}

// DocumentParts returns the SHA-256 digests of the two sub-document content
// parts — the fingerprints the streaming ingest path compares to decide
// whether a re-crawled document needs re-alignment at all.
func DocumentParts(d *document.Document) (text, tables [sha256.Size]byte) {
	h := sha256.New()
	HashDocumentText(h, d)
	h.Sum(text[:0])
	h.Reset()
	HashDocumentTables(h, d)
	h.Sum(tables[:0])
	return text, tables
}

// HashDocument writes a document's full alignment-relevant identity — its
// position (ID, page) plus the text-part and table-part content digests — so
// two documents share a cache key iff the pipeline would see identical input.
// It is the single definition of per-document request identity: the facade's
// corpus path and the persistent store derive the same serve.Key from it
// (serve.DocKeyOf reproduces this byte stream from the part digests).
func HashDocument(w io.Writer, d *document.Document) {
	text, tables := DocumentParts(d)
	fmt.Fprintf(w, "docv2|%s|%s|", d.ID, d.PageID)
	w.Write(text[:])
	w.Write(tables[:])
}

// AlignmentsSize estimates the resident bytes of a result slice for the
// serve cache's byte accounting: struct footprint plus string payloads. The
// facade and the persistent store's warm loader use the same estimate so
// cache occupancy is accounted identically on both paths.
func AlignmentsSize(als []Alignment) int64 {
	n := int64(len(als))*112 + 48
	for i := range als {
		a := &als[i]
		n += int64(len(a.DocID) + len(a.TextSurface) + len(a.TableKey) + len(a.AggName))
	}
	return n
}
