package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"briq/internal/document"
	"briq/internal/feature"
	"briq/internal/filter"
	"briq/internal/forest"
	"briq/internal/graph"
	"briq/internal/htmlx"
	"briq/internal/obs"
	"briq/internal/quantity"
	"briq/internal/resolve"
	"briq/internal/serve"
	"briq/internal/tagger"
)

// Stage names under which the pipeline reports timings to its Recorder. The
// first three are the per-document stages of Fig. 2; StageSegment covers
// page→document extraction and StageAlign the whole per-document run.
// Resolution reports under a per-strategy name (StageResolveFor), so a server
// running a non-default resolver shows its latency under resolve/ilp or
// resolve/greedy instead of blending strategies into one histogram.
const (
	StageClassify     = "classify"      // ScorePairs: mention-pair feature scoring
	StageClassifyGate = "classify/gate" // pre-classifier gate inside classify
	StageFilter       = "filter"        // adaptive candidate filtering
	StageResolve      = "resolve/rwr"   // default resolution: graph build + random walks
	StageSegment      = "segment"       // HTML page → documents
	StageAlign        = "align"         // full per-document Align
)

// StageResolveFor returns the stage name the pipeline reports resolution
// latency under for the named strategy: "resolve/rwr", "resolve/ilp",
// "resolve/greedy", …
func StageResolveFor(resolver string) string { return "resolve/" + resolver }

// StageNames lists every stage the pipeline can report, in pipeline order.
// All built-in resolver stages are included so recorders pre-register the
// full schema — /metrics exposes an identical shape whichever strategy the
// pipeline runs, and the golden schema test holds across -resolver flags.
func StageNames() []string {
	names := []string{StageSegment, StageClassify, StageClassifyGate, StageFilter}
	for _, r := range resolve.Names() {
		names = append(names, StageResolveFor(r))
	}
	return append(names, StageAlign)
}

// The pipeline's error taxonomy. Callers branch on these with errors.Is; the
// root briq package re-exports them under the same identities. Errors
// returned by the pipeline wrap a sentinel with page/document context via %w.
var (
	// ErrNoTables: the page carries no table with numeric cells, so there is
	// nothing to align against.
	ErrNoTables = errors.New("page has no tables with numeric cells")
	// ErrNoMentions: the page has usable tables, but no paragraph carries
	// enough quantity mentions to form an alignable document.
	ErrNoMentions = errors.New("page text has no alignable quantity mentions")
	// ErrUntrained: the operation needs trained models (classifier + tagger)
	// but the pipeline only has the heuristic configuration.
	ErrUntrained = errors.New("pipeline has no trained models")
)

// Alignment is one resolved text↔table quantity alignment, the system's
// output unit.
type Alignment struct {
	DocID       string       `json:"doc_id"`
	TextIndex   int          `json:"text_index"`   // index into the document's text mentions
	TableIndex  int          `json:"table_index"`  // index into the document's table mentions
	TextSurface string       `json:"text_surface"` // e.g. "total of 123"
	TextStart   int          `json:"text_start"`   // byte span of the mention in the paragraph
	TextEnd     int          `json:"text_end"`
	TableKey    string       `json:"table_key"` // e.g. "t0:sum(col 3)"
	Agg         quantity.Agg `json:"-"`
	AggName     string       `json:"agg"`
	Value       float64      `json:"value"` // the table-side value
	Score       float64      `json:"score"` // OverallScore of the decision
}

// Pipeline is a configured BriQ instance. Classifier may be nil, in which
// case pair scores fall back to the unweighted mean of the (masked) feature
// vector — the same uninformed combination the RWR-only baseline uses; a
// trained classifier is what turns the pipeline into full BriQ.
type Pipeline struct {
	Features     feature.Config
	Mask         feature.Mask
	Classifier   *forest.Forest
	Tagger       tagger.Tagger
	FilterConfig filter.Config
	GraphConfig  graph.Config
	Segmenter    *document.Segmenter

	// Resolver is the global-resolution strategy. nil selects the default:
	// the paper's random-walk algorithm (resolve.RWR) built from GraphConfig
	// on every Align, so GraphConfig tuning keeps applying — and the default
	// path stays byte-identical to the historical hardcoded graph.Resolve
	// call. Set it before the pipeline is shared across goroutines; a
	// non-nil Resolver built by its New* constructor is safe for concurrent
	// Resolve calls, and Clone gives each worker clone a private resolver
	// clone with its own scratch.
	Resolver resolve.Resolver

	// Recorder, when non-nil, receives per-stage latencies (StageClassify,
	// StageFilter, StageResolve, …) for every document aligned. It must be
	// set before the pipeline is shared across goroutines; after that the
	// pipeline is read-only and the Recorder itself is concurrency-safe.
	Recorder *obs.Recorder

	// Workers is the default fan-out width for corpus-scale alignment
	// (AlignAll with workers ≤ 0, the runtime pool, briq.AlignCorpus).
	// Zero or negative means GOMAXPROCS.
	Workers int

	// Gate, when non-nil, is the serving layer the page- and corpus-level
	// facade paths route through: a content-addressed result cache,
	// single-flight dedup of concurrent identical requests, and admission
	// control that sheds excess load with serve.ErrOverloaded /
	// serve.ErrDeadlineBudget. It must be set before the pipeline is shared
	// across goroutines; clones share the same gate. The pipeline's models
	// must not be mutated while a gate holds results computed from them —
	// the cache key includes the model fingerprint taken at configuration
	// time.
	Gate *serve.Engine

	// Sink, when non-nil, receives every freshly computed per-document
	// alignment from the facade paths (page and corpus) — the write-through
	// hook the persistent store attaches to build its corpus and quantity
	// index as documents are aligned. Cache hits are not re-offered. It must
	// be set before the pipeline is shared across goroutines; clones share
	// the same sink, and its implementation must be concurrency-safe.
	Sink AlignmentSink

	// ConfigWarnings records non-fatal configuration problems found at
	// construction (out-of-range option values that were clamped). Callers
	// that care — the server logs them at startup — read it once after New;
	// it is never mutated afterward.
	ConfigWarnings []string

	// ReferenceClassify forces the per-pair pointer-tree reference path
	// instead of the frozen flat-array batch engine. Output is identical by
	// contract (the equivalence suite pins bit-identity), so the flag is not
	// part of Fingerprint; it exists for the equivalence tests and the bench's
	// before/after comparison.
	ReferenceClassify bool

	// NoClassifyGate disables the pre-classifier gate of the internal align
	// path. The gate is decision-identical (it only skips feature computation
	// for pairs the filter stage drops unconditionally), so this flag is not
	// part of Fingerprint either; it exists for the gate-on vs gate-off
	// decision-identity test and for measuring the gate's contribution.
	NoClassifyGate bool

	// frozen memoizes the flat-array compilation of Classifier, shared by all
	// clones so a corpus run compiles the forest once. nil (a zero-value
	// Pipeline not built by NewPipeline) falls back to the reference path.
	frozen *frozenCache

	// local is per-clone scratch (see Clone). It is nil on pipelines built
	// by NewPipeline, which therefore stay safe for concurrent Align calls;
	// a clone owns its scratch and must serve one goroutine at a time.
	local *localScratch
}

// localScratch holds buffers a single-goroutine pipeline clone reuses across
// documents, so corpus runs stop paying the per-document allocation for the
// |X|·|T| candidate slice and the classify batch matrices.
type localScratch struct {
	candidates []filter.Candidate
	live       []int     // candidate indices that passed the gate
	feats      []float64 // row-major masked feature matrix, one row per live pair
	scores     []float64 // batch classifier output
	votes      []float64 // per-class vote scratch of the batch walk
}

// frozenCache lazily compiles the pipeline's classifier into its flat-array
// inference form and caches the compilation keyed by forest identity. Clones
// share one cache (Clone copies the pointer), so concurrent workers compile
// once; the mutex covers the swap-recompile, and a retrained classifier (the
// tuning harness replaces p.Classifier between runs) recompiles on next use.
type frozenCache struct {
	mu  sync.Mutex
	src *forest.Forest
	fz  *forest.Frozen
}

// engineFor returns the frozen engine for f, compiling it on first use or
// when f differs from the cached source. A nil cache or nil forest yields
// nil, which callers treat as "use the reference path".
func (c *frozenCache) engineFor(f *forest.Forest) *forest.Frozen {
	if c == nil || f == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.src != f {
		c.src, c.fz = f, f.Frozen()
	}
	return c.fz
}

// Clone returns a shallow copy of the pipeline for a dedicated worker
// goroutine. Models and configuration are shared read-only with the
// original; the clone gets its own scratch buffers (kept warm across the
// documents it aligns) and its own Recorder slot, so a worker records stage
// latencies without cross-worker contention.
//
// Unlike a NewPipeline instance, a clone must NOT be used for concurrent
// Align calls: its scratch is single-owner by design. The runtime pool gives
// each worker exactly one clone.
func (p *Pipeline) Clone() *Pipeline {
	c := *p
	c.local = &localScratch{}
	if p.Resolver != nil {
		c.Resolver = p.Resolver.Clone()
	}
	return &c
}

// resolver returns the pipeline's resolution strategy: the configured one, or
// the default random-walk strategy assembled from the pipeline's GraphConfig.
// The default is built per call (it is a two-word struct) so GraphConfig
// edits made between Align calls — the tuning harness does this — keep
// taking effect, exactly as the pre-interface hardcoded path behaved.
func (p *Pipeline) resolver() resolve.Resolver {
	if p.Resolver != nil {
		return p.Resolver
	}
	return &resolve.RWR{Config: p.GraphConfig}
}

// ResolverName returns the active resolution strategy's name ("rwr" unless a
// non-default Resolver is configured) — the value the server logs at startup
// and the bench report records per comparison row.
func (p *Pipeline) ResolverName() string { return p.resolver().Name() }

// NewPipeline returns a pipeline with default configuration, the rule-based
// tagger and no classifier (heuristic scores).
func NewPipeline() *Pipeline {
	return &Pipeline{
		Features:     feature.DefaultConfig(),
		Mask:         feature.FullMask(),
		Tagger:       tagger.Rule{},
		FilterConfig: filter.DefaultConfig(),
		GraphConfig:  graph.DefaultConfig(),
		Segmenter:    document.NewSegmenter(),
		frozen:       &frozenCache{},
	}
}

// ScorePairs computes classifier scores σ for every (text, table) mention
// pair of the document — the local resolution of §IV. The public entry point
// never gates: every pair gets its true score, because callers such as the
// RF-only baseline threshold raw scores and must observe them even for pairs
// the align path would discard.
func (p *Pipeline) ScorePairs(doc *document.Document) []filter.Candidate {
	return p.scorePairs(doc, false)
}

// scorePairs is the classify stage. With gated=true (the internal align
// path), pairs whose units are specified on both sides and incompatible skip
// f1–f12 feature computation entirely and keep a zero score: the filter stage
// drops exactly those pairs unconditionally whatever their score (step 2 of
// filter.Apply), and its mention-type vote and entropy read only survivors,
// so gating is decision-identical to scoring everything. The candidate row
// still exists, keeping filter counters unchanged.
//
// Scoring itself runs through the frozen flat-array engine in batch — one
// masked feature matrix, one scratch — unless ReferenceClassify is set or no
// engine is available, in which case the per-pair pointer-tree reference path
// runs. Both paths produce bit-identical scores (the equivalence suite pins
// this), so callers cannot tell them apart except by speed.
func (p *Pipeline) scorePairs(doc *document.Document, gated bool) []filter.Candidate {
	ext := feature.NewExtractor(p.Features, doc)
	n := len(doc.TextMentions) * len(doc.TableMentions)
	local := p.local
	var out []filter.Candidate
	var live []int
	if local != nil {
		// Clone-owned buffers: safe to reuse across documents because the
		// filter stage regroups candidates into fresh slices and nothing
		// downstream retains them past the Align call.
		if cap(local.candidates) < n {
			local.candidates = make([]filter.Candidate, 0, n)
		}
		out = local.candidates[:0]
		live = local.live[:0]
		defer func() {
			local.candidates = out[:0]
			local.live = live[:0]
		}()
	} else {
		out = make([]filter.Candidate, 0, n)
		live = make([]int, 0, n)
	}

	gated = gated && !p.NoClassifyGate
	gateStart := time.Now()
	for xi := range doc.TextMentions {
		x := &doc.TextMentions[xi]
		for ti := range doc.TableMentions {
			if gated {
				tm := doc.TableMentions[ti]
				if x.Unit != "" && tm.Unit != "" && !quantity.UnitsCompatible(x.Unit, tm.Unit) {
					out = append(out, filter.Candidate{Text: xi, Table: ti})
					continue
				}
			}
			live = append(live, len(out))
			out = append(out, filter.Candidate{Text: xi, Table: ti})
		}
	}
	if gated {
		p.Recorder.Observe(StageClassifyGate, time.Since(gateStart))
	}

	var engine *forest.Frozen
	if p.Classifier != nil && !p.ReferenceClassify {
		engine = p.frozen.engineFor(p.Classifier)
	}
	if engine == nil {
		// Reference path: per-pair vectors through Mask.Apply and the
		// pointer-tree walker (or the heuristic goodness mean).
		var vec [feature.NumFeatures]float64
		for _, idx := range live {
			c := &out[idx]
			c.Score = p.score(ext.VectorInto(c.Text, c.Table, vec[:]))
		}
		return out
	}

	// Batch path: project each live pair's vector onto the mask into one
	// row-major matrix, then run all rows through the flat forest with a
	// single vote scratch. The projection loop appends kept features in index
	// order — the same order Mask.Apply produces.
	m := p.Mask.Count()
	nLive := len(live)
	var feats, scores, votes []float64
	if local != nil {
		feats, scores, votes = local.feats, local.scores, local.votes
	}
	if cap(feats) < nLive*m {
		feats = make([]float64, nLive*m)
	} else {
		feats = feats[:nLive*m]
	}
	var full [feature.NumFeatures]float64
	for r, idx := range live {
		c := &out[idx]
		vec := ext.VectorInto(c.Text, c.Table, full[:])
		dst := feats[r*m : (r+1)*m]
		k := 0
		for i, v := range vec {
			if p.Mask[i] {
				dst[k] = v
				k++
			}
		}
	}
	if cap(votes) < engine.BatchScratchLen() {
		votes = make([]float64, engine.BatchScratchLen())
	}
	scores = engine.PositiveProbaBatch(feats, nLive, scores, votes)
	for r, idx := range live {
		out[idx].Score = scores[r]
	}
	if local != nil {
		local.feats, local.scores, local.votes = feats, scores, votes
	}
	return out
}

// score maps a full feature vector to a pair confidence: the trained
// classifier's positive-vote fraction, or — without a classifier — the
// uniform-weight mean of the goodness-oriented features kept by the mask
// (the same uninformed combination the RWR-only baseline uses).
func (p *Pipeline) score(full []float64) float64 {
	if p.Classifier != nil {
		return p.Classifier.PositiveProba(p.Mask.Apply(full))
	}
	var total float64
	n := 0
	for i, v := range full {
		if !p.Mask[i] {
			continue
		}
		total += feature.Goodness(i, v)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Align runs the full pipeline on one document and returns its alignments in
// text-mention order. Stage latencies are reported to the pipeline's Recorder
// when one is set.
func (p *Pipeline) Align(doc *document.Document) []Alignment {
	out, _ := p.AlignContext(context.Background(), doc) // background ctx: cannot fail
	return out
}

// AlignContext is Align with cooperative cancellation: the context is checked
// before each pipeline phase (classify → filter → resolve), so a canceled
// corpus run stops within one phase of the current document instead of
// finishing it. On cancellation it returns ctx.Err(); the phases themselves
// are CPU-bound and run to completion once started (the ILP resolver also
// checks the context inside its search loop).
func (p *Pipeline) AlignContext(ctx context.Context, doc *document.Document) ([]Alignment, error) {
	rec := p.Recorder
	alignStart := time.Now()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := alignStart
	candidates := p.scorePairs(doc, true)
	rec.Observe(StageClassify, time.Since(start))

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start = time.Now()
	filtered := filter.Apply(p.FilterConfig, doc, p.Tagger, candidates)
	rec.Observe(StageFilter, time.Since(start))

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start = time.Now()
	res := p.resolver()
	resolved, err := res.Resolve(ctx, doc, filtered.Kept)
	if err != nil {
		return nil, err
	}
	rec.Observe(StageResolveFor(res.Name()), time.Since(start))

	out := make([]Alignment, 0, len(resolved))
	for _, a := range resolved {
		out = append(out, p.toAlignment(doc, a.Text, a.Table, a.Score))
	}
	rec.Observe(StageAlign, time.Since(alignStart))
	return out, nil
}

func (p *Pipeline) toAlignment(doc *document.Document, xi, ti int, score float64) Alignment {
	x := doc.TextMentions[xi]
	tm := doc.TableMentions[ti]
	return Alignment{
		DocID:       doc.ID,
		TextIndex:   xi,
		TableIndex:  ti,
		TextSurface: x.Surface,
		TextStart:   x.Start,
		TextEnd:     x.End,
		TableKey:    tm.Key(),
		Agg:         tm.Agg,
		AggName:     tm.Agg.String(),
		Value:       tm.Value,
		Score:       score,
	}
}

// AlignPage segments an HTML page into documents and aligns each; the
// returned alignments are grouped by document in page order.
func (p *Pipeline) AlignPage(pageID string, page *htmlx.Page) ([]Alignment, error) {
	return p.AlignPageContext(context.Background(), pageID, page)
}

// AlignPageContext segments an HTML page into documents and aligns each,
// honoring ctx between pipeline phases. A page that yields no alignable
// document reports why: ErrNoTables when no table has numeric cells,
// ErrNoMentions when tables exist but no paragraph carries quantity
// mentions; both wrapped with the page ID and testable via errors.Is.
func (p *Pipeline) AlignPageContext(ctx context.Context, pageID string, page *htmlx.Page) ([]Alignment, error) {
	_, perDoc, err := p.AlignPageDocsContext(ctx, pageID, page)
	if err != nil {
		return nil, err
	}
	var out []Alignment
	for _, als := range perDoc {
		out = append(out, als...)
	}
	return out, nil
}

// AlignPageDocsContext is AlignPageContext keeping the per-document
// grouping: it returns the segmented documents in page order and each
// document's alignments at the matching index. Callers that persist or index
// per document (the facade's sink wiring) use this; flattening the groups in
// order reproduces AlignPageContext exactly.
func (p *Pipeline) AlignPageDocsContext(ctx context.Context, pageID string, page *htmlx.Page) ([]*document.Document, [][]Alignment, error) {
	seg := p.Segmenter
	if seg == nil {
		seg = document.NewSegmenter()
	}
	start := time.Now()
	res, err := seg.SegmentPageInfo(pageID, page)
	p.Recorder.Observe(StageSegment, time.Since(start))
	if err != nil {
		return nil, nil, fmt.Errorf("segment page %s: %w", pageID, err)
	}
	if len(res.Docs) == 0 {
		if res.NumericTables == 0 {
			return nil, nil, fmt.Errorf("page %s: %w", pageID, ErrNoTables)
		}
		return nil, nil, fmt.Errorf("page %s: %w", pageID, ErrNoMentions)
	}
	perDoc := make([][]Alignment, len(res.Docs))
	for i, doc := range res.Docs {
		als, err := p.AlignContext(ctx, doc)
		if err != nil {
			return nil, nil, fmt.Errorf("align %s: %w", doc.ID, err)
		}
		perDoc[i] = als
	}
	return res.Docs, perDoc, nil
}

// Fingerprint returns a stable content hash of everything that determines
// the pipeline's output for a given input: stage configurations, the feature
// mask, the segmenter, the resolution strategy (name and parameters), and
// the full serialized models (classifier and learned tagger). It scopes
// serving-layer cache keys, so two pipelines share cached results iff they
// would compute identical alignments.
//
// The hash covers trained models byte-for-byte (via their Save encoding), so
// computing it on a trained pipeline costs a few milliseconds; callers cache
// it (the serve.Engine takes it once at construction).
func (p *Pipeline) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "briq-pipeline|features=%+v|mask=%v|filter=%+v|graph=%+v",
		p.Features, p.Mask, p.FilterConfig, p.GraphConfig)
	// The resolution strategy and its parameters change output, so they scope
	// cache keys: a pipeline resolving with ILP must never serve a result
	// computed under RWR (or under ILP with a different budget) and vice
	// versa — the serve-layer cache-poisoning hazard the isolation test in
	// briq_resolver_test.go pins down.
	res := p.resolver()
	fmt.Fprintf(h, "|resolver=%s|rparams=%s", res.Name(), res.ParamsHash())
	if p.Segmenter != nil {
		fmt.Fprintf(h, "|segmenter=%+v", *p.Segmenter)
	}
	// Taggers and classifiers are hashed through their serialized form —
	// struct formatting would print pointer addresses, not model content.
	fmt.Fprintf(h, "|tagger=%T", p.Tagger)
	if lt, ok := p.Tagger.(*tagger.Learned); ok && lt != nil {
		_ = lt.Forest().Save(h) // writing into a hash cannot fail
	}
	if p.Classifier != nil {
		fmt.Fprintf(h, "|classifier=")
		_ = p.Classifier.Save(h)
	} else {
		fmt.Fprintf(h, "|classifier=none")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// EnsureTrained returns ErrUntrained unless the pipeline carries a trained
// mention-pair classifier — the guard for operations (model persistence,
// trained-only serving) that are meaningless on the heuristic configuration.
func (p *Pipeline) EnsureTrained() error {
	if p.Classifier == nil {
		return ErrUntrained
	}
	return nil
}

// AlignAll aligns many documents concurrently with the given number of
// workers (≤0 means GOMAXPROCS) and returns all alignments sorted by
// document ID then text mention. The pipeline is read-only during alignment,
// so one instance may serve all workers.
func (p *Pipeline) AlignAll(docs []*document.Document, workers int) []Alignment {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers <= 1 {
		var out []Alignment
		for _, doc := range docs {
			out = append(out, p.Align(doc)...)
		}
		SortAlignments(out)
		return out
	}

	results := make([][]Alignment, len(docs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = p.Align(docs[i])
			}
		}()
	}
	for i := range docs {
		work <- i
	}
	close(work)
	wg.Wait()

	var out []Alignment
	for _, r := range results {
		out = append(out, r...)
	}
	SortAlignments(out)
	return out
}

// SortAlignments orders alignments by document ID then text mention — the
// order AlignAll and the runtime's ordered-batch collector promise regardless
// of worker count, so serial and parallel runs are bit-for-bit identical.
func SortAlignments(out []Alignment) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].DocID != out[j].DocID {
			return out[i].DocID < out[j].DocID
		}
		return out[i].TextIndex < out[j].TextIndex
	})
}
