package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"briq/internal/document"
	"briq/internal/feature"
	"briq/internal/filter"
	"briq/internal/forest"
	"briq/internal/graph"
	"briq/internal/htmlx"
	"briq/internal/obs"
	"briq/internal/quantity"
	"briq/internal/tagger"
)

// Stage names under which the pipeline reports timings to its Recorder. The
// first three are the per-document stages of Fig. 2; StageSegment covers
// page→document extraction and StageAlign the whole per-document run.
const (
	StageClassify = "classify" // ScorePairs: mention-pair feature scoring
	StageFilter   = "filter"   // adaptive candidate filtering
	StageResolve  = "rwr"      // graph build + random walks with restart
	StageSegment  = "segment"  // HTML page → documents
	StageAlign    = "align"    // full per-document Align
)

// StageNames lists every stage the pipeline reports, in pipeline order.
func StageNames() []string {
	return []string{StageSegment, StageClassify, StageFilter, StageResolve, StageAlign}
}

// Alignment is one resolved text↔table quantity alignment, the system's
// output unit.
type Alignment struct {
	DocID       string       `json:"doc_id"`
	TextIndex   int          `json:"text_index"`   // index into the document's text mentions
	TableIndex  int          `json:"table_index"`  // index into the document's table mentions
	TextSurface string       `json:"text_surface"` // e.g. "total of 123"
	TextStart   int          `json:"text_start"`   // byte span of the mention in the paragraph
	TextEnd     int          `json:"text_end"`
	TableKey    string       `json:"table_key"` // e.g. "t0:sum(col 3)"
	Agg         quantity.Agg `json:"-"`
	AggName     string       `json:"agg"`
	Value       float64      `json:"value"` // the table-side value
	Score       float64      `json:"score"` // OverallScore of the decision
}

// Pipeline is a configured BriQ instance. Classifier may be nil, in which
// case pair scores fall back to the unweighted mean of the (masked) feature
// vector — the same uninformed combination the RWR-only baseline uses; a
// trained classifier is what turns the pipeline into full BriQ.
type Pipeline struct {
	Features     feature.Config
	Mask         feature.Mask
	Classifier   *forest.Forest
	Tagger       tagger.Tagger
	FilterConfig filter.Config
	GraphConfig  graph.Config
	Segmenter    *document.Segmenter

	// Recorder, when non-nil, receives per-stage latencies (StageClassify,
	// StageFilter, StageResolve, …) for every document aligned. It must be
	// set before the pipeline is shared across goroutines; after that the
	// pipeline is read-only and the Recorder itself is concurrency-safe.
	Recorder *obs.Recorder
}

// NewPipeline returns a pipeline with default configuration, the rule-based
// tagger and no classifier (heuristic scores).
func NewPipeline() *Pipeline {
	return &Pipeline{
		Features:     feature.DefaultConfig(),
		Mask:         feature.FullMask(),
		Tagger:       tagger.Rule{},
		FilterConfig: filter.DefaultConfig(),
		GraphConfig:  graph.DefaultConfig(),
		Segmenter:    document.NewSegmenter(),
	}
}

// ScorePairs computes classifier scores σ for every (text, table) mention
// pair of the document — the local resolution of §IV.
func (p *Pipeline) ScorePairs(doc *document.Document) []filter.Candidate {
	ext := feature.NewExtractor(p.Features, doc)
	out := make([]filter.Candidate, 0, len(doc.TextMentions)*len(doc.TableMentions))
	for xi := range doc.TextMentions {
		for ti := range doc.TableMentions {
			out = append(out, filter.Candidate{Text: xi, Table: ti, Score: p.score(ext.Vector(xi, ti))})
		}
	}
	return out
}

// score maps a full feature vector to a pair confidence: the trained
// classifier's positive-vote fraction, or — without a classifier — the
// uniform-weight mean of the goodness-oriented features kept by the mask
// (the same uninformed combination the RWR-only baseline uses).
func (p *Pipeline) score(full []float64) float64 {
	if p.Classifier != nil {
		return p.Classifier.PositiveProba(p.Mask.Apply(full))
	}
	var total float64
	n := 0
	for i, v := range full {
		if !p.Mask[i] {
			continue
		}
		total += feature.Goodness(i, v)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Align runs the full pipeline on one document and returns its alignments in
// text-mention order. Stage latencies are reported to the pipeline's Recorder
// when one is set.
func (p *Pipeline) Align(doc *document.Document) []Alignment {
	rec := p.Recorder
	alignStart := time.Now()

	start := alignStart
	candidates := p.ScorePairs(doc)
	rec.Observe(StageClassify, time.Since(start))

	start = time.Now()
	filtered := filter.Apply(p.FilterConfig, doc, p.Tagger, candidates)
	rec.Observe(StageFilter, time.Since(start))

	start = time.Now()
	g := graph.Build(p.GraphConfig, doc, filtered.Kept)
	resolved := g.Resolve()
	rec.Observe(StageResolve, time.Since(start))

	out := make([]Alignment, 0, len(resolved))
	for _, a := range resolved {
		out = append(out, p.toAlignment(doc, a.Text, a.Table, a.Score))
	}
	rec.Observe(StageAlign, time.Since(alignStart))
	return out
}

func (p *Pipeline) toAlignment(doc *document.Document, xi, ti int, score float64) Alignment {
	x := doc.TextMentions[xi]
	tm := doc.TableMentions[ti]
	return Alignment{
		DocID:       doc.ID,
		TextIndex:   xi,
		TableIndex:  ti,
		TextSurface: x.Surface,
		TextStart:   x.Start,
		TextEnd:     x.End,
		TableKey:    tm.Key(),
		Agg:         tm.Agg,
		AggName:     tm.Agg.String(),
		Value:       tm.Value,
		Score:       score,
	}
}

// AlignPage segments an HTML page into documents and aligns each; the
// returned alignments are grouped by document in page order.
func (p *Pipeline) AlignPage(pageID string, page *htmlx.Page) ([]Alignment, error) {
	seg := p.Segmenter
	if seg == nil {
		seg = document.NewSegmenter()
	}
	start := time.Now()
	docs, err := seg.SegmentPage(pageID, page)
	p.Recorder.Observe(StageSegment, time.Since(start))
	if err != nil {
		return nil, fmt.Errorf("segment page %s: %w", pageID, err)
	}
	var out []Alignment
	for _, doc := range docs {
		out = append(out, p.Align(doc)...)
	}
	return out, nil
}

// AlignAll aligns many documents concurrently with the given number of
// workers (≤0 means GOMAXPROCS) and returns all alignments sorted by
// document ID then text mention. The pipeline is read-only during alignment,
// so one instance may serve all workers.
func (p *Pipeline) AlignAll(docs []*document.Document, workers int) []Alignment {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers <= 1 {
		var out []Alignment
		for _, doc := range docs {
			out = append(out, p.Align(doc)...)
		}
		sortAlignments(out)
		return out
	}

	results := make([][]Alignment, len(docs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = p.Align(docs[i])
			}
		}()
	}
	for i := range docs {
		work <- i
	}
	close(work)
	wg.Wait()

	var out []Alignment
	for _, r := range results {
		out = append(out, r...)
	}
	sortAlignments(out)
	return out
}

// sortAlignments orders alignments by document ID then text mention — the
// order AlignAll promises regardless of worker count, so serial and parallel
// runs are bit-for-bit identical.
func sortAlignments(out []Alignment) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].DocID != out[j].DocID {
			return out[i].DocID < out[j].DocID
		}
		return out[i].TextIndex < out[j].TextIndex
	})
}
