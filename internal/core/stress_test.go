package core_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"briq/internal/core"
	"briq/internal/corpus"
	"briq/internal/htmlx"
	"briq/internal/obs"
)

// stressPage builds a small HTML page whose numbers vary by seed, so distinct
// goroutines align distinct pages.
func stressPage(n int) string {
	a, b := 10+n, 20+n
	return fmt.Sprintf(`<html><body>
<p>A total of %d wins were recorded, with %d home wins.</p>
<table><caption>wins by venue</caption>
<tr><th>team</th><th>home</th><th>away</th><th>total</th></tr>
<tr><td>Reds</td><td>%d</td><td>%d</td><td>%d</td></tr>
<tr><td>Blues</td><td>7</td><td>3</td><td>10</td></tr>
</table></body></html>`, a+b+10, a, a, b-10, a+b-10)
}

// TestAlignAllMatchesSerial asserts determinism under parallelism: a shared
// pipeline hammered through the worker pool must produce exactly the serial
// path's alignments.
func TestAlignAllMatchesSerial(t *testing.T) {
	c := corpus.Generate(corpus.TableLConfig(21, 30))
	p := core.NewPipeline()
	p.Recorder = obs.NewRecorder() // exercise instrumentation under concurrency

	serial := p.AlignAll(c.Docs, 1)
	if len(serial) == 0 {
		t.Fatal("serial alignment produced nothing; corpus too small?")
	}
	for _, workers := range []int{2, 4, 8} {
		parallel := p.AlignAll(c.Docs, workers)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d: parallel alignments differ from serial (%d vs %d)",
				workers, len(parallel), len(serial))
		}
	}
	if got := p.Recorder.Snapshot()[core.StageAlign].Count; got == 0 {
		t.Error("recorder saw no align observations")
	}
}

// TestPipelineSharedAcrossGoroutines hammers one instrumented *Pipeline from
// many goroutines mixing AlignAll batches and direct AlignPage calls on
// distinct pages, asserting per-goroutine results match precomputed serial
// answers. Run under -race this is the audit that a shared pipeline is
// read-only after construction.
func TestPipelineSharedAcrossGoroutines(t *testing.T) {
	c := corpus.Generate(corpus.TableLConfig(22, 20))
	shared := core.NewPipeline()
	shared.Recorder = obs.NewRecorder()

	wantDocs := shared.AlignAll(c.Docs, 1)

	const pages = 8
	wantPage := make([][]core.Alignment, pages)
	for i := 0; i < pages; i++ {
		page := htmlx.ParseString(stressPage(i))
		got, err := shared.AlignPage(fmt.Sprintf("p%d", i), page)
		if err != nil {
			t.Fatalf("serial AlignPage %d: %v", i, err)
		}
		if len(got) == 0 {
			t.Fatalf("page %d aligned nothing; stress page broken", i)
		}
		wantPage[i] = got
	}

	var wg sync.WaitGroup
	errs := make(chan error, pages*2)
	for i := 0; i < pages; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			page := htmlx.ParseString(stressPage(i))
			got, err := shared.AlignPage(fmt.Sprintf("p%d", i), page)
			if err != nil {
				errs <- fmt.Errorf("AlignPage %d: %v", i, err)
				return
			}
			if !reflect.DeepEqual(got, wantPage[i]) {
				errs <- fmt.Errorf("page %d: concurrent result differs from serial", i)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			got := shared.AlignAll(c.Docs, 4)
			if !reflect.DeepEqual(got, wantDocs) {
				errs <- fmt.Errorf("AlignAll run %d differs from serial", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := shared.Recorder.Snapshot()
	for _, stage := range []string{core.StageClassify, core.StageFilter, core.StageResolve} {
		if snap[stage].Count == 0 {
			t.Errorf("stage %q never reported to the recorder", stage)
		}
	}
}
