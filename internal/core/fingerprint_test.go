package core

import "testing"

func TestFingerprintStableAndSensitive(t *testing.T) {
	p1 := NewPipeline()
	p2 := NewPipeline()
	fp := p1.Fingerprint()
	if fp == "" || len(fp) != 64 {
		t.Fatalf("fingerprint %q, want 64 hex chars", fp)
	}
	if fp != p1.Fingerprint() {
		t.Error("fingerprint not stable across calls")
	}
	if fp != p2.Fingerprint() {
		t.Error("identically configured pipelines have different fingerprints")
	}

	// Any output-affecting configuration change must change the fingerprint.
	p2.GraphConfig.Restart += 0.01
	if p2.Fingerprint() == fp {
		t.Error("graph config change did not change the fingerprint")
	}
	p3 := NewPipeline()
	p3.Mask[0] = !p3.Mask[0]
	if p3.Fingerprint() == fp {
		t.Error("mask change did not change the fingerprint")
	}
	p4 := NewPipeline()
	p4.FilterConfig.KExact++
	if p4.Fingerprint() == fp {
		t.Error("filter config change did not change the fingerprint")
	}
}

func TestFingerprintIgnoresServingConfig(t *testing.T) {
	// Workers and Recorder do not affect alignment output; the fingerprint
	// must not fragment the cache over them.
	p1 := NewPipeline()
	p2 := NewPipeline()
	p2.Workers = 8
	p2.Recorder = nil
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Error("fingerprint depends on non-output configuration")
	}
	if p1.Fingerprint() != p1.Clone().Fingerprint() {
		t.Error("clone fingerprint differs from prototype")
	}
}
