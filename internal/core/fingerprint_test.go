package core

import (
	"testing"
	"time"

	"briq/internal/resolve"
)

func TestFingerprintStableAndSensitive(t *testing.T) {
	p1 := NewPipeline()
	p2 := NewPipeline()
	fp := p1.Fingerprint()
	if fp == "" || len(fp) != 64 {
		t.Fatalf("fingerprint %q, want 64 hex chars", fp)
	}
	if fp != p1.Fingerprint() {
		t.Error("fingerprint not stable across calls")
	}
	if fp != p2.Fingerprint() {
		t.Error("identically configured pipelines have different fingerprints")
	}

	// Any output-affecting configuration change must change the fingerprint.
	p2.GraphConfig.Restart += 0.01
	if p2.Fingerprint() == fp {
		t.Error("graph config change did not change the fingerprint")
	}
	p3 := NewPipeline()
	p3.Mask[0] = !p3.Mask[0]
	if p3.Fingerprint() == fp {
		t.Error("mask change did not change the fingerprint")
	}
	p4 := NewPipeline()
	p4.FilterConfig.KExact++
	if p4.Fingerprint() == fp {
		t.Error("filter config change did not change the fingerprint")
	}
}

func TestFingerprintIgnoresServingConfig(t *testing.T) {
	// Workers and Recorder do not affect alignment output; the fingerprint
	// must not fragment the cache over them.
	p1 := NewPipeline()
	p2 := NewPipeline()
	p2.Workers = 8
	p2.Recorder = nil
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Error("fingerprint depends on non-output configuration")
	}
	if p1.Fingerprint() != p1.Clone().Fingerprint() {
		t.Error("clone fingerprint differs from prototype")
	}
}

func TestFingerprintSeparatesResolvers(t *testing.T) {
	// Pipelines that differ only in resolution strategy (or its parameters)
	// produce different alignments, so their fingerprints — and therefore
	// their serve-cache keys — must be distinct. A shared fingerprint here is
	// cache poisoning: one strategy's cached output served as another's.
	base := NewPipeline()
	variants := map[string]*Pipeline{}
	add := func(name string, r resolve.Resolver) {
		p := NewPipeline()
		p.Resolver = r
		variants[name] = p
	}
	add("default", nil)
	add("rwr-explicit", resolve.NewRWR(base.GraphConfig))
	add("ilp", resolve.NewILP(base.GraphConfig, 0))
	add("ilp-long-budget", resolve.NewILP(base.GraphConfig, time.Second))
	add("greedy", resolve.NewGreedy(resolve.DefaultGreedyMinScore))
	add("greedy-strict", resolve.NewGreedy(0.9))

	// The explicit rwr resolver is configured identically to the default path
	// and produces identical output; it alone may share the default's key.
	if variants["default"].Fingerprint() != variants["rwr-explicit"].Fingerprint() {
		t.Error("explicit rwr resolver fragments the cache vs the default")
	}
	delete(variants, "rwr-explicit")

	seen := map[string]string{}
	for name, p := range variants {
		fp := p.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("resolver variants %q and %q share fingerprint %s", name, prev, fp)
		}
		seen[fp] = name
	}
}

func TestResolverName(t *testing.T) {
	p := NewPipeline()
	if got := p.ResolverName(); got != resolve.NameRWR {
		t.Errorf("default ResolverName = %q, want %q", got, resolve.NameRWR)
	}
	p.Resolver = resolve.NewGreedy(0.5)
	if got := p.ResolverName(); got != resolve.NameGreedy {
		t.Errorf("ResolverName = %q, want %q", got, resolve.NameGreedy)
	}
}

func TestCloneCopiesResolver(t *testing.T) {
	p := NewPipeline()
	p.Resolver = resolve.NewGreedy(0.5)
	c := p.Clone()
	if c.Resolver == nil {
		t.Fatal("clone dropped the resolver")
	}
	if c.Resolver == p.Resolver {
		t.Error("clone shares the prototype's resolver (scratch would race)")
	}
	if c.Fingerprint() != p.Fingerprint() {
		t.Error("cloned resolver changed the fingerprint")
	}
}
