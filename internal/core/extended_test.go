package core

import (
	"testing"

	"briq/internal/document"
	"briq/internal/quantity"
	"briq/internal/table"
)

// TestExtendedAggregations exercises the framework-supported aggregations
// the paper's experiments leave out (avg/min/max, §II-A): with extended
// virtual options, ranking phrases align to min/max virtual cells.
func TestExtendedAggregations(t *testing.T) {
	tbl, err := table.New("t0", "car prices in euro", [][]string{
		{"model", "price"},
		{"Focus", "34900"},
		{"A3", "36900"},
		{"Golf", "33800"},
	})
	if err != nil {
		t.Fatal(err)
	}
	seg := document.NewSegmenter()
	seg.VirtualOpts = table.ExtendedVirtualOptions()

	text := "The highest price reached a maximum of 36900 among the models, " +
		"while the cheapest model sold at a minimum of 33800."
	docs := seg.Segment("p", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatal("segmentation failed")
	}
	doc := docs[0]

	// Both min and max virtual cells must exist among the candidates.
	var hasMin, hasMax bool
	for _, tm := range doc.TableMentions {
		switch tm.Agg {
		case quantity.Min:
			hasMin = true
		case quantity.Max:
			hasMax = true
		}
	}
	if !hasMin || !hasMax {
		t.Fatalf("extended virtual cells missing: min=%v max=%v", hasMin, hasMax)
	}

	als := NewPipeline().Align(doc)
	var maxOK, minOK bool
	for _, a := range als {
		if a.Value == 36900 && (a.Agg == quantity.Max || a.Agg == quantity.SingleCell) {
			maxOK = true
		}
		if a.Value == 33800 && (a.Agg == quantity.Min || a.Agg == quantity.SingleCell) {
			minOK = true
		}
	}
	if !maxOK {
		t.Errorf("maximum mention not aligned to 36900: %+v", als)
	}
	if !minOK {
		t.Errorf("minimum mention not aligned to 33800: %+v", als)
	}
}

// TestAlignAllConcurrencySafe runs the concurrent processor under the race
// detector (go test -race) over shared tables.
func TestAlignAllConcurrencySafe(t *testing.T) {
	tbl, err := table.New("t0", "counts recorded by group", [][]string{
		{"group", "count", "total"},
		{"a", "10", "30"},
		{"b", "20", "40"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var docs []*document.Document
	texts := []string{
		"Group a recorded 10 in the count column.",
		"A total of 30 was recorded for count.",
		"Group b recorded 20 for the count.",
		"The total column summed to 70 overall.",
		"Counts reached 40 for the total of group b.",
		"Another 10 appeared in the record.",
	}
	for i, text := range texts {
		ds := document.NewSegmenter().Segment(string(rune('a'+i)), []string{text}, []*table.Table{tbl})
		docs = append(docs, ds...)
	}
	p := NewPipeline()
	for trial := 0; trial < 5; trial++ {
		p.AlignAll(docs, 8)
	}
}
