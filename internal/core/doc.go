// Package core wires the BriQ stages of Fig. 2 into an end-to-end pipeline:
// table-text extraction (package document) → mention-pair classification
// (packages feature + forest) → adaptive filtering (packages tagger +
// filter) → global resolution (package graph). It also provides a concurrent
// document processor (AlignAll) for corpus-scale throughput runs
// (Table VIII).
//
// # Stages and instrumentation
//
// Align reports per-stage latency under the names returned by StageNames —
// StageSegment (page → documents), StageClassify (ScorePairs), StageFilter
// (filter.Apply), StageResolve (graph build + random walks) and StageAlign
// (the whole per-document run) — to the pipeline's obs.Recorder when one is
// set. A nil Recorder is a valid no-op, so instrumentation costs nothing
// when unused. cmd/briq-server exposes these histograms over HTTP and
// cmd/briq-bench writes them into BENCH_pipeline.json.
//
// # Concurrency contract
//
// A Pipeline is configured once (including Recorder) and is read-only
// afterwards; AlignAll then shares it across workers safely. Per-document
// mutable state (feature caches, the resolution graph) lives in values
// created inside Align, never on the Pipeline.
package core
