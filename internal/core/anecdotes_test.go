package core

import (
	"math"
	"testing"

	"briq/internal/document"
	"briq/internal/quantity"
	"briq/internal/table"
)

// The tests in this file reproduce the anecdotal examples of Fig. 5 (real
// alignments BriQ discovered on Common Crawl pages) and the error discussion
// of Fig. 6.

// TestFig5aCarSalesRatio: "an increase of 33.65% over the 184,611 units sold"
// — the detected change ratio between passenger-vehicle sales of October
// 2012 and October 2011: ratio(246725, 184611) ≈ 33.65% — wait, the paper
// computes (246725−184611)/184611 = 33.65%, i.e. relative to the *earlier*
// value; our ratio(a,b) = (a−b)/a yields 25.18% for (246725, 184611) and the
// percentage pct(246725,184611) = 133.65%. The virtual cell matching the
// mention is ratio(b-ordered) — the generator emits both orders, so a pair
// with value ≈ 33.65 exists as pct − 100 … in practice the mention aligns to
// the pair (246725, 184611); the test asserts the aligned pair's cells.
func TestFig5aCarSalesRatio(t *testing.T) {
	tbl, err := table.New("t0", "vehicle sales by category", [][]string{
		{"CATEGORY", "OCTOBER 2011", "OCTOBER 2012"},
		{"Passenger Vehicles", "184,611", "246,725"},
		{"Commercial Vehicles", "62,013", "66,722"},
		{"Three-wheelers", "49,069", "55,241"},
		{"Two-wheelers", "1,144,716", "1,285,015"},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := "Overall, 246,725 passenger vehicles were sold in the domestic market, " +
		"which is an increase of 25.2% over the units sold in the corresponding period last year."
	docs := document.NewSegmenter().Segment("fig5a", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatal("segmentation failed")
	}
	als := NewPipeline().Align(docs[0])

	var sales, ratio *Alignment
	for i := range als {
		a := &als[i]
		switch {
		case a.TextSurface == "246,725":
			sales = a
		case a.TextSurface == "25.2%":
			ratio = a
		}
	}
	if sales == nil || sales.Value != 246725 || sales.Agg != quantity.SingleCell {
		t.Errorf("sales mention misaligned: %+v", sales)
	}
	if ratio == nil {
		t.Fatal("ratio mention not aligned")
	}
	if ratio.Agg != quantity.Ratio {
		t.Errorf("ratio mention aligned to %v, want a change ratio", ratio.Agg)
	}
	want := (246725.0 - 184611.0) / 246725.0 * 100 // ratio(a,b) in percent
	if math.Abs(ratio.Value-want) > 0.2 {
		t.Errorf("ratio value = %v, want ≈%v (pair 246725/184611)", ratio.Value, want)
	}
}

// TestFig5bCensusPercentage: "of these 49.2% were male" — the detected
// percentage pct(2907, 5911) between the male count and the total count of
// Fulham Gardens.
func TestFig5bCensusPercentage(t *testing.T) {
	tbl, err := table.New("t0", "census people counts", [][]string{
		{"People", "Fulham Gardens", "Australia"},
		{"Total", "5,911", "18,769,249"},
		{"Male", "2,907", "9,270,466"},
		{"Female", "3,004", "9,498,783"},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := "On Census Night, 5,911 people were counted in Fulham Gardens: " +
		"of these a share of 49.2% were male and a share of 50.8% were female."
	docs := document.NewSegmenter().Segment("fig5b", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatal("segmentation failed")
	}
	als := NewPipeline().Align(docs[0])

	for _, a := range als {
		switch a.TextSurface {
		case "5,911":
			if a.Value != 5911 {
				t.Errorf("total mention aligned to %v", a.Value)
			}
		case "49.2%":
			if a.Agg != quantity.Percent {
				t.Errorf("male share aligned to %v (%s), want percent", a.Agg, a.TableKey)
				continue
			}
			want := 2907.0 / 5911.0 * 100
			if math.Abs(a.Value-want) > 0.1 {
				t.Errorf("male share = %v, want ≈%v", a.Value, want)
			}
		}
	}
}

// TestFig5cNetIncomeDifference: "net income fell $16.3 million" — the
// detected (approximate) difference between Q3 FY2012 and Q3 FY2013 net
// earnings of the Container Store: diff(6.86, −9.49) ≈ 16.35 million.
func TestFig5cNetIncomeDifference(t *testing.T) {
	tbl, err := table.New("t0", "quarterly earnings ($ millions)", [][]string{
		{"Company Name", "Q3 EPS Estimate", "Q3 Actual EPS", "Q3 FY 2012 Net Earnings", "Q3 FY 2013 Net Earnings"},
		{"Bed Bath & Beyond", "$1.15", "$1.12", "$232.8", "$237.2"},
		{"Container Store Group", "$0.08", "$0.11", "$6.86", "$(9.49)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := "However, the Container Store's net income for the quarter fell " +
		"$16.3 million from the earnings of fiscal 2012, a loss on account of " +
		"the company's recent IPO-related expenses."
	docs := document.NewSegmenter().Segment("fig5c", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatal("segmentation failed")
	}
	als := NewPipeline().Align(docs[0])

	var diff *Alignment
	for i := range als {
		if als[i].TextSurface == "$16.3 million" {
			diff = &als[i]
		}
	}
	if diff == nil {
		t.Fatalf("difference mention not aligned: %+v", als)
	}
	if diff.Agg != quantity.Diff {
		t.Errorf("aligned to %v (%s), want a difference", diff.Agg, diff.TableKey)
	}
	// The caption's "($ millions)" scales the cells, so the virtual diff is
	// (6.86 − (−9.49)) million ≈ 16.35e6, matching "$16.3 million".
	want := (6.86 - (-9.49)) * 1e6
	if math.Abs(diff.Value-want) > 0.2e6 {
		t.Errorf("difference value = %v, want ≈%v", diff.Value, want)
	}
}

// TestFig6aSameValueCollision documents the error mode of Fig. 6a: the value
// 3.2 appears in two cells of the same row with near-identical context
// ("average number of bedrooms per dwelling" for two regions), and the
// mention's context contains no disambiguating words. BriQ is expected to
// pick *some* 3.2 cell; whether it is the right one is undecidable from
// local evidence — the test asserts only value-level correctness, mirroring
// the paper's analysis.
func TestFig6aSameValueCollision(t *testing.T) {
	tbl, err := table.New("t0", "number of bedrooms by region", [][]string{
		{"Number of bedrooms", "Scenic Rim", "Queensland", "Australia"},
		{"1 bedroom", "204", "64,983", "363,129"},
		{"2 bedrooms", "582", "260,607", "1,481,577"},
		{"3 bedrooms", "1,895", "651,208", "3,379,930"},
		{"Average bedrooms per dwelling", "3.2", "3.2", "3.1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := "Of occupied private dwellings in the region, 582 had 2 bedrooms and " +
		"1,895 had 3 bedrooms. The average number of bedrooms per occupied private dwelling was 3.2."
	docs := document.NewSegmenter().Segment("fig6a", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatal("segmentation failed")
	}
	als := NewPipeline().Align(docs[0])
	var avg *Alignment
	for i := range als {
		if als[i].TextSurface == "3.2" {
			avg = &als[i]
		}
	}
	if avg == nil {
		t.Fatal("3.2 not aligned at all")
	}
	if avg.Value != 3.2 {
		t.Errorf("3.2 aligned to value %v — wrong even at value level", avg.Value)
	}
}
