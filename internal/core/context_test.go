package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"briq/internal/corpus"
	"briq/internal/htmlx"
	"briq/internal/table"
)

func healthDocPage() *htmlx.Page {
	return &htmlx.Page{Blocks: []htmlx.Block{
		&htmlx.Paragraph{Text: "A total of 123 patients reported side effects, with 69 female patients."},
		&htmlx.TableBlock{Caption: "side effects reported by patients", Grid: [][]string{
			{"side effects", "male", "female", "total"},
			{"Rash", "15", "20", "35"},
			{"Depression", "13", "25", "38"},
			{"Hypertension", "19", "15", "34"},
			{"Nausea", "5", "6", "11"},
			{"Eye Disorders", "2", "3", "5"},
		}},
	}}
}

// TestAlignContextCancelled locks in the cooperative checkpoint: a dead
// context stops the pipeline before the next phase runs.
func TestAlignContextCancelled(t *testing.T) {
	tbl, err := table.New("t0", "counts", [][]string{
		{"name", "count"},
		{"a", "10"},
		{"b", "20"},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := segmentOne(t, "The count reached 30 in total.", tbl)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	als, err := NewPipeline().AlignContext(ctx, doc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if als != nil {
		t.Errorf("cancelled align returned alignments: %v", als)
	}
}

func TestAlignContextBackgroundMatchesAlign(t *testing.T) {
	c := corpus.Generate(corpus.TableSConfig(3))
	p := NewPipeline()
	for _, doc := range c.Docs[:5] {
		want := p.Align(doc)
		got, err := p.AlignContext(context.Background(), doc)
		if err != nil {
			t.Fatalf("doc %s: %v", doc.ID, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("doc %s: AlignContext diverged from Align", doc.ID)
		}
	}
}

func TestAlignPageContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewPipeline().AlignPageContext(ctx, "p0", healthDocPage())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAlignPageTypedErrors pins the error taxonomy: a page with no numeric
// tables reports ErrNoTables; a page whose tables have no quantity-bearing
// paragraph nearby reports ErrNoMentions; both survive %w wrapping.
func TestAlignPageTypedErrors(t *testing.T) {
	p := NewPipeline()

	noTables := &htmlx.Page{Blocks: []htmlx.Block{
		&htmlx.Paragraph{Text: "Numbers like 42 with no tables."},
	}}
	if _, err := p.AlignPageContext(context.Background(), "p0", noTables); !errors.Is(err, ErrNoTables) {
		t.Errorf("tableless page: err = %v, want ErrNoTables", err)
	}

	noMentions := &htmlx.Page{Blocks: []htmlx.Block{
		&htmlx.Paragraph{Text: "This paragraph discusses methodology without any figures."},
		&htmlx.TableBlock{Grid: [][]string{{"a", "b"}, {"1", "2"}}},
	}}
	if _, err := p.AlignPageContext(context.Background(), "p1", noMentions); !errors.Is(err, ErrNoMentions) {
		t.Errorf("mentionless page: err = %v, want ErrNoMentions", err)
	}

	if _, err := p.AlignPageContext(context.Background(), "p2", healthDocPage()); err != nil {
		t.Errorf("alignable page: err = %v, want nil", err)
	}
}

func TestEnsureTrained(t *testing.T) {
	p := NewPipeline()
	if err := p.EnsureTrained(); !errors.Is(err, ErrUntrained) {
		t.Errorf("heuristic pipeline: err = %v, want ErrUntrained", err)
	}
}

// TestCloneMatchesOriginal proves clone semantics: a clone shares models and
// configuration, reuses its scratch across documents, and still produces
// byte-identical output to the original pipeline.
func TestCloneMatchesOriginal(t *testing.T) {
	c := corpus.Generate(corpus.TableSConfig(11))
	p := NewPipeline()
	clone := p.Clone()
	if clone.local == nil {
		t.Fatal("clone has no local scratch")
	}
	if p.local != nil {
		t.Fatal("Clone mutated the original pipeline")
	}
	docs := c.Docs
	if len(docs) > 8 {
		docs = docs[:8]
	}
	for _, doc := range docs {
		want := p.Align(doc)
		got := clone.Align(doc) // reuses the clone's candidate buffer every round
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("doc %s: clone output diverged from original", doc.ID)
		}
	}
}
