package core_test

// Corpus-level equivalence suite for the classify stage rewrite: the frozen
// flat-array batch engine and the pre-classifier gate must be observationally
// identical to the per-pair pointer-tree reference — bit-identical scores
// from ScorePairs, byte-identical alignments from Align — across every
// document of a trained corpus. Randomized forest-level equivalence lives in
// internal/forest/frozen_test.go; this file pins the end-to-end contract the
// pipeline depends on.

import (
	"encoding/json"
	"math"
	"sync"
	"testing"

	"briq/internal/core"
	"briq/internal/corpus"
	"briq/internal/document"
	"briq/internal/experiment"
	"briq/internal/quantity"
)

var (
	eqOnce    sync.Once
	eqCorpus  *corpus.Corpus
	eqTrained *core.Pipeline
	eqErr     error
)

// eqFixture builds a small trained corpus shared by the equivalence tests;
// training dominates the suite's cost, so it runs once.
func eqFixture(t *testing.T) (*corpus.Corpus, *core.Pipeline) {
	t.Helper()
	eqOnce.Do(func() {
		cfg := corpus.TableSConfig(17)
		cfg.Pages = 60
		eqCorpus = corpus.Generate(cfg)
		split := experiment.SplitCorpus(eqCorpus, 7)
		trained, err := experiment.Train(eqCorpus, split.Train, experiment.DefaultTrainOptions(3))
		if err != nil {
			eqErr = err
			return
		}
		eqTrained = experiment.NewBriQ(trained).P
	})
	if eqErr != nil {
		t.Fatal(eqErr)
	}
	return eqCorpus, eqTrained
}

// referenceCopy returns a shallow copy of p that classifies through the
// per-pair pointer-tree reference path.
func referenceCopy(p *core.Pipeline) *core.Pipeline {
	ref := *p
	ref.ReferenceClassify = true
	return &ref
}

// TestFrozenClassifyBitIdenticalOnCorpus: the batch engine's ScorePairs
// scores equal the reference path's bit for bit on every mention×candidate
// pair of every corpus document, with the trained seed forest.
func TestFrozenClassifyBitIdenticalOnCorpus(t *testing.T) {
	c, p := eqFixture(t)
	ref := referenceCopy(p)
	pairs := 0
	for _, doc := range c.Docs {
		got := p.ScorePairs(doc)
		want := ref.ScorePairs(doc)
		if len(got) != len(want) {
			t.Fatalf("doc %s: %d candidates batched, %d reference", doc.ID, len(got), len(want))
		}
		for i := range got {
			if got[i].Text != want[i].Text || got[i].Table != want[i].Table {
				t.Fatalf("doc %s candidate %d: pair (%d,%d) != (%d,%d)",
					doc.ID, i, got[i].Text, got[i].Table, want[i].Text, want[i].Table)
			}
			if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
				t.Fatalf("doc %s pair (%d,%d): batched score %v (bits %x) != reference %v (bits %x)",
					doc.ID, got[i].Text, got[i].Table,
					got[i].Score, math.Float64bits(got[i].Score),
					want[i].Score, math.Float64bits(want[i].Score))
			}
		}
		pairs += len(got)
	}
	if pairs == 0 {
		t.Fatal("corpus produced no mention pairs; equivalence vacuous")
	}
	t.Logf("verified %d pairs across %d documents", pairs, len(c.Docs))
}

// TestHeuristicClassifyBitIdentical: the untrained (heuristic goodness-mean)
// configuration takes the reference path by construction; pin that its
// scores are unchanged by the rewrite's buffer reuse.
func TestHeuristicClassifyBitIdentical(t *testing.T) {
	c, _ := eqFixture(t)
	p := core.NewPipeline()
	ref := referenceCopy(p)
	for _, doc := range c.Docs[:min(len(c.Docs), 10)] {
		got := p.ScorePairs(doc)
		want := ref.ScorePairs(doc)
		for i := range got {
			if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
				t.Fatalf("doc %s pair %d: heuristic score %v != reference %v",
					doc.ID, i, got[i].Score, want[i].Score)
			}
		}
	}
}

// gateablePairs counts the pairs of doc the pre-classifier gate skips:
// units specified on both sides and incompatible.
func gateablePairs(doc *document.Document) int {
	n := 0
	for xi := range doc.TextMentions {
		x := &doc.TextMentions[xi]
		for _, tm := range doc.TableMentions {
			if x.Unit != "" && tm.Unit != "" && !quantity.UnitsCompatible(x.Unit, tm.Unit) {
				n++
			}
		}
	}
	return n
}

// TestGateDecisionIdentity: gate-on (the default align path), gate-off, and
// the full reference path produce byte-identical alignments on every corpus
// document — the gate may only skip work, never change a decision.
func TestGateDecisionIdentity(t *testing.T) {
	c, p := eqFixture(t)

	gateOff := *p
	gateOff.NoClassifyGate = true
	ref := referenceCopy(p)
	ref.NoClassifyGate = true

	gateable := 0
	for _, doc := range c.Docs {
		gated := p.Align(doc)
		ungated := gateOff.Align(doc)
		reference := ref.Align(doc)

		g, _ := json.Marshal(gated)
		u, _ := json.Marshal(ungated)
		r, _ := json.Marshal(reference)
		if string(g) != string(u) {
			t.Fatalf("doc %s: gate-on alignments differ from gate-off:\n%s\nvs\n%s", doc.ID, g, u)
		}
		if string(g) != string(r) {
			t.Fatalf("doc %s: engine alignments differ from reference:\n%s\nvs\n%s", doc.ID, g, r)
		}
		gateable += gateablePairs(doc)
	}
	if gateable == 0 {
		t.Fatal("no corpus pair is unit-incompatible; the gate test is vacuous")
	}
	t.Logf("gate skips %d pairs across the corpus", gateable)
}
