package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"briq/internal/document"
	"briq/internal/htmlx"
	"briq/internal/quantity"
	"briq/internal/table"
)

func segmentOne(t *testing.T, text string, tbl *table.Table) *document.Document {
	t.Helper()
	docs := document.NewSegmenter().Segment("p", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatalf("segmentation produced %d docs", len(docs))
	}
	return docs[0]
}

func alignmentFor(als []Alignment, surfacePart string) (Alignment, bool) {
	for _, a := range als {
		if strings.Contains(a.TextSurface, surfacePart) {
			return a, true
		}
	}
	return Alignment{}, false
}

// TestAlignFig1aHealth reproduces the paper's health example: "total of 123
// patients" must align to the sum of the total column.
func TestAlignFig1aHealth(t *testing.T) {
	tbl, err := table.New("t0", "side effects reported by patients", [][]string{
		{"side effects", "male", "female", "total"},
		{"Rash", "15", "20", "35"},
		{"Depression", "13", "25", "38"},
		{"Hypertension", "19", "15", "34"},
		{"Nausea", "5", "6", "11"},
		{"Eye Disorders", "2", "3", "5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := "A total of 123 patients who undergo the drug trials reported side effects, " +
		"of which there were 69 female patients and 54 male patients. " +
		"The most common side affect is depression, reported by 38 patients."
	doc := segmentOne(t, text, tbl)

	als := NewPipeline().Align(doc)

	sum, ok := alignmentFor(als, "123")
	if !ok {
		t.Fatalf("'123' not aligned; got %+v", als)
	}
	if sum.Agg != quantity.Sum || sum.Value != 123 {
		t.Errorf("'123' aligned to %s (%v=%v), want sum=123", sum.TableKey, sum.Agg, sum.Value)
	}

	if depr, ok := alignmentFor(als, "38"); ok {
		if depr.Agg != quantity.SingleCell || depr.Value != 38 {
			t.Errorf("'38' aligned to %s, want single cell 38", depr.TableKey)
		}
	} else {
		t.Error("'38' not aligned")
	}
}

// TestAlignFig1bEnvironment reproduces the approximate-mention example:
// "37K EUR" must align to the cell 36900 (German MSRP of the A3).
func TestAlignFig1bEnvironment(t *testing.T) {
	tbl, err := table.New("t0", "car ratings and price", [][]string{
		{"spec", "Focus E", "A3", "VW Golf"},
		{"German MSRP", "34900", "36900", "33800"},
		{"American MSRP", "29120", "38900", "29915"},
		{"Emission (g/km)", "0", "105", "122"},
		{"Final rating", "1.33", "2.67", "2.67"},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := "Audi A3 e-tron is the least affordable option with 37K EUR in Germany " +
		"and 39K USD in the US. The Ford Focus Electric has the lowest rating of 1.33 " +
		"with 0 emission."
	doc := segmentOne(t, text, tbl)

	als := NewPipeline().Align(doc)
	a3, ok := alignmentFor(als, "37K")
	if !ok {
		t.Fatalf("'37K EUR' not aligned; got %+v", als)
	}
	if a3.Value != 36900 {
		t.Errorf("'37K EUR' aligned to %s (value %v), want 36900", a3.TableKey, a3.Value)
	}
}

// TestAlignFig1cFinance reproduces the calculated-quantity example:
// "increased by 1.5%" must align to ratio(890, 876).
func TestAlignFig1cFinance(t *testing.T) {
	tbl, err := table.New("t0", "Income gains total revenue and income", [][]string{
		{"gains", "2013", "2012", "2011"},
		{"Total Revenue", "3,263", "3,193", "2,911"},
		{"Gross income", "1,069", "1,053", "877"},
		{"Income taxes", "179", "177", "160"},
		{"Income", "890", "876", "849"},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := "The net income of the year was 890 in total revenue terms. " +
		"Compared to the income of the previous year, it increased by 1.5%."
	doc := segmentOne(t, text, tbl)

	als := NewPipeline().Align(doc)
	ratio, ok := alignmentFor(als, "1.5%")
	if !ok {
		t.Fatalf("'1.5%%' not aligned; got %+v", als)
	}
	if ratio.Agg != quantity.Ratio {
		t.Errorf("'1.5%%' aligned to %s (%v), want a change ratio", ratio.TableKey, ratio.Agg)
	}
	want := (890.0 - 876.0) / 890.0 * 100
	if math.Abs(ratio.Value-want) > 1e-9 {
		t.Errorf("ratio value = %v, want %v (ratio(890,876))", ratio.Value, want)
	}
}

func TestAlignPageEndToEnd(t *testing.T) {
	html := `<html><head><title>Drug Trial</title></head><body>
<p>A total of 123 patients reported side effects, with 69 female patients.</p>
<table>
<caption>side effects reported by patients</caption>
<tr><th>side effects</th><th>male</th><th>female</th><th>total</th></tr>
<tr><td>Rash</td><td>15</td><td>20</td><td>35</td></tr>
<tr><td>Depression</td><td>13</td><td>25</td><td>38</td></tr>
<tr><td>Hypertension</td><td>19</td><td>15</td><td>34</td></tr>
<tr><td>Nausea</td><td>5</td><td>6</td><td>11</td></tr>
<tr><td>Eye Disorders</td><td>2</td><td>3</td><td>5</td></tr>
</table>
</body></html>`
	page := htmlx.ParseString(html)
	als, err := NewPipeline().AlignPage("page0", page)
	if err != nil {
		t.Fatal(err)
	}
	if len(als) == 0 {
		t.Fatal("no alignments from HTML page")
	}
	sum, ok := alignmentFor(als, "123")
	if !ok || sum.Agg != quantity.Sum {
		t.Errorf("page alignment for '123' = %+v", als)
	}
}

func TestAlignmentJSONRoundTrip(t *testing.T) {
	a := Alignment{
		DocID: "d0", TextSurface: "123", TableKey: "t0:sum(col 3)",
		Agg: quantity.Sum, AggName: "sum", Value: 123, Score: 0.9,
	}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"agg":"sum"`) {
		t.Errorf("JSON = %s", data)
	}
	var back Alignment
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.TableKey != a.TableKey || back.Value != a.Value {
		t.Errorf("round trip = %+v", back)
	}
}

func TestAlignAllMatchesSequential(t *testing.T) {
	tbl, err := table.New("t0", "counts of patients", [][]string{
		{"name", "count", "total"},
		{"a", "10", "30"},
		{"b", "20", "40"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var docs []*document.Document
	texts := []string{
		"The count reached 10 for the first item.",
		"A total of 30 was recorded overall.",
		"Item b counted 20 in the second run.",
		"Totals of 40 appeared at the end.",
	}
	for i, text := range texts {
		ds := document.NewSegmenter().Segment("pg"+string(rune('a'+i)), []string{text}, []*table.Table{tbl})
		docs = append(docs, ds...)
	}
	p := NewPipeline()
	seq := p.AlignAll(docs, 1)
	par := p.AlignAll(docs, 4)
	if len(seq) != len(par) {
		t.Fatalf("sequential %d vs parallel %d alignments", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("alignment %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}

func TestScorePairsCoversAllPairs(t *testing.T) {
	tbl, err := table.New("t0", "counts", [][]string{
		{"name", "count"},
		{"a", "10"},
		{"b", "20"},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := segmentOne(t, "The counts were 10 and 20 overall.", tbl)
	p := NewPipeline()
	cands := p.ScorePairs(doc)
	want := len(doc.TextMentions) * len(doc.TableMentions)
	if len(cands) != want {
		t.Errorf("pairs = %d, want %d", len(cands), want)
	}
	for _, c := range cands {
		if c.Score < 0 || c.Score > 1 {
			t.Errorf("score out of range: %v", c.Score)
		}
	}
}
