package resolve

import (
	"context"

	"briq/internal/document"
	"briq/internal/filter"
	"briq/internal/graph"
)

// RWR is the default strategy: the paper's Algorithm 1 — candidate graph
// construction, random walks with restart on the frozen CSR engine, entropy
// ordering and per-decision rewiring. Its output is byte-identical to the
// historical hardcoded graph.Build(...).Resolve() path; the equivalence
// suites in internal/graph and cmd/briq-bench gate that invariant.
type RWR struct {
	// Config carries the graph and walk hyper-parameters (λ1, λ2, restart,
	// α, β, ε, …). core.Pipeline builds its default RWR resolver from its own
	// GraphConfig, so existing tuning keeps applying.
	Config graph.Config
}

// NewRWR returns the random-walk strategy with the given graph configuration.
func NewRWR(cfg graph.Config) *RWR { return &RWR{Config: cfg} }

// Name implements Resolver.
func (*RWR) Name() string { return NameRWR }

// ParamsHash implements Resolver: every graph/walk hyper-parameter affects
// the walk outcome, so the whole Config is digested.
func (r *RWR) ParamsHash() string { return paramsHash("rwr|%+v", r.Config) }

// Clone implements Resolver. The walk scratch (dense probability vectors,
// CSR arrays) lives inside each per-document graph.Graph, so the resolver
// itself carries no mutable state and a shallow copy suffices.
func (r *RWR) Clone() Resolver {
	c := *r
	return &c
}

// Resolve implements Resolver by running Algorithm 1 on a fresh candidate
// graph. The walks are CPU-bound and run to completion once started; ctx is
// honored at entry.
func (r *RWR) Resolve(ctx context.Context, doc *document.Document, candidates []filter.Candidate) ([]Assignment, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := graph.Build(r.Config, doc, candidates)
	resolved := g.Resolve()
	out := make([]Assignment, len(resolved))
	for i, a := range resolved {
		out[i] = Assignment{Text: a.Text, Table: a.Table, Score: a.Score}
	}
	return out, nil
}
