package resolve

import (
	"context"
	"errors"
	"time"

	"briq/internal/document"
	"briq/internal/filter"
	"briq/internal/graph"
	"briq/internal/ilp"
	"briq/internal/table"
)

// DefaultILPBudget is the per-document solve budget when none is configured.
// Behind BriQ's adaptive filtering the candidate sets are small enough that
// branch-and-bound usually proves optimality in well under a millisecond;
// the budget exists for the adversarial documents where it does not.
const DefaultILPBudget = 200 * time.Millisecond

// ILP is the exact strategy the paper considered and dismissed (§VI): joint
// assignment as a 0/1 integer program solved by branch-and-bound. Exactness
// costs worst-case exponential time, so every document's solve runs under a
// time budget; on exhaustion the resolver degrades gracefully to the rwr
// strategy for that document instead of shipping a truncated search's answer.
type ILP struct {
	// Config supplies the acceptance threshold (Epsilon, as the ILP MinScore)
	// and the graph parameters of the rwr fallback.
	Config graph.Config
	// Budget bounds each document's branch-and-bound solve. ≤0 means
	// DefaultILPBudget. The context's deadline also applies, whichever is
	// tighter.
	Budget time.Duration

	scratch *ilpScratch // nil on shared prototypes; owned by a clone
}

// ilpScratch holds the problem-construction buffers a single-goroutine clone
// reuses across documents.
type ilpScratch struct {
	byText    [][]ilp.Cand
	mentionOf []int
}

// NewILP returns the exact strategy with the given graph configuration and
// per-document budget (≤0 means DefaultILPBudget).
func NewILP(cfg graph.Config, budget time.Duration) *ILP {
	return &ILP{Config: cfg, Budget: budget}
}

// Name implements Resolver.
func (*ILP) Name() string { return NameILP }

// ParamsHash implements Resolver. The budget is part of the hash: it decides
// when the fallback path engages, which changes output.
func (r *ILP) ParamsHash() string { return paramsHash("ilp|%+v|budget=%d", r.Config, r.budget()) }

// Clone implements Resolver: the clone gets private problem-building scratch.
func (r *ILP) Clone() Resolver {
	c := *r
	c.scratch = &ilpScratch{}
	return &c
}

func (r *ILP) budget() time.Duration {
	if r.Budget <= 0 {
		return DefaultILPBudget
	}
	return r.Budget
}

// Resolve implements Resolver: it formulates the document's filtered
// candidates as a joint-assignment ILP — prior per pair, pairwise coherence
// bonus for co-chosen table mentions that share a cell or a line — and solves
// it exactly within the budget. Assignments score the classifier prior of the
// chosen pair. On ErrBudgetExhausted the document falls back to the rwr
// strategy; on context cancellation ctx.Err() is returned.
func (r *ILP) Resolve(ctx context.Context, doc *document.Document, candidates []filter.Candidate) ([]Assignment, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	problem, mentionOf := r.buildProblem(doc, candidates)
	if len(problem.Candidates) == 0 {
		return []Assignment{}, nil
	}

	sol, err := ilp.SolveContext(ctx, problem, r.budget())
	switch {
	case errors.Is(err, ilp.ErrBudgetExhausted):
		// Exactness is out of reach for this document; re-resolve with the
		// strategy that scales rather than trusting a truncated search.
		return (&RWR{Config: r.Config}).Resolve(ctx, doc, candidates)
	case err != nil:
		return nil, err
	}

	out := make([]Assignment, 0, len(sol.Assignment))
	for i, ci := range sol.Assignment {
		if ci < 0 {
			continue
		}
		cand := problem.Candidates[i][ci]
		out = append(out, Assignment{Text: mentionOf[i], Table: cand.Target, Score: cand.Score})
	}
	return out, nil
}

// buildProblem groups the filtered candidates by text mention (in mention
// order, so the formulation is deterministic) and attaches the coherence
// function mirroring the candidate graph's table-table edges.
func (r *ILP) buildProblem(doc *document.Document, candidates []filter.Candidate) (ilp.Problem, []int) {
	var byText [][]ilp.Cand
	var mentionOf []int
	if r.scratch != nil {
		byText = r.scratch.byText[:0]
		mentionOf = r.scratch.mentionOf[:0]
		defer func() {
			r.scratch.byText = byText[:0]
			r.scratch.mentionOf = mentionOf[:0]
		}()
	}

	// candidates arrive grouped arbitrarily; bucket them per text mention in
	// index order. Per-mention candidate order follows the input slice, which
	// filter.Apply emits deterministically.
	perMention := make(map[int][]ilp.Cand, len(doc.TextMentions))
	for _, c := range candidates {
		perMention[c.Text] = append(perMention[c.Text], ilp.Cand{Target: c.Table, Score: c.Score})
	}
	for xi := 0; xi < len(doc.TextMentions); xi++ {
		if cs, ok := perMention[xi]; ok {
			mentionOf = append(mentionOf, xi)
			byText = append(byText, cs)
		}
	}

	problem := ilp.Problem{
		Candidates: byText,
		MinScore:   r.Config.Epsilon,
		Coherence: func(a, b int) float64 {
			ta, tb := doc.TableMentions[a], doc.TableMentions[b]
			if ta.Table != tb.Table {
				return 0
			}
			switch {
			case cellsShareCell(ta.Cells, tb.Cells):
				return cohSharedCell
			case cellsShareLine(ta.Cells, tb.Cells):
				return cohSharedLine
			}
			return 0
		},
	}
	return problem, mentionOf
}

// Coherence bonuses for co-chosen table mentions, mirroring the graph's
// SharedCellBoost/TableTableW relatedness ordering at a scale small enough
// not to drown the classifier priors.
const (
	cohSharedCell = 0.1
	cohSharedLine = 0.05
)

func cellsShareCell(a, b []table.CellRef) bool {
	for _, ca := range a {
		for _, cb := range b {
			if ca == cb {
				return true
			}
		}
	}
	return false
}

func cellsShareLine(a, b []table.CellRef) bool {
	for _, ca := range a {
		for _, cb := range b {
			if ca.Row == cb.Row || ca.Col == cb.Col {
				return true
			}
		}
	}
	return false
}
