// Package resolve makes the pipeline's global-resolution stage a pluggable
// strategy. The paper's published algorithm is random walks with restart over
// the candidate graph (Algorithm 1), but that was an explicit design choice:
// an exact ILP formulation was considered and dismissed for scaling reasons
// (§VI). This package turns that axis into a first-class interface with three
// implementations:
//
//	rwr     the frozen-CSR random-walk engine (default; byte-identical to
//	        the historical hardcoded graph.Resolve path)
//	ilp     exact branch-and-bound joint assignment with a per-document time
//	        budget and graceful fallback to rwr on budget exhaustion
//	greedy  top-1 classifier score per mention — the cheap baseline
//
// core.Pipeline consumes the interface; strategy selection is threaded from
// briq.WithResolver and the briq-server -resolver flag down to here. Every
// resolver exposes a stable Name and ParamsHash so the pipeline fingerprint
// (and therefore the serving layer's content-addressed cache keys) can never
// conflate results computed under different strategies or parameters.
package resolve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"briq/internal/document"
	"briq/internal/filter"
)

// Assignment is one decided text↔table pair, the resolver output unit. Text
// and Table index into the document's mention lists; Score is the strategy's
// own confidence (OverallScore for rwr, the classifier prior for ilp and
// greedy), comparable within one strategy but not across strategies.
type Assignment struct {
	Text  int
	Table int
	Score float64
}

// Resolver is one global-resolution strategy: given a document and its
// filtered candidate pairs, decide which text mention aligns to which table
// mention. Implementations must be deterministic for a fixed input and must
// return assignments sorted by text-mention index.
//
// A Resolver constructed by its New* function is read-only and safe for
// concurrent Resolve calls (mirroring core.NewPipeline). Clone returns a
// private copy with per-worker scratch buffers for single-goroutine use — the
// runtime pool gives each worker exactly one clone, and core.Pipeline.Clone
// clones its resolver alongside its own scratch.
type Resolver interface {
	// Name is the stable strategy identifier ("rwr", "ilp", "greedy") used
	// for registry lookup, per-resolver stage metrics and fingerprinting.
	Name() string

	// ParamsHash digests every parameter that can change the strategy's
	// output, so two resolvers share a hash iff they would produce identical
	// assignments on every input. It feeds core.Pipeline.Fingerprint.
	ParamsHash() string

	// Resolve decides the alignments of one document. It honors ctx
	// cooperatively: on cancellation it returns ctx.Err() (possibly after
	// finishing a CPU-bound phase already in flight).
	Resolve(ctx context.Context, doc *document.Document, candidates []filter.Candidate) ([]Assignment, error)

	// Clone returns a copy with private scratch for a dedicated worker
	// goroutine. The clone shares all configuration read-only.
	Clone() Resolver
}

// Strategy names, the registry keys accepted by briq.WithResolver and the
// briq-server -resolver flag.
const (
	NameRWR    = "rwr"
	NameILP    = "ilp"
	NameGreedy = "greedy"
)

// Names lists every built-in strategy, default first.
func Names() []string { return []string{NameRWR, NameILP, NameGreedy} }

// Known reports whether name is a built-in strategy.
func Known(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// paramsHash digests a formatted parameter string into the stable hex form
// every built-in resolver returns from ParamsHash.
func paramsHash(format string, args ...any) string {
	h := sha256.New()
	fmt.Fprintf(h, format, args...)
	return hex.EncodeToString(h.Sum(nil))
}
