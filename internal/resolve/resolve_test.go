package resolve_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"briq/internal/core"
	"briq/internal/corpus"
	"briq/internal/document"
	"briq/internal/filter"
	"briq/internal/graph"
	"briq/internal/resolve"
)

// workloadInput is one document with its production-shaped candidate set:
// real classifier scoring (heuristic configuration) and adaptive filtering,
// exactly what the resolution stage sees in the pipeline.
type workloadInput struct {
	doc   *document.Document
	cands []filter.Candidate
}

func workload(t *testing.T, seed int64, pages int) ([]workloadInput, graph.Config) {
	t.Helper()
	c := corpus.Generate(corpus.TableLConfig(seed, pages))
	p := core.NewPipeline()
	var inputs []workloadInput
	for _, doc := range c.Docs {
		cands := p.ScorePairs(doc)
		filtered := filter.Apply(p.FilterConfig, doc, p.Tagger, cands)
		if len(filtered.Kept) == 0 {
			continue
		}
		inputs = append(inputs, workloadInput{doc, filtered.Kept})
	}
	if len(inputs) == 0 {
		t.Fatalf("seed %d produced no documents with candidates", seed)
	}
	return inputs, p.GraphConfig
}

// TestRWRMatchesGraphResolve pins the refactor's core invariant: the rwr
// strategy behind the Resolver interface is byte-identical to the historical
// hardcoded graph.Build(...).Resolve() path on every workload document.
func TestRWRMatchesGraphResolve(t *testing.T) {
	inputs, cfg := workload(t, 11, 6)
	r := resolve.NewRWR(cfg)
	ctx := context.Background()
	for _, in := range inputs {
		want := graph.Build(cfg, in.doc, in.cands).Resolve()
		got, err := r.Resolve(ctx, in.doc, in.cands)
		if err != nil {
			t.Fatalf("doc %s: %v", in.doc.ID, err)
		}
		if len(got) != len(want) {
			t.Fatalf("doc %s: resolver produced %d assignments, graph path %d", in.doc.ID, len(got), len(want))
		}
		for i := range got {
			w := resolve.Assignment{Text: want[i].Text, Table: want[i].Table, Score: want[i].Score}
			if got[i] != w {
				t.Fatalf("doc %s assignment %d: resolver %+v, graph path %+v", in.doc.ID, i, got[i], w)
			}
		}
	}
}

// TestGreedySanity checks the baseline's contract on a controlled candidate
// set: argmax prior per mention, deterministic tie-break toward the lower
// table index, abstention below the threshold, output in text-mention order.
func TestGreedySanity(t *testing.T) {
	inputs, _ := workload(t, 12, 4)
	doc := inputs[0].doc
	if len(doc.TextMentions) < 3 || len(doc.TableMentions) < 3 {
		t.Fatalf("workload document too small: %d text, %d table mentions",
			len(doc.TextMentions), len(doc.TableMentions))
	}
	cands := []filter.Candidate{
		{Text: 2, Table: 1, Score: 0.9}, // out of order on purpose
		{Text: 0, Table: 0, Score: 0.6},
		{Text: 0, Table: 2, Score: 0.8}, // mention 0's argmax
		{Text: 1, Table: 2, Score: 0.3}, // below threshold: abstains
		{Text: 2, Table: 0, Score: 0.9}, // tie with (2,1): lower table wins
	}
	got, err := resolve.NewGreedy(0.5).Resolve(context.Background(), doc, cands)
	if err != nil {
		t.Fatal(err)
	}
	want := []resolve.Assignment{
		{Text: 0, Table: 2, Score: 0.8},
		{Text: 2, Table: 0, Score: 0.9},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("greedy = %+v, want %+v", got, want)
	}
}

// TestGreedyDeterministicAcrossClones runs the same workload through the
// shared prototype and through a scratch-owning clone: byte-identical output,
// repeated to confirm the scratch reuse does not leak state across documents.
func TestGreedyDeterministicAcrossClones(t *testing.T) {
	inputs, _ := workload(t, 13, 4)
	proto := resolve.NewGreedy(resolve.DefaultGreedyMinScore)
	clone := proto.Clone()
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		for _, in := range inputs {
			want, err := proto.Resolve(ctx, in.doc, in.cands)
			if err != nil {
				t.Fatal(err)
			}
			got, err := clone.Resolve(ctx, in.doc, in.cands)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d doc %s: clone %+v, prototype %+v", round, in.doc.ID, got, want)
			}
		}
	}
}

// TestRWRILPAgreement is the cross-strategy sanity check: on small synthetic
// documents, where exact branch-and-bound is tractable, the walk-based and
// ILP strategies should agree on high-confidence alignments. The strategies
// optimize different objectives, so the test checks agreement where both are
// confident rather than full equality: mentions the rwr strategy aligned with
// a clear-margin score and the ILP also aligned must point at the same table
// mention in the overwhelming majority of cases.
func TestRWRILPAgreement(t *testing.T) {
	inputs, cfg := workload(t, 14, 8)
	rwr := resolve.NewRWR(cfg)
	ilp := resolve.NewILP(cfg, 5*time.Second) // generous: every doc solves exactly
	ctx := context.Background()

	checked, agreed := 0, 0
	for _, in := range inputs {
		rw, err := rwr.Resolve(ctx, in.doc, in.cands)
		if err != nil {
			t.Fatal(err)
		}
		il, err := ilp.Resolve(ctx, in.doc, in.cands)
		if err != nil {
			t.Fatal(err)
		}
		ilpOf := make(map[int]int, len(il))
		for _, a := range il {
			ilpOf[a.Text] = a.Table
		}
		for _, a := range rw {
			if a.Score < 0.6 { // only clear-cut rwr decisions
				continue
			}
			ti, ok := ilpOf[a.Text]
			if !ok {
				continue
			}
			checked++
			if ti == a.Table {
				agreed++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no high-confidence overlapping decisions to compare")
	}
	if ratio := float64(agreed) / float64(checked); ratio < 0.9 {
		t.Fatalf("rwr and ilp agree on %d/%d (%.0f%%) high-confidence alignments, want ≥90%%",
			agreed, checked, 100*ratio)
	}
}

// TestILPFallsBackToRWROnBudgetExhaustion gives the ILP strategy a budget no
// real solve can meet on a search it cannot prune: a dense, near-uniform
// candidate set (weak bounds force deep branch-and-bound, so the solver's
// amortized expiry check is guaranteed to fire). The strategy must degrade to
// the rwr strategy's exact output instead of shipping a truncated search's
// answer. Small documents that happen to solve exactly within the budget are
// legitimately not fallbacks, hence the dense construction rather than the
// production filter output.
func TestILPFallsBackToRWROnBudgetExhaustion(t *testing.T) {
	inputs, cfg := workload(t, 15, 6)
	rwr := resolve.NewRWR(cfg)
	ilp := resolve.NewILP(cfg, time.Nanosecond)
	ctx := context.Background()
	checked := 0
	for _, in := range inputs {
		nText, nTable := len(in.doc.TextMentions), len(in.doc.TableMentions)
		if nText < 4 || nTable < 8 {
			continue // search too small to outlast even a 1ns budget
		}
		checked++
		dense := make([]filter.Candidate, 0, nText*nTable)
		for xi := 0; xi < nText; xi++ {
			for ti := 0; ti < nTable; ti++ {
				// Near-uniform scores with a deterministic jitter: no ties,
				// but no dominant branch for the bound to prune on either.
				dense = append(dense, filter.Candidate{
					Text: xi, Table: ti,
					Score: 0.5 + 0.001*float64((xi*7+ti*13)%17),
				})
			}
		}
		want, err := rwr.Resolve(ctx, in.doc, dense)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ilp.Resolve(ctx, in.doc, dense)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("doc %s: budget-exhausted ilp %+v, want rwr fallback %+v", in.doc.ID, got, want)
		}
	}
	if checked == 0 {
		t.Fatal("no documents large enough to force budget exhaustion")
	}
}

// TestResolveHonorsCancelledContext: every strategy returns ctx.Err() on a
// dead context instead of doing work.
func TestResolveHonorsCancelledContext(t *testing.T) {
	inputs, cfg := workload(t, 16, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, r := range []resolve.Resolver{
		resolve.NewRWR(cfg),
		resolve.NewILP(cfg, time.Second),
		resolve.NewGreedy(0.5),
	} {
		if _, err := r.Resolve(ctx, inputs[0].doc, inputs[0].cands); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", r.Name(), err)
		}
	}
}

// TestRegistryAndParamsHash pins the registry names and the ParamsHash
// contract: same params → same hash, different params → different hash.
func TestRegistryAndParamsHash(t *testing.T) {
	if got := resolve.Names(); !reflect.DeepEqual(got, []string{"rwr", "ilp", "greedy"}) {
		t.Fatalf("Names() = %v", got)
	}
	for _, name := range resolve.Names() {
		if !resolve.Known(name) {
			t.Errorf("Known(%q) = false", name)
		}
	}
	if resolve.Known("annealing") {
		t.Error("Known accepted an unregistered strategy")
	}

	cfg := graph.DefaultConfig()
	if resolve.NewRWR(cfg).ParamsHash() != resolve.NewRWR(cfg).ParamsHash() {
		t.Error("identical rwr configs hash differently")
	}
	cfg2 := cfg
	cfg2.Restart += 0.01
	if resolve.NewRWR(cfg).ParamsHash() == resolve.NewRWR(cfg2).ParamsHash() {
		t.Error("distinct rwr configs share a hash")
	}
	if resolve.NewILP(cfg, time.Second).ParamsHash() == resolve.NewILP(cfg, 2*time.Second).ParamsHash() {
		t.Error("distinct ilp budgets share a hash")
	}
	if resolve.NewGreedy(0.4).ParamsHash() == resolve.NewGreedy(0.5).ParamsHash() {
		t.Error("distinct greedy thresholds share a hash")
	}
	if resolve.NewRWR(cfg).ParamsHash() == resolve.NewILP(cfg, time.Second).ParamsHash() {
		t.Error("rwr and ilp share a hash for the same graph config")
	}
}
