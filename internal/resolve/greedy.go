package resolve

import (
	"context"

	"briq/internal/document"
	"briq/internal/filter"
)

// DefaultGreedyMinScore is the acceptance threshold when none is configured —
// the same operating point as the paper's classifier-only baseline (§VII-D).
const DefaultGreedyMinScore = 0.5

// Greedy is the cheap baseline strategy: each text mention takes its
// top-scored candidate (ties broken by lower table-mention index) when that
// score clears MinScore, with no joint reasoning at all. It is the
// latency-floor reference point of the resolver-comparison bench: one pass
// over the candidates, no graph, no walks, no search.
type Greedy struct {
	// MinScore is the acceptance threshold on the classifier prior; a mention
	// whose best candidate scores below it abstains. Out-of-range values are
	// the caller's to clamp (briq.WithResolver records a ConfigWarning).
	MinScore float64

	scratch *greedyScratch // nil on shared prototypes; owned by a clone
}

// greedyScratch holds the per-mention argmax buffers a single-goroutine clone
// reuses across documents.
type greedyScratch struct {
	best []filter.Candidate
	seen []bool
}

// NewGreedy returns the top-1 baseline with the given acceptance threshold.
func NewGreedy(minScore float64) *Greedy { return &Greedy{MinScore: minScore} }

// Name implements Resolver.
func (*Greedy) Name() string { return NameGreedy }

// ParamsHash implements Resolver.
func (r *Greedy) ParamsHash() string { return paramsHash("greedy|min=%g", r.MinScore) }

// Clone implements Resolver: the clone gets private argmax scratch.
func (r *Greedy) Clone() Resolver {
	c := *r
	c.scratch = &greedyScratch{}
	return &c
}

// Resolve implements Resolver with a single deterministic pass: argmax prior
// per text mention, threshold, emit in text-mention order.
func (r *Greedy) Resolve(ctx context.Context, doc *document.Document, candidates []filter.Candidate) ([]Assignment, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := len(doc.TextMentions)
	var best []filter.Candidate
	var seen []bool
	if r.scratch != nil {
		if cap(r.scratch.best) < m {
			r.scratch.best = make([]filter.Candidate, m)
			r.scratch.seen = make([]bool, m)
		}
		best = r.scratch.best[:m]
		seen = r.scratch.seen[:m]
		for i := range seen {
			seen[i] = false
		}
	} else {
		best = make([]filter.Candidate, m)
		seen = make([]bool, m)
	}

	for _, c := range candidates {
		if c.Text < 0 || c.Text >= m {
			continue
		}
		if !seen[c.Text] || c.Score > best[c.Text].Score ||
			(c.Score == best[c.Text].Score && c.Table < best[c.Text].Table) {
			best[c.Text] = c
			seen[c.Text] = true
		}
	}

	out := make([]Assignment, 0, m)
	for xi := 0; xi < m; xi++ {
		if !seen[xi] || best[xi].Score < r.MinScore {
			continue
		}
		out = append(out, Assignment{Text: xi, Table: best[xi].Table, Score: best[xi].Score})
	}
	return out, nil
}
