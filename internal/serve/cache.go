package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// shardCount is the fixed number of cache shards. A power of two so the
// shard index is one mask of the key's first byte; 16 keeps per-shard mutex
// hold times negligible at server concurrency without oversizing the struct.
const shardCount = 16

// entryOverhead approximates the bookkeeping bytes per cache entry (map
// bucket share, list element, entry struct) charged on top of the caller's
// value size, so the byte bound reflects real memory, not just payloads.
const entryOverhead = 128

// Cache is a sharded, content-addressed LRU bounded by total bytes. Each
// shard owns an independent mutex, map and recency list; a key's shard is
// fixed by its first byte, so the per-shard budget is capacity/shardCount.
// Values are opaque — callers report their size and promise not to mutate
// stored values afterward.
type Cache struct {
	capacity int64 // total byte budget across shards
	perShard int64
	shards   [shardCount]cacheShard

	bytes     atomic.Int64
	entries   atomic.Int64
	evictions atomic.Int64
}

type cacheShard struct {
	mu    sync.Mutex
	ll    list.List
	items map[Key]*list.Element
	bytes int64 // charged bytes resident in this shard (guarded by mu)
}

type cacheEntry struct {
	key  Key
	val  any
	size int64 // charged size: caller size + entryOverhead
}

// NewCache returns a cache bounded by capacity bytes, or nil (the disabled
// cache, on which all methods are no-ops) when capacity ≤ 0.
func NewCache(capacity int64) *Cache {
	if capacity <= 0 {
		return nil
	}
	c := &Cache{capacity: capacity, perShard: capacity / shardCount}
	if c.perShard < 1 {
		c.perShard = 1
	}
	for i := range c.shards {
		c.shards[i].items = make(map[Key]*list.Element)
		c.shards[i].ll.Init()
	}
	return c
}

func (c *Cache) shardFor(k Key) *cacheShard { return &c.shards[int(k[0])&(shardCount-1)] }

// Get returns the value stored under k and marks it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Add stores v under k, evicting least-recently-used entries of the same
// shard until the shard fits its budget again. size is the caller's estimate
// of v's memory footprint. Values larger than a whole shard budget are not
// stored (stored=false) rather than wiping the shard for one giant entry.
// evicted reports how many entries were displaced.
func (c *Cache) Add(k Key, v any, size int64) (stored bool, evicted int) {
	if c == nil {
		return false, 0
	}
	if size < 0 {
		size = 0
	}
	charged := size + entryOverhead
	if charged > c.perShard {
		return false, 0
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()

	if el, ok := s.items[k]; ok {
		e := el.Value.(*cacheEntry)
		s.bytes += charged - e.size
		c.bytes.Add(charged - e.size)
		e.val, e.size = v, charged
		s.ll.MoveToFront(el)
	} else {
		s.items[k] = s.ll.PushFront(&cacheEntry{key: k, val: v, size: charged})
		s.bytes += charged
		c.bytes.Add(charged)
		c.entries.Add(1)
	}

	for s.bytes > c.perShard {
		back := s.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		s.ll.Remove(back)
		delete(s.items, e.key)
		s.bytes -= e.size
		c.bytes.Add(-e.size)
		c.entries.Add(-1)
		c.evictions.Add(1)
		evicted++
	}
	return true, evicted
}

// Bytes returns the charged bytes currently held across all shards.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return c.bytes.Load()
}

// Len returns the number of entries across all shards.
func (c *Cache) Len() int64 {
	if c == nil {
		return 0
	}
	return c.entries.Load()
}

// Capacity returns the configured total byte budget.
func (c *Cache) Capacity() int64 {
	if c == nil {
		return 0
	}
	return c.capacity
}

// Evictions returns the cumulative number of evicted entries.
func (c *Cache) Evictions() int64 {
	if c == nil {
		return 0
	}
	return c.evictions.Load()
}
