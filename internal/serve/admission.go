package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// The load-shedding error taxonomy. Both are returned instead of queuing
// unboundedly; callers branch with errors.Is (the HTTP layer maps them to
// 429 + Retry-After and 504 respectively).
var (
	// ErrOverloaded reports a request shed at admission: every in-flight
	// slot is taken and the wait queue is already at its watermark. The
	// request did no pipeline work; retrying after a backoff is safe.
	ErrOverloaded = errors.New("server overloaded: admission queue full")
	// ErrDeadlineBudget reports a request whose context expired before it
	// was admitted — its deadline budget was spent waiting, so running the
	// pipeline could only produce an answer nobody is waiting for.
	ErrDeadlineBudget = errors.New("deadline budget exhausted before admission")
)

// admission is a bounded in-flight gate: at most cap(slots) computations run
// at once, at most maxQueue more may wait for a slot, and everything beyond
// that is shed immediately. A nil *admission admits everything.
type admission struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	inflight atomic.Int64
}

// newAdmission builds a gate for maxInFlight concurrent computations with a
// wait-queue watermark of maxQueue. maxInFlight ≤ 0 disables admission.
func newAdmission(maxInFlight, maxQueue int) *admission {
	if maxInFlight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{slots: make(chan struct{}, maxInFlight), maxQueue: int64(maxQueue)}
}

// acquire claims an in-flight slot, waiting in the bounded queue if all are
// taken. It fails fast with ErrOverloaded when the queue is at its
// watermark, and with ErrDeadlineBudget when ctx dies (or is already dead)
// before a slot frees up. On success the caller must release exactly once.
func (a *admission) acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w (%v)", ErrDeadlineBudget, err)
	}
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return fmt.Errorf("%w (%d in flight, %d queued)", ErrOverloaded, cap(a.slots), a.maxQueue)
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w (%v)", ErrDeadlineBudget, ctx.Err())
	}
}

// release frees the slot claimed by a successful acquire.
func (a *admission) release() {
	if a == nil {
		return
	}
	a.inflight.Add(-1)
	<-a.slots
}

// inFlight returns the number of admitted computations currently running.
func (a *admission) inFlight() int64 {
	if a == nil {
		return 0
	}
	return a.inflight.Load()
}

// queueDepth returns the number of requests waiting for a slot.
func (a *admission) queueDepth() int64 {
	if a == nil {
		return 0
	}
	return a.queued.Load()
}
