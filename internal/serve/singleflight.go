package serve

import (
	"errors"
	"sync"
)

// errLeaderAborted is what waiters observe when the in-flight leader
// panicked out of its computation: a typed failure, never a silent nil
// result. The panic itself propagates on the leader's goroutine.
var errLeaderAborted = errors.New("serve: in-flight computation aborted")

// flightCall is one in-flight computation; waiters block on done and then
// read val/err, which the leader writes before closing.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// flightGroup is a single-flight group keyed by content address: while a
// computation for a key is in flight, later requests for the same key wait
// for it instead of computing again. The zero value is ready to use.
type flightGroup struct {
	mu sync.Mutex
	m  map[Key]*flightCall
}

// do runs fn once per key per flight window. The first caller (the leader)
// executes fn; concurrent callers with the same key wait and share the
// leader's result, reported with shared=true. The key is released before
// done is closed, so a caller arriving after completion becomes a fresh
// leader — by then the result is in the cache, which the leader re-checks.
func (g *flightGroup) do(key Key, fn func() (any, error)) (v any, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[Key]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{}), err: errLeaderAborted}
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}
