// Package serve is the traffic layer between the HTTP handlers and the
// alignment pipeline: the pieces that make repeated, concurrent and excessive
// load cheap, deduplicated and bounded instead of linearly expensive.
//
// It is deliberately ignorant of the pipeline itself — values are opaque and
// keys are content hashes — so it sits below briq's facade without importing
// any pipeline package:
//
//	Cache     a sharded, content-addressed LRU bounded by total bytes.
//	          Keys are SHA-256 over (model fingerprint, page ID, content),
//	          so byte-identical requests hit and any model or input change
//	          misses. Per-shard mutexes keep lookups contention-free.
//	flight    a single-flight group: N concurrent requests for the same key
//	          trigger exactly one computation; the rest wait and share it.
//	admission a bounded in-flight semaphore with a queue-depth watermark.
//	          Excess load is shed immediately with ErrOverloaded; requests
//	          whose context dies while queued fail with ErrDeadlineBudget.
//	          Both are typed and errors.Is-testable, never an unbounded queue.
//	Engine    the composition the facade talks to: cache → single-flight →
//	          admission → compute → store, with hit/miss/eviction/shed
//	          counters for the /metrics endpoint.
//
// Every type tolerates its disabled form: a nil *Engine computes directly, a
// zero CacheBytes disables caching, a zero MaxInFlight disables admission.
package serve
