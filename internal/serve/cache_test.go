package serve

import (
	"fmt"
	"sync"
	"testing"
)

func testKey(s string) Key {
	w := newKeyWriter("test")
	w.str(s)
	return w.sum()
}

func TestCacheGetAdd(t *testing.T) {
	c := NewCache(1 << 20)
	k := testKey("a")
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	if stored, evicted := c.Add(k, "value-a", 10); !stored || evicted != 0 {
		t.Fatalf("Add = (%v, %d), want (true, 0)", stored, evicted)
	}
	v, ok := c.Get(k)
	if !ok || v.(string) != "value-a" {
		t.Fatalf("Get = (%v, %v), want value-a", v, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if c.Bytes() != 10+entryOverhead {
		t.Errorf("Bytes = %d, want %d", c.Bytes(), 10+entryOverhead)
	}

	// Updating a key replaces value and size without growing the entry count.
	if stored, _ := c.Add(k, "value-b", 30); !stored {
		t.Fatal("update not stored")
	}
	if v, _ := c.Get(k); v.(string) != "value-b" {
		t.Errorf("after update Get = %v", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len after update = %d, want 1", c.Len())
	}
	if c.Bytes() != 30+entryOverhead {
		t.Errorf("Bytes after update = %d, want %d", c.Bytes(), 30+entryOverhead)
	}
}

// TestCacheEvictsLRU fills one shard past its budget and checks that the
// least-recently-used entries leave first and the eviction counter moves.
func TestCacheEvictsLRU(t *testing.T) {
	// Per-shard budget: capacity/shardCount. Make room for ~3 entries/shard.
	entry := int64(entryOverhead + 100)
	c := NewCache(3 * entry * shardCount)

	// Keys colliding into one shard: brute-force the first byte.
	var keys []Key
	for i := 0; len(keys) < 5; i++ {
		k := testKey(fmt.Sprintf("k%d", i))
		if int(k[0])&(shardCount-1) == 0 {
			keys = append(keys, k)
		}
	}
	for _, k := range keys[:3] {
		c.Add(k, "v", 100)
	}
	if c.Evictions() != 0 {
		t.Fatalf("evictions before overflow = %d", c.Evictions())
	}
	// Touch keys[0] so keys[1] is now the LRU.
	c.Get(keys[0])
	c.Add(keys[3], "v", 100)
	if c.Evictions() != 1 {
		t.Fatalf("evictions after overflow = %d, want 1", c.Evictions())
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Error("LRU entry survived eviction")
	}
	for _, k := range []Key{keys[0], keys[2], keys[3]} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s evicted out of LRU order", k)
		}
	}
}

// TestCacheRejectsOversizeValue: a value bigger than a whole shard budget is
// refused instead of wiping the shard.
func TestCacheRejectsOversizeValue(t *testing.T) {
	c := NewCache(shardCount * 256)
	c.Add(testKey("small"), "v", 10)
	if stored, _ := c.Add(testKey("huge"), "v", 1<<20); stored {
		t.Fatal("oversize value was stored")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (oversize Add must not evict)", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	var c *Cache
	if c = NewCache(0); c != nil {
		t.Fatal("NewCache(0) should be nil (disabled)")
	}
	if stored, _ := c.Add(testKey("a"), "v", 1); stored {
		t.Error("nil cache stored a value")
	}
	if _, ok := c.Get(testKey("a")); ok {
		t.Error("nil cache reported a hit")
	}
	if c.Bytes() != 0 || c.Len() != 0 || c.Capacity() != 0 || c.Evictions() != 0 {
		t.Error("nil cache gauges not all zero")
	}
}

// TestCacheConcurrent hammers one cache from many goroutines; run under
// -race this is the shard-mutex correctness test.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(64 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := testKey(fmt.Sprintf("g%d-i%d", g, i%50))
				c.Add(k, i, 64)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() > c.Capacity() {
		t.Errorf("resident bytes %d exceed capacity %d", c.Bytes(), c.Capacity())
	}
}

func TestKeyDomainSeparation(t *testing.T) {
	// Length-prefixing: ("ab","c") and ("a","bc") must differ.
	w1 := newKeyWriter("fp")
	w1.str("ab")
	w1.str("c")
	w2 := newKeyWriter("fp")
	w2.str("a")
	w2.str("bc")
	if w1.sum() == w2.sum() {
		t.Error("length-prefixed writer collided on shifted field boundaries")
	}
	// Fingerprint scoping: same content, different models → different keys.
	e1 := NewEngine(Config{Fingerprint: "model-a"})
	e2 := NewEngine(Config{Fingerprint: "model-b"})
	if e1.PageKey("p", "<html>") == e2.PageKey("p", "<html>") {
		t.Error("keys ignore the model fingerprint")
	}
	if e1.PageKey("p", "<html>") != e1.PageKey("p", "<html>") {
		t.Error("PageKey is not deterministic")
	}
}
