package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
)

// Key is a content address: the SHA-256 of the model fingerprint plus the
// request content. Two requests share a key iff the same models would see
// byte-identical input.
type Key [sha256.Size]byte

// String returns the key in hex, for logs and tests.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// keyWriter incrementally builds a Key. Every field is length-prefixed so
// ("ab","c") and ("a","bc") cannot collide.
type keyWriter struct {
	h hash.Hash
}

func newKeyWriter(fingerprint string) *keyWriter {
	w := &keyWriter{h: sha256.New()}
	w.str(fingerprint)
	return w
}

func (w *keyWriter) str(s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	w.h.Write(n[:])
	io.WriteString(w.h, s)
}

func (w *keyWriter) sum() Key {
	var k Key
	w.h.Sum(k[:0])
	return k
}
