package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
)

// Key is a content address: the SHA-256 of the model fingerprint plus the
// request content. Two requests share a key iff the same models would see
// byte-identical input.
type Key [sha256.Size]byte

// String returns the key in hex, for logs and tests.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey decodes the hex form produced by String — the persistent store
// round-trips keys through its on-disk log this way.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("serve: bad key %q: %w", s, err)
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("serve: bad key %q: %d bytes, want %d", s, len(b), len(k))
	}
	copy(k[:], b)
	return k, nil
}

// KeyOf derives a content address without an Engine: fill writes the
// request's identity into the hash, scoped by the model fingerprint. An
// Engine with the same fingerprint derives the same key via Engine.KeyFrom —
// offline indexers and the persistent store rely on that identity.
func KeyOf(fingerprint string, fill func(io.Writer)) Key {
	w := newKeyWriter(fingerprint)
	fill(w.h)
	return w.sum()
}

// PageKeyOf is the Engine-less form of Engine.PageKey.
func PageKeyOf(fingerprint, pageID, html string) Key {
	w := newKeyWriter(fingerprint)
	w.str("page")
	w.str(pageID)
	w.str(html)
	return w.sum()
}

// PartDigest is the SHA-256 of one sub-document content part (paragraph text
// or table grids), fingerprint-free; DocKeyOf scopes a pair of them into a
// document Key. The ingest path compares part digests across re-crawls of a
// page to tell which half of a document actually changed.
type PartDigest = [sha256.Size]byte

// DocKeyOf combines a document's position and its per-part content digests
// into the document's content address. It produces exactly the same Key as
// KeyOf over core.HashDocument — the per-part scheme is a decomposition of
// the document identity, not a second identity — so the store, the serve
// cache's corpus path, and the ingest reuse check all agree on one key.
func DocKeyOf(fingerprint, docID, pageID string, text, tables PartDigest) Key {
	return KeyOf(fingerprint, func(w io.Writer) {
		fmt.Fprintf(w, "docv2|%s|%s|", docID, pageID)
		w.Write(text[:])
		w.Write(tables[:])
	})
}

// keyWriter incrementally builds a Key. Every field is length-prefixed so
// ("ab","c") and ("a","bc") cannot collide.
type keyWriter struct {
	h hash.Hash
}

func newKeyWriter(fingerprint string) *keyWriter {
	w := &keyWriter{h: sha256.New()}
	w.str(fingerprint)
	return w
}

func (w *keyWriter) str(s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	w.h.Write(n[:])
	io.WriteString(w.h, s)
}

func (w *keyWriter) sum() Key {
	var k Key
	w.h.Sum(k[:0])
	return k
}
