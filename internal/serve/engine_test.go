package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEngineSingleFlight: K concurrent Do calls for the same key run the
// compute exactly once; everyone gets the same value. The compute blocks
// until all K callers have arrived, so the flight window provably overlaps.
func TestEngineSingleFlight(t *testing.T) {
	const K = 16
	e := NewEngine(Config{Fingerprint: "fp", CacheBytes: 1 << 20})
	key := e.PageKey("p0", "<html>page</html>")

	var computes atomic.Int64
	arrived := make(chan struct{}, K)
	proceed := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived <- struct{}{}
			v, _, err := e.Do(context.Background(), key, func(context.Context) (any, int64, error) {
				computes.Add(1)
				<-proceed
				return "result", 6, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	for i := 0; i < K; i++ {
		<-arrived
	}
	// All K are in Do (one computing, the rest coalescing or about to); let
	// the leader finish.
	close(proceed)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", n)
	}
	for i, v := range results {
		if v.(string) != "result" {
			t.Errorf("caller %d got %v", i, v)
		}
	}
	c := e.Counters()
	if c["misses"] != 1 {
		t.Errorf("misses = %d, want 1", c["misses"])
	}
	if c["hits"]+c["coalesced"] != K-1 {
		t.Errorf("hits+coalesced = %d, want %d", c["hits"]+c["coalesced"], K-1)
	}

	// The stored result now serves hits without recomputing.
	v, hit, err := e.Do(context.Background(), key, func(context.Context) (any, int64, error) {
		t.Error("compute ran on a warm cache")
		return nil, 0, nil
	})
	if err != nil || !hit || v.(string) != "result" {
		t.Fatalf("warm Do = (%v, %v, %v), want (result, true, nil)", v, hit, err)
	}
}

// TestEngineErrorsNotCached: a failed compute is shared with in-flight
// waiters but never stored, so the next request retries.
func TestEngineErrorsNotCached(t *testing.T) {
	e := NewEngine(Config{Fingerprint: "fp", CacheBytes: 1 << 20})
	key := e.PageKey("p0", "boom")
	boom := errors.New("boom")

	if _, _, err := e.Do(context.Background(), key, func(context.Context) (any, int64, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	var recomputed bool
	v, hit, err := e.Do(context.Background(), key, func(context.Context) (any, int64, error) {
		recomputed = true
		return "ok", 2, nil
	})
	if !recomputed {
		t.Fatal("error was cached: compute did not rerun")
	}
	if err != nil || hit || v.(string) != "ok" {
		t.Fatalf("retry Do = (%v, %v, %v)", v, hit, err)
	}
}

// TestEngineLeaderPanicIsolated: a panicking compute propagates on the
// leader but leaves waiters with a typed error and the key unlocked.
func TestEngineLeaderPanicIsolated(t *testing.T) {
	e := NewEngine(Config{Fingerprint: "fp", CacheBytes: 1 << 20})
	key := e.PageKey("p0", "panic")

	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the leader")
			}
		}()
		e.Do(context.Background(), key, func(context.Context) (any, int64, error) {
			panic("compute exploded")
		})
	}()

	// The key must not be stuck: a fresh request computes normally.
	v, _, err := e.Do(context.Background(), key, func(context.Context) (any, int64, error) {
		return "recovered", 9, nil
	})
	if err != nil || v.(string) != "recovered" {
		t.Fatalf("post-panic Do = (%v, %v)", v, err)
	}
}

func TestFlightWaiterSeesLeaderAbort(t *testing.T) {
	var g flightGroup
	key := testKey("k")
	started := make(chan struct{})
	go func() {
		defer func() { recover() }()
		g.do(key, func() (any, error) {
			close(started)
			time.Sleep(20 * time.Millisecond)
			panic("leader dies")
		})
	}()
	<-started
	_, shared, err := g.do(key, func() (any, error) { return "fresh", nil })
	if shared {
		// Waiter joined the doomed flight: must get the typed abort error.
		if !errors.Is(err, errLeaderAborted) {
			t.Fatalf("waiter err = %v, want errLeaderAborted", err)
		}
	}
	// If not shared, the leader had already crashed and cleanup ran — the
	// fresh computation succeeding is equally correct.
}

// TestEngineShedsUnderSaturation: with MaxInFlight=1 and MaxQueue=0, a
// second concurrent distinct request is shed with ErrOverloaded while the
// first completes.
func TestEngineShedsUnderSaturation(t *testing.T) {
	e := NewEngine(Config{Fingerprint: "fp", CacheBytes: 1 << 20, MaxInFlight: 1, MaxQueue: 0})
	k1 := e.PageKey("p1", "one")
	k2 := e.PageKey("p2", "two")

	inside := make(chan struct{})
	proceed := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := e.Do(context.Background(), k1, func(context.Context) (any, int64, error) {
			close(inside)
			<-proceed
			return "one", 3, nil
		})
		done <- err
	}()
	<-inside

	if _, _, err := e.Do(context.Background(), k2, func(context.Context) (any, int64, error) {
		return "two", 3, nil
	}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated Do = %v, want ErrOverloaded", err)
	}
	if c := e.Counters(); c["shed_overloaded"] != 1 {
		t.Errorf("shed_overloaded = %d, want 1", c["shed_overloaded"])
	}

	close(proceed)
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed: %v", err)
	}
	// Capacity is free again.
	if _, _, err := e.Do(context.Background(), k2, func(context.Context) (any, int64, error) {
		return "two", 3, nil
	}); err != nil {
		t.Fatalf("post-drain Do: %v", err)
	}
}

func TestEngineNil(t *testing.T) {
	var e *Engine
	v, hit, err := e.Do(context.Background(), Key{}, func(context.Context) (any, int64, error) {
		return "direct", 6, nil
	})
	if err != nil || hit || v.(string) != "direct" {
		t.Fatalf("nil engine Do = (%v, %v, %v)", v, hit, err)
	}
	release, err := e.Acquire(context.Background())
	if err != nil {
		t.Fatalf("nil engine Acquire: %v", err)
	}
	release()
	if _, ok := e.Lookup(Key{}); ok {
		t.Error("nil engine Lookup hit")
	}
	e.Store(Key{}, "v", 1)
	c := e.Counters()
	for _, name := range CounterNames() {
		if v, ok := c[name]; !ok || v != 0 {
			t.Errorf("nil engine counter %q = %d, %v; want 0, present", name, v, ok)
		}
	}
	if len(c) != len(CounterNames()) {
		t.Errorf("Counters has %d keys, schema has %d", len(c), len(CounterNames()))
	}
}

// TestEngineCountersSchema: enabled and disabled engines expose the same keys.
func TestEngineCountersSchema(t *testing.T) {
	e := NewEngine(Config{Fingerprint: "fp", CacheBytes: 4096, MaxInFlight: 2, MaxQueue: DefaultMaxQueue})
	e.Do(context.Background(), e.PageKey("p", "x"), func(context.Context) (any, int64, error) {
		return "v", 1, nil
	})
	got := e.Counters()
	want := CounterNames()
	if len(got) != len(want) {
		t.Fatalf("Counters has %d keys, want %d", len(got), len(want))
	}
	for _, name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("counter %q missing", name)
		}
	}
	if got["max_in_flight"] != 2 || got["capacity_bytes"] != 4096 {
		t.Errorf("gauges = %v", got)
	}
}

// TestEngineConcurrentMixed is the race-detector workout: concurrent Do,
// Lookup/Store and Counters across many keys.
func TestEngineConcurrentMixed(t *testing.T) {
	e := NewEngine(Config{Fingerprint: "fp", CacheBytes: 32 << 10, MaxInFlight: 4, MaxQueue: 64})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := e.PageKey(fmt.Sprintf("p%d", i%7), "content")
				switch g % 3 {
				case 0:
					e.Do(ctx, key, func(context.Context) (any, int64, error) { return i, 32, nil })
				case 1:
					if _, ok := e.Lookup(key); !ok {
						e.Store(key, i, 32)
					}
				default:
					e.Counters()
				}
			}
		}(g)
	}
	wg.Wait()
}
