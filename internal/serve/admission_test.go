package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionShedsAtWatermark(t *testing.T) {
	a := newAdmission(1, 1)
	ctx := context.Background()

	if err := a.acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if got := a.inFlight(); got != 1 {
		t.Fatalf("inFlight = %d, want 1", got)
	}

	// One waiter is tolerated (watermark 1)...
	waitErr := make(chan error, 1)
	go func() {
		err := a.acquire(ctx)
		if err == nil {
			defer a.release()
		}
		waitErr <- err
	}()
	// Give the waiter time to enter the queue, then overflow it.
	for i := 0; i < 100 && a.queueDepth() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if a.queueDepth() != 1 {
		t.Fatalf("queueDepth = %d, want 1", a.queueDepth())
	}

	// ...the next request is beyond the watermark and sheds immediately.
	if err := a.acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow acquire = %v, want ErrOverloaded", err)
	}

	// Releasing the slot admits the queued waiter.
	a.release()
	if err := <-waitErr; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestAdmissionDeadlineBudget(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.release()

	// Queued request whose context dies while waiting.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := a.acquire(ctx); !errors.Is(err, ErrDeadlineBudget) {
		t.Fatalf("expired waiter = %v, want ErrDeadlineBudget", err)
	}

	// Context already dead on arrival: no budget to even queue.
	dead, kill := context.WithCancel(context.Background())
	kill()
	if err := a.acquire(dead); !errors.Is(err, ErrDeadlineBudget) {
		t.Fatalf("dead-on-arrival = %v, want ErrDeadlineBudget", err)
	}
}

func TestAdmissionDisabled(t *testing.T) {
	var a *admission
	if a = newAdmission(0, 10); a != nil {
		t.Fatal("newAdmission(0) should be nil (disabled)")
	}
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("nil admission rejected: %v", err)
	}
	a.release()
	if a.inFlight() != 0 || a.queueDepth() != 0 {
		t.Error("nil admission gauges not zero")
	}
}

// TestAdmissionConcurrent runs many goroutines through a small gate and
// asserts the in-flight bound is never violated. Meaningful under -race.
func TestAdmissionConcurrent(t *testing.T) {
	const maxInFlight = 4
	a := newAdmission(maxInFlight, 64)
	ctx := context.Background()
	var wg sync.WaitGroup
	var admitted, shed sync.Map
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if err := a.acquire(ctx); err != nil {
				shed.Store(g, err)
				return
			}
			defer a.release()
			admitted.Store(g, true)
			if n := a.inFlight(); n > maxInFlight {
				t.Errorf("inFlight = %d > %d", n, maxInFlight)
			}
			time.Sleep(time.Millisecond)
		}(g)
	}
	wg.Wait()
	if a.inFlight() != 0 {
		t.Errorf("inFlight after drain = %d", a.inFlight())
	}
}
