package serve

import (
	"context"
	"errors"
	"io"
	"sync/atomic"

	"briq/internal/obs"
)

// Config configures an Engine. Every field has a disabled zero form, so an
// Engine can be a pure cache, a pure admission gate, or both.
type Config struct {
	// Fingerprint identifies the model configuration that computes cached
	// values; it is mixed into every key, so pipelines with different
	// models (trained vs heuristic, different seeds) never share entries.
	Fingerprint string
	// CacheBytes bounds the result cache; ≤ 0 disables caching.
	CacheBytes int64
	// MaxInFlight bounds concurrently admitted computations; ≤ 0 disables
	// admission control.
	MaxInFlight int
	// MaxQueue is the wait-queue watermark beyond MaxInFlight before
	// requests are shed with ErrOverloaded. < 0 (the zero form via
	// DefaultMaxQueue) defaults to 2×MaxInFlight; 0 sheds immediately
	// whenever all slots are taken.
	MaxQueue int
}

// DefaultMaxQueue marks Config.MaxQueue as "pick the default" (2×MaxInFlight).
const DefaultMaxQueue = -1

// counterNames is the stable serving-counter schema, in the order Counters
// reports them. Dashboards and the /metrics golden test key on these names.
var counterNames = []string{
	"hits", "misses", "coalesced", "stores",
	"shed_overloaded", "shed_deadline",
}

// Engine is the serving layer in front of one pipeline configuration: a
// content-addressed result cache, a single-flight group and an admission
// gate, composed as cache → single-flight → admission → compute → store.
// All methods are safe for concurrent use, and safe on a nil *Engine (which
// degrades to computing directly).
type Engine struct {
	fingerprint string
	cache       *Cache
	adm         *admission
	flight      flightGroup
	counters    *obs.CounterSet
	maxInFlight int
	onStore     atomic.Pointer[func(Key, any, int64)]
}

// NewEngine builds an Engine from cfg. A config with neither caching nor
// admission enabled still dedups concurrent identical requests through the
// single-flight group.
func NewEngine(cfg Config) *Engine {
	maxQueue := cfg.MaxQueue
	if maxQueue < 0 {
		maxQueue = 2 * cfg.MaxInFlight
	}
	return &Engine{
		fingerprint: cfg.Fingerprint,
		cache:       NewCache(cfg.CacheBytes),
		adm:         newAdmission(cfg.MaxInFlight, maxQueue),
		counters:    obs.NewCounterSet(counterNames...),
		maxInFlight: cfg.MaxInFlight,
	}
}

// PageKey derives the content address of one HTML page request: the model
// fingerprint, the page ID and the raw page source.
func (e *Engine) PageKey(pageID, html string) Key {
	return PageKeyOf(e.fingerprintOrEmpty(), pageID, html)
}

// KeyFrom derives a content address from arbitrary content: fill writes the
// request's identity (already fingerprint-scoped) into the hash. Used by the
// corpus path, where a document's identity is its structured content rather
// than one source string.
func (e *Engine) KeyFrom(fill func(io.Writer)) Key {
	return KeyOf(e.fingerprintOrEmpty(), fill)
}

// SetOnStore registers a write-through hook invoked after every accepted
// cache store (fresh computes and explicit Store calls alike — a persistent
// store dedups replays by key). The hook runs synchronously on the storing
// goroutine and must not call back into the Engine. Passing nil removes the
// hook. Safe for concurrent use; no-op on a nil Engine.
func (e *Engine) SetOnStore(fn func(key Key, v any, size int64)) {
	if e == nil {
		return
	}
	if fn == nil {
		e.onStore.Store(nil)
		return
	}
	e.onStore.Store(&fn)
}

func (e *Engine) fingerprintOrEmpty() string {
	if e == nil {
		return ""
	}
	return e.fingerprint
}

// Do serves one request: a cache hit returns immediately (hit=true); a miss
// runs compute exactly once across all concurrent callers of the same key,
// behind the admission gate, and stores the result. compute returns the
// value and its approximate size in bytes; its error is never cached but is
// shared with coalesced waiters. Callers must treat the returned value as
// read-only — it may be served to other requests.
//
// On a nil Engine, Do just runs compute.
func (e *Engine) Do(ctx context.Context, key Key, compute func(context.Context) (any, int64, error)) (v any, hit bool, err error) {
	if e == nil {
		v, _, err = compute(ctx)
		return v, false, err
	}
	if v, ok := e.cache.Get(key); ok {
		e.counters.Inc("hits")
		return v, true, nil
	}
	var leaderHit bool
	v, shared, err := e.flight.do(key, func() (any, error) {
		// Double-check: a previous leader may have stored the result
		// between our cache miss and becoming leader ourselves.
		if v, ok := e.cache.Get(key); ok {
			leaderHit = true
			return v, nil
		}
		if err := e.acquire(ctx); err != nil {
			return nil, err
		}
		defer e.adm.release()
		v, size, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		e.store(key, v, size)
		return v, nil
	})
	switch {
	case shared:
		e.counters.Inc("coalesced")
	case leaderHit:
		e.counters.Inc("hits")
	case err == nil:
		e.counters.Inc("misses")
	}
	return v, shared || leaderHit, err
}

// acquire claims an admission slot, counting sheds by class.
func (e *Engine) acquire(ctx context.Context) error {
	err := e.adm.acquire(ctx)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrOverloaded):
		e.counters.Inc("shed_overloaded")
	case errors.Is(err, ErrDeadlineBudget):
		e.counters.Inc("shed_deadline")
	}
	return err
}

// Acquire claims one admission slot for a computation managed outside Do —
// the corpus path admits a whole batch as one unit. The returned release
// must be called exactly once; it is non-nil even on error (a no-op).
func (e *Engine) Acquire(ctx context.Context) (release func(), err error) {
	if e == nil {
		return func() {}, nil
	}
	if err := e.acquire(ctx); err != nil {
		return func() {}, err
	}
	return e.adm.release, nil
}

// Lookup is a cache-only read for callers that manage their own computation
// (the corpus path): no single-flight, no admission.
func (e *Engine) Lookup(key Key) (any, bool) {
	if e == nil {
		return nil, false
	}
	v, ok := e.cache.Get(key)
	if ok {
		e.counters.Inc("hits")
	} else {
		e.counters.Inc("misses")
	}
	return v, ok
}

// Store is the cache-only write paired with Lookup. The value must not be
// mutated by the caller afterward.
func (e *Engine) Store(key Key, v any, size int64) {
	if e == nil {
		return
	}
	e.store(key, v, size)
}

func (e *Engine) store(key Key, v any, size int64) {
	if stored, _ := e.cache.Add(key, v, size); stored {
		e.counters.Inc("stores")
		if fn := e.onStore.Load(); fn != nil {
			(*fn)(key, v, size)
		}
	}
}

// CounterNames returns the full, stable schema of the Counters map, sorted
// as Counters emits them: the event counters first, then the gauges.
func CounterNames() []string {
	return append(append([]string{}, counterNames...),
		"evictions", "bytes", "entries", "capacity_bytes",
		"in_flight", "queue_depth", "max_in_flight")
}

// Counters returns the serving counters and gauges under the stable schema
// of CounterNames. A nil Engine reports the same schema, all zero — the
// /metrics shape must not depend on whether serving is enabled.
func (e *Engine) Counters() map[string]int64 {
	out := make(map[string]int64, len(counterNames)+7)
	for _, name := range counterNames {
		out[name] = 0
	}
	out["evictions"], out["bytes"], out["entries"], out["capacity_bytes"] = 0, 0, 0, 0
	out["in_flight"], out["queue_depth"], out["max_in_flight"] = 0, 0, 0
	if e == nil {
		return out
	}
	for name, v := range e.counters.Snapshot() {
		out[name] = v
	}
	out["evictions"] = e.cache.Evictions()
	out["bytes"] = e.cache.Bytes()
	out["entries"] = e.cache.Len()
	out["capacity_bytes"] = e.cache.Capacity()
	out["in_flight"] = e.adm.inFlight()
	out["queue_depth"] = e.adm.queueDepth()
	out["max_in_flight"] = int64(e.maxInFlight)
	return out
}
