package serve

import (
	"context"
	"io"
	"testing"
)

func TestOnStoreHookFires(t *testing.T) {
	e := NewEngine(Config{Fingerprint: "fp", CacheBytes: 1 << 20})
	var gotKey Key
	var gotV any
	var gotSize int64
	calls := 0
	e.SetOnStore(func(k Key, v any, size int64) {
		gotKey, gotV, gotSize = k, v, size
		calls++
	})

	key := e.PageKey("p0", "<html>")
	v, hit, err := e.Do(context.Background(), key, func(context.Context) (any, int64, error) {
		return "value", 5, nil
	})
	if err != nil || hit || v != "value" {
		t.Fatalf("Do = (%v, %v, %v)", v, hit, err)
	}
	if calls != 1 || gotKey != key || gotV != "value" || gotSize != 5 {
		t.Fatalf("hook: calls=%d key=%s v=%v size=%d", calls, gotKey, gotV, gotSize)
	}

	// A cache hit must not re-fire the hook.
	if _, hit, _ := e.Do(context.Background(), key, nil); !hit {
		t.Fatal("want hit")
	}
	if calls != 1 {
		t.Fatalf("hook fired on hit: calls=%d", calls)
	}

	// Explicit Store fires it; removing the hook stops it.
	other := e.PageKey("p1", "<html>")
	e.Store(other, "v2", 2)
	if calls != 2 {
		t.Fatalf("hook not fired on Store: calls=%d", calls)
	}
	e.SetOnStore(nil)
	e.Store(e.PageKey("p2", "x"), "v3", 2)
	if calls != 2 {
		t.Fatalf("hook fired after removal: calls=%d", calls)
	}

	// Nil engine: no panic.
	var nilE *Engine
	nilE.SetOnStore(func(Key, any, int64) {})
}

func TestOnStoreSkippedWhenCacheRejects(t *testing.T) {
	e := NewEngine(Config{CacheBytes: 1}) // too small for anything
	fired := false
	e.SetOnStore(func(Key, any, int64) { fired = true })
	e.Store(e.PageKey("p", "x"), "v", 1<<20)
	if fired {
		t.Fatal("hook fired for a rejected store")
	}
}

func TestKeyOfMatchesEngine(t *testing.T) {
	e := NewEngine(Config{Fingerprint: "fp-x", CacheBytes: 1 << 10})
	fill := func(w io.Writer) { io.WriteString(w, "doc-identity") }
	if got, want := KeyOf("fp-x", fill), e.KeyFrom(fill); got != want {
		t.Errorf("KeyOf = %s, Engine.KeyFrom = %s", got, want)
	}
	if got, want := PageKeyOf("fp-x", "p0", "<html>"), e.PageKey("p0", "<html>"); got != want {
		t.Errorf("PageKeyOf = %s, Engine.PageKey = %s", got, want)
	}
	if KeyOf("fp-x", fill) == KeyOf("fp-y", fill) {
		t.Error("different fingerprints must not collide")
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	k := PageKeyOf("fp", "p", "html")
	got, err := ParseKey(k.String())
	if err != nil || got != k {
		t.Fatalf("ParseKey(%s) = %v, %v", k, got, err)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Error("want error for bad hex")
	}
	if _, err := ParseKey("abcd"); err == nil {
		t.Error("want error for short key")
	}
}
