package graph

import (
	"math"
	"runtime"
	"sync"
)

// csr is the frozen compressed-sparse-row view of the candidate graph's
// transition structure — the hot-path representation behind RWR and Resolve.
// It is built once per document from the adjacency lists and then kept in
// sync incrementally: Algorithm 1's rewiring (keepOnly) zeroes the pruned
// edge slots in place instead of compacting, so the row layout never moves
// and no per-invocation rebuild is needed.
//
// Bitwise equivalence with the legacy map-based walker (reference.go) is a
// hard invariant, maintained by three properties:
//
//   - slot order equals adjacency-list insertion order, so the per-row
//     weight totals accumulate in the same float order as the legacy
//     transition() sum — a pruned slot contributes exactly +0.0, which
//     leaves every partial sum bit-identical (all weights are positive, so
//     no partial sum is ever -0.0);
//   - normalized weights are stored as w/rowTotal — the same division the
//     legacy path performs — recomputed lazily only for rows whose edges
//     changed (per-node edge-weight normalizers), never re-derived as
//     w·(1/rowTotal), which would round differently;
//   - the walk loop mirrors the legacy iteration exactly: restart mass
//     first, node order ascending, dangling rows (row total zero) return
//     their mass to the restart node, and the same L∞ convergence check
//     decides the early exit. (The check stays L∞, not L1: switching norms
//     would change iteration counts and break equivalence.)
type csr struct {
	n        int
	rowStart []int32
	arcs     []arc     // hot: (target, normalized weight) pairs, row-major
	w        []float64 // cold: raw edge weights; pruning zeroes slots in place
	dangling []bool    // row total is zero: the walk restarts from there
	dirty    []bool    // row needs renormalization before the next walk
	anyDirty bool

	p, next []float64 // scratch score vectors for the sequential walker

	sc       *batchScratch // lazily built lane-kernel scratch for single-worker batches
	batchOut [][]float64   // cached result plane for RWRAll (reused across calls)
}

// batchResults returns a cached plane of m n-length vectors for batch walk
// results whose lifetime ends with the caller (RWRAll compresses them before
// returning). Grows on demand; one flat backing array.
func (cs *csr) batchResults(m int) [][]float64 {
	if len(cs.batchOut) < m {
		flat := make([]float64, m*cs.n)
		cs.batchOut = make([][]float64, m)
		for i := range cs.batchOut {
			cs.batchOut[i] = flat[i*cs.n : (i+1)*cs.n : (i+1)*cs.n]
		}
	}
	return cs.batchOut[:m]
}

// arc is one directed transition slot. The layout mirrors the legacy edge
// struct (16 bytes, one cache stream) so the inner walk loop touches memory
// exactly like the reference row walk — just without rebuilding the rows.
type arc struct {
	to int32
	nw float64 // row-stochastic weight w/rowTotal; 0 for pruned slots
}

// newCSR freezes the adjacency lists into CSR form. Slot order within each
// row is the adjacency insertion order (see the equivalence contract above).
func newCSR(adj [][]edge) *csr {
	n := len(adj)
	nnz := 0
	for _, es := range adj {
		nnz += len(es)
	}
	cs := &csr{
		n:        n,
		rowStart: make([]int32, n+1),
		arcs:     make([]arc, nnz),
		w:        make([]float64, nnz),
		dangling: make([]bool, n),
		dirty:    make([]bool, n),
		p:        make([]float64, n),
		next:     make([]float64, n),
	}
	pos := 0
	for u, es := range adj {
		cs.rowStart[u] = int32(pos)
		for _, e := range es {
			cs.arcs[pos].to = int32(e.to)
			cs.w[pos] = e.w
			pos++
		}
	}
	cs.rowStart[n] = int32(pos)
	for u := 0; u < n; u++ {
		cs.renormalize(u)
	}
	return cs
}

// renormalize recomputes one row's stochastic weights from its raw weights.
// The total accumulates over every slot in order — zeroed (pruned) slots add
// exactly 0.0 — so it is bit-identical to the legacy sum over the compacted
// adjacency list.
func (cs *csr) renormalize(u int) {
	start, end := cs.rowStart[u], cs.rowStart[u+1]
	var total float64
	for s := start; s < end; s++ {
		total += cs.w[s]
	}
	if total == 0 {
		cs.dangling[u] = true
		for s := start; s < end; s++ {
			cs.arcs[s].nw = 0
		}
		return
	}
	cs.dangling[u] = false
	for s := start; s < end; s++ {
		cs.arcs[s].nw = cs.w[s] / total
	}
}

// dropEdge zeroes every slot of the undirected edge u↔v (all parallel copies)
// and marks both rows for renormalization. Idempotent.
func (cs *csr) dropEdge(u, v int) {
	for s := cs.rowStart[u]; s < cs.rowStart[u+1]; s++ {
		if cs.arcs[s].to == int32(v) {
			cs.w[s] = 0
		}
	}
	for s := cs.rowStart[v]; s < cs.rowStart[v+1]; s++ {
		if cs.arcs[s].to == int32(u) {
			cs.w[s] = 0
		}
	}
	cs.dirty[u], cs.dirty[v] = true, true
	cs.anyDirty = true
}

// flush renormalizes every dirty row. Must be called before a walk (and
// before fanning walks out to a worker pool: after flush the csr is
// read-only until the next dropEdge).
func (cs *csr) flush() {
	if !cs.anyDirty {
		return
	}
	for u := 0; u < cs.n; u++ {
		if cs.dirty[u] {
			cs.renormalize(u)
			cs.dirty[u] = false
		}
	}
	cs.anyDirty = false
}

// rwr runs one random walk with restart from node x using the caller's two
// scratch vectors (each of length n; contents are overwritten) and returns
// the converged score vector, which aliases one of the two. The caller must
// flush() first; concurrent rwr calls are safe as long as each caller owns
// its scratch vectors and no dropEdge happens in between.
func (cs *csr) rwr(cfg *Config, x int, p, next []float64) []float64 {
	for i := range p {
		p[i] = 0
	}
	p[x] = 1
	for i := range next {
		next[i] = 0
	}
	restart := cfg.Restart
	arcs, rowStart, dangling := cs.arcs, cs.rowStart, cs.dangling

	for iter := 0; iter < cfg.MaxIters; iter++ {
		next[x] += restart
		for u, pu := range p {
			if pu == 0 {
				continue
			}
			if dangling[u] {
				// Dangling node: restart.
				next[x] += (1 - restart) * pu
				continue
			}
			spread := (1 - restart) * pu
			for _, a := range arcs[rowStart[u]:rowStart[u+1]] {
				next[a.to] += spread * a.nw
			}
		}
		// L∞ convergence probe (see the equivalence contract): "max |d| <
		// Eps" is exactly "no |d| ≥ Eps", so the scan bails at the first
		// exceedance — O(1) until the walk is nearly converged.
		converged := true
		for i, pv := range p {
			if math.Abs(next[i]-pv) >= cfg.Eps {
				converged = false
				break
			}
		}
		for i := range p { // compiles to memclr
			p[i] = 0
		}
		p, next = next, p
		if converged {
			break
		}
	}
	return p
}

// rwrLanes is the width of the lockstep walk kernel: rwr4 advances this many
// independent walks through each power iteration together, amortizing the
// arc load, bounds check and loop overhead of every edge across the lanes.
const rwrLanes = 4

// rwr4 advances four independent walks in lockstep over the frozen csr,
// writing each walk's converged score vector into out[j] (length n). Every
// lane performs exactly the float operations of a solo cs.rwr walk, in the
// same order — lanes are separate accumulators, the shared u/edge iteration
// order is the solo order, and a lane whose p[u] is zero receives +0.0
// contributions, which are bitwise no-ops on these non-negative sums (the
// solo walker skips such rows outright). Each lane freezes at its own
// convergence iteration: its result is copied out and the remaining lanes
// keep iterating, so per-lane iteration counts match the solo walks exactly.
//
// The caller must flush() first and own the scratch planes p4/next4 (length
// n each); duplicate restart nodes across lanes are fine (independent lanes).
func (cs *csr) rwr4(cfg *Config, xs [rwrLanes]int, p4, next4 [][rwrLanes]float64, out [rwrLanes][]float64) {
	n := cs.n
	for i := 0; i < n; i++ {
		p4[i] = [rwrLanes]float64{}
		next4[i] = [rwrLanes]float64{}
	}
	for j, x := range xs {
		p4[x][j] = 1
	}
	restart := cfg.Restart
	om := 1 - restart
	arcs, rowStart, dangling := cs.arcs, cs.rowStart, cs.dangling

	var frozen [rwrLanes]bool
	remaining := rwrLanes
	for iter := 0; iter < cfg.MaxIters && remaining > 0; iter++ {
		for j, x := range xs {
			next4[x][j] += restart
		}
		for u := 0; u < n; u++ {
			pu := &p4[u]
			s0, s1, s2, s3 := om*pu[0], om*pu[1], om*pu[2], om*pu[3]
			if s0 == 0 && s1 == 0 && s2 == 0 && s3 == 0 {
				continue
			}
			if dangling[u] {
				// Dangling node: each lane restarts at its own origin.
				next4[xs[0]][0] += s0
				next4[xs[1]][1] += s1
				next4[xs[2]][2] += s2
				next4[xs[3]][3] += s3
				continue
			}
			for _, a := range arcs[rowStart[u]:rowStart[u+1]] {
				nx := &next4[a.to]
				nw := a.nw
				nx[0] += s0 * nw
				nx[1] += s1 * nw
				nx[2] += s2 * nw
				nx[3] += s3 * nw
			}
		}
		// Per-lane L∞ convergence probe: "max |d| < Eps" is exactly
		// "no |d| ≥ Eps", so the scan can bail at the first exceedance —
		// O(1) until a lane is nearly converged.
		var conv [rwrLanes]bool
		for j := 0; j < rwrLanes; j++ {
			if frozen[j] {
				continue
			}
			c := true
			for i := 0; i < n; i++ {
				if math.Abs(next4[i][j]-p4[i][j]) >= cfg.Eps {
					c = false
					break
				}
			}
			conv[j] = c
		}
		for i := range p4 { // compiles to memclr
			p4[i] = [rwrLanes]float64{}
		}
		p4, next4 = next4, p4
		for j := 0; j < rwrLanes; j++ {
			if !frozen[j] && (conv[j] || iter == cfg.MaxIters-1) {
				frozen[j] = true
				remaining--
				for i := 0; i < n; i++ {
					out[j][i] = p4[i][j]
				}
			}
		}
	}
}

// rwr2 is the two-lane variant of rwr4, used for tail blocks so that a
// document with, say, two text mentions does not pay for four lanes. Same
// equivalence argument, same freeze protocol.
func (cs *csr) rwr2(cfg *Config, xs [2]int, p2, next2 [][2]float64, out [2][]float64) {
	n := cs.n
	for i := 0; i < n; i++ {
		p2[i] = [2]float64{}
		next2[i] = [2]float64{}
	}
	for j, x := range xs {
		p2[x][j] = 1
	}
	restart := cfg.Restart
	om := 1 - restart
	arcs, rowStart, dangling := cs.arcs, cs.rowStart, cs.dangling

	var frozen [2]bool
	remaining := 2
	for iter := 0; iter < cfg.MaxIters && remaining > 0; iter++ {
		for j, x := range xs {
			next2[x][j] += restart
		}
		for u := 0; u < n; u++ {
			pu := &p2[u]
			s0, s1 := om*pu[0], om*pu[1]
			if s0 == 0 && s1 == 0 {
				continue
			}
			if dangling[u] {
				next2[xs[0]][0] += s0
				next2[xs[1]][1] += s1
				continue
			}
			for _, a := range arcs[rowStart[u]:rowStart[u+1]] {
				nx := &next2[a.to]
				nw := a.nw
				nx[0] += s0 * nw
				nx[1] += s1 * nw
			}
		}
		var conv [2]bool
		for j := 0; j < 2; j++ {
			if frozen[j] {
				continue
			}
			c := true
			for i := 0; i < n; i++ {
				if math.Abs(next2[i][j]-p2[i][j]) >= cfg.Eps {
					c = false
					break
				}
			}
			conv[j] = c
		}
		for i := range p2 { // compiles to memclr
			p2[i] = [2]float64{}
		}
		p2, next2 = next2, p2
		for j := 0; j < 2; j++ {
			if !frozen[j] && (conv[j] || iter == cfg.MaxIters-1) {
				frozen[j] = true
				remaining--
				for i := 0; i < n; i++ {
					out[j][i] = p2[i][j]
				}
			}
		}
	}
}

// batchScratch is one worker's reusable scratch for the lane kernels.
type batchScratch struct {
	p4, next4 [][rwrLanes]float64
	p2, next2 [][2]float64
	p1, next1 []float64
	discard   []float64 // sink for padding lanes
}

func (cs *csr) newBatchScratch() *batchScratch {
	return &batchScratch{
		p4:      make([][rwrLanes]float64, cs.n),
		next4:   make([][rwrLanes]float64, cs.n),
		p2:      make([][2]float64, cs.n),
		next2:   make([][2]float64, cs.n),
		p1:      make([]float64, cs.n),
		next1:   make([]float64, cs.n),
		discard: make([]float64, cs.n),
	}
}

// blockWidths decomposes a walk count into lane-kernel blocks: full 4-lane
// blocks, then a tail of 3 (padded into the 4-lane kernel — one wasted lane
// beats a 2-lane + solo pair), 2 (the 2-lane kernel) or 1 (solo walker).
func blockWidths(m int) []int {
	var widths []int
	for m >= rwrLanes {
		widths = append(widths, rwrLanes)
		m -= rwrLanes
	}
	if m > 0 {
		widths = append(widths, m)
	}
	return widths
}

// rwrBatchInto runs one walk per restart node — lockstep lane blocks inside
// each worker, blocks fanned out across a worker pool — writing the converged
// vectors into the caller-owned out slices (len(xs) slices of length n) in
// input order. Each worker owns its own scratch planes, and the csr is
// read-only for the duration (flush runs up front), so results are
// bit-identical to running the walks solo in any order. Only valid when no
// rewiring happens between the walks — the caller guarantees that (Resolve
// uses it only with DisableRewire set).
func (cs *csr) rwrBatchInto(cfg *Config, xs []int, workers int, out [][]float64) {
	cs.flush()
	widths := blockWidths(len(xs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(widths) {
		workers = len(widths)
	}

	runBlock := func(sc *batchScratch, base, width int) {
		switch {
		case width >= 3: // 4-lane kernel; a width-3 tail pads lane 3
			var bx [rwrLanes]int
			var bo [rwrLanes][]float64
			for j := 0; j < rwrLanes; j++ {
				if j < width {
					bx[j], bo[j] = xs[base+j], out[base+j]
				} else {
					bx[j], bo[j] = xs[base], sc.discard
				}
			}
			cs.rwr4(cfg, bx, sc.p4, sc.next4, bo)
		case width == 2:
			bx := [2]int{xs[base], xs[base+1]}
			bo := [2][]float64{out[base], out[base+1]}
			cs.rwr2(cfg, bx, sc.p2, sc.next2, bo)
		default:
			copy(out[base], cs.rwr(cfg, xs[base], sc.p1, sc.next1))
		}
	}

	if workers <= 1 {
		if cs.sc == nil {
			cs.sc = cs.newBatchScratch()
		}
		base := 0
		for _, w := range widths {
			runBlock(cs.sc, base, w)
			base += w
		}
		return
	}

	type block struct{ base, width int }
	jobs := make(chan block)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := cs.newBatchScratch()
			for b := range jobs {
				runBlock(sc, b.base, b.width)
			}
		}()
	}
	base := 0
	for _, w := range widths {
		jobs <- block{base, w}
		base += w
	}
	close(jobs)
	wg.Wait()
}

// rwrBatch is rwrBatchInto with freshly allocated result vectors.
func (cs *csr) rwrBatch(cfg *Config, xs []int, workers int) [][]float64 {
	out := make([][]float64, len(xs))
	flat := make([]float64, len(xs)*cs.n) // one backing array for all results
	for i := range out {
		out[i] = flat[i*cs.n : (i+1)*cs.n : (i+1)*cs.n]
	}
	cs.rwrBatchInto(cfg, xs, workers, out)
	return out
}
