package graph

import (
	"math"
	"sort"
)

// This file is the frozen pre-CSR implementation of the §VI hot path: the
// map-allocating random walker and the Resolve loop exactly as they stood
// before the CSR rework. It is retained verbatim — not refactored to share
// code with the fast path — as the executable specification the golden
// equivalence tests (equivalence_test.go) and the benchmark harness
// (cmd/briq-bench) compare against. Resolve must stay byte-identical to
// ReferenceResolve on every input; any change to the fast path that breaks
// that equality is a bug in the fast path, not a reason to touch this file.

// ReferenceRWR is the legacy random walk with restart from text mention x:
// it rebuilds every node's row-stochastic transition list on each invocation
// and returns the visiting probabilities π(t|x) as a map keyed by document
// table-mention index. Use RWR; this exists for equivalence testing and as
// the benchmark baseline.
func (g *Graph) ReferenceRWR(x int) map[int]float64 {
	n := len(g.adj)
	p := make([]float64, n)
	next := make([]float64, n)
	p[x] = 1

	// Precompute stochastic rows once per invocation (edges change between
	// invocations as Algorithm 1 rewires the graph).
	rows := make([][]edge, n)
	for u := range rows {
		rows[u] = g.transition(u)
	}

	for iter := 0; iter < g.cfg.MaxIters; iter++ {
		for i := range next {
			next[i] = 0
		}
		next[x] += g.cfg.Restart
		for u, pu := range p {
			if pu == 0 {
				continue
			}
			row := rows[u]
			if row == nil {
				// Dangling node: restart.
				next[x] += (1 - g.cfg.Restart) * pu
				continue
			}
			spread := (1 - g.cfg.Restart) * pu
			for _, e := range row {
				next[e.to] += spread * e.w
			}
		}
		// L∞ convergence check.
		delta := 0.0
		for i := range p {
			d := math.Abs(next[i] - p[i])
			if d > delta {
				delta = d
			}
		}
		p, next = next, p
		if delta < g.cfg.Eps {
			break
		}
	}

	out := make(map[int]float64, len(g.nodeTable))
	for nodeOff, ti := range g.nodeTable {
		out[ti] = p[g.m+nodeOff]
	}
	return out
}

// ReferenceResolve is the legacy Algorithm 1 loop driving ReferenceRWR. Like
// Resolve it consumes the graph (rewiring prunes edges), so run it on a
// freshly Built instance.
func (g *Graph) ReferenceResolve() []Alignment {
	// Candidates per text mention with normalized priors.
	perText := g.candidatesPerText()
	queue := g.buildQueue(perText)

	penalty := g.cfg.ClaimedCellPenalty
	if penalty <= 0 || penalty > 1 {
		penalty = 1
	}
	claimedBy := make(map[int]int) // table mention index → aligned text mention

	var alignments []Alignment
	for _, q := range queue {
		pi := g.ReferenceRWR(q.x)

		cands := perText[q.x] // already in table order

		// Normalize the visiting probabilities over this mention's own
		// candidates so π and σ contribute on comparable scales: raw π
		// values shrink with graph size, which would let a sharp classifier
		// drown the joint-inference signal entirely.
		var piTotal float64
		for _, c := range cands {
			piTotal += pi[c.table]
		}

		best, bestScore := -1, math.Inf(-1)
		for _, c := range cands {
			piHat := pi[c.table]
			if piTotal > 0 {
				piHat = pi[c.table] / piTotal
			}
			if y, claimed := claimedBy[c.table]; claimed {
				xv := g.doc.TextMentions[q.x].Value
				yv := g.doc.TextMentions[y].Value
				if relDiff(xv, yv) > 0.05 {
					piHat *= penalty
				}
			}
			score := g.cfg.Alpha*piHat + g.cfg.Beta*c.sigma
			if score > bestScore {
				best, bestScore = c.table, score
			}
		}

		if best >= 0 && bestScore > g.cfg.Epsilon {
			alignments = append(alignments, Alignment{Text: q.x, Table: best, Score: bestScore})
			claimedBy[best] = q.x
			if !g.cfg.DisableRewire {
				g.keepOnly(q.x, g.tableNode[best])
			}
		} else if !g.cfg.DisableRewire {
			g.keepOnly(q.x, -1)
		}
	}

	sort.Slice(alignments, func(i, j int) bool { return alignments[i].Text < alignments[j].Text })
	return alignments
}
