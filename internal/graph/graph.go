package graph

import (
	"math"
	"sort"

	"briq/internal/document"
	"briq/internal/filter"
	"briq/internal/mlmetrics"
	"briq/internal/nlp"
	"briq/internal/table"
)

// Config holds the global-resolution hyper-parameters; λ1, λ2, α, β and ε
// are grid-searched on the validation split (§VI-A, §VI-B).
type Config struct {
	Lambda1 float64 // weight of proximity in text-text edges
	Lambda2 float64 // weight of string similarity in text-text edges
	// TextTextMinSim keeps a text-text edge only when proximity or surface
	// similarity exceeds it (the "within a certain proximity or have similar
	// surface forms" condition).
	TextTextMinSim float64
	TableTableW    float64 // base table-table edge weight before normalization
	// SharedCellBoost multiplies TableTableW when two table mentions share
	// an actual cell (e.g. a virtual ratio and one of its input cells) —
	// "weights based on relatedness strengths" (§VI): a composite is more
	// strongly related to its constituents than to mentions that merely
	// share a line.
	SharedCellBoost float64

	Restart  float64 // RWR restart probability
	Eps      float64 // RWR convergence bound (L∞ on visiting probabilities)
	MaxIters int     // RWR iteration cap

	Alpha   float64 // weight of π(t|x) in OverallScore
	Beta    float64 // weight of σ(t|x) in OverallScore
	Epsilon float64 // alignment acceptance threshold on OverallScore

	// ClaimedCellPenalty discounts the walk probability of a candidate whose
	// table mention was already aligned to a text mention with a clearly
	// different value. Rewiring concentrates walk mass on resolved cells
	// (that is how Fig. 3's anchors work), but a cell claimed by a
	// different-valued mention is almost never the referent of this one —
	// unchecked, the concentration herds later mentions onto earlier
	// decisions (the Fig. 6b error mode). 1 disables the penalty.
	ClaimedCellPenalty float64

	// Ablation switches (both false in the published algorithm; exercised by
	// the design-choice ablation benches). DisableEntropyOrder processes
	// text mentions in document order instead of increasing entropy;
	// DisableRewire skips the graph update after each alignment decision.
	DisableEntropyOrder bool
	DisableRewire       bool

	// RWRWorkers sizes the worker pool for per-mention RWR invocations when
	// they are independent (DisableRewire: the graph is frozen, so every
	// restart vector can be walked concurrently with bit-identical results).
	// ≤0 means GOMAXPROCS. Ignored when rewiring is on — Algorithm 1's
	// sequential dependency (each decision reshapes the graph the next walk
	// sees) makes those walks inherently ordered.
	RWRWorkers int
}

// DefaultConfig returns the pre-tuning defaults.
func DefaultConfig() Config {
	return Config{
		Lambda1:            0.5,
		Lambda2:            0.5,
		TextTextMinSim:     0.15,
		TableTableW:        1.0,
		SharedCellBoost:    2.5,
		Restart:            0.15,
		Eps:                1e-6,
		MaxIters:           100,
		Alpha:              0.6,
		Beta:               0.4,
		Epsilon:            0.2,
		ClaimedCellPenalty: 0.3,
	}
}

// Alignment is one decided pair: text mention x aligned to table mention t
// with its overall score.
type Alignment struct {
	Text  int
	Table int
	Score float64
}

// Graph is the candidate alignment graph of one document.
type Graph struct {
	doc *document.Document
	cfg Config

	// Node numbering: text mentions occupy [0, m); table mentions of the
	// candidate set occupy [m, m+n) where tableNode maps the document's
	// table-mention index to a node id.
	m         int
	tableNode map[int]int // doc table index → node id
	nodeTable []int       // node id − m → doc table index

	adj [][]edge // adjacency lists with raw weights

	prior map[[2]int]float64 // (text, tableIdx) → classifier score σ

	// cs is the frozen CSR transition structure backing the fast RWR path.
	// Built lazily on the first walk and kept in sync by keepOnly; nil until
	// then so Build stays cheap for callers that only inspect the graph.
	cs *csr
}

type edge struct {
	to int
	w  float64
}

// Build constructs the graph for a document from the filtered candidates.
// Table-mention nodes are created for every candidate table mention plus all
// single-cell mentions of the candidate tables (they carry the row/column
// coherence signal of Fig. 4 even when not candidates themselves).
func Build(cfg Config, doc *document.Document, candidates []filter.Candidate) *Graph {
	g := &Graph{
		doc:       doc,
		cfg:       cfg,
		m:         len(doc.TextMentions),
		tableNode: make(map[int]int),
		prior:     make(map[[2]int]float64),
	}

	addTableNode := func(ti int) int {
		if id, ok := g.tableNode[ti]; ok {
			return id
		}
		id := g.m + len(g.nodeTable)
		g.tableNode[ti] = id
		g.nodeTable = append(g.nodeTable, ti)
		return id
	}

	// Candidate table mentions.
	candidateTables := map[interface{}]bool{}
	for _, c := range candidates {
		addTableNode(c.Table)
		candidateTables[doc.TableMentions[c.Table].Table] = true
		g.prior[[2]int{c.Text, c.Table}] = c.Score
	}
	// Single-cell mentions of tables that have candidates.
	for ti, tm := range doc.TableMentions {
		if !tm.IsVirtual() && candidateTables[tm.Table] {
			addTableNode(ti)
		}
	}

	n := g.m + len(g.nodeTable)
	g.adj = make([][]edge, n)

	g.addTextTextEdges()
	g.addTableTableEdges()
	for _, c := range candidates {
		g.addEdge(c.Text, g.tableNode[c.Table], c.Score)
	}
	return g
}

func (g *Graph) addEdge(a, b int, w float64) {
	if w <= 0 || a == b {
		return
	}
	g.adj[a] = append(g.adj[a], edge{b, w})
	g.adj[b] = append(g.adj[b], edge{a, w})
}

// addTextTextEdges connects text mentions by Wxx = λ1·fprox + λ2·fstrsim.
// fprox is 1 − tokenDistance/documentLength, so closer mentions weigh more.
func (g *Graph) addTextTextEdges() {
	docLen := g.doc.TokenCount()
	if docLen == 0 {
		docLen = 1
	}
	for i := 0; i < g.m; i++ {
		for j := i + 1; j < g.m; j++ {
			xi, xj := &g.doc.TextMentions[i], &g.doc.TextMentions[j]
			dist := xi.TokenPos - xj.TokenPos
			if dist < 0 {
				dist = -dist
			}
			prox := 1 - float64(dist)/float64(docLen)
			if prox < 0 {
				prox = 0
			}
			sim := nlp.JaroWinkler(xi.Surface, xj.Surface)
			if prox < g.cfg.TextTextMinSim && sim < g.cfg.TextTextMinSim {
				continue
			}
			g.addEdge(i, j, g.cfg.Lambda1*prox+g.cfg.Lambda2*sim)
		}
	}
}

// addTableTableEdges connects table-mention nodes of the same table that
// share a row or a column (via any of their input cells).
func (g *Graph) addTableTableEdges() {
	for a := 0; a < len(g.nodeTable); a++ {
		ta := g.doc.TableMentions[g.nodeTable[a]]
		for b := a + 1; b < len(g.nodeTable); b++ {
			tb := g.doc.TableMentions[g.nodeTable[b]]
			if ta.Table != tb.Table {
				continue
			}
			switch {
			case sharesCell(ta.Cells, tb.Cells):
				boost := g.cfg.SharedCellBoost
				if boost <= 0 {
					boost = 1
				}
				g.addEdge(g.m+a, g.m+b, g.cfg.TableTableW*boost)
			case sharesLine(ta.Cells, tb.Cells):
				g.addEdge(g.m+a, g.m+b, g.cfg.TableTableW)
			}
		}
	}
}

func sharesCell(a, b []table.CellRef) bool {
	for _, ca := range a {
		for _, cb := range b {
			if ca == cb {
				return true
			}
		}
	}
	return false
}

func sharesLine(a, b []table.CellRef) bool {
	for _, ca := range a {
		for _, cb := range b {
			if ca.Row == cb.Row || ca.Col == cb.Col {
				return true
			}
		}
	}
	return false
}

// transition returns the row-stochastic transition distribution from node u
// over its current edges.
func (g *Graph) transition(u int) []edge {
	edges := g.adj[u]
	var total float64
	for _, e := range edges {
		total += e.w
	}
	if total == 0 {
		return nil
	}
	out := make([]edge, len(edges))
	for i, e := range edges {
		out[i] = edge{e.to, e.w / total}
	}
	return out
}

// ensureCSR freezes the adjacency lists into the CSR transition structure on
// first use. keepOnly keeps it in sync afterwards.
func (g *Graph) ensureCSR() *csr {
	if g.cs == nil {
		g.cs = newCSR(g.adj)
	}
	return g.cs
}

// RWR runs a random walk with restart from text mention x and returns the
// stationary visiting probability π(t|x) for every candidate table mention
// (keyed by document table-mention index). The walk runs on the frozen CSR
// structure with reused dense score vectors; its output is bit-identical to
// the legacy map-based walker (ReferenceRWR).
func (g *Graph) RWR(x int) map[int]float64 {
	cs := g.ensureCSR()
	cs.flush()
	p := cs.rwr(&g.cfg, x, cs.p, cs.next)
	out := make(map[int]float64, len(g.nodeTable))
	for nodeOff, ti := range g.nodeTable {
		out[ti] = p[g.m+nodeOff]
	}
	return out
}

// CandidateTables returns the document table-mention index carried by each
// candidate node, in node order — the column key for RWRAll's rows.
func (g *Graph) CandidateTables() []int {
	out := make([]int, len(g.nodeTable))
	copy(out, g.nodeTable)
	return out
}

// RWRAll runs the walk for every text mention of the document on the frozen
// graph and returns, per mention, the visiting probabilities over the
// candidate table-mention nodes: row k of the result corresponds to text
// mention k, and column c to CandidateTables()[c]. (Probabilities on
// non-candidate table mentions are identically zero, so this is the full
// walk result without materializing mostly-zero vectors.) The walks are
// independent — no rewiring happens between them — so they fan out across
// the RWR worker pool (Config.RWRWorkers); each probability is bit-identical
// to the one RWR would return for the same mention. This is the
// document-level batch entry point used by cmd/briq-bench.
func (g *Graph) RWRAll() [][]float64 {
	cs := g.ensureCSR()
	xs := make([]int, g.m)
	for i := range xs {
		xs[i] = i
	}
	vecs := cs.batchResults(g.m)
	cs.rwrBatchInto(&g.cfg, xs, g.cfg.RWRWorkers, vecs)
	out := make([][]float64, g.m)
	nc := len(g.nodeTable)
	flat := make([]float64, g.m*nc)
	for i, v := range vecs {
		out[i] = flat[i*nc : (i+1)*nc : (i+1)*nc]
		copy(out[i], v[g.m:])
	}
	return out
}

// cand is one candidate of a text mention: the target table-mention index,
// its classifier prior σ, and the graph node carrying it.
type cand struct {
	table int
	sigma float64
	node  int
}

// queued is one text mention awaiting resolution, keyed by the entropy of
// its prior distribution (Algorithm 1 processes low-entropy mentions first).
type queued struct {
	x       int
	entropy float64
}

// candidatesPerText groups the candidate priors by text mention in a fixed
// order. g.prior is a map, so insertion order varies between runs, and the
// entropy accumulation in buildQueue is order-sensitive in its last ulps —
// enough to flip the queue order of near-tied mentions and change which
// mention claims a cell first; sorting by table index pins it down.
func (g *Graph) candidatesPerText() map[int][]cand {
	perText := make(map[int][]cand)
	for key, sigma := range g.prior {
		perText[key[0]] = append(perText[key[0]], cand{key[1], sigma, g.tableNode[key[1]]})
	}
	for _, cands := range perText {
		sort.Slice(cands, func(i, j int) bool { return cands[i].table < cands[j].table })
	}
	return perText
}

// buildQueue orders the text mentions for resolution: by increasing entropy
// of their normalized prior distribution (ties broken by mention index), or
// by document order under the DisableEntropyOrder ablation.
func (g *Graph) buildQueue(perText map[int][]cand) []queued {
	var queue []queued
	for x, cands := range perText {
		// Normalize σ to a distribution for the entropy computation.
		scores := make([]float64, len(cands))
		for i, c := range cands {
			scores[i] = c.sigma
		}
		mlmetrics.Normalize(scores)
		queue = append(queue, queued{x, mlmetrics.Entropy(scores)})
	}
	if g.cfg.DisableEntropyOrder {
		sort.Slice(queue, func(i, j int) bool { return queue[i].x < queue[j].x })
	} else {
		sort.Slice(queue, func(i, j int) bool {
			if queue[i].entropy != queue[j].entropy {
				return queue[i].entropy < queue[j].entropy
			}
			return queue[i].x < queue[j].x // deterministic tie-break
		})
	}
	return queue
}

// Resolve runs Algorithm 1: it normalizes each text mention's priors,
// processes mentions in increasing entropy order, runs an RWR per mention,
// combines OverallScore(t|x) = α·π(t|x) + β·σ(t|x), accepts the best
// candidate when it clears ε, and rewires the graph after every decision so
// later (harder) mentions benefit from earlier (easier) ones.
//
// The walks run on the frozen CSR structure. With rewiring on they are
// sequential — each decision prunes edges before the next walk, and the walk
// for a mention always runs against the fully-rewired graph of all earlier
// decisions (never a partially-pruned one; keepOnly completes before the
// next walk starts). Under DisableRewire the graph is frozen for the whole
// pass, so the per-mention walks fan out across a worker pool (RWRWorkers)
// with bit-identical output. Resolve consumes the graph (rewiring prunes
// edges in place): run it once per Build.
//
// Resolve is the rwr engine, not a pipeline entry point: pipeline code selects
// a strategy through the resolve.Resolver interface (resolve.RWR wraps this
// method), which keeps strategy choice inside the fingerprint and the
// per-strategy stage metrics. Call Build+Resolve directly only from tests and
// benchmarks that exercise the engine itself.
func (g *Graph) Resolve() []Alignment {
	perText := g.candidatesPerText()
	queue := g.buildQueue(perText)
	if len(queue) == 0 {
		return nil
	}

	cs := g.ensureCSR()

	// Independent walks (frozen graph): precompute them all on the pool.
	var prefetched [][]float64
	if g.cfg.DisableRewire && len(queue) > 1 {
		xs := make([]int, len(queue))
		for i, q := range queue {
			xs[i] = q.x
		}
		prefetched = cs.rwrBatch(&g.cfg, xs, g.cfg.RWRWorkers)
	}

	penalty := g.cfg.ClaimedCellPenalty
	if penalty <= 0 || penalty > 1 {
		penalty = 1
	}
	claimedBy := make(map[int]int) // table mention index → aligned text mention

	var alignments []Alignment
	for qi, q := range queue {
		var p []float64
		if prefetched != nil {
			p = prefetched[qi]
		} else {
			cs.flush()
			p = cs.rwr(&g.cfg, q.x, cs.p, cs.next)
		}

		cands := perText[q.x] // already in table order

		// Normalize the visiting probabilities over this mention's own
		// candidates so π and σ contribute on comparable scales: raw π
		// values shrink with graph size, which would let a sharp classifier
		// drown the joint-inference signal entirely.
		var piTotal float64
		for _, c := range cands {
			piTotal += p[c.node]
		}

		best, bestScore := -1, math.Inf(-1)
		for _, c := range cands {
			piHat := p[c.node]
			if piTotal > 0 {
				piHat = p[c.node] / piTotal
			}
			if y, claimed := claimedBy[c.table]; claimed {
				xv := g.doc.TextMentions[q.x].Value
				yv := g.doc.TextMentions[y].Value
				if relDiff(xv, yv) > 0.05 {
					piHat *= penalty
				}
			}
			score := g.cfg.Alpha*piHat + g.cfg.Beta*c.sigma
			if score > bestScore {
				best, bestScore = c.table, score
			}
		}

		if best >= 0 && bestScore > g.cfg.Epsilon {
			alignments = append(alignments, Alignment{Text: q.x, Table: best, Score: bestScore})
			claimedBy[best] = q.x
			if !g.cfg.DisableRewire {
				g.keepOnly(q.x, g.tableNode[best])
			}
		} else if !g.cfg.DisableRewire {
			g.keepOnly(q.x, -1)
		}
	}

	sort.Slice(alignments, func(i, j int) bool { return alignments[i].Text < alignments[j].Text })
	return alignments
}

func relDiff(a, b float64) float64 {
	da, db := math.Abs(a), math.Abs(b)
	den := math.Max(da, db)
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// keepOnly is Algorithm 1's rewiring step: it removes all text-table edges
// of text node x except the one to keep (keep == -1 removes them all),
// concentrating future walk mass on resolved cells. Text-text edges are
// preserved; every removal is symmetric (both directions drop together,
// including parallel duplicates), so the graph is undirected before and
// after every call.
//
// Intended semantics and safety: keepOnly mutates adjacency in place while
// iterating — it walks g.adj[x] and compacts each peer list g.adj[e.to]
// into its own backing array mid-iteration. That is safe because the two
// lists are disjoint: x is a text node (< g.m) and every compacted peer is
// a table node (≥ g.m), so the iteration never reads a list it is writing.
// The mutation is NOT atomic with respect to a concurrent reader, however —
// keepOnly must only run between RWR invocations, never during one. Resolve
// guarantees that ordering: each walk completes (and, under DisableRewire,
// the whole prefetched batch completes) before any rewiring happens, so no
// walk can observe a half-pruned graph. The regression tests in
// keeponly_test.go pin these postconditions down.
func (g *Graph) keepOnly(x, keep int) {
	var kept []edge
	for _, e := range g.adj[x] {
		if e.to < g.m || e.to == keep {
			kept = append(kept, e)
			continue
		}
		// Remove the reverse edge from the table node.
		peer := g.adj[e.to]
		out := peer[:0]
		for _, pe := range peer {
			if pe.to != x {
				out = append(out, pe)
			}
		}
		g.adj[e.to] = out
		if g.cs != nil {
			g.cs.dropEdge(x, e.to)
		}
	}
	g.adj[x] = kept
}

// NodeCount returns the number of graph nodes (text + table mentions).
func (g *Graph) NodeCount() int { return len(g.adj) }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, edges := range g.adj {
		total += len(edges)
	}
	return total / 2
}
