package graph_test

// Golden equivalence suite: the CSR fast path (Resolve/RWR) must produce
// byte-identical output to the frozen pre-CSR implementation
// (ReferenceResolve/ReferenceRWR) on realistic, pipeline-generated
// workloads. Floats are compared with ==, not a tolerance — the CSR rework
// is a representation change, not a numerical one, and PR 1's determinism
// guarantees (sorted candidate order, fixed tie-breaks) only survive if the
// accumulation order is preserved exactly.

import (
	"fmt"
	"testing"

	"briq/internal/core"
	"briq/internal/corpus"
	"briq/internal/document"
	"briq/internal/filter"
	"briq/internal/graph"
)

// goldenSeeds are the corpus seeds the equivalence suite runs on; each seed
// produces a different mix of table shapes, collision patterns and candidate
// densities.
var goldenSeeds = []int64{7, 42, 1234}

type resolveInput struct {
	doc   *document.Document
	cands []filter.Candidate
}

// pipelineInputs runs the real first two stages (classifier scoring +
// adaptive filtering) of the heuristic pipeline over a generated corpus and
// returns the exact (document, candidates) pairs the resolution stage sees
// in production.
func pipelineInputs(tb testing.TB, seed int64, pages int) []resolveInput {
	tb.Helper()
	c := corpus.Generate(corpus.TableLConfig(seed, pages))
	p := core.NewPipeline()
	var out []resolveInput
	for _, doc := range c.Docs {
		cands := p.ScorePairs(doc)
		filtered := filter.Apply(p.FilterConfig, doc, p.Tagger, cands)
		if len(filtered.Kept) == 0 {
			continue
		}
		out = append(out, resolveInput{doc, filtered.Kept})
	}
	if len(out) == 0 {
		tb.Fatalf("seed %d produced no documents with candidates", seed)
	}
	return out
}

func diffAlignments(got, want []graph.Alignment) string {
	if len(got) != len(want) {
		return fmt.Sprintf("alignment count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] { // exact: Text, Table and the float Score
			return fmt.Sprintf("alignment %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	return ""
}

// TestResolveMatchesReferenceGolden is the headline equivalence gate: on
// three corpus seeds, the CSR Resolve must equal the legacy ReferenceResolve
// byte-for-byte, with rewiring on (the published algorithm).
func TestResolveMatchesReferenceGolden(t *testing.T) {
	for _, seed := range goldenSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			for _, in := range pipelineInputs(t, seed, 10) {
				cfg := graph.DefaultConfig()
				fast := graph.Build(cfg, in.doc, in.cands).Resolve()
				ref := graph.Build(cfg, in.doc, in.cands).ReferenceResolve()
				if d := diffAlignments(fast, ref); d != "" {
					t.Fatalf("doc %s: CSR vs reference: %s", in.doc.ID, d)
				}
			}
		})
	}
}

// TestResolveMatchesReferenceNoRewire covers the worker-pool path: with
// rewiring disabled every walk is independent and Resolve prefetches them in
// parallel; the pooled output must still equal the sequential reference.
func TestResolveMatchesReferenceNoRewire(t *testing.T) {
	for _, seed := range goldenSeeds {
		for _, workers := range []int{1, 4} {
			seed, workers := seed, workers
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				for _, in := range pipelineInputs(t, seed, 6) {
					cfg := graph.DefaultConfig()
					cfg.DisableRewire = true
					cfg.RWRWorkers = workers
					fast := graph.Build(cfg, in.doc, in.cands).Resolve()
					ref := graph.Build(cfg, in.doc, in.cands).ReferenceResolve()
					if d := diffAlignments(fast, ref); d != "" {
						t.Fatalf("doc %s: pooled CSR vs reference: %s", in.doc.ID, d)
					}
				}
			})
		}
	}
}

// TestRWRMatchesReference checks the walker itself, including after a
// resolution pass has rewired the graph (pruned CSR rows vs compacted
// adjacency lists).
func TestRWRMatchesReference(t *testing.T) {
	for _, in := range pipelineInputs(t, goldenSeeds[0], 6) {
		cfg := graph.DefaultConfig()
		fast := graph.Build(cfg, in.doc, in.cands)
		ref := graph.Build(cfg, in.doc, in.cands)
		for x := 0; x < len(in.doc.TextMentions); x++ {
			got, want := fast.RWR(x), ref.ReferenceRWR(x)
			if len(got) != len(want) {
				t.Fatalf("doc %s x=%d: %d probabilities, want %d", in.doc.ID, x, len(got), len(want))
			}
			for ti, p := range want {
				if got[ti] != p {
					t.Fatalf("doc %s x=%d: π(%d) = %v, want %v", in.doc.ID, x, ti, got[ti], p)
				}
			}
		}
		// Resolve both (rewires both), then walk again on the pruned graphs.
		fast.Resolve()
		ref.ReferenceResolve()
		for x := 0; x < len(in.doc.TextMentions); x++ {
			got, want := fast.RWR(x), ref.ReferenceRWR(x)
			for ti, p := range want {
				if got[ti] != p {
					t.Fatalf("doc %s x=%d post-rewire: π(%d) = %v, want %v", in.doc.ID, x, ti, got[ti], p)
				}
			}
		}
	}
}

// TestRWRAllMatchesReference: the pooled document-level batch walk must
// agree with per-mention reference walks, probability by probability.
func TestRWRAllMatchesReference(t *testing.T) {
	for _, in := range pipelineInputs(t, goldenSeeds[2], 6) {
		cfg := graph.DefaultConfig()
		cfg.RWRWorkers = 4
		fast := graph.Build(cfg, in.doc, in.cands)
		ref := graph.Build(cfg, in.doc, in.cands)
		all := fast.RWRAll()
		cols := fast.CandidateTables()
		if len(all) != len(in.doc.TextMentions) {
			t.Fatalf("doc %s: RWRAll returned %d rows, want %d", in.doc.ID, len(all), len(in.doc.TextMentions))
		}
		for x, row := range all {
			want := ref.ReferenceRWR(x)
			if len(row) != len(cols) || len(want) != len(cols) {
				t.Fatalf("doc %s x=%d: %d row entries, %d reference entries, %d candidate columns",
					in.doc.ID, x, len(row), len(want), len(cols))
			}
			for c, ti := range cols {
				if row[c] != want[ti] {
					t.Fatalf("doc %s x=%d: π(%d) = %v, want %v", in.doc.ID, x, ti, row[c], want[ti])
				}
			}
		}
	}
}

// TestResolveMatchesReferenceDuplicateCandidates pins the parallel-edge
// case: duplicate (text, table) candidate pairs produce parallel text-table
// edges, which keepOnly must drop atomically on both paths.
func TestResolveMatchesReferenceDuplicateCandidates(t *testing.T) {
	for _, in := range pipelineInputs(t, goldenSeeds[1], 4) {
		dup := append(append([]filter.Candidate(nil), in.cands...), in.cands...)
		cfg := graph.DefaultConfig()
		fast := graph.Build(cfg, in.doc, dup).Resolve()
		ref := graph.Build(cfg, in.doc, dup).ReferenceResolve()
		if d := diffAlignments(fast, ref); d != "" {
			t.Fatalf("doc %s with duplicated candidates: %s", in.doc.ID, d)
		}
	}
}
