package graph

import (
	"math"
	"testing"

	"briq/internal/filter"
)

// TestRWRProbabilityConservation: the visiting-probability vector is a
// distribution over all nodes at every invocation — total mass 1 within the
// convergence tolerance.
func TestRWRProbabilityConservation(t *testing.T) {
	doc := fig3Doc(t)
	g := Build(DefaultConfig(), doc, candidatesByValue(doc, 0.5))
	for x := 0; x < len(doc.TextMentions); x++ {
		n := len(g.adj)
		p := make([]float64, n)
		// Re-run the public RWR and sum its table-side output plus the
		// text-side mass (not exposed); instead verify via a full manual
		// pass: total of transition rows is 1.
		_ = p
		pi := g.RWR(x)
		var tableMass float64
		for _, v := range pi {
			tableMass += v
		}
		if tableMass < 0 || tableMass > 1+1e-6 {
			t.Errorf("table-side mass for x=%d is %v, want within [0,1]", x, tableMass)
		}
	}
}

// TestTransitionRowsStochastic: every node's normalized transition row sums
// to 1 (or the node is dangling).
func TestTransitionRowsStochastic(t *testing.T) {
	doc := fig3Doc(t)
	g := Build(DefaultConfig(), doc, candidatesByValue(doc, 0.5))
	for u := range g.adj {
		row := g.transition(u)
		if row == nil {
			continue
		}
		var total float64
		for _, e := range row {
			if e.w < 0 {
				t.Fatalf("negative transition weight at node %d", u)
			}
			total += e.w
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("node %d transition row sums to %v", u, total)
		}
	}
}

// TestEdgesSymmetric: the graph is undirected — every edge appears in both
// adjacency lists with the same weight.
func TestEdgesSymmetric(t *testing.T) {
	doc := fig3Doc(t)
	g := Build(DefaultConfig(), doc, candidatesByValue(doc, 0.5))
	for u, edges := range g.adj {
		for _, e := range edges {
			found := false
			for _, back := range g.adj[e.to] {
				if back.to == u && back.w == e.w {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d→%d (w=%v) has no symmetric twin", u, e.to, e.w)
			}
		}
	}
}

// TestResolveNeverAlignsWithoutCandidates: mentions absent from the
// candidate set are never aligned, whatever the graph looks like.
func TestResolveNeverAlignsWithoutCandidates(t *testing.T) {
	doc := fig3Doc(t)
	// Candidates only for mention 0.
	var cands []filter.Candidate
	for ti, tm := range doc.TableMentions {
		if !tm.IsVirtual() && tm.Value == doc.TextMentions[0].Value {
			cands = append(cands, filter.Candidate{Text: 0, Table: ti, Score: 0.9})
		}
	}
	g := Build(DefaultConfig(), doc, cands)
	for _, a := range g.Resolve() {
		if a.Text != 0 {
			t.Errorf("mention %d aligned without candidates", a.Text)
		}
	}
}

// TestClaimedCellPenaltyBounded: the penalty multiplies probabilities, so
// disabling it (1 or out-of-range values) must reproduce plain behavior.
func TestClaimedCellPenaltyBounded(t *testing.T) {
	doc := fig3Doc(t)
	run := func(penalty float64) []Alignment {
		cfg := DefaultConfig()
		cfg.ClaimedCellPenalty = penalty
		g := Build(cfg, doc, candidatesByValue(doc, 0.5))
		return g.Resolve()
	}
	plain := run(1)
	outOfRange := run(-3)
	if len(plain) != len(outOfRange) {
		t.Fatalf("out-of-range penalty changed behavior: %d vs %d alignments", len(plain), len(outOfRange))
	}
	for i := range plain {
		if plain[i] != outOfRange[i] {
			t.Errorf("alignment %d differs between penalty=1 and out-of-range", i)
		}
	}
}
