package graph

// Document-level RWR benchmarks: the CSR fast path vs the frozen reference
// implementation on identical inputs. Run with
//
//	go test -bench BenchmarkResolve -benchmem ./internal/graph
//
// cmd/briq-bench runs the same comparison over a pipeline-generated corpus
// and records it in BENCH_pipeline.json.

import (
	"testing"

	"briq/internal/document"
	"briq/internal/filter"
)

func benchInputs(b *testing.B) ([]*document.Document, [][]filter.Candidate) {
	b.Helper()
	docs := corpusDocs(b, 42, 10)
	cands := make([][]filter.Candidate, len(docs))
	for i, doc := range docs {
		cands[i] = candidatesByValue(doc, 0.5)
	}
	return docs, cands
}

func BenchmarkResolveCSR(b *testing.B) {
	docs, cands := benchInputs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(docs)
		Build(DefaultConfig(), docs[j], cands[j]).Resolve()
	}
}

func BenchmarkResolveReference(b *testing.B) {
	docs, cands := benchInputs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(docs)
		Build(DefaultConfig(), docs[j], cands[j]).ReferenceResolve()
	}
}

// BenchmarkRWRDoc* is the document-level RWR benchmark: one op = walking
// every text mention of a document on its frozen graph. The CSR path batches
// the walks across the worker pool (RWRAll); the reference path is the
// legacy per-mention map-allocating walker. Graphs are built outside the
// timer — this measures the walks, not graph construction.
func BenchmarkRWRDocCSR(b *testing.B) {
	docs, cands := benchInputs(b)
	gs := make([]*Graph, len(docs))
	for i := range docs {
		gs[i] = Build(DefaultConfig(), docs[i], cands[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gs[i%len(gs)].RWRAll()
	}
}

func BenchmarkRWRDocReference(b *testing.B) {
	docs, cands := benchInputs(b)
	gs := make([]*Graph, len(docs))
	for i := range docs {
		gs[i] = Build(DefaultConfig(), docs[i], cands[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := gs[i%len(gs)]
		for x := 0; x < g.m; x++ {
			g.ReferenceRWR(x)
		}
	}
}

// Single-walk comparison: isolates the per-invocation setup the CSR removes
// (transition-row rebuild and its allocations).
func BenchmarkRWRCSR(b *testing.B) {
	docs, cands := benchInputs(b)
	g := Build(DefaultConfig(), docs[0], cands[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RWR(i % g.m)
	}
}

func BenchmarkRWRReference(b *testing.B) {
	docs, cands := benchInputs(b)
	g := Build(DefaultConfig(), docs[0], cands[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ReferenceRWR(i % g.m)
	}
}
