// Package graph implements BriQ's global resolution stage (§VI): an
// undirected edge-weighted graph over the document's quantity mentions with
// three edge kinds — text-text (proximity + string similarity), table-table
// (same row or column of the same table) and text-table (surviving candidate
// pairs weighted by classifier priors) — random walks with restart (RWR) to
// score candidate table mentions per text mention, and the entropy-ordered
// alignment decision loop of Algorithm 1.
//
// # Hot path
//
// RWR dominates per-document resolution cost, so the walk runs on a frozen
// compressed-sparse-row (CSR) transition structure (csr.go) built once per
// document: dense []float64 score/next vectors reused across invocations,
// per-node edge-weight normalizers recomputed lazily only for rows the
// rewiring touched, and an early exit on convergence. Rewiring (keepOnly)
// zeroes pruned edge slots in place instead of compacting, which keeps the
// row layout stable and the float accumulation order — and therefore the
// output — bit-identical to the legacy map-based walker. When the walks are
// independent (Config.DisableRewire), Resolve fans them out across a worker
// pool (Config.RWRWorkers).
//
// The pre-CSR implementation is retained verbatim in reference.go
// (ReferenceRWR, ReferenceResolve) as the executable specification: the
// golden equivalence tests assert Resolve == ReferenceResolve byte-for-byte
// on pipeline-generated corpora, and cmd/briq-bench reports the speedup of
// the CSR path over it.
//
// # Invariants
//
//   - The graph is undirected: every edge appears in both adjacency lists
//     with the same weight, before and after every rewiring step.
//   - Resolution is deterministic: candidate order is fixed (sorted by table
//     index) before any float accumulates, queue ties break on mention
//     index, and parallel walks write only caller-owned vectors — serial and
//     pooled runs are bit-for-bit identical.
//   - Resolve consumes the graph (rewiring prunes edges in place); run it
//     once per Build.
package graph
