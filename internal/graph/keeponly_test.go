package graph

// Regression suite for keepOnly's intended semantics (see its doc comment):
// the in-place mid-iteration mutation must leave the graph in a fully-pruned,
// symmetric state after every call — never a half-pruned one — and must keep
// the CSR mirror consistent with the adjacency lists so no later walk can
// observe a state the legacy path could not reach.

import (
	"testing"
)

// checkSymmetric fails if any edge lacks its same-weight reverse twin.
func checkSymmetric(t *testing.T, g *Graph, ctx string) {
	t.Helper()
	for u, edges := range g.adj {
		for _, e := range edges {
			twins := 0
			for _, back := range g.adj[e.to] {
				if back.to == u && back.w == e.w {
					twins++
				}
			}
			if twins == 0 {
				t.Fatalf("%s: edge %d→%d (w=%v) has no symmetric twin", ctx, u, e.to, e.w)
			}
		}
	}
}

// checkCSRConsistent fails if the CSR mirror disagrees with the adjacency
// lists: every surviving adjacency edge must have a live slot of the same
// weight, surviving weight totals must match, and after a flush the
// normalized rows must equal the legacy transition rows bit-for-bit.
func checkCSRConsistent(t *testing.T, g *Graph, ctx string) {
	t.Helper()
	cs := g.cs
	if cs == nil {
		t.Fatalf("%s: no CSR built", ctx)
	}
	cs.flush()
	for u := range g.adj {
		// Count live slots per target and compare against adjacency.
		liveW := map[int]float64{}
		liveN := 0
		for s := cs.rowStart[u]; s < cs.rowStart[u+1]; s++ {
			if cs.w[s] != 0 {
				liveW[int(cs.arcs[s].to)] += cs.w[s]
				liveN++
			}
		}
		adjW := map[int]float64{}
		for _, e := range g.adj[u] {
			adjW[e.to] += e.w
		}
		if liveN != len(g.adj[u]) {
			t.Fatalf("%s: node %d has %d live CSR slots, %d adjacency edges", ctx, u, liveN, len(g.adj[u]))
		}
		for to, w := range adjW {
			if liveW[to] != w {
				t.Fatalf("%s: node %d→%d CSR weight %v, adjacency %v", ctx, u, to, liveW[to], w)
			}
		}
		// Normalized rows must match the legacy transition computation.
		row := g.transition(u)
		if row == nil {
			if !cs.dangling[u] {
				t.Fatalf("%s: node %d dangling in adjacency but not in CSR", ctx, u)
			}
			continue
		}
		if cs.dangling[u] {
			t.Fatalf("%s: node %d dangling in CSR but not in adjacency", ctx, u)
		}
		ri := 0
		for s := cs.rowStart[u]; s < cs.rowStart[u+1]; s++ {
			if cs.w[s] == 0 {
				continue
			}
			if ri >= len(row) || int(cs.arcs[s].to) != row[ri].to || cs.arcs[s].nw != row[ri].w {
				t.Fatalf("%s: node %d slot %d: CSR (%d, %v) vs transition (%d, %v)",
					ctx, u, s, cs.arcs[s].to, cs.arcs[s].nw, row[ri].to, row[ri].w)
			}
			ri++
		}
		if ri != len(row) {
			t.Fatalf("%s: node %d: %d live CSR slots, %d transition entries", ctx, u, ri, len(row))
		}
	}
}

// TestKeepOnlyPostconditions drives keepOnly through a full pruning
// schedule and asserts that after every single call — not just at the end —
// the graph is symmetric, fully pruned for the touched mention, and mirrored
// exactly in the CSR. A half-applied removal (forward edge gone, reverse
// alive, or a stale CSR slot) fails immediately.
func TestKeepOnlyPostconditions(t *testing.T) {
	doc := fig3Doc(t)
	g := Build(DefaultConfig(), doc, candidatesByValue(doc, 0.5))
	g.ensureCSR()

	for x := 0; x < g.m; x++ {
		keep := -1
		// Alternate between keeping one candidate edge and dropping all.
		if x%2 == 0 {
			for _, e := range g.adj[x] {
				if e.to >= g.m {
					keep = e.to
					break
				}
			}
		}
		g.keepOnly(x, keep)

		ctx := "after keepOnly"
		for _, e := range g.adj[x] {
			if e.to >= g.m && e.to != keep {
				t.Fatalf("%s(%d, %d): text-table edge %d→%d survived", ctx, x, keep, x, e.to)
			}
		}
		checkSymmetric(t, g, ctx)
		checkCSRConsistent(t, g, ctx)
	}
}

// TestKeepOnlyParallelEdges: duplicate candidates create parallel text-table
// edges; keepOnly must remove every copy in both directions atomically.
func TestKeepOnlyParallelEdges(t *testing.T) {
	doc := fig3Doc(t)
	cands := candidatesByValue(doc, 0.5)
	cands = append(cands, cands...) // duplicate every pair
	g := Build(DefaultConfig(), doc, cands)
	g.ensureCSR()

	g.keepOnly(0, -1)
	for _, e := range g.adj[0] {
		if e.to >= g.m {
			t.Fatalf("parallel text-table edge 0→%d survived keepOnly", e.to)
		}
	}
	for u := g.m; u < len(g.adj); u++ {
		for _, e := range g.adj[u] {
			if e.to == 0 {
				t.Fatalf("reverse parallel edge %d→0 survived keepOnly", u)
			}
		}
	}
	checkSymmetric(t, g, "after parallel-edge keepOnly")
	checkCSRConsistent(t, g, "after parallel-edge keepOnly")
}

// TestKeepOnlyIdempotent: re-applying the same pruning is a no-op, on both
// representations.
func TestKeepOnlyIdempotent(t *testing.T) {
	doc := fig3Doc(t)
	g := Build(DefaultConfig(), doc, candidatesByValue(doc, 0.5))
	g.ensureCSR()
	g.keepOnly(1, -1)
	edges := g.EdgeCount()
	g.keepOnly(1, -1)
	if got := g.EdgeCount(); got != edges {
		t.Fatalf("second keepOnly changed edge count: %d → %d", edges, got)
	}
	checkCSRConsistent(t, g, "after repeated keepOnly")
}

// TestResolveLeavesCSRConsistent: a full resolution pass (many interleaved
// walks and rewirings) must end with the CSR still mirroring the adjacency
// lists — the invariant that guarantees walk k always sees exactly the graph
// produced by decisions 1..k-1.
func TestResolveLeavesCSRConsistent(t *testing.T) {
	doc := fig3Doc(t)
	g := Build(DefaultConfig(), doc, candidatesByValue(doc, 0.5))
	g.Resolve()
	checkSymmetric(t, g, "after Resolve")
	checkCSRConsistent(t, g, "after Resolve")
}
