package graph

import (
	"math"
	"testing"

	"briq/internal/document"
	"briq/internal/filter"
	"briq/internal/table"
)

// fig3Doc reproduces the coupled-quantities example of Fig. 3: two tables
// with identical values (11% appears in both; 13.3% appears in both), where
// only joint inference can resolve the right table.
func fig3Doc(t *testing.T) *document.Document {
	t.Helper()
	t1, err := table.New("t1", "Transportation Systems ($ Millions)", [][]string{
		{"metric", "2Q 2012", "2Q 2013", "% Change"},
		{"Sales", "900", "947", "5%"},
		{"Segment Profit", "114", "126", "11%"},
		{"Segment Margin", "12.7%", "13.3%", "60 bps"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := table.New("t2", "Automation & Control ($ Millions)", [][]string{
		{"metric", "2Q 2012", "2Q 2013", "% Change"},
		{"Sales", "3,962", "4,065", "3%"},
		{"Segment Profit", "525", "585", "11%"},
		{"Segment Margin", "13.3%", "14.4%", "110 bps"},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := "Sales were up 5% on both a reported and organic basis. " +
		"Segment profit was up 11% and segment margins increased 60 bps to 13.3%."
	docs := document.NewSegmenter().Segment("p", []string{text}, []*table.Table{t1, t2})
	if len(docs) != 1 {
		t.Fatal("segmentation failed")
	}
	return docs[0]
}

// candidatesByValue builds candidates pairing every text mention with every
// single-cell table mention of equal value (the post-filter state for exact
// matches), scored uniformly — forcing resolution to rely on the graph.
func candidatesByValue(doc *document.Document, score float64) []filter.Candidate {
	var out []filter.Candidate
	for xi, x := range doc.TextMentions {
		for ti, tm := range doc.TableMentions {
			if tm.IsVirtual() {
				continue
			}
			if tm.Value == x.Value {
				out = append(out, filter.Candidate{Text: xi, Table: ti, Score: score})
			}
		}
	}
	return out
}

func tableOf(doc *document.Document, ti int) string {
	return doc.TableMentions[ti].Table.ID
}

func TestBuildGraphStructure(t *testing.T) {
	doc := fig3Doc(t)
	cands := candidatesByValue(doc, 0.5)
	g := Build(DefaultConfig(), doc, cands)

	if g.NodeCount() <= len(doc.TextMentions) {
		t.Fatal("no table nodes")
	}
	if g.EdgeCount() == 0 {
		t.Fatal("no edges")
	}
	// Text-text edges must exist between nearby mentions.
	hasTextText := false
	for x := 0; x < len(doc.TextMentions); x++ {
		for _, e := range g.adj[x] {
			if e.to < len(doc.TextMentions) {
				hasTextText = true
			}
		}
	}
	if !hasTextText {
		t.Error("no text-text edges")
	}
}

func TestRWRProbabilities(t *testing.T) {
	doc := fig3Doc(t)
	g := Build(DefaultConfig(), doc, candidatesByValue(doc, 0.5))
	pi := g.RWR(0)
	if len(pi) == 0 {
		t.Fatal("empty RWR result")
	}
	for ti, p := range pi {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Errorf("π(%d) = %v out of range", ti, p)
		}
	}
}

func TestResolveFig3CoupledQuantities(t *testing.T) {
	// The crux of §VI: "11%" and "13.3%" match cells in both tables; the
	// unambiguous "5%" and "60 bps" anchor table 1, and joint inference must
	// pull the ambiguous mentions to table 1 as well.
	doc := fig3Doc(t)
	g := Build(DefaultConfig(), doc, candidatesByValue(doc, 0.5))
	alignments := g.Resolve()

	if len(alignments) == 0 {
		t.Fatal("no alignments")
	}
	for _, a := range alignments {
		if got := tableOf(doc, a.Table); got != "t1" {
			x := doc.TextMentions[a.Text]
			t.Errorf("mention %q aligned to %s, want t1", x.Surface, got)
		}
	}
	// All four mentions should be resolved.
	if len(alignments) != 4 {
		t.Errorf("resolved %d mentions, want 4", len(alignments))
	}
}

func TestResolveRespectsEpsilon(t *testing.T) {
	doc := fig3Doc(t)
	cfg := DefaultConfig()
	cfg.Epsilon = 10 // impossible threshold
	g := Build(cfg, doc, candidatesByValue(doc, 0.5))
	if got := g.Resolve(); len(got) != 0 {
		t.Errorf("alignments above impossible ε: %d", len(got))
	}
}

func TestResolveDeterministic(t *testing.T) {
	doc := fig3Doc(t)
	run := func() []Alignment {
		g := Build(DefaultConfig(), doc, candidatesByValue(doc, 0.5))
		return g.Resolve()
	}
	a1, a2 := run(), run()
	if len(a1) != len(a2) {
		t.Fatal("nondeterministic alignment count")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("nondeterministic alignment at %d: %+v vs %+v", i, a1[i], a2[i])
		}
	}
}

func TestResolveUsesPriors(t *testing.T) {
	// With strong priors toward table 2's cells, resolution should follow
	// the classifier when graph evidence is balanced.
	doc := fig3Doc(t)
	var cands []filter.Candidate
	for xi, x := range doc.TextMentions {
		if x.Surface != "11%" {
			continue
		}
		for ti, tm := range doc.TableMentions {
			if tm.IsVirtual() || tm.Value != 11 {
				continue
			}
			score := 0.2
			if tm.Table.ID == "t2" {
				score = 0.95
			}
			cands = append(cands, filter.Candidate{Text: xi, Table: ti, Score: score})
		}
	}
	if len(cands) < 2 {
		t.Fatal("expected 11% in both tables")
	}
	cfg := DefaultConfig()
	cfg.Alpha, cfg.Beta = 0.1, 0.9 // prior-dominated
	g := Build(cfg, doc, cands)
	alignments := g.Resolve()
	if len(alignments) != 1 {
		t.Fatalf("want 1 alignment, got %d", len(alignments))
	}
	if got := tableOf(doc, alignments[0].Table); got != "t2" {
		t.Errorf("aligned to %s, want t2 (prior-dominated)", got)
	}
}

func TestKeepOnlyRemovesEdges(t *testing.T) {
	doc := fig3Doc(t)
	g := Build(DefaultConfig(), doc, candidatesByValue(doc, 0.5))
	before := g.EdgeCount()
	g.keepOnly(0, -1)
	after := g.EdgeCount()
	if after >= before {
		t.Errorf("keepOnly removed nothing: %d → %d", before, after)
	}
	for _, e := range g.adj[0] {
		if e.to >= len(doc.TextMentions) {
			t.Error("text-table edge survived keepOnly(x, -1)")
		}
	}
}

func TestRWRHandlesIsolatedNode(t *testing.T) {
	// A mention with no candidates is a dangling node; RWR must not diverge.
	doc := fig3Doc(t)
	g := Build(DefaultConfig(), doc, nil)
	pi := g.RWR(0)
	for _, p := range pi {
		if math.IsNaN(p) {
			t.Fatal("NaN probability on isolated graph")
		}
	}
	if got := g.Resolve(); len(got) != 0 {
		t.Errorf("alignments without candidates: %d", len(got))
	}
}

func TestSharesLine(t *testing.T) {
	a := []table.CellRef{{Row: 1, Col: 2}}
	b := []table.CellRef{{Row: 1, Col: 5}}
	c := []table.CellRef{{Row: 3, Col: 2}}
	d := []table.CellRef{{Row: 4, Col: 4}}
	if !sharesLine(a, b) {
		t.Error("same row should share")
	}
	if !sharesLine(a, c) {
		t.Error("same col should share")
	}
	if sharesLine(a, d) {
		t.Error("disjoint refs should not share")
	}
}
