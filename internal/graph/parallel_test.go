package graph

// Stress coverage for the per-mention RWR worker pool. These tests are the
// ones `make race` is expected to catch regressions with: the pool shares
// one frozen CSR across workers, and any write to shared state after the
// fan-out (a late renormalization, a shared scratch vector) is a data race
// the race detector will flag here.

import (
	"fmt"
	"sync"
	"testing"

	"briq/internal/corpus"
	"briq/internal/document"
)

// corpusDocs returns generated documents that have at least two text
// mentions, with uniform value-match candidates (no trained models needed
// inside the graph package).
func corpusDocs(t testing.TB, seed int64, pages int) []*document.Document {
	t.Helper()
	c := corpus.Generate(corpus.TableLConfig(seed, pages))
	var docs []*document.Document
	for _, doc := range c.Docs {
		if len(doc.TextMentions) >= 2 {
			docs = append(docs, doc)
		}
	}
	if len(docs) == 0 {
		t.Fatal("corpus produced no usable documents")
	}
	return docs
}

func noRewireConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.DisableRewire = true
	cfg.RWRWorkers = workers
	return cfg
}

// TestParallelRWRPoolDeterministic: the pooled no-rewire Resolve must be
// bit-identical to the single-worker run for every document, whatever the
// pool size.
func TestParallelRWRPoolDeterministic(t *testing.T) {
	docs := corpusDocs(t, 99, 8)
	for _, workers := range []int{2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for _, doc := range docs {
				cands := candidatesByValue(doc, 0.5)
				if len(cands) == 0 {
					continue
				}
				serial := Build(noRewireConfig(1), doc, cands).Resolve()
				pooled := Build(noRewireConfig(workers), doc, cands).Resolve()
				if len(serial) != len(pooled) {
					t.Fatalf("doc %s: %d vs %d alignments", doc.ID, len(serial), len(pooled))
				}
				for i := range serial {
					if serial[i] != pooled[i] {
						t.Fatalf("doc %s alignment %d: serial %+v vs pooled %+v",
							doc.ID, i, serial[i], pooled[i])
					}
				}
			}
		})
	}
}

// TestParallelRWRPoolStress hammers the pool from many goroutines at once —
// each on its own graph, as the document-level AlignAll fan-out does — so
// the race detector sees nested parallelism (document workers × RWR
// workers). Run via `make race`.
func TestParallelRWRPoolStress(t *testing.T) {
	docs := corpusDocs(t, 7, 6)
	const goroutines = 8
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, doc := range docs {
				cands := candidatesByValue(doc, 0.5)
				if len(cands) == 0 {
					continue
				}
				g := Build(noRewireConfig(4), doc, cands)
				g.Resolve()
			}
		}()
	}
	wg.Wait()
}

// TestRWRBatchMatchesSequential exercises rwrBatch directly against repeated
// sequential walks on the same frozen CSR.
func TestRWRBatchMatchesSequential(t *testing.T) {
	doc := fig3Doc(t)
	g := Build(DefaultConfig(), doc, candidatesByValue(doc, 0.5))
	cs := g.ensureCSR()

	xs := make([]int, g.m)
	for i := range xs {
		xs[i] = i
	}
	pooled := cs.rwrBatch(&g.cfg, xs, 4)

	for i, x := range xs {
		cs.flush()
		want := cs.rwr(&g.cfg, x, cs.p, cs.next)
		for n := range want {
			if pooled[i][n] != want[n] {
				t.Fatalf("x=%d node %d: pooled %v vs sequential %v", x, n, pooled[i][n], want[n])
			}
		}
	}
}
