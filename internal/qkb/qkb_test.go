package qkb

import (
	"testing"

	"briq/internal/document"
	"briq/internal/table"
)

func TestLink(t *testing.T) {
	kb := Default()
	tests := []struct {
		unit  string
		value float64
		ok    bool
		base  float64
	}{
		{"USD", 100, true, 100},
		{"%", 5, true, 0.05},
		{"bps", 500, true, 0.05}, // 500 bps = 5%
		{"km", 2, true, 2000},
		{"patients", 10, false, 0}, // count nouns not covered
		{"", 10, false, 0},
		{"MPGe", 105, false, 0}, // domain unit outside the KB
	}
	for _, tc := range tests {
		l, ok := kb.Link(tc.unit, tc.value)
		if ok != tc.ok {
			t.Errorf("Link(%q) ok = %v, want %v", tc.unit, ok, tc.ok)
			continue
		}
		if ok && l.Value != tc.base {
			t.Errorf("Link(%q,%v) base = %v, want %v", tc.unit, tc.value, l.Value, tc.base)
		}
	}
}

func TestSameUnifiesAcrossUnits(t *testing.T) {
	kb := Default()
	pct, _ := kb.Link("%", 5)
	bps, _ := kb.Link("bps", 500)
	if !Same(pct, bps) {
		t.Error("5% should equal 500 bps after canonicalization")
	}
	usd, _ := kb.Link("USD", 100)
	eur, _ := kb.Link("EUR", 100)
	if Same(usd, eur) {
		t.Error("currencies must not unify without exchange rates")
	}
	km, _ := kb.Link("km", 1)
	g, _ := kb.Link("kg", 1)
	if Same(km, g) {
		t.Error("different measures must not unify")
	}
}

func TestSameRequiresExactValues(t *testing.T) {
	kb := Default()
	a, _ := kb.Link("USD", 36900)
	b, _ := kb.Link("USD", 37000)
	if Same(a, b) {
		t.Error("approximate values must not match — that is the baseline's documented weakness")
	}
}

func TestBaselinePredict(t *testing.T) {
	tbl, err := table.New("t0", "prices", [][]string{
		{"item", "price"},
		{"alpha", "$100"},
		{"beta", "$250"},
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := document.NewSegmenter().Segment("p",
		[]string{"The alpha item price was exactly $100 while beta cost about $249."},
		[]*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatal("no doc")
	}
	doc := docs[0]

	preds := (&Baseline{}).Predict(doc)
	if len(preds) != 1 {
		t.Fatalf("want exactly 1 prediction (the exact match), got %d", len(preds))
	}
	tm := doc.TableMentions[preds[0].TableIndex]
	if tm.Value != 100 {
		t.Errorf("predicted value %v, want 100", tm.Value)
	}
}

func TestBaselineSkipsAmbiguousMatches(t *testing.T) {
	tbl, err := table.New("t0", "prices", [][]string{
		{"item", "us", "eu"},
		{"alpha", "$100", "$100"},
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := document.NewSegmenter().Segment("p",
		[]string{"The alpha item cost $100 in both regions."},
		[]*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatal("no doc")
	}
	preds := (&Baseline{}).Predict(docs[0])
	if len(preds) != 0 {
		t.Errorf("ambiguous exact match should abstain, got %d predictions", len(preds))
	}
}

func TestNormalizeUnitSpelling(t *testing.T) {
	kb := Default()
	if u, ok := kb.NormalizeUnitSpelling("dollars"); !ok || u != "USD" {
		t.Errorf("dollars → (%q,%v)", u, ok)
	}
	if _, ok := kb.NormalizeUnitSpelling("MPGe"); ok {
		t.Error("MPGe should not be covered")
	}
	if _, ok := kb.NormalizeUnitSpelling("zorkmids"); ok {
		t.Error("unknown spelling should not link")
	}
}
