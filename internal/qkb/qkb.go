// Package qkb implements the quantity-knowledge-base baseline the paper
// derived from its earlier work ([13]) and dismissed (§VII-D): both the text
// mention and the table cell are linked to a small, manually crafted
// knowledge base of canonicalized measures and units; a pair aligns only
// when both link to the same KB entry with exactly matching normalized
// values. The baseline demonstrates two failure modes the paper names: the
// KB covers only a fraction of the units found in web tables, and exact
// value matching cannot handle the approximate mentions that dominate real
// data.
package qkb

import (
	"strings"

	"briq/internal/document"
	"briq/internal/quantity"
)

// Measure is a canonical quantity dimension in the knowledge base.
type Measure string

// The KB's measures.
const (
	MeasureMoney    Measure = "money"
	MeasureFraction Measure = "fraction"
	MeasureLength   Measure = "length"
	MeasureMass     Measure = "mass"
	MeasureEnergy   Measure = "energy"
)

// Entry canonicalizes one unit: the measure it belongs to and the conversion
// factor to the measure's base unit.
type Entry struct {
	Measure Measure
	ToBase  float64 // multiply a value in this unit to get base units
}

// KB is a small quantity knowledge base, deliberately limited in coverage
// the way hand-crafted QKBs are.
type KB struct {
	entries map[string]Entry
}

// Default returns the built-in KB: major currencies (no exchange rates — a
// currency is its own base, as in the original QKB), percent/bps, and a few
// physical units. Count nouns ("patients", "votes", "points") are absent,
// exactly the coverage gap the paper calls out.
func Default() *KB {
	return &KB{entries: map[string]Entry{
		"USD": {MeasureMoney, 1},
		"EUR": {MeasureMoney, 1},
		"GBP": {MeasureMoney, 1},
		"CAD": {MeasureMoney, 1},
		"JPY": {MeasureMoney, 1},
		"%":   {MeasureFraction, 0.01},
		"bps": {MeasureFraction, 0.0001},
		"km":  {MeasureLength, 1000},
		"mi":  {MeasureLength, 1609.344},
		"kg":  {MeasureMass, 1000},
		"g":   {MeasureMass, 1},
		"lb":  {MeasureMass, 453.59237},
		"kWh": {MeasureEnergy, 3.6e6},
	}}
}

// Linked is a canonicalized quantity: measure, base-unit value, and the
// original currency code for money (currencies do not unify).
type Linked struct {
	Measure  Measure
	Value    float64
	Currency string
}

// Link canonicalizes a mention against the KB. Mentions without a unit or
// with a unit outside the KB do not link — the coverage limitation.
func (kb *KB) Link(unit string, value float64) (Linked, bool) {
	e, ok := kb.entries[unit]
	if !ok {
		return Linked{}, false
	}
	l := Linked{Measure: e.Measure, Value: value * e.ToBase}
	if e.Measure == MeasureMoney {
		l.Currency = unit
	}
	return l, true
}

// Covered reports whether the KB knows the unit.
func (kb *KB) Covered(unit string) bool {
	_, ok := kb.entries[unit]
	return ok
}

// Same reports whether two linked quantities denote the same canonical
// quantity: same measure, same currency, exactly matching values (a tiny
// numeric tolerance covers float formatting only, not approximation).
func Same(a, b Linked) bool {
	if a.Measure != b.Measure || a.Currency != b.Currency {
		return false
	}
	diff := a.Value - b.Value
	if diff < 0 {
		diff = -diff
	}
	scale := a.Value
	if scale < 0 {
		scale = -scale
	}
	if scale == 0 {
		return diff == 0
	}
	return diff/scale < 1e-9
}

// Alignment is one baseline output pair.
type Alignment struct {
	TextIndex  int
	TableIndex int
}

// Baseline is the QKB alignment baseline.
type Baseline struct {
	KB *KB
}

// Predict aligns each text mention to the unique table mention with an
// identical canonical quantity; ambiguous exact matches (several cells with
// the same canonical value) are skipped, as the method has no way to choose.
func (b *Baseline) Predict(doc *document.Document) []Alignment {
	kb := b.KB
	if kb == nil {
		kb = Default()
	}
	var out []Alignment
	for xi, x := range doc.TextMentions {
		lx, ok := kb.Link(x.Unit, x.Value)
		if !ok {
			continue
		}
		match := -1
		ambiguous := false
		for ti, tm := range doc.TableMentions {
			lt, ok := kb.Link(tm.Unit, tm.Value)
			if !ok || !Same(lx, lt) {
				continue
			}
			if match >= 0 {
				ambiguous = true
				break
			}
			match = ti
		}
		if match >= 0 && !ambiguous {
			out = append(out, Alignment{TextIndex: xi, TableIndex: match})
		}
	}
	return out
}

// NormalizeUnitSpelling maps a raw unit spelling to the KB's canonical key
// (delegating to the shared unit table, then verifying coverage).
func (kb *KB) NormalizeUnitSpelling(s string) (string, bool) {
	u, ok := quantity.CanonicalUnit(strings.TrimSpace(s))
	if !ok {
		return "", false
	}
	return u, kb.Covered(u)
}
