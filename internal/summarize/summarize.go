// Package summarize implements the paper's motivating application (§I):
// quantity-alignment-aware extractive text summarization. Once alignments
// are known, the summarizer can tell which sentences reference table
// aggregates (row/column totals, change ratios) and which merely restate
// individual cells — "knowing that one sentence references a row sum, while
// another discusses individual values in the same row, the summarization
// algorithm could decide to include the former in the summary, but not the
// latter." Selected sentences carry provenance: the table regions they
// summarize.
package summarize

import (
	"sort"
	"strings"

	"briq/internal/core"
	"briq/internal/document"
	"briq/internal/nlp"
	"briq/internal/quantity"
)

// Sentence is one scored sentence of a summarized document.
type Sentence struct {
	Index      int // position in the document
	Text       string
	Score      float64
	Alignments []core.Alignment // the quantity alignments inside this sentence
	// CoversAggregate reports whether the sentence references at least one
	// virtual cell (sum/diff/percent/ratio) — the high-value content.
	CoversAggregate bool
}

// Summary is a selection of sentences with table provenance.
type Summary struct {
	Sentences []Sentence // selected, in document order
	// CellCoverage maps table IDs to the number of distinct cells the
	// summary's alignments touch.
	CellCoverage map[string]int
}

// Text renders the summary as running text.
func (s *Summary) Text() string {
	parts := make([]string, len(s.Sentences))
	for i, sent := range s.Sentences {
		parts[i] = sent.Text
	}
	return strings.Join(parts, " ")
}

// Config controls sentence scoring.
type Config struct {
	// MaxSentences caps the summary length (default 3).
	MaxSentences int
	// AggregateBonus is added per aggregate alignment in a sentence: a
	// sentence stating a total outranks sentences restating its addends.
	AggregateBonus float64
	// SingleCellWeight is the per-single-cell-alignment score.
	SingleCellWeight float64
	// RedundancyPenalty is subtracted when a sentence's aligned cells are
	// already covered (as aggregate inputs) by an earlier selected sentence.
	RedundancyPenalty float64
	// PositionWeight favors early sentences (lead bias), in [0, 1].
	PositionWeight float64
}

// DefaultConfig returns sensible defaults.
func DefaultConfig() Config {
	return Config{
		MaxSentences:      3,
		AggregateBonus:    1.0,
		SingleCellWeight:  0.3,
		RedundancyPenalty: 0.6,
		PositionWeight:    0.15,
	}
}

// Summarizer scores and selects sentences using a BriQ pipeline.
type Summarizer struct {
	Pipeline *core.Pipeline
	Config   Config
}

// New returns a summarizer over the given pipeline (nil uses the default
// pipeline).
func New(p *core.Pipeline) *Summarizer {
	if p == nil {
		p = core.NewPipeline()
	}
	return &Summarizer{Pipeline: p, Config: DefaultConfig()}
}

// Summarize aligns the document and selects its most informative sentences.
func (s *Summarizer) Summarize(doc *document.Document) Summary {
	alignments := s.Pipeline.Align(doc)
	return s.FromAlignments(doc, alignments)
}

// FromAlignments builds the summary from precomputed alignments (useful when
// the caller already ran the pipeline).
func (s *Summarizer) FromAlignments(doc *document.Document, alignments []core.Alignment) Summary {
	cfg := s.Config
	if cfg.MaxSentences <= 0 {
		cfg.MaxSentences = 3
	}
	sentences := nlp.SplitSentences(doc.Text)
	if len(sentences) == 0 {
		return Summary{CellCoverage: map[string]int{}}
	}

	// Locate each alignment's sentence via its text mention.
	perSentence := make([][]core.Alignment, len(sentences))
	for _, a := range alignments {
		si := doc.TextMentions[a.TextIndex].Sentence
		if si >= 0 && si < len(sentences) {
			perSentence[si] = append(perSentence[si], a)
		}
	}

	// Score sentences.
	scored := make([]Sentence, len(sentences))
	for i, text := range sentences {
		sent := Sentence{Index: i, Text: text, Alignments: perSentence[i]}
		for _, a := range perSentence[i] {
			if a.Agg == quantity.SingleCell {
				sent.Score += cfg.SingleCellWeight
			} else {
				sent.Score += cfg.AggregateBonus
				sent.CoversAggregate = true
			}
		}
		// Lead bias — only for sentences that carry quantity content; a
		// content-free opener must not outrank redundant-but-true
		// restatements.
		if len(sent.Alignments) > 0 {
			sent.Score += cfg.PositionWeight * (1 - float64(i)/float64(len(sentences)))
		}
		scored[i] = sent
	}

	// Greedy selection with redundancy penalty: a sentence restating cells
	// that an already selected aggregate covers is discounted.
	covered := map[string]map[[2]int]bool{} // tableID → covered cells
	markCovered := func(a core.Alignment) {
		tm := doc.TableMentions[a.TableIndex]
		id := tm.Table.ID
		if covered[id] == nil {
			covered[id] = map[[2]int]bool{}
		}
		for _, ref := range tm.Cells {
			covered[id][[2]int{ref.Row, ref.Col}] = true
		}
	}
	redundancy := func(sent Sentence) float64 {
		var overlap int
		for _, a := range sent.Alignments {
			tm := doc.TableMentions[a.TableIndex]
			cells := covered[tm.Table.ID]
			if cells == nil {
				continue
			}
			for _, ref := range tm.Cells {
				if cells[[2]int{ref.Row, ref.Col}] {
					overlap++
				}
			}
		}
		return float64(overlap) * cfg.RedundancyPenalty
	}

	remaining := make([]int, len(scored))
	for i := range remaining {
		remaining[i] = i
	}
	var selected []Sentence
	for len(selected) < cfg.MaxSentences && len(remaining) > 0 {
		bestPos, bestScore := -1, 0.0
		for pos, si := range remaining {
			eff := scored[si].Score - redundancy(scored[si])
			if bestPos < 0 || eff > bestScore ||
				(eff == bestScore && si < remaining[bestPos]) {
				bestPos, bestScore = pos, eff
			}
		}
		if bestScore <= 0 && len(selected) > 0 {
			break // only redundant or empty sentences remain
		}
		si := remaining[bestPos]
		selected = append(selected, scored[si])
		for _, a := range scored[si].Alignments {
			markCovered(a)
		}
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
	}

	sort.Slice(selected, func(i, j int) bool { return selected[i].Index < selected[j].Index })

	coverage := map[string]int{}
	for id, cells := range covered {
		coverage[id] = len(cells)
	}
	return Summary{Sentences: selected, CellCoverage: coverage}
}
