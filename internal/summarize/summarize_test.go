package summarize

import (
	"strings"
	"testing"

	"briq/internal/core"
	"briq/internal/document"
	"briq/internal/table"
)

func healthDoc(t *testing.T) *document.Document {
	t.Helper()
	tbl, err := table.New("t0", "side effects reported by patients", [][]string{
		{"side effects", "male", "female", "total"},
		{"Rash", "15", "20", "35"},
		{"Depression", "13", "25", "38"},
		{"Hypertension", "19", "15", "34"},
		{"Nausea", "5", "6", "11"},
		{"Eye Disorders", "2", "3", "5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sentence 1 carries the aggregate; sentences 2-3 restate members.
	text := "A total of 123 patients reported side effects in the trial. " +
		"Rash affected 35 patients in the study overall period. " +
		"Depression was reported by 38 patients. " +
		"The weather during the trial was unremarkable."
	docs := document.NewSegmenter().Segment("p", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatal("segmentation failed")
	}
	return docs[0]
}

func TestSummarizePrefersAggregates(t *testing.T) {
	doc := healthDoc(t)
	s := New(nil)
	s.Config.MaxSentences = 1
	sum := s.Summarize(doc)
	if len(sum.Sentences) != 1 {
		t.Fatalf("want 1 sentence, got %d", len(sum.Sentences))
	}
	if !strings.Contains(sum.Sentences[0].Text, "total of 123") {
		t.Errorf("summary should lead with the aggregate sentence, got %q", sum.Sentences[0].Text)
	}
	if !sum.Sentences[0].CoversAggregate {
		t.Error("selected sentence should be marked as covering an aggregate")
	}
}

func TestSummarizeRedundancyPenalty(t *testing.T) {
	doc := healthDoc(t)
	s := New(nil)
	s.Config.MaxSentences = 2
	sum := s.Summarize(doc)
	if len(sum.Sentences) == 0 {
		t.Fatal("empty summary")
	}
	// The no-quantity weather sentence must never be selected while
	// quantity-bearing sentences remain.
	for _, sent := range sum.Sentences {
		if strings.Contains(sent.Text, "weather") {
			t.Errorf("irrelevant sentence selected: %q", sent.Text)
		}
	}
}

func TestSummaryOrderAndText(t *testing.T) {
	doc := healthDoc(t)
	s := New(nil)
	s.Config.MaxSentences = 3
	sum := s.Summarize(doc)
	for i := 1; i < len(sum.Sentences); i++ {
		if sum.Sentences[i].Index <= sum.Sentences[i-1].Index {
			t.Error("summary sentences not in document order")
		}
	}
	text := sum.Text()
	for _, sent := range sum.Sentences {
		if !strings.Contains(text, sent.Text) {
			t.Errorf("Text() missing %q", sent.Text)
		}
	}
}

func TestCellCoverage(t *testing.T) {
	doc := healthDoc(t)
	sum := New(nil).Summarize(doc)
	if sum.CellCoverage["t0"] == 0 {
		t.Error("no cell coverage recorded")
	}
}

func TestSummarizeEmptyDocument(t *testing.T) {
	s := New(core.NewPipeline())
	sum := s.FromAlignments(&document.Document{Text: ""}, nil)
	if len(sum.Sentences) != 0 {
		t.Error("empty document should give empty summary")
	}
}

func TestFromAlignmentsMatchesSummarize(t *testing.T) {
	doc := healthDoc(t)
	p := core.NewPipeline()
	s := New(p)
	direct := s.Summarize(doc)
	via := s.FromAlignments(doc, p.Align(doc))
	if direct.Text() != via.Text() {
		t.Errorf("Summarize %q != FromAlignments %q", direct.Text(), via.Text())
	}
}
