package corpus

import (
	"math"
	"strconv"
	"strings"

	"briq/internal/document"
	"briq/internal/quantity"
)

// Perturbation is the text-mention transformation of the robustness
// experiments (§VIII-A, Table II).
type Perturbation int

// Perturbations. Original leaves mentions untouched; Truncated removes the
// least significant digit (6746 → 6740, 2.74 → 2.7, 0.19 → 0.1); Rounded
// numerically rounds it (6746 → 6750, 2.74 → 2.7, 0.19 → 0.2).
const (
	Original Perturbation = iota
	Truncated
	Rounded
)

// String returns the lowercase perturbation name.
func (p Perturbation) String() string {
	switch p {
	case Truncated:
		return "truncated"
	case Rounded:
		return "rounded"
	default:
		return "original"
	}
}

// PerturbDocs returns copies of the documents with every text mention's
// value and surface transformed. Table mentions and gold alignments are
// unchanged — the point of the experiment is aligning degraded text against
// intact tables.
func PerturbDocs(docs []*document.Document, p Perturbation) []*document.Document {
	if p == Original {
		return docs
	}
	out := make([]*document.Document, len(docs))
	for i, doc := range docs {
		clone := *doc
		clone.TextMentions = make([]quantity.Mention, len(doc.TextMentions))
		copy(clone.TextMentions, doc.TextMentions)
		for j := range clone.TextMentions {
			perturbMention(&clone.TextMentions[j], p)
		}
		out[i] = &clone
	}
	return out
}

// perturbMention rewrites one mention in place.
func perturbMention(m *quantity.Mention, p Perturbation) {
	newRaw, newPrec, changed := perturbValue(m.RawValue, m.Precision, p)
	if !changed {
		return
	}
	// Preserve the normalization factor ("37K" stays thousands).
	factor := 1.0
	if m.RawValue != 0 {
		factor = m.Value / m.RawValue
	}
	m.Surface = rewriteSurface(m.Surface, m.RawValue, m.Precision, newRaw, newPrec)
	m.RawValue = newRaw
	m.Value = newRaw * factor
	m.Precision = newPrec
	m.Scale = quantity.OrderOfMagnitude(m.Value)
}

// perturbValue applies the digit transformation. Values with a single
// significant digit are left alone (there is no less-significant digit to
// drop).
func perturbValue(v float64, precision int, p Perturbation) (float64, int, bool) {
	if v == 0 {
		return v, precision, false
	}
	if precision > 0 {
		// Drop or round the last decimal digit: 2.74 → 2.7 / 2.7.
		newPrec := precision - 1
		pow := math.Pow(10, float64(newPrec))
		var nv float64
		if p == Truncated {
			nv = math.Trunc(v*pow) / pow
		} else {
			nv = math.Round(v*pow) / pow
		}
		if nv == 0 {
			// Single significant digit ("0.6"): nothing less significant to
			// remove without destroying the value.
			return v, precision, false
		}
		return nv, newPrec, true
	}
	// Integer: zero or round the ones digit: 6746 → 6740 / 6750.
	if math.Abs(v) < 10 {
		return v, precision, false
	}
	var nv float64
	if p == Truncated {
		nv = math.Trunc(v/10) * 10
	} else {
		nv = math.Round(v/10) * 10
	}
	return nv, precision, true
}

// rewriteSurface replaces the numeric literal inside the surface form while
// keeping units and modifiers: "37.5K EUR" → "37.4K EUR".
func rewriteSurface(surface string, oldV float64, oldPrec int, newV float64, newPrec int) string {
	oldStr := strconv.FormatFloat(oldV, 'f', oldPrec, 64)
	newStr := strconv.FormatFloat(newV, 'f', newPrec, 64)
	if i := strings.Index(surface, oldStr); i >= 0 {
		return surface[:i] + newStr + surface[i+len(oldStr):]
	}
	// The literal may carry grouping commas; strip them and retry.
	plain := strings.ReplaceAll(surface, ",", "")
	if i := strings.Index(plain, oldStr); i >= 0 {
		return plain[:i] + newStr + plain[i+len(oldStr):]
	}
	return newStr
}
