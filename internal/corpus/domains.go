package corpus

// profile describes how tables and text look in one domain. Row/column
// counts reproduce the per-domain shape statistics of Table IX.
type profile struct {
	rowsMin, rowsMax int
	colsMin, colsMax int
	valueMin         float64
	valueMax         float64
	decimals         int     // decimal places of generated values
	unit             string  // canonical unit propagated to cells ("" = none)
	unitWord         string  // unit word rendered in text ("patients", "USD")
	percentCols      float64 // chance a column holds percentages instead

	captions  []string
	rowLabels []string
	colLabels []string
	intro     []string // paragraph openers carrying topic vocabulary
}

var profiles = map[Domain]profile{
	Health: {
		rowsMin: 3, rowsMax: 5, colsMin: 2, colsMax: 3,
		valueMin: 2, valueMax: 80, decimals: 0,
		unit: "patients", unitWord: "patients",
		captions: []string{
			"side effects reported in the drug trial",
			"patient outcomes by treatment group",
			"reported symptoms by cohort",
			"clinical trial results by arm",
		},
		rowLabels: []string{
			"Rash", "Depression", "Hypertension", "Nausea", "Eye Disorders",
			"Headache", "Fatigue", "Insomnia", "Dizziness", "Fever",
			"Anemia", "Migraine",
		},
		colLabels: []string{"male", "female", "total", "placebo", "treated", "control"},
		intro: []string{
			"The drug trial recorded side effects across patient groups.",
			"Clinical outcomes were collected for every cohort in the study.",
			"The treatment arms reported symptoms throughout the trial.",
		},
	},
	Finance: {
		rowsMin: 5, rowsMax: 8, colsMin: 3, colsMax: 5,
		valueMin: 100, valueMax: 9000, decimals: 0,
		unit: "USD", unitWord: "USD", percentCols: 0.25,
		captions: []string{
			"income statement ($ in millions)",
			"quarterly results by segment ($ millions)",
			"annual revenue and income figures",
			"financial summary by fiscal year",
		},
		rowLabels: []string{
			"Total Revenue", "Gross Income", "Income Taxes", "Net Income",
			"Operating Costs", "Sales", "Segment Profit", "Dividends",
			"Expenses", "Cash Flow", "EBITDA", "Interest Expense",
		},
		colLabels: []string{"2011", "2012", "2013", "2014", "Q1", "Q2", "Q3", "Q4", "FY 2012", "FY 2013"},
		intro: []string{
			"The company reported its quarterly financial results.",
			"Revenue and income figures were released for the fiscal year.",
			"The earnings statement summarizes sales across segments.",
		},
	},
	Environment: {
		rowsMin: 5, rowsMax: 8, colsMin: 3, colsMax: 4,
		valueMin: 10, valueMax: 45000, decimals: 0,
		unit: "", unitWord: "units", percentCols: 0.1,
		captions: []string{
			"vehicle ratings and environmental footprint",
			"emission and fuel economy by model",
			"energy consumption by car model",
			"environmental comparison of vehicles",
		},
		rowLabels: []string{
			"German MSRP", "American MSRP", "Emission", "Fuel Economy",
			"Energy Consumption", "Range", "Battery Capacity", "Final Rating",
			"Charging Time", "Curb Weight", "Top Speed",
		},
		colLabels: []string{"Focus E", "A3 e-tron", "VW Golf", "Model S", "Leaf", "i3", "Prius"},
		intro: []string{
			"The vehicle comparison covers price, emission and fuel economy.",
			"Car models were rated on environmental footprint and cost.",
			"The test compared energy consumption across electric models.",
		},
	},
	Politics: {
		rowsMin: 6, rowsMax: 9, colsMin: 2, colsMax: 4,
		valueMin: 1000, valueMax: 900000, decimals: 0,
		unit: "votes", unitWord: "votes", percentCols: 0.3,
		captions: []string{
			"election results by district",
			"votes and seats by party",
			"census population by region",
			"turnout statistics by state",
		},
		rowLabels: []string{
			"Northern District", "Southern District", "Eastern District",
			"Western District", "Central District", "Coastal Region",
			"Labor Party", "Green Party", "Liberal Party", "National Party",
			"Unity Party", "Reform Party",
		},
		colLabels: []string{"votes", "seats", "share", "turnout", "registered", "counted"},
		intro: []string{
			"The election commission published results for every district.",
			"Vote counts and seat allocations were announced by party.",
			"The census reported population figures across regions.",
		},
	},
	Sports: {
		rowsMin: 6, rowsMax: 10, colsMin: 4, colsMax: 7,
		valueMin: 0, valueMax: 120, decimals: 0,
		unit: "points", unitWord: "points", percentCols: 0.05,
		captions: []string{
			"league standings after the round",
			"season statistics by team",
			"tournament results and points",
			"player statistics for the season",
		},
		rowLabels: []string{
			"United", "Rovers", "City", "Athletic", "Wanderers", "Rangers",
			"Dynamo", "Olympic", "Sporting", "Racing", "Albion", "County",
		},
		colLabels: []string{"wins", "losses", "draws", "points", "goals", "matches", "assists", "saves"},
		intro: []string{
			"The league table shows the standings after this round.",
			"Season statistics were updated for every team.",
			"The tournament results determined the final points.",
		},
	},
	Others: {
		rowsMin: 5, rowsMax: 8, colsMin: 3, colsMax: 5,
		valueMin: 5, valueMax: 5000, decimals: 0,
		unit: "", unitWord: "items", percentCols: 0.15,
		captions: []string{
			"survey responses by category",
			"product inventory by warehouse",
			"website traffic by month",
			"production output by plant",
		},
		rowLabels: []string{
			"Category A", "Category B", "Category C", "Hardware", "Software",
			"Logistics", "Warehouse North", "Warehouse South", "Plant One",
			"Plant Two", "Online", "Retail",
		},
		colLabels: []string{"count", "returned", "shipped", "stocked", "sold", "backlog"},
		intro: []string{
			"The inventory report covers every warehouse location.",
			"Survey responses were tallied by category.",
			"Production output was measured across plants.",
		},
	},
}
