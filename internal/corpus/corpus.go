// Package corpus is the data substrate of the reproduction: a deterministic
// generator of synthetic web pages that plays the role of the Dresden Web
// Table Corpus (125M tables from the July 2014 Common Crawl) and of the
// paper's hand-annotated ground truth (§VII-A).
//
// The generator reproduces the statistical challenges the paper identifies:
//
//   - approximate, truncated and scale-reformatted surface forms ("37K EUR"
//     for a cell containing 36900);
//   - aggregate references (column totals, same-row differences, percentages
//     and change ratios) whose values appear in no explicit cell;
//   - distractor quantities in text that refer to no table (partial mapping);
//   - same-value collisions within and across tables (the Fig. 3 ambiguity
//     that motivates joint inference);
//   - domain-dependent table shapes matching Table IX (health tables are
//     tiny, sports tables are wide and virtual-cell heavy).
//
// Every random choice flows from the seed, so corpora are reproducible.
//
// # Streaming and size-targeted generation
//
// Generate materializes a whole corpus in memory, which is fine for tests
// and experiments but not for building load-test corpora of hundreds of
// megabytes. Stream produces the same pages one at a time — page i depends
// only on the seed and pages 0..i-1, so the stream is a prefix of what
// Generate would have produced with the same Config — and WriteDir drains a
// stream straight to disk (one HTML file per page, an NDJSON manifest, an
// incrementally written gold file) without ever holding more than one page.
// WriteDir's sizeTarget stops the stream once the cumulative HTML payload
// reaches a byte budget instead of a page count; ParseSize accepts the
// human forms ("256MB", "1GiB") the corpusgen -tot-size flag takes. Because
// the stream is prefix-stable, two runs with the same seed and target are
// byte-identical — a corpus is reproducible from its (seed, size) pair
// alone.
package corpus

import (
	"fmt"
	"math/rand"

	"briq/internal/document"
	"briq/internal/htmlx"
	"briq/internal/quantity"
	"briq/internal/table"
)

// Domain is a page topic, matching the five major topics of tableL plus
// "others" (§VII-A, Tables VIII and IX).
type Domain int

// Domains.
const (
	Environment Domain = iota
	Finance
	Health
	Politics
	Sports
	Others
	NumDomains
)

var domainNames = [...]string{"environment", "finance", "health", "politics", "sports", "others"}

// String returns the lowercase domain name as used in Tables VIII and IX.
func (d Domain) String() string {
	if d < 0 || int(d) >= len(domainNames) {
		return fmt.Sprintf("domain(%d)", int(d))
	}
	return domainNames[d]
}

// AllDomains lists every domain in table order.
func AllDomains() []Domain {
	return []Domain{Environment, Finance, Health, Politics, Sports, Others}
}

// Gold is one ground-truth alignment: text mention TextIndex of document
// DocID refers to the table mention with key TableKey.
type Gold struct {
	DocID     string
	TextIndex int
	TableKey  string
	Agg       quantity.Agg
}

// Page is one generated web page.
type Page struct {
	ID     string
	Domain Domain
	Title  string
	Paras  []string
	Tables []*table.Table
}

// Blocks renders the page's canonical block layout — paragraphs and tables
// interleaved (p0 t0 p1 t1 p2 ...), matching the positions the generator's
// segmentation assumed. cmd/corpusgen and the HTML round-trip tests use
// this, so re-ingesting an emitted page reproduces the same documents.
func (p *Page) Blocks() []htmlx.Block {
	var blocks []htmlx.Block
	n := len(p.Paras)
	if len(p.Tables) > n {
		n = len(p.Tables)
	}
	for i := 0; i < n; i++ {
		if i < len(p.Paras) {
			blocks = append(blocks, &htmlx.Paragraph{Text: p.Paras[i]})
		}
		if i < len(p.Tables) {
			blocks = append(blocks, tableBlock(p.Tables[i]))
		}
	}
	return blocks
}

// HTML renders the full page markup.
func (p *Page) HTML() string {
	return htmlx.Render(&htmlx.Page{Title: p.Title, Blocks: p.Blocks()})
}

func tableBlock(tbl *table.Table) *htmlx.TableBlock {
	block := &htmlx.TableBlock{Caption: tbl.Caption}
	header := append([]string{"category"}, tbl.ColHeaders...)
	block.Grid = append(block.Grid, header)
	for r := 0; r < tbl.Rows(); r++ {
		row := []string{tbl.RowHeaders[r]}
		for c := 0; c < tbl.Cols(); c++ {
			row = append(row, tbl.Cell(r, c).Text)
		}
		block.Grid = append(block.Grid, row)
	}
	return block
}

// Corpus is a generated collection with its segmented documents and ground
// truth.
type Corpus struct {
	Pages []*Page
	Docs  []*document.Document
	Gold  []Gold

	// goldByDoc indexes gold alignments by document ID.
	goldByDoc map[string][]Gold
	// domainByDoc maps document ID to its page's domain.
	domainByDoc map[string]Domain
}

// GoldFor returns the gold alignments of one document.
func (c *Corpus) GoldFor(docID string) []Gold { return c.goldByDoc[docID] }

// DomainOf returns the domain of a document.
func (c *Corpus) DomainOf(docID string) Domain { return c.domainByDoc[docID] }

// DocsByDomain groups the documents by their page domain.
func (c *Corpus) DocsByDomain() map[Domain][]*document.Document {
	out := make(map[Domain][]*document.Document)
	for _, doc := range c.Docs {
		d := c.domainByDoc[doc.ID]
		out[d] = append(out[d], doc)
	}
	return out
}

// Config controls generation.
type Config struct {
	Pages int   // number of pages to generate
	Seed  int64 // RNG seed; same seed ⇒ identical corpus

	// DomainWeights gives the relative frequency of each domain; nil uses
	// the tableL proportions of Table VIII.
	DomainWeights map[Domain]float64

	// ParasPerPage is the mean number of paragraphs per page (≥1).
	ParasPerPage int
	// RefsPerPara is the mean number of table references per paragraph.
	RefsPerPara int
	// DistractorProb is the chance of adding an unalignable distractor
	// quantity to a paragraph.
	DistractorProb float64
	// ApproxProb is the chance a single-cell reference is rendered
	// approximately ("about 35,000" for 34900).
	ApproxProb float64
	// ScaleFormatProb is the chance a large value is rendered with a scale
	// suffix ("37K", "3.26 billion").
	ScaleFormatProb float64
	// CollisionProb is the chance a page gets a second, similar table with
	// overlapping values (the Fig. 3 setting).
	CollisionProb float64
	// DuplicateProb is the chance a generated cell reuses a value already
	// present elsewhere in the same table — the same-value collisions
	// (Fig. 6a: "the value '3.2' exists in two cells in the same row with
	// very similar context") that make local top-1 resolution fail and joint
	// inference necessary.
	DuplicateProb float64
	// VagueProb is the chance a single-cell reference is rendered without
	// naming its row/column ("The figure stood at 38 for the period") — web
	// text routinely relies on discourse rather than header words, which is
	// why local context features alone cannot resolve collisions (§VI).
	VagueProb float64
	// AggShare is the fraction of references that target virtual cells; the
	// split over sum/diff/percent/ratio follows Table I.
	AggShare float64

	// VirtualOpts must match the segmenter used by the experiments.
	VirtualOpts table.VirtualOptions
}

// TableSConfig mirrors the annotated tableS corpus: 495 pages, ~1,600
// documents, ~7,500 text mentions (§VII-A).
func TableSConfig(seed int64) Config {
	return Config{
		Pages:           495,
		Seed:            seed,
		ParasPerPage:    3,
		RefsPerPara:     4,
		DistractorProb:  0.45,
		ApproxProb:      0.3,
		ScaleFormatProb: 0.35,
		CollisionProb:   0.25,
		DuplicateProb:   0.35,
		VagueProb:       0.5,
		AggShare:        0.13, // Table I: 663 aggregate positives of 5039 ≈ 13%
		VirtualOpts:     table.DefaultVirtualOptions(),
	}
}

// TableLConfig mirrors the throughput corpus tableL at a laptop-friendly
// scale; pages scale linearly, domain mix follows Table VIII.
func TableLConfig(seed int64, pages int) Config {
	cfg := TableSConfig(seed)
	cfg.Pages = pages
	cfg.DomainWeights = map[Domain]float64{
		// Page proportions of Table VIII (×1000 pages).
		Environment: 118.7, Finance: 325.9, Health: 102.1,
		Politics: 128.3, Sports: 527.3, Others: 309.3,
	}
	return cfg
}

func (c Config) withDefaults() Config {
	if c.Pages <= 0 {
		c.Pages = 10
	}
	if c.ParasPerPage <= 0 {
		c.ParasPerPage = 3
	}
	if c.RefsPerPara <= 0 {
		c.RefsPerPara = 4
	}
	if c.VirtualOpts.Aggs == nil {
		c.VirtualOpts = table.DefaultVirtualOptions()
	}
	if c.DomainWeights == nil {
		c.DomainWeights = map[Domain]float64{
			Environment: 1, Finance: 1, Health: 1, Politics: 1, Sports: 1, Others: 1,
		}
	}
	return c
}

// pickDomain samples a domain according to the configured weights.
func pickDomain(rng *rand.Rand, weights map[Domain]float64) Domain {
	var total float64
	for _, d := range AllDomains() {
		total += weights[d]
	}
	r := rng.Float64() * total
	for _, d := range AllDomains() {
		r -= weights[d]
		if r < 0 {
			return d
		}
	}
	return Others
}
