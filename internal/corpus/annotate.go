package corpus

import (
	"math/rand"

	"briq/internal/mlmetrics"
)

// Annotation simulates the paper's annotation protocol (§VII-A): 8 hired
// annotators classify candidate mention pairs by type (exact-match with
// single cell, sum, percentage, difference, ratio, unrelated, or other),
// pairs confirmed by at least two annotators are kept, and inter-annotator
// agreement is measured by Fleiss' kappa (the paper reports κ = 0.6854).
type Annotation struct {
	Kept   []Gold  // gold pairs whose true type was confirmed by ≥2 annotators
	Kappa  float64 // Fleiss' kappa over the simulated judgments
	Judged int     // number of items judged (gold pairs + unrelated distractors)
}

// annotationCategories: single-cell, sum, diff, percent, ratio, unrelated,
// other — mirroring the paper's annotation guideline classes.
const annotationCategories = 7

// SimulateAnnotation runs the protocol over the corpus gold standard with
// the given per-annotator error rate (the probability an annotator assigns a
// wrong category, uniformly among the others). Half as many "unrelated"
// distractor items as gold pairs are mixed in, as annotators also judged
// non-alignments. With errRate ≈ 0.15 the resulting κ lands near the
// paper's 0.6854.
func SimulateAnnotation(golds []Gold, annotators int, errRate float64, seed int64) Annotation {
	if annotators < 2 {
		annotators = 2
	}
	rng := rand.New(rand.NewSource(seed))

	type item struct {
		trueCat int
		gold    int // index into golds, -1 for distractors
	}
	items := make([]item, 0, len(golds)+len(golds)/2)
	for i, g := range golds {
		items = append(items, item{trueCat: int(g.Agg), gold: i})
	}
	const unrelatedCat = 5
	for i := 0; i < len(golds)/2; i++ {
		items = append(items, item{trueCat: unrelatedCat, gold: -1})
	}

	ratings := make([][]int, len(items))
	var kept []Gold
	for i, it := range items {
		row := make([]int, annotationCategories)
		for a := 0; a < annotators; a++ {
			cat := it.trueCat
			if rng.Float64() < errRate {
				// Uniform wrong category.
				cat = rng.Intn(annotationCategories - 1)
				if cat >= it.trueCat {
					cat++
				}
			}
			row[cat]++
		}
		ratings[i] = row
		if it.gold >= 0 && row[it.trueCat] >= 2 {
			kept = append(kept, golds[it.gold])
		}
	}
	return Annotation{
		Kept:   kept,
		Kappa:  mlmetrics.FleissKappa(ratings),
		Judged: len(items),
	}
}
