package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"briq/internal/document"
	"briq/internal/quantity"
	"briq/internal/table"
)

// Generate builds a corpus from the configuration. Documents are produced
// with the same segmenter the pipeline uses, so mention indices in the gold
// standard line up with what the system sees.
func Generate(cfg Config) *Corpus {
	cfg = cfg.withDefaults()
	s := NewStream(cfg)
	c := &Corpus{
		goldByDoc:   make(map[string][]Gold),
		domainByDoc: make(map[string]Domain),
	}
	for i := 0; i < cfg.Pages; i++ {
		c.add(s.Next())
	}
	return c
}

// add folds one streamed page unit into the corpus, preserving the append
// order Generate has always produced.
func (c *Corpus) add(u *PageUnit) {
	c.Pages = append(c.Pages, u.Page)
	for _, doc := range u.Docs {
		c.Docs = append(c.Docs, doc)
		c.domainByDoc[doc.ID] = u.Page.Domain
	}
	for _, gold := range u.Gold {
		c.Gold = append(c.Gold, gold)
		c.goldByDoc[gold.DocID] = append(c.goldByDoc[gold.DocID], gold)
	}
}

type generator struct {
	cfg Config
	rng *rand.Rand
	seg *document.Segmenter
}

// goldSpan records where a reference value was written in a paragraph.
type goldSpan struct {
	offset   int // byte offset of the value in the paragraph
	tableKey string
	agg      quantity.Agg
}

func (g *generator) buildPage(idx int) *PageUnit {
	domain := pickDomain(g.rng, g.cfg.DomainWeights)
	prof := profiles[domain]
	pageID := fmt.Sprintf("pg%04d", idx)

	t0 := g.buildTable(pageID+"-t0", prof)
	tables := []*table.Table{t0}
	if g.rng.Float64() < g.cfg.CollisionProb {
		tables = append(tables, g.buildCollisionTable(pageID+"-t1", prof, t0))
	}

	nParas := g.cfg.ParasPerPage + g.rng.Intn(3) - 1
	if nParas < 1 {
		nParas = 1
	}
	paras := make([]string, 0, nParas)
	spans := make([][]goldSpan, 0, nParas)
	for p := 0; p < nParas; p++ {
		// Paragraphs reference the first table; collision pages exercise the
		// joint-inference setting because the second table offers the same
		// values.
		text, ss := g.buildParagraph(prof, t0)
		paras = append(paras, text)
		spans = append(spans, ss)
	}

	page := &Page{ID: pageID, Domain: domain, Title: prof.captions[0], Paras: paras, Tables: tables}
	unit := &PageUnit{Page: page}

	docs := g.seg.Segment(pageID, paras, tables)
	for _, doc := range docs {
		unit.Docs = append(unit.Docs, doc)

		// Attach gold alignments whose paragraph this document wraps.
		pi := -1
		for i, para := range paras {
			if para == doc.Text {
				pi = i
				break
			}
		}
		if pi < 0 {
			continue
		}
		keyToIndex := make(map[string]int, len(doc.TableMentions))
		for ti, tm := range doc.TableMentions {
			keyToIndex[tm.Key()] = ti
		}
		for _, span := range spans[pi] {
			if _, ok := keyToIndex[span.tableKey]; !ok {
				continue // gold table not related to this document
			}
			xi := -1
			for i, x := range doc.TextMentions {
				if x.Start <= span.offset && span.offset < x.End {
					xi = i
					break
				}
			}
			if xi < 0 {
				continue // extraction missed the rendered value (rare)
			}
			unit.Gold = append(unit.Gold, Gold{DocID: doc.ID, TextIndex: xi, TableKey: span.tableKey, Agg: span.agg})
		}
	}
	return unit
}

// buildTable generates one table per the domain profile.
func (g *generator) buildTable(id string, prof profile) *table.Table {
	rows := prof.rowsMin + g.rng.Intn(prof.rowsMax-prof.rowsMin+1)
	cols := prof.colsMin + g.rng.Intn(prof.colsMax-prof.colsMin+1)

	rowLabels := sampleStrings(g.rng, prof.rowLabels, rows)
	colLabels := sampleStrings(g.rng, prof.colLabels, cols)

	pctCol := -1
	if g.rng.Float64() < prof.percentCols {
		pctCol = g.rng.Intn(cols)
	}

	grid := make([][]string, 0, rows+1)
	header := append([]string{"category"}, colLabels...)
	grid = append(grid, header)
	var priorCells []string
	for r := 0; r < rows; r++ {
		row := make([]string, 0, cols+1)
		row = append(row, rowLabels[r])
		for cIdx := 0; cIdx < cols; cIdx++ {
			if cIdx == pctCol {
				row = append(row, strconv.FormatFloat(g.rng.Float64()*100, 'f', 1, 64)+"%")
				continue
			}
			// Same-value collisions within the table (Fig. 6a) make local
			// top-1 resolution ambiguous — the setting joint inference is
			// for.
			if len(priorCells) > 0 && g.rng.Float64() < g.cfg.DuplicateProb {
				row = append(row, priorCells[g.rng.Intn(len(priorCells))])
				continue
			}
			cell := formatCell(g.value(prof), prof.decimals)
			priorCells = append(priorCells, cell)
			row = append(row, cell)
		}
		grid = append(grid, row)
	}

	caption := prof.captions[g.rng.Intn(len(prof.captions))]
	tbl, err := table.New(id, caption, grid)
	if err != nil {
		// Profiles always produce valid grids; a failure is a programming
		// error worth failing loudly on.
		panic(fmt.Sprintf("corpus: generated invalid table: %v", err))
	}
	return tbl
}

// buildCollisionTable generates a sibling table sharing column structure and
// a few exact values with t0 — the Fig. 3 same-value ambiguity.
func (g *generator) buildCollisionTable(id string, prof profile, t0 *table.Table) *table.Table {
	tbl := g.buildTable(id, prof)
	// Copy 2-3 values from t0 into matching positions where dimensions
	// allow. Rebuilding the table is simpler than mutating cells.
	grid := make([][]string, 0, tbl.Rows()+1)
	grid = append(grid, append([]string{"category"}, tbl.ColHeaders...))
	for r := 0; r < tbl.Rows(); r++ {
		row := []string{tbl.RowHeaders[r]}
		for c := 0; c < tbl.Cols(); c++ {
			row = append(row, tbl.Cell(r, c).Text)
		}
		grid = append(grid, row)
	}
	copies := 2 + g.rng.Intn(2)
	for i := 0; i < copies; i++ {
		r := g.rng.Intn(minInt(t0.Rows(), tbl.Rows()))
		c := g.rng.Intn(minInt(t0.Cols(), tbl.Cols()))
		grid[r+1][c+1] = t0.Cell(r, c).Text
	}
	out, err := table.New(id, tbl.Caption, grid)
	if err != nil {
		panic(fmt.Sprintf("corpus: collision table invalid: %v", err))
	}
	return out
}

// value draws a cell value in the profile's range, avoiding the calendar
// year band [1900, 2100] that the text extractor filters as dates.
func (g *generator) value(prof profile) float64 {
	for {
		v := prof.valueMin + g.rng.Float64()*(prof.valueMax-prof.valueMin)
		if prof.decimals == 0 {
			v = math.Round(v)
		}
		if v >= 1900 && v <= 2100 {
			continue
		}
		return v
	}
}

func formatCell(v float64, decimals int) string {
	s := strconv.FormatFloat(v, 'f', decimals, 64)
	// Large integers get grouping commas like real web tables.
	if decimals == 0 && v >= 10000 {
		s = groupDigits(s)
	}
	return s
}

func groupDigits(s string) string {
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var sb strings.Builder
	for i, c := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			sb.WriteByte(',')
		}
		sb.WriteRune(c)
	}
	if neg {
		return "-" + sb.String()
	}
	return sb.String()
}

// buildParagraph renders one paragraph referencing mentions of tbl and
// returns the text plus the gold spans of the rendered values.
func (g *generator) buildParagraph(prof profile, tbl *table.Table) (string, []goldSpan) {
	mentions := tbl.Mentions(g.cfg.VirtualOpts)
	var singles, virtuals []*table.Mention
	for _, m := range mentions {
		if m.IsVirtual() {
			virtuals = append(virtuals, m)
		} else {
			singles = append(singles, m)
		}
	}

	// Paragraphs discuss a coherent table region: pick an anchor row or
	// column and draw most single-cell references from it. This is the
	// discourse structure joint inference exploits (Fig. 3: one paragraph,
	// one table's column).
	anchorRow := g.rng.Float64() < 0.5
	anchorIdx := 0
	if anchorRow && tbl.Rows() > 0 {
		anchorIdx = g.rng.Intn(tbl.Rows())
	} else if tbl.Cols() > 0 {
		anchorIdx = g.rng.Intn(tbl.Cols())
	}
	var anchored []*table.Mention
	for _, m := range singles {
		ref := m.Cells[0]
		if (anchorRow && ref.Row == anchorIdx) || (!anchorRow && ref.Col == anchorIdx) {
			anchored = append(anchored, m)
		}
	}

	var sb strings.Builder
	sb.WriteString(prof.intro[g.rng.Intn(len(prof.intro))])
	var spans []goldSpan

	nRefs := 1 + g.rng.Intn(g.cfg.RefsPerPara*2-1) // mean ≈ RefsPerPara
	for i := 0; i < nRefs; i++ {
		var m *table.Mention
		if g.rng.Float64() < g.cfg.AggShare && len(virtuals) > 0 {
			m = g.pickVirtual(virtuals)
		}
		if m == nil && len(singles) > 0 {
			if len(anchored) > 0 && g.rng.Float64() < 0.6 {
				m = anchored[g.rng.Intn(len(anchored))]
			} else {
				m = singles[g.rng.Intn(len(singles))]
			}
		}
		if m == nil {
			break
		}
		sentence, valOff := g.renderReference(prof, tbl, m)
		if sentence == "" {
			continue
		}
		sb.WriteByte(' ')
		spans = append(spans, goldSpan{
			offset:   sb.Len() + valOff,
			tableKey: m.Key(),
			agg:      m.Agg,
		})
		sb.WriteString(sentence)
	}

	if g.rng.Float64() < g.cfg.DistractorProb {
		sb.WriteByte(' ')
		sb.WriteString(g.distractor(prof, tbl))
	}
	return sb.String(), spans
}

// pickVirtual samples a virtual mention with the aggregation mix of Table I
// (sum 40%, ratio 21%, diff 20%, percent 17% of aggregate positives).
func (g *generator) pickVirtual(virtuals []*table.Mention) *table.Mention {
	r := g.rng.Float64()
	var want quantity.Agg
	switch {
	case r < 0.40:
		want = quantity.Sum
	case r < 0.61:
		want = quantity.Ratio
	case r < 0.81:
		want = quantity.Diff
	default:
		want = quantity.Percent
	}
	var pool []*table.Mention
	for _, m := range virtuals {
		if m.Agg != want {
			continue
		}
		// Text naturally reports positive, moderate changes ("increased by
		// 4.2%"); negative-direction ratios have a mirrored positive twin,
		// and triple-digit change rates read as implausible.
		if m.Agg == quantity.Ratio && (m.Value <= 0 || m.Value > 200) {
			continue
		}
		pool = append(pool, m)
	}
	if len(pool) == 0 {
		return nil
	}
	return pool[g.rng.Intn(len(pool))]
}

// renderReference writes one sentence referring to mention m and returns
// the sentence plus the byte offset of the value inside it.
func (g *generator) renderReference(prof profile, tbl *table.Table, m *table.Mention) (string, int) {
	switch m.Agg {
	case quantity.SingleCell:
		return g.renderSingle(prof, tbl, m)
	case quantity.Sum:
		return g.renderSum(prof, tbl, m)
	case quantity.Diff:
		return g.renderDiff(prof, tbl, m)
	case quantity.Percent:
		return g.renderPercent(prof, tbl, m)
	case quantity.Ratio:
		return g.renderRatio(prof, tbl, m)
	}
	return "", 0
}

func (g *generator) renderSingle(prof profile, tbl *table.Table, m *table.Mention) (string, int) {
	ref := m.Cells[0]
	rowLabel := label(tbl.RowHeaders, ref.Row, "the first entry")
	colLabel := label(tbl.ColHeaders, ref.Col, "the period")

	v := m.Value
	valStr := g.renderValue(v, m.Precision(), m.Unit)
	prefix := ""
	if g.rng.Float64() < g.cfg.ApproxProb {
		valStr = g.renderValue(approximate(v), approxPrecision(v), m.Unit)
		prefix = pick(g.rng, []string{"about ", "nearly ", "around ", "approximately "})
	}

	// Vague references rely on discourse, not header words — local context
	// cannot resolve them when the value collides with another cell.
	if g.rng.Float64() < g.cfg.VagueProb {
		vague := []string{
			"The figure stood at %s%s for the period.",
			"That number came to %s%s.",
			"It reached %s%s this time.",
			"The reading was %s%s.",
		}
		sentence := fmt.Sprintf(pick(g.rng, vague), prefix, valStr)
		return sentence, strings.Index(sentence, valStr)
	}

	templates := []string{
		"%s reached %s%s for %s.",
		"%s stood at %s%s in the %s column.",
		"For %s, the %s row recorded %s%s.",
		"%s was reported at %s%s under %s.",
	}
	ti := g.rng.Intn(len(templates))
	var sentence string
	switch ti {
	case 2:
		sentence = fmt.Sprintf(templates[ti], colLabel, rowLabel, prefix, valStr)
	default:
		sentence = fmt.Sprintf(templates[ti], rowLabel, prefix, valStr, colLabel)
	}
	return sentence, strings.Index(sentence, valStr)
}

func (g *generator) renderSum(prof profile, tbl *table.Table, m *table.Mention) (string, int) {
	valStr := g.renderValue(m.Value, 0, m.Unit)
	if g.rng.Float64() < g.cfg.VagueProb {
		vague := []string{
			"A total of %s %s was recorded.",
			"Altogether the count came to %s %s.",
			"The combined figure reached %s %s.",
		}
		sentence := fmt.Sprintf(pick(g.rng, vague), valStr, prof.unitWord)
		return sentence, strings.Index(sentence, valStr)
	}
	var scope string
	if m.Orient == table.OrientCol {
		scope = label(tbl.ColHeaders, m.Cells[0].Col, "the period")
	} else {
		scope = label(tbl.RowHeaders, m.Cells[0].Row, "the entry")
	}
	templates := []string{
		"A total of %s %s was recorded for %s.",
		"Overall, %s combined for %s %s.",
		"Together the figures for %s summed to %s %s.",
	}
	ti := g.rng.Intn(len(templates))
	var sentence string
	switch ti {
	case 0:
		sentence = fmt.Sprintf(templates[ti], valStr, prof.unitWord, scope)
	case 1:
		sentence = fmt.Sprintf(templates[ti], scope, valStr, prof.unitWord)
	default:
		sentence = fmt.Sprintf(templates[ti], scope, valStr, prof.unitWord)
	}
	return sentence, strings.Index(sentence, valStr)
}

func (g *generator) renderDiff(prof profile, tbl *table.Table, m *table.Mention) (string, int) {
	valStr := g.renderValue(m.Value, m.Precision(), m.Unit)
	if g.rng.Float64() < g.cfg.VagueProb {
		vague := []string{
			"That is %s %s more than before.",
			"The gap came to %s %s this time.",
			"It finished %s %s ahead of the earlier figure.",
		}
		sentence := fmt.Sprintf(pick(g.rng, vague), valStr, prof.unitWord)
		return sentence, strings.Index(sentence, valStr)
	}
	a, b := m.Cells[0], m.Cells[1]
	var la, lb string
	if m.Orient == table.OrientRow {
		la = label(tbl.ColHeaders, a.Col, "the first column")
		lb = label(tbl.ColHeaders, b.Col, "the second column")
	} else {
		la = label(tbl.RowHeaders, a.Row, "the first row")
		lb = label(tbl.RowHeaders, b.Row, "the second row")
	}
	templates := []string{
		"That is %s %s more for %s than for %s.",
		"The gap between %s and %s came to %s %s.",
		"%s finished %s %s ahead of %s.",
	}
	ti := g.rng.Intn(len(templates))
	var sentence string
	switch ti {
	case 0:
		sentence = fmt.Sprintf(templates[ti], valStr, prof.unitWord, la, lb)
	case 1:
		sentence = fmt.Sprintf(templates[ti], la, lb, valStr, prof.unitWord)
	default:
		sentence = fmt.Sprintf(templates[ti], la, valStr, prof.unitWord, lb)
	}
	return sentence, strings.Index(sentence, valStr)
}

func (g *generator) renderPercent(prof profile, tbl *table.Table, m *table.Mention) (string, int) {
	valStr := strconv.FormatFloat(round1(m.Value), 'f', 1, 64) + "%"
	if g.rng.Float64() < g.cfg.VagueProb {
		vague := []string{
			"The share stood at %s.",
			"That proportion amounted to %s.",
		}
		sentence := fmt.Sprintf(pick(g.rng, vague), valStr)
		return sentence, strings.Index(sentence, valStr)
	}
	a := m.Cells[0]
	var la string
	if m.Orient == table.OrientCol {
		la = label(tbl.RowHeaders, a.Row, "the first entry")
	} else {
		la = label(tbl.ColHeaders, a.Col, "the first column")
	}
	templates := []string{
		"%s made up a share of %s of the figures.",
		"The proportion attributed to %s stood at %s.",
	}
	ti := g.rng.Intn(len(templates))
	sentence := fmt.Sprintf(templates[ti], la, valStr)
	return sentence, strings.Index(sentence, valStr)
}

func (g *generator) renderRatio(prof profile, tbl *table.Table, m *table.Mention) (string, int) {
	v := round1(m.Value)
	verb := "increased"
	if v < 0 {
		verb = "decreased"
		v = -v
	}
	valStr := strconv.FormatFloat(v, 'f', 1, 64) + "%"
	if g.rng.Float64() < g.cfg.VagueProb {
		vague := []string{
			"It %s by %s over the prior period.",
			"The figure %s at a rate of %s.",
		}
		sentence := fmt.Sprintf(pick(g.rng, vague), verb, valStr)
		return sentence, strings.Index(sentence, valStr)
	}
	a, b := m.Cells[0], m.Cells[1]
	var la, lb string
	if m.Orient == table.OrientRow {
		la = label(tbl.RowHeaders, a.Row, "the entry")
		lb = label(tbl.ColHeaders, b.Col, "the earlier period")
	} else {
		la = label(tbl.ColHeaders, a.Col, "the entry")
		lb = label(tbl.RowHeaders, b.Row, "the earlier entry")
	}
	templates := []string{
		"%s %s by %s compared to %s.",
		"Relative to %s, %s %s at a rate of %s.",
	}
	ti := g.rng.Intn(len(templates))
	var sentence string
	if ti == 0 {
		sentence = fmt.Sprintf(templates[ti], la, verb, valStr, lb)
	} else {
		sentence = fmt.Sprintf(templates[ti], lb, la, verb, valStr)
	}
	return sentence, strings.Index(sentence, valStr)
}

// distractor renders a quantity that matches no table mention.
func (g *generator) distractor(prof profile, tbl *table.Table) string {
	v := g.value(prof)*3 + 7777 // outside the table's value range
	templates := []string{
		"Analysts had expected %s for the coming period.",
		"A separate forecast put the figure at %s.",
		"Industry observers projected %s instead.",
	}
	return fmt.Sprintf(pick(g.rng, templates), g.renderValue(v, 0, ""))
}

// renderValue formats a value the way running text would: grouping commas,
// optional scale suffixes for large magnitudes, optional unit word.
func (g *generator) renderValue(v float64, precision int, unit string) string {
	abs := math.Abs(v)
	if abs >= 1e6 && g.rng.Float64() < g.cfg.ScaleFormatProb {
		switch {
		case abs >= 1e9:
			return trimZeros(strconv.FormatFloat(v/1e9, 'f', 2, 64)) + " billion"
		default:
			return trimZeros(strconv.FormatFloat(v/1e6, 'f', 1, 64)) + " million"
		}
	}
	if abs >= 10000 && abs < 1e6 && g.rng.Float64() < g.cfg.ScaleFormatProb {
		// "37K" style.
		return trimZeros(strconv.FormatFloat(v/1e3, 'f', 1, 64)) + "K"
	}
	s := strconv.FormatFloat(v, 'f', precision, 64)
	if precision == 0 && abs >= 10000 {
		s = groupDigits(s)
	}
	if unit == "%" && !strings.HasSuffix(s, "%") {
		s += "%"
	}
	return s
}

func trimZeros(s string) string {
	if !strings.Contains(s, ".") {
		return s
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// approximate rounds v to two significant digits.
func approximate(v float64) float64 {
	if v == 0 {
		return 0
	}
	mag := math.Pow(10, math.Floor(math.Log10(math.Abs(v)))-1)
	return math.Round(v/mag) * mag
}

func approxPrecision(v float64) int {
	if math.Abs(v) < 10 {
		return 1
	}
	return 0
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }

func label(labels []string, idx int, fallback string) string {
	if idx < len(labels) && strings.TrimSpace(labels[idx]) != "" {
		return labels[idx]
	}
	return fallback
}

func sampleStrings(rng *rand.Rand, pool []string, n int) []string {
	idx := rng.Perm(len(pool))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pool[idx[i%len(idx)]])
	}
	return out
}

func pick(rng *rand.Rand, options []string) string {
	return options[rng.Intn(len(options))]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
