package corpus

import (
	"testing"

	"briq/internal/document"
	"briq/internal/htmlx"
)

// TestHTMLRoundTrip verifies the full corpus → HTML → parse → segment path
// that cmd/corpusgen + cmd/briq rely on: rendering a generated page as HTML
// and re-ingesting it must reproduce the same documents and mentions.
func TestHTMLRoundTrip(t *testing.T) {
	cfg := TableSConfig(37)
	cfg.Pages = 15
	c := Generate(cfg)

	for _, pg := range c.Pages {
		reparsed := htmlx.ParseString(pg.HTML())
		docs, err := document.NewSegmenter().SegmentPage(pg.ID, reparsed)
		if err != nil {
			t.Fatalf("page %s: %v", pg.ID, err)
		}

		// Compare with the corpus's own documents for this page.
		var origDocs []*document.Document
		for _, d := range c.Docs {
			if d.PageID == pg.ID {
				origDocs = append(origDocs, d)
			}
		}
		// The round trip interleaves paragraphs before tables (page layout)
		// while Segment() used a fixed interleave, so adjacency-based
		// attachment may differ; every original document's text must still
		// be present with the same mention count.
		byText := map[string]*document.Document{}
		for _, d := range docs {
			byText[d.Text] = d
		}
		for _, od := range origDocs {
			rd, ok := byText[od.Text]
			if !ok {
				t.Errorf("page %s: document %q lost in round trip", pg.ID, od.ID)
				continue
			}
			if len(rd.TextMentions) != len(od.TextMentions) {
				t.Errorf("page %s doc %q: %d mentions after round trip, want %d",
					pg.ID, od.ID, len(rd.TextMentions), len(od.TextMentions))
			}
			if len(rd.TableMentions) != len(od.TableMentions) {
				t.Errorf("page %s doc %q: %d table mentions after round trip, want %d",
					pg.ID, od.ID, len(rd.TableMentions), len(od.TableMentions))
			}
		}
	}
}
