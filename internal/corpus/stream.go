package corpus

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"briq/internal/document"
)

// PageUnit is one generated page together with everything derived from it:
// the segmented documents (as the pipeline would see them) and the gold
// alignments of those documents. It is the unit of streaming generation.
type PageUnit struct {
	Page *Page
	Docs []*document.Document
	Gold []Gold
}

// HTMLBytes returns the size of the page's rendered HTML payload.
func (u *PageUnit) HTMLBytes() int64 { return int64(len(u.Page.HTML())) }

// Stream generates pages lazily, one PageUnit per Next call, without ever
// holding more than the current page in memory. The sequence is a pure
// function of the seed: page i depends only on the seed and on pages 0..i-1,
// never on how many pages the caller will eventually take. Consequences that
// size-targeted generation and the determinism tests rely on:
//
//   - two streams with the same Config produce byte-identical pages;
//   - a stream is prefix-stable: the first N units equal the N pages of
//     Generate(cfg with Pages=N), whatever N turns out to be, so stopping at
//     a byte budget instead of a page count changes nothing about the pages
//     that were emitted before the budget ran out.
//
// Config.Pages is ignored — the caller decides when to stop.
type Stream struct {
	g    *generator
	next int
}

// NewStream starts a lazy page stream for the configuration.
func NewStream(cfg Config) *Stream {
	cfg = cfg.withDefaults()
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		seg: document.NewSegmenter(),
	}
	g.seg.VirtualOpts = cfg.VirtualOpts
	return &Stream{g: g}
}

// Next generates and returns the next page unit. The stream is unbounded;
// it never returns nil.
func (s *Stream) Next() *PageUnit {
	u := s.g.buildPage(s.next)
	s.next++
	return u
}

// Emitted reports how many pages the stream has produced so far.
func (s *Stream) Emitted() int { return s.next }

// sizeUnits maps the human-readable size suffixes accepted by ParseSize to
// their byte multipliers (binary: KB = 1024, matching what operators expect
// from a corpus generator's -tot-size flag).
var sizeUnits = []struct {
	suffix string
	mult   float64
}{
	{"GIB", 1 << 30}, {"MIB", 1 << 20}, {"KIB", 1 << 10},
	{"GB", 1 << 30}, {"MB", 1 << 20}, {"KB", 1 << 10},
	{"G", 1 << 30}, {"M", 1 << 20}, {"K", 1 << 10},
	{"B", 1},
}

// ParseSize parses a human-readable byte size: a number with an optional
// case-insensitive suffix (B, KB/K, MB/M, GB/G, and the explicit KiB/MiB/GiB
// forms — all binary, KB = 1024 bytes). Fractional prefixes are accepted
// ("1.5GB"); a bare number is bytes. The result must be positive.
func ParseSize(s string) (int64, error) {
	in := strings.ToUpper(strings.TrimSpace(s))
	if in == "" {
		return 0, fmt.Errorf("parse size %q: empty", s)
	}
	mult := float64(1)
	for _, u := range sizeUnits {
		if strings.HasSuffix(in, u.suffix) {
			mult = u.mult
			in = strings.TrimSpace(strings.TrimSuffix(in, u.suffix))
			break
		}
	}
	v, err := strconv.ParseFloat(in, 64)
	if err != nil {
		return 0, fmt.Errorf("parse size %q: %v", s, err)
	}
	n := int64(v * mult)
	if n <= 0 {
		return 0, fmt.Errorf("parse size %q: must be positive", s)
	}
	return n, nil
}
