package corpus

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestStreamMatchesGenerate pins the prefix-stability contract: the first N
// stream units are exactly the N pages of Generate, so a size-targeted run
// emits the same pages a fixed-count run would have.
func TestStreamMatchesGenerate(t *testing.T) {
	cfg := TableSConfig(7)
	cfg.Pages = 12
	c := Generate(cfg)

	s := NewStream(cfg)
	var docs, gold int
	for i, want := range c.Pages {
		u := s.Next()
		if u.Page.ID != want.ID {
			t.Fatalf("page %d: stream ID %q, Generate ID %q", i, u.Page.ID, want.ID)
		}
		if u.Page.HTML() != want.HTML() {
			t.Fatalf("page %d: stream HTML differs from Generate", i)
		}
		docs += len(u.Docs)
		gold += len(u.Gold)
	}
	if docs != len(c.Docs) {
		t.Errorf("stream documents = %d, Generate = %d", docs, len(c.Docs))
	}
	if gold != len(c.Gold) {
		t.Errorf("stream gold = %d, Generate = %d", gold, len(c.Gold))
	}
	if s.Emitted() != cfg.Pages {
		t.Errorf("Emitted() = %d, want %d", s.Emitted(), cfg.Pages)
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"1024", 1024},
		{"64KB", 64 << 10},
		{"64kb", 64 << 10},
		{"1.5K", 1536},
		{"100MB", 100 << 20},
		{"1GB", 1 << 30},
		{"2GiB", 2 << 30},
		{"512B", 512},
		{" 10 MB ", 10 << 20},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "-5MB", "0", "MB", "ten"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q): expected error", bad)
		}
	}
}

// readDir returns every file in dir keyed by name.
func readDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestWriteDirDeterministic is the -seed determinism contract: the same seed
// and the same size target produce byte-identical output across two
// independent runs — every HTML payload, the manifest, and gold.json.
func TestWriteDirDeterministic(t *testing.T) {
	cfg := TableSConfig(42)
	const target = 256 << 10

	dirs := []string{t.TempDir(), t.TempDir()}
	var stats [2]WriteStats
	for i, dir := range dirs {
		var err error
		stats[i], err = WriteDir(dir, cfg, target)
		if err != nil {
			t.Fatal(err)
		}
	}
	if stats[0] != stats[1] {
		t.Fatalf("stats differ across runs: %+v vs %+v", stats[0], stats[1])
	}

	a, b := readDir(t, dirs[0]), readDir(t, dirs[1])
	if len(a) != len(b) {
		t.Fatalf("file counts differ: %d vs %d", len(a), len(b))
	}
	names := make([]string, 0, len(a))
	for name := range a {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if string(a[name]) != string(b[name]) {
			t.Errorf("%s differs between runs", name)
		}
	}
}

// TestWriteDirSizeTarget asserts the byte budget lands within ±5% and that
// the accounting in WriteStats matches what actually hit the disk.
func TestWriteDirSizeTarget(t *testing.T) {
	cfg := TableSConfig(42)
	const target = 256 << 10

	dir := t.TempDir()
	stats, err := WriteDir(dir, cfg, target)
	if err != nil {
		t.Fatal(err)
	}

	var onDisk int64
	for _, b := range readDir(t, dir) {
		onDisk += int64(len(b))
	}
	if onDisk != stats.Bytes {
		t.Errorf("stats.Bytes = %d, on disk = %d", stats.Bytes, onDisk)
	}
	lo, hi := int64(target*95)/100, int64(target*105)/100
	if stats.Bytes < lo || stats.Bytes > hi {
		t.Errorf("bytes = %d, want within ±5%% of %d [%d, %d]", stats.Bytes, target, lo, hi)
	}
	if stats.Pages == 0 || stats.Documents == 0 || stats.Gold == 0 {
		t.Errorf("empty corpus: %+v", stats)
	}
}

// TestWriteDirPageMode pins the fixed-count mode: cfg.Pages pages, a
// manifest line per page, and a gold.json that parses to the same records
// Generate produces.
func TestWriteDirPageMode(t *testing.T) {
	cfg := TableSConfig(11)
	cfg.Pages = 8

	dir := t.TempDir()
	stats, err := WriteDir(dir, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pages != cfg.Pages {
		t.Fatalf("pages = %d, want %d", stats.Pages, cfg.Pages)
	}

	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var entries []ManifestEntry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e ManifestEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("manifest line %d: %v", len(entries), err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(entries) != cfg.Pages {
		t.Fatalf("manifest lines = %d, want %d", len(entries), cfg.Pages)
	}
	for _, e := range entries {
		html, err := os.ReadFile(filepath.Join(dir, e.File))
		if err != nil {
			t.Fatalf("manifest names missing file: %v", err)
		}
		if int64(len(html)) != e.Bytes {
			t.Errorf("%s: manifest bytes %d, file %d", e.ID, e.Bytes, len(html))
		}
	}

	goldBytes, err := os.ReadFile(filepath.Join(dir, GoldName))
	if err != nil {
		t.Fatal(err)
	}
	var gold []Gold
	if err := json.Unmarshal(goldBytes, &gold); err != nil {
		t.Fatalf("gold.json: %v", err)
	}
	want := Generate(cfg)
	if len(gold) != len(want.Gold) {
		t.Fatalf("gold records = %d, Generate = %d", len(gold), len(want.Gold))
	}
	for i := range gold {
		if gold[i] != want.Gold[i] {
			t.Fatalf("gold[%d] = %+v, want %+v", i, gold[i], want.Gold[i])
		}
	}
}
