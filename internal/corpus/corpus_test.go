package corpus

import (
	"math"
	"testing"

	"briq/internal/quantity"
)

func smallConfig(seed int64) Config {
	cfg := TableSConfig(seed)
	cfg.Pages = 40
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	c1 := Generate(smallConfig(7))
	c2 := Generate(smallConfig(7))
	if len(c1.Docs) != len(c2.Docs) || len(c1.Gold) != len(c2.Gold) {
		t.Fatalf("nondeterministic sizes: %d/%d docs, %d/%d gold",
			len(c1.Docs), len(c2.Docs), len(c1.Gold), len(c2.Gold))
	}
	for i := range c1.Docs {
		if c1.Docs[i].Text != c2.Docs[i].Text {
			t.Fatalf("doc %d text differs", i)
		}
	}
	for i := range c1.Gold {
		if c1.Gold[i] != c2.Gold[i] {
			t.Fatalf("gold %d differs: %+v vs %+v", i, c1.Gold[i], c2.Gold[i])
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	c1 := Generate(smallConfig(1))
	c2 := Generate(smallConfig(2))
	same := 0
	n := len(c1.Docs)
	if len(c2.Docs) < n {
		n = len(c2.Docs)
	}
	for i := 0; i < n; i++ {
		if c1.Docs[i].Text == c2.Docs[i].Text {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGoldAlignmentsAreValid(t *testing.T) {
	c := Generate(smallConfig(3))
	if len(c.Gold) == 0 {
		t.Fatal("no gold alignments")
	}
	docByID := map[string]int{}
	for i, doc := range c.Docs {
		docByID[doc.ID] = i
	}
	for _, gold := range c.Gold {
		di, ok := docByID[gold.DocID]
		if !ok {
			t.Fatalf("gold references unknown doc %s", gold.DocID)
		}
		doc := c.Docs[di]
		if gold.TextIndex < 0 || gold.TextIndex >= len(doc.TextMentions) {
			t.Fatalf("gold text index %d out of range", gold.TextIndex)
		}
		found := false
		for _, tm := range doc.TableMentions {
			if tm.Key() == gold.TableKey {
				found = true
				// The rendered text value must be numerically close to the
				// table mention (approximation/rounding allowed).
				x := doc.TextMentions[gold.TextIndex]
				if quantity.RelativeDifference(x.Value, tm.Value) > 0.35 {
					t.Errorf("gold pair far apart: text %v (%q) vs table %v (%s)",
						x.Value, x.Surface, tm.Value, gold.TableKey)
				}
				break
			}
		}
		if !found {
			t.Fatalf("gold table key %s missing from doc %s", gold.TableKey, gold.DocID)
		}
	}
}

func TestGoldCoverage(t *testing.T) {
	// Most rendered references must survive extraction+segmentation as gold;
	// heavy loss would bias every experiment.
	c := Generate(smallConfig(5))
	mentions := 0
	for _, d := range c.Docs {
		mentions += len(d.TextMentions)
	}
	if len(c.Gold) < mentions/3 {
		t.Errorf("only %d gold for %d text mentions — generation is leaking references",
			len(c.Gold), mentions)
	}
}

func TestAggregateMixFollowsTableI(t *testing.T) {
	cfg := smallConfig(11)
	cfg.Pages = 150
	c := Generate(cfg)
	counts := map[quantity.Agg]int{}
	for _, g := range c.Gold {
		counts[g.Agg]++
	}
	total := len(c.Gold)
	if total == 0 {
		t.Fatal("no gold")
	}
	singleShare := float64(counts[quantity.SingleCell]) / float64(total)
	if singleShare < 0.75 || singleShare > 0.95 {
		t.Errorf("single-cell share = %.2f, want ≈0.87 (Table I)", singleShare)
	}
	for _, agg := range []quantity.Agg{quantity.Sum, quantity.Diff, quantity.Percent, quantity.Ratio} {
		if counts[agg] == 0 {
			t.Errorf("no gold of type %v generated", agg)
		}
	}
}

func TestDomainsShapeTables(t *testing.T) {
	cfg := smallConfig(13)
	cfg.Pages = 120
	c := Generate(cfg)
	dims := map[Domain][2]float64{} // sum of rows, cols
	counts := map[Domain]float64{}
	for _, page := range c.Pages {
		for _, tbl := range page.Tables {
			d := dims[page.Domain]
			d[0] += float64(tbl.Rows())
			d[1] += float64(tbl.Cols())
			dims[page.Domain] = d
			counts[page.Domain]++
		}
	}
	if counts[Health] == 0 || counts[Sports] == 0 {
		t.Skip("seed produced no health or sports pages")
	}
	healthRows := dims[Health][0] / counts[Health]
	sportsRows := dims[Sports][0] / counts[Sports]
	sportsCols := dims[Sports][1] / counts[Sports]
	healthCols := dims[Health][1] / counts[Health]
	// Table IX: health 3×2, sports 8×6.
	if healthRows >= sportsRows || healthCols >= sportsCols {
		t.Errorf("health (%.1f×%.1f) should be smaller than sports (%.1f×%.1f)",
			healthRows, healthCols, sportsRows, sportsCols)
	}
}

func TestDocsByDomainPartition(t *testing.T) {
	c := Generate(smallConfig(17))
	total := 0
	for _, docs := range c.DocsByDomain() {
		total += len(docs)
	}
	if total != len(c.Docs) {
		t.Errorf("domain partition covers %d of %d docs", total, len(c.Docs))
	}
	for _, doc := range c.Docs {
		_ = c.DomainOf(doc.ID) // must not panic and must be defined
	}
}

func TestTableSConfigScale(t *testing.T) {
	// The real tableS has 495 pages → 1,598 documents → 7,468 mentions;
	// verify the generator's ratios are in that ballpark (docs ≈ 3×pages,
	// mentions ≈ 4-5×docs).
	cfg := TableSConfig(42)
	cfg.Pages = 60
	c := Generate(cfg)
	docsPerPage := float64(len(c.Docs)) / 60
	if docsPerPage < 1.5 || docsPerPage > 5 {
		t.Errorf("docs per page = %.2f, want ≈3", docsPerPage)
	}
	mentions := 0
	for _, d := range c.Docs {
		mentions += len(d.TextMentions)
	}
	perDoc := float64(mentions) / float64(len(c.Docs))
	if perDoc < 2 || perDoc > 9 {
		t.Errorf("mentions per doc = %.2f, want ≈4.7", perDoc)
	}
}

func TestPerturbValues(t *testing.T) {
	tests := []struct {
		v        float64
		prec     int
		p        Perturbation
		want     float64
		wantPrec int
	}{
		{6746, 0, Truncated, 6740, 0},
		{6746, 0, Rounded, 6750, 0},
		{2.74, 2, Truncated, 2.7, 1},
		{2.74, 2, Rounded, 2.7, 1},
		{0.19, 2, Truncated, 0.1, 1},
		{0.19, 2, Rounded, 0.2, 1},
	}
	for _, tc := range tests {
		got, gotPrec, changed := perturbValue(tc.v, tc.prec, tc.p)
		if !changed {
			t.Errorf("perturbValue(%v,%v) unchanged", tc.v, tc.p)
			continue
		}
		if math.Abs(got-tc.want) > 1e-9 || gotPrec != tc.wantPrec {
			t.Errorf("perturbValue(%v,%d,%v) = (%v,%d), want (%v,%d)",
				tc.v, tc.prec, tc.p, got, gotPrec, tc.want, tc.wantPrec)
		}
	}
}

func TestPerturbDocs(t *testing.T) {
	c := Generate(smallConfig(19))
	trunc := PerturbDocs(c.Docs, Truncated)
	if len(trunc) != len(c.Docs) {
		t.Fatal("doc count changed")
	}
	changed := 0
	for i, doc := range trunc {
		if len(doc.TextMentions) != len(c.Docs[i].TextMentions) {
			t.Fatal("mention count changed")
		}
		for j, m := range doc.TextMentions {
			orig := c.Docs[i].TextMentions[j]
			if m.Value != orig.Value {
				changed++
				if m.Value == 0 && orig.Value != 0 {
					t.Errorf("perturbation zeroed a value: %v → %v", orig.Value, m.Value)
				}
			}
		}
	}
	if changed == 0 {
		t.Error("truncation changed nothing")
	}
	// Originals must be untouched (deep copy).
	for i, doc := range c.Docs {
		for j := range doc.TextMentions {
			if doc.TextMentions[j].Value != Generate(smallConfig(19)).Docs[i].TextMentions[j].Value {
				t.Fatal("PerturbDocs mutated the original corpus")
			}
		}
		break
	}
}

func TestPerturbOriginalIsIdentity(t *testing.T) {
	c := Generate(smallConfig(23))
	same := PerturbDocs(c.Docs, Original)
	if len(same) != len(c.Docs) || (len(same) > 0 && same[0] != c.Docs[0]) {
		t.Error("Original perturbation should return the input docs")
	}
}

func TestRewriteSurface(t *testing.T) {
	tests := []struct {
		surface  string
		oldV     float64
		oldPrec  int
		newV     float64
		newPrec  int
		expected string
	}{
		{"37.5K EUR", 37.5, 1, 37.4, 1, "37.4K EUR"},
		{"6746 units", 6746, 0, 6740, 0, "6740 units"},
		{"$2.74", 2.74, 2, 2.7, 1, "$2.7"},
		{"3,263", 3263, 0, 3260, 0, "3260"},
	}
	for _, tc := range tests {
		if got := rewriteSurface(tc.surface, tc.oldV, tc.oldPrec, tc.newV, tc.newPrec); got != tc.expected {
			t.Errorf("rewriteSurface(%q) = %q, want %q", tc.surface, got, tc.expected)
		}
	}
}

func TestSimulateAnnotation(t *testing.T) {
	c := Generate(smallConfig(29))
	ann := SimulateAnnotation(c.Gold, 8, 0.15, 99)
	if ann.Judged != len(c.Gold)+len(c.Gold)/2 {
		t.Errorf("judged %d, want gold pairs plus half as many distractors", ann.Judged)
	}
	// κ should land near the paper's 0.6854 with this error rate.
	if ann.Kappa < 0.5 || ann.Kappa > 0.85 {
		t.Errorf("kappa = %.4f, want ≈0.69", ann.Kappa)
	}
	if len(ann.Kept) < len(c.Gold)*9/10 {
		t.Errorf("only %d/%d pairs confirmed", len(ann.Kept), len(c.Gold))
	}
}

func TestDomainString(t *testing.T) {
	if Finance.String() != "finance" || Others.String() != "others" {
		t.Error("unexpected domain names")
	}
	if Domain(99).String() != "domain(99)" {
		t.Error("out-of-range name")
	}
	if len(AllDomains()) != int(NumDomains) {
		t.Error("AllDomains incomplete")
	}
}

func TestPerturbationString(t *testing.T) {
	if Original.String() != "original" || Truncated.String() != "truncated" || Rounded.String() != "rounded" {
		t.Error("unexpected perturbation names")
	}
}

func TestCollisionPagesShareValues(t *testing.T) {
	cfg := smallConfig(31)
	cfg.CollisionProb = 1.0
	cfg.Pages = 10
	c := Generate(cfg)
	for _, page := range c.Pages {
		if len(page.Tables) != 2 {
			t.Fatalf("page %s has %d tables, want 2 with CollisionProb=1", page.ID, len(page.Tables))
		}
		// At least one value must appear in both tables.
		vals := map[string]bool{}
		for r := 0; r < page.Tables[0].Rows(); r++ {
			for cc := 0; cc < page.Tables[0].Cols(); cc++ {
				vals[page.Tables[0].Cell(r, cc).Text] = true
			}
		}
		shared := false
		for r := 0; r < page.Tables[1].Rows() && !shared; r++ {
			for cc := 0; cc < page.Tables[1].Cols(); cc++ {
				if vals[page.Tables[1].Cell(r, cc).Text] {
					shared = true
					break
				}
			}
		}
		if !shared {
			t.Errorf("page %s collision tables share no values", page.ID)
		}
	}
}
