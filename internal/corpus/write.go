package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName and GoldName are the fixed file names WriteDir emits next to
// the per-page HTML payloads. The manifest is NDJSON: one ManifestEntry per
// line, in generation order, so consumers (briq-loadgen, rally-style
// harnesses) can stream the corpus without globbing the directory.
const (
	ManifestName = "manifest.ndjson"
	GoldName     = "gold.json"
)

// ManifestEntry is one manifest.ndjson line: where a generated page landed
// and what it contains.
type ManifestEntry struct {
	ID        string `json:"id"`
	Domain    string `json:"domain"`
	Title     string `json:"title"`
	File      string `json:"file"`
	Bytes     int64  `json:"bytes"` // size of the HTML payload
	Documents int    `json:"documents"`
	Gold      int    `json:"gold"`
}

// WriteStats summarizes one WriteDir run.
type WriteStats struct {
	Pages      int
	Documents  int
	Gold       int
	Bytes      int64 // total bytes written: HTML payloads + manifest + gold.json
	HTMLBytes  int64 // HTML payloads alone
	SizeTarget int64 // the byte budget (0 = page-count mode)
}

// WriteDir streams a generated corpus to dir: one HTML file per page, an
// NDJSON manifest, and gold.json with the ground-truth alignments. Nothing
// is buffered beyond the current page, so corpora far larger than memory are
// fine.
//
// sizeTarget selects the mode. With sizeTarget <= 0, exactly cfg.Pages pages
// are written (the classic fixed-count mode). With sizeTarget > 0, cfg.Pages
// is ignored and pages stream until the cumulative bytes written (HTML +
// manifest + gold) reach the target: generation stops at the first page that
// crosses it, so the result overshoots by at most one page (a few KB — well
// within ±5% for targets beyond ~100 KB). Both modes are deterministic:
// same seed and same target produce byte-identical directories, and because
// the page stream is prefix-stable, a small corpus is a byte-prefix of a
// larger one generated from the same seed.
func WriteDir(dir string, cfg Config, sizeTarget int64) (WriteStats, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return WriteStats{}, err
	}

	manifestF, err := os.Create(filepath.Join(dir, ManifestName))
	if err != nil {
		return WriteStats{}, err
	}
	defer manifestF.Close()
	manifest := bufio.NewWriter(manifestF)

	goldF, err := os.Create(filepath.Join(dir, GoldName))
	if err != nil {
		return WriteStats{}, err
	}
	defer goldF.Close()
	gold := newGoldWriter(goldF)

	stats := WriteStats{SizeTarget: sizeTarget}
	stream := NewStream(cfg)
	for {
		if sizeTarget > 0 {
			if stats.Bytes >= sizeTarget {
				break
			}
		} else if stats.Pages >= cfg.withDefaults().Pages {
			break
		}

		u := stream.Next()
		html := u.Page.HTML()
		name := u.Page.ID + ".html"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(html), 0o644); err != nil {
			return stats, err
		}

		entry := ManifestEntry{
			ID:        u.Page.ID,
			Domain:    u.Page.Domain.String(),
			Title:     u.Page.Title,
			File:      name,
			Bytes:     int64(len(html)),
			Documents: len(u.Docs),
			Gold:      len(u.Gold),
		}
		line, err := json.Marshal(entry)
		if err != nil {
			return stats, err
		}
		line = append(line, '\n')
		if _, err := manifest.Write(line); err != nil {
			return stats, err
		}

		goldBytes, err := gold.write(u.Gold)
		if err != nil {
			return stats, err
		}

		stats.Pages++
		stats.Documents += len(u.Docs)
		stats.Gold += len(u.Gold)
		stats.HTMLBytes += int64(len(html))
		stats.Bytes += int64(len(html)) + int64(len(line)) + goldBytes
	}

	if err := manifest.Flush(); err != nil {
		return stats, err
	}
	if err := manifestF.Close(); err != nil {
		return stats, err
	}
	tail, err := gold.close()
	if err != nil {
		return stats, err
	}
	stats.Bytes += tail
	if err := goldF.Close(); err != nil {
		return stats, err
	}
	return stats, nil
}

// goldWriter emits a JSON array of Gold records incrementally, matching the
// indented format `json.Encoder.SetIndent("", "  ")` used to produce, so
// existing gold.json consumers (cmd/briq-eval) keep working unchanged.
type goldWriter struct {
	w     *bufio.Writer
	wrote bool
}

func newGoldWriter(f *os.File) *goldWriter {
	return &goldWriter{w: bufio.NewWriter(f)}
}

// write appends the records and returns how many bytes they serialized to.
func (g *goldWriter) write(records []Gold) (int64, error) {
	var n int64
	for i := range records {
		b, err := json.MarshalIndent(records[i], "  ", "  ")
		if err != nil {
			return n, err
		}
		sep := ",\n  "
		if !g.wrote {
			sep = "[\n  "
			g.wrote = true
		}
		if _, err := g.w.WriteString(sep); err != nil {
			return n, err
		}
		if _, err := g.w.Write(b); err != nil {
			return n, err
		}
		n += int64(len(sep) + len(b))
	}
	return n, nil
}

// close terminates the array (an empty one collapses to "[]") and flushes.
func (g *goldWriter) close() (int64, error) {
	tail := "\n]\n"
	if !g.wrote {
		tail = "[]\n"
	}
	if _, err := g.w.WriteString(tail); err != nil {
		return 0, err
	}
	if err := g.w.Flush(); err != nil {
		return 0, err
	}
	return int64(len(tail)), nil
}

// String renders the stats the way cmd/corpusgen reports them.
func (s WriteStats) String() string {
	if s.SizeTarget > 0 {
		return fmt.Sprintf("%d pages (%d documents, %d gold alignments), %d bytes (target %d, %+.1f%%)",
			s.Pages, s.Documents, s.Gold, s.Bytes, s.SizeTarget,
			100*(float64(s.Bytes)-float64(s.SizeTarget))/float64(s.SizeTarget))
	}
	return fmt.Sprintf("%d pages (%d documents, %d gold alignments), %d bytes",
		s.Pages, s.Documents, s.Gold, s.Bytes)
}
