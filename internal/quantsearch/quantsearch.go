// Package quantsearch implements the paper's concluding vision (§XI):
// quantity queries over web tables — "Internet companies with annual income
// above 5 Mio. USD, electric cars with energy consumption below 100 MPGe".
// Aligned documents are indexed into (entity, context, value, unit) entries;
// queries combine keywords with a numeric comparison and a unit.
//
// The index is incremental: documents are added one at a time (Add) as they
// are aligned, and the index state after any Add sequence is equivalent to
// rebuilding from scratch over the same documents (BuildIndex). Entries are
// kept in keyword postings plus unit and value-ordered postings so that
// keyword-free range queries do not scan the whole corpus.
package quantsearch

import (
	"fmt"
	"sort"
	"strings"

	"briq/internal/document"
	"briq/internal/nlp"
	"briq/internal/quantity"
)

// Entry is one indexed table quantity with its provenance.
type Entry struct {
	DocID   string  `json:"doc_id"`
	TableID string  `json:"table_id"`
	Row     int     `json:"row"`
	Col     int     `json:"col"`
	Entity  string  `json:"entity"`  // the row header naming what the value describes
	Header  string  `json:"header"`  // the column header naming the measure
	Value   float64 `json:"value"`   // normalized value
	Unit    string  `json:"unit"`    // canonical unit, "" if unknown
	Caption string  `json:"caption"` // the table caption, part of the keyword context
}

// Index is an inverted index over entries, maintained incrementally. It is
// not safe for concurrent use; briq's persistent store wraps it in a lock.
//
// Removal (RemoveTables) tombstones entries in place: postings keep the dead
// ids and every query path skips them, so removing and re-adding a table
// yields results byte-identical to an index that never held the old version
// (the result ranking never depends on entry ids). Tombstones cost memory
// proportional to churn, not corpus size — acceptable for re-crawl workloads
// where a page's tables mostly survive re-ingestion.
type Index struct {
	entries []Entry
	byToken map[string][]int // lowercase token → entry ids (append order)
	byUnit  map[string][]int // canonical unit ("" = unknown) → entry ids
	byTable map[string][]int // table ID → entry ids (the removal postings)
	byValue []int            // entry ids; ordered by (Value, id) unless valueDirty
	seen    map[string]bool  // table IDs already indexed (cross-document dedup)
	dead    []bool           // tombstones, parallel to entries
	deadN   int

	// valueDirty marks byValue as appended-to since its last sort. Adds are
	// O(1) and the (Value, id) order is restored lazily — EnsureValueOrder
	// re-sorts once per mutation burst instead of shifting postings on every
	// insert, which made replaying a large corpus quadratic.
	valueDirty bool
}

// NewIndex returns an empty index ready for incremental Add calls.
func NewIndex() *Index {
	return &Index{
		byToken: make(map[string][]int),
		byUnit:  make(map[string][]int),
		byTable: make(map[string][]int),
		seen:    make(map[string]bool),
	}
}

// EntriesFromDocument derives the index entries for one document: one entry
// per numeric cell per table. It performs no cross-document deduplication —
// the index's Add methods handle that via table IDs.
func EntriesFromDocument(doc *document.Document) []Entry {
	var out []Entry
	seen := map[string]bool{}
	for _, tbl := range doc.Tables {
		if seen[tbl.ID] {
			continue
		}
		seen[tbl.ID] = true
		for _, cell := range tbl.NumericCells() {
			e := Entry{
				DocID:   doc.ID,
				TableID: tbl.ID,
				Row:     cell.Row,
				Col:     cell.Col,
				Value:   cell.Quantity.Value,
				Unit:    cell.Quantity.Unit,
				Caption: tbl.Caption,
			}
			if cell.Row < len(tbl.RowHeaders) {
				e.Entity = tbl.RowHeaders[cell.Row]
			}
			if cell.Col < len(tbl.ColHeaders) {
				e.Header = tbl.ColHeaders[cell.Col]
			}
			out = append(out, e)
		}
	}
	return out
}

// Add indexes every numeric cell of the document's tables. Tables already
// indexed by an earlier Add (same table ID) are skipped, so adding documents
// one by one is equivalent to BuildIndex over the whole slice. It returns
// the number of entries added.
func (ix *Index) Add(doc *document.Document) int {
	return ix.AddEntries(EntriesFromDocument(doc))
}

// AddEntries indexes pre-derived entries (e.g. replayed from a persistent
// store). Entries belonging to a table ID indexed by a *previous* call are
// skipped; entries within one call share the call's dedup scope, so a batch
// produced by EntriesFromDocument is either indexed whole or skipped whole
// per table. It returns the number of entries added.
func (ix *Index) AddEntries(entries []Entry) int {
	added := 0
	batch := map[string]bool{}
	for _, e := range entries {
		if ix.seen[e.TableID] && !batch[e.TableID] {
			continue
		}
		batch[e.TableID] = true
		ix.add(e)
		added++
	}
	for t := range batch {
		ix.seen[t] = true
	}
	return added
}

func (ix *Index) add(e Entry) {
	id := len(ix.entries)
	ix.entries = append(ix.entries, e)
	ix.dead = append(ix.dead, false)
	ix.byTable[e.TableID] = append(ix.byTable[e.TableID], id)

	tokens := map[string]bool{}
	for _, w := range nlp.ContentWords(e.Entity) {
		tokens[w] = true
	}
	for _, w := range nlp.ContentWords(e.Header) {
		tokens[w] = true
	}
	for _, w := range nlp.ContentWords(e.Caption) {
		tokens[w] = true
	}
	for w := range tokens {
		ix.byToken[w] = append(ix.byToken[w], id)
	}

	ix.byUnit[e.Unit] = append(ix.byUnit[e.Unit], id)

	// Appended out of order; EnsureValueOrder restores (Value, id) order
	// before the next binary-searched range query.
	ix.byValue = append(ix.byValue, id)
	ix.valueDirty = true
}

// EnsureValueOrder restores the (Value, id) order of the value postings after
// a burst of adds — a no-op when nothing changed. Search works without it
// (it falls back to a scan while the postings are dirty), so concurrent
// wrappers can call it under a write lock and keep Search read-only.
func (ix *Index) EnsureValueOrder() {
	if !ix.valueDirty {
		return
	}
	sort.Slice(ix.byValue, func(i, j int) bool {
		a, b := ix.byValue[i], ix.byValue[j]
		if ix.entries[a].Value != ix.entries[b].Value {
			return ix.entries[a].Value < ix.entries[b].Value
		}
		return a < b
	})
	ix.valueDirty = false
}

// RemoveTables retracts every entry of the given table IDs and forgets the
// IDs, so a subsequent AddEntries for the same table indexes it afresh. It
// returns the number of entries retracted. Removal tombstones entries in
// place — see the Index doc comment for why that preserves result identity.
func (ix *Index) RemoveTables(tableIDs []string) int {
	removed := 0
	for _, t := range tableIDs {
		for _, id := range ix.byTable[t] {
			if !ix.dead[id] {
				ix.dead[id] = true
				ix.deadN++
				removed++
			}
		}
		delete(ix.byTable, t)
		delete(ix.seen, t)
	}
	return removed
}

// BuildIndex indexes every numeric cell of the documents' tables. A table
// shared by several documents is indexed once. It is equivalent to NewIndex
// followed by Add for each document in order.
func BuildIndex(docs []*document.Document) *Index {
	ix := NewIndex()
	for _, doc := range docs {
		ix.Add(doc)
	}
	ix.EnsureValueOrder()
	return ix
}

// Size returns the number of live indexed entries.
func (ix *Index) Size() int { return len(ix.entries) - ix.deadN }

// Comparison is the numeric predicate of a query.
type Comparison int

// Comparisons.
const (
	Above Comparison = iota
	Below
	Equals
	Between
)

// String names the comparison.
func (c Comparison) String() string {
	switch c {
	case Above:
		return "above"
	case Below:
		return "below"
	case Between:
		return "between"
	default:
		return "equals"
	}
}

// ParseComparison maps a comparison name (as produced by String) back to the
// comparison. It wraps ErrBadQuery on unknown names.
func ParseComparison(s string) (Comparison, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "above":
		return Above, nil
	case "below":
		return Below, nil
	case "between":
		return Between, nil
	case "equals", "":
		return Equals, nil
	}
	return Equals, fmt.Errorf("%w: unknown comparison %q", ErrBadQuery, s)
}

// Query is a parsed quantity query.
type Query struct {
	Keywords []string // lowercase content words that must match entry tokens
	Op       Comparison
	Value    float64
	Value2   float64 // upper bound for Between
	Unit     string  // canonical unit, "" = any
}

// ErrBadQuery reports a query that cannot be interpreted: no numeric value,
// a malformed comparison, or invalid parameters. It is the root of the
// query-validation error taxonomy (mapped to HTTP 422 bad_query).
var ErrBadQuery = fmt.Errorf("quantsearch: bad query")

// ErrNoValue reports a query without a numeric threshold. It wraps
// ErrBadQuery.
var ErrNoValue = fmt.Errorf("%w: query contains no numeric value", ErrBadQuery)

// comparatorCues map phrases to comparisons; multi-word cues are matched
// before single words.
var comparatorCues = []struct {
	phrase string
	op     Comparison
}{
	{"more than", Above}, {"greater than", Above}, {"at least", Above},
	{"less than", Below}, {"at most", Below}, {"up to", Below},
	{"above", Above}, {"over", Above}, {"exceeding", Above},
	{"below", Below}, {"under", Below},
	{"between", Between},
	{"exactly", Equals}, {"equal to", Equals}, {"equals", Equals}, {"of", Equals},
}

// ParseQuery parses a natural-ish quantity query such as
//
//	"annual income above 5 million USD"
//	"energy consumption below 100 MPGe"
//	"votes between 10000 and 50000"
func ParseQuery(s string) (Query, error) {
	lower := strings.ToLower(s)
	q := Query{Op: Equals}

	opIdx := -1
	opLen := 0
	for _, cue := range comparatorCues {
		if i := strings.Index(lower, " "+cue.phrase+" "); i >= 0 {
			opIdx = i + 1
			opLen = len(cue.phrase)
			q.Op = cue.op
			break
		}
	}

	numericPart := s
	keywordPart := s
	if opIdx >= 0 {
		keywordPart = s[:opIdx]
		numericPart = s[opIdx+opLen:]
	}

	mentions := quantity.ExtractText(numericPart)
	if len(mentions) == 0 {
		// Comparator-free queries may still carry a trailing number.
		mentions = quantity.ExtractText(s)
		keywordPart = s
	}
	if len(mentions) == 0 {
		return Query{}, ErrNoValue
	}
	q.Value = mentions[0].Value
	q.Unit = mentions[0].Unit
	if q.Op == Between {
		if len(mentions) < 2 {
			return Query{}, fmt.Errorf("%w: 'between' needs two values", ErrBadQuery)
		}
		q.Value2 = mentions[1].Value
		if q.Value2 < q.Value {
			q.Value, q.Value2 = q.Value2, q.Value
		}
		if u := mentions[1].Unit; q.Unit == "" {
			q.Unit = u
		}
	}

	for _, w := range nlp.ContentWords(keywordPart) {
		// Drop comparator words and bare numbers from the keyword set.
		if isComparatorWord(w) || (w[0] >= '0' && w[0] <= '9') {
			continue
		}
		// Drop only the query's own unit word ("USD" in "above 5 USD");
		// other unit-like words ("votes", "points") are content keywords.
		if u, isUnit := quantity.CanonicalUnit(w); isUnit && q.Unit != "" && u == q.Unit {
			continue
		}
		q.Keywords = append(q.Keywords, w)
	}
	return q, nil
}

func isComparatorWord(w string) bool {
	for _, cue := range comparatorCues {
		if cue.phrase == w {
			return true
		}
	}
	return w == "and"
}

// Result is a matched entry with its keyword score.
type Result struct {
	Entry
	Matched int `json:"matched"` // number of query keywords found in the entry's tokens
}

// Search returns entries satisfying the query's numeric predicate and unit,
// ranked by keyword matches (entries matching no keyword are excluded when
// the query has keywords). The ranking is deterministic and independent of
// insertion order: keyword matches descending, then value descending, then
// table ID, then cell position.
func (ix *Index) Search(q Query) []Result {
	// Candidate set: union of keyword postings, or — without keywords — the
	// value-ordered postings restricted to the numeric range and the unit
	// buckets compatible with the query unit. While the value postings are
	// dirty (adds since the last EnsureValueOrder) the range restriction is
	// skipped and every entry is a candidate — the loop below re-applies the
	// exact unit and value predicates, so the results are identical; Search
	// itself never mutates the index.
	counts := map[int]int{}
	if len(q.Keywords) == 0 {
		if ix.valueDirty {
			for id := range ix.entries {
				counts[id] = 0
			}
		} else {
			compat := ix.compatibleUnits(q.Unit)
			for _, id := range ix.valueRange(q) {
				if compat[ix.entries[id].Unit] {
					counts[id] = 0
				}
			}
		}
	} else {
		for _, kw := range q.Keywords {
			for _, id := range ix.byToken[kw] {
				counts[id]++
			}
		}
	}

	var out []Result
	for id, matched := range counts {
		if ix.dead[id] {
			continue
		}
		e := ix.entries[id]
		if q.Unit != "" && e.Unit != "" && !quantity.UnitsCompatible(q.Unit, e.Unit) {
			continue
		}
		if !matchesValue(q, e.Value) {
			continue
		}
		out = append(out, Result{Entry: e, Matched: matched})
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Matched != out[j].Matched {
			return out[i].Matched > out[j].Matched
		}
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		if out[i].TableID != out[j].TableID {
			return out[i].TableID < out[j].TableID
		}
		return out[i].Row*1000+out[i].Col < out[j].Row*1000+out[j].Col
	})
	return out
}

func matchesValue(q Query, v float64) bool {
	switch q.Op {
	case Above:
		return v > q.Value
	case Below:
		return v < q.Value
	case Between:
		return v >= q.Value && v <= q.Value2
	default: // Equals
		return quantity.RelativeDifference(v, q.Value) < 1e-9
	}
}

// compatibleUnits returns the set of indexed unit buckets an entry may carry
// and still pass the query's unit filter. The filter only depends on the
// entry's unit string, so checking once per bucket is equivalent to checking
// per entry.
func (ix *Index) compatibleUnits(qUnit string) map[string]bool {
	out := make(map[string]bool, len(ix.byUnit))
	for unit := range ix.byUnit {
		if qUnit == "" || unit == "" || quantity.UnitsCompatible(qUnit, unit) {
			out[unit] = true
		}
	}
	return out
}

// valueRange returns the ids (value-ordered) whose values can satisfy the
// query's numeric predicate. Bounds are conservative for Equals — the exact
// RelativeDifference predicate is re-applied by the caller.
func (ix *Index) valueRange(q Query) []int {
	n := len(ix.byValue)
	at := func(i int) float64 { return ix.entries[ix.byValue[i]].Value }
	switch q.Op {
	case Above:
		lo := sort.Search(n, func(i int) bool { return at(i) > q.Value })
		return ix.byValue[lo:]
	case Below:
		hi := sort.Search(n, func(i int) bool { return at(i) >= q.Value })
		return ix.byValue[:hi]
	case Between:
		lo := sort.Search(n, func(i int) bool { return at(i) >= q.Value })
		hi := sort.Search(n, func(i int) bool { return at(i) > q.Value2 })
		return ix.byValue[lo:hi]
	default: // Equals: reldiff < 1e-9 implies |v−t| < 2e-9·|t| (only 0 matches t=0).
		margin := 2e-9 * abs(q.Value)
		lo := sort.Search(n, func(i int) bool { return at(i) >= q.Value-margin })
		hi := sort.Search(n, func(i int) bool { return at(i) > q.Value+margin })
		return ix.byValue[lo:hi]
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Units returns the indexed unit buckets and their live posting sizes — a
// cheap cardinality view for metrics and diagnostics. Buckets whose entries
// are all retracted are omitted.
func (ix *Index) Units() map[string]int {
	out := make(map[string]int, len(ix.byUnit))
	for u, ids := range ix.byUnit {
		live := 0
		for _, id := range ids {
			if !ix.dead[id] {
				live++
			}
		}
		if live > 0 {
			out[u] = live
		}
	}
	return out
}
