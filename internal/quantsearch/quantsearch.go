// Package quantsearch implements the paper's concluding vision (§XI):
// quantity queries over web tables — "Internet companies with annual income
// above 5 Mio. USD, electric cars with energy consumption below 100 MPGe".
// Aligned documents are indexed into (entity, context, value, unit) entries;
// queries combine keywords with a numeric comparison and a unit.
package quantsearch

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"briq/internal/document"
	"briq/internal/nlp"
	"briq/internal/quantity"
)

// Entry is one indexed table quantity with its provenance.
type Entry struct {
	DocID   string
	TableID string
	Row     int
	Col     int
	Entity  string  // the row header naming what the value describes
	Header  string  // the column header naming the measure
	Value   float64 // normalized value
	Unit    string  // canonical unit, "" if unknown
}

// Index is an inverted index over entries.
type Index struct {
	entries []Entry
	byToken map[string][]int // lowercase token → entry indices (sorted, unique)
}

// BuildIndex indexes every numeric cell of the documents' tables. A table
// shared by several documents is indexed once.
func BuildIndex(docs []*document.Document) *Index {
	ix := &Index{byToken: make(map[string][]int)}
	seen := map[string]bool{}
	for _, doc := range docs {
		for _, tbl := range doc.Tables {
			if seen[tbl.ID] {
				continue
			}
			seen[tbl.ID] = true
			captionTokens := nlp.ContentWords(tbl.Caption)
			for _, cell := range tbl.NumericCells() {
				e := Entry{
					DocID:   doc.ID,
					TableID: tbl.ID,
					Row:     cell.Row,
					Col:     cell.Col,
					Value:   cell.Quantity.Value,
					Unit:    cell.Quantity.Unit,
				}
				if cell.Row < len(tbl.RowHeaders) {
					e.Entity = tbl.RowHeaders[cell.Row]
				}
				if cell.Col < len(tbl.ColHeaders) {
					e.Header = tbl.ColHeaders[cell.Col]
				}
				id := len(ix.entries)
				ix.entries = append(ix.entries, e)

				tokens := map[string]bool{}
				for _, w := range nlp.ContentWords(e.Entity) {
					tokens[w] = true
				}
				for _, w := range nlp.ContentWords(e.Header) {
					tokens[w] = true
				}
				for _, w := range captionTokens {
					tokens[w] = true
				}
				for w := range tokens {
					ix.byToken[w] = append(ix.byToken[w], id)
				}
			}
		}
	}
	return ix
}

// Size returns the number of indexed entries.
func (ix *Index) Size() int { return len(ix.entries) }

// Comparison is the numeric predicate of a query.
type Comparison int

// Comparisons.
const (
	Above Comparison = iota
	Below
	Equals
	Between
)

// String names the comparison.
func (c Comparison) String() string {
	switch c {
	case Above:
		return "above"
	case Below:
		return "below"
	case Between:
		return "between"
	default:
		return "equals"
	}
}

// Query is a parsed quantity query.
type Query struct {
	Keywords []string // lowercase content words that must match entry tokens
	Op       Comparison
	Value    float64
	Value2   float64 // upper bound for Between
	Unit     string  // canonical unit, "" = any
}

// ErrNoValue reports a query without a numeric threshold.
var ErrNoValue = errors.New("quantsearch: query contains no numeric value")

// comparatorCues map phrases to comparisons; multi-word cues are matched
// before single words.
var comparatorCues = []struct {
	phrase string
	op     Comparison
}{
	{"more than", Above}, {"greater than", Above}, {"at least", Above},
	{"less than", Below}, {"at most", Below}, {"up to", Below},
	{"above", Above}, {"over", Above}, {"exceeding", Above},
	{"below", Below}, {"under", Below},
	{"between", Between},
	{"exactly", Equals}, {"equal to", Equals}, {"equals", Equals}, {"of", Equals},
}

// ParseQuery parses a natural-ish quantity query such as
//
//	"annual income above 5 million USD"
//	"energy consumption below 100 MPGe"
//	"votes between 10000 and 50000"
func ParseQuery(s string) (Query, error) {
	lower := strings.ToLower(s)
	q := Query{Op: Equals}

	opIdx := -1
	opLen := 0
	for _, cue := range comparatorCues {
		if i := strings.Index(lower, " "+cue.phrase+" "); i >= 0 {
			opIdx = i + 1
			opLen = len(cue.phrase)
			q.Op = cue.op
			break
		}
	}

	numericPart := s
	keywordPart := s
	if opIdx >= 0 {
		keywordPart = s[:opIdx]
		numericPart = s[opIdx+opLen:]
	}

	mentions := quantity.ExtractText(numericPart)
	if len(mentions) == 0 {
		// Comparator-free queries may still carry a trailing number.
		mentions = quantity.ExtractText(s)
		keywordPart = s
	}
	if len(mentions) == 0 {
		return Query{}, ErrNoValue
	}
	q.Value = mentions[0].Value
	q.Unit = mentions[0].Unit
	if q.Op == Between {
		if len(mentions) < 2 {
			return Query{}, fmt.Errorf("quantsearch: 'between' needs two values")
		}
		q.Value2 = mentions[1].Value
		if q.Value2 < q.Value {
			q.Value, q.Value2 = q.Value2, q.Value
		}
		if u := mentions[1].Unit; q.Unit == "" {
			q.Unit = u
		}
	}

	for _, w := range nlp.ContentWords(keywordPart) {
		// Drop comparator words and bare numbers from the keyword set.
		if isComparatorWord(w) || (w[0] >= '0' && w[0] <= '9') {
			continue
		}
		// Drop only the query's own unit word ("USD" in "above 5 USD");
		// other unit-like words ("votes", "points") are content keywords.
		if u, isUnit := quantity.CanonicalUnit(w); isUnit && q.Unit != "" && u == q.Unit {
			continue
		}
		q.Keywords = append(q.Keywords, w)
	}
	return q, nil
}

func isComparatorWord(w string) bool {
	for _, cue := range comparatorCues {
		if cue.phrase == w {
			return true
		}
	}
	return w == "and"
}

// Result is a matched entry with its keyword score.
type Result struct {
	Entry
	Matched int // number of query keywords found in the entry's tokens
}

// Search returns entries satisfying the query's numeric predicate and unit,
// ranked by keyword matches (entries matching no keyword are excluded when
// the query has keywords).
func (ix *Index) Search(q Query) []Result {
	// Candidate set: union of posting lists, or everything without keywords.
	counts := map[int]int{}
	if len(q.Keywords) == 0 {
		for i := range ix.entries {
			counts[i] = 0
		}
	} else {
		for _, kw := range q.Keywords {
			for _, id := range ix.byToken[kw] {
				counts[id]++
			}
		}
	}

	var out []Result
	for id, matched := range counts {
		e := ix.entries[id]
		if q.Unit != "" && e.Unit != "" && !quantity.UnitsCompatible(q.Unit, e.Unit) {
			continue
		}
		ok := false
		switch q.Op {
		case Above:
			ok = e.Value > q.Value
		case Below:
			ok = e.Value < q.Value
		case Between:
			ok = e.Value >= q.Value && e.Value <= q.Value2
		case Equals:
			ok = quantity.RelativeDifference(e.Value, q.Value) < 1e-9
		}
		if !ok {
			continue
		}
		out = append(out, Result{Entry: e, Matched: matched})
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Matched != out[j].Matched {
			return out[i].Matched > out[j].Matched
		}
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		if out[i].TableID != out[j].TableID {
			return out[i].TableID < out[j].TableID
		}
		return out[i].Row*1000+out[i].Col < out[j].Row*1000+out[j].Col
	})
	return out
}
