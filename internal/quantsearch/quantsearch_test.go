package quantsearch

import (
	"reflect"
	"testing"

	"briq/internal/corpus"
	"briq/internal/document"
	"briq/internal/table"
)

func buildIndex(t *testing.T) *Index {
	t.Helper()
	income, err := table.New("t-income", "annual income of internet companies ($ millions)", [][]string{
		{"company", "income", "revenue"},
		{"Acme Web", "7", "20"},
		{"Widget Net", "3", "9"},
		{"Search Co", "12", "40"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cars, err := table.New("t-cars", "electric cars energy consumption", [][]string{
		{"model", "consumption MPGe", "range km"},
		{"Volt", "95", "420"},
		{"Bolt", "115", "380"},
		{"Leaf", "105", "360"},
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := []*document.Document{
		{ID: "d0", Tables: []*table.Table{income}},
		{ID: "d1", Tables: []*table.Table{cars}},
	}
	return BuildIndex(docs)
}

func TestParseQuery(t *testing.T) {
	tests := []struct {
		in       string
		op       Comparison
		value    float64
		unit     string
		keywords []string
	}{
		{"annual income above 5 million USD", Above, 5e6, "USD", []string{"annual", "income"}},
		{"energy consumption below 100 MPGe", Below, 100, "MPGe", []string{"energy", "consumption"}},
		{"votes between 10000 and 50000", Between, 10000, "", []string{"votes"}},
		{"revenue of 40", Equals, 40, "", []string{"revenue"}},
		{"income over 5", Above, 5, "", []string{"income"}},
	}
	for _, tc := range tests {
		q, err := ParseQuery(tc.in)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", tc.in, err)
			continue
		}
		if q.Op != tc.op || q.Value != tc.value || q.Unit != tc.unit {
			t.Errorf("ParseQuery(%q) = op=%v v=%v unit=%q, want op=%v v=%v unit=%q",
				tc.in, q.Op, q.Value, q.Unit, tc.op, tc.value, tc.unit)
		}
		if !reflect.DeepEqual(q.Keywords, tc.keywords) {
			t.Errorf("ParseQuery(%q) keywords = %v, want %v", tc.in, q.Keywords, tc.keywords)
		}
	}
}

func TestParseQueryBetweenBounds(t *testing.T) {
	q, err := ParseQuery("points between 90 and 20")
	if err != nil {
		t.Fatal(err)
	}
	if q.Value != 20 || q.Value2 != 90 {
		t.Errorf("bounds = [%v, %v], want ordered [20, 90]", q.Value, q.Value2)
	}
}

func TestParseQueryErrors(t *testing.T) {
	if _, err := ParseQuery("income above average"); err == nil {
		t.Error("want error for value-free query")
	}
	if _, err := ParseQuery("votes between 100"); err == nil {
		t.Error("want error for one-value between")
	}
}

func TestSearchPaperExampleIncome(t *testing.T) {
	// §XI: "Internet companies with annual income above 5 Mio. USD".
	ix := buildIndex(t)
	q, err := ParseQuery("income above 5 million USD")
	if err != nil {
		t.Fatal(err)
	}
	results := ix.Search(q)
	// Income cells are in $ millions (caption scale): Acme 7e6, Search 12e6
	// qualify; Widget 3e6 does not. Revenue cells also carry the "income"
	// caption token, so restrict the assertion to the income column.
	var incomes []float64
	for _, r := range results {
		if r.Header == "income" {
			incomes = append(incomes, r.Value)
		}
	}
	if !reflect.DeepEqual(incomes, []float64{12e6, 7e6}) {
		t.Errorf("income results = %v, want [1.2e7 7e6]", incomes)
	}
	for _, r := range results {
		if r.Header == "income" && r.Value == 3e6 {
			t.Error("3 million should not qualify as above 5 million")
		}
	}
}

func TestSearchPaperExampleCars(t *testing.T) {
	// §XI: "electric cars with energy consumption below 100 MPGe".
	ix := buildIndex(t)
	q, err := ParseQuery("energy consumption below 100 MPGe")
	if err != nil {
		t.Fatal(err)
	}
	results := ix.Search(q)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	top := results[0]
	if top.Entity != "Volt" || top.Value != 95 {
		t.Errorf("top result = %s %v, want Volt 95", top.Entity, top.Value)
	}
	for _, r := range results {
		if r.Unit == "MPGe" && r.Value >= 100 {
			t.Errorf("MPGe value %v should be below 100", r.Value)
		}
	}
}

func TestSearchKeywordFiltering(t *testing.T) {
	ix := buildIndex(t)
	q, err := ParseQuery("range above 300 km")
	if err != nil {
		t.Fatal(err)
	}
	results := ix.Search(q)
	if len(results) == 0 {
		t.Fatal("no range results")
	}
	for _, r := range results {
		if r.TableID != "t-cars" {
			t.Errorf("keyword 'range' matched the income table: %+v", r)
		}
	}
}

func TestSearchNoKeywords(t *testing.T) {
	ix := buildIndex(t)
	results := ix.Search(Query{Op: Above, Value: 400})
	found := false
	for _, r := range results {
		if r.Entity == "Volt" && r.Value == 420 {
			found = true
		}
	}
	if !found {
		t.Error("keyword-free search should scan all entries")
	}
}

func TestSearchDeterministicOrder(t *testing.T) {
	ix := buildIndex(t)
	q, _ := ParseQuery("consumption above 90")
	r1 := ix.Search(q)
	r2 := ix.Search(q)
	if !reflect.DeepEqual(r1, r2) {
		t.Error("search order not deterministic")
	}
}

func TestBuildIndexOnGeneratedCorpus(t *testing.T) {
	cfg := corpus.TableSConfig(3)
	cfg.Pages = 20
	c := corpus.Generate(cfg)
	ix := BuildIndex(c.Docs)
	if ix.Size() == 0 {
		t.Fatal("empty index from generated corpus")
	}
	// Shared tables must be indexed once despite multiple documents.
	perTable := map[string]int{}
	for _, e := range ix.entries {
		perTable[e.TableID]++
	}
	for id, n := range perTable {
		if n > 200 {
			t.Errorf("table %s indexed %d times?", id, n)
		}
	}
}
