package quantsearch

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"briq/internal/corpus"
	"briq/internal/quantity"
)

// referenceSearch is the pre-postings full-scan implementation, kept as the
// semantic oracle for the posting-based Search.
func referenceSearch(ix *Index, q Query) []Result {
	counts := map[int]int{}
	if len(q.Keywords) == 0 {
		for i := range ix.entries {
			counts[i] = 0
		}
	} else {
		for _, kw := range q.Keywords {
			for _, id := range ix.byToken[kw] {
				counts[id]++
			}
		}
	}
	var out []Result
	for id, matched := range counts {
		e := ix.entries[id]
		if q.Unit != "" && e.Unit != "" && !quantity.UnitsCompatible(q.Unit, e.Unit) {
			continue
		}
		if !matchesValue(q, e.Value) {
			continue
		}
		out = append(out, Result{Entry: e, Matched: matched})
	}
	sortResults(out)
	return out
}

func sortResults(out []Result) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			less := false
			switch {
			case a.Matched != b.Matched:
				less = a.Matched > b.Matched
			case a.Value != b.Value:
				less = a.Value > b.Value
			case a.TableID != b.TableID:
				less = a.TableID < b.TableID
			default:
				less = a.Row*1000+a.Col < b.Row*1000+b.Col
			}
			if less {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
}

func queryBattery(ix *Index) []Query {
	qs := []Query{
		{Op: Above, Value: 0},
		{Op: Above, Value: 100},
		{Op: Below, Value: 50},
		{Op: Between, Value: 10, Value2: 1000},
		{Op: Above, Value: 5e6, Unit: "USD"},
		{Op: Below, Value: 100, Unit: "MPGe"},
		{Keywords: []string{"income"}, Op: Above, Value: 1},
		{Keywords: []string{"consumption", "energy"}, Op: Below, Value: 200},
		{Keywords: []string{"nonexistent"}, Op: Above, Value: 0},
	}
	// Equals queries on values actually present, plus one absent value.
	for i := 0; i < len(ix.entries) && i < 5; i++ {
		qs = append(qs, Query{Op: Equals, Value: ix.entries[i].Value})
	}
	qs = append(qs, Query{Op: Equals, Value: -12345.678}, Query{Op: Equals, Value: 0})
	return qs
}

// TestSearchMatchesReferenceScan checks the posting-based candidate
// selection against the full-scan oracle over a generated corpus.
func TestSearchMatchesReferenceScan(t *testing.T) {
	cfg := corpus.TableSConfig(7)
	cfg.Pages = 30
	c := corpus.Generate(cfg)
	ix := BuildIndex(c.Docs)
	if ix.Size() == 0 {
		t.Fatal("empty index")
	}
	for _, q := range queryBattery(ix) {
		got := ix.Search(q)
		want := referenceSearch(ix, q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Search(%+v): %d results, reference %d results", q, len(got), len(want))
		}
	}
	// Randomized ranges.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		a := ix.entries[rng.Intn(len(ix.entries))].Value * (0.5 + rng.Float64())
		b := a + rng.Float64()*1e4
		q := Query{Op: Comparison(rng.Intn(4)), Value: a, Value2: b}
		got := ix.Search(q)
		want := referenceSearch(ix, q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("random Search(%+v) diverges from reference", q)
		}
	}
}

// TestIncrementalEqualsRebuild verifies the tentpole invariant: adding
// documents one at a time yields an index equivalent to a from-scratch
// rebuild over the same documents, for every prefix.
func TestIncrementalEqualsRebuild(t *testing.T) {
	cfg := corpus.TableSConfig(11)
	cfg.Pages = 12
	c := corpus.Generate(cfg)

	inc := NewIndex()
	for n, doc := range c.Docs {
		inc.Add(doc)
		rebuilt := BuildIndex(c.Docs[:n+1])
		if inc.Size() != rebuilt.Size() {
			t.Fatalf("after %d docs: incremental size %d, rebuilt %d", n+1, inc.Size(), rebuilt.Size())
		}
		for _, q := range queryBattery(rebuilt) {
			gi := inc.Search(q)
			gr := rebuilt.Search(q)
			if !reflect.DeepEqual(gi, gr) {
				t.Fatalf("after %d docs, query %+v: incremental and rebuilt disagree (%d vs %d results)",
					n+1, q, len(gi), len(gr))
			}
		}
	}
}

// TestAddEntriesReplayEqualsAdd checks the store-replay path: feeding
// pre-derived entries reproduces Add exactly, including table dedup across
// calls.
func TestAddEntriesReplayEqualsAdd(t *testing.T) {
	cfg := corpus.TableSConfig(5)
	cfg.Pages = 10
	c := corpus.Generate(cfg)

	direct := NewIndex()
	replayed := NewIndex()
	for _, doc := range c.Docs {
		direct.Add(doc)
		replayed.AddEntries(EntriesFromDocument(doc))
	}
	if !reflect.DeepEqual(direct.entries, replayed.entries) {
		t.Fatal("AddEntries replay diverges from Add")
	}
	for _, q := range queryBattery(direct) {
		if !reflect.DeepEqual(direct.Search(q), replayed.Search(q)) {
			t.Fatalf("query %+v: replayed index disagrees", q)
		}
	}
}

func TestAddEntriesDedupAcrossCalls(t *testing.T) {
	e := Entry{DocID: "d0", TableID: "t0", Value: 5, Entity: "acme", Header: "income"}
	ix := NewIndex()
	if n := ix.AddEntries([]Entry{e, {DocID: "d0", TableID: "t0", Value: 7, Row: 1}}); n != 2 {
		t.Fatalf("first batch added %d, want 2 (same-call entries share the batch scope)", n)
	}
	if n := ix.AddEntries([]Entry{e}); n != 0 {
		t.Fatalf("duplicate table re-added (%d entries)", n)
	}
	if ix.Size() != 2 {
		t.Fatalf("size = %d, want 2", ix.Size())
	}
}

// TestLazyValueOrder pins the lazy value-posting maintenance: adds leave the
// postings dirty (O(1) append instead of an O(n) shift), Search answers
// identically whether the postings are dirty (scan fallback) or sorted
// (binary-searched range), and Search itself never sorts — EnsureValueOrder
// is the only mutation point, and it is idempotent.
func TestLazyValueOrder(t *testing.T) {
	cfg := corpus.TableSConfig(13)
	cfg.Pages = 10
	c := corpus.Generate(cfg)

	dirty := NewIndex()
	for _, doc := range c.Docs {
		dirty.Add(doc)
	}
	if !dirty.valueDirty {
		t.Fatal("adds should leave the value postings dirty")
	}
	sorted := BuildIndex(c.Docs) // BuildIndex ends with EnsureValueOrder
	if sorted.valueDirty {
		t.Fatal("BuildIndex should return sorted value postings")
	}

	for _, q := range queryBattery(sorted) {
		if !reflect.DeepEqual(dirty.Search(q), sorted.Search(q)) {
			t.Fatalf("query %+v: dirty scan and sorted range disagree", q)
		}
		if !dirty.valueDirty {
			t.Fatal("Search must not mutate the index")
		}
	}

	dirty.EnsureValueOrder()
	dirty.EnsureValueOrder() // idempotent
	for i := 1; i < len(dirty.byValue); i++ {
		a, b := dirty.byValue[i-1], dirty.byValue[i]
		if va, vb := dirty.entries[a].Value, dirty.entries[b].Value; va > vb || (va == vb && a > b) {
			t.Fatalf("byValue not in (Value, id) order at %d", i)
		}
	}
	if !reflect.DeepEqual(dirty.byValue, sorted.byValue) {
		t.Fatal("EnsureValueOrder should converge to the rebuilt order")
	}
	for _, q := range queryBattery(sorted) {
		if !reflect.DeepEqual(dirty.Search(q), sorted.Search(q)) {
			t.Fatalf("query %+v: post-sort results diverge", q)
		}
	}
}

func TestBadQueryTaxonomy(t *testing.T) {
	if _, err := ParseQuery("income above average"); !errors.Is(err, ErrBadQuery) {
		t.Errorf("value-free query: err = %v, want ErrBadQuery", err)
	}
	if _, err := ParseQuery("income above average"); !errors.Is(err, ErrNoValue) {
		t.Errorf("value-free query: err should still be ErrNoValue")
	}
	if _, err := ParseQuery("votes between 100"); !errors.Is(err, ErrBadQuery) {
		t.Errorf("one-value between: want ErrBadQuery")
	}
	if _, err := ParseComparison("sideways"); !errors.Is(err, ErrBadQuery) {
		t.Errorf("unknown comparison: want ErrBadQuery")
	}
	for _, name := range []string{"above", "below", "between", "equals", ""} {
		op, err := ParseComparison(name)
		if err != nil {
			t.Errorf("ParseComparison(%q): %v", name, err)
		}
		if name != "" && op.String() != name {
			t.Errorf("ParseComparison(%q) round-trip = %q", name, op.String())
		}
	}
}

func TestUnitsView(t *testing.T) {
	ix := NewIndex()
	ix.AddEntries([]Entry{
		{TableID: "t0", Unit: "USD", Value: 1},
		{TableID: "t0", Unit: "USD", Value: 2},
		{TableID: "t0", Unit: "", Value: 3},
	})
	want := map[string]int{"USD": 2, "": 1}
	if got := ix.Units(); !reflect.DeepEqual(got, want) {
		t.Errorf("Units() = %v, want %v", got, want)
	}
}
