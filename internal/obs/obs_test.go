package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterSetSnapshotSchemaStable(t *testing.T) {
	s := NewCounterSet("a", "b")
	s.Inc("a")
	s.Inc("nope") // unregistered: dropped, not grown
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot keys = %v, want exactly {a, b}", snap)
	}
	if snap["a"] != 1 || snap["b"] != 0 {
		t.Errorf("snapshot = %v, want a=1 b=0", snap)
	}
	if got := s.Get("nope"); got != 0 {
		t.Errorf("Get(nope) = %d, want 0", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("value = %d, want 5 (negative adds ignored)", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 100 * time.Millisecond} {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if want := 103.0; s.SumMillis != want {
		t.Errorf("sum = %v ms, want %v", s.SumMillis, want)
	}
	if s.MinMillis != 1 || s.MaxMillis != 100 {
		t.Errorf("min/max = %v/%v, want 1/100", s.MinMillis, s.MaxMillis)
	}
	if s.P50Millis <= 0 || s.P50Millis > s.P90Millis || s.P90Millis > s.P99Millis {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", s.P50Millis, s.P90Millis, s.P99Millis)
	}
	if s.MaxMillis < s.P99Millis {
		t.Errorf("p99 %v exceeds max %v", s.P99Millis, s.MaxMillis)
	}
	// Buckets are cumulative and end at the total in-range count.
	last := int64(0)
	for _, b := range s.Buckets {
		if b.Count < last {
			t.Fatalf("bucket counts not cumulative: %v", s.Buckets)
		}
		last = b.Count
	}
	if last != 3 {
		t.Errorf("cumulative bucket total = %d, want 3", last)
	}
}

func TestHistogramOverflowAndClamp(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second)     // clamped to 0
	h.Observe(10 * time.Second) // beyond the last bound: overflow bucket
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.MinMillis != 0 {
		t.Errorf("min = %v, want 0 (clamped)", s.MinMillis)
	}
	if last := s.Buckets[len(s.Buckets)-1].Count; last != 1 {
		t.Errorf("in-range cumulative = %d, want 1 (one observation overflowed)", last)
	}
	// JSON must round-trip: no Inf/NaN anywhere in the snapshot.
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

func TestEmptyHistogramSnapshotIsJSONSafe(t *testing.T) {
	s := NewHistogram().Snapshot()
	if s.Count != 0 || s.MinMillis != 0 || s.MeanMillis != 0 {
		t.Errorf("empty snapshot not zeroed: %+v", s)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("empty snapshot not JSON-encodable: %v", err)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Observe("x", time.Second) // must not panic
	r.Time("x")()
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Errorf("nil recorder snapshot = %v, want empty", snap)
	}
	if names := r.StageNames(); names != nil {
		t.Errorf("nil recorder stages = %v, want nil", names)
	}
}

func TestRecorderPreRegistersStages(t *testing.T) {
	r := NewRecorder("classify", "filter")
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %v, want classify+filter at zero", snap)
	}
	if snap["classify"].Count != 0 {
		t.Errorf("pre-registered stage should start empty: %+v", snap["classify"])
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	const goroutines, perG = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stage := []string{"classify", "filter", "rwr"}[g%3]
			for i := 0; i < perG; i++ {
				r.Observe(stage, time.Duration(i)*time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	for _, s := range r.Snapshot() {
		total += s.Count
	}
	if want := int64(goroutines * perG); total != want {
		t.Errorf("total observations = %d, want %d", total, want)
	}
}

func TestTimeRecordsElapsed(t *testing.T) {
	r := NewRecorder()
	done := r.Time("stage")
	time.Sleep(2 * time.Millisecond)
	done()
	s := r.Snapshot()["stage"]
	if s.Count != 1 || s.SumMillis < 1 {
		t.Errorf("timer recorded %+v, want one observation ≥ 1ms", s)
	}
}

// TestHistogramMerge folds two histograms together and checks the merged
// state is indistinguishable from one histogram that saw every observation.
func TestHistogramMerge(t *testing.T) {
	obsA := []time.Duration{time.Millisecond, 80 * time.Millisecond}
	obsB := []time.Duration{30 * time.Microsecond, 7 * time.Second, 3 * time.Millisecond}

	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	for _, d := range obsA {
		a.Observe(d)
		all.Observe(d)
	}
	for _, d := range obsB {
		b.Observe(d)
		all.Observe(d)
	}

	a.Merge(b)
	got, want := a.Snapshot(), all.Snapshot()
	if got.Count != want.Count || got.SumMillis != want.SumMillis ||
		got.MinMillis != want.MinMillis || got.MaxMillis != want.MaxMillis {
		t.Errorf("merged summary = %+v, want %+v", got, want)
	}
	if got.P50Millis != want.P50Millis || got.P90Millis != want.P90Millis || got.P99Millis != want.P99Millis {
		t.Errorf("merged quantiles = %v/%v/%v, want %v/%v/%v",
			got.P50Millis, got.P90Millis, got.P99Millis,
			want.P50Millis, want.P90Millis, want.P99Millis)
	}
	for i := range want.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got.Buckets[i], want.Buckets[i])
		}
	}
}

// TestHistogramMergeEmpty checks that merging an empty histogram neither
// corrupts min/max nor invents observations, and that merging into an empty
// histogram copies the source.
func TestHistogramMergeEmpty(t *testing.T) {
	h := NewHistogram()
	h.Observe(5 * time.Millisecond)
	h.Merge(NewHistogram())
	h.Merge(nil)
	s := h.Snapshot()
	if s.Count != 1 || s.MinMillis != 5 || s.MaxMillis != 5 {
		t.Errorf("merge of empty changed state: %+v", s)
	}

	dst := NewHistogram()
	dst.Merge(h)
	if ds := dst.Snapshot(); ds.Count != 1 || ds.MinMillis != 5 || ds.MaxMillis != 5 {
		t.Errorf("merge into empty = %+v, want copy of source", ds)
	}
}

// TestRecorderMerge merges per-worker recorders into a fresh one — the pool
// snapshot path — including a stage the destination has never seen.
func TestRecorderMerge(t *testing.T) {
	w1, w2 := NewRecorder(), NewRecorder()
	w1.Observe("classify", 2*time.Millisecond)
	w1.Observe("rwr", 10*time.Millisecond)
	w2.Observe("classify", 4*time.Millisecond)
	w2.Observe("filter", time.Millisecond)

	pool := NewRecorder()
	pool.Merge(w1)
	pool.Merge(w2)

	snap := pool.Snapshot()
	if got := snap["classify"].Count; got != 2 {
		t.Errorf("classify count = %d, want 2", got)
	}
	if got := snap["classify"].SumMillis; got != 6 {
		t.Errorf("classify sum = %v ms, want 6", got)
	}
	if snap["rwr"].Count != 1 || snap["filter"].Count != 1 {
		t.Errorf("per-worker stages missing after merge: %v", snap)
	}

	// Nil endpoints must be safe: instrumented code never checks.
	var nilRec *Recorder
	nilRec.Merge(w1)
	pool.Merge(nil)
}

// TestRecorderMergeConcurrent races Merge against live Observe traffic on
// both sides; the race detector is the assertion.
func TestRecorderMergeConcurrent(t *testing.T) {
	src, dst := NewRecorder(), NewRecorder()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				src.Observe("align", time.Millisecond)
				dst.Observe("align", time.Millisecond)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			dst.Merge(src)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if dst.Snapshot()["align"].Count == 0 {
		t.Error("no observations survived the concurrent merge")
	}
}

func TestExponentialBounds(t *testing.T) {
	bounds := ExponentialBounds(100*time.Microsecond, 10*time.Second, 20)
	if len(bounds) < 80 { // 5 decades × 20 per decade
		t.Fatalf("too few bounds: %d", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v <= %v", i, bounds[i], bounds[i-1])
		}
	}
	if bounds[0] != int64(100*time.Microsecond) {
		t.Errorf("first bound = %d, want %d", bounds[0], int64(100*time.Microsecond))
	}
	if last := bounds[len(bounds)-1]; last < int64(10*time.Second) {
		t.Errorf("last bound = %d, does not cover hi", last)
	}
}

func TestHistogramCustomBounds(t *testing.T) {
	h := NewHistogramBounds(ExponentialBounds(time.Millisecond, time.Second, 10))
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	// With 10 buckets per decade the relative quantile error is ~26% worst
	// case; the true p50/p95/p99 of 1..1000ms are 500/950/990.
	checks := []struct {
		got, want float64
	}{{s.P50Millis, 500}, {s.P95Millis, 950}, {s.P99Millis, 990}}
	for _, c := range checks {
		if c.got < c.want*0.7 || c.got > c.want*1.3 {
			t.Errorf("quantile = %v, want within 30%% of %v", c.got, c.want)
		}
	}
	if s.P50Millis > s.P90Millis || s.P90Millis > s.P95Millis || s.P95Millis > s.P99Millis {
		t.Errorf("quantiles not monotone: %v/%v/%v/%v", s.P50Millis, s.P90Millis, s.P95Millis, s.P99Millis)
	}
}

func TestSnapshotQuantileExport(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	// The export must agree with the pre-computed fields bit-for-bit: both
	// run the same estimator over the same buckets.
	if got := s.Quantile(0.50); got != s.P50Millis {
		t.Errorf("Quantile(0.50) = %v, P50Millis = %v", got, s.P50Millis)
	}
	if got := s.Quantile(0.95); got != s.P95Millis {
		t.Errorf("Quantile(0.95) = %v, P95Millis = %v", got, s.P95Millis)
	}
	if got := s.Quantile(0.99); got != s.P99Millis {
		t.Errorf("Quantile(0.99) = %v, P99Millis = %v", got, s.P99Millis)
	}

	// And it must survive a JSON round trip — the scraped-/metrics path.
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded HistogramSnapshot
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if got, want := decoded.Quantile(0.95), s.P95Millis; math.Abs(got-want) > 1e-6 {
		t.Errorf("decoded Quantile(0.95) = %v, want %v", got, want)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile should be 0")
	}
}

func TestMergeMismatchedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched layouts did not panic")
		}
	}()
	NewHistogram().Merge(NewHistogramBounds([]int64{1, 2, 3}))
}
