package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterSetSnapshotSchemaStable(t *testing.T) {
	s := NewCounterSet("a", "b")
	s.Inc("a")
	s.Inc("nope") // unregistered: dropped, not grown
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot keys = %v, want exactly {a, b}", snap)
	}
	if snap["a"] != 1 || snap["b"] != 0 {
		t.Errorf("snapshot = %v, want a=1 b=0", snap)
	}
	if got := s.Get("nope"); got != 0 {
		t.Errorf("Get(nope) = %d, want 0", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("value = %d, want 5 (negative adds ignored)", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 100 * time.Millisecond} {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if want := 103.0; s.SumMillis != want {
		t.Errorf("sum = %v ms, want %v", s.SumMillis, want)
	}
	if s.MinMillis != 1 || s.MaxMillis != 100 {
		t.Errorf("min/max = %v/%v, want 1/100", s.MinMillis, s.MaxMillis)
	}
	if s.P50Millis <= 0 || s.P50Millis > s.P90Millis || s.P90Millis > s.P99Millis {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", s.P50Millis, s.P90Millis, s.P99Millis)
	}
	if s.MaxMillis < s.P99Millis {
		t.Errorf("p99 %v exceeds max %v", s.P99Millis, s.MaxMillis)
	}
	// Buckets are cumulative and end at the total in-range count.
	last := int64(0)
	for _, b := range s.Buckets {
		if b.Count < last {
			t.Fatalf("bucket counts not cumulative: %v", s.Buckets)
		}
		last = b.Count
	}
	if last != 3 {
		t.Errorf("cumulative bucket total = %d, want 3", last)
	}
}

func TestHistogramOverflowAndClamp(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second)     // clamped to 0
	h.Observe(10 * time.Second) // beyond the last bound: overflow bucket
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.MinMillis != 0 {
		t.Errorf("min = %v, want 0 (clamped)", s.MinMillis)
	}
	if last := s.Buckets[len(s.Buckets)-1].Count; last != 1 {
		t.Errorf("in-range cumulative = %d, want 1 (one observation overflowed)", last)
	}
	// JSON must round-trip: no Inf/NaN anywhere in the snapshot.
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

func TestEmptyHistogramSnapshotIsJSONSafe(t *testing.T) {
	s := NewHistogram().Snapshot()
	if s.Count != 0 || s.MinMillis != 0 || s.MeanMillis != 0 {
		t.Errorf("empty snapshot not zeroed: %+v", s)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("empty snapshot not JSON-encodable: %v", err)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Observe("x", time.Second) // must not panic
	r.Time("x")()
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Errorf("nil recorder snapshot = %v, want empty", snap)
	}
	if names := r.StageNames(); names != nil {
		t.Errorf("nil recorder stages = %v, want nil", names)
	}
}

func TestRecorderPreRegistersStages(t *testing.T) {
	r := NewRecorder("classify", "filter")
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %v, want classify+filter at zero", snap)
	}
	if snap["classify"].Count != 0 {
		t.Errorf("pre-registered stage should start empty: %+v", snap["classify"])
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	const goroutines, perG = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stage := []string{"classify", "filter", "rwr"}[g%3]
			for i := 0; i < perG; i++ {
				r.Observe(stage, time.Duration(i)*time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	for _, s := range r.Snapshot() {
		total += s.Count
	}
	if want := int64(goroutines * perG); total != want {
		t.Errorf("total observations = %d, want %d", total, want)
	}
}

func TestTimeRecordsElapsed(t *testing.T) {
	r := NewRecorder()
	done := r.Time("stage")
	time.Sleep(2 * time.Millisecond)
	done()
	s := r.Snapshot()["stage"]
	if s.Count != 1 || s.SumMillis < 1 {
		t.Errorf("timer recorded %+v, want one observation ≥ 1ms", s)
	}
}

// TestHistogramMerge folds two histograms together and checks the merged
// state is indistinguishable from one histogram that saw every observation.
func TestHistogramMerge(t *testing.T) {
	obsA := []time.Duration{time.Millisecond, 80 * time.Millisecond}
	obsB := []time.Duration{30 * time.Microsecond, 7 * time.Second, 3 * time.Millisecond}

	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	for _, d := range obsA {
		a.Observe(d)
		all.Observe(d)
	}
	for _, d := range obsB {
		b.Observe(d)
		all.Observe(d)
	}

	a.Merge(b)
	got, want := a.Snapshot(), all.Snapshot()
	if got.Count != want.Count || got.SumMillis != want.SumMillis ||
		got.MinMillis != want.MinMillis || got.MaxMillis != want.MaxMillis {
		t.Errorf("merged summary = %+v, want %+v", got, want)
	}
	if got.P50Millis != want.P50Millis || got.P90Millis != want.P90Millis || got.P99Millis != want.P99Millis {
		t.Errorf("merged quantiles = %v/%v/%v, want %v/%v/%v",
			got.P50Millis, got.P90Millis, got.P99Millis,
			want.P50Millis, want.P90Millis, want.P99Millis)
	}
	for i := range want.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got.Buckets[i], want.Buckets[i])
		}
	}
}

// TestHistogramMergeEmpty checks that merging an empty histogram neither
// corrupts min/max nor invents observations, and that merging into an empty
// histogram copies the source.
func TestHistogramMergeEmpty(t *testing.T) {
	h := NewHistogram()
	h.Observe(5 * time.Millisecond)
	h.Merge(NewHistogram())
	h.Merge(nil)
	s := h.Snapshot()
	if s.Count != 1 || s.MinMillis != 5 || s.MaxMillis != 5 {
		t.Errorf("merge of empty changed state: %+v", s)
	}

	dst := NewHistogram()
	dst.Merge(h)
	if ds := dst.Snapshot(); ds.Count != 1 || ds.MinMillis != 5 || ds.MaxMillis != 5 {
		t.Errorf("merge into empty = %+v, want copy of source", ds)
	}
}

// TestRecorderMerge merges per-worker recorders into a fresh one — the pool
// snapshot path — including a stage the destination has never seen.
func TestRecorderMerge(t *testing.T) {
	w1, w2 := NewRecorder(), NewRecorder()
	w1.Observe("classify", 2*time.Millisecond)
	w1.Observe("rwr", 10*time.Millisecond)
	w2.Observe("classify", 4*time.Millisecond)
	w2.Observe("filter", time.Millisecond)

	pool := NewRecorder()
	pool.Merge(w1)
	pool.Merge(w2)

	snap := pool.Snapshot()
	if got := snap["classify"].Count; got != 2 {
		t.Errorf("classify count = %d, want 2", got)
	}
	if got := snap["classify"].SumMillis; got != 6 {
		t.Errorf("classify sum = %v ms, want 6", got)
	}
	if snap["rwr"].Count != 1 || snap["filter"].Count != 1 {
		t.Errorf("per-worker stages missing after merge: %v", snap)
	}

	// Nil endpoints must be safe: instrumented code never checks.
	var nilRec *Recorder
	nilRec.Merge(w1)
	pool.Merge(nil)
}

// TestRecorderMergeConcurrent races Merge against live Observe traffic on
// both sides; the race detector is the assertion.
func TestRecorderMergeConcurrent(t *testing.T) {
	src, dst := NewRecorder(), NewRecorder()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				src.Observe("align", time.Millisecond)
				dst.Observe("align", time.Millisecond)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			dst.Merge(src)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if dst.Snapshot()["align"].Count == 0 {
		t.Error("no observations survived the concurrent merge")
	}
}
