package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterSet is a fixed set of named counters. Names are registered at
// construction so snapshots always carry the same keys — dashboards and golden
// tests rely on a stable schema, not on which code paths have run.
type CounterSet struct {
	counters map[string]*Counter
}

// NewCounterSet registers the given counter names, all starting at zero.
func NewCounterSet(names ...string) *CounterSet {
	s := &CounterSet{counters: make(map[string]*Counter, len(names))}
	for _, n := range names {
		s.counters[n] = &Counter{}
	}
	return s
}

// Inc increments the named counter. Unregistered names are dropped rather
// than grown: a typo must not invent a new time series at runtime.
func (s *CounterSet) Inc(name string) { s.Add(name, 1) }

// Add adds n to the named counter.
func (s *CounterSet) Add(name string, n int64) {
	if s == nil {
		return
	}
	if c, ok := s.counters[name]; ok {
		c.Add(n)
	}
}

// Get returns the named counter's value (zero for unregistered names).
func (s *CounterSet) Get(name string) int64 {
	if s == nil {
		return 0
	}
	if c, ok := s.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// Snapshot returns the current value of every registered counter.
func (s *CounterSet) Snapshot() map[string]int64 {
	if s == nil {
		return map[string]int64{}
	}
	out := make(map[string]int64, len(s.counters))
	for name, c := range s.counters {
		out[name] = c.Value()
	}
	return out
}

// defaultBucketBounds are the standard histogram upper bounds in
// nanoseconds: exponential 50µs → 5s, matched to pipeline stages that run
// from tens of microseconds (filtering a small document) to seconds (RWR on
// a dense page). Observations above the last bound land in an implicit
// overflow bucket.
var defaultBucketBounds = []int64{
	50_000, 100_000, 250_000, 500_000, // 50µs … 500µs
	1_000_000, 2_500_000, 5_000_000, 10_000_000, // 1ms … 10ms
	25_000_000, 50_000_000, 100_000_000, 250_000_000, // 25ms … 250ms
	500_000_000, 1_000_000_000, 2_500_000_000, 5_000_000_000, // 500ms … 5s
}

// Histogram is a fixed-bucket latency histogram. All methods are safe for
// concurrent use; recording is wait-free (atomic adds plus a CAS loop for
// min/max). The bucket layout is fixed at construction: NewHistogram uses
// the standard pipeline-stage bounds, NewHistogramBounds takes a custom
// HDR-style layout (the load harness uses ExponentialBounds for finer tail
// resolution than the stage histograms need).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; valid only when count > 0
	max     atomic.Int64
	bounds  []int64        // immutable after construction
	buckets []atomic.Int64 // len(bounds)+1; last = overflow
}

// NewHistogram returns an empty histogram with the standard stage bounds.
func NewHistogram() *Histogram { return NewHistogramBounds(defaultBucketBounds) }

// NewHistogramBounds returns an empty histogram with custom bucket upper
// bounds in nanoseconds. Bounds must be positive and strictly increasing;
// NewHistogramBounds panics otherwise (bucket layouts are static program
// configuration, not runtime input).
func NewHistogramBounds(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: empty histogram bounds")
	}
	for i, b := range bounds {
		if b <= 0 || (i > 0 && b <= bounds[i-1]) {
			panic("obs: histogram bounds must be positive and strictly increasing")
		}
	}
	h := &Histogram{
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(int64(1<<63 - 1))
	return h
}

// ExponentialBounds builds a log-spaced bucket layout: perDecade bounds per
// factor-of-10 from lo to hi inclusive (both rounded to nanoseconds). This
// is the HDR-histogram trade: relative quantile error is bounded by the
// per-decade resolution instead of growing with the value, so p99 at 800ms
// is as trustworthy as p50 at 2ms. 20 bounds per decade keeps the relative
// error ≈ 12% at ~7x the memory of the default stage layout.
func ExponentialBounds(lo, hi time.Duration, perDecade int) []int64 {
	if lo <= 0 || hi <= lo || perDecade < 1 {
		panic("obs: ExponentialBounds needs 0 < lo < hi and perDecade >= 1")
	}
	factor := math.Pow(10, 1/float64(perDecade))
	var out []int64
	for v := float64(lo); ; v *= factor {
		b := int64(math.Round(v))
		if len(out) > 0 && b <= out[len(out)-1] {
			continue // rounding collapsed two bounds at the nanosecond floor
		}
		out = append(out, b)
		if b >= int64(hi) {
			break
		}
	}
	return out
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return ns <= h.bounds[i] })
	h.buckets[i].Add(1)
}

// Merge folds every observation recorded in src into h. Both histograms may
// keep receiving concurrent Observe calls; like Snapshot, the merged state is
// near-consistent rather than a single atomic cut. Merging a histogram into
// itself is not supported. A nil src is a no-op.
//
// This is how the runtime pool combines per-worker recorders into one
// pool-level view: workers record contention-free into private histograms,
// and the pool merges them on demand.
//
// Both histograms must share the same bucket layout; merging across layouts
// panics (bucket counts cannot be redistributed after the fact).
func (h *Histogram) Merge(src *Histogram) {
	if src == nil {
		return
	}
	if len(h.bounds) != len(src.bounds) {
		panic("obs: merging histograms with different bucket layouts")
	}
	for i := range h.bounds {
		if h.bounds[i] != src.bounds[i] {
			panic("obs: merging histograms with different bucket layouts")
		}
	}
	n := src.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(src.sum.Load())
	for v := src.min.Load(); ; {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for v := src.max.Load(); ; {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for i := range src.buckets {
		if c := src.buckets[i].Load(); c > 0 {
			h.buckets[i].Add(c)
		}
	}
}

// Bucket is one cumulative histogram bucket: the number of observations at or
// below the upper bound. Only finite bounds are emitted; the overflow count is
// the snapshot's Count minus the last bucket's cumulative Count.
type Bucket struct {
	LEMillis float64 `json:"le_ms"`
	Count    int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time JSON-ready view of a histogram. All
// durations are milliseconds. Quantiles are estimated by linear interpolation
// inside the bucket that holds the target rank; Quantile exports the same
// estimator for any q, so consumers (the load harness, dashboards scraping
// /metrics) can derive quantiles the snapshot does not pre-compute.
type HistogramSnapshot struct {
	Count      int64    `json:"count"`
	SumMillis  float64  `json:"sum_ms"`
	MeanMillis float64  `json:"mean_ms"`
	MinMillis  float64  `json:"min_ms"`
	MaxMillis  float64  `json:"max_ms"`
	P50Millis  float64  `json:"p50_ms"`
	P90Millis  float64  `json:"p90_ms"`
	P95Millis  float64  `json:"p95_ms"`
	P99Millis  float64  `json:"p99_ms"`
	Buckets    []Bucket `json:"buckets"`
}

const nsPerMs = 1e6

// Snapshot captures the histogram's current state. Concurrent Observe calls
// may land between field reads; the snapshot is internally near-consistent,
// which is all a metrics endpoint needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	counts := make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	s := HistogramSnapshot{
		Count:     h.count.Load(),
		SumMillis: float64(h.sum.Load()) / nsPerMs,
		Buckets:   make([]Bucket, len(h.bounds)),
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += counts[i]
		s.Buckets[i] = Bucket{LEMillis: float64(bound) / nsPerMs, Count: cum}
	}
	if s.Count > 0 {
		s.MeanMillis = s.SumMillis / float64(s.Count)
		s.MinMillis = float64(h.min.Load()) / nsPerMs
		s.MaxMillis = float64(h.max.Load()) / nsPerMs
		s.P50Millis = quantile(h.bounds, counts, s.Count, 0.50)
		s.P90Millis = quantile(h.bounds, counts, s.Count, 0.90)
		s.P95Millis = quantile(h.bounds, counts, s.Count, 0.95)
		s.P99Millis = quantile(h.bounds, counts, s.Count, 0.99)
	}
	return s
}

// Quantile estimates the q-quantile (0 < q ≤ 1) in milliseconds from the
// snapshot's cumulative buckets — the export path for quantiles beyond the
// pre-computed p50/p90/p95/p99. It reconstructs per-bucket counts from the
// cumulative form, so it works on snapshots decoded from JSON (a scraped
// /metrics payload) as well as fresh ones. Returns 0 on an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	bounds := make([]int64, len(s.Buckets))
	counts := make([]int64, len(s.Buckets)+1)
	prev := int64(0)
	for i, b := range s.Buckets {
		bounds[i] = int64(b.LEMillis * nsPerMs)
		counts[i] = b.Count - prev
		prev = b.Count
	}
	counts[len(s.Buckets)] = s.Count - prev // overflow
	return quantile(bounds, counts, s.Count, q)
}

// quantile estimates the q-quantile in milliseconds from per-bucket counts.
// Within the holding bucket the observations are assumed uniform; the
// overflow bucket reports its lower bound (there is no upper edge to
// interpolate toward).
func quantile(bounds []int64, counts []int64, total int64, q float64) float64 {
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = float64(bounds[i-1])
		}
		if i >= len(bounds) { // overflow bucket
			return float64(bounds[len(bounds)-1]) / nsPerMs
		}
		hi := float64(bounds[i])
		frac := (rank - prev) / float64(c)
		return (lo + (hi-lo)*frac) / nsPerMs
	}
	return float64(bounds[len(bounds)-1]) / nsPerMs
}

// MergeSnapshots combines two histogram snapshots of the same bucket layout
// into one, as if every observation behind both had landed in a single
// histogram: counts, sums and cumulative buckets add, min/max combine, and
// the quantiles are re-estimated from the merged buckets with the same
// estimator Snapshot uses. This is the aggregation path for snapshots that
// crossed a process boundary — briq-gateway merges the /metrics scrapes of
// its replicas this way, where the live *Histogram (and Histogram.Merge) is
// out of reach.
//
// Unlike Histogram.Merge, a layout mismatch returns an error instead of
// panicking: scraped payloads are runtime input, not program configuration.
// An empty side (Count == 0, no buckets) merges to the other side unchanged.
func MergeSnapshots(a, b HistogramSnapshot) (HistogramSnapshot, error) {
	if len(a.Buckets) == 0 && a.Count == 0 {
		return b, nil
	}
	if len(b.Buckets) == 0 && b.Count == 0 {
		return a, nil
	}
	if len(a.Buckets) != len(b.Buckets) {
		return HistogramSnapshot{}, fmt.Errorf("obs: merging snapshots with %d and %d buckets", len(a.Buckets), len(b.Buckets))
	}
	out := HistogramSnapshot{
		Count:     a.Count + b.Count,
		SumMillis: a.SumMillis + b.SumMillis,
		Buckets:   make([]Bucket, len(a.Buckets)),
	}
	for i := range a.Buckets {
		if a.Buckets[i].LEMillis != b.Buckets[i].LEMillis {
			return HistogramSnapshot{}, fmt.Errorf("obs: merging snapshots with different bucket bounds at %d: %g vs %g",
				i, a.Buckets[i].LEMillis, b.Buckets[i].LEMillis)
		}
		out.Buckets[i] = Bucket{
			LEMillis: a.Buckets[i].LEMillis,
			Count:    a.Buckets[i].Count + b.Buckets[i].Count,
		}
	}
	switch {
	case a.Count == 0:
		out.MinMillis, out.MaxMillis = b.MinMillis, b.MaxMillis
	case b.Count == 0:
		out.MinMillis, out.MaxMillis = a.MinMillis, a.MaxMillis
	default:
		out.MinMillis, out.MaxMillis = math.Min(a.MinMillis, b.MinMillis), math.Max(a.MaxMillis, b.MaxMillis)
	}
	if out.Count > 0 {
		out.MeanMillis = out.SumMillis / float64(out.Count)
		out.P50Millis = out.Quantile(0.50)
		out.P90Millis = out.Quantile(0.90)
		out.P95Millis = out.Quantile(0.95)
		out.P99Millis = out.Quantile(0.99)
	}
	return out, nil
}

// Recorder names histograms by stage. The zero value is ready to use; a nil
// *Recorder discards observations, so instrumented code can call it
// unconditionally.
type Recorder struct {
	mu     sync.RWMutex
	stages map[string]*Histogram
}

// NewRecorder returns a Recorder with the given stage histograms
// pre-registered, so snapshots expose them (at zero) before any traffic.
func NewRecorder(stages ...string) *Recorder {
	r := &Recorder{}
	for _, s := range stages {
		r.Stage(s)
	}
	return r
}

// Stage returns the named histogram, creating it on first use.
func (r *Recorder) Stage(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.stages[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.stages[name]; h != nil {
		return h
	}
	if r.stages == nil {
		r.stages = make(map[string]*Histogram)
	}
	h = NewHistogram()
	r.stages[name] = h
	return h
}

// Observe records one duration for the named stage. No-op on a nil Recorder.
func (r *Recorder) Observe(stage string, d time.Duration) {
	if r == nil {
		return
	}
	r.Stage(stage).Observe(d)
}

// Time starts a stage timer; the returned func records the elapsed time when
// called. Usable as `defer r.Time(stage)()`. On a nil Recorder the returned
// func is a no-op.
func (r *Recorder) Time(stage string) func() {
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() { r.Observe(stage, time.Since(start)) }
}

// Merge folds every stage histogram of src into r, creating stages r has not
// seen. No-op when r or src is nil. Merging the same src into the same dst
// twice double-counts; callers own that discipline (the runtime pool merges
// each per-worker recorder exactly once per run, or merges into a fresh
// Recorder for read-only snapshots).
func (r *Recorder) Merge(src *Recorder) {
	if r == nil || src == nil {
		return
	}
	src.mu.RLock()
	stages := make(map[string]*Histogram, len(src.stages))
	for name, h := range src.stages {
		stages[name] = h
	}
	src.mu.RUnlock()
	for name, h := range stages {
		r.Stage(name).Merge(h)
	}
}

// Snapshot captures every registered stage histogram, keyed by stage name.
func (r *Recorder) Snapshot() map[string]HistogramSnapshot {
	if r == nil {
		return map[string]HistogramSnapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]HistogramSnapshot, len(r.stages))
	for name, h := range r.stages {
		out[name] = h.Snapshot()
	}
	return out
}

// StageNames returns the registered stage names in sorted order.
func (r *Recorder) StageNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.stages))
	for name := range r.stages {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
