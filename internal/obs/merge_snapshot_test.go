package obs

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestMergeSnapshotsMatchesHistogramMerge: merging two snapshots must agree
// with snapshotting the Histogram.Merge of the same observations — the
// cross-process aggregation path may not tell a different story than the
// in-process one.
func TestMergeSnapshotsMatchesHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 200; i++ {
		a.Observe(time.Duration(i) * 731 * time.Microsecond)
	}
	for i := 1; i <= 90; i++ {
		b.Observe(time.Duration(i) * 13 * time.Millisecond)
	}

	got, err := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	ref := NewHistogram()
	ref.Merge(a)
	ref.Merge(b)
	want := ref.Snapshot()

	if got.Count != want.Count || got.SumMillis != want.SumMillis {
		t.Errorf("count/sum = %d/%g, want %d/%g", got.Count, got.SumMillis, want.Count, want.SumMillis)
	}
	if got.MinMillis != want.MinMillis || got.MaxMillis != want.MaxMillis {
		t.Errorf("min/max = %g/%g, want %g/%g", got.MinMillis, got.MaxMillis, want.MinMillis, want.MaxMillis)
	}
	for _, q := range []struct{ got, want float64 }{
		{got.P50Millis, want.P50Millis},
		{got.P90Millis, want.P90Millis},
		{got.P95Millis, want.P95Millis},
		{got.P99Millis, want.P99Millis},
	} {
		if math.Abs(q.got-q.want) > 1e-6 {
			t.Errorf("quantile = %g, want %g", q.got, q.want)
		}
	}
	for i := range want.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got.Buckets[i], want.Buckets[i])
		}
	}
}

// TestMergeSnapshotsJSONRoundTrip merges snapshots that crossed a JSON
// boundary, the way the gateway receives them from replica /metrics scrapes.
func TestMergeSnapshotsJSONRoundTrip(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 50; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	data, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded HistogramSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	merged, err := MergeSnapshots(decoded, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Count != 100 {
		t.Errorf("merged count = %d, want 100", merged.Count)
	}
	if merged.MeanMillis != decoded.MeanMillis {
		t.Errorf("doubling a population moved its mean: %g vs %g", merged.MeanMillis, decoded.MeanMillis)
	}
	if math.Abs(merged.P50Millis-decoded.P50Millis) > 1e-6 {
		t.Errorf("doubling a population moved its median: %g vs %g", merged.P50Millis, decoded.P50Millis)
	}
}

// TestMergeSnapshotsEmptyAndMismatch covers the edges: an empty side is the
// identity, and mismatched layouts are an error, not a panic.
func TestMergeSnapshotsEmptyAndMismatch(t *testing.T) {
	h := NewHistogram()
	h.Observe(5 * time.Millisecond)
	s := h.Snapshot()

	if got, err := MergeSnapshots(HistogramSnapshot{}, s); err != nil || got.Count != 1 {
		t.Errorf("empty left identity: %+v, %v", got, err)
	}
	if got, err := MergeSnapshots(s, HistogramSnapshot{}); err != nil || got.Count != 1 {
		t.Errorf("empty right identity: %+v, %v", got, err)
	}

	other := NewHistogramBounds(ExponentialBounds(time.Millisecond, time.Second, 5))
	other.Observe(time.Millisecond)
	if _, err := MergeSnapshots(s, other.Snapshot()); err == nil {
		t.Error("mismatched layouts merged without error")
	}

	// Zero-count but registered (pre-registered stage on a cold server)
	// must still merge with a populated side.
	cold := NewHistogram().Snapshot()
	got, err := MergeSnapshots(cold, s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != 1 || got.MinMillis != s.MinMillis || got.MaxMillis != s.MaxMillis {
		t.Errorf("cold+warm merge = %+v, want the warm side's stats", got)
	}
}
