// Package obs is the stdlib-only observability layer shared by the pipeline,
// the HTTP server and the benchmark harness: lock-free counters, fixed-bucket
// latency histograms with JSON-ready snapshots, and a Recorder that names
// histograms by pipeline stage.
//
// Everything is safe for concurrent use. A nil *Recorder is a valid no-op
// sink, so instrumented code (core.Align and friends) never needs nil checks
// beyond the method receiver — observing into a nil Recorder simply does
// nothing.
//
// HistogramSnapshot is the serialization unit: count, sum/mean/min/max and
// p50/p90/p99 in milliseconds plus the cumulative bucket counts. The same
// snapshot type backs the briq-server /metrics endpoint and the "stages"
// section of cmd/briq-bench's BENCH_pipeline.json, so the two stay
// comparable field for field.
package obs
