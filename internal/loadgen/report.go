package loadgen

import (
	"encoding/json"
	"fmt"
	"os"

	"briq/internal/obs"
)

// Report is the machine-readable result of one load run — the schema of
// BENCH_serve.json. Every field is present on every run (a quiet endpoint
// reports zeros, never a missing key), so the schema golden test and any
// dashboard reading the file see the same shape regardless of traffic.
type Report struct {
	Config     ReportConfig   `json:"config"`
	Requests   RequestCounts  `json:"requests"`
	Throughput Throughput     `json:"throughput"`
	Rates      Rates          `json:"rates"`
	LatencyMs  LatencyByClass `json:"latency_ms"`
	Serving    ServingReport  `json:"serving"`
	Scaling    Scaling        `json:"scaling"`
}

// ReportConfig echoes the run parameters, so a committed BENCH_serve.json
// is self-describing and two reports are comparable at a glance.
type ReportConfig struct {
	Target          string  `json:"target"`
	OfferedQPS      float64 `json:"offered_qps"`
	DurationSeconds float64 `json:"duration_seconds"`
	WarmupSeconds   float64 `json:"warmup_seconds"`
	Seed            int64   `json:"seed"`
	ZipfS           float64 `json:"zipf_s"`
	BatchPages      int     `json:"batch_pages"`
	BatchBlocks     bool    `json:"batch_blocks"`
	CorpusPages     int     `json:"corpus_pages"`
	Mix             Mix     `json:"mix"`
}

// RequestCounts classifies every measured request by outcome. Sent always
// equals the sum of the outcome buckets.
type RequestCounts struct {
	Scheduled     int64 `json:"scheduled"`        // arrivals in the measured window
	Sent          int64 `json:"sent"`             // actually issued (== scheduled unless the run was cancelled)
	OK            int64 `json:"ok"`               // 200
	Unprocessable int64 `json:"unprocessable"`    // 422 no_tables / no_mentions / unprocessable
	Shed429       int64 `json:"shed_429"`         // 429 overloaded (admission control)
	Deadline504   int64 `json:"deadline_504"`     // 504 deadline
	OtherHTTP     int64 `json:"other_http"`       // any other status
	TransportErrs int64 `json:"transport_errors"` // no HTTP response (dial/timeout/reset)
}

func (c RequestCounts) completed() int64 {
	return c.OK + c.Unprocessable + c.Shed429 + c.Deadline504 + c.OtherHTTP
}

// Throughput compares what was offered with what came back. Docs/sec weights
// each request by the documents it carries (align and summarize move one
// page, a batch moves BatchPages pages) — the fleet-scaling comparisons are
// about delivered documents, not HTTP round trips, because shedding one
// batch loses BatchPages pages of work.
type Throughput struct {
	OfferedQPS        float64 `json:"offered_qps"`          // scheduled arrivals / schedule window
	AchievedQPS       float64 `json:"achieved_qps"`         // completed HTTP responses / wall clock incl. drain
	GoodputQPS        float64 `json:"goodput_qps"`          // 200s / wall clock incl. drain
	OfferedDocsPerSec float64 `json:"offered_docs_per_sec"` // scheduled page-weighted arrivals / schedule window
	GoodputDocsPerSec float64 `json:"goodput_docs_per_sec"` // pages delivered in 200s / wall clock incl. drain
}

// Rates are the outcome counts as fractions of sent requests — the
// shed-rate numbers the ROADMAP's scaling items regress against.
type Rates struct {
	Shed429     float64 `json:"shed_429"`
	Deadline504 float64 `json:"deadline_504"`
	Error       float64 `json:"error"` // other_http + transport_errors
}

// LatencySummary is the flat quantile view of one latency population. All
// values are milliseconds, measured from each request's *scheduled* arrival
// time (see the package comment on coordinated omission).
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean"`
	P50Ms  float64 `json:"p50"`
	P90Ms  float64 `json:"p90"`
	P95Ms  float64 `json:"p95"`
	P99Ms  float64 `json:"p99"`
	MaxMs  float64 `json:"max"`
}

func summarize(h *obs.Histogram) LatencySummary {
	s := h.Snapshot()
	return LatencySummary{
		Count:  s.Count,
		MeanMs: s.MeanMillis,
		P50Ms:  s.P50Millis,
		P90Ms:  s.P90Millis,
		P95Ms:  s.P95Millis,
		P99Ms:  s.P99Millis,
		MaxMs:  s.MaxMillis,
	}
}

// LatencyByClass breaks latency out overall and per endpoint.
type LatencyByClass struct {
	Overall   LatencySummary `json:"overall"`
	Align     LatencySummary `json:"align"`
	Batch     LatencySummary `json:"batch"`
	Summarize LatencySummary `json:"summarize"`
}

// ServingReport is the server's own view of the measured window: the
// /metrics serving-counter deltas plus the derived cache hit rate. ScrapeOK
// is false when either scrape failed, or when the deltas went negative
// because the scraped population shrank mid-window — a chaos run killing a
// replica out of the gateway's aggregate. The deltas are then zero, and the
// client-side counts are the only record of the run.
type ServingReport struct {
	ScrapeOK       bool    `json:"scrape_ok"`
	Hits           int64   `json:"hits"`
	Misses         int64   `json:"misses"`
	Coalesced      int64   `json:"coalesced"`
	Stores         int64   `json:"stores"`
	ShedOverloaded int64   `json:"shed_overloaded"`
	ShedDeadline   int64   `json:"shed_deadline"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

// Scaling is the gateway replica-scaling section of BENCH_serve.json,
// filled in by `briq-loadgen -scaling <slot>` merge runs (make bench-gateway):
// the same offered load against one replica, against two gateway-sharded
// replicas, and with a replica killed mid-run. Every slot is always present
// — Present=false with zeros on reports that never ran the comparison — so
// the schema golden sees one shape regardless.
type Scaling struct {
	Replicas1 ScalingRun `json:"replicas_1"` // gateway fronting one replica
	Replicas2 ScalingRun `json:"replicas_2"` // gateway sharding two replicas
	Chaos     ScalingRun `json:"chaos"`      // two replicas, one killed mid-run
	// Speedups are replicas_2 over replicas_1 at equal offered QPS; zero
	// until both runs are recorded. DocsSpeedup — delivered documents per
	// second — is the headline number: it charges a shed batch for every page
	// it carried.
	GoodputSpeedup  float64 `json:"goodput_speedup"`
	AchievedSpeedup float64 `json:"achieved_speedup"`
	DocsSpeedup     float64 `json:"docs_speedup"`
}

// ScalingRun condenses one load run into the numbers the scaling comparison
// is about.
type ScalingRun struct {
	Present           bool    `json:"present"`
	Target            string  `json:"target"`
	OfferedQPS        float64 `json:"offered_qps"`
	AchievedQPS       float64 `json:"achieved_qps"`
	GoodputQPS        float64 `json:"goodput_qps"`
	GoodputDocsPerSec float64 `json:"goodput_docs_per_sec"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	ShedRate429       float64 `json:"shed_429_rate"`
	ErrorRate         float64 `json:"error_rate"` // other_http + transport_errors
	P50Ms             float64 `json:"p50_ms"`
	P99Ms             float64 `json:"p99_ms"`
	Sent              int64   `json:"sent"`
	OK                int64   `json:"ok"`
}

// ScalingSlots names the Scaling fields a merge run may target.
func ScalingSlots() []string { return []string{"replicas_1", "replicas_2", "chaos"} }

// AsScalingRun condenses this report into a scaling slot entry.
func (r *Report) AsScalingRun() ScalingRun {
	return ScalingRun{
		Present:           true,
		Target:            r.Config.Target,
		OfferedQPS:        r.Throughput.OfferedQPS,
		AchievedQPS:       r.Throughput.AchievedQPS,
		GoodputQPS:        r.Throughput.GoodputQPS,
		GoodputDocsPerSec: r.Throughput.GoodputDocsPerSec,
		CacheHitRate:      r.Serving.CacheHitRate,
		ShedRate429:       r.Rates.Shed429,
		ErrorRate:         r.Rates.Error,
		P50Ms:             r.LatencyMs.Overall.P50Ms,
		P99Ms:             r.LatencyMs.Overall.P99Ms,
		Sent:              r.Requests.Sent,
		OK:                r.Requests.OK,
	}
}

// MergeScalingInto records run under slot in the report file at path —
// creating the file from base when it does not exist yet — and recomputes
// the speedups when both replica runs are present. This is how bench-gateway
// folds its comparison runs into the committed BENCH_serve.json without
// disturbing the single-server sections bench-serve wrote.
func MergeScalingInto(path, slot string, base *Report, run ScalingRun) error {
	rep := base
	if data, err := os.ReadFile(path); err == nil {
		var onDisk Report
		if err := json.Unmarshal(data, &onDisk); err != nil {
			return fmt.Errorf("loadgen: merge scaling: decode %s: %w", path, err)
		}
		rep = &onDisk
	} else if base == nil {
		return fmt.Errorf("loadgen: merge scaling: read %s: %w", path, err)
	}
	switch slot {
	case "replicas_1":
		rep.Scaling.Replicas1 = run
	case "replicas_2":
		rep.Scaling.Replicas2 = run
	case "chaos":
		rep.Scaling.Chaos = run
	default:
		return fmt.Errorf("loadgen: merge scaling: unknown slot %q (known: %v)", slot, ScalingSlots())
	}
	if r1, r2 := rep.Scaling.Replicas1, rep.Scaling.Replicas2; r1.Present && r2.Present && r1.GoodputQPS > 0 {
		rep.Scaling.GoodputSpeedup = r2.GoodputQPS / r1.GoodputQPS
		if r1.AchievedQPS > 0 {
			rep.Scaling.AchievedSpeedup = r2.AchievedQPS / r1.AchievedQPS
		}
		if r1.GoodputDocsPerSec > 0 {
			rep.Scaling.DocsSpeedup = r2.GoodputDocsPerSec / r1.GoodputDocsPerSec
		}
	}
	return rep.WriteFile(path)
}

// WriteFile writes the report as indented JSON, the committed
// BENCH_serve.json format.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// String renders the one-screen operator summary briq-loadgen prints.
func (r *Report) String() string {
	return fmt.Sprintf(
		"offered %.1f qps → achieved %.1f qps (goodput %.1f, %.1f docs/s) over %.1fs\n"+
			"requests: %d sent / %d ok / %d unprocessable / %d shed(429) / %d deadline(504) / %d other / %d transport\n"+
			"latency ms (from scheduled arrival): p50 %.2f  p90 %.2f  p95 %.2f  p99 %.2f  max %.2f\n"+
			"serving: hit rate %.1f%% (%d hits / %d misses, %d coalesced), shed %d overloaded / %d deadline",
		r.Throughput.OfferedQPS, r.Throughput.AchievedQPS, r.Throughput.GoodputQPS,
		r.Throughput.GoodputDocsPerSec, r.Config.DurationSeconds,
		r.Requests.Sent, r.Requests.OK, r.Requests.Unprocessable, r.Requests.Shed429,
		r.Requests.Deadline504, r.Requests.OtherHTTP, r.Requests.TransportErrs,
		r.LatencyMs.Overall.P50Ms, r.LatencyMs.Overall.P90Ms, r.LatencyMs.Overall.P95Ms,
		r.LatencyMs.Overall.P99Ms, r.LatencyMs.Overall.MaxMs,
		100*r.Serving.CacheHitRate, r.Serving.Hits, r.Serving.Misses, r.Serving.Coalesced,
		r.Serving.ShedOverloaded, r.Serving.ShedDeadline)
}
