package loadgen

import (
	"encoding/json"
	"fmt"
	"os"

	"briq/internal/obs"
)

// Report is the machine-readable result of one load run — the schema of
// BENCH_serve.json. Every field is present on every run (a quiet endpoint
// reports zeros, never a missing key), so the schema golden test and any
// dashboard reading the file see the same shape regardless of traffic.
type Report struct {
	Config     ReportConfig   `json:"config"`
	Requests   RequestCounts  `json:"requests"`
	Throughput Throughput     `json:"throughput"`
	Rates      Rates          `json:"rates"`
	LatencyMs  LatencyByClass `json:"latency_ms"`
	Serving    ServingReport  `json:"serving"`
}

// ReportConfig echoes the run parameters, so a committed BENCH_serve.json
// is self-describing and two reports are comparable at a glance.
type ReportConfig struct {
	Target          string  `json:"target"`
	OfferedQPS      float64 `json:"offered_qps"`
	DurationSeconds float64 `json:"duration_seconds"`
	WarmupSeconds   float64 `json:"warmup_seconds"`
	Seed            int64   `json:"seed"`
	ZipfS           float64 `json:"zipf_s"`
	BatchPages      int     `json:"batch_pages"`
	CorpusPages     int     `json:"corpus_pages"`
	Mix             Mix     `json:"mix"`
}

// RequestCounts classifies every measured request by outcome. Sent always
// equals the sum of the outcome buckets.
type RequestCounts struct {
	Scheduled     int64 `json:"scheduled"`        // arrivals in the measured window
	Sent          int64 `json:"sent"`             // actually issued (== scheduled unless the run was cancelled)
	OK            int64 `json:"ok"`               // 200
	Unprocessable int64 `json:"unprocessable"`    // 422 no_tables / no_mentions / unprocessable
	Shed429       int64 `json:"shed_429"`         // 429 overloaded (admission control)
	Deadline504   int64 `json:"deadline_504"`     // 504 deadline
	OtherHTTP     int64 `json:"other_http"`       // any other status
	TransportErrs int64 `json:"transport_errors"` // no HTTP response (dial/timeout/reset)
}

func (c RequestCounts) completed() int64 {
	return c.OK + c.Unprocessable + c.Shed429 + c.Deadline504 + c.OtherHTTP
}

// Throughput compares what was offered with what came back.
type Throughput struct {
	OfferedQPS  float64 `json:"offered_qps"`  // scheduled arrivals / schedule window
	AchievedQPS float64 `json:"achieved_qps"` // completed HTTP responses / wall clock incl. drain
	GoodputQPS  float64 `json:"goodput_qps"`  // 200s / wall clock incl. drain
}

// Rates are the outcome counts as fractions of sent requests — the
// shed-rate numbers the ROADMAP's scaling items regress against.
type Rates struct {
	Shed429     float64 `json:"shed_429"`
	Deadline504 float64 `json:"deadline_504"`
	Error       float64 `json:"error"` // other_http + transport_errors
}

// LatencySummary is the flat quantile view of one latency population. All
// values are milliseconds, measured from each request's *scheduled* arrival
// time (see the package comment on coordinated omission).
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean"`
	P50Ms  float64 `json:"p50"`
	P90Ms  float64 `json:"p90"`
	P95Ms  float64 `json:"p95"`
	P99Ms  float64 `json:"p99"`
	MaxMs  float64 `json:"max"`
}

func summarize(h *obs.Histogram) LatencySummary {
	s := h.Snapshot()
	return LatencySummary{
		Count:  s.Count,
		MeanMs: s.MeanMillis,
		P50Ms:  s.P50Millis,
		P90Ms:  s.P90Millis,
		P95Ms:  s.P95Millis,
		P99Ms:  s.P99Millis,
		MaxMs:  s.MaxMillis,
	}
}

// LatencyByClass breaks latency out overall and per endpoint.
type LatencyByClass struct {
	Overall   LatencySummary `json:"overall"`
	Align     LatencySummary `json:"align"`
	Batch     LatencySummary `json:"batch"`
	Summarize LatencySummary `json:"summarize"`
}

// ServingReport is the server's own view of the measured window: the
// /metrics serving-counter deltas plus the derived cache hit rate. ScrapeOK
// is false when either scrape failed (the deltas are then zero, and the
// client-side counts are the only record of the run).
type ServingReport struct {
	ScrapeOK       bool    `json:"scrape_ok"`
	Hits           int64   `json:"hits"`
	Misses         int64   `json:"misses"`
	Coalesced      int64   `json:"coalesced"`
	Stores         int64   `json:"stores"`
	ShedOverloaded int64   `json:"shed_overloaded"`
	ShedDeadline   int64   `json:"shed_deadline"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

// WriteFile writes the report as indented JSON, the committed
// BENCH_serve.json format.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// String renders the one-screen operator summary briq-loadgen prints.
func (r *Report) String() string {
	return fmt.Sprintf(
		"offered %.1f qps → achieved %.1f qps (goodput %.1f) over %.1fs\n"+
			"requests: %d sent / %d ok / %d unprocessable / %d shed(429) / %d deadline(504) / %d other / %d transport\n"+
			"latency ms (from scheduled arrival): p50 %.2f  p90 %.2f  p95 %.2f  p99 %.2f  max %.2f\n"+
			"serving: hit rate %.1f%% (%d hits / %d misses, %d coalesced), shed %d overloaded / %d deadline",
		r.Throughput.OfferedQPS, r.Throughput.AchievedQPS, r.Throughput.GoodputQPS, r.Config.DurationSeconds,
		r.Requests.Sent, r.Requests.OK, r.Requests.Unprocessable, r.Requests.Shed429,
		r.Requests.Deadline504, r.Requests.OtherHTTP, r.Requests.TransportErrs,
		r.LatencyMs.Overall.P50Ms, r.LatencyMs.Overall.P90Ms, r.LatencyMs.Overall.P95Ms,
		r.LatencyMs.Overall.P99Ms, r.LatencyMs.Overall.MaxMs,
		100*r.Serving.CacheHitRate, r.Serving.Hits, r.Serving.Misses, r.Serving.Coalesced,
		r.Serving.ShedOverloaded, r.Serving.ShedDeadline)
}
