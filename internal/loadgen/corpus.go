package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Page is one request payload: a corpus page the generator can POST to the
// alignment endpoints.
type Page struct {
	ID   string
	HTML string
}

// LoadCorpusDir loads the pages of a corpusgen-produced directory, in
// manifest order when manifest.ndjson is present (the streaming corpusgen
// always writes one) and in sorted-filename order as a fallback for
// directories of bare *.html files. Zipf rank follows load order: the first
// page is the hottest.
func LoadCorpusDir(dir string) ([]Page, error) {
	if pages, err := loadManifest(dir); err == nil {
		return pages, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	paths, err := filepath.Glob(filepath.Join(dir, "*.html"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("loadgen: no manifest.ndjson and no *.html pages in %s", dir)
	}
	pages := make([]Page, 0, len(paths))
	for _, path := range paths {
		html, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		pages = append(pages, Page{
			ID:   strings.TrimSuffix(filepath.Base(path), ".html"),
			HTML: string(html),
		})
	}
	return pages, nil
}

// manifestEntry mirrors the fields of corpus.ManifestEntry this package
// needs; decoding locally avoids importing the generator into the driver.
type manifestEntry struct {
	ID   string `json:"id"`
	File string `json:"file"`
}

func loadManifest(dir string) ([]Page, error) {
	f, err := os.Open(filepath.Join(dir, "manifest.ndjson"))
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var pages []Page
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e manifestEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("loadgen: manifest line %d: %v", len(pages)+1, err)
		}
		html, err := os.ReadFile(filepath.Join(dir, e.File))
		if err != nil {
			return nil, err
		}
		pages = append(pages, Page{ID: e.ID, HTML: string(html)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pages) == 0 {
		return nil, fmt.Errorf("loadgen: empty manifest in %s", dir)
	}
	return pages, nil
}
