package loadgen

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// schemaLines renders the shape of a decoded JSON value — field paths and
// types, never values — the same way the briq-server /metrics golden does.
func schemaLines(prefix string, v any, out *[]string) {
	switch t := v.(type) {
	case map[string]any:
		*out = append(*out, prefix+": object")
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			schemaLines(prefix+"."+k, t[k], out)
		}
	case []any:
		*out = append(*out, prefix+": array")
		if len(t) > 0 {
			schemaLines(prefix+"[]", t[0], out)
		}
	case float64:
		*out = append(*out, prefix+": number")
	case string:
		*out = append(*out, prefix+": string")
	case bool:
		*out = append(*out, prefix+": boolean")
	case nil:
		*out = append(*out, prefix+": null")
	default:
		*out = append(*out, fmt.Sprintf("%s: UNEXPECTED %T", prefix, v))
	}
}

func reportSchema(t *testing.T, data []byte) string {
	t.Helper()
	var v map[string]any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	var lines []string
	schemaLines("report", v, &lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestBenchServeSchema locks the BENCH_serve.json shape: a report from a
// real (fake-server) run must match testdata/bench_serve_schema.golden
// line for line, and so must the committed BENCH_serve.json at the repo
// root — the one the ROADMAP's scaling items regress against. Run with
// -update after an intentional schema change.
func TestBenchServeSchema(t *testing.T) {
	ts := httptest.NewServer(&fakeServer{})
	defer ts.Close()

	cfg := Config{
		BaseURL:  ts.URL,
		QPS:      300,
		Duration: 300 * time.Millisecond,
		Seed:     1,
	}
	rep, err := Run(context.Background(), cfg, []Page{{ID: "p0", HTML: "<html/>"}, {ID: "p1", HTML: "<html/>"}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got := reportSchema(t, data)

	goldenPath := filepath.Join("testdata", "bench_serve_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("report schema drifted from golden.\nGot:\n%s\nWant:\n%s", got, want)
	}

	// The committed artifact must carry the same schema as a fresh run.
	committed, err := os.ReadFile(filepath.Join("..", "..", "BENCH_serve.json"))
	if err != nil {
		t.Fatalf("read committed BENCH_serve.json (run make bench-serve): %v", err)
	}
	if got := reportSchema(t, committed); got != string(want) {
		t.Errorf("committed BENCH_serve.json schema drifted from golden.\nGot:\n%s\nWant:\n%s", got, want)
	}
}
