// Package loadgen is an open-loop HTTP load generator for briq-server: it
// drives a live server at a configured request rate over a corpusgen-made
// corpus and reports latency quantiles, achieved throughput, cache hit rate
// and shed rates as a machine-readable BENCH_serve.json.
//
// # Open loop, not closed loop
//
// Every throughput number the repo produced before this package came from a
// closed-loop harness: N workers issue a request, wait for the response,
// then issue the next one. Closed loops are the right tool for measuring
// capacity (how fast can the system go when the client never outruns it)
// but they systematically lie about latency under load, because the system
// under test controls its own arrival rate — when the server stalls, the
// clients stall with it, and the stall window receives fewer requests
// exactly when users would have been piling in. That feedback is the
// coordinated-omission problem: the slow samples that matter most are the
// ones a closed loop never takes.
//
// This generator is open-loop: arrivals follow a fixed schedule derived
// only from the configured QPS and seed, computed before the first request
// is sent. A request whose predecessor is still in flight is sent anyway,
// concurrency grows without bound if the server falls behind, and — the
// other half of avoiding coordinated omission — each request's latency is
// measured from its *scheduled* arrival time, not from when the sender
// goroutine actually got around to writing bytes. A request that waited
// 300ms behind a stalled connection pool and then took 20ms of server time
// reports 320ms, which is what a user arriving at that moment would have
// experienced.
//
// # Workload shape
//
// Page popularity is Zipf-distributed (rank 0 = the hottest page), matching
// web traffic and deliberately exercising the serving layer: a zipfian
// request stream is what makes the content-addressed cache and single-flight
// coalescing earn their keep, and the measured hit rate is only meaningful
// under realistic skew. The endpoint mix (/align, /align/batch, /summarize)
// is a weighted profile; the whole schedule — arrival times, endpoint
// choices, page choices — is a pure function of the seed, so two runs
// against equally-warm servers are directly comparable.
//
// # Measurement
//
// Latencies land in internal/obs histograms with HDR-style log-spaced
// buckets (ExponentialBounds: bounded relative error at every magnitude, so
// tail quantiles are as trustworthy as the median). Shed traffic is counted
// client-side from the envelope status codes (429 overloaded, 504 deadline)
// and cross-checked against the server's own /metrics serving counters,
// scraped immediately before and after the run; the cache hit rate is the
// hits/(hits+misses) delta over the run window.
package loadgen
