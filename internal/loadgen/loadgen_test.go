package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("align=0.7, batch=0.2,summarize=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Align: 0.7, Batch: 0.2, Summarize: 0.1}) {
		t.Fatalf("mix = %+v", m)
	}
	if m, err := ParseMix("align=1"); err != nil || m != (Mix{Align: 1}) {
		t.Fatalf("align-only mix = %+v, %v", m, err)
	}
	for _, bad := range []string{"align", "align=x", "foo=1", "align=-1", "", "align=0,batch=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q): expected error", bad)
		}
	}
}

func TestBuildScheduleDeterministic(t *testing.T) {
	cfg := Config{QPS: 200, Duration: 2 * time.Second, Seed: 9, BatchPages: 4}
	a := BuildSchedule(cfg, 20)
	b := BuildSchedule(cfg, 20)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	// ~200 qps over 2s ⇒ ~400 arrivals; Poisson noise stays well inside 3x.
	if len(a) < 200 || len(a) > 800 {
		t.Errorf("schedule length = %d, want ≈400", len(a))
	}
	prev := time.Duration(-1)
	counts := map[string]int{}
	pageHits := map[int]int{}
	for _, r := range a {
		if r.At < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = r.At
		if r.At >= cfg.Duration {
			t.Fatalf("arrival %v beyond horizon %v", r.At, cfg.Duration)
		}
		counts[r.Endpoint]++
		for _, p := range r.Pages {
			if p < 0 || p >= 20 {
				t.Fatalf("page index %d out of range", p)
			}
			pageHits[p]++
		}
		if r.Endpoint == EndpointBatch {
			if len(r.Pages) != 4 {
				t.Fatalf("batch with %d pages, want 4", len(r.Pages))
			}
			seen := map[int]bool{}
			for _, p := range r.Pages {
				if seen[p] {
					t.Fatal("duplicate page in batch request")
				}
				seen[p] = true
			}
		}
	}
	for _, ep := range []string{EndpointAlign, EndpointBatch, EndpointSummarize} {
		if counts[ep] == 0 {
			t.Errorf("default mix produced no %s requests", ep)
		}
	}
	// Zipf skew: rank 0 must dominate the tail.
	if pageHits[0] <= pageHits[19] {
		t.Errorf("no popularity skew: page0=%d page19=%d", pageHits[0], pageHits[19])
	}

	if got := BuildSchedule(Config{QPS: 100, Duration: time.Second, Seed: 1}, 1); len(got) == 0 {
		t.Error("single-page corpus produced empty schedule")
	} else {
		for _, r := range got {
			for _, p := range r.Pages {
				if p != 0 {
					t.Fatal("single-page corpus scheduled nonzero page index")
				}
			}
		}
	}
}

func TestBuildScheduleBatchBlocks(t *testing.T) {
	cfg := Config{QPS: 300, Duration: 2 * time.Second, Seed: 9, BatchPages: 4,
		BatchBlocks: true, Mix: Mix{Batch: 1}}
	const npages = 22 // 5 whole blocks + 2 tail pages
	sched := BuildSchedule(cfg, npages)
	if !reflect.DeepEqual(sched, BuildSchedule(cfg, npages)) {
		t.Fatal("same config produced different schedules")
	}
	blockHits := map[int]int{}
	for _, r := range sched {
		if r.Endpoint != EndpointBatch {
			t.Fatalf("batch-only mix scheduled %s", r.Endpoint)
		}
		if len(r.Pages) != 4 {
			t.Fatalf("batch with %d pages, want 4", len(r.Pages))
		}
		// Every batch must be one aligned block: pages [4b, 4b+4), so the
		// request body is identical on every recurrence and a consistent-hash
		// gateway routes the block to one replica.
		b := r.Pages[0] / 4
		for j, p := range r.Pages {
			if p != b*4+j {
				t.Fatalf("batch pages %v are not aligned block %d", r.Pages, b)
			}
		}
		if b >= npages/4 {
			t.Fatalf("block %d reaches into the partial tail (npages=%d)", b, npages)
		}
		blockHits[b]++
	}
	if len(sched) == 0 {
		t.Fatal("empty schedule")
	}
	if len(blockHits) < 2 {
		t.Fatalf("only %d distinct blocks scheduled", len(blockHits))
	}
	// Same Zipf skew over block ranks as over page ranks.
	if blockHits[0] <= blockHits[4] {
		t.Errorf("no block popularity skew: block0=%d block4=%d", blockHits[0], blockHits[4])
	}
}

// fakeServer mimics the slice of briq-server the harness touches: the three
// POST endpoints answering a scripted status sequence, and GET /metrics with
// live serving counters — so the test controls exactly which outcomes occur
// and can check the report's accounting to the request.
type fakeServer struct {
	n        atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	shed     atomic.Int64
	delay    time.Duration
	statusAt func(n int64) int
}

func (f *fakeServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// The harness speaks the versioned surface; the legacy alias serves the
	// same handlers, so the fake accepts both.
	path := strings.TrimPrefix(r.URL.Path, "/v1")
	if path == "/metrics" {
		fmt.Fprintf(w, `{"serving":{"hits":%d,"misses":%d,"coalesced":0,"stores":%d,"shed_overloaded":%d,"shed_deadline":0}}`,
			f.hits.Load(), f.misses.Load(), f.misses.Load(), f.shed.Load())
		return
	}
	if path == "/healthz" {
		fmt.Fprintln(w, "ok")
		return
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	status := http.StatusOK
	if f.statusAt != nil {
		status = f.statusAt(f.n.Add(1))
	}
	switch status {
	case http.StatusOK:
		// Even requests are cache hits, odds misses: a fixed 50% hit rate.
		if f.n.Load()%2 == 0 {
			f.hits.Add(1)
		} else {
			f.misses.Add(1)
		}
	case http.StatusTooManyRequests:
		f.shed.Add(1)
	}
	w.WriteHeader(status)
	fmt.Fprintln(w, `{"result":null,"error":null}`)
}

// TestRunAccounting drives the fake server with a scripted outcome pattern
// and checks every bucket of the report: client-side status counts, the
// rates derived from them, and the serving deltas scraped from /metrics.
func TestRunAccounting(t *testing.T) {
	fake := &fakeServer{statusAt: func(n int64) int {
		switch n % 5 {
		case 0:
			return http.StatusTooManyRequests
		case 1:
			return http.StatusGatewayTimeout
		case 2:
			return http.StatusUnprocessableEntity
		default:
			return http.StatusOK
		}
	}}
	ts := httptest.NewServer(fake)
	defer ts.Close()

	cfg := Config{
		BaseURL:  ts.URL,
		QPS:      400,
		Duration: 500 * time.Millisecond,
		Seed:     3,
		Mix:      Mix{Align: 1},
	}
	rep, err := Run(context.Background(), cfg, []Page{{ID: "p0", HTML: "<html/>"}, {ID: "p1", HTML: "<html/>"}})
	if err != nil {
		t.Fatal(err)
	}

	c := rep.Requests
	if c.Sent == 0 || c.Sent != c.Scheduled {
		t.Fatalf("sent %d / scheduled %d", c.Sent, c.Scheduled)
	}
	if got := c.OK + c.Unprocessable + c.Shed429 + c.Deadline504 + c.OtherHTTP + c.TransportErrs; got != c.Sent {
		t.Fatalf("outcome buckets sum to %d, sent %d", got, c.Sent)
	}
	if c.TransportErrs != 0 || c.OtherHTTP != 0 {
		t.Fatalf("unexpected errors: %+v", c)
	}
	// The script yields 1/5 of each failure class (±1 for the partial cycle).
	for name, got := range map[string]int64{"429": c.Shed429, "504": c.Deadline504, "422": c.Unprocessable} {
		want := c.Sent / 5
		if got < want-1 || got > want+1 {
			t.Errorf("%s count = %d, want ≈%d", name, got, want)
		}
	}
	if rep.Rates.Shed429 == 0 || rep.Rates.Shed429 != float64(c.Shed429)/float64(c.Sent) {
		t.Errorf("shed rate = %v, counts %d/%d", rep.Rates.Shed429, c.Shed429, c.Sent)
	}

	// Server-side cross-check: the /metrics deltas must agree with what the
	// fake actually did — sheds match the client's 429 count exactly.
	if !rep.Serving.ScrapeOK {
		t.Fatal("scrape failed")
	}
	if rep.Serving.ShedOverloaded != c.Shed429 {
		t.Errorf("server sheds %d, client 429s %d", rep.Serving.ShedOverloaded, c.Shed429)
	}
	if rep.Serving.CacheHitRate < 0.3 || rep.Serving.CacheHitRate > 0.7 {
		t.Errorf("hit rate = %v, fake serves ≈50%%", rep.Serving.CacheHitRate)
	}
	if rep.LatencyMs.Overall.Count != c.Sent {
		t.Errorf("latency count %d, sent %d", rep.LatencyMs.Overall.Count, c.Sent)
	}
	if rep.Throughput.AchievedQPS <= 0 || rep.Throughput.GoodputQPS <= 0 {
		t.Errorf("throughput not computed: %+v", rep.Throughput)
	}
}

// TestRunMeasuresFromScheduledTime pins the anti-coordinated-omission
// contract: a server that stalls every response by 40ms must show ≥40ms at
// the median even though the generator never waits for it — latency is
// charged from the scheduled arrival, not from when the client got around
// to sending.
func TestRunMeasuresFromScheduledTime(t *testing.T) {
	fake := &fakeServer{delay: 40 * time.Millisecond}
	ts := httptest.NewServer(fake)
	defer ts.Close()

	cfg := Config{
		BaseURL:  ts.URL,
		QPS:      150,
		Duration: 400 * time.Millisecond,
		Seed:     5,
		Mix:      Mix{Align: 1},
	}
	rep, err := Run(context.Background(), cfg, []Page{{ID: "p0", HTML: "<html/>"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests.OK == 0 {
		t.Fatal("no successful requests")
	}
	// The histogram bucket holding 40ms spans ~12%; allow generous slack
	// below and none of the flakiness of an upper bound.
	if rep.LatencyMs.Overall.P50Ms < 30 {
		t.Errorf("p50 = %.2fms, server floor is 40ms", rep.LatencyMs.Overall.P50Ms)
	}
}

func TestRunWarmupExcluded(t *testing.T) {
	fake := &fakeServer{}
	ts := httptest.NewServer(fake)
	defer ts.Close()

	cfg := Config{
		BaseURL:  ts.URL,
		QPS:      200,
		Duration: 300 * time.Millisecond,
		Warmup:   300 * time.Millisecond,
		Seed:     7,
		Mix:      Mix{Align: 1},
	}
	rep, err := Run(context.Background(), cfg, []Page{{ID: "p0", HTML: "<html/>"}})
	if err != nil {
		t.Fatal(err)
	}
	sched := BuildSchedule(cfg, 1)
	var inWindow int64
	for _, r := range sched {
		if r.At >= cfg.Warmup {
			inWindow++
		}
	}
	if rep.Requests.Scheduled != inWindow {
		t.Errorf("scheduled = %d, arrivals in measured window = %d", rep.Requests.Scheduled, inWindow)
	}
	if int64(len(sched)) == inWindow {
		t.Error("warmup window scheduled nothing — test is vacuous")
	}
}

func TestLoadCorpusDir(t *testing.T) {
	dir := t.TempDir()
	manifest := `{"id":"pg0","file":"pg0.html"}` + "\n" + `{"id":"pg1","file":"pg1.html"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "manifest.ndjson"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pg0", "pg1"} {
		if err := os.WriteFile(filepath.Join(dir, name+".html"), []byte("<html>"+name+"</html>"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pages, err := LoadCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 2 || pages[0].ID != "pg0" || pages[1].ID != "pg1" {
		t.Fatalf("pages = %+v", pages)
	}

	// Fallback: bare *.html directory, sorted order.
	bare := t.TempDir()
	for _, name := range []string{"b.html", "a.html"} {
		if err := os.WriteFile(filepath.Join(bare, name), []byte("<html/>"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pages, err = LoadCorpusDir(bare)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 2 || pages[0].ID != "a" {
		t.Fatalf("fallback pages = %+v", pages)
	}

	if _, err := LoadCorpusDir(t.TempDir()); err == nil {
		t.Error("empty dir should fail")
	}
}

// TestReportJSONRoundTrip guards the report against silent field loss: every
// field written must come back.
func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Requests: RequestCounts{Sent: 10, OK: 7, Shed429: 2, Deadline504: 1},
		Serving:  ServingReport{ScrapeOK: true, Hits: 5, Misses: 5, CacheHitRate: 0.5},
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, &back) {
		t.Fatalf("round trip lost data:\n%+v\n%+v", rep, &back)
	}
}
