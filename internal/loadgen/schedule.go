package loadgen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Endpoint names, as they appear in schedules, reports and the -mix flag.
const (
	EndpointAlign     = "align"
	EndpointBatch     = "batch"
	EndpointSummarize = "summarize"
)

// Mix is the endpoint profile: relative weights for /align, /align/batch
// and /summarize. Weights need not sum to 1; only ratios matter. The zero
// Mix means "use the default profile" (mostly single-page aligns, matching
// interactive traffic, with a batch and summarize minority).
type Mix struct {
	Align     float64 `json:"align"`
	Batch     float64 `json:"batch"`
	Summarize float64 `json:"summarize"`
}

// DefaultMix is the endpoint profile used when Config.Mix is zero.
var DefaultMix = Mix{Align: 0.70, Batch: 0.15, Summarize: 0.15}

func (m Mix) zero() bool { return m.Align == 0 && m.Batch == 0 && m.Summarize == 0 }

func (m Mix) total() float64 { return m.Align + m.Batch + m.Summarize }

// ParseMix parses the -mix flag syntax: comma-separated name=weight pairs,
// e.g. "align=0.7,batch=0.15,summarize=0.15". Omitted endpoints get weight
// zero; unknown names are an error.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("parse mix %q: %q is not name=weight", s, part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("parse mix %q: bad weight %q", s, val)
		}
		switch strings.TrimSpace(name) {
		case EndpointAlign:
			m.Align = w
		case EndpointBatch:
			m.Batch = w
		case EndpointSummarize:
			m.Summarize = w
		default:
			return Mix{}, fmt.Errorf("parse mix %q: unknown endpoint %q (known: %s, %s, %s)",
				s, name, EndpointAlign, EndpointBatch, EndpointSummarize)
		}
	}
	if m.zero() {
		return Mix{}, fmt.Errorf("parse mix %q: all weights zero", s)
	}
	return m, nil
}

// Config parameterizes one load run. The zero value of every optional field
// selects a sensible default (see withDefaults); BaseURL is required.
type Config struct {
	BaseURL    string        // briq-server root, e.g. http://127.0.0.1:8080
	QPS        float64       // offered arrival rate (default 50)
	Duration   time.Duration // measured window (default 10s)
	Warmup     time.Duration // unmeasured lead-in at the same rate (default 0)
	Seed       int64         // schedule seed; same seed = same schedule
	ZipfS      float64       // popularity skew exponent, > 1 (default 1.2)
	Mix        Mix           // endpoint profile (zero = DefaultMix)
	BatchPages int           // pages per /align/batch request (default 8)
	// BatchBlocks switches batch construction from fresh Zipf draws (every
	// batch a unique page combination — interactive, body never repeats) to a
	// fixed population of non-overlapping page blocks: block b is always
	// pages [b·BatchPages, b·BatchPages+BatchPages), drawn with the same Zipf
	// skew over block ranks. Identical batch bodies recur, which is what
	// models bulk corpus (re)processing — and what lets a consistent-hash
	// gateway pin each block, and its documents' cache entries, to exactly
	// one replica. Without it batch bodies are all distinct, every replica
	// ends up caching every hot document, and replica scaling measures only
	// CPU contention.
	BatchBlocks bool
	Timeout     time.Duration // per-request client timeout (default 30s)
}

func (c Config) withDefaults() Config {
	if c.QPS <= 0 {
		c.QPS = 50
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Mix.zero() {
		c.Mix = DefaultMix
	}
	if c.BatchPages <= 0 {
		c.BatchPages = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Request is one scheduled arrival: when (relative to run start), which
// endpoint, and which corpus pages to post.
type Request struct {
	At       time.Duration
	Endpoint string
	Pages    []int // indices into the corpus page slice
}

// BuildSchedule precomputes the full arrival schedule for a run over npages
// corpus pages: a Poisson process at cfg.QPS spanning warmup + duration,
// each arrival assigned an endpoint by the mix weights and pages by a Zipf
// draw (rank 0 — the first corpus page — is the hottest). The schedule is a
// pure function of (cfg, npages): computing it before the first request is
// sent is what makes the generator open-loop, and seeding it is what makes
// two runs comparable.
func BuildSchedule(cfg Config, npages int) []Request {
	cfg = cfg.withDefaults()
	if npages < 1 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if npages > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(npages-1))
	}
	pick := func() int {
		if zipf == nil {
			return 0
		}
		return int(zipf.Uint64())
	}
	// Block mode gets its own Zipf over block ranks, so block popularity has
	// the same skew as page popularity rather than a folded version of it.
	var blockZipf *rand.Zipf
	if cfg.BatchBlocks && cfg.BatchPages < npages {
		if nblocks := npages / cfg.BatchPages; nblocks > 1 {
			blockZipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(nblocks-1))
		}
	}

	horizon := cfg.Warmup + cfg.Duration
	total := cfg.Mix.total()
	var sched []Request
	// Exponential inter-arrival times: a Poisson process, the standard
	// open-loop arrival model — bursty the way independent clients are,
	// rather than the metronome spacing of 1/QPS.
	for at := time.Duration(0); ; {
		at += time.Duration(rng.ExpFloat64() / cfg.QPS * float64(time.Second))
		if at >= horizon {
			break
		}
		r := Request{At: at}
		switch u := rng.Float64() * total; {
		case u < cfg.Mix.Align:
			r.Endpoint = EndpointAlign
			r.Pages = []int{pick()}
		case u < cfg.Mix.Align+cfg.Mix.Batch:
			r.Endpoint = EndpointBatch
			n := cfg.BatchPages
			if n > npages {
				n = npages
			}
			if cfg.BatchBlocks {
				// Aligned block: rank 0 is the hottest block. Tail pages that
				// don't fill a whole block are reached only by single-page
				// endpoints.
				b := 0
				if blockZipf != nil {
					b = int(blockZipf.Uint64())
				}
				pages := make([]int, n)
				for j := range pages {
					pages[j] = b*n + j
				}
				r.Pages = pages
				sched = append(sched, r)
				continue
			}
			pages := make([]int, 0, n)
			seen := map[int]bool{}
			for len(pages) < n {
				p := pick()
				if seen[p] {
					// Batch pages must be distinct (the server rejects
					// duplicate page IDs); fall forward to the next free
					// rank so hot batches stay hot without re-rolling
					// forever on a tiny corpus.
					for seen[p] {
						p = (p + 1) % npages
					}
				}
				seen[p] = true
				pages = append(pages, p)
			}
			r.Pages = pages
		default:
			r.Endpoint = EndpointSummarize
			r.Pages = []int{pick()}
		}
		sched = append(sched, r)
	}
	return sched
}
