package loadgen

import (
	"context"

	"briq/client"
)

// ServingCounters is the slice of briq-server's GET /metrics the harness
// cross-checks its client-side accounting against: the serving-layer event
// counters (internal/serve's stable schema). Scraped before and after a run,
// their deltas are the server's own record of what the run did to the cache
// and the admission gate. The type lives in package client — the one place
// in the repo that decodes API responses — and is aliased here for the
// harness's report schema.
type ServingCounters = client.ServingCounters

// ScrapeServing fetches the target's metrics and extracts the serving
// counters.
func ScrapeServing(ctx context.Context, c *client.Client) (ServingCounters, error) {
	m, err := c.Metrics(ctx)
	if err != nil {
		return ServingCounters{}, err
	}
	return m.Serving, nil
}
