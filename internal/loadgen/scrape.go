package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// ServingCounters is the slice of briq-server's GET /metrics the harness
// cross-checks its client-side accounting against: the serving-layer event
// counters (internal/serve's stable schema). Scraped before and after a run,
// their deltas are the server's own record of what the run did to the cache
// and the admission gate.
type ServingCounters struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	Coalesced      int64 `json:"coalesced"`
	Stores         int64 `json:"stores"`
	ShedOverloaded int64 `json:"shed_overloaded"`
	ShedDeadline   int64 `json:"shed_deadline"`
}

// Sub returns the counter-by-counter delta c - prev.
func (c ServingCounters) Sub(prev ServingCounters) ServingCounters {
	return ServingCounters{
		Hits:           c.Hits - prev.Hits,
		Misses:         c.Misses - prev.Misses,
		Coalesced:      c.Coalesced - prev.Coalesced,
		Stores:         c.Stores - prev.Stores,
		ShedOverloaded: c.ShedOverloaded - prev.ShedOverloaded,
		ShedDeadline:   c.ShedDeadline - prev.ShedDeadline,
	}
}

// HitRate is hits / (hits + misses), the cache hit rate over whatever window
// the counters cover; 0 when the cache saw no traffic.
func (c ServingCounters) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// ScrapeServing fetches GET {base}/metrics and extracts the serving
// counters.
func ScrapeServing(client *http.Client, base string) (ServingCounters, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return ServingCounters{}, fmt.Errorf("scrape metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return ServingCounters{}, fmt.Errorf("scrape metrics: status %d", resp.StatusCode)
	}
	var payload struct {
		Serving ServingCounters `json:"serving"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return ServingCounters{}, fmt.Errorf("scrape metrics: decode: %w", err)
	}
	return payload.Serving, nil
}
