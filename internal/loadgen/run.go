package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"briq/client"
	"briq/internal/api"
	"briq/internal/obs"
)

// latencyBounds is the HDR-style bucket layout for request latencies:
// 100µs to 2 minutes at 20 buckets per decade (~12% relative quantile
// error at every magnitude — see obs.ExponentialBounds).
func latencyBounds() []int64 {
	return obs.ExponentialBounds(100*time.Microsecond, 2*time.Minute, 20)
}

// Run executes one open-loop load run against a live briq-server and
// returns the report. The schedule is computed up front (BuildSchedule);
// each request fires at its scheduled time whether or not earlier requests
// have returned, and its latency is measured from that scheduled time.
// Requests arriving during cfg.Warmup are sent but not measured, and the
// serving counters are scraped at the warmup boundary so the report's
// serving deltas cover exactly the measured window. ctx cancels the run
// early; whatever was measured so far is still reported.
func Run(ctx context.Context, cfg Config, pages []Page) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(pages) == 0 {
		return nil, fmt.Errorf("loadgen: empty corpus")
	}
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: no base URL")
	}
	sched := BuildSchedule(cfg, len(pages))

	// The open loop needs one connection per concurrent request; the
	// transport must not throttle below the offered concurrency or the
	// harness would reintroduce the coordination it exists to avoid. Base-URL
	// normalization (scheme default, trailing slashes, reverse-proxy base
	// paths) is the client's job; retries stay off so every shed response is
	// seen — and counted — exactly once.
	c, err := client.New(cfg.BaseURL, client.WithHTTPClient(&http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
			IdleConnTimeout:     90 * time.Second,
		},
	}))
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	base := c.BaseURL()

	rec := newRecorder()

	// Scrape the serving counters at the warmup boundary and again after the
	// last response: the delta is the server-side record of the measured
	// window. Without a warmup the boundary is before the first request, so
	// the scrape runs synchronously and the window is exact (the accounting
	// tests pin client counts == server deltas on warmup-free runs); with a
	// warmup, traffic is in flight at the boundary and the delta is
	// approximate by a request or two — the counters themselves are atomic.
	var before ServingCounters
	var beforeErr error
	scraped := make(chan struct{})
	if cfg.Warmup == 0 {
		before, beforeErr = ScrapeServing(ctx, c)
		close(scraped)
	} else {
		go func() {
			defer close(scraped)
			select {
			case <-time.After(cfg.Warmup):
			case <-ctx.Done():
				return
			}
			before, beforeErr = ScrapeServing(ctx, c)
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	var sent, scheduled int64
	for _, req := range sched {
		measured := req.At >= cfg.Warmup
		if measured {
			scheduled++
		}
		if d := time.Until(start.Add(req.At)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		if measured {
			sent++
		}
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			status, err := send(ctx, c, pages, req)
			if measured {
				rec.record(req.Endpoint, len(req.Pages), time.Since(start.Add(req.At)), status, err)
			}
		}(req)
	}
	wg.Wait()
	wall := time.Since(start) - cfg.Warmup
	if wall <= 0 {
		wall = time.Since(start)
	}

	<-scraped
	serving := ServingReport{}
	if beforeErr == nil && ctx.Err() == nil {
		// A non-monotone delta means the scraped population shrank mid-window
		// (a chaos run killed a replica out of the gateway's aggregate); the
		// delta is then not a record of this run, so report the scrape failed
		// rather than derive a fictional hit rate from it.
		if after, err := ScrapeServing(ctx, c); err == nil && after.Sub(before).Monotone() {
			d := after.Sub(before)
			serving = ServingReport{
				ScrapeOK:       true,
				Hits:           d.Hits,
				Misses:         d.Misses,
				Coalesced:      d.Coalesced,
				Stores:         d.Stores,
				ShedOverloaded: d.ShedOverloaded,
				ShedDeadline:   d.ShedDeadline,
				CacheHitRate:   d.HitRate(),
			}
		}
	}

	return rec.report(cfg, base, len(pages), scheduled, sent, wall, serving), nil
}

// send issues one scheduled request through the client's raw path — URL
// composition and transport are the client's, but the response body is
// drained without decoding (the harness accounts statuses, it does not
// consume results) — and returns the HTTP status, or 0 with an error when no
// response arrived.
func send(ctx context.Context, c *client.Client, pages []Page, req Request) (int, error) {
	var path, contentType string
	var body []byte
	switch req.Endpoint {
	case EndpointAlign, EndpointSummarize:
		path = api.Versioned("/" + req.Endpoint)
		contentType = "text/html"
		body = []byte(pages[req.Pages[0]].HTML)
	case EndpointBatch:
		path = api.Versioned("/align/batch")
		contentType = "application/json"
		payload := struct {
			Pages []client.Page `json:"pages"`
		}{}
		for _, i := range req.Pages {
			payload.Pages = append(payload.Pages, client.Page{ID: pages[i].ID, HTML: pages[i].HTML})
		}
		body, _ = json.Marshal(payload)
	default:
		return 0, fmt.Errorf("loadgen: unknown endpoint %q", req.Endpoint)
	}
	resp, err := c.Do(ctx, http.MethodPost, path, contentType, body)
	if err != nil {
		return 0, err
	}
	// Latency covers the full response, not just the first header byte.
	client.Drain(resp)
	return resp.StatusCode, nil
}

// recorder accumulates measured outcomes; all methods are goroutine-safe.
type recorder struct {
	mu       sync.Mutex
	counts   RequestCounts
	sentDocs int64 // page-weighted sent requests
	okDocs   int64 // page-weighted 200s: documents actually delivered
	all      *obs.Histogram
	byEP     map[string]*obs.Histogram
}

func newRecorder() *recorder {
	bounds := latencyBounds()
	return &recorder{
		all: obs.NewHistogramBounds(bounds),
		byEP: map[string]*obs.Histogram{
			EndpointAlign:     obs.NewHistogramBounds(bounds),
			EndpointBatch:     obs.NewHistogramBounds(bounds),
			EndpointSummarize: obs.NewHistogramBounds(bounds),
		},
	}
}

func (r *recorder) record(endpoint string, docs int, latency time.Duration, status int, err error) {
	r.all.Observe(latency)
	if h := r.byEP[endpoint]; h != nil {
		h.Observe(latency)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sentDocs += int64(docs)
	switch {
	case err != nil:
		r.counts.TransportErrs++
	case status == http.StatusOK:
		r.counts.OK++
		r.okDocs += int64(docs)
	case status == http.StatusUnprocessableEntity:
		r.counts.Unprocessable++
	case status == http.StatusTooManyRequests:
		r.counts.Shed429++
	case status == http.StatusGatewayTimeout:
		r.counts.Deadline504++
	default:
		r.counts.OtherHTTP++
	}
}

func (r *recorder) report(cfg Config, base string, npages int, scheduled, sent int64, wall time.Duration, serving ServingReport) *Report {
	r.mu.Lock()
	counts := r.counts
	sentDocs, okDocs := r.sentDocs, r.okDocs
	r.mu.Unlock()
	counts.Scheduled = scheduled
	counts.Sent = sent

	secs := wall.Seconds()
	// Offered rate is a property of the schedule window; achieved rate is
	// completions over the wall clock including the drain of the in-flight
	// tail — under overload the two diverge, which is the point.
	rep := &Report{
		Config: ReportConfig{
			Target:          base,
			OfferedQPS:      cfg.QPS,
			DurationSeconds: cfg.Duration.Seconds(),
			WarmupSeconds:   cfg.Warmup.Seconds(),
			Seed:            cfg.Seed,
			ZipfS:           cfg.ZipfS,
			BatchPages:      cfg.BatchPages,
			BatchBlocks:     cfg.BatchBlocks,
			CorpusPages:     npages,
			Mix:             cfg.Mix,
		},
		Requests: counts,
		Throughput: Throughput{
			OfferedQPS:        float64(scheduled) / cfg.Duration.Seconds(),
			AchievedQPS:       float64(counts.completed()) / secs,
			GoodputQPS:        float64(counts.OK) / secs,
			OfferedDocsPerSec: float64(sentDocs) / cfg.Duration.Seconds(),
			GoodputDocsPerSec: float64(okDocs) / secs,
		},
		LatencyMs: LatencyByClass{
			Overall:   summarize(r.all),
			Align:     summarize(r.byEP[EndpointAlign]),
			Batch:     summarize(r.byEP[EndpointBatch]),
			Summarize: summarize(r.byEP[EndpointSummarize]),
		},
		Serving: serving,
	}
	if sent > 0 {
		rep.Rates = Rates{
			Shed429:     float64(counts.Shed429) / float64(sent),
			Deadline504: float64(counts.Deadline504) / float64(sent),
			Error:       float64(counts.OtherHTTP+counts.TransportErrs) / float64(sent),
		}
	}
	return rep
}
