// Package spreadsheet ingests CSV spreadsheets as BriQ tables — the
// enterprise-content setting the paper names as future work (§XI:
// "spreadsheets in documents"). A CSV sheet becomes a table.Table; a report
// is a text body plus one or more sheets, segmented and aligned exactly like
// a web page.
package spreadsheet

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"briq/internal/document"
	"briq/internal/table"
)

// ReadCSV parses one CSV sheet into a table. Blank-only trailing rows are
// dropped; ragged rows are padded (spreadsheets exported from office tools
// are frequently ragged).
func ReadCSV(r io.Reader, id, caption string) (*table.Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // tolerate ragged rows
	cr.TrimLeadingSpace = true

	var grid [][]string
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("spreadsheet %s: %w", id, err)
		}
		grid = append(grid, record)
	}
	// Drop trailing blank rows.
	for len(grid) > 0 && blankRow(grid[len(grid)-1]) {
		grid = grid[:len(grid)-1]
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("spreadsheet %s: no rows", id)
	}
	// Pad ragged rows.
	width := 0
	for _, row := range grid {
		if len(row) > width {
			width = len(row)
		}
	}
	for i, row := range grid {
		for len(row) < width {
			row = append(row, "")
		}
		grid[i] = row
	}
	return table.New(id, caption, grid)
}

func blankRow(row []string) bool {
	for _, cell := range row {
		if strings.TrimSpace(cell) != "" {
			return false
		}
	}
	return true
}

// ReadCSVFile reads a sheet from disk; the file's base name (without
// extension) becomes the caption, which often names the sheet's topic.
func ReadCSVFile(path string) (*table.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := filepath.Base(path)
	caption := strings.TrimSuffix(base, filepath.Ext(base))
	caption = strings.NewReplacer("_", " ", "-", " ").Replace(caption)
	return ReadCSV(f, base, caption)
}

// Report is an enterprise report: narrative text plus its sheets.
type Report struct {
	ID     string
	Text   string
	Sheets []*table.Table
}

// Documents segments the report into alignable documents using the given
// segmenter (nil for defaults).
func (r *Report) Documents(seg *document.Segmenter) []*document.Document {
	if seg == nil {
		seg = document.NewSegmenter()
	}
	// Paragraph-split the narrative so each topic aligns with its sheet.
	var paras []string
	for _, p := range strings.Split(r.Text, "\n\n") {
		if strings.TrimSpace(p) != "" {
			paras = append(paras, strings.TrimSpace(p))
		}
	}
	return seg.Segment(r.ID, paras, r.Sheets)
}
