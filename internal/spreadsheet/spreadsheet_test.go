package spreadsheet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"briq/internal/core"
	"briq/internal/quantity"
	"briq/internal/table"
)

const salesCSV = `region,Q1,Q2,Q3
North,120,135,150
South,80,90,95
West,200,210,230
`

func TestReadCSV(t *testing.T) {
	tbl, err := ReadCSV(strings.NewReader(salesCSV), "sales", "quarterly sales by region")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 3 || tbl.Cols() != 3 {
		t.Fatalf("dims = %dx%d, want 3x3", tbl.Rows(), tbl.Cols())
	}
	if tbl.RowHeaders[0] != "North" || tbl.ColHeaders[1] != "Q2" {
		t.Errorf("headers wrong: %v / %v", tbl.RowHeaders, tbl.ColHeaders)
	}
	if v := tbl.Cell(2, 2).Quantity.Value; v != 230 {
		t.Errorf("cell(2,2) = %v, want 230", v)
	}
}

func TestReadCSVRaggedAndBlank(t *testing.T) {
	src := "a,b,c\n1,2\n4,5,6\n\n,,\n"
	tbl, err := ReadCSV(strings.NewReader(src), "x", "")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 2 {
		t.Errorf("rows = %d, want 2 (blank rows dropped)", tbl.Rows())
	}
	if tbl.Cols() != 3 {
		t.Errorf("cols = %d, want 3 (ragged rows padded)", tbl.Cols())
	}
}

func TestReadCSVEmpty(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("\n\n"), "x", ""); err == nil {
		t.Error("want error for empty sheet")
	}
}

func TestReadCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "regional_sales-2024.csv")
	if err := os.WriteFile(path, []byte(salesCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	tbl, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Caption != "regional sales 2024" {
		t.Errorf("caption = %q, want filename-derived", tbl.Caption)
	}
}

func TestReportAlignment(t *testing.T) {
	tbl, err := ReadCSV(strings.NewReader(salesCSV), "sales", "quarterly sales by region")
	if err != nil {
		t.Fatal(err)
	}
	report := &Report{
		ID: "r1",
		Text: "The West region led with 230 sales in Q3.\n\n" +
			"A total of 400 sales was recorded across all regions in Q1.",
		Sheets: []*table.Table{tbl},
	}
	docs := report.Documents(nil)
	if len(docs) != 2 {
		t.Fatalf("want 2 documents, got %d", len(docs))
	}

	pipeline := core.NewPipeline()
	var all []core.Alignment
	for _, doc := range docs {
		all = append(all, pipeline.Align(doc)...)
	}
	var got230, gotSum bool
	for _, a := range all {
		if a.Value == 230 && a.Agg == quantity.SingleCell {
			got230 = true
		}
		if a.Agg == quantity.Sum && a.Value == 400 {
			gotSum = true
		}
	}
	if !got230 {
		t.Errorf("West/Q3 cell 230 not aligned: %+v", all)
	}
	if !gotSum {
		t.Errorf("column sum 400 not aligned: %+v", all)
	}
}
