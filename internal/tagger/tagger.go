// Package tagger implements the text-mention tagger of §V-A: predicting,
// from local features only, whether a text mention refers to a single cell
// or to a sum, difference, percentage or change-ratio aggregate. The tagger
// drives the first pruning step of adaptive filtering and is deliberately
// tuned for high precision — a wrong aggregate tag prunes good candidates,
// while single-cell pairs are never pruned on its account.
package tagger

import (
	"fmt"
	"strings"

	"briq/internal/document"
	"briq/internal/forest"
	"briq/internal/nlp"
	"briq/internal/quantity"
)

// Labels is the tagger's class set, index-aligned with quantity.Agg:
// single-cell, sum, diff, percent, ratio.
var Labels = []quantity.Agg{
	quantity.SingleCell, quantity.Sum, quantity.Diff, quantity.Percent, quantity.Ratio,
}

// NumClasses is the number of tagger classes.
const NumClasses = 5

// taggedAggs are the aggregations the tagger distinguishes; cue counts are
// computed for each in three scopes.
var taggedAggs = []quantity.Agg{quantity.Sum, quantity.Diff, quantity.Percent, quantity.Ratio}

// Feature vector layout (§V-A): approximation indicator; per-aggregation cue
// counts in immediate (10-word window), local (sentence) and global
// (paragraph) scope; scale; precision; unit class; exact-match count across
// the document's tables.
const (
	fApprox        = 0
	fCueBase       = 1                 // 4 aggs × 3 scopes
	fScale         = fCueBase + 4*3    // 13
	fPrecision     = fScale + 1        // 14
	fUnit          = fPrecision + 1    // 15
	fExactMatches  = fUnit + 1         // 16
	NumTagFeatures = fExactMatches + 1 // 17
	immediateScope = 10                // words around the mention
)

// Features computes the tagger feature vector for text mention xi of doc.
func Features(doc *document.Document, xi int) []float64 {
	x := &doc.TextMentions[xi]
	vec := make([]float64, NumTagFeatures)

	vec[fApprox] = float64(x.Approx) / 4

	toks := nlp.Tokenize(doc.Text)
	sentences := nlp.SplitSentences(doc.Text)

	// Immediate scope: window of ±immediateScope words around the mention.
	countCues(vec, 0, immediateWords(toks, x.TokenPos))
	// Local scope: the mention's sentence.
	if x.Sentence >= 0 && x.Sentence < len(sentences) {
		countCues(vec, 1, nlp.Words(sentences[x.Sentence]))
	}
	// Global scope: the whole paragraph.
	countCues(vec, 2, nlp.Words(doc.Text))

	vec[fScale] = float64(x.Scale)
	vec[fPrecision] = float64(x.Precision)
	vec[fUnit] = float64(quantity.ClassOf(x.Unit))

	exact := 0
	for _, tm := range doc.TableMentions {
		if !tm.IsVirtual() && tm.Value == x.Value {
			exact++
		}
	}
	vec[fExactMatches] = float64(exact)
	return vec
}

// countCues adds the per-aggregation cue counts for one scope (0=immediate,
// 1=local, 2=global) into vec.
func countCues(vec []float64, scope int, words []string) {
	for _, w := range words {
		for _, agg := range quantity.CueAggs(w) {
			for i, ta := range taggedAggs {
				if agg == ta {
					vec[fCueBase+i*3+scope]++
				}
			}
		}
	}
}

func immediateWords(toks []nlp.Token, pos int) []string {
	lo := pos - immediateScope
	if lo < 0 {
		lo = 0
	}
	hi := pos + immediateScope
	if hi >= len(toks) {
		hi = len(toks) - 1
	}
	var out []string
	for i := lo; i <= hi; i++ {
		if i == pos {
			continue
		}
		switch toks[i].Kind() {
		case nlp.KindWord, nlp.KindAlnum:
			out = append(out, strings.ToLower(toks[i].Text))
		}
	}
	return out
}

// Tagger predicts the aggregation label of a text mention.
type Tagger interface {
	Tag(doc *document.Document, xi int) quantity.Agg
}

// Rule is a deterministic cue-count tagger used before a learned model is
// available (and as a baseline): it predicts the aggregation with the most
// immediate+local cues, requires at least one cue, and defers to single-cell
// when the mention has an exact match in a table and cue evidence is weak.
type Rule struct{}

// Tag implements Tagger.
func (Rule) Tag(doc *document.Document, xi int) quantity.Agg {
	vec := Features(doc, xi)
	best := quantity.SingleCell
	bestCount := 0.0
	for i, agg := range taggedAggs {
		// Immediate cues count double: proximity is the strongest signal.
		count := 2*vec[fCueBase+i*3] + vec[fCueBase+i*3+1]
		if count > bestCount {
			best, bestCount = agg, count
		}
	}
	if bestCount == 0 {
		return quantity.SingleCell
	}
	// High-precision guard: an exact single-cell match plus only weak cue
	// evidence (at most one immediate cue) means the mention most likely
	// names the cell itself.
	if vec[fExactMatches] > 0 && bestCount <= 2 {
		return quantity.SingleCell
	}
	return best
}

// Example is one labeled training instance for the learned tagger.
type Example struct {
	Features []float64
	Label    quantity.Agg
}

// Learned is a Random-Forest-based tagger trained on a small labeled set
// withheld from all other components (§V-A).
type Learned struct {
	forest *forest.Forest
}

// Train fits the learned tagger.
func Train(examples []Example, cfg forest.Config) (*Learned, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("tagger: no training examples")
	}
	samples := make([]forest.Sample, len(examples))
	for i, ex := range examples {
		cls := int(ex.Label)
		if cls < 0 || cls >= NumClasses {
			return nil, fmt.Errorf("tagger: example %d has label %v outside the tag set", i, ex.Label)
		}
		samples[i] = forest.Sample{Features: ex.Features, Label: cls}
	}
	f, err := forest.Train(samples, NumClasses, cfg)
	if err != nil {
		return nil, fmt.Errorf("tagger: %w", err)
	}
	return &Learned{forest: f}, nil
}

// Tag implements Tagger.
func (l *Learned) Tag(doc *document.Document, xi int) quantity.Agg {
	return quantity.Agg(l.forest.Predict(Features(doc, xi)))
}

// TagProba returns the class distribution over Labels.
func (l *Learned) TagProba(doc *document.Document, xi int) []float64 {
	return l.forest.PredictProba(Features(doc, xi))
}

// Forest exposes the underlying model for serialization.
func (l *Learned) Forest() *forest.Forest { return l.forest }

// FromForest reconstructs a learned tagger from a deserialized forest,
// validating its shape against the tagger's feature and class layout.
func FromForest(f *forest.Forest) (*Learned, error) {
	if f.Classes() != NumClasses {
		return nil, fmt.Errorf("tagger: model has %d classes, want %d", f.Classes(), NumClasses)
	}
	if f.NumFeatures() != NumTagFeatures {
		return nil, fmt.Errorf("tagger: model has %d features, want %d", f.NumFeatures(), NumTagFeatures)
	}
	return &Learned{forest: f}, nil
}
