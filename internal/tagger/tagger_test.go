package tagger

import (
	"math/rand"
	"testing"

	"briq/internal/document"
	"briq/internal/forest"
	"briq/internal/quantity"
	"briq/internal/table"
)

func docWith(t *testing.T, text string) *document.Document {
	t.Helper()
	tbl, err := table.New("t0", "drug trial side effects counts", [][]string{
		{"side effects", "male", "female", "total"},
		{"Rash", "15", "20", "35"},
		{"Depression", "13", "25", "38"},
		{"Nausea", "5", "6", "11"},
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := document.NewSegmenter().Segment("p", []string{text}, []*table.Table{tbl})
	if len(docs) != 1 {
		t.Fatalf("want 1 doc for %q", text)
	}
	return docs[0]
}

func TestFeaturesShape(t *testing.T) {
	doc := docWith(t, "A total of 84 patients reported side effects.")
	vec := Features(doc, 0)
	if len(vec) != NumTagFeatures {
		t.Fatalf("feature length = %d, want %d", len(vec), NumTagFeatures)
	}
}

func TestFeaturesCueCounts(t *testing.T) {
	doc := docWith(t, "A total of 84 patients reported side effects.")
	vec := Features(doc, 0)
	// "total" is a sum cue in the immediate scope (index 0 of sum).
	if vec[fCueBase] == 0 {
		t.Error("sum immediate cue count should be > 0")
	}
	// No ratio cues anywhere.
	for scope := 0; scope < 3; scope++ {
		if vec[fCueBase+3*3+scope] != 0 {
			t.Errorf("ratio cue count scope %d = %v, want 0", scope, vec[fCueBase+3*3+scope])
		}
	}
}

func TestFeaturesExactMatch(t *testing.T) {
	doc := docWith(t, "Depression affected 38 of the patients.")
	vec := Features(doc, 0)
	if vec[fExactMatches] < 1 {
		t.Errorf("exact match count = %v, want ≥ 1 (cell '38')", vec[fExactMatches])
	}
}

func TestRuleTagger(t *testing.T) {
	tests := []struct {
		text string
		want quantity.Agg
	}{
		{"A total of 84 patients reported side effects together.", quantity.Sum},
		{"Counts increased by 12% over the change rate of last year.", quantity.Ratio},
		{"Depression affected 38 patients.", quantity.SingleCell},
		{"The gap was 23 fewer cases, a difference versus last year.", quantity.Diff},
	}
	for _, tc := range tests {
		doc := docWith(t, tc.text)
		if len(doc.TextMentions) == 0 {
			t.Fatalf("no mentions in %q", tc.text)
		}
		got := Rule{}.Tag(doc, 0)
		if got != tc.want {
			t.Errorf("Rule.Tag(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestRuleTaggerExactMatchGuard(t *testing.T) {
	// "38" exactly matches a cell; a single weak sum cue in another clause
	// must not flip the tag to an aggregate.
	doc := docWith(t, "In total the study had issues; Depression was reported by 38 patients.")
	if got := (Rule{}).Tag(doc, 0); got != quantity.SingleCell {
		t.Errorf("Tag = %v, want single-cell (exact-match guard)", got)
	}
}

// synthesizeExamples builds a separable training set from cue-count
// patterns, mimicking the small labeled dataset of §V-A.
func synthesizeExamples(n int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	var out []Example
	for i := 0; i < n; i++ {
		label := Labels[rng.Intn(len(Labels))]
		vec := make([]float64, NumTagFeatures)
		vec[fScale] = float64(rng.Intn(6))
		vec[fPrecision] = float64(rng.Intn(3))
		vec[fUnit] = float64(rng.Intn(5))
		if label == quantity.SingleCell {
			vec[fExactMatches] = float64(1 + rng.Intn(3))
		} else {
			idx := -1
			for j, agg := range taggedAggs {
				if agg == label {
					idx = j
				}
			}
			vec[fCueBase+idx*3] = float64(1 + rng.Intn(3))
			vec[fCueBase+idx*3+1] = float64(rng.Intn(3))
			vec[fCueBase+idx*3+2] = float64(rng.Intn(4))
			if rng.Float64() < 0.3 {
				vec[fExactMatches] = 1 // noise: aggregates can collide with cells
			}
		}
		out = append(out, Example{Features: vec, Label: label})
	}
	return out
}

func TestLearnedTagger(t *testing.T) {
	train := synthesizeExamples(800, 1)
	lt, err := Train(train, forest.Config{Trees: 40, MaxDepth: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	test := synthesizeExamples(300, 2)
	correct := 0
	for _, ex := range test {
		if quantity.Agg(ltForest(lt).Predict(ex.Features)) == ex.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.9 {
		t.Errorf("learned tagger accuracy = %.3f, want ≥ 0.9", acc)
	}
}

// ltForest exposes the inner forest for direct feature-space testing.
func ltForest(l *Learned) *forest.Forest { return l.forest }

func TestLearnedTaggerOnDocument(t *testing.T) {
	lt, err := Train(synthesizeExamples(800, 1), forest.Config{Trees: 40, MaxDepth: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	doc := docWith(t, "A total of 84 patients reported side effects together overall.")
	got := lt.Tag(doc, 0)
	if got != quantity.Sum {
		t.Errorf("learned Tag = %v, want sum", got)
	}
	proba := lt.TagProba(doc, 0)
	if len(proba) != NumClasses {
		t.Errorf("proba length = %d", len(proba))
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, forest.Config{}); err == nil {
		t.Error("want error for empty examples")
	}
	bad := []Example{{Features: make([]float64, NumTagFeatures), Label: quantity.Max}}
	if _, err := Train(bad, forest.Config{}); err == nil {
		t.Error("want error for out-of-tagset label")
	}
}
