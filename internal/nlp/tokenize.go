// Package nlp provides the light-weight natural-language utilities that the
// BriQ pipeline depends on: tokenization, sentence and paragraph splitting,
// stopword filtering, a rule-based noun-phrase chunker, and the string and
// bag-of-words similarity measures used by the feature extractor (§III and
// §IV-B of the paper).
//
// The paper deliberately avoids heavy NLP machinery ("the complexity of our
// problem setting is better served by modeling informative features rather
// than solely relying on end-to-end learning"), so everything here is
// rule- and lexicon-based and allocation-conscious.
package nlp

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a single token of input text with its span in the original string.
type Token struct {
	Text  string // the token surface form
	Start int    // byte offset of the first byte in the source
	End   int    // byte offset one past the last byte
	Index int    // position in the token sequence
}

// Kind reports a coarse classification of the token.
func (t Token) Kind() TokenKind {
	if t.Text == "" {
		return KindOther
	}
	r, _ := decodeRune(t.Text)
	switch {
	case unicode.IsDigit(r):
		return KindNumber
	case unicode.IsLetter(r):
		// Words containing digits (e.g. "37K") still count as numeric-ish
		// words; the quantity extractor handles them separately.
		for _, c := range t.Text {
			if unicode.IsDigit(c) {
				return KindAlnum
			}
		}
		return KindWord
	case isCurrencyRune(r):
		return KindCurrency
	case r == '%':
		return KindPercent
	default:
		return KindPunct
	}
}

// TokenKind is the coarse lexical class of a token.
type TokenKind int

// Token kinds, from most word-like to least.
const (
	KindWord TokenKind = iota
	KindNumber
	KindAlnum // mixed letters+digits, e.g. "37K", "2Q"
	KindCurrency
	KindPercent
	KindPunct
	KindOther
)

func isCurrencyRune(r rune) bool {
	switch r {
	case '$', '€', '£', '¥', '₹', '¢':
		return true
	}
	return unicode.Is(unicode.Sc, r)
}

// Tokenize splits s into tokens. Runs of letters, runs of digits (with
// embedded decimal points, thousands separators and sign), currency symbols
// and percent signs become individual tokens; other punctuation becomes
// single-rune tokens; whitespace is skipped.
//
// Numbers keep internal '.' and ',' characters when they are flanked by
// digits, so "3,263" and "1.5" are single tokens, matching how quantities
// appear in web tables.
func Tokenize(s string) []Token {
	tokens := make([]Token, 0, len(s)/5+4)
	i := 0
	for i < len(s) {
		r, size := decodeRune(s[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case unicode.IsDigit(r):
			j := scanNumber(s, i)
			if j == i {
				// Non-ASCII digits (NKO, Devanagari, …) pass IsDigit but are
				// not part of the ASCII literals scanNumber consumes; take the
				// single rune so the scan always advances.
				j = i + size
			}
			tokens = appendToken(tokens, s, i, j)
			i = j
		case unicode.IsLetter(r):
			j := i + size
			for j < len(s) {
				r2, sz := decodeRune(s[j:])
				if !unicode.IsLetter(r2) && !unicode.IsDigit(r2) && r2 != '\'' {
					break
				}
				j += sz
			}
			tokens = appendToken(tokens, s, i, j)
			i = j
		default:
			tokens = appendToken(tokens, s, i, i+size)
			i += size
		}
	}
	return tokens
}

// scanNumber consumes a numeric literal starting at offset i: digits with
// optional internal grouping commas, decimal points, and a trailing scale
// suffix letter directly attached (e.g. "37K", "2.3K").
func scanNumber(s string, i int) int {
	j := i
	for j < len(s) {
		c := s[j]
		switch {
		case c >= '0' && c <= '9':
			j++
		case (c == '.' || c == ',') && j+1 < len(s) && s[j+1] >= '0' && s[j+1] <= '9':
			// Separator only counts when followed by another digit.
			j++
		default:
			goto done
		}
	}
done:
	// Attach a single-letter scale suffix such as 37K / 5M / 2.3B.
	if j < len(s) {
		switch s[j] {
		case 'K', 'k', 'M', 'B', 'm':
			// Only when not the start of a longer word ("5Km" stays "5K"+"m"
			// is wrong, so require a word boundary after).
			if j+1 >= len(s) || !isWordByte(s[j+1]) {
				j++
			}
		}
	}
	return j
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func appendToken(tokens []Token, s string, start, end int) []Token {
	return append(tokens, Token{Text: s[start:end], Start: start, End: end, Index: len(tokens)})
}

// decodeRune is a minimal UTF-8 decoder front-end; ASCII fast path. It
// reports the width actually consumed, which for invalid UTF-8 is the 1-byte
// replacement step — computing the width from the decoded rune instead would
// claim 3 bytes for U+FFFD and walk past the end of the string.
func decodeRune(s string) (rune, int) {
	if len(s) > 0 && s[0] < 0x80 {
		return rune(s[0]), 1
	}
	return utf8.DecodeRuneInString(s)
}

// Words returns the lowercase word tokens of s, excluding punctuation.
func Words(s string) []string {
	toks := Tokenize(s)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		switch t.Kind() {
		case KindWord, KindNumber, KindAlnum:
			out = append(out, strings.ToLower(t.Text))
		}
	}
	return out
}

// SplitSentences splits a paragraph into sentences on '.', '!', '?' and ';'
// boundaries, avoiding splits inside decimal numbers ("3.26 billion") and
// after common abbreviations ("ca.", "approx.", "Mr.").
func SplitSentences(s string) []string {
	var sentences []string
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '.' && c != '!' && c != '?' && c != ';' {
			continue
		}
		if c == '.' {
			// Decimal point: digit on both sides.
			if i > 0 && i+1 < len(s) && isDigitByte(s[i-1]) && isDigitByte(s[i+1]) {
				continue
			}
			if isAbbreviation(s[:i]) {
				continue
			}
		}
		// Consume trailing closing quotes/parens after the terminator.
		end := i + 1
		for end < len(s) && (s[end] == '"' || s[end] == ')' || s[end] == '\'') {
			end++
		}
		sent := strings.TrimSpace(s[start:end])
		if sent != "" {
			sentences = append(sentences, sent)
		}
		start = end
		i = end - 1
	}
	if rest := strings.TrimSpace(s[start:]); rest != "" {
		sentences = append(sentences, rest)
	}
	return sentences
}

func isDigitByte(c byte) bool { return c >= '0' && c <= '9' }

var abbreviations = map[string]bool{
	"ca": true, "approx": true, "mr": true, "mrs": true, "dr": true,
	"vs": true, "etc": true, "e.g": true, "i.e": true, "no": true,
	"fig": true, "inc": true, "ltd": true, "corp": true, "jan": true,
	"feb": true, "mar": true, "apr": true, "jun": true, "jul": true,
	"aug": true, "sep": true, "oct": true, "nov": true, "dec": true,
	"st": true, "mio": true,
}

func isAbbreviation(prefix string) bool {
	// Take the word immediately before the period.
	end := len(prefix)
	start := end
	for start > 0 && (isWordByte(prefix[start-1]) || prefix[start-1] == '.') {
		start--
	}
	w := strings.ToLower(prefix[start:end])
	w = strings.TrimSuffix(w, ".")
	return abbreviations[w]
}

// SplitParagraphs splits page text into paragraphs on blank lines.
func SplitParagraphs(s string) []string {
	var paras []string
	for _, block := range strings.Split(s, "\n\n") {
		block = strings.TrimSpace(block)
		if block != "" {
			paras = append(paras, block)
		}
	}
	return paras
}
