package nlp

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func tokenTexts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"A total of 123 patients", []string{"A", "total", "of", "123", "patients"}},
		{"revenue of $3.26 billion CDN", []string{"revenue", "of", "$", "3.26", "billion", "CDN"}},
		{"increased by 1.5%", []string{"increased", "by", "1.5", "%"}},
		{"37K EUR in Germany", []string{"37K", "EUR", "in", "Germany"}},
		{"3,263", []string{"3,263"}},
		{"up $70 million CDN or 2%", []string{"up", "$", "70", "million", "CDN", "or", "2", "%"}},
		{"", nil},
		{"   ", nil},
		{"(1.33)", []string{"(", "1.33", ")"}},
		{"60 bps", []string{"60", "bps"}},
		{"2.3K USD", []string{"2.3K", "USD"}},
		{"Q3 FY 2012", []string{"Q3", "FY", "2012"}},
		{"$(9.49) Million", []string{"$", "(", "9.49", ")", "Million"}},
	}
	for _, tc := range tests {
		got := tokenTexts(Tokenize(tc.in))
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTokenizeSpans(t *testing.T) {
	s := "Sales were up 5% on a reported basis"
	for _, tok := range Tokenize(s) {
		if s[tok.Start:tok.End] != tok.Text {
			t.Errorf("token %q span [%d,%d) does not match source %q",
				tok.Text, tok.Start, tok.End, s[tok.Start:tok.End])
		}
	}
}

func TestTokenizeIndicesSequential(t *testing.T) {
	toks := Tokenize("one two three 4 5.6 seven%")
	for i, tok := range toks {
		if tok.Index != i {
			t.Fatalf("token %d has Index %d", i, tok.Index)
		}
	}
}

func TestTokenKind(t *testing.T) {
	tests := []struct {
		text string
		want TokenKind
	}{
		{"hello", KindWord},
		{"123", KindNumber},
		{"3.26", KindNumber},
		{"37K", KindNumber}, // starts with a digit
		{"Q3", KindAlnum},
		{"$", KindCurrency},
		{"€", KindCurrency},
		{"%", KindPercent},
		{",", KindPunct},
		{"", KindOther},
	}
	for _, tc := range tests {
		tok := Token{Text: tc.text}
		if got := tok.Kind(); got != tc.want {
			t.Errorf("Kind(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestTokenizeCoversAllNonSpace(t *testing.T) {
	// Property: concatenating tokens and removing whitespace from the source
	// yields the same byte sequence (ASCII inputs).
	check := func(s string) bool {
		// Restrict to printable ASCII to keep the property crisp.
		var clean strings.Builder
		for _, r := range s {
			if r >= 32 && r < 127 {
				clean.WriteRune(r)
			}
		}
		src := clean.String()
		var joined strings.Builder
		for _, tok := range Tokenize(src) {
			joined.WriteString(tok.Text)
		}
		want := strings.Map(func(r rune) rune {
			if r == ' ' || r == '\t' {
				return -1
			}
			return r
		}, src)
		return joined.String() == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitSentences(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{
			"Sales were up 5%. Segment profit was up 11%.",
			[]string{"Sales were up 5%.", "Segment profit was up 11%."},
		},
		{
			"In 2013 revenue of $3.26 billion CDN was up $70 million.",
			[]string{"In 2013 revenue of $3.26 billion CDN was up $70 million."},
		},
		{
			"It cost ca. 37K EUR. That is a lot.",
			[]string{"It cost ca. 37K EUR.", "That is a lot."},
		},
		{"", nil},
		{"No terminator at all", []string{"No terminator at all"}},
		{
			"First part; second part.",
			[]string{"First part;", "second part."},
		},
	}
	for _, tc := range tests {
		got := SplitSentences(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitSentences(%q) = %#v, want %#v", tc.in, got, tc.want)
		}
	}
}

func TestSplitSentencesKeepsDecimals(t *testing.T) {
	s := "The ratio was 2.67 overall. The price fell to 1.33 yesterday."
	got := SplitSentences(s)
	if len(got) != 2 {
		t.Fatalf("want 2 sentences, got %d: %#v", len(got), got)
	}
	if !strings.Contains(got[0], "2.67") || !strings.Contains(got[1], "1.33") {
		t.Errorf("decimals were split: %#v", got)
	}
}

func TestSplitParagraphs(t *testing.T) {
	in := "para one line a\npara one line b\n\npara two\n\n\n\npara three"
	got := SplitParagraphs(in)
	want := []string{"para one line a\npara one line b", "para two", "para three"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SplitParagraphs = %#v, want %#v", got, want)
	}
}

func TestWords(t *testing.T) {
	got := Words("The net income of 2013 was $0.9 billion CDN.")
	want := []string{"the", "net", "income", "of", "2013", "was", "0.9", "billion", "cdn"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %#v, want %#v", got, want)
	}
}

func TestContentWords(t *testing.T) {
	got := ContentWords("The net income of the year")
	want := []string{"net", "income", "year"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentWords = %#v, want %#v", got, want)
	}
}
