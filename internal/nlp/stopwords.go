package nlp

// stopwords is a compact English stopword list adequate for the web-table
// domain vocabulary produced by the corpus generator and for typical
// Common-Crawl-style explanatory text.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true, "but": true,
	"of": true, "in": true, "on": true, "at": true, "to": true, "from": true,
	"by": true, "for": true, "with": true, "about": true, "as": true,
	"is": true, "are": true, "was": true, "were": true, "be": true,
	"been": true, "being": true, "has": true, "have": true, "had": true,
	"do": true, "does": true, "did": true, "will": true, "would": true,
	"can": true, "could": true, "shall": true, "should": true, "may": true,
	"might": true, "must": true, "it": true, "its": true, "this": true,
	"that": true, "these": true, "those": true, "which": true, "who": true,
	"whom": true, "whose": true, "what": true, "where": true, "when": true,
	"there": true, "here": true, "than": true, "then": true, "so": true,
	"such": true, "if": true, "not": true, "no": true, "nor": true,
	"we": true, "they": true, "he": true, "she": true, "i": true,
	"you": true, "their": true, "our": true, "his": true, "her": true,
	"them": true, "him": true, "us": true, "was'nt": true, "also": true,
	"both": true, "each": true, "per": true, "into": true, "over": true,
	"under": true, "up": true, "down": true, "out": true, "off": true,
	"all": true, "any": true, "some": true, "more": true, "most": true,
	"other": true, "own": true, "same": true, "very": true, "just": true,
	"only": true, "while": true, "during": true, "again": true,
	"compared": true, "respectively": true,
}

// Stopword reports whether the (already lowercased) word is a stopword.
func Stopword(w string) bool { return stopwords[w] }

// ContentWords returns the lowercase non-stopword word tokens of s.
func ContentWords(s string) []string {
	words := Words(s)
	out := words[:0]
	for _, w := range words {
		if !Stopword(w) {
			out = append(out, w)
		}
	}
	return out
}
