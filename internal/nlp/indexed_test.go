package nlp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomBag builds a deterministic random WeightedBag over a small shared
// vocabulary so that overlaps are common.
func randomBag(rng *rand.Rand) WeightedBag {
	vocab := []string{
		"revenue", "income", "net", "total", "growth", "billion", "million",
		"cdn", "usd", "year", "quarter", "2013", "operating", "margin",
	}
	bag := WeightedBag{}
	n := rng.Intn(len(vocab) + 1)
	for i := 0; i < n; i++ {
		bag.Add(vocab[rng.Intn(len(vocab))], rng.Float64())
	}
	return bag
}

func TestIndexedBagTotalBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := NewInterner()
	for i := 0; i < 200; i++ {
		bag := randomBag(rng)
		ib := IndexBag(bag, in)
		if math.Float64bits(ib.Total) != math.Float64bits(bag.Total()) {
			t.Fatalf("case %d: indexed total %v != map total %v", i, ib.Total, bag.Total())
		}
		if len(ib.IDs) != len(bag) {
			t.Fatalf("case %d: %d ids for %d words", i, len(ib.IDs), len(bag))
		}
		for j := 1; j < len(ib.IDs); j++ {
			if ib.IDs[j-1] >= ib.IDs[j] {
				t.Fatalf("case %d: ids not strictly ascending: %v", i, ib.IDs)
			}
		}
	}
}

func TestIndexedOverlapBitIdenticalToOverlapCoefficient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := NewInterner()
	var scratch []float64
	for i := 0; i < 500; i++ {
		a, b := randomBag(rng), randomBag(rng)
		ia, ib := IndexBag(a, in), IndexBag(b, in)
		want := OverlapCoefficient(a, b)
		var got float64
		got, scratch = IndexedOverlap(ia, ib, scratch)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("case %d: IndexedOverlap %v != OverlapCoefficient %v", i, got, want)
		}
	}
}

func TestMergeIndexedMatchesMapMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := NewInterner()
	for i := 0; i < 200; i++ {
		a, b := randomBag(rng), randomBag(rng)
		merged := WeightedBag{}
		for w, weight := range a {
			merged.Add(w, weight)
		}
		for w, weight := range b {
			merged.Add(w, weight)
		}
		got := MergeIndexed(IndexBag(a, in), IndexBag(b, in))
		want := IndexBag(merged, in)
		if fmt.Sprint(got.IDs) != fmt.Sprint(want.IDs) {
			t.Fatalf("case %d: merged ids %v != %v", i, got.IDs, want.IDs)
		}
		for j := range got.Weights {
			if math.Float64bits(got.Weights[j]) != math.Float64bits(want.Weights[j]) {
				t.Fatalf("case %d: weight[%d] %v != %v", i, j, got.Weights[j], want.Weights[j])
			}
		}
		if math.Float64bits(got.Total) != math.Float64bits(want.Total) {
			t.Fatalf("case %d: merged total %v != %v", i, got.Total, want.Total)
		}
	}
}

// randomPhrases builds a deterministic random phrase multiset over a small
// shared vocabulary with overlapping heads, so both matching passes of
// PhraseOverlap are exercised.
func randomPhrases(rng *rand.Rand) []string {
	vocab := []string{
		"net income", "annual net income", "total revenue", "revenue",
		"operating margin", "gross margin", "fiscal year", "prior year",
		"net margin", "income", "quarterly revenue",
	}
	n := rng.Intn(7)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, vocab[rng.Intn(len(vocab))])
	}
	return out
}

func TestPhraseOverlapIndexedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pi := NewPhraseInterner()
	var matched, touched []int32
	for i := 0; i < 1000; i++ {
		a, b := randomPhrases(rng), randomPhrases(rng)
		ia, ib := pi.IndexPhrases(a), pi.IndexPhrases(b)
		want := PhraseOverlap(a, b)
		var got float64
		got, matched, touched = PhraseOverlapIndexed(pi, ia, ib, matched, touched)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("case %d: indexed %v != reference %v for a=%v b=%v", i, got, want, a, b)
		}
		for h, v := range matched {
			if v != 0 {
				t.Fatalf("case %d: matched[%d]=%d not reset", i, h, v)
			}
		}
	}
}

func TestIndexedOverlapEmpty(t *testing.T) {
	in := NewInterner()
	empty := IndexBag(WeightedBag{}, in)
	full := IndexBag(NewWeightedBag([]string{"a", "b"}), in)
	if got, _ := IndexedOverlap(empty, full, nil); got != 0 {
		t.Fatalf("overlap with empty bag = %v, want 0", got)
	}
	if got, _ := IndexedOverlap(full, full, nil); got != 1 {
		t.Fatalf("self overlap = %v, want 1", got)
	}
}
