package nlp

import (
	"sort"
	"strings"
)

// JaroSimilarity returns the Jaro similarity of two strings in [0, 1].
// It is the base measure for JaroWinkler below.
func JaroSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	matchWindow := maxInt(la, lb)/2 - 1
	if matchWindow < 0 {
		matchWindow = 0
	}
	aMatched := make([]bool, la)
	bMatched := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := maxInt(0, i-matchWindow)
		hi := minInt(lb-1, i+matchWindow)
		for j := lo; j <= hi; j++ {
			if bMatched[j] || a[i] != b[j] {
				continue
			}
			aMatched[i] = true
			bMatched[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among the matched characters.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatched[i] {
			continue
		}
		for !bMatched[j] {
			j++
		}
		if a[i] != b[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity of two strings in [0, 1].
// The Winkler adjustment boosts pairs sharing a common prefix (up to 4
// characters, scaling factor 0.1). The paper uses Jaro-Winkler for surface
// form similarity (feature f1) precisely because it emphasizes matches at
// the beginning of the string — "26.7$" is closer to "26.65$" than to
// "29.75$".
func JaroWinkler(a, b string) float64 {
	const (
		prefixScale = 0.1
		maxPrefix   = 4
	)
	j := JaroSimilarity(a, b)
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < maxPrefix && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*prefixScale*(1-j)
}

// WeightedBag is a bag of words where each word carries a weight. It backs
// the position-weighted overlap coefficients of features f2/f3.
type WeightedBag map[string]float64

// NewWeightedBag builds a bag from words with uniform weight 1, keeping the
// maximum weight for duplicate words.
func NewWeightedBag(words []string) WeightedBag {
	bag := make(WeightedBag, len(words))
	for _, w := range words {
		if bag[w] < 1 {
			bag[w] = 1
		}
	}
	return bag
}

// Add inserts word with the given weight, keeping the maximum weight if the
// word is already present.
func (b WeightedBag) Add(word string, weight float64) {
	if weight < 0 {
		weight = 0
	}
	if b[word] < weight {
		b[word] = weight
	}
}

// Total returns the sum of all weights in the bag. The summands are added in
// sorted order: map iteration order varies between range statements and
// float64 addition is not associative, so a naive accumulation would make
// every downstream feature score differ in the last ulps from run to run —
// breaking the system's bit-for-bit reproducibility.
func (b WeightedBag) Total() float64 {
	vals := make([]float64, 0, len(b))
	for _, w := range b {
		vals = append(vals, w)
	}
	return sumSorted(vals)
}

// sumSorted adds vals in ascending order, giving an order-independent (and
// slightly more accurate) float64 sum. It reorders vals in place.
func sumSorted(vals []float64) float64 {
	sort.Float64s(vals)
	var total float64
	for _, v := range vals {
		total += v
	}
	return total
}

// OverlapCoefficient returns the weighted overlap coefficient between the two
// bags: sum over common words of min(weight_a, weight_b), divided by the
// smaller of the two bags' total weight. Returns 0 when either bag is empty.
func OverlapCoefficient(a, b WeightedBag) float64 {
	ta, tb := a.Total(), b.Total()
	if ta == 0 || tb == 0 {
		return 0
	}
	// Iterate over the smaller bag.
	if len(b) < len(a) {
		a, b = b, a
	}
	var overlaps []float64
	for w, wa := range a {
		if wb, ok := b[w]; ok {
			overlaps = append(overlaps, minFloat(wa, wb))
		}
	}
	// Deterministic sum: see Total.
	return sumSorted(overlaps) / minFloat(ta, tb)
}

// JaccardTokens returns the Jaccard similarity of the two token sets after
// lowercasing and stopword removal. It is the paragraph↔table relatedness
// measure used by document segmentation (§III).
func JaccardTokens(a, b []string) float64 {
	sa := contentSet(a)
	sb := contentSet(b)
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	if len(sb) < len(sa) {
		sa, sb = sb, sa
	}
	inter := 0
	for w := range sa {
		if sb[w] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

func contentSet(words []string) map[string]bool {
	set := make(map[string]bool, len(words))
	for _, w := range words {
		w = strings.ToLower(w)
		if !Stopword(w) {
			set[w] = true
		}
	}
	return set
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
