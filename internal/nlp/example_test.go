package nlp_test

import (
	"fmt"

	"briq/internal/nlp"
)

func ExampleJaroWinkler() {
	// The prefix emphasis that motivates the choice for surface similarity:
	// "26.7$" is closer to "26.65$" than to "29.75$".
	fmt.Printf("%.3f %.3f\n",
		nlp.JaroWinkler("26.7$", "26.65$"),
		nlp.JaroWinkler("26.7$", "29.75$"))
	// Output: 0.876 0.840
}

func ExampleNounPhrases() {
	fmt.Println(nlp.NounPhrases("Segment profit was up 11% and segment margins increased"))
	// Output: [segment profit segment margins]
}

func ExampleSplitSentences() {
	for _, s := range nlp.SplitSentences("Sales hit 3.26 billion. Profit was up 11%.") {
		fmt.Println(s)
	}
	// Output:
	// Sales hit 3.26 billion.
	// Profit was up 11%.
}
