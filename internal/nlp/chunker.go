package nlp

import "strings"

// posTag is a coarse part-of-speech class used by the noun-phrase chunker.
type posTag int

const (
	tagNoun posTag = iota // default class for unknown words
	tagAdj
	tagDet
	tagVerb
	tagPrep
	tagAdv
	tagPron
	tagConj
	tagNum
	tagOther
)

// closedClass maps function words and common verbs/adverbs to their tag.
// Unknown open-class words default to noun, which is the right bias for the
// noun-phrase overlap features: table headers ("segment profit", "gross
// income") are noun compounds of exactly this shape.
var closedClass = map[string]posTag{
	// determiners
	"a": tagDet, "an": tagDet, "the": tagDet, "this": tagDet, "that": tagDet,
	"these": tagDet, "those": tagDet, "each": tagDet, "every": tagDet,
	"some": tagDet, "any": tagDet, "no": tagDet, "both": tagDet, "all": tagDet,
	"its": tagDet, "their": tagDet, "his": tagDet, "her": tagDet, "our": tagDet,
	// prepositions / particles
	"of": tagPrep, "in": tagPrep, "on": tagPrep, "at": tagPrep, "to": tagPrep,
	"from": tagPrep, "by": tagPrep, "for": tagPrep, "with": tagPrep,
	"about": tagPrep, "as": tagPrep, "than": tagPrep, "over": tagPrep,
	"under": tagPrep, "per": tagPrep, "into": tagPrep, "since": tagPrep,
	"during": tagPrep, "compared": tagPrep,
	// conjunctions
	"and": tagConj, "or": tagConj, "but": tagConj, "while": tagConj,
	"if": tagConj, "because": tagConj, "although": tagConj,
	// pronouns
	"it": tagPron, "they": tagPron, "we": tagPron, "he": tagPron,
	"she": tagPron, "you": tagPron, "them": tagPron, "which": tagPron,
	"who": tagPron, "there": tagPron,
	// auxiliaries and very common verbs
	"is": tagVerb, "are": tagVerb, "was": tagVerb, "were": tagVerb,
	"be": tagVerb, "been": tagVerb, "being": tagVerb, "has": tagVerb,
	"have": tagVerb, "had": tagVerb, "do": tagVerb, "does": tagVerb,
	"did": tagVerb, "will": tagVerb, "would": tagVerb, "can": tagVerb,
	"could": tagVerb, "should": tagVerb, "may": tagVerb, "might": tagVerb,
	"increased": tagVerb, "decreased": tagVerb, "rose": tagVerb,
	"fell": tagVerb, "grew": tagVerb, "dropped": tagVerb, "reported": tagVerb,
	"sold": tagVerb, "earned": tagVerb, "gained": tagVerb, "remained": tagVerb,
	"said": tagVerb, "was'nt": tagVerb, "achieved": tagVerb, "counted": tagVerb,
	"undergo": tagVerb, "refers": tagVerb, "reached": tagVerb, "posted": tagVerb,
	"recorded": tagVerb, "stood": tagVerb, "totaled": tagVerb, "totalled": tagVerb,
	"amounted": tagVerb, "climbed": tagVerb, "declined": tagVerb, "slipped": tagVerb,
	// adverbs / qualifiers
	"very": tagAdv, "most": tagAdv, "more": tagAdv, "less": tagAdv,
	"least": tagAdv, "approximately": tagAdv, "nearly": tagAdv,
	"about*": tagAdv, "roughly": tagAdv, "around": tagAdv, "almost": tagAdv,
	"respectively": tagAdv, "up": tagAdv, "down": tagAdv, "not": tagAdv,
	"only": tagAdv, "also": tagAdv, "just": tagAdv, "again": tagAdv,
	"slightly": tagAdv, "sharply": tagAdv, "overall*": tagAdv,
}

// adjSuffixes mark open-class words that are likely adjectives.
var adjSuffixes = []string{"al", "ous", "ive", "able", "ible", "ic", "ful", "less", "est"}

// knownAdjectives are domain adjectives that do not match the suffix rules.
var knownAdjectives = map[string]bool{
	"total": true, "gross": true, "net": true, "average": true,
	"common": true, "final": true, "annual": true, "quarterly": true,
	"monthly": true, "overall": true, "highest": true, "lowest": true,
	"affordable": true, "expensive": true, "cheap": true, "cheaper": true,
	"new": true, "previous": true, "last": true, "first": true,
	"second": true, "third": true, "male": true, "female": true,
	"domestic": true, "foreign": true, "electric": true, "private": true,
	"taxable": true, "municipal": true, "fixed": true, "senior": true,
	"strong": true, "weak": true, "big": true, "small": true, "large": true,
}

// unitCodes are currency/measure codes that should never head a noun phrase;
// they belong to the quantity, not to its descriptive context.
var unitCodes = map[string]bool{
	"eur": true, "usd": true, "cdn": true, "gbp": true, "jpy": true,
	"aud": true, "chf": true, "inr": true, "bps": true, "mpge": true,
	"kwh": true, "km": true, "kg": true, "mg": true, "lbs": true,
	"mph": true, "msrp": true, "mio": true, "mrd": true,
}

func tagWord(w string) posTag {
	lw := strings.ToLower(w)
	// Single letters ("e" from "e-tron", list markers) carry no phrasal
	// content and would head-match across unrelated phrases.
	if len(lw) <= 1 {
		return tagOther
	}
	if unitCodes[lw] {
		return tagOther
	}
	if t, ok := closedClass[lw]; ok {
		return t
	}
	if knownAdjectives[lw] {
		return tagAdj
	}
	if len(lw) > 0 && lw[0] >= '0' && lw[0] <= '9' {
		return tagNum
	}
	for _, suf := range adjSuffixes {
		if len(lw) > len(suf)+2 && strings.HasSuffix(lw, suf) {
			return tagAdj
		}
	}
	return tagNoun
}

// NounPhrases extracts the noun phrases of s as lowercase strings. A noun
// phrase is a maximal sequence (DET)? (ADJ|NOUN)* NOUN, with numbers allowed
// as modifiers inside the phrase but never as the head. Single stopword
// phrases are dropped.
//
// Feature f4/f5 of the paper compare noun phrases of the mention context
// with noun phrases of the table context (headers, captions), e.g. the
// phrase "segment profit" in Fig. 3.
func NounPhrases(s string) []string {
	toks := Tokenize(s)
	var phrases []string
	var current []string
	hasNoun := false

	flush := func() {
		if hasNoun && len(current) > 0 {
			// Trim leading determiners from the stored phrase.
			start := 0
			for start < len(current) && tagWord(current[start]) == tagDet {
				start++
			}
			// Trim trailing non-noun modifiers (e.g. a dangling number).
			end := len(current)
			for end > start && tagWord(current[end-1]) != tagNoun {
				end--
			}
			if end > start {
				phrase := strings.ToLower(strings.Join(current[start:end], " "))
				if !Stopword(phrase) {
					phrases = append(phrases, phrase)
				}
			}
		}
		current = current[:0]
		hasNoun = false
	}

	for _, t := range toks {
		kind := t.Kind()
		if kind == KindPunct || kind == KindCurrency || kind == KindPercent {
			flush()
			continue
		}
		switch tagWord(t.Text) {
		case tagNoun:
			current = append(current, t.Text)
			hasNoun = true
		case tagAdj, tagDet, tagNum:
			current = append(current, t.Text)
		default:
			flush()
		}
	}
	flush()
	return phrases
}

// PhraseOverlap returns the overlap coefficient between the two noun-phrase
// multisets, counting a match when the phrases are equal or one head-matches
// the other (same final word).
func PhraseOverlap(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Pass 1: exact multiset matching, consuming matched b phrases.
	bExact := make(map[string]int, len(b))
	for _, p := range b {
		bExact[p]++
	}
	matches := 0
	var aRest []string
	for _, p := range a {
		if bExact[p] > 0 {
			bExact[p]--
			matches++
		} else {
			aRest = append(aRest, p)
		}
	}
	// Pass 2: head matching on the unconsumed remainder only, so a single b
	// phrase can never be matched twice.
	bHeads := make(map[string]int, len(b))
	for p, n := range bExact {
		bHeads[phraseHead(p)] += n
	}
	for _, p := range aRest {
		h := phraseHead(p)
		if bHeads[h] > 0 {
			bHeads[h]--
			matches++
		}
	}
	return float64(matches) / float64(minInt(len(a), len(b)))
}

func phraseHead(p string) string {
	if i := strings.LastIndexByte(p, ' '); i >= 0 {
		return p[i+1:]
	}
	return p
}
