package nlp

import "sort"

// Indexed bags are the hot-loop form of WeightedBag. The classify stage
// evaluates the f2 overlap for every mention×candidate pair, and the map-based
// OverlapCoefficient pays hashing and a full Total() recomputation per call.
// An IndexedBag interns words to dense int32 ids once per document, keeps the
// (id, weight) pairs sorted by id, and precomputes the bag total, so the
// per-pair overlap reduces to a linear merge scan over two sorted slices.
//
// Equivalence contract: every IndexedBag operation reproduces its WeightedBag
// counterpart bit for bit. Totals and overlap numerators go through the same
// sumSorted as WeightedBag.Total/OverlapCoefficient, so the floating-point
// accumulation order — and therefore every downstream feature score — is
// unchanged. similarity_test.go pins this with property-style comparisons.

// Interner assigns dense int32 ids to words. The zero value is not usable;
// call NewInterner. Ids are assignment-ordered, so two bags indexed through
// the same Interner are comparable while ids from different Interners are not.
type Interner struct {
	ids map[string]int32
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int32)}
}

// ID returns the id for word, assigning the next free one on first sight.
func (in *Interner) ID(word string) int32 {
	if id, ok := in.ids[word]; ok {
		return id
	}
	id := int32(len(in.ids))
	in.ids[word] = id
	return id
}

// IndexedBag is a WeightedBag compiled against an Interner: ids sorted
// ascending, weights parallel, total precomputed. Immutable after
// construction; safe for concurrent reads.
type IndexedBag struct {
	IDs     []int32
	Weights []float64
	Total   float64
}

// IndexBag compiles bag through the interner. The Total field is computed by
// the same sorted summation as WeightedBag.Total, so it is bit-identical.
func IndexBag(b WeightedBag, in *Interner) IndexedBag {
	out := IndexedBag{
		IDs:     make([]int32, 0, len(b)),
		Weights: make([]float64, 0, len(b)),
	}
	for w := range b {
		out.IDs = append(out.IDs, in.ID(w))
	}
	sort.Slice(out.IDs, func(i, j int) bool { return out.IDs[i] < out.IDs[j] })
	// Re-resolve weights in id order. The interner map lookup per word is
	// construction-time cost, paid once per bag, not per pair.
	byID := make(map[int32]float64, len(b))
	for w, weight := range b {
		byID[in.ids[w]] = weight
	}
	for _, id := range out.IDs {
		out.Weights = append(out.Weights, byID[id])
	}
	vals := make([]float64, len(out.Weights))
	copy(vals, out.Weights)
	out.Total = sumSorted(vals)
	return out
}

// MergeIndexed returns the max-weight union of the two bags — the indexed
// counterpart of merging WeightedBags through Add — with the total recomputed
// from the merged weights (same sorted summation as WeightedBag.Total).
func MergeIndexed(a, b IndexedBag) IndexedBag {
	out := IndexedBag{
		IDs:     make([]int32, 0, len(a.IDs)+len(b.IDs)),
		Weights: make([]float64, 0, len(a.IDs)+len(b.IDs)),
	}
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] < b.IDs[j]:
			out.IDs = append(out.IDs, a.IDs[i])
			out.Weights = append(out.Weights, a.Weights[i])
			i++
		case a.IDs[i] > b.IDs[j]:
			out.IDs = append(out.IDs, b.IDs[j])
			out.Weights = append(out.Weights, b.Weights[j])
			j++
		default:
			out.IDs = append(out.IDs, a.IDs[i])
			out.Weights = append(out.Weights, maxFloat(a.Weights[i], b.Weights[j]))
			i++
			j++
		}
	}
	out.IDs = append(out.IDs, a.IDs[i:]...)
	out.Weights = append(out.Weights, a.Weights[i:]...)
	out.IDs = append(out.IDs, b.IDs[j:]...)
	out.Weights = append(out.Weights, b.Weights[j:]...)
	vals := make([]float64, len(out.Weights))
	copy(vals, out.Weights)
	out.Total = sumSorted(vals)
	return out
}

// IndexedOverlap returns the weighted overlap coefficient of two bags indexed
// through the same Interner, bit-identical to OverlapCoefficient on the
// corresponding WeightedBags: the common-word minimum weights form the same
// multiset, summed by the same sumSorted, divided by the same minimum total.
// scratch backs the intersection buffer; the (possibly grown) slice is
// returned for reuse so the per-pair loop stays allocation-free.
func IndexedOverlap(a, b IndexedBag, scratch []float64) (float64, []float64) {
	if a.Total == 0 || b.Total == 0 {
		return 0, scratch
	}
	overlaps := scratch[:0]
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] < b.IDs[j]:
			i++
		case a.IDs[i] > b.IDs[j]:
			j++
		default:
			overlaps = append(overlaps, minFloat(a.Weights[i], b.Weights[j]))
			i++
			j++
		}
	}
	return sumSorted(overlaps) / minFloat(a.Total, b.Total), overlaps
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// PhraseInterner assigns dense ids to noun phrases and their head words so
// that the per-pair f4 overlap runs on sorted id slices. Phrase ids and head
// ids live in separate id spaces; HeadOf maps the former to the latter.
type PhraseInterner struct {
	phrases *Interner
	heads   *Interner
	headOf  []int32 // phrase id → head id
}

// NewPhraseInterner returns an empty phrase interner.
func NewPhraseInterner() *PhraseInterner {
	return &PhraseInterner{phrases: NewInterner(), heads: NewInterner()}
}

// NumHeads returns the number of distinct head words seen so far — the
// required length of the matched-per-head scratch in PhraseOverlapIndexed.
func (pi *PhraseInterner) NumHeads() int { return len(pi.heads.ids) }

// IndexedPhrases is a noun-phrase multiset compiled against a PhraseInterner:
// phrase (id, count) pairs sorted by id, head (id, total count) pairs sorted
// by id, and the multiset size. Immutable after construction.
type IndexedPhrases struct {
	IDs        []int32
	Counts     []int32
	HeadIDs    []int32
	HeadCounts []int32
	N          int
}

// IndexPhrases compiles a phrase list through the interner.
func (pi *PhraseInterner) IndexPhrases(phrases []string) IndexedPhrases {
	counts := make(map[int32]int32, len(phrases))
	headCounts := make(map[int32]int32, len(phrases))
	for _, p := range phrases {
		id := pi.phrases.ID(p)
		if int(id) == len(pi.headOf) {
			pi.headOf = append(pi.headOf, pi.heads.ID(phraseHead(p)))
		}
		counts[id]++
		headCounts[pi.headOf[id]]++
	}
	out := IndexedPhrases{N: len(phrases)}
	out.IDs, out.Counts = sortedCounts(counts)
	out.HeadIDs, out.HeadCounts = sortedCounts(headCounts)
	return out
}

func sortedCounts(m map[int32]int32) ([]int32, []int32) {
	ids := make([]int32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	counts := make([]int32, len(ids))
	for i, id := range ids {
		counts[i] = m[id]
	}
	return ids, counts
}

// PhraseOverlapIndexed returns PhraseOverlap on two phrase lists indexed
// through the same PhraseInterner — exactly equal, not approximately: both
// passes of the greedy reference reduce to count arithmetic. Pass 1's greedy
// exact matching consumes min(countA, countB) per distinct phrase; pass 2's
// head matching on the leftovers consumes min(remainderA, remainderB) per
// distinct head, where each exact match removed one phrase of that head from
// both sides. matched is the per-head scratch (NumHeads long, all zero on
// entry and reset to zero on exit) and touched its dirty list; both are
// returned, possibly regrown, for reuse.
func PhraseOverlapIndexed(pi *PhraseInterner, a, b IndexedPhrases, matched []int32, touched []int32) (float64, []int32, []int32) {
	if a.N == 0 || b.N == 0 {
		return 0, matched, touched
	}
	if need := pi.NumHeads(); cap(matched) < need {
		matched = make([]int32, need)
	} else {
		matched = matched[:need]
	}
	touched = touched[:0]
	headOf := pi.headOf
	m := int32(0)
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] < b.IDs[j]:
			i++
		case a.IDs[i] > b.IDs[j]:
			j++
		default:
			c := a.Counts[i]
			if b.Counts[j] < c {
				c = b.Counts[j]
			}
			m += c
			h := headOf[a.IDs[i]]
			if matched[h] == 0 {
				touched = append(touched, h)
			}
			matched[h] += c
			i++
			j++
		}
	}
	i, j = 0, 0
	for i < len(a.HeadIDs) && j < len(b.HeadIDs) {
		switch {
		case a.HeadIDs[i] < b.HeadIDs[j]:
			i++
		case a.HeadIDs[i] > b.HeadIDs[j]:
			j++
		default:
			h := a.HeadIDs[i]
			remA := a.HeadCounts[i] - matched[h]
			remB := b.HeadCounts[j] - matched[h]
			if remA > 0 && remB > 0 {
				if remA < remB {
					m += remA
				} else {
					m += remB
				}
			}
			i++
			j++
		}
	}
	for _, h := range touched {
		matched[h] = 0
	}
	n := a.N
	if b.N < n {
		n = b.N
	}
	return float64(m) / float64(n), matched, touched
}
