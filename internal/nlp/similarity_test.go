package nlp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJaroWinklerKnownValues(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
		tol  float64
	}{
		{"MARTHA", "MARHTA", 0.9611, 0.001},
		{"DWAYNE", "DUANE", 0.8400, 0.001},
		{"DIXON", "DICKSONX", 0.8133, 0.001},
		{"", "", 1, 0},
		{"abc", "abc", 1, 0},
		{"abc", "", 0, 0},
		{"", "abc", 0, 0},
	}
	for _, tc := range tests {
		got := JaroWinkler(tc.a, tc.b)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("JaroWinkler(%q,%q) = %.4f, want %.4f", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaroWinklerPrefixPreference(t *testing.T) {
	// The paper's motivating case: "26.7$" must be closer to "26.65$" than
	// to "29.75$" because they share a prefix.
	near := JaroWinkler("26.7$", "26.65$")
	far := JaroWinkler("26.7$", "29.75$")
	if near <= far {
		t.Errorf("prefix preference violated: sim(26.7$,26.65$)=%.4f <= sim(26.7$,29.75$)=%.4f", near, far)
	}
}

func TestJaroWinklerProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randStr := func() string {
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(6))
		}
		return string(b)
	}
	for i := 0; i < 2000; i++ {
		a, b := randStr(), randStr()
		s := JaroWinkler(a, b)
		if s < 0 || s > 1 {
			t.Fatalf("JaroWinkler(%q,%q) = %v out of [0,1]", a, b, s)
		}
		if got := JaroWinkler(b, a); math.Abs(got-s) > 1e-12 {
			t.Fatalf("asymmetric: JW(%q,%q)=%v, JW(%q,%q)=%v", a, b, s, b, a, got)
		}
		if a == b && s != 1 {
			t.Fatalf("identity: JW(%q,%q)=%v, want 1", a, b, s)
		}
	}
}

func TestOverlapCoefficient(t *testing.T) {
	a := NewWeightedBag([]string{"net", "income", "2013"})
	b := NewWeightedBag([]string{"income", "taxes", "2013", "2012"})
	// Common: income, 2013 → 2; min total = 3.
	if got, want := OverlapCoefficient(a, b), 2.0/3.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("OverlapCoefficient = %v, want %v", got, want)
	}
}

func TestOverlapCoefficientWeighted(t *testing.T) {
	a := WeightedBag{}
	a.Add("revenue", 1.0)
	a.Add("total", 0.5)
	b := WeightedBag{}
	b.Add("revenue", 1.0)
	b.Add("gross", 1.0)
	// Common weight = 1.0; min(total) = min(1.5, 2.0) = 1.5.
	if got, want := OverlapCoefficient(a, b), 1.0/1.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("weighted OverlapCoefficient = %v, want %v", got, want)
	}
}

func TestOverlapCoefficientEdgeCases(t *testing.T) {
	empty := WeightedBag{}
	full := NewWeightedBag([]string{"x"})
	if got := OverlapCoefficient(empty, full); got != 0 {
		t.Errorf("empty bag overlap = %v, want 0", got)
	}
	if got := OverlapCoefficient(full, full); got != 1 {
		t.Errorf("self overlap = %v, want 1", got)
	}
}

func TestWeightedBagAddKeepsMax(t *testing.T) {
	b := WeightedBag{}
	b.Add("w", 0.3)
	b.Add("w", 0.9)
	b.Add("w", 0.5)
	if b["w"] != 0.9 {
		t.Errorf("Add should keep max weight, got %v", b["w"])
	}
	b.Add("neg", -1)
	if b["neg"] != 0 {
		t.Errorf("negative weights should clamp to 0, got %v", b["neg"])
	}
}

func TestOverlapCoefficientProperties(t *testing.T) {
	check := func(aw, bw []uint8) bool {
		a, b := WeightedBag{}, WeightedBag{}
		for i, w := range aw {
			a.Add(string(rune('a'+i%8)), float64(w%10))
		}
		for i, w := range bw {
			b.Add(string(rune('a'+i%8)), float64(w%10))
		}
		got := OverlapCoefficient(a, b)
		sym := OverlapCoefficient(b, a)
		return got >= 0 && got <= 1+1e-12 && math.Abs(got-sym) < 1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestJaccardTokens(t *testing.T) {
	a := []string{"Total", "Revenue", "income", "the"}
	b := []string{"revenue", "Income", "taxes", "a"}
	// Content sets: {total, revenue, income} and {revenue, income, taxes};
	// intersection 2, union 4.
	if got, want := JaccardTokens(a, b), 0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("JaccardTokens = %v, want %v", got, want)
	}
	if got := JaccardTokens(nil, b); got != 0 {
		t.Errorf("JaccardTokens(nil, b) = %v, want 0", got)
	}
	if got := JaccardTokens([]string{"the", "a"}, b); got != 0 {
		t.Errorf("stopword-only Jaccard = %v, want 0", got)
	}
}

// TestWeightedBagSumsDeterministic guards the sorted-summand accumulation in
// Total and OverlapCoefficient: map iteration order changes between range
// statements, and with non-dyadic weights a naive sum differs in the last
// ulps across calls, which cascades into run-to-run differences in pipeline
// scores.
func TestWeightedBagSumsDeterministic(t *testing.T) {
	a, b := WeightedBag{}, WeightedBag{}
	for i := 0; i < 60; i++ {
		w := 1 - float64(i%7)/3*0.31 // deliberately inexact weights
		if w < 0.05 {
			w = 0.05
		}
		a.Add(fmt.Sprintf("w%02d", i), w)
		if i%2 == 0 {
			b.Add(fmt.Sprintf("w%02d", i), w*0.9)
		}
	}
	wantTotal := a.Total()
	wantOverlap := OverlapCoefficient(a, b)
	for i := 0; i < 200; i++ {
		if got := a.Total(); got != wantTotal {
			t.Fatalf("Total varies across calls: %v vs %v", got, wantTotal)
		}
		if got := OverlapCoefficient(a, b); got != wantOverlap {
			t.Fatalf("OverlapCoefficient varies across calls: %v vs %v", got, wantOverlap)
		}
	}
}
