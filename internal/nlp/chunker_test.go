package nlp

import (
	"reflect"
	"testing"
)

func TestNounPhrases(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{
			"Segment profit was up 11%",
			[]string{"segment profit"},
		},
		{
			"The net income of 2013",
			[]string{"net income"},
		},
		{
			"the least affordable option with 37K EUR in Germany",
			[]string{"affordable option", "germany"},
		},
		{
			"Total Revenue and Gross income",
			[]string{"total revenue", "gross income"},
		},
		{"", nil},
		{"5 % , .", nil},
		{
			"taxable bond funds had an inflow",
			[]string{"taxable bond funds", "inflow"},
		},
	}
	for _, tc := range tests {
		got := NounPhrases(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("NounPhrases(%q) = %#v, want %#v", tc.in, got, tc.want)
		}
	}
}

func TestNounPhrasesNumberNeverHead(t *testing.T) {
	for _, phrase := range NounPhrases("sales of 123 patients in 2013") {
		head := phraseHead(phrase)
		if head[0] >= '0' && head[0] <= '9' {
			t.Errorf("numeric head in phrase %q", phrase)
		}
	}
}

func TestPhraseOverlap(t *testing.T) {
	a := []string{"segment profit", "sales"}
	b := []string{"segment profit", "segment margin"}
	if got := PhraseOverlap(a, b); got != 0.5 {
		t.Errorf("exact overlap = %v, want 0.5", got)
	}

	// Head match: "gross profit" head-matches "segment profit".
	a = []string{"gross profit"}
	b = []string{"segment profit"}
	if got := PhraseOverlap(a, b); got != 1 {
		t.Errorf("head overlap = %v, want 1", got)
	}

	if got := PhraseOverlap(nil, b); got != 0 {
		t.Errorf("empty overlap = %v, want 0", got)
	}
}

func TestPhraseOverlapBounded(t *testing.T) {
	a := []string{"x y", "x y", "z"}
	b := []string{"x y"}
	got := PhraseOverlap(a, b)
	if got < 0 || got > 1 {
		t.Errorf("PhraseOverlap out of range: %v", got)
	}
}

func TestTagWord(t *testing.T) {
	tests := []struct {
		w    string
		want posTag
	}{
		{"the", tagDet},
		{"of", tagPrep},
		{"total", tagAdj},
		{"financial", tagAdj},
		{"revenue", tagNoun},
		{"increased", tagVerb},
		{"123", tagNum},
		{"Germany", tagNoun},
	}
	for _, tc := range tests {
		if got := tagWord(tc.w); got != tc.want {
			t.Errorf("tagWord(%q) = %v, want %v", tc.w, got, tc.want)
		}
	}
}
