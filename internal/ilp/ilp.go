// Package ilp implements the alternative global-resolution algorithm the
// paper considered and dismissed: exact constraint reasoning formulated as a
// 0/1 integer program ("we also considered an alternative algorithm based on
// constraint reasoning with Integer Linear Programming and experimented with
// it, but that approach did not scale sufficiently well", §VI).
//
// The formulation: a binary variable y_{x,c} per candidate pair, at most one
// chosen pair per text mention, objective = Σ prior(x,c)·y_{x,c} +
// Σ coherence(c₁,c₂)·y₁·y₂ over pairs of chosen assignments. The quadratic
// coherence term is handled exactly by branch-and-bound over joint
// assignments with an admissible upper bound. The solver is exact — and
// exponential in the worst case, which is precisely the scaling failure the
// ablation bench reproduces.
package ilp

import (
	"context"
	"errors"
	"sort"
	"time"
)

// Cand is one candidate assignment for a mention: an arbitrary target id
// with a prior score.
type Cand struct {
	Target int
	Score  float64
}

// Problem is a joint assignment problem.
type Problem struct {
	// Candidates lists, per mention, its candidate targets.
	Candidates [][]Cand
	// Coherence returns the pairwise bonus for choosing both targets
	// (symmetric, ≥ 0). A nil function means no coherence term.
	Coherence func(a, b int) float64
	// MinScore is the minimum total gain for an assignment to be preferred
	// over leaving the mention unassigned (the ε analogue).
	MinScore float64
}

// Solution is the solver output.
type Solution struct {
	// Assignment[i] is the chosen candidate index for mention i, or -1.
	Assignment []int
	Objective  float64
	Optimal    bool          // false when the deadline interrupted the search
	Nodes      int           // branch-and-bound nodes expanded
	Elapsed    time.Duration // wall time spent
}

// ErrNoCandidates reports an empty problem.
var ErrNoCandidates = errors.New("ilp: problem has no mentions")

// ErrBudgetExhausted reports a search interrupted by its time budget (or the
// context's deadline) before reaching proven optimality. The accompanying
// Solution still carries the best incumbent found — callers decide whether a
// partial answer is acceptable or whether to fall back to another strategy —
// but the condition is a typed error (errors.Is-testable) instead of a silent
// Optimal=false flag.
var ErrBudgetExhausted = errors.New("ilp: time budget exhausted before optimality")

// Solve runs exact branch-and-bound. The deadline bounds wall time; on
// expiry the best solution found so far is returned with Optimal=false.
//
// Deprecated: use SolveContext, which distinguishes budget exhaustion with a
// typed ErrBudgetExhausted and honors caller cancellation. Solve keeps the
// legacy contract (partial answer, nil error) for existing benchmarks.
func Solve(p Problem, deadline time.Duration) (Solution, error) {
	sol, err := SolveContext(context.Background(), p, deadline)
	if errors.Is(err, ErrBudgetExhausted) {
		return sol, nil
	}
	return sol, err
}

// SolveContext runs exact branch-and-bound under two cooperative limits,
// checked inside the search loop: the budget bounds wall time for this solve,
// and ctx carries caller cancellation and deadlines. When the budget (or the
// context's deadline) expires mid-search, the best incumbent found so far is
// returned together with ErrBudgetExhausted; when ctx is cancelled outright,
// ctx.Err() is returned and the partial solution is discarded.
func SolveContext(ctx context.Context, p Problem, budget time.Duration) (Solution, error) {
	if len(p.Candidates) == 0 {
		return Solution{}, ErrNoCandidates
	}
	deadline := budget
	if deadline <= 0 {
		deadline = time.Second
	}
	coh := p.Coherence
	if coh == nil {
		coh = func(_, _ int) float64 { return 0 }
	}

	s := &solver{
		p:        p,
		coh:      coh,
		ctx:      ctx,
		start:    time.Now(),
		deadline: deadline,
		best:     make([]int, len(p.Candidates)),
		current:  make([]int, len(p.Candidates)),
		optimal:  true,
	}
	for i := range s.best {
		s.best[i] = -1
		s.current[i] = -1
	}

	// Order mentions by decreasing top score so good bounds appear early.
	s.order = make([]int, len(p.Candidates))
	for i := range s.order {
		s.order[i] = i
	}
	sort.Slice(s.order, func(a, b int) bool {
		return topScore(p.Candidates[s.order[a]]) > topScore(p.Candidates[s.order[b]])
	})

	// maxGain[i] = an upper bound on the contribution of mention order[i:]:
	// each mention can add at most its best score plus the largest possible
	// coherence with every other mention.
	s.maxGain = make([]float64, len(s.order)+1)
	maxCoh := s.maxCoherence()
	for i := len(s.order) - 1; i >= 0; i-- {
		gain := topScore(p.Candidates[s.order[i]])
		if gain < 0 {
			gain = 0
		}
		s.maxGain[i] = s.maxGain[i+1] + gain + maxCoh*float64(len(s.order)-1)
	}

	s.branch(0, 0)
	sol := Solution{
		Assignment: s.best,
		Objective:  s.bestObj,
		Optimal:    s.optimal,
		Nodes:      s.nodes,
		Elapsed:    time.Since(s.start),
	}
	if s.cancelled != nil {
		return Solution{}, s.cancelled
	}
	if !s.optimal {
		return sol, ErrBudgetExhausted
	}
	return sol, nil
}

type solver struct {
	p        Problem
	coh      func(a, b int) float64
	ctx      context.Context
	order    []int
	maxGain  []float64
	start    time.Time
	deadline time.Duration

	current   []int
	best      []int
	bestObj   float64
	nodes     int
	optimal   bool
	cancelled error // ctx.Err() on outright cancellation (not deadline)
}

func topScore(cands []Cand) float64 {
	best := 0.0
	for _, c := range cands {
		if c.Score > best {
			best = c.Score
		}
	}
	return best
}

// maxCoherence scans candidate target pairs for the largest coherence bonus
// (sampled cap for very large problems — the bound stays admissible because
// sampling can only underestimate the true maximum, so we take the max of
// the sample and a conservative default of the largest observed value).
func (s *solver) maxCoherence() float64 {
	var targets []int
	for _, cands := range s.p.Candidates {
		for _, c := range cands {
			targets = append(targets, c.Target)
		}
	}
	maxC := 0.0
	// Full scan up to a size budget, then stride-sample.
	stride := 1
	if len(targets) > 200 {
		stride = len(targets) / 200
	}
	for i := 0; i < len(targets); i += stride {
		for j := i + stride; j < len(targets); j += stride {
			if c := s.coh(targets[i], targets[j]); c > maxC {
				maxC = c
			}
		}
	}
	return maxC
}

// expired is the cooperative limit check, amortized to every 256th node: the
// solve's own time budget, the context's deadline (both reported as budget
// exhaustion) and outright cancellation (recorded separately so the caller
// gets ctx.Err(), not a partial answer).
func (s *solver) expired() bool {
	if s.nodes%256 != 0 {
		return false
	}
	if time.Since(s.start) > s.deadline {
		return true
	}
	switch err := s.ctx.Err(); {
	case err == nil:
		return false
	case errors.Is(err, context.Canceled):
		s.cancelled = err
		return true
	default: // context.DeadlineExceeded: the caller's budget, same semantics
		return true
	}
}

// branch explores assignments for order[level:].
func (s *solver) branch(level int, obj float64) {
	s.nodes++
	if s.expired() {
		s.optimal = false
		return
	}
	if level == len(s.order) {
		if obj > s.bestObj {
			s.bestObj = obj
			copy(s.best, s.current)
		}
		return
	}
	if obj+s.maxGain[level] <= s.bestObj {
		return // bound: cannot beat the incumbent
	}

	mi := s.order[level]

	// Candidate branches, best prior first.
	cands := s.p.Candidates[mi]
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cands[idx[a]].Score > cands[idx[b]].Score })

	for _, ci := range idx {
		gain := cands[ci].Score
		for j := 0; j < len(s.current); j++ {
			if s.current[j] < 0 || j == mi {
				continue
			}
			gain += s.coh(cands[ci].Target, s.p.Candidates[j][s.current[j]].Target)
		}
		if gain < s.p.MinScore {
			continue
		}
		s.current[mi] = ci
		s.branch(level+1, obj+gain)
		s.current[mi] = -1
		if !s.optimal {
			return
		}
	}

	// Unassigned branch.
	s.branch(level+1, obj)
}
