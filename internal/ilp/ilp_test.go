package ilp

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestSolveEmpty(t *testing.T) {
	if _, err := Solve(Problem{}, time.Second); err != ErrNoCandidates {
		t.Errorf("want ErrNoCandidates, got %v", err)
	}
}

func TestSolvePicksBestPriors(t *testing.T) {
	p := Problem{
		Candidates: [][]Cand{
			{{Target: 0, Score: 0.3}, {Target: 1, Score: 0.9}},
			{{Target: 2, Score: 0.7}, {Target: 3, Score: 0.2}},
		},
	}
	sol, err := Solve(p, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal {
		t.Error("trivial problem should solve optimally")
	}
	if sol.Assignment[0] != 1 || sol.Assignment[1] != 0 {
		t.Errorf("assignment = %v, want [1 0]", sol.Assignment)
	}
	if sol.Objective != 1.6 {
		t.Errorf("objective = %v, want 1.6", sol.Objective)
	}
}

func TestSolveMinScoreAbstains(t *testing.T) {
	p := Problem{
		Candidates: [][]Cand{{{Target: 0, Score: 0.1}}},
		MinScore:   0.5,
	}
	sol, err := Solve(p, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assignment[0] != -1 {
		t.Errorf("low-score candidate should be skipped, got %v", sol.Assignment)
	}
}

func TestSolveCoherenceFlipsDecision(t *testing.T) {
	// Mention 0 prefers target 1 locally (0.6 > 0.5), but target 0 is
	// coherent with mention 1's clear choice (target 2) — the joint optimum
	// assigns target 0. This is the Fig. 3 coupling in miniature.
	coherent := map[[2]int]float64{{0, 2}: 0.4, {2, 0}: 0.4}
	p := Problem{
		Candidates: [][]Cand{
			{{Target: 0, Score: 0.5}, {Target: 1, Score: 0.6}},
			{{Target: 2, Score: 0.9}},
		},
		Coherence: func(a, b int) float64 { return coherent[[2]int{a, b}] },
	}
	sol, err := Solve(p, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assignment[0] != 0 {
		t.Errorf("coherence should flip mention 0 to target 0, got %v", sol.Assignment)
	}
	if want := 0.5 + 0.9 + 0.4; sol.Objective != want {
		t.Errorf("objective = %v, want %v", sol.Objective, want)
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		nMentions := 2 + rng.Intn(3)
		nTargets := 4 + rng.Intn(3)
		coh := make(map[[2]int]float64)
		for a := 0; a < nTargets; a++ {
			for b := a + 1; b < nTargets; b++ {
				if rng.Float64() < 0.3 {
					w := rng.Float64() * 0.3
					coh[[2]int{a, b}] = w
					coh[[2]int{b, a}] = w
				}
			}
		}
		p := Problem{
			Coherence: func(a, b int) float64 { return coh[[2]int{a, b}] },
			MinScore:  0.05,
		}
		for m := 0; m < nMentions; m++ {
			var cands []Cand
			for c := 0; c < 1+rng.Intn(3); c++ {
				cands = append(cands, Cand{Target: rng.Intn(nTargets), Score: rng.Float64()})
			}
			p.Candidates = append(p.Candidates, cands)
		}

		sol, err := Solve(p, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(p)
		if diff := sol.Objective - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: solver %v != brute force %v", trial, sol.Objective, want)
		}
	}
}

// bruteForce enumerates every assignment.
func bruteForce(p Problem) float64 {
	best := 0.0
	var rec func(level int, chosen []int)
	rec = func(level int, chosen []int) {
		if level == len(p.Candidates) {
			obj := 0.0
			for i, ci := range chosen {
				if ci < 0 {
					continue
				}
				gain := p.Candidates[i][ci].Score
				for j := 0; j < i; j++ {
					if chosen[j] >= 0 {
						gain += p.Coherence(p.Candidates[i][ci].Target, p.Candidates[j][chosen[j]].Target)
					}
				}
				// Enforce MinScore the way the solver does: gain vs already
				// assigned mentions at assignment time. For brute force we
				// approximate by the final marginal gain, which matches the
				// solver because coherence is symmetric and order-insensitive
				// in the total.
				obj += gain
			}
			// Reject assignments the solver would never build: any mention
			// whose marginal gain (score + coherence to others) < MinScore.
			for i, ci := range chosen {
				if ci < 0 {
					continue
				}
				gain := p.Candidates[i][ci].Score
				for j := range chosen {
					if j != i && chosen[j] >= 0 {
						gain += p.Coherence(p.Candidates[i][ci].Target, p.Candidates[j][chosen[j]].Target)
					}
				}
				if gain < p.MinScore {
					return
				}
			}
			if obj > best {
				best = obj
			}
			return
		}
		rec(level+1, append(chosen, -1))
		for ci := range p.Candidates[level] {
			rec(level+1, append(chosen, ci))
		}
	}
	rec(0, nil)
	return best
}

func TestSolveDeadline(t *testing.T) {
	// A big coupled problem: the solver must respect the deadline and
	// report non-optimality rather than hang — the "did not scale" behavior.
	rng := rand.New(rand.NewSource(9))
	p := Problem{
		Coherence: func(a, b int) float64 {
			if (a+b)%3 == 0 {
				return 0.2
			}
			return 0
		},
	}
	for m := 0; m < 18; m++ {
		var cands []Cand
		for c := 0; c < 12; c++ {
			cands = append(cands, Cand{Target: rng.Intn(100), Score: 0.4 + rng.Float64()*0.2})
		}
		p.Candidates = append(p.Candidates, cands)
	}
	start := time.Now()
	sol, err := Solve(p, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline ignored: ran %v", elapsed)
	}
	if sol.Nodes == 0 {
		t.Error("no nodes expanded")
	}
}

// hardProblem builds a dense, weakly-coupled instance whose near-uniform
// scores defeat the bound, guaranteeing the search outlasts any small budget.
func hardProblem() Problem {
	rng := rand.New(rand.NewSource(21))
	p := Problem{
		Coherence: func(a, b int) float64 {
			if (a+b)%3 == 0 {
				return 0.2
			}
			return 0
		},
	}
	for m := 0; m < 18; m++ {
		var cands []Cand
		for c := 0; c < 12; c++ {
			cands = append(cands, Cand{Target: rng.Intn(100), Score: 0.4 + rng.Float64()*0.2})
		}
		p.Candidates = append(p.Candidates, cands)
	}
	return p
}

func TestSolveContextBudgetExhausted(t *testing.T) {
	sol, err := SolveContext(context.Background(), hardProblem(), time.Millisecond)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if sol.Optimal {
		t.Error("exhausted solve reported Optimal")
	}
	if len(sol.Assignment) == 0 {
		t.Error("exhausted solve should still carry the best incumbent")
	}
	if sol.Nodes == 0 {
		t.Error("no nodes expanded")
	}
}

func TestSolveContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := SolveContext(ctx, hardProblem(), time.Minute)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(sol.Assignment) != 0 {
		t.Errorf("cancelled solve must discard the partial answer, got %v", sol.Assignment)
	}
}

func TestSolveContextDeadlineActsAsBudget(t *testing.T) {
	// A context deadline mid-search is the caller's budget: same typed error
	// as the solver's own budget, incumbent preserved.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	sol, err := SolveContext(ctx, hardProblem(), time.Minute)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if len(sol.Assignment) == 0 {
		t.Error("deadline-exhausted solve should still carry the best incumbent")
	}
}

func TestSolveLegacyWrapperMapsExhaustion(t *testing.T) {
	// The deprecated Solve keeps its historical contract: budget exhaustion is
	// a nil error with Optimal=false, so pre-refactor callers (the root bench)
	// keep compiling and behaving identically.
	sol, err := Solve(hardProblem(), time.Millisecond)
	if err != nil {
		t.Fatalf("legacy Solve must map ErrBudgetExhausted to nil, got %v", err)
	}
	if sol.Optimal {
		t.Error("exhausted legacy solve reported Optimal")
	}
}
