// Package quantity implements quantity mention extraction and normalization
// (§III of the paper): scanning text and table cells for numeric quantities,
// attaching units and scale words, normalizing surface forms ("0.5 million" →
// 500000), and classifying approximation cues. It also defines the aggregate
// function vocabulary (sum, difference, percentage, change ratio, average,
// min, max) shared by the virtual-cell generator, the text-mention tagger and
// the feature extractor.
package quantity

import (
	"fmt"
	"math"
	"strings"
)

// Agg identifies an aggregate function over table cells (§II-A) or the
// single-cell case.
type Agg int

// Aggregate functions. SingleCell denotes a direct (non-aggregated) cell
// reference. The paper's experiments use Sum, Diff, Percent and Ratio (the
// aggregations appearing in ≥5% of tables); Avg, Min and Max are supported by
// the framework and exercised by extension benches.
const (
	SingleCell Agg = iota
	Sum
	Diff
	Percent
	Ratio
	Avg
	Min
	Max
	numAggs
)

// NumAggs is the number of distinct Agg values.
const NumAggs = int(numAggs)

var aggNames = [...]string{"single-cell", "sum", "diff", "percent", "ratio", "avg", "min", "max"}

// String returns the canonical lowercase name of the aggregation.
func (a Agg) String() string {
	if a < 0 || int(a) >= len(aggNames) {
		return fmt.Sprintf("agg(%d)", int(a))
	}
	return aggNames[a]
}

// Valid reports whether a is a defined aggregation value.
func (a Agg) Valid() bool { return a >= 0 && a < numAggs }

// Apply computes the aggregate over the given values. It returns false when
// the aggregation is undefined for the inputs (wrong arity, division by
// zero, or empty input).
func (a Agg) Apply(vals []float64) (float64, bool) {
	switch a {
	case SingleCell:
		if len(vals) != 1 {
			return 0, false
		}
		return vals[0], true
	case Sum:
		if len(vals) < 2 {
			return 0, false
		}
		var s float64
		for _, v := range vals {
			s += v
		}
		return s, true
	case Avg:
		if len(vals) < 2 {
			return 0, false
		}
		var s float64
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals)), true
	case Diff:
		if len(vals) != 2 {
			return 0, false
		}
		return vals[0] - vals[1], true
	case Percent:
		if len(vals) != 2 || vals[1] == 0 {
			return 0, false
		}
		return vals[0] / vals[1] * 100, true
	case Ratio:
		if len(vals) != 2 || vals[0] == 0 {
			return 0, false
		}
		return (vals[0] - vals[1]) / vals[0], true
	case Min:
		if len(vals) < 2 {
			return 0, false
		}
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m, true
	case Max:
		if len(vals) < 2 {
			return 0, false
		}
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m, true
	}
	return 0, false
}

// Arity returns the (min, max) number of input cells the aggregation
// accepts; max = -1 means unbounded.
func (a Agg) Arity() (lo, hi int) {
	switch a {
	case SingleCell:
		return 1, 1
	case Diff, Percent, Ratio:
		return 2, 2
	default:
		return 2, -1
	}
}

// Approx classifies the approximation modifier accompanying a text mention
// (feature f11 and the tagger's approximation indicator, §IV-B/§V-A).
type Approx int

// Approximation indicator values.
const (
	ApproxNone Approx = iota // no modifier observed
	ApproxExact
	Approximate
	UpperBound
	LowerBound
)

var approxNames = [...]string{"none", "exact", "approximate", "upper-bound", "lower-bound"}

// String returns the canonical name of the approximation indicator.
func (a Approx) String() string {
	if a < 0 || int(a) >= len(approxNames) {
		return fmt.Sprintf("approx(%d)", int(a))
	}
	return approxNames[a]
}

// Mention is a quantity mention extracted from text or from a table cell.
type Mention struct {
	Surface   string  // raw surface form, e.g. "$3.26 billion CDN"
	Value     float64 // normalized numeric value, e.g. 3.26e9
	RawValue  float64 // unnormalized numeric part, e.g. 3.26 (feature f7)
	Unit      string  // canonical unit ("USD", "EUR", "%", "bps", ...), "" if none
	Scale     int     // order of magnitude of the normalized value (feature f9)
	Precision int     // digits after the decimal point in the surface (feature f10)
	Approx    Approx  // approximation indicator from surrounding cues
	Start     int     // byte offset of the mention in its source string
	End       int     // byte offset one past the mention
	Sentence  int     // index of the containing sentence (text mentions only)
	TokenPos  int     // index of the numeric token in the source token stream
}

// HasUnit reports whether the mention carries an explicit unit.
func (m Mention) HasUnit() bool { return m.Unit != "" }

// OrderOfMagnitude returns floor(log10(|v|)), and 0 for v == 0.
func OrderOfMagnitude(v float64) int {
	v = math.Abs(v)
	if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return int(math.Floor(math.Log10(v)))
}

// RelativeDifference returns |x−t| / max(|x|,|t|) in [0,1], the numeric
// distance of feature f6. It returns 0 when both values are 0 and 1 when
// exactly one is 0.
func RelativeDifference(x, t float64) float64 {
	ax, at := math.Abs(x), math.Abs(t)
	den := math.Max(ax, at)
	if den == 0 {
		return 0
	}
	d := math.Abs(x-t) / den
	if d > 1 {
		d = 1
	}
	return d
}

// approxCues maps lowercase cue words/phrases to approximation indicators
// (§V-A). Multi-word cues are matched greedily by the extractor.
var approxCues = map[string]Approx{
	"about": Approximate, "around": Approximate, "approximately": Approximate,
	"roughly": Approximate, "nearly": Approximate, "almost": Approximate,
	"ca": Approximate, "approx": Approximate, "circa": Approximate,
	"some": Approximate, "close to": Approximate,
	"exactly": ApproxExact, "precisely": ApproxExact,
	"more than": LowerBound, "over": LowerBound, "above": LowerBound,
	"at least": LowerBound, "exceeding": LowerBound, "upwards of": LowerBound,
	"less than": UpperBound, "under": UpperBound, "below": UpperBound,
	"at most": UpperBound, "up to": UpperBound, "fewer than": UpperBound,
}

// AggCues maps each aggregation to the cue words whose presence near a text
// mention signals that aggregation (§V-A: "total, summed, overall, together"
// for sum, and analogous lists).
var AggCues = map[Agg][]string{
	Sum:     {"total", "totals", "sum", "summed", "overall", "together", "combined", "altogether", "in all", "aggregate"},
	Diff:    {"difference", "gap", "more", "fewer", "less", "cheaper", "higher", "lower", "fell", "rose", "up", "down", "gain", "gained", "loss", "lost", "ahead of", "behind"},
	Percent: {"percent", "percentage", "share", "proportion", "of the total", "of all", "accounted for", "make up", "makes up"},
	Ratio:   {"increase", "increased", "decrease", "decreased", "growth", "change", "rate", "grew", "shrank", "declined", "climbed", "jumped", "dropped", "slipped"},
	Avg:     {"average", "averaged", "mean", "typical", "on average"},
	Min:     {"minimum", "least", "lowest", "smallest", "cheapest", "fewest", "bottom"},
	Max:     {"maximum", "most", "highest", "largest", "biggest", "top", "peak", "record"},
}

// aggCueIndex maps a single lowercase cue token to the aggregations it
// supports (first token of multi-word cues).
var aggCueIndex = buildAggCueIndex()

func buildAggCueIndex() map[string][]Agg {
	idx := make(map[string][]Agg)
	for agg, cues := range AggCues {
		for _, cue := range cues {
			if strings.IndexByte(cue, ' ') >= 0 {
				// Multi-word cues ("of the total", "in all") must not leak
				// their first word — "of" would cue percent everywhere.
				continue
			}
			idx[cue] = append(idx[cue], agg)
		}
	}
	return idx
}

// CueAggs returns the aggregations signalled by the given lowercase word,
// or nil when the word is not a cue.
func CueAggs(word string) []Agg { return aggCueIndex[word] }

// CueApprox returns the approximation indicator signalled by the given
// lowercase word or two-word phrase, and whether it is a cue at all.
func CueApprox(phrase string) (Approx, bool) {
	a, ok := approxCues[phrase]
	return a, ok
}
