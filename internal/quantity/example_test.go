package quantity_test

import (
	"fmt"

	"briq/internal/quantity"
)

func ExampleExtractText() {
	text := "Revenue of $3.26 billion was up 2% from the previous year."
	for _, m := range quantity.ExtractText(text) {
		fmt.Printf("%q = %g %s\n", m.Surface, m.Value, m.Unit)
	}
	// Output:
	// "$3.26 billion" = 3.26e+09 USD
	// "2%" = 2 %
}

func ExampleParseCell() {
	m, ok := quantity.ParseCell("$(9.49) Million")
	fmt.Println(ok, m.Value, m.Unit)
	// Output: true -9.49e+06 USD
}

func ExampleAgg_Apply() {
	sum, _ := quantity.Sum.Apply([]float64{35, 38, 34, 11, 5})
	ratio, _ := quantity.Ratio.Apply([]float64{890, 876})
	fmt.Printf("sum=%g ratio=%.4f\n", sum, ratio)
	// Output: sum=123 ratio=0.0157
}
