package quantity

import (
	"math"
	"strconv"
	"strings"
)

// parsedNumber is the result of parsing a bare numeric literal.
type parsedNumber struct {
	value     float64 // literal value including an attached suffix (37K → 37000)
	raw       float64 // literal value excluding any suffix (37K → 37)
	precision int     // digits after the decimal point
	negative  bool
}

// parseNumberLiteral parses a numeric literal as produced by the tokenizer:
// digits with grouping commas, an optional decimal point, and an optional
// directly attached scale suffix (K/M/B). Reports ok=false for non-numeric
// input.
func parseNumberLiteral(s string) (parsedNumber, bool) {
	var p parsedNumber
	if s == "" {
		return p, false
	}
	if s[0] == '-' || s[0] == '+' {
		p.negative = s[0] == '-'
		s = s[1:]
		if s == "" {
			return p, false
		}
	}
	// Detach a scale suffix.
	mult := 1.0
	if last := s[len(s)-1]; last == 'K' || last == 'k' {
		mult, s = 1e3, s[:len(s)-1]
	} else if last == 'M' || last == 'm' {
		mult, s = 1e6, s[:len(s)-1]
	} else if last == 'B' {
		mult, s = 1e9, s[:len(s)-1]
	}
	if s == "" {
		return p, false
	}
	// Grouping commas are separators; periods are decimal points. A comma
	// followed by exactly 2 digits at the end of the literal (European
	// decimal comma, e.g. "12,50" in isolation) is still treated as grouping
	// here because web tables in the corpus use Anglo formatting; the corpus
	// generator follows the same convention.
	clean := strings.ReplaceAll(s, ",", "")
	if strings.Count(clean, ".") > 1 {
		// Multi-dot literals such as section numbers "1.2.3" are not
		// quantities.
		return p, false
	}
	v, err := strconv.ParseFloat(clean, 64)
	if err != nil {
		return p, false
	}
	// ParseFloat accepts the spellings "NaN"/"Inf"/"Infinity"; those are not
	// quantities, and a non-finite Value would poison downstream arithmetic
	// (relative differences, feature vectors) and JSON encoding of alignments.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return p, false
	}
	if i := strings.IndexByte(clean, '.'); i >= 0 {
		p.precision = len(clean) - i - 1
	}
	if p.negative {
		v = -v
	}
	p.raw = v
	p.value = v * mult
	if math.IsInf(p.value, 0) {
		// A huge literal times a K/M/B suffix can overflow even though the
		// literal itself parsed as finite.
		return parsedNumber{}, false
	}
	return p, true
}

// ParseCell extracts at most one quantity mention from a table cell (§III:
// "for tables we attempt to extract a single quantity mention per cell,
// together with its unit if present"). It handles currency symbols before or
// after the number, percent signs, scale words, accounting-style negatives
// "(9.49)", and returns ok=false for non-numeric or empty cells ("--", "n/a").
func ParseCell(s string) (Mention, bool) {
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return Mention{}, false
	}
	switch strings.ToLower(trimmed) {
	case "--", "-", "n/a", "na", "none", "nil", "—":
		return Mention{}, false
	}

	negative := false
	body := trimmed
	// Accounting negatives: "(9.49)" or "$(9.49) Million".
	if open := strings.IndexByte(body, '('); open >= 0 {
		if close := strings.IndexByte(body[open:], ')'); close > 1 {
			inner := body[open+1 : open+close]
			if _, ok := parseNumberLiteral(strings.TrimSpace(strings.Trim(inner, "$€£¥ "))); ok {
				negative = true
				body = body[:open] + inner + body[open+close+1:]
			}
		}
	}

	toks := tokenizeCell(body)
	numIdx := -1
	for i, t := range toks {
		if _, ok := parseNumberLiteral(t); ok {
			numIdx = i
			break
		}
	}
	if numIdx < 0 {
		return Mention{}, false
	}
	num, _ := parseNumberLiteral(toks[numIdx])

	m := Mention{
		Surface:   trimmed,
		RawValue:  num.raw,
		Value:     num.value,
		Precision: num.precision,
		Approx:    ApproxNone,
	}

	// Unit before the number (currency symbol or code).
	if numIdx > 0 {
		if u, ok := CanonicalUnit(toks[numIdx-1]); ok {
			m.Unit = u
		}
	}
	// Scale word and/or unit after the number.
	for i := numIdx + 1; i < len(toks) && i <= numIdx+3; i++ {
		t := toks[i]
		if mult, ok := ScaleWord(t); ok && m.Value == m.RawValue {
			m.Value *= mult
			continue
		}
		if u, ok := CanonicalUnit(t); ok && m.Unit == "" {
			m.Unit = u
			continue
		}
		break
	}
	if negative {
		m.Value, m.RawValue = -m.Value, -m.RawValue
	}
	if math.IsInf(m.Value, 0) {
		// A scale word can overflow an already-huge literal.
		return Mention{}, false
	}
	m.Scale = OrderOfMagnitude(m.Value)
	m.End = len(trimmed)
	return m, true
}

// tokenizeCell splits a cell body into number/word/symbol tokens without
// depending on the nlp package (keeps the dependency graph acyclic).
func tokenizeCell(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9'):
			j := i + 1
			for j < len(s) {
				cj := s[j]
				if cj >= '0' && cj <= '9' {
					j++
				} else if (cj == '.' || cj == ',') && j+1 < len(s) && s[j+1] >= '0' && s[j+1] <= '9' {
					j++
				} else {
					break
				}
			}
			if j < len(s) && (s[j] == 'K' || s[j] == 'k' || s[j] == 'M' || s[j] == 'B') &&
				(j+1 >= len(s) || !isLetter(s[j+1])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case isLetter(c):
			// Letters plus any directly attached digits form one token, so
			// alphanumeric codes ("Q1", "FY2013", "Win10") never parse as
			// quantities.
			j := i + 1
			for j < len(s) && (isLetter(s[j]) || s[j] == '/' || s[j] >= '0' && s[j] <= '9') {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			// Symbol (currency, %, punctuation); multibyte symbols kept whole.
			j := i + 1
			for j < len(s) && s[j]&0xC0 == 0x80 {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// FormatNormalized renders a normalized value the way a table cell would
// print it, used by virtual cells and the corpus generator.
func FormatNormalized(v float64, precision int) string {
	return strconv.FormatFloat(v, 'f', precision, 64)
}
