package quantity

// Fuzz harnesses for quantity parsing, the input boundary of the
// pre-classifier gate: table cells go through ParseCell and paragraph text
// through ExtractText before unit/scale compatibility is consulted. The
// contract under arbitrary input: never panic, and never emit a mention with
// a non-finite Value/RawValue — strconv.ParseFloat accepts "NaN"/"Inf"
// spellings and scale suffixes can overflow, both of which would poison
// feature arithmetic and JSON encoding downstream. Seed corpora are
// committed under testdata/fuzz.

import (
	"math"
	"testing"
)

func checkMention(t *testing.T, input string, m Mention) {
	t.Helper()
	if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
		t.Fatalf("input %q: non-finite Value %v", input, m.Value)
	}
	if math.IsNaN(m.RawValue) || math.IsInf(m.RawValue, 0) {
		t.Fatalf("input %q: non-finite RawValue %v", input, m.RawValue)
	}
	if m.Precision < 0 {
		t.Fatalf("input %q: negative precision %d", input, m.Precision)
	}
	if m.Scale != OrderOfMagnitude(m.Value) {
		t.Fatalf("input %q: scale %d inconsistent with value %v", input, m.Scale, m.Value)
	}
}

func FuzzParseCell(f *testing.F) {
	for _, seed := range []string{
		"$3.26 billion CDN",
		"(9.49)",
		"$(1,204.5) Million",
		"12,345.67",
		"37K",
		"1.5%",
		"60 bps",
		"--",
		"n/a",
		"1.2.3",
		"NaN",
		"Inf",
		"-Infinity",
		"FY2013",
		"€500",
		"9999999999999999999999999999999B",
		"   42\t kg ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, cell string) {
		m, ok := ParseCell(cell)
		if !ok {
			return
		}
		checkMention(t, cell, m)
		if m.Surface == "" {
			t.Fatalf("input %q: accepted mention with empty surface", cell)
		}
	})
}

func FuzzExtractText(f *testing.F) {
	for _, seed := range []string{
		"Revenue grew to $3.26 billion in 2013, up 12.5% year over year.",
		"Between 3 and 5 km, roughly ± 1.",
		"Call 555-123-4567 before 14:30; see Section 1.1 and [2].",
		"About NaN dollars and Inf percent.",
		"In July 2014 the company shipped 37K units at €12.50 each.",
		"9999999999999999999999999999999 trillion trillion",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		for _, m := range ExtractText(text) {
			checkMention(t, text, m)
			if m.Start < 0 || m.End > len(text) || m.Start >= m.End {
				t.Fatalf("input %q: mention span [%d,%d) out of bounds", text, m.Start, m.End)
			}
		}
	})
}
