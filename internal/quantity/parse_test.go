package quantity

import (
	"math"
	"testing"
)

func TestParseNumberLiteral(t *testing.T) {
	tests := []struct {
		in        string
		value     float64
		raw       float64
		precision int
		ok        bool
	}{
		{"123", 123, 123, 0, true},
		{"3,263", 3263, 3263, 0, true},
		{"2,29,866", 229866, 229866, 0, true}, // Indian grouping, Fig. 5a
		{"3.26", 3.26, 3.26, 2, true},
		{"37K", 37000, 37, 0, true},
		{"2.3K", 2300, 2.3, 1, true},
		{"5M", 5e6, 5, 0, true},
		{"1B", 1e9, 1, 0, true},
		{"-12.5", -12.5, -12.5, 1, true},
		{"+7", 7, 7, 0, true},
		{"", 0, 0, 0, false},
		{"abc", 0, 0, 0, false},
		{"1.2.3", 0, 0, 0, false}, // section heading
		{"-", 0, 0, 0, false},
	}
	for _, tc := range tests {
		got, ok := parseNumberLiteral(tc.in)
		if ok != tc.ok {
			t.Errorf("parseNumberLiteral(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if got.value != tc.value || got.raw != tc.raw || got.precision != tc.precision {
			t.Errorf("parseNumberLiteral(%q) = {v:%v raw:%v p:%d}, want {v:%v raw:%v p:%d}",
				tc.in, got.value, got.raw, got.precision, tc.value, tc.raw, tc.precision)
		}
	}
}

func TestParseCell(t *testing.T) {
	tests := []struct {
		in    string
		value float64
		unit  string
		ok    bool
	}{
		{"36900", 36900, "", true},
		{"3,263", 3263, "", true},
		{"$1.15", 1.15, "USD", true},
		{"5%", 5, "%", true},
		{"12.7%", 12.7, "%", true},
		{"60 bps", 60, "bps", true},
		{"$232.8 Million", 232.8e6, "USD", true},
		{"$(9.49) Million", -9.49e6, "USD", true}, // Fig. 5c accounting negative
		{"€37,000", 37000, "EUR", true},
		{"105 MPGe", 105, "MPGe", true},
		{"0", 0, "", true},
		{"--", 0, "", false},
		{"n/a", 0, "", false},
		{"", 0, "", false},
		{"Depression", 0, "", false},
		{"(1.33)", -1.33, "", true},
		{"1,144,716", 1144716, "", true},
		{"0.9 billion", 0.9e9, "", true},
	}
	for _, tc := range tests {
		m, ok := ParseCell(tc.in)
		if ok != tc.ok {
			t.Errorf("ParseCell(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if math.Abs(m.Value-tc.value) > 1e-9 || m.Unit != tc.unit {
			t.Errorf("ParseCell(%q) = {v:%v unit:%q}, want {v:%v unit:%q}",
				tc.in, m.Value, m.Unit, tc.value, tc.unit)
		}
		if m.Surface != tc.in {
			t.Errorf("ParseCell(%q) surface = %q", tc.in, m.Surface)
		}
	}
}

func TestParseCellScaleAndPrecision(t *testing.T) {
	m, ok := ParseCell("$3.26 billion")
	if !ok {
		t.Fatal("parse failed")
	}
	if m.Scale != 9 {
		t.Errorf("Scale = %d, want 9", m.Scale)
	}
	if m.Precision != 2 {
		t.Errorf("Precision = %d, want 2", m.Precision)
	}
	if m.RawValue != 3.26 {
		t.Errorf("RawValue = %v, want 3.26", m.RawValue)
	}
}

func TestCanonicalUnit(t *testing.T) {
	tests := []struct {
		in   string
		want string
		ok   bool
	}{
		{"$", "USD", true},
		{"EUR", "EUR", true},
		{"eur", "EUR", true},
		{"CDN", "CAD", true},
		{"%", "%", true},
		{"bps", "bps", true},
		{"MPGe", "MPGe", true},
		{"banana", "", false},
	}
	for _, tc := range tests {
		got, ok := CanonicalUnit(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("CanonicalUnit(%q) = (%q,%v), want (%q,%v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestUnitsCompatible(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"USD", "USD", true},
		{"USD", "EUR", false},
		{"", "USD", true},
		{"%", "bps", true},
		{"bps", "%", true},
		{"%", "USD", false},
	}
	for _, tc := range tests {
		if got := UnitsCompatible(tc.a, tc.b); got != tc.want {
			t.Errorf("UnitsCompatible(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestClassOf(t *testing.T) {
	tests := []struct {
		unit string
		want UnitClass
	}{
		{"USD", ClassDollar},
		{"CAD", ClassDollar},
		{"EUR", ClassEuro},
		{"%", ClassPercent},
		{"GBP", ClassPound},
		{"km", ClassPhysical},
		{"patients", ClassUnknown},
		{"", ClassUnknown},
	}
	for _, tc := range tests {
		if got := ClassOf(tc.unit); got != tc.want {
			t.Errorf("ClassOf(%q) = %v, want %v", tc.unit, got, tc.want)
		}
	}
	if !IsCurrency("USD") || !IsCurrency("GBP") || IsCurrency("%") || IsCurrency("km") {
		t.Error("IsCurrency misclassifies")
	}
}

func TestFormatNormalized(t *testing.T) {
	if got := FormatNormalized(500000, 0); got != "500000" {
		t.Errorf("FormatNormalized = %q", got)
	}
	if got := FormatNormalized(1.5, 1); got != "1.5" {
		t.Errorf("FormatNormalized = %q", got)
	}
}
