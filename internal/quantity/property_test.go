package quantity

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

// TestPropertyParseCellRoundTrip: formatting a finite value and parsing it
// back recovers the value exactly (at the formatted precision).
func TestPropertyParseCellRoundTrip(t *testing.T) {
	check := func(raw int32, decimals uint8) bool {
		prec := int(decimals % 3)
		v := float64(raw%1_000_000) / math.Pow(10, float64(prec))
		s := FormatNormalized(v, prec)
		m, ok := ParseCell(s)
		if !ok {
			// Only the empty-ish forms may fail, and FormatNormalized never
			// produces those.
			return false
		}
		want, _ := strconv.ParseFloat(s, 64)
		return m.Value == want && m.Precision == prec
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExtractTextSpans: for arbitrary generated sentences, every
// extracted mention's span matches its surface and mentions are ordered and
// non-overlapping.
func TestPropertyExtractTextSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	words := []string{"sales", "reached", "the", "figure", "of", "patients",
		"total", "about", "for", "increased", "by", "units", "EUR", "overall"}
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(12)
		text := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				text += " "
			}
			if rng.Intn(3) == 0 {
				text += fmt.Sprintf("%d", rng.Intn(100000))
			} else {
				text += words[rng.Intn(len(words))]
			}
		}
		text += "."
		mentions := ExtractText(text)
		prevEnd := -1
		for _, m := range mentions {
			if m.Start < 0 || m.End > len(text) || m.Start >= m.End {
				t.Fatalf("trial %d: bad span [%d,%d) in %q", trial, m.Start, m.End, text)
			}
			if text[m.Start:m.End] != m.Surface {
				t.Fatalf("trial %d: surface %q != span %q", trial, m.Surface, text[m.Start:m.End])
			}
			if m.Start < prevEnd {
				t.Fatalf("trial %d: overlapping mentions in %q", trial, text)
			}
			prevEnd = m.End
			if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
				t.Fatalf("trial %d: non-finite value %v", trial, m.Value)
			}
		}
	}
}

// TestPropertyAggApplySane: for random inputs, every defined aggregation
// returns finite values and respects its arity contract.
func TestPropertyAggApplySane(t *testing.T) {
	// Web-table quantities live far below the float64 overflow frontier;
	// clamp generated inputs to a realistic magnitude so Sum cannot
	// legitimately overflow.
	clamp := func(v float64) (float64, bool) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		return math.Mod(v, 1e12), true
	}
	check := func(a, b float64, extra []float64) bool {
		var vals []float64
		for _, v := range append([]float64{a, b}, extra...) {
			c, ok := clamp(v)
			if !ok {
				return true
			}
			vals = append(vals, c)
		}
		for agg := SingleCell; agg < numAggs; agg++ {
			lo, hi := agg.Arity()
			v, ok := agg.Apply(vals)
			if ok {
				if len(vals) < lo || (hi >= 0 && len(vals) > hi) {
					return false // applied outside its arity
				}
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		// Wrong arity must always be rejected for the fixed-arity aggs.
		if _, ok := Diff.Apply([]float64{a}); ok {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
